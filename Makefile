# Mirrors .github/workflows/ci.yml so local runs and CI agree.

GO ?= go

.PHONY: all build lint test race fuzz-short experiments-smoke obs-smoke report-smoke bench-smoke bench-snapshot serve-smoke telemetry-smoke

all: build lint test

build:
	$(GO) build ./...

# lint = the CI lint job: go vet, the repo's own heliosvet analyzer suite,
# and staticcheck if it is installed (CI installs it; offline dev boxes
# may not have it, so it is soft here and hard in CI).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/heliosvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Matches the CI fuzz job budgets.
fuzz-short:
	$(GO) test -fuzz=FuzzReadFrom -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzPipelineModesAgree -fuzztime=30s ./internal/ooo

experiments-smoke:
	$(GO) run ./cmd/experiments -id fig2 -insts 2000 -metrics

# Matches the CI bench-smoke job: every benchmark must still compile and
# complete one iteration, so the committed trajectory can't bit-rot.
bench-smoke:
	$(GO) test -run 'Benchmark' -bench . -benchtime 1x ./...

# Regenerate a benchmark snapshot (see EXPERIMENTS.md for the schema).
# Usage: make bench-snapshot OUT=BENCH_pr7.json [DIFF=BENCH_pr6.json]
OUT ?= BENCH_snapshot.json
bench-snapshot:
	$(GO) run ./cmd/benchsnap -out $(OUT) -benchtime 3x -count 3 \
		$(if $(DIFF),-diff $(DIFF))

# Matches the CI heliosd-smoke job: build heliosd + heliosctl, drive
# every endpoint plus the hostile-input taxonomy, SIGTERM mid-flight,
# and assert a clean drain with exit 0.
serve-smoke:
	./scripts/heliosd_smoke.sh

# Matches the CI telemetry-smoke job: heliosd with span tracing on, a
# cached + uncached + observed request mix, Prometheus exposition lint,
# obs-artifact byte-identity against heliossim, and a Perfetto trace.
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# Matches the CI obs-smoke job: one observed run producing a
# Konata-loadable pipeline trace plus the interval metrics CSV.
obs-smoke:
	mkdir -p obs-artifacts
	$(GO) run ./cmd/heliossim -workload crc32 -insts 50000 \
		-pipeview obs-artifacts/crc32.pipeview \
		-events obs-artifacts/crc32.events.ndjson \
		-interval-metrics obs-artifacts/crc32.intervals.csv \
		-interval 1000

# Matches the CI report-smoke job: simulate one MiBench kernel under the
# NoFusion baseline and Helios, emit per-run manifests, and render the
# cross-run differential report.
report-smoke:
	mkdir -p report-artifacts/baseline report-artifacts/helios
	$(GO) run ./cmd/heliossim -workload bitcount -insts 50000 -mode NoFusion \
		-manifest report-artifacts/baseline/bitcount.json
	$(GO) run ./cmd/heliossim -workload bitcount -insts 50000 -mode Helios \
		-manifest report-artifacts/helios/bitcount.json
	$(GO) run ./cmd/heliosreport \
		-baseline report-artifacts/baseline -target report-artifacts/helios \
		-baseline-label NoFusion -target-label Helios \
		-out report-artifacts/diff.md -csv report-artifacts/diff.csv
	@head -n 30 report-artifacts/diff.md
