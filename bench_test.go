// Package helios_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (run them with
// `go test -bench=. -benchmem`), plus throughput micro-benchmarks for the
// simulator itself. Figure/table benches report the headline quantity of
// the corresponding artifact via b.ReportMetric, so a bench run regenerates
// the evaluation at reduced instruction budgets; use cmd/experiments for
// the full-budget numbers recorded in EXPERIMENTS.md.
package helios_test

import (
	"context"

	"strconv"
	"strings"
	"testing"
	"time"

	"helios/internal/core"
	"helios/internal/emu"
	"helios/internal/experiments"
	"helios/internal/fusion"
	"helios/internal/helios"
	"helios/internal/ooo"
	"helios/internal/workloads"
)

// benchBudget keeps each experiment iteration fast enough for testing.B.
const benchBudget = 30_000

func newHarness() *experiments.Harness {
	return experiments.New(benchBudget)
}

// lastCell parses the numeric value (stripping %) in the given column of a
// table's last row.
func lastCell(b *testing.B, h *experiments.Harness, id string, col int) float64 {
	b.Helper()
	tbl, err := h.Run(context.Background(), id)
	if err != nil {
		b.Fatal(err)
	}
	row := tbl.Row(tbl.NumRows() - 1)
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
	if err != nil {
		b.Fatalf("%s: bad cell %q", id, row[col])
	}
	return v
}

// BenchmarkFigure2 regenerates Figure 2 (fused µ-ops by idiom class) and
// reports the average memory-idiom percentage.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		mem := lastCell(b, h, "fig2", 1)
		b.ReportMetric(mem, "mem-fused-%")
	}
}

// BenchmarkFigure3 regenerates Figure 3 and reports the geomean normalized
// IPC of memory-only fusion.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		b.ReportMetric(lastCell(b, h, "fig3", 2), "memonly-speedup")
	}
}

// BenchmarkFigure4 regenerates Figure 4 (consecutive pair categories) and
// reports the average contiguous-pair percentage.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		b.ReportMetric(lastCell(b, h, "fig4", 1), "contiguous-%")
	}
}

// BenchmarkFigure5 regenerates Figure 5 and reports the average additional
// NCSF percentage.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		b.ReportMetric(lastCell(b, h, "fig5", 2), "ncsf-%")
	}
}

// BenchmarkFigure8 regenerates Figure 8 and reports Helios's average NCSF
// pair percentage (relative to memory instructions).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		b.ReportMetric(lastCell(b, h, "fig8", 2), "helios-ncsf-%")
	}
}

// BenchmarkFigure9 regenerates Figure 9 (structural stalls); the metric is
// the count of table rows (three configurations per workload).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		tbl, err := h.Run(context.Background(), "fig9")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tbl.NumRows()), "rows")
	}
}

// BenchmarkFigure10 regenerates the headline figure and reports the
// geomean Helios speedup over NoFusion.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		b.ReportMetric(lastCell(b, h, "fig10", 4), "helios-geomean")
		b.ReportMetric(lastCell(b, h, "fig10", 5), "oracle-geomean")
	}
}

// BenchmarkSuiteFig10 pins down the trace layer's speedup: the full
// Figure 10 matrix (6 configurations per workload) with the suite's
// record-once/replay-many path versus re-emulating the kernel for every
// run, the way the pre-trace-layer code did. The ns/op gap between the
// two sub-benches is the benefit of reusing the recording.
func BenchmarkSuiteFig10(b *testing.B) {
	names := []string{"crc32", "xz", "sha"}
	b.Run("trace-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := experiments.New(benchBudget)
			h.Workloads = names
			if _, err := h.Figure10(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(h.Suite.Metrics().TraceMisses), "emulations")
		}
	})
	b.Run("no-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emulations := 0
			for _, name := range names {
				w, _ := workloads.ByName(name)
				for _, m := range fusion.Modes {
					if _, err := core.Run(context.Background(), w, m, benchBudget); err != nil {
						b.Fatal(err)
					}
					emulations++
				}
			}
			b.ReportMetric(float64(emulations), "emulations")
		}
	})
}

// BenchmarkSuiteParallel measures the suite scheduler: the same
// workload×mode matrix warmed serially (workers=1) versus fanned across
// GOMAXPROCS workers. On a multi-core runner the ns/op gap is the
// scheduler's realized speedup; on a single-core runner the two
// converge (the committed BENCH_*.json snapshots record num_cpu and
// gomaxprocs so the trajectory is read in context). The realized-x
// metric is the suite's own measurement: serial-equivalent sum of
// per-cell walls over elapsed fan-out wall.
func BenchmarkSuiteParallel(b *testing.B) {
	names := []string{"crc32", "xz", "sha"}
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			h := experiments.New(benchBudget)
			h.Workloads = names
			h.Suite.PrefetchN(context.Background(), names, fusion.Modes, workers)
			if _, err := h.Figure10(context.Background()); err != nil {
				b.Fatal(err)
			}
			m := h.Suite.Metrics()
			if m.FanoutWall > 0 {
				var sum time.Duration
				for _, c := range m.CellWalls {
					sum += c.Wall
				}
				b.ReportMetric(float64(sum)/float64(m.FanoutWall), "realized-x")
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkTable2 regenerates the machine configuration table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		tbl, err := h.Run(context.Background(), "table2")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tbl.NumRows()), "rows")
	}
}

// BenchmarkTable3 regenerates the predictor quality table and reports the
// average accuracy (the paper reports 99.7%).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		b.ReportMetric(lastCell(b, h, "table3", 2), "accuracy-%")
		b.ReportMetric(lastCell(b, h, "table3", 1), "coverage-%")
	}
}

// BenchmarkStorageCost regenerates the Section IV-B7 storage accounting.
func BenchmarkStorageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := helios.Cost(helios.PaperParams())
		b.ReportMetric(float64(c.TotalBits()), "bits")
	}
}

// ---- Simulator throughput micro-benchmarks ----

// BenchmarkEmulator measures functional simulation speed.
func BenchmarkEmulator(b *testing.B) {
	w, _ := workloads.ByName("crc32")
	b.ResetTimer()
	retired := 0
	for retired < b.N {
		m, err := w.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		n, err := m.Run(uint64(b.N - retired))
		if err != nil {
			b.Fatal(err)
		}
		retired += int(n)
	}
	b.ReportMetric(float64(retired), "insts")
}

// BenchmarkPipelineNoFusion measures cycle-level simulation speed.
func BenchmarkPipelineNoFusion(b *testing.B) {
	benchPipeline(b, fusion.ModeNoFusion)
}

// BenchmarkPipelineHelios measures simulation speed with the full Helios
// machinery enabled.
func BenchmarkPipelineHelios(b *testing.B) {
	benchPipeline(b, fusion.ModeHelios)
}

// BenchmarkPipelineOracle measures simulation speed with oracle pairing.
func BenchmarkPipelineOracle(b *testing.B) {
	benchPipeline(b, fusion.ModeOracle)
}

func benchPipeline(b *testing.B, mode fusion.Mode) {
	w, _ := workloads.ByName("xz")
	b.ResetTimer()
	done := uint64(0)
	for done < uint64(b.N) {
		r, err := core.Run(context.Background(), w, mode, min64(uint64(b.N)-done, w.MaxInsts))
		if err != nil {
			b.Fatal(err)
		}
		done += r.Stats.CommittedInsts
	}
	b.ReportMetric(float64(done), "insts")
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// BenchmarkUCH measures the Unfused Committed History's observe path.
func BenchmarkUCH(b *testing.B) {
	u := helios.NewUCH()
	for i := 0; i < b.N; i++ {
		u.ObserveLoad(uint64(i%97), uint64(i))
	}
}

// BenchmarkFP measures a fusion predictor lookup+train round trip.
func BenchmarkFP(b *testing.B) {
	fp := helios.NewFP()
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 4096 * 4)
		fp.Predict(pc, uint64(i))
		fp.Train(pc, uint64(i), 1+i%63)
	}
}

// BenchmarkOracle measures the perfect-pairing engine's observe path.
func BenchmarkOracle(b *testing.B) {
	o := fusion.NewOracle(fusion.DefaultPairConfig())
	w, _ := workloads.ByName("typeset")
	s, err := w.Trace(uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := s.Next()
		if !ok {
			s, _ = w.Trace(uint64(b.N))
			continue
		}
		o.Observe(r)
	}
}

var sinkRetired emu.Retired

// BenchmarkDecode measures raw instruction decode throughput.
func BenchmarkDecode(b *testing.B) {
	w, _ := workloads.ByName("sha")
	s, err := w.Trace(uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := s.Next()
		if !ok {
			s, _ = w.Trace(uint64(b.N))
			continue
		}
		sinkRetired = r
	}
}

// BenchmarkConfigSweep exercises the whole design space on one workload:
// the ablation used by examples/fusionstudy.
func BenchmarkConfigSweep(b *testing.B) {
	w, _ := workloads.ByName("typeset")
	for i := 0; i < b.N; i++ {
		for _, m := range fusion.Modes {
			cfg := ooo.DefaultConfig(m)
			cfg.MaxUops = 10_000
			if _, err := core.RunConfig(context.Background(), w, cfg, 10_000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Design-space ablation benchmarks (Section IV discussion) ----

// BenchmarkAblationNesting sweeps the NCSF nesting depth (the paper found
// two levels sufficient).
func BenchmarkAblationNesting(b *testing.B) {
	for _, nest := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(nest), func(b *testing.B) {
			w, _ := workloads.ByName("fft")
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig(fusion.ModeHelios)
				cfg.MaxNCSFNest = nest
				r, err := core.RunConfig(context.Background(), w, cfg, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "ipc")
				b.ReportMetric(float64(r.Stats.NCSFPairs()), "ncsf")
			}
		})
	}
}

// BenchmarkAblationDistance sweeps the maximum head-tail distance
// (the paper allows 64 µ-ops).
func BenchmarkAblationDistance(b *testing.B) {
	for _, dist := range []int{4, 16, 64} {
		b.Run(strconv.Itoa(dist), func(b *testing.B) {
			w, _ := workloads.ByName("sha")
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig(fusion.ModeHelios)
				cfg.PairCfg.MaxDist = dist
				r, err := core.RunConfig(context.Background(), w, cfg, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "ipc")
				b.ReportMetric(float64(r.Stats.NCSFPairs()), "ncsf")
			}
		})
	}
}

// BenchmarkAblationUCHSize sweeps the load-side UCH capacity
// (the paper chose 6 entries).
func BenchmarkAblationUCHSize(b *testing.B) {
	for _, size := range []int{1, 2, 6, 16} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			w, _ := workloads.ByName("typeset")
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig(fusion.ModeHelios)
				cfg.UCHLoadEntries = size
				r, err := core.RunConfig(context.Background(), w, cfg, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "ipc")
				b.ReportMetric(float64(r.Stats.TotalMemPairs()), "pairs")
			}
		})
	}
}

// BenchmarkAblationConfidence compares the paper's deterministic 2-bit
// confidence against probabilistic counters (the suggested
// accuracy/coverage trade).
func BenchmarkAblationConfidence(b *testing.B) {
	configs := []struct {
		name string
		fp   helios.FPConfig
	}{
		{"thresh1", helios.FPConfig{ConfidenceThreshold: 1}},
		{"thresh3", helios.FPConfig{}},
		{"prob2", helios.FPConfig{ProbShift: 2}},
		{"prob4", helios.FPConfig{ProbShift: 4}},
	}
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			w, _ := workloads.ByName("qsort")
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig(fusion.ModeHelios)
				cfg.FP = c.fp
				r, err := core.RunConfig(context.Background(), w, cfg, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "ipc")
				b.ReportMetric(100*r.Stats.Accuracy(), "accuracy-%")
			}
		})
	}
}

// BenchmarkAblationStoreDrain sweeps the store buffer drain bandwidth,
// the resource whose pressure drives the paper's largest gains.
func BenchmarkAblationStoreDrain(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			w, _ := workloads.ByName("xz")
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig(fusion.ModeHelios)
				cfg.StoreDrainPerCycle = n
				r, err := core.RunConfig(context.Background(), w, cfg, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "ipc")
			}
		})
	}
}
