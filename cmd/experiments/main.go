// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                  # everything, paper order
//	experiments -id fig10        # one experiment
//	experiments -insts 100000    # smaller budget per run
//	experiments -csv             # machine-readable output
//	experiments -workloads xz,gcc,typeset
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"helios/internal/experiments"
	"helios/internal/fusion"
	"helios/internal/ooo"
)

func main() {
	var (
		id       = flag.String("id", "", "experiment id ("+strings.Join(experiments.IDs(), ", ")+"); empty = all")
		insts    = flag.Uint64("insts", 0, "instruction budget per run (0 = workload defaults)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		worklist = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		metrics  = flag.Bool("metrics", false, "print record/replay trace-layer counters after the tables (deterministic: byte-identical across identical runs)")
		walltime = flag.Bool("walltime", false, "also print wall-time breakdown to stderr (nondeterministic)")
		timeout  = flag.Duration("timeout", 0, "abort the whole suite after this wall time (0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	h := experiments.New(*insts)
	if *worklist != "" {
		h.Workloads = strings.Split(*worklist, ",")
	}

	emit := func(idName string) {
		tbl, err := h.Run(ctx, idName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", idName, err)
			var se *ooo.SimError
			if errors.As(err, &se) {
				fmt.Fprintf(os.Stderr, "\ncrash dump:\n%s\n", se.JSON())
			}
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", idName, tbl.CSV())
		} else {
			fmt.Printf("%s\n", tbl)
		}
	}

	finish := func() {
		if *metrics {
			fmt.Printf("%s\n", h.MetricsTable())
		}
		if *walltime {
			// Wall times are nondeterministic by nature; stderr keeps
			// stdout byte-stable for diffing identical runs.
			fmt.Fprintf(os.Stderr, "%s\n", h.WallTimeTable())
		}
	}

	if *id != "" {
		emit(*id)
		finish()
		return
	}
	// Warm the cache in parallel before printing everything.
	h.Suite.Prefetch(ctx, h.Workloads, fusion.Modes)
	for _, idName := range experiments.IDs() {
		emit(idName)
	}
	finish()
}
