// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                  # everything, paper order
//	experiments -id fig10        # one experiment
//	experiments -insts 100000    # smaller budget per run
//	experiments -csv             # machine-readable output
//	experiments -workloads xz,gcc,typeset
//	experiments -obs out/ -obs-mode Helios   # per-workload pipeline traces
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"helios/internal/experiments"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/telemetry"
)

func main() {
	var (
		id       = flag.String("id", "", "experiment id ("+strings.Join(experiments.IDs(), ", ")+"); empty = all")
		insts    = flag.Uint64("insts", 0, "instruction budget per run (0 = workload defaults)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		worklist = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		metrics  = flag.Bool("metrics", false, "print record/replay trace-layer counters after the tables (deterministic: byte-identical across identical runs)")
		walltime = flag.Bool("walltime", false, "also print wall-time breakdown to stderr (nondeterministic; includes per-cell walls and realized speedup)")
		timeout  = flag.Duration("timeout", 0, "abort the whole suite after this wall time (0 = no limit)")
		parallel = flag.Int("parallel", 0, "scheduler workers for the replay fan-out (0 = GOMAXPROCS, 1 = serial; output is byte-identical for every value)")

		obsDir      = flag.String("obs", "", "observed-suite mode: write per-workload pipeview/events/interval files into this directory and exit")
		obsMode     = flag.String("obs-mode", "Helios", "fusion configuration for -obs runs")
		obsInterval = flag.Uint64("obs-interval", 10000, "interval sampler period in cycles for -obs runs")

		manifestDir  = flag.String("manifest", "", "manifest mode: write one per-run JSON manifest per workload into this directory and exit (input for heliosreport)")
		manifestMode = flag.String("manifest-mode", "Helios", "fusion configuration for -manifest runs")

		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON scheduler timeline to this file (wall-clock data; quarantined from stdout, loadable in Perfetto)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -trace attaches a telemetry trace to the context so core.RunCells
	// emits one span per cell on a per-worker lane — with -parallel this
	// is the scheduler utilization timeline. The Chrome JSON goes to its
	// own file, never stdout: span times are wall-clock and must stay
	// out of the deterministic -metrics surface (DESIGN.md §16).
	var suiteTrace *telemetry.Trace
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.New(telemetry.Options{})
		suiteTrace = tracer.StartTrace("experiments")
		ctx = telemetry.WithTrace(ctx, suiteTrace)
		defer func() {
			suiteTrace.Finish()
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := telemetry.WriteChromeTrace(f, tracer.Finished()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	h := experiments.New(*insts)
	h.Parallel = *parallel
	if *worklist != "" {
		h.Workloads = strings.Split(*worklist, ",")
	}

	if *obsDir != "" {
		runObserved(ctx, h, *obsDir, *obsMode, *obsInterval)
		return
	}

	if *manifestDir != "" {
		m, ok := fusion.ModeByName(*manifestMode)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -manifest-mode %q\n", *manifestMode)
			os.Exit(1)
		}
		if err := h.WriteManifests(ctx, *manifestDir, m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			var se *ooo.SimError
			if errors.As(err, &se) {
				fmt.Fprintf(os.Stderr, "\ncrash dump:\n%s\n", se.JSON())
			}
			os.Exit(1)
		}
		fmt.Printf("wrote %d manifests (%s) to %s\n", len(h.Workloads), m, *manifestDir)
		return
	}

	emit := func(idName string) {
		tbl, err := h.Run(ctx, idName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", idName, err)
			var se *ooo.SimError
			if errors.As(err, &se) {
				fmt.Fprintf(os.Stderr, "\ncrash dump:\n%s\n", se.JSON())
			}
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", idName, tbl.CSV())
		} else {
			fmt.Printf("%s\n", tbl)
		}
	}

	finish := func() {
		if *metrics {
			fmt.Printf("%s\n", h.MetricsTable())
		}
		if *walltime {
			// Wall times are nondeterministic by nature; stderr keeps
			// stdout byte-stable for diffing identical runs.
			fmt.Fprintf(os.Stderr, "%s\n", h.WallTimeTable())
		}
	}

	if *id != "" {
		// A traced single-experiment run still warms through the
		// scheduler so the timeline shows the parallel fan-out; the
		// figure then reads the warmed cache.
		if *traceOut != "" {
			h.Suite.PrefetchN(ctx, h.Workloads, fusion.Modes, *parallel)
		}
		emit(*id)
		finish()
		return
	}
	// Warm the cache before printing everything, fanning workload×mode
	// cells across the scheduler's workers.
	h.Suite.PrefetchN(ctx, h.Workloads, fusion.Modes, *parallel)
	for _, idName := range experiments.IDs() {
		emit(idName)
	}
	finish()
}

// runObserved is the -obs suite mode: one observed replay per workload,
// each producing a Konata-loadable O3PipeView trace, an NDJSON event
// stream and an interval CSV under dir.
func runObserved(ctx context.Context, h *experiments.Harness, dir, modeName string, interval uint64) {
	m, ok := fusion.ModeByName(modeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -obs-mode %q\n", modeName)
		os.Exit(1)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range h.Workloads {
		if err := observeOne(ctx, h, dir, name, m, interval); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			var se *ooo.SimError
			if errors.As(err, &se) {
				fmt.Fprintf(os.Stderr, "\ncrash dump:\n%s\n", se.JSON())
			}
			os.Exit(1)
		}
	}
}

// observeOne runs a single observed replay, writing the three trace
// files for one workload.
func observeOne(ctx context.Context, h *experiments.Harness, dir, name string, m fusion.Mode, interval uint64) error {
	pv, err := os.Create(filepath.Join(dir, name+".pipeview"))
	if err != nil {
		return err
	}
	evf, err := os.Create(filepath.Join(dir, name+".events.ndjson"))
	if err != nil {
		pv.Close()
		return err
	}
	mf, err := os.Create(filepath.Join(dir, name+".intervals.csv"))
	if err != nil {
		pv.Close()
		evf.Close()
		return err
	}
	ob := &obs.Observer{PipeView: pv, Events: evf, Metrics: mf, SampleEvery: interval}
	r, runErr := h.Observe(ctx, name, m, ob)
	for _, f := range []*os.File{pv, evf, mf} {
		if cerr := f.Close(); cerr != nil && runErr == nil {
			runErr = cerr
		}
	}
	if runErr != nil {
		return runErr
	}
	fmt.Printf("%-14s %s/%v: %d insts, %d cycles, IPC %.3f\n",
		name, dir, m, r.Stats.CommittedInsts, r.Stats.Cycles, r.Stats.IPC())
	return nil
}
