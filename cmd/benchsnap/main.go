// Command benchsnap runs the repo's benchmark trajectory set and writes
// a machine-readable JSON snapshot (BENCH_*.json at the repo root, one
// per PR). Committing the snapshot is what makes performance a gated,
// reviewable quantity: every later PR's snapshot is diffable against the
// previous one, so a hot-path regression shows up in review the same way
// a failing test would.
//
// Usage:
//
//	go run ./cmd/benchsnap -out BENCH_pr6.json
//	go run ./cmd/benchsnap -out /tmp/now.json -benchtime 5x -count 3
//	go run ./cmd/benchsnap -out now.json -diff BENCH_baseline.json
//
// The snapshot schema is documented in EXPERIMENTS.md ("Benchmark
// trajectory"). With -count > 1 the best (minimum ns/op) run per
// benchmark is kept, the usual way to suppress scheduler noise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the committed benchmark-trajectory document.
type Snapshot struct {
	Schema     string  `json:"schema"`  // "helios/bench-snapshot/v1"
	Created    string  `json:"created"` // RFC 3339 UTC
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPU        string  `json:"cpu,omitempty"` // "cpu:" line from go test
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchtime  string  `json:"benchtime"`
	Count      int     `json:"count"`
	Benchmarks []Bench `json:"benchmarks"` // sorted by pkg, then name
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`  // without the -N procs suffix
	Procs       int     `json:"procs"` // the -N suffix (GOMAXPROCS at run time)
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric column, keyed by unit
	// (e.g. "cycles/op", "emulations").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// SimCyclesPerSec is derived when the benchmark reports a
	// "cycles/op" metric: simulated cycles per wall-clock second, the
	// headline throughput of the cycle-level engine.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

func main() {
	var (
		out       = flag.String("out", "", "output JSON path (required)")
		benchRe   = flag.String("bench", defaultBenchRe, "go test -bench regexp")
		benchtime = flag.String("benchtime", "3x", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count; best (min ns/op) run is kept")
		pkgSpec   = flag.String("pkgs", ". ./internal/ooo", "space-separated package patterns to benchmark")
		diff      = flag.String("diff", "", "optional: print a comparison against this previous snapshot")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchsnap: -out is required")
		os.Exit(2)
	}

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, strings.Fields(*pkgSpec)...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchsnap: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		fmt.Fprintf(os.Stderr, "benchsnap: go test failed: %v\n", err)
		os.Exit(1)
	}

	snap := &Snapshot{
		Schema:     "helios/bench-snapshot/v1",
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  *benchtime,
		Count:      *count,
	}
	if err := parseInto(snap, &buf); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: no benchmark lines matched %q\n", *benchRe)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d benchmarks\n", *out, len(snap.Benchmarks))

	if *diff != "" {
		if err := printDiff(*diff, snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: diff: %v\n", err)
			os.Exit(1)
		}
	}
}

// defaultBenchRe is the committed trajectory set: the suite-level wall
// benchmark (serial and parallel scheduler) plus the replay hot path with
// observability off and on.
const defaultBenchRe = "^(BenchmarkSuiteFig10|BenchmarkSuiteParallel|BenchmarkPipelineObsOff|BenchmarkPipelineObsOn)$"

// parseInto scans `go test -bench` output. Benchmark result lines look
// like:
//
//	BenchmarkName/sub-8   12   345 ns/op   6 B/op   7 allocs/op   8.0 widgets
//
// i.e. name, iteration count, then (value, unit) pairs. "pkg:" and
// "cpu:" header lines carry the package and CPU identity.
func parseInto(snap *Snapshot, buf *bytes.Buffer) error {
	best := make(map[string]*Bench) // pkg+"\x00"+name -> best run
	pkg := ""
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		name, procs := splitProcs(f[0])
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := &Bench{Pkg: pkg, Name: name, Procs: procs, Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return fmt.Errorf("line %q: bad value %q", line, f[i])
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		if c, ok := b.Metrics["cycles/op"]; ok && b.NsPerOp > 0 {
			b.SimCyclesPerSec = c / b.NsPerOp * 1e9
		}
		key := pkg + "\x00" + name
		if prev, ok := best[key]; !ok || b.NsPerOp < prev.NsPerOp {
			best[key] = b
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		snap.Benchmarks = append(snap.Benchmarks, *best[k])
	}
	return nil
}

// splitProcs strips the trailing -N GOMAXPROCS suffix go test appends to
// benchmark names.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 1
	}
	return name[:i], n
}

// printDiff renders an old-vs-new comparison for the benchmarks present
// in both snapshots: ns/op, allocs/op and simulated-cycles/sec deltas.
func printDiff(oldPath string, now *Snapshot) error {
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old Snapshot
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	prev := make(map[string]Bench)
	for _, b := range old.Benchmarks {
		prev[b.Pkg+"\x00"+b.Name] = b
	}
	fmt.Printf("\n%-44s %14s %14s %9s %9s\n", "benchmark (vs "+oldPath+")",
		"ns/op", "allocs/op", "Δns", "Δallocs")
	for _, b := range now.Benchmarks {
		p, ok := prev[b.Pkg+"\x00"+b.Name]
		if !ok {
			fmt.Printf("%-44s %14.0f %14.0f %9s %9s\n", b.Name, b.NsPerOp, b.AllocsPerOp, "new", "new")
			continue
		}
		fmt.Printf("%-44s %14.0f %14.0f %8.1f%% %8.1f%%\n", b.Name,
			b.NsPerOp, b.AllocsPerOp, pct(b.NsPerOp, p.NsPerOp), pct(b.AllocsPerOp, p.AllocsPerOp))
	}
	return nil
}

// pct returns the relative change now vs then in percent (negative =
// improvement).
func pct(now, then float64) float64 {
	if then == 0 {
		return 0
	}
	return (now - then) / then * 100
}
