// Command rvemu functionally executes an RV64 assembly program (no timing)
// and reports its exit status, instruction count and output, like a tiny
// Spike. It can also run a registered workload by name.
//
// Usage:
//
//	rvemu program.s
//	rvemu -workload dijkstra
//	rvemu -max 1000000 program.s
package main

import (
	"flag"
	"fmt"
	"os"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a registered workload instead of a file")
		max      = flag.Uint64("max", 100_000_000, "instruction bound")
	)
	flag.Parse()

	var m *emu.Machine
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(1)
		}
		var err error
		m, err = w.NewMachine()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m = emu.New(prog)
	default:
		fmt.Fprintln(os.Stderr, "usage: rvemu [-max N] (<file.s> | -workload <name>)")
		os.Exit(2)
	}

	n, err := m.Run(*max)
	if err != nil {
		fmt.Fprintf(os.Stderr, "after %d instructions: %v\n", n, err)
		os.Exit(1)
	}
	if out := m.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Printf("retired %d instructions, halted=%v, exit=%d\n", n, m.Halted(), m.ExitCode())
	if m.Halted() {
		os.Exit(m.ExitCode() & 0xff)
	}
}
