// Command rvemu functionally executes an RV64 assembly program (no timing)
// and reports its exit status, instruction count and output, like a tiny
// Spike. It can also run a registered workload by name, and capture the
// committed µ-op stream to a trace file for later replay (heliossim
// -trace-in).
//
// Usage:
//
//	rvemu program.s
//	rvemu -workload dijkstra
//	rvemu -max 1000000 program.s
//	rvemu -workload xz -trace-out xz.trace.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/trace"
	"helios/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a registered workload instead of a file")
		max      = flag.Uint64("max", 100_000_000, "instruction bound")
		traceOut = flag.String("trace-out", "", "record the committed stream to this file")
	)
	flag.Parse()

	name := *workload
	var m *emu.Machine
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(1)
		}
		var err error
		m, err = w.NewMachine()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m = emu.New(prog)
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".s")
	default:
		fmt.Fprintln(os.Stderr, "usage: rvemu [-max N] [-trace-out f] (<file.s> | -workload <name>)")
		os.Exit(2)
	}

	if *traceOut != "" {
		// Recording IS the run: drain the live source, then dump it.
		rec, err := trace.Record(trace.NewLive(m, *max))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec.Name = name
		rec.MaxInsts = *max
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		written, err := rec.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d µ-ops, %d bytes compressed\n", *traceOut, rec.Len(), written)
	} else if _, err := m.Run(*max); err != nil {
		fmt.Fprintf(os.Stderr, "after %d instructions: %v\n", m.InstretCount(), err)
		os.Exit(1)
	}
	n := m.InstretCount()
	if out := m.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Printf("retired %d instructions, halted=%v, exit=%d\n", n, m.Halted(), m.ExitCode())
	if m.Halted() {
		os.Exit(m.ExitCode() & 0xff)
	}
}
