// Command heliossim runs one workload on the cycle-level core model under
// a chosen fusion configuration and prints the detailed statistics.
//
// Usage:
//
//	heliossim -workload xz -mode Helios [-insts 350000]
//	heliossim -workload xz -trace-out xz.trace.gz   # record the stream
//	heliossim -trace-in xz.trace.gz -compare        # replay it per config
//	heliossim -workload xz -timeout 30s             # bound the wall time
//	heliossim -workload crc32 -pipeview crc32.pv    # Konata-loadable trace
//	heliossim -workload crc32 -interval-metrics m.csv -interval 1000
//	heliossim -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/report"
	"helios/internal/stats"
	"helios/internal/trace"
	"helios/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "crc32", "workload name (see -list)")
		mode     = flag.String("mode", "Helios", "fusion configuration: "+modeNames())
		insts    = flag.Uint64("insts", 0, "instruction budget (0 = workload default)")
		list     = flag.Bool("list", false, "list workloads and exit")
		compare  = flag.Bool("compare", false, "run every fusion configuration and compare IPC")
		parallel = flag.Int("parallel", 0, "-compare workers (0 = GOMAXPROCS, 1 = serial; the table is byte-identical for every value)")
		traceOut = flag.String("trace-out", "", "record the committed stream to this file (gzip-framed binary)")
		traceIn  = flag.String("trace-in", "", "simulate a previously recorded stream instead of emulating")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this wall time (0 = no limit)")
		jsonOut  = flag.Bool("json", false, "dump the full statistics as JSON instead of the human-readable report")
		manifest = flag.String("manifest", "", "write a per-run JSON manifest (config + stats + build identity) to this file")

		pipeview    = flag.String("pipeview", "", "write a gem5 O3PipeView pipeline trace (Konata-loadable) to this file")
		events      = flag.String("events", "", "write per-µop NDJSON pipeline events to this file")
		intervalCSV = flag.String("interval-metrics", "", "write the interval metrics time series (CSV) to this file")
		interval    = flag.Uint64("interval", 10000, "interval sampler period in cycles (with -interval-metrics)")

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for host-side profiling")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself to this file")
	)
	flag.Parse()

	if *pprofAddr != "" {
		//helios:goroutinelife-ok process-lifetime pprof listener; dies with the process
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-14s %-10d %s\n", w.Name, w.MaxInsts, w.PaperRef)
		}
		return
	}

	// Phase one: obtain the committed stream — load it from a trace file,
	// or record it once from the emulator when it will be reused (compare
	// mode or -trace-out).
	var (
		rec  *trace.Recording
		name string
		w    workloads.Workload
	)
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		rec, err = trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		name = rec.Name
		fmt.Printf("loaded trace: %s (%d µ-ops, budget %d)\n\n", rec.Name, rec.Len(), rec.MaxInsts)
	} else {
		var ok bool
		w, ok = workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; try -list\n", *workload)
			os.Exit(1)
		}
		name = w.Name
		if *compare || *traceOut != "" {
			var err error
			rec, err = w.Record(*insts)
			if err != nil {
				fatal(err)
			}
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		n, err := rec.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d µ-ops, %d bytes compressed\n\n", *traceOut, rec.Len(), n)
	}

	// Observability sinks (single-run mode only: one run, one trace).
	obsOn := *pipeview != "" || *events != "" || *intervalCSV != ""
	if obsOn && *compare {
		fmt.Fprintln(os.Stderr, "-pipeview/-events/-interval-metrics apply to a single run; drop -compare")
		os.Exit(1)
	}

	// Phase two: replay through the cycle-level model.
	if *compare {
		runCompare(ctx, name, rec, *parallel)
		return
	}
	m, ok := fusion.ModeByName(*mode)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q; want one of %s\n", *mode, modeNames())
		os.Exit(1)
	}
	cfg := ooo.DefaultConfig(m)
	var ob *obs.Observer
	if obsOn {
		var closers []func() error
		ob = &obs.Observer{SampleEvery: *interval}
		open := func(path string) *os.File {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			closers = append(closers, f.Close)
			return f
		}
		if *pipeview != "" {
			ob.PipeView = open(*pipeview)
		}
		if *events != "" {
			ob.Events = open(*events)
		}
		if *intervalCSV != "" {
			ob.Metrics = open(*intervalCSV)
		}
		defer func() {
			for _, c := range closers {
				if err := c(); err != nil {
					fmt.Fprintf(os.Stderr, "closing trace output: %v\n", err)
				}
			}
		}()
		cfg.Obs = ob
	}
	var (
		r   *core.Result
		err error
	)
	if rec != nil {
		r, err = core.RunSource(ctx, name, cfg, rec.Replay(), 0)
	} else {
		r, err = core.RunConfig(ctx, w, cfg, *insts)
	}
	if err != nil {
		fatal(err)
	}
	if ob != nil {
		if oerr := ob.Err(); oerr != nil {
			fatal(fmt.Errorf("observer: %w", oerr))
		}
	}
	if *manifest != "" {
		m := report.NewManifest(r.Workload, r.Mode, cfg, r.Stats)
		if err := m.WriteFile(*manifest); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		printJSON(r)
		return
	}
	printResult(r)
}

// printJSON dumps the complete statistics surface: every Stats counter
// (the reflection round-trip test in internal/ooo pins the field set)
// plus the run identity and the binary's build provenance. The stats
// are deterministic for a given trace and configuration, so two runs of
// the same build can be diffed byte-for-byte.
func printJSON(r *core.Result) {
	out := struct {
		Workload string           `json:"workload"`
		Mode     string           `json:"mode"`
		Build    report.BuildInfo `json:"build"`
		Stats    ooo.Stats        `json:"stats"`
	}{r.Workload, r.Mode.String(), report.Build(), r.Stats}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", b)
}

// fatal prints the error and exits. If the failure is a structured
// pipeline crash, the full JSON dump (cycle, queue occupancies, recent
// commits, invariant verdict) follows the one-line summary so the state
// at the point of death is preserved for post-mortem.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	var se *ooo.SimError
	if errors.As(err, &se) {
		fmt.Fprintf(os.Stderr, "\ncrash dump:\n%s\n", se.JSON())
	}
	os.Exit(1)
}

func modeNames() string {
	names := make([]string, len(fusion.Modes))
	for i, m := range fusion.Modes {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}

// runCompare replays the one recording through every fusion
// configuration, fanning the replays across a bounded worker pool
// (replay cursors are independent, so the runs cannot interfere). The
// results are collected by mode index and the table is built serially
// in fusion.Modes order afterwards — including the NoFusion IPC
// baseline — so the output is byte-identical to a serial run.
func runCompare(ctx context.Context, name string, rec *trace.Recording, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fusion.Modes) {
		workers = len(fusion.Modes)
	}
	results := make([]*core.Result, len(fusion.Modes))
	errs := make([]error, len(fusion.Modes))
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= len(fusion.Modes) || ctx.Err() != nil {
					return
				}
				m := fusion.Modes[i]
				results[i], errs[i] = core.RunSource(ctx, name, ooo.DefaultConfig(m), rec.Replay(), 0)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}
	var base float64
	for i, m := range fusion.Modes {
		if m == fusion.ModeNoFusion {
			base = results[i].Stats.IPC()
		}
	}
	t := stats.NewTable(fmt.Sprintf("%s: fusion configuration comparison", name),
		"config", "IPC", "vs NoFusion", "csf", "ncsf", "idioms", "mispredicts")
	for i, m := range fusion.Modes {
		s := results[i].Stats
		t.AddRow(m.String(), stats.F(s.IPC(), 3), stats.F(s.IPC()/base, 3),
			fmt.Sprint(s.CSFPairs()), fmt.Sprint(s.NCSFPairs()),
			fmt.Sprint(s.FusedIdiom+s.FusedMemIdiom), fmt.Sprint(s.FusionMispredicts))
	}
	fmt.Print(t)
}

func printResult(r *core.Result) {
	s := r.Stats
	fmt.Printf("workload:   %s\nconfig:     %v\n\n", r.Workload, r.Mode)
	fmt.Printf("cycles:             %d\n", s.Cycles)
	fmt.Printf("instructions:       %d (%d µ-ops, %d memory)\n",
		s.CommittedInsts, s.CommittedUops, s.CommittedMem)
	fmt.Printf("IPC:                %.3f\n\n", s.IPC())

	fmt.Printf("fused idioms:       %d non-memory, %d memory-carrying\n", s.FusedIdiom, s.FusedMemIdiom)
	fmt.Printf("fused pairs:        %d CSF (%d ld / %d st), %d NCSF (%d ld / %d st)\n",
		s.CSFPairs(), s.CSFLoadPairs, s.CSFStorePairs,
		s.NCSFPairs(), s.NCSFLoadPairs, s.NCSFStorePairs)
	fmt.Printf("pair attributes:    %d DBR, %d asymmetric, mean NCSF distance %.1f\n",
		s.DBRPairs, s.AsymmetricPairs, s.MeanNCSFDistance())
	fmt.Printf("unfused at rename:  %d (window/serial/store/dbr/deadlock = %v)\n\n",
		s.UnfusedAtRename, s.UnfuseReasons)

	fmt.Printf("fusion predictor:   %d predictions, %d mispredicts (accuracy %.2f%%, coverage %.2f%%, MPKI %.4f)\n",
		s.FusionPredictions, s.FusionMispredicts, 100*s.Accuracy(), 100*s.Coverage(), s.FusionMPKI())
	fmt.Printf("branches:           %d (%d mispredicted, MPKI %.2f)\n",
		s.Branches, s.BranchMispredicts, s.BranchMPKI())
	fmt.Printf("memory:             %d forwards, %d violations, %d flushes\n\n",
		s.STLForwards, s.StoreSetViolations, s.Flushes)

	cyc := float64(s.Cycles)
	fmt.Printf("structural stalls:  regs %.1f%%, rob %.1f%%, iq %.1f%%, lq %.1f%%, sq %.1f%%, aq %.1f%%\n",
		100*float64(s.StallFreeList)/cyc, 100*float64(s.StallROB)/cyc,
		100*float64(s.StallIQ)/cyc, 100*float64(s.StallLQ)/cyc,
		100*float64(s.StallSQ)/cyc, 100*float64(s.StallAQ)/cyc)

	if budget := s.TopDown.SlotBudget(); budget > 0 {
		td := &s.TopDown
		p := func(v uint64) float64 { return 100 * float64(v) / float64(budget) }
		fmt.Printf("top-down slots:     retiring %.1f%% (+%.1f%% fused), fe-lat %.1f%%, fe-bw %.1f%%, bad-spec %.1f%%, be-core %.1f%%, be-mem %.1f%%\n",
			p(td.Retiring), p(td.FusedRetiring), p(td.FrontendLatency),
			p(td.FrontendBandwidth), p(td.BadSpeculation), p(td.BackendCore),
			p(td.BackendMemory()))
	}
}
