// Command heliossim runs one workload on the cycle-level core model under
// a chosen fusion configuration and prints the detailed statistics.
//
// Usage:
//
//	heliossim -workload xz -mode Helios [-insts 350000]
//	heliossim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/stats"
	"helios/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "crc32", "workload name (see -list)")
		mode     = flag.String("mode", "Helios", "fusion configuration: "+modeNames())
		insts    = flag.Uint64("insts", 0, "instruction budget (0 = workload default)")
		list     = flag.Bool("list", false, "list workloads and exit")
		compare  = flag.Bool("compare", false, "run every fusion configuration and compare IPC")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-14s %-10d %s\n", w.Name, w.MaxInsts, w.PaperRef)
		}
		return
	}

	w, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; try -list\n", *workload)
		os.Exit(1)
	}

	if *compare {
		runCompare(w, *insts)
		return
	}

	m, ok := fusion.ModeByName(*mode)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q; want one of %s\n", *mode, modeNames())
		os.Exit(1)
	}
	r, err := core.Run(w, m, *insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResult(r)
}

func modeNames() string {
	names := make([]string, len(fusion.Modes))
	for i, m := range fusion.Modes {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}

func runCompare(w workloads.Workload, insts uint64) {
	t := stats.NewTable(fmt.Sprintf("%s: fusion configuration comparison", w.Name),
		"config", "IPC", "vs NoFusion", "csf", "ncsf", "idioms", "mispredicts")
	var base float64
	for _, m := range fusion.Modes {
		r, err := core.Run(w, m, insts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := r.Stats
		if m == fusion.ModeNoFusion {
			base = s.IPC()
		}
		t.AddRow(m.String(), stats.F(s.IPC(), 3), stats.F(s.IPC()/base, 3),
			fmt.Sprint(s.CSFPairs()), fmt.Sprint(s.NCSFPairs()),
			fmt.Sprint(s.FusedIdiom+s.FusedMemIdiom), fmt.Sprint(s.FusionMispredicts))
	}
	fmt.Print(t)
}

func printResult(r *core.Result) {
	s := r.Stats
	fmt.Printf("workload:   %s\nconfig:     %v\n\n", r.Workload, r.Mode)
	fmt.Printf("cycles:             %d\n", s.Cycles)
	fmt.Printf("instructions:       %d (%d µ-ops, %d memory)\n",
		s.CommittedInsts, s.CommittedUops, s.CommittedMem)
	fmt.Printf("IPC:                %.3f\n\n", s.IPC())

	fmt.Printf("fused idioms:       %d non-memory, %d memory-carrying\n", s.FusedIdiom, s.FusedMemIdiom)
	fmt.Printf("fused pairs:        %d CSF (%d ld / %d st), %d NCSF (%d ld / %d st)\n",
		s.CSFPairs(), s.CSFLoadPairs, s.CSFStorePairs,
		s.NCSFPairs(), s.NCSFLoadPairs, s.NCSFStorePairs)
	fmt.Printf("pair attributes:    %d DBR, %d asymmetric, mean NCSF distance %.1f\n",
		s.DBRPairs, s.AsymmetricPairs, s.MeanNCSFDistance())
	fmt.Printf("unfused at rename:  %d (window/serial/store/dbr/deadlock = %v)\n\n",
		s.UnfusedAtRename, s.UnfuseReasons)

	fmt.Printf("fusion predictor:   %d predictions, %d mispredicts (accuracy %.2f%%, coverage %.2f%%, MPKI %.4f)\n",
		s.FusionPredictions, s.FusionMispredicts, 100*s.Accuracy(), 100*s.Coverage(), s.FusionMPKI())
	fmt.Printf("branches:           %d (%d mispredicted, MPKI %.2f)\n",
		s.Branches, s.BranchMispredicts, s.BranchMPKI())
	fmt.Printf("memory:             %d forwards, %d violations, %d flushes\n\n",
		s.STLForwards, s.StoreSetViolations, s.Flushes)

	cyc := float64(s.Cycles)
	fmt.Printf("structural stalls:  regs %.1f%%, rob %.1f%%, iq %.1f%%, lq %.1f%%, sq %.1f%%\n",
		100*float64(s.StallFreeList)/cyc, 100*float64(s.StallROB)/cyc,
		100*float64(s.StallIQ)/cyc, 100*float64(s.StallLQ)/cyc, 100*float64(s.StallSQ)/cyc)
}
