// Command heliosd serves the simulation engine as a long-running
// HTTP+JSON service with a robustness-first envelope: content-addressed
// result caching, micro-batched record phases, a bounded admission
// queue with typed 429s, per-request deadlines, panic isolation,
// graceful degradation of corrupt cached recordings, and a clean
// SIGTERM drain.
//
// Usage:
//
//	heliosd -addr :8080
//	heliosd -addr :8080 -queue 32 -deadline 15s -batch-size 16
//	heliosd -addr :8080 -manifest-dir /var/lib/helios/manifests
//	heliosd -addr :8080 -sample -cache-dir /var/lib/helios/cache
//
// Endpoints:
//
//	POST /v1/run           one workload×config simulation (obs field → artifact)
//	POST /v1/suite         a workload×mode matrix
//	POST /v1/diff          a rendered differential report
//	GET  /v1/workloads     the registered workload catalogue
//	GET  /healthz /readyz  liveness and readiness
//	GET  /metricz          JSON, Prometheus 0.0.4 or OpenMetrics (exemplars)
//	GET  /tracez           retained traces (?id= for one — the exemplar deep link)
//	GET  /debugz/requests  the flight recorder (heliosctl triage reads this)
//
// On SIGTERM/SIGINT the server stops admitting work (503 draining),
// finishes every in-flight request within -drain, flushes manifests,
// and exits 0. A second signal aborts immediately with exit 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"helios/internal/core"
	"helios/internal/serve"
	"helios/internal/telemetry/sampling"
)

func main() {
	def := serve.DefaultConfig()
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", def.QueueDepth, "admission queue depth (concurrent requests before typed 429s)")
		deadline    = flag.Duration("deadline", def.DefaultDeadline, "default per-request deadline when the client sends none")
		maxDeadline = flag.Duration("max-deadline", def.MaxDeadline, "clamp on client-supplied deadlines")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM")
		batchSize   = flag.Int("batch-size", def.MaxBatch, "micro-batch cut size (requests sharing one record phase)")
		batchWait   = flag.Duration("batch-latency", def.BatchWait, "micro-batch cut latency (wait for co-batchable requests)")
		maxBody     = flag.Int64("max-body", def.MaxBodyBytes, "request body byte limit (typed 413 beyond)")
		insts       = flag.Uint64("insts", 0, "default instruction budget (0 = each workload's own)")
		workers     = flag.Int("workers", 0, "suite-endpoint scheduler workers (0 = GOMAXPROCS)")
		manifestDir = flag.String("manifest-dir", "", "write a JSON manifest per completed run into this directory")
		retryAfter  = flag.Duration("retry-after", def.RetryAfter, "backoff hint attached to overload/draining rejections")

		telemetry   = flag.Bool("telemetry", true, "per-request span tracing (GET /tracez, span histograms on /metricz); off, every hook is a zero-allocation no-op")
		traceRing   = flag.Int("trace-ring", 0, "finished traces retained for GET /tracez (0 = default)")
		traceDir    = flag.String("trace-dir", "", "write one Chrome trace-event JSON file per finished request into this directory")
		artifactDir = flag.String("artifact-dir", "", "write /v1/run obs artifacts as files here instead of inline base64")
		spanLog     = flag.String("span-log", "", "append the NDJSON span stream to this file")

		cacheDir   = flag.String("cache-dir", "", "warm the result cache from this manifest directory at boot, and write completed runs back into it")
		flightSize = flag.Int("flight", serve.DefaultFlightSize, "flight-recorder capacity (recent request summaries on GET /debugz/requests)")

		sample        = flag.Bool("sample", false, "tail-based trace sampling: keep errors, tail-latency outliers, rare spans and a rate-limited healthy budget instead of every trace")
		sampleSeed    = flag.Uint64("sample-seed", 1, "seed for the deterministic probabilistic floor")
		sampleFloor   = flag.Float64("sample-floor", 0.01, "fraction of all traces the probabilistic floor keeps regardless of other policies")
		sampleRate    = flag.Float64("sample-rate", 25, "healthy-traffic retention budget, traces per second")
		sampleBurst   = flag.Int("sample-burst", 50, "healthy-traffic retention burst")
		sampleSlowPct = flag.Int("sample-slow-pct", 99, "adaptive latency percentile; slower traces are kept as tail outliers")
	)
	flag.Parse()
	cfg := serve.Config{
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		RetryAfter:      *retryAfter,
		MaxBodyBytes:    *maxBody,
		MaxBatch:        *batchSize,
		BatchWait:       *batchWait,
		DefaultInsts:    *insts,
		SuiteWorkers:    *workers,
		ManifestDir:     *manifestDir,
		Telemetry:       *telemetry,
		TraceRing:       *traceRing,
		TraceDir:        *traceDir,
		ArtifactDir:     *artifactDir,
		CacheDir:        *cacheDir,
		FlightSize:      *flightSize,
		Logf:            logf,
	}
	if *sample {
		// The explicit chain mirrors sampling.Default but exposes the
		// floor/rate/percentile knobs; the policy algebra is documented in
		// DESIGN.md §17.
		cfg.Sampler = sampling.NewChain(
			sampling.Errors(),
			sampling.SlowTail(*sampleSlowPct, 64),
			sampling.SpanBoost(sampling.PrioSpan, "record", "degrade"),
			sampling.Limit(sampling.All(), *sampleRate, *sampleBurst),
			sampling.Floor(*sampleFloor, *sampleSeed),
		)
	}
	if *spanLog != "" {
		f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "heliosd: span log:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.SpanLog = f
	}
	if err := run(*addr, *drain, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "heliosd:", err)
		os.Exit(1)
	}
}

func logf(format string, args ...any) {
	//helios:nondeterminism-ok operational log timestamps, not simulation state
	fmt.Fprintf(os.Stderr, time.Now().UTC().Format("2006-01-02T15:04:05.000Z")+" "+format+"\n", args...)
}

func run(addr string, drainBudget time.Duration, cfg serve.Config) error {
	for _, d := range []struct{ name, path string }{
		{"manifest dir", cfg.ManifestDir},
		{"trace dir", cfg.TraceDir},
		{"artifact dir", cfg.ArtifactDir},
		{"cache dir", cfg.CacheDir},
	} {
		if d.path == "" {
			continue
		}
		if err := os.MkdirAll(d.path, 0o755); err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
	}

	// Root context: cancelled on the first SIGTERM/SIGINT. The server's
	// background work (batch record phases) hangs off a separate context
	// so in-flight batches survive into the drain window.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srvCtx, srvCancel := context.WithCancel(context.Background())
	defer srvCancel()

	s := serve.New(srvCtx, cfg)
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logf("heliosd %s listening on %s (queue=%d deadline=%s batch=%d/%s)",
		core.EngineVersion(), addr, cfg.QueueDepth, cfg.DefaultDeadline, cfg.MaxBatch, cfg.BatchWait)

	select {
	case err := <-errc:
		return fmt.Errorf("listen on %s: %w", addr, err)
	case <-sigCtx.Done():
	}
	stop() // restore default signal behaviour: a second signal kills us

	logf("signal received; draining (budget %s)", drainBudget)
	dctx, dcancel := context.WithTimeout(context.Background(), drainBudget)
	defer dcancel()
	drainErr := s.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	srvCancel() // now stop background batch work
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	c := s.Counters()
	logf("drained clean: %d admitted, %d completed, %d manifests; exiting 0",
		c.Admitted, c.Completed, c.ManifestsWritten)
	return nil
}
