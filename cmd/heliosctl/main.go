// Command heliosctl is the heliosd client. It speaks the typed error
// taxonomy: retryable failures (429 overload, 5xx, transport errors)
// are retried with exponential backoff plus jitter, honouring the
// server's Retry-After hint as the backoff floor; terminal failures
// (4xx) are reported immediately.
//
// Usage:
//
//	heliosctl [-server http://localhost:8080] <command> [flags]
//
//	run       -workload crc32 [-mode Helios] [-insts N] [-deadline-ms N]
//	          [-obs pipeview|events|interval [-obs-interval N] [-obs-out file]]
//	suite     -workloads crc32,sha [-modes NoFusion,Helios] [-insts N]
//	diff      -workloads crc32,sha -baseline NoFusion -target Helios [-csv]
//	workloads
//	health    [-wait 30s]   poll /healthz until the server answers
//	ready
//	metrics   [-watch 2s [-count N]] [-prom|-om [-lint]]
//	trace     [-id N] [-out trace.json]   fetch /tracez (Perfetto-loadable)
//	triage    [-outcome error] [-workload W] [-min-ms 50] [-limit N]
//	          [-follow 2s] [-json]   read the flight recorder
//	raw       -path /v1/run -body '{"workload":"crc32"}' [-expect 200]
//
// triage is the incident entry point: it reads heliosd's always-on
// flight recorder (/debugz/requests), filters to the interesting
// requests, and prints one line per request including the retained
// trace id — which `heliosctl trace -id N` then fetches. metrics -om
// fetches the OpenMetrics exposition whose histogram buckets carry
// exemplars deep-linking into the same traces; with -lint, every
// exemplar's trace_id is verified to resolve against /tracez.
//
// raw sends an arbitrary body without retries — the smoke harness uses
// it to assert the typed 400/413 responses for hostile requests.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"helios/internal/serve"
	"helios/internal/telemetry"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "heliosctl: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	server := flag.String("server", "http://localhost:8080", "heliosd base URL")
	retries := flag.Int("retries", 5, "max retries for retryable failures (429/5xx/transport)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: heliosctl [-server URL] {run|suite|diff|workloads|health|ready|metrics|trace|triage|raw} [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*server, "/"), retries: *retries}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "run":
		cmdRun(c, args)
	case "suite":
		cmdSuite(c, args)
	case "diff":
		cmdDiff(c, args)
	case "workloads":
		emit(c.getRetry("/v1/workloads"))
	case "health":
		cmdHealth(c, args)
	case "ready":
		emit(c.get("/readyz"))
	case "metrics":
		cmdMetrics(c, args)
	case "trace":
		cmdTrace(c, args)
	case "triage":
		cmdTriage(c, args)
	case "raw":
		cmdRaw(c, args)
	default:
		fatalf("unknown command %q", cmd)
	}
}

// client wraps the retry policy around heliosd's API.
type client struct {
	base    string
	retries int
}

// backoff computes the attempt's sleep: exponential from 100ms, capped
// at 5s, with ±25% jitter, floored at the server's retry-after hint.
func backoff(attempt int, floor time.Duration, rng *rand.Rand) time.Duration {
	d := 100 * time.Millisecond << uint(attempt)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	// jitter in [0.75, 1.25): desynchronizes a fleet of retrying clients
	d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
	if d < floor {
		d = floor
	}
	return d
}

// retryAfterHint extracts the server's backoff floor from a typed error
// body (retry_after_ms) or the Retry-After header.
func retryAfterHint(resp *http.Response, body []byte) time.Duration {
	var e serve.Error
	if err := json.Unmarshal(body, &e); err == nil && e.RetryAfterMs > 0 {
		return time.Duration(e.RetryAfterMs) * time.Millisecond
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// do issues one request with the retry policy. Terminal statuses (2xx
// and non-retryable 4xx) return immediately; 429/5xx and transport
// errors retry with backoff.
func (c *client) do(method, path string, body []byte) (int, []byte) {
	//helios:nondeterminism-ok client-side retry jitter, not simulation state
	rng := rand.New(rand.NewPCG(uint64(os.Getpid()), uint64(time.Now().UnixNano())))
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, respBody, retryable, hint, err := c.once(method, path, body)
		if err == nil && !retryable {
			return status, respBody
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("status %d: %s", status, bytes.TrimSpace(respBody))
		}
		if attempt >= c.retries {
			fatalf("%s %s failed after %d attempts: %v", method, path, attempt+1, lastErr)
		}
		d := backoff(attempt, hint, rng)
		fmt.Fprintf(os.Stderr, "heliosctl: retryable failure (%v); retry %d/%d in %s\n",
			lastErr, attempt+1, c.retries, d.Round(time.Millisecond))
		time.Sleep(d)
	}
}

func (c *client) once(method, path string, body []byte) (status int, respBody []byte, retryable bool, hint time.Duration, err error) {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, true, 0, err // transport error: retryable
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, true, 0, err
	}
	retryable = resp.StatusCode == 429 || resp.StatusCode >= 500
	return resp.StatusCode, respBody, retryable, retryAfterHint(resp, respBody), nil
}

func (c *client) post(path string, v any) (int, []byte) {
	b, err := json.Marshal(v)
	if err != nil {
		fatalf("encode request: %v", err)
	}
	return c.do("POST", path, b)
}

func (c *client) getRetry(path string) (int, []byte) { return c.do("GET", path, nil) }

// get is a single non-retried GET (readiness probes must see the
// current answer, not a retried one).
func (c *client) get(path string) (int, []byte) {
	status, body, _, _, err := c.once("GET", path, nil)
	if err != nil {
		fatalf("GET %s: %v", path, err)
	}
	return status, body
}

// emit prints a response body and exits non-zero on a non-2xx status.
func emit(status int, body []byte) {
	os.Stdout.Write(append(bytes.TrimRight(body, "\n"), '\n'))
	if status < 200 || status > 299 {
		os.Exit(1)
	}
}

func cmdRun(c *client, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workload := fs.String("workload", "", "workload name (required)")
	mode := fs.String("mode", "", "fusion mode (default: server's)")
	insts := fs.Uint64("insts", 0, "instruction budget (0 = server default)")
	deadline := fs.Int64("deadline-ms", 0, "per-request deadline in ms (0 = server default)")
	obs := fs.String("obs", "", "request an observability artifact: pipeview, events or interval")
	obsInterval := fs.Uint64("obs-interval", 0, "interval sampler period for -obs interval (0 = server default)")
	obsOut := fs.String("obs-out", "", "write the artifact payload to this file (with -obs)")
	fs.Parse(args)
	if *workload == "" {
		fatalf("run: -workload is required")
	}
	if *obsOut != "" && *obs == "" {
		fatalf("run: -obs-out requires -obs")
	}
	status, body := c.post("/v1/run", serve.RunRequest{
		Workload: *workload, Mode: *mode, Insts: *insts, DeadlineMs: *deadline,
		Obs: *obs, ObsInterval: *obsInterval,
	})
	if status != 200 || *obs == "" {
		emit(status, body)
		return
	}
	var rr serve.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		fatalf("decode run response: %v", err)
	}
	if rr.Artifact == nil {
		fatalf("run: server returned no artifact for -obs %s", *obs)
	}
	if *obsOut != "" {
		writeArtifact(rr.Artifact, *obsOut)
		// The payload is on disk; keep stdout to the run summary.
		rr.Artifact.Data = ""
	}
	out, err := json.Marshal(&rr)
	if err != nil {
		fatalf("encode run response: %v", err)
	}
	emit(status, out)
}

// writeArtifact materializes an obs artifact locally: inline base64
// payloads are decoded, file-encoded ones are copied from the
// server-side path (heliosctl and heliosd share a filesystem in that
// configuration). The digest is verified either way.
func writeArtifact(a *serve.Artifact, path string) {
	var data []byte
	var err error
	switch a.Encoding {
	case "base64":
		data, err = base64.StdEncoding.DecodeString(a.Data)
	case "file":
		data, err = os.ReadFile(a.Path)
	default:
		fatalf("unknown artifact encoding %q", a.Encoding)
	}
	if err != nil {
		fatalf("read artifact: %v", err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != a.SHA256 {
		fatalf("artifact digest mismatch: got %s, server says %s", got, a.SHA256)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write artifact: %v", err)
	}
	fmt.Fprintf(os.Stderr, "heliosctl: wrote %d-byte %s artifact to %s (sha256 verified)\n",
		len(data), a.Kind, path)
}

// cmdMetrics fetches /metricz once or in -watch mode, in JSON,
// Prometheus 0.0.4 (-prom) or OpenMetrics (-om) form; -lint runs the
// repo's exposition linter over the text output and fails on the first
// violation (the CI smoke job's promtool stand-in). In -om mode the
// lint additionally resolves every exemplar's trace_id against
// /tracez?id=, so a dangling /metricz→/tracez deep link is an error.
func cmdMetrics(c *client, args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	watch := fs.Duration("watch", 0, "poll /metricz at this interval (0 = fetch once)")
	count := fs.Int("count", 0, "with -watch: stop after this many samples (0 = until interrupted)")
	prom := fs.Bool("prom", false, "fetch the Prometheus text exposition instead of JSON")
	om := fs.Bool("om", false, "fetch the OpenMetrics exposition (histogram buckets carry trace exemplars)")
	lint := fs.Bool("lint", false, "with -prom/-om: lint the exposition, fail on violations")
	fs.Parse(args)
	if *prom && *om {
		fatalf("metrics: -prom and -om are mutually exclusive")
	}
	if *lint && !*prom && !*om {
		fatalf("metrics: -lint requires -prom or -om")
	}
	path := "/metricz?format=json"
	switch {
	case *prom:
		path = "/metricz?format=prometheus"
	case *om:
		path = "/metricz?format=openmetrics"
	}
	sample := func() {
		status, body := c.getRetry(path)
		if *lint && status == 200 {
			opts := telemetry.LintOptions{OpenMetrics: *om}
			if *om {
				opts.ResolveTrace = func(traceID string) bool {
					st, _ := c.get("/tracez?id=" + url.QueryEscape(traceID))
					return st == 200
				}
			}
			if err := telemetry.LintExpositionOptions(bytes.NewReader(body), opts); err != nil {
				fatalf("metrics: exposition lint: %v", err)
			}
			fmt.Fprintln(os.Stderr, "heliosctl: exposition lint clean")
		}
		emit(status, body)
	}
	if *watch <= 0 {
		sample()
		return
	}
	for n := 0; *count == 0 || n < *count; n++ {
		if n > 0 {
			time.Sleep(*watch)
			fmt.Println()
		}
		sample()
	}
}

// cmdTrace fetches the server's retained span traces (GET /tracez) as
// Chrome trace-event JSON, to stdout or a file for Perfetto. -id
// narrows to the one trace a triage line or /metricz exemplar named.
func cmdTrace(c *client, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("out", "", "write the trace JSON to this file (default: stdout)")
	id := fs.Uint64("id", 0, "fetch only this trace id (0 = the whole retained ring)")
	fs.Parse(args)
	path := "/tracez"
	if *id != 0 {
		path += "?id=" + strconv.FormatUint(*id, 10)
	}
	status, body := c.getRetry(path)
	if status != 200 || *out == "" {
		emit(status, body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatalf("write trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "heliosctl: wrote %d-byte trace to %s (open in Perfetto)\n", len(body), *out)
}

// cmdTriage reads heliosd's flight recorder (/debugz/requests): one
// line per recent request with outcome, cache verdict, duration,
// sampling verdict and — when the tail sampler retained the trace — the
// id `heliosctl trace -id` resolves. -follow turns it into a tail -f
// over the ring, using the server's next_after cursor so entries are
// printed exactly once.
func cmdTriage(c *client, args []string) {
	fs := flag.NewFlagSet("triage", flag.ExitOnError)
	outcome := fs.String("outcome", "", `filter: "ok", "error" (any failure), or one kind ("overload", "engine-fault", ...)`)
	workload := fs.String("workload", "", "filter by workload name")
	minMs := fs.Float64("min-ms", 0, "filter: only requests at least this slow")
	limit := fs.Int("limit", 0, "keep only the newest N matching entries (0 = all)")
	follow := fs.Duration("follow", 0, "poll for new entries at this interval (0 = fetch once)")
	jsonOut := fs.Bool("json", false, "print the raw JSON page instead of the line format")
	fs.Parse(args)

	page := func(after uint64) (entries []serve.RequestSummary, next uint64, raw []byte) {
		q := url.Values{}
		if *outcome != "" {
			q.Set("outcome", *outcome)
		}
		if *workload != "" {
			q.Set("workload", *workload)
		}
		if *minMs > 0 {
			q.Set("min_ms", strconv.FormatFloat(*minMs, 'f', -1, 64))
		}
		if *limit > 0 {
			q.Set("limit", strconv.Itoa(*limit))
		}
		if after > 0 {
			q.Set("after", strconv.FormatUint(after, 10))
		}
		status, body := c.getRetry("/debugz/requests?" + q.Encode())
		if status != 200 {
			emit(status, body)
			os.Exit(1)
		}
		var p struct {
			Requests  []serve.RequestSummary `json:"requests"`
			NextAfter uint64                 `json:"next_after"`
		}
		if err := json.Unmarshal(body, &p); err != nil {
			fatalf("triage: decode /debugz/requests: %v", err)
		}
		return p.Requests, p.NextAfter, body
	}

	var after uint64
	for {
		entries, next, raw := page(after)
		if *jsonOut {
			if after == 0 || len(entries) > 0 {
				os.Stdout.Write(append(bytes.TrimRight(raw, "\n"), '\n'))
			}
		} else {
			for _, e := range entries {
				fmt.Println(triageLine(e))
			}
		}
		if *follow <= 0 {
			return
		}
		if next > after {
			after = next
		}
		time.Sleep(*follow)
	}
}

// triageLine renders one flight-recorder entry for humans; fields a
// request never touched print as "-".
func triageLine(e serve.RequestSummary) string {
	//helios:nondeterminism-ok rendering a server-supplied wall timestamp
	ts := time.UnixMicro(e.TimeUnixUS).UTC().Format("15:04:05.000")
	target := e.Workload
	if target != "" && e.Mode != "" {
		target += "/" + e.Mode
	}
	if target == "" {
		target = "-"
	}
	cache := e.Cache
	if cache == "" {
		cache = "-"
	}
	verdict := "-"
	if e.Policy != "" {
		if e.Sampled {
			verdict = "keep/" + e.Policy
		} else {
			verdict = "drop"
		}
	}
	trace := "-"
	if e.TraceID != 0 {
		trace = strconv.FormatUint(e.TraceID, 10)
	}
	return fmt.Sprintf("#%-5d %s %-4s %-14s %-20s %-13s cache=%-9s %9.2fms %-12s trace=%s",
		e.Seq, ts, e.Method, e.Path, target, e.Outcome, cache, float64(e.DurUS)/1000, verdict, trace)
}

func cmdSuite(c *client, args []string) {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	wls := fs.String("workloads", "", "comma-separated workload names (required)")
	modes := fs.String("modes", "", "comma-separated fusion modes (default: all)")
	insts := fs.Uint64("insts", 0, "instruction budget (0 = server default)")
	deadline := fs.Int64("deadline-ms", 0, "per-request deadline in ms")
	fs.Parse(args)
	if *wls == "" {
		fatalf("suite: -workloads is required")
	}
	emit(c.post("/v1/suite", serve.SuiteRequest{
		Workloads: splitList(*wls), Modes: splitList(*modes),
		Insts: *insts, DeadlineMs: *deadline,
	}))
}

func cmdDiff(c *client, args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	wls := fs.String("workloads", "", "comma-separated workload names (required)")
	baseline := fs.String("baseline", "NoFusion", "baseline fusion mode")
	target := fs.String("target", "Helios", "target fusion mode")
	insts := fs.Uint64("insts", 0, "instruction budget (0 = server default)")
	deadline := fs.Int64("deadline-ms", 0, "per-request deadline in ms")
	csv := fs.Bool("csv", false, "print the CSV report instead of markdown")
	fs.Parse(args)
	if *wls == "" {
		fatalf("diff: -workloads is required")
	}
	status, body := c.post("/v1/diff", serve.DiffRequest{
		Workloads: splitList(*wls), BaselineMode: *baseline, TargetMode: *target,
		Insts: *insts, DeadlineMs: *deadline,
	})
	if status != 200 {
		emit(status, body)
		return
	}
	var dr serve.DiffResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		fatalf("decode diff response: %v", err)
	}
	if *csv {
		fmt.Print(dr.CSV)
	} else {
		fmt.Print(dr.Markdown)
	}
}

// cmdHealth polls /healthz until the server answers (with -wait) or
// reports the current answer once.
func cmdHealth(c *client, args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	wait := fs.Duration("wait", 0, "poll until the server is up, for at most this long")
	fs.Parse(args)
	if *wait <= 0 {
		emit(c.get("/healthz"))
		return
	}
	//helios:nondeterminism-ok startup-poll deadline, not simulation state
	deadline := time.Now().Add(*wait)
	for {
		status, body, _, _, err := c.once("GET", "/healthz", nil)
		if err == nil && status == 200 {
			emit(status, body)
			return
		}
		if time.Now().After(deadline) {
			fatalf("server not healthy within %s (last: status %d, err %v)", wait, status, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// cmdRaw sends one arbitrary request with no retries and optionally
// asserts the status — the smoke harness's hostile-input probe.
func cmdRaw(c *client, args []string) {
	fs := flag.NewFlagSet("raw", flag.ExitOnError)
	path := fs.String("path", "/v1/run", "request path")
	body := fs.String("body", "", "request body (sent verbatim)")
	method := fs.String("method", "POST", "HTTP method")
	expect := fs.Int("expect", 0, "fail unless the response status matches (0 = accept any)")
	fs.Parse(args)
	status, respBody, _, _, err := c.once(*method, *path, []byte(*body))
	if err != nil {
		fatalf("raw %s %s: %v", *method, *path, err)
	}
	os.Stdout.Write(append(bytes.TrimRight(respBody, "\n"), '\n'))
	if *expect != 0 && status != *expect {
		fatalf("raw %s %s: status %d, expected %d", *method, *path, status, *expect)
	}
	if *expect == 0 && (status < 200 || status > 299) {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
