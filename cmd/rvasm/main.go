// Command rvasm assembles RV64 assembly (the dialect of internal/asm) and
// prints the resulting image as a disassembly listing or hex words.
//
// Usage:
//
//	rvasm program.s            # disassembly listing
//	rvasm -hex program.s       # one 32-bit word per line
//	rvasm -symbols program.s   # symbol table
package main

import (
	"flag"
	"fmt"
	"os"

	"helios/internal/asm"
)

func main() {
	var (
		hex     = flag.Bool("hex", false, "print raw instruction words")
		symbols = flag.Bool("symbols", false, "print the symbol table")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvasm [-hex|-symbols] <file.s>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch {
	case *hex:
		for _, w := range prog.Text {
			fmt.Printf("%08x\n", w)
		}
	case *symbols:
		for _, name := range prog.SortedSymbols() {
			fmt.Printf("%08x %s\n", prog.Symbols[name], name)
		}
	default:
		fmt.Print(prog.Disassemble())
		fmt.Printf("\n%d instructions, %d data bytes, entry %#x\n",
			len(prog.Text), len(prog.Data), prog.Entry)
	}
}
