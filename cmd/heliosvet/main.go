// Command heliosvet is the repository's domain-specific static-analysis
// driver: a multichecker over the internal/lint analyzer suite, which
// enforces the simulator's determinism, stats-completeness and config
// hygiene conventions at lint time (see DESIGN.md §10 for the catalog).
//
// Usage:
//
//	heliosvet ./...              # analyze the whole module
//	heliosvet -list              # print the analyzer catalog
//	heliosvet -github ./...      # also emit GitHub ::error annotations
//	heliosvet -json ./...        # machine-readable schema-versioned JSON
//
// Exit status is 1 when any finding is reported, so CI can gate on it.
// Under GitHub Actions (GITHUB_ACTIONS=true) annotations are emitted
// automatically, making each violation visible inline in the PR diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"helios/internal/lint"
)

func main() {
	var (
		github   = flag.Bool("github", false, "emit GitHub Actions ::error annotations (implied by GITHUB_ACTIONS=true)")
		jsonMode = flag.Bool("json", false, "write findings as a schema-versioned JSON document instead of text")
		list     = flag.Bool("list", false, "print the analyzer catalog and exit")
	)
	flag.Parse()

	analyzers := lint.Registry()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.RunAll(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	if *jsonMode {
		if err := lint.WriteJSON(os.Stdout, diags, func(p string) string { return relTo(wd, p) }); err != nil {
			fatal(err)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	annotate := *github || os.Getenv("GITHUB_ACTIONS") == "true"
	for _, d := range diags {
		rel := relTo(wd, d.Pos.Filename)
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if annotate {
			// GitHub annotation values must stay on one line.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=heliosvet %s::%s\n",
				rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "heliosvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relTo shortens absolute diagnostic paths for readable output and
// annotation file= values.
func relTo(wd, path string) string {
	if rel, err := filepath.Rel(wd, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heliosvet:", err)
	os.Exit(1)
}
