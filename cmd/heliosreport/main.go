// Command heliosreport compares two directories of per-run manifests
// (written by `heliossim -manifest` or `experiments -manifest`) and
// renders a deterministic differential report: per-workload IPC deltas
// decomposed into top-down slot-bucket movement, fusion-coverage
// shifts, and latency-histogram percentile shifts.
//
// Usage:
//
//	heliosreport -baseline base/ -target helios/            # markdown to stdout
//	heliosreport -baseline base/ -target helios/ -out d.md  # markdown to file
//	heliosreport -baseline base/ -target helios/ -csv d.csv # flat CSV too
package main

import (
	"flag"
	"fmt"
	"os"

	"helios/internal/report"
)

func main() {
	var (
		baseline    = flag.String("baseline", "", "directory of baseline run manifests (required)")
		target      = flag.String("target", "", "directory of target run manifests (required)")
		out         = flag.String("out", "", "write the markdown report here instead of stdout")
		csvOut      = flag.String("csv", "", "also write a flat per-workload CSV here")
		baseLabel   = flag.String("baseline-label", "baseline", "label for the baseline side")
		targetLabel = flag.String("target-label", "target", "label for the target side")
	)
	flag.Parse()
	if *baseline == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "heliosreport: -baseline and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := report.LoadDir(*baseline)
	if err != nil {
		fatal(err)
	}
	tgt, err := report.LoadDir(*target)
	if err != nil {
		fatal(err)
	}
	d := report.NewDiff(*baseLabel, base, *targetLabel, tgt)

	md, err := d.Markdown()
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(md)
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(d.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heliosreport:", err)
	os.Exit(1)
}
