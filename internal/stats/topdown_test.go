package stats

import (
	"strings"
	"testing"
)

func TestTopDownConservation(t *testing.T) {
	td := TopDown{SlotsPerCycle: 5}
	// Three accounted cycles: full retire, mixed, fully stalled.
	td.Cycles++
	td.Add(TDRetiring, 5)
	td.Cycles++
	td.Add(TDFusedRetiring, 2)
	td.Add(TDFrontendBandwidth, 3)
	td.Cycles++
	td.Add(TDBackendMemDRAM, 5)
	if err := td.CheckConservation(); err != nil {
		t.Fatalf("conserved account rejected: %v", err)
	}
	if got, want := td.TotalSlots(), uint64(15); got != want {
		t.Errorf("TotalSlots = %d, want %d", got, want)
	}
	if got, want := td.SlotBudget(), uint64(15); got != want {
		t.Errorf("SlotBudget = %d, want %d", got, want)
	}
}

func TestTopDownMovePreservesSum(t *testing.T) {
	td := TopDown{SlotsPerCycle: 4, Cycles: 1}
	td.Add(TDFusedRetiring, 4)
	td.Move(TDFusedRetiring, TDRetiring, 1)
	td.Move(TDRetiring, TDBadSpeculation, 1)
	if err := td.CheckConservation(); err != nil {
		t.Fatalf("moves broke conservation: %v", err)
	}
	if td.FusedRetiring != 3 || td.Retiring != 0 || td.BadSpeculation != 1 {
		t.Errorf("after moves: fused=%d retiring=%d badspec=%d, want 3/0/1",
			td.FusedRetiring, td.Retiring, td.BadSpeculation)
	}
}

func TestTopDownConservationViolations(t *testing.T) {
	lost := TopDown{SlotsPerCycle: 5, Cycles: 2}
	lost.Add(TDRetiring, 9) // one slot short of the 10-slot budget
	if err := lost.CheckConservation(); err == nil {
		t.Error("lost slot not detected")
	}
	under := TopDown{SlotsPerCycle: 5, Cycles: 2, Retiring: 10}
	under.Move(TDBadSpeculation, TDRetiring, 1) // underflows BadSpeculation
	if err := under.CheckConservation(); err == nil {
		t.Error("underflowed Move not detected")
	} else if !strings.Contains(err.Error(), "underflowed") {
		t.Errorf("underflow error lacks per-bucket diagnosis: %v", err)
	}
}

func TestTopDownRows(t *testing.T) {
	td := TopDown{SlotsPerCycle: 5, Cycles: 2}
	td.Add(TDRetiring, 10)
	rows := td.Rows("topdown")
	if len(rows) != 12 {
		t.Fatalf("Rows has %d entries, want 12 (one per field)", len(rows))
	}
	seen := map[string]string{}
	for _, r := range rows {
		if !strings.HasPrefix(r[0], "topdown_") {
			t.Errorf("row %q missing prefix", r[0])
		}
		if _, dup := seen[r[0]]; dup {
			t.Errorf("duplicate row %q", r[0])
		}
		seen[r[0]] = r[1]
	}
	if seen["topdown_retiring"] != "10" || seen["topdown_cycles"] != "2" {
		t.Errorf("rows carry wrong values: %v", seen)
	}
}

func TestTDBucketString(t *testing.T) {
	if TDRetiring.String() != "retiring" || TDBackendMemDRAM.String() != "backend_mem_dram" {
		t.Errorf("bucket names drifted: %v, %v", TDRetiring, TDBackendMemDRAM)
	}
	if got := TDBucket(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range bucket renders %q", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(0); v < 100; v++ {
		a.Observe(v)
	}
	for v := uint64(1000); v < 1050; v++ {
		b.Observe(v)
	}
	want := a // merged result must equal observing both sample sets
	for v := uint64(1000); v < 1050; v++ {
		want.Observe(v)
	}
	if err := a.Merge(&b); err != nil {
		t.Fatalf("merge of consistent histograms failed: %v", err)
	}
	if a != want {
		t.Errorf("merge result differs from observing the union of samples")
	}
	if a.Percentile(99) < b.Percentile(50) {
		t.Errorf("merged tail p99=%d below source p50=%d", a.Percentile(99), b.Percentile(50))
	}
}

func TestHistogramMergeRejectsMismatch(t *testing.T) {
	var good, bad Histogram
	good.Observe(3)
	bad.Count = 7 // bucket counts (all zero) disagree with Count
	if err := good.Merge(&bad); err == nil {
		t.Fatal("merge accepted an inconsistent source histogram")
	}
	if good.Count != 1 {
		t.Errorf("failed merge mutated the target (Count=%d)", good.Count)
	}
	if err := bad.Merge(&good); err == nil {
		t.Fatal("merge accepted an inconsistent target histogram")
	}
	var empty Histogram
	if err := empty.Merge(&good); err != nil {
		t.Errorf("merging into the zero value failed: %v", err)
	}
}
