package stats

import "fmt"

// TDBucket identifies one top-down slot bucket. The decomposition is
// TMA-style: every dispatch slot of every cycle belongs to exactly one
// bucket, so the buckets sum to DispatchWidth × cycles and any IPC
// difference between two runs is fully explained by bucket movement.
type TDBucket uint8

const (
	// TDRetiring: the slot dispatched a µ-op that (eventually) retired
	// as a single architectural instruction.
	TDRetiring TDBucket = iota
	// TDFusedRetiring: the slot dispatched a fused µ-op carrying two
	// architectural instructions (or paid a fusion fix-up that retired
	// useful work) — the paper's win shows up as slots moving here.
	TDFusedRetiring
	// TDFrontendLatency: no µ-op was available and none dispatched this
	// cycle (i-cache miss, mispredict fetch stall, empty AQ).
	TDFrontendLatency
	// TDFrontendBandwidth: the frontend supplied some µ-ops this cycle
	// but fewer than the dispatch width.
	TDFrontendBandwidth
	// TDBadSpeculation: the slot's work was squashed by a flush, or the
	// slot idled while the frontend refilled after one (recovery).
	TDBadSpeculation
	// TDBackendCore: dispatch blocked on a non-memory backend resource
	// (free list, ROB, IQ) or the core's own rename width.
	TDBackendCore
	// TDBackendMemL1D..TDBackendMemDRAM: dispatch blocked on LQ/SQ
	// pressure, classified by the hierarchy level serving the oldest
	// in-flight blocking access.
	TDBackendMemL1D
	TDBackendMemL2
	TDBackendMemLLC
	TDBackendMemDRAM

	NumTDBuckets
)

var tdNames = [NumTDBuckets]string{
	"retiring", "fused_retiring", "frontend_latency", "frontend_bandwidth",
	"bad_speculation", "backend_core", "backend_mem_l1d", "backend_mem_l2",
	"backend_mem_llc", "backend_mem_dram",
}

func (b TDBucket) String() string {
	if b < NumTDBuckets {
		return tdNames[b]
	}
	return fmt.Sprintf("TDBucket(%d)", uint8(b))
}

// TopDown is the per-cycle dispatch-slot account: SlotsPerCycle slots
// are attributed every cycle, one bucket each, as pure integer counters.
// The conservation invariant — the buckets sum to SlotsPerCycle ×
// Cycles — is what makes the decomposition trustworthy: a slot can be
// misclassified but never lost or double-counted, and CheckConservation
// turns any accounting bug into a loud failure.
type TopDown struct {
	SlotsPerCycle uint64 // dispatch width: the per-cycle slot budget
	Cycles        uint64 // cycles accounted

	Retiring          uint64
	FusedRetiring     uint64
	FrontendLatency   uint64
	FrontendBandwidth uint64
	BadSpeculation    uint64
	BackendCore       uint64
	BackendMemL1D     uint64
	BackendMemL2      uint64
	BackendMemLLC     uint64
	BackendMemDRAM    uint64
}

// bucket returns the counter for b. Out-of-range values cannot occur
// from in-package callers (they use the constants); mapping them to the
// last bucket keeps conservation intact rather than panicking.
func (t *TopDown) bucket(b TDBucket) *uint64 {
	switch b {
	case TDRetiring:
		return &t.Retiring
	case TDFusedRetiring:
		return &t.FusedRetiring
	case TDFrontendLatency:
		return &t.FrontendLatency
	case TDFrontendBandwidth:
		return &t.FrontendBandwidth
	case TDBadSpeculation:
		return &t.BadSpeculation
	case TDBackendCore:
		return &t.BackendCore
	case TDBackendMemL1D:
		return &t.BackendMemL1D
	case TDBackendMemL2:
		return &t.BackendMemL2
	case TDBackendMemLLC:
		return &t.BackendMemLLC
	}
	return &t.BackendMemDRAM
}

// Add attributes n slots to bucket b.
func (t *TopDown) Add(b TDBucket, n uint64) { *t.bucket(b) += n }

// Move reclassifies n slots from one bucket to another (squash moves a
// dispatched slot to bad-speculation; unfuse moves fused-retiring to
// retiring). The sum is preserved by construction; moving more slots
// than `from` holds wraps the counter, which CheckConservation's
// per-bucket bound then reports instead of silently absorbing.
func (t *TopDown) Move(from, to TDBucket, n uint64) {
	*t.bucket(from) -= n
	*t.bucket(to) += n
}

// TotalSlots sums every bucket.
func (t *TopDown) TotalSlots() uint64 {
	return t.Retiring + t.FusedRetiring + t.FrontendLatency + t.FrontendBandwidth +
		t.BadSpeculation + t.BackendCore + t.BackendMemory()
}

// BackendMemory sums the four memory-level buckets.
func (t *TopDown) BackendMemory() uint64 {
	return t.BackendMemL1D + t.BackendMemL2 + t.BackendMemLLC + t.BackendMemDRAM
}

// SlotBudget is the total slots the accounted cycles offered.
func (t *TopDown) SlotBudget() uint64 { return t.SlotsPerCycle * t.Cycles }

// CheckConservation verifies the slot-conservation invariant: every
// bucket within the budget (an underflowed Move shows up here as a
// near-2^64 count) and the bucket sum exactly equal to it.
func (t *TopDown) CheckConservation() error {
	budget := t.SlotBudget()
	for b := TDBucket(0); b < NumTDBuckets; b++ {
		if v := *t.bucket(b); v > budget {
			return fmt.Errorf("top-down bucket %v holds %d slots, budget is %d (underflowed Move?)", b, v, budget)
		}
	}
	if got := t.TotalSlots(); got != budget {
		return fmt.Errorf("top-down slots not conserved: buckets sum to %d, want %d (%d slots × %d cycles)",
			got, budget, t.SlotsPerCycle, t.Cycles)
	}
	return nil
}

// Rows enumerates the account as (name, value) pairs with the given
// prefix — the shape ooo.Stats.Rows splices into its dump surface. All
// twelve fields appear raw (no derived percentages) so the dump is
// loss-free and the conservation check can be re-run on a parsed dump.
func (t *TopDown) Rows(prefix string) [][2]string {
	u := func(v uint64) string { return fmt.Sprint(v) }
	return [][2]string{
		{prefix + "_slots_per_cycle", u(t.SlotsPerCycle)},
		{prefix + "_cycles", u(t.Cycles)},
		{prefix + "_retiring", u(t.Retiring)},
		{prefix + "_fused_retiring", u(t.FusedRetiring)},
		{prefix + "_frontend_latency", u(t.FrontendLatency)},
		{prefix + "_frontend_bandwidth", u(t.FrontendBandwidth)},
		{prefix + "_bad_speculation", u(t.BadSpeculation)},
		{prefix + "_backend_core", u(t.BackendCore)},
		{prefix + "_backend_mem_l1d", u(t.BackendMemL1D)},
		{prefix + "_backend_mem_l2", u(t.BackendMemL2)},
		{prefix + "_backend_mem_llc", u(t.BackendMemLLC)},
		{prefix + "_backend_mem_dram", u(t.BackendMemDRAM)},
	}
}
