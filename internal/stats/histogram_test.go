package stats

import (
	"testing"
)

// TestHistBucketMonotone asserts the bucket mapping is monotone and
// every bucket bound round-trips into its own bucket.
func TestHistBucketMonotone(t *testing.T) {
	last := -1
	for v := uint64(0); v < 1<<18; v++ {
		b := histBucket(v)
		if b < last {
			t.Fatalf("bucket(%d) = %d < previous %d: mapping not monotone", v, b, last)
		}
		last = b
	}
	for i := 0; i < NumHistBuckets; i++ {
		bound := HistBucketBound(i)
		if got := histBucket(bound); got != i {
			t.Errorf("bucket(bound(%d)=%d) = %d, want %d", i, bound, got, i)
		}
		if i > 0 && bound <= HistBucketBound(i-1) {
			t.Errorf("bound(%d)=%d not above bound(%d)=%d", i, bound, i-1, HistBucketBound(i-1))
		}
	}
}

// TestHistBucketBoundsExact pins the bucket edges: values one past a
// bound land in the next bucket.
func TestHistBucketBoundsExact(t *testing.T) {
	for i := 0; i < NumHistBuckets-1; i++ {
		bound := HistBucketBound(i)
		if got := histBucket(bound + 1); got != i+1 {
			t.Errorf("bucket(%d+1) = %d, want %d", bound, got, i+1)
		}
	}
}

// TestPercentile checks quantiles on a known distribution: bucket
// bounds quote a value >= the true percentile and within the bucket's
// relative error.
func TestPercentile(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	cases := []struct {
		p    int
		want uint64 // exact percentile of 1..1000
	}{{50, 500}, {95, 950}, {99, 990}, {100, 1000}}
	for _, c := range cases {
		got := h.Percentile(c.p)
		if got < c.want {
			t.Errorf("P%d = %d, below the true percentile %d", c.p, got, c.want)
		}
		// Log-linear with 4 sub-buckets: bound is < 25% above the value.
		if got > c.want+c.want/4+1 {
			t.Errorf("P%d = %d, more than 25%% above the true percentile %d", c.p, got, c.want)
		}
	}
	if h.Mean() != 500 {
		t.Errorf("Mean = %d, want 500", h.Mean())
	}
}

// TestPercentileSmall covers empty and single-sample histograms.
func TestPercentileSmall(t *testing.T) {
	var h Histogram
	if got := h.Percentile(50); got != 0 {
		t.Errorf("empty P50 = %d, want 0", got)
	}
	h.Observe(7)
	for _, p := range []int{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 7 {
			t.Errorf("single-sample P%d = %d, want 7", p, got)
		}
	}
}

// TestObserveClamp asserts out-of-range values land in the last bucket
// instead of indexing out of bounds.
func TestObserveClamp(t *testing.T) {
	var h Histogram
	h.Observe(1 << 40)
	if h.Buckets[NumHistBuckets-1] != 1 {
		t.Error("huge value did not clamp into the last bucket")
	}
	if got := h.Percentile(50); got != HistBucketBound(NumHistBuckets-1) {
		t.Errorf("P50 = %d, want last bucket bound %d", got, HistBucketBound(NumHistBuckets-1))
	}
}

// TestObserveNoAllocs pins the overhead contract: observing and
// extracting quantiles never allocates.
func TestObserveNoAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(42)
		h.Percentile(99)
	})
	if allocs != 0 {
		t.Errorf("Observe+Percentile allocated %.1f times per run, want 0", allocs)
	}
}

// TestRows asserts the Rows splice carries the five summary rows with
// the prefix applied.
func TestRows(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	rows := h.Rows("lat")
	if len(rows) != 5 {
		t.Fatalf("Rows returned %d entries, want 5", len(rows))
	}
	want := []string{"lat_count", "lat_mean", "lat_p50", "lat_p95", "lat_p99"}
	for i, w := range want {
		if rows[i][0] != w {
			t.Errorf("row %d named %q, want %q", i, rows[i][0], w)
		}
	}
	if rows[0][1] != "2" || rows[1][1] != "15" {
		t.Errorf("count/mean = %s/%s, want 2/15", rows[0][1], rows[1][1])
	}
}
