package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("Geomean(1,1,1) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	// Non-positive values are ignored rather than poisoning the result.
	if g := Geomean([]float64{0, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(0,4) = %v, want 4", g)
	}
}

func TestGeomeanBounds(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			return math.Mod(math.Abs(v), 1000) + 0.1
		}
		xs := []float64{clamp(a), clamp(b), clamp(c)}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo*(1-1e-12)-1e-9 && g <= hi*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset in each row.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") {
		t.Errorf("misaligned column:\n%s", out)
	}
	if tb.NumRows() != 2 || tb.Row(0)[0] != "alpha" {
		t.Error("row accessors wrong")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"u`)
	tb.AddRow("plain") // short row: missing cells render empty
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"u\"\nplain,\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F wrong")
	}
	if Pct(0.1234, 1) != "12.3%" {
		t.Error("Pct wrong")
	}
}
