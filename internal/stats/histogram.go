package stats

import (
	"fmt"
	"math/bits"
)

// NumHistBuckets is the fixed bucket count of Histogram: 16 exact
// buckets for values 0–15 plus 4 log-linear sub-buckets per power of two
// up to 2^24, which covers every latency the pipeline can produce (the
// watchdog bounds a single wait at 100k cycles) with ≤ 25% relative
// error in the tail.
const NumHistBuckets = 96

// Histogram is a fixed-bucket integer histogram for simulator latencies.
// Observation and quantile extraction use pure integer arithmetic and a
// fixed-size array: no floats in the hot path, no allocation ever, and
// byte-identical results across runs. The zero value is ready to use,
// and the struct copies by value (core.Result snapshots ooo.Stats).
type Histogram struct {
	Count   uint64
	Sum     uint64
	Buckets [NumHistBuckets]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Count++
	h.Sum += v
	h.Buckets[histBucket(v)]++
}

// HistBucketOf returns the bucket index a value lands in — the exported
// twin of histBucket for callers that keep per-bucket sidecars aligned
// with a Histogram (telemetry's exemplar store keys its slots this way).
func HistBucketOf(v uint64) int { return histBucket(v) }

// histBucket maps a value to its bucket index: exact below 16, then 4
// sub-buckets per octave, clamping at the last bucket.
func histBucket(v uint64) int {
	if v < 16 {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= 4
	sub := int((v >> (uint(exp) - 2)) & 3)
	idx := 16 + (exp-4)*4 + sub
	if idx >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return idx
}

// HistBucketBound returns the largest value bucket i can hold (its
// inclusive upper bound), the value quantiles report for the bucket.
func HistBucketBound(i int) uint64 {
	if i < 16 {
		return uint64(i)
	}
	exp := uint(4 + (i-16)/4)
	sub := uint64((i-16)%4 + 1)
	return 1<<exp + sub<<(exp-2) - 1
}

// Percentile returns the upper bound of the bucket containing the p-th
// percentile sample (p in 1..100), computed over the bucket counts so a
// partially copied histogram still answers consistently. Returns 0 for
// an empty histogram.
func (h *Histogram) Percentile(p int) uint64 {
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := (total*uint64(p) + 99) / 100
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= rank {
			return HistBucketBound(i)
		}
	}
	return HistBucketBound(NumHistBuckets - 1)
}

// Mean returns the integer mean of the observed samples (0 when empty).
func (h *Histogram) Mean() uint64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Merge adds o's samples into h, so per-workload histograms aggregate
// into suite-level percentiles. The bucket count is a compile-time
// constant, so the only way two histograms disagree on geometry is data
// produced by a binary built with a different NumHistBuckets — which a
// fixed-array JSON decode silently truncates or zero-fills into an
// internally inconsistent histogram. Merge therefore checks each side's
// bucket counts against its Count and refuses the mismatch instead of
// producing quietly wrong percentiles.
func (h *Histogram) Merge(o *Histogram) error {
	if err := h.checkGeometry("merge target"); err != nil {
		return err
	}
	if err := o.checkGeometry("merge source"); err != nil {
		return err
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	return nil
}

// checkGeometry verifies the histogram's internal consistency: the
// bucket counts must sum to Count, which any same-geometry Observe
// sequence guarantees and any cross-geometry import breaks.
func (h *Histogram) checkGeometry(role string) error {
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	if total != h.Count {
		return fmt.Errorf("stats: %s histogram bucket layout mismatch: %d bucketed samples vs count %d (produced with a different bucket geometry?)",
			role, total, h.Count)
	}
	return nil
}

// Rows enumerates the histogram's summary as (name, value) pairs using
// the given prefix: count, mean and the P50/P95/P99 quantiles — the
// shape ooo.Stats.Rows splices into its dump surface.
func (h *Histogram) Rows(prefix string) [][2]string {
	u := func(v uint64) string { return fmt.Sprint(v) }
	return [][2]string{
		{prefix + "_count", u(h.Count)},
		{prefix + "_mean", u(h.Mean())},
		{prefix + "_p50", u(h.Percentile(50))},
		{prefix + "_p95", u(h.Percentile(95))},
		{prefix + "_p99", u(h.Percentile(99))},
	}
}
