// Package stats provides the small numeric and table-formatting helpers
// the experiment harness uses to print paper-style tables and figure data.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (ignoring non-positive values,
// which would otherwise poison the logarithm).
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th data row.
func (t *Table) Row(i int) []string { return t.rows[i] }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i := range t.Headers {
			if i > 0 {
				b.WriteByte(',')
			}
			if i < len(row) {
				b.WriteString(esc(row[i]))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a percentage with the given precision.
func Pct(v float64, prec int) string { return fmt.Sprintf("%.*f%%", prec, 100*v) }
