// Package workloads provides the benchmark kernels used to evaluate the
// simulator. SPEC CPU 2017 and MiBench binaries cannot be built offline,
// so each paper workload is represented by a hand-written RV64 assembly
// kernel chosen to exercise the same behavioural axis: pointer chasing
// (605.mcf), match-copy store pressure (657.xz), table-lookup crypto
// (rijndael), branchy integer code (602.gcc, 600.perlbench), event queues
// (620.omnetpp), stencils (susan) and dense pair-able loads (basicmath,
// fft, typeset). See DESIGN.md for the substitution rationale.
package workloads

import (
	"fmt"
	"sort"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/trace"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name     string
	PaperRef string // the paper-suite workload it stands in for
	Source   string // RV64 assembly
	MaxInsts uint64 // dynamic instruction budget for experiments
	// WantExit is the expected exit code; kernels self-check where
	// feasible (0 = success).
	WantExit int
}

// Program assembles the kernel.
func (w Workload) Program() (*asm.Program, error) {
	p, err := asm.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

// NewMachine assembles and loads the kernel into a fresh emulator.
func (w Workload) NewMachine() (*emu.Machine, error) {
	p, err := w.Program()
	if err != nil {
		return nil, err
	}
	return emu.New(p), nil
}

// Trace returns a live program-order retirement source bounded by
// maxInsts (0 means the workload's own budget). Emulation faults surface
// through the source's Err, never as a silently truncated stream.
func (w Workload) Trace(maxInsts uint64) (trace.Source, error) {
	m, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	if maxInsts == 0 {
		maxInsts = w.MaxInsts
	}
	return trace.NewLive(m, maxInsts), nil
}

// Record emulates the kernel once and materializes its committed stream
// for replay-many use (0 means the workload's own budget).
func (w Workload) Record(maxInsts uint64) (*trace.Recording, error) {
	if maxInsts == 0 {
		maxInsts = w.MaxInsts
	}
	src, err := w.Trace(maxInsts)
	if err != nil {
		return nil, err
	}
	rec, err := trace.Record(src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	rec.Name = w.Name
	rec.MaxInsts = maxInsts
	return rec, nil
}

var registry = map[string]Workload{}

// mustRegister panics on a duplicate name: registration runs at init time
// from static workload definitions, so a duplicate is a build bug, not a
// runtime condition.
func mustRegister(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("duplicate workload " + w.Name)
	}
	if w.MaxInsts == 0 {
		w.MaxInsts = 400_000
	}
	registry[w.Name] = w
}

// All returns every workload, sorted by name.
func All() []Workload {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Names returns the sorted workload names.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}
