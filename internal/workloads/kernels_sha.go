package workloads

import (
	"fmt"
	"strings"
)

// shaSource generates the sha kernel. Real SHA-1 implementations unroll
// the 80-round loop in groups of 16 so the schedule ring indices become
// compile-time constants: every round then reads four words of w[16] at
// fixed offsets (taps i-3, i-8, i-14, i-16) and writes one back. The four
// taps always fall inside the single cache-line-aligned 64-byte ring, but
// at non-contiguous offsets — the paper's non-contiguous (NCTF) fusion
// case, invisible to consecutive+contiguous fusion.
func shaSource() string {
	var b strings.Builder
	b.WriteString(`
	.data
	.align 6
sched:
	.zero 64         # 16-word ring schedule, cache-line aligned
	.text
_start:
	la s0, sched
	# Seed the schedule.
	li t0, 0
	li t1, 0x67452301
	li t3, 0x9e3779b9
	li t4, 16
seed:
	slli t2, t0, 2
	add t2, s0, t2
	sw t1, 0(t2)
	add t1, t1, t3
	addi t0, t0, 1
	blt t0, t4, seed

	li s1, 260       # 16-round groups (~4 rounds of 80 per block x 65)
	li s2, 0xefcdab89 # state a
	li s3, 0x98badcfe # state b
	li s4, 0x10325476 # state c
blockloop:
`)
	for r := 0; r < 16; r++ {
		tap3 := (r + 13) % 16 * 4
		tap8 := (r + 8) % 16 * 4
		tap14 := (r + 2) % 16 * 4
		tap16 := r % 16 * 4
		fmt.Fprintf(&b, `	# Round %d: w[%d] = rotl1(w ^ taps), then compress.
	lwu t3, %d(s0)
	lwu t4, %d(s0)
	lwu t5, %d(s0)
	lwu t6, %d(s0)
	xor t3, t3, t4
	xor t3, t3, t5
	xor t3, t3, t6
	slliw a1, t3, 1
	srliw a2, t3, 31
	or t1, a1, a2
	sw t1, %d(s0)
	xor a1, s3, s4
	and a1, a1, s2
	xor a1, a1, s4
	addw s4, s3, t1
	mv s3, s2
	addw s2, a1, t1
`, r, r, tap3, tap8, tap14, tap16, tap16)
	}
	b.WriteString(`	addi s1, s1, -1
	bnez s1, blockloop

	li a7, 93
	li a0, 0
	ecall
`)
	return b.String()
}
