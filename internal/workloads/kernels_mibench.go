package workloads

// MiBench-style kernels: the paper evaluates the MiBench large inputs;
// these kernels reproduce each benchmark's inner-loop character. Hot loops
// are written the way -O3 compiled code looks: loop-invariant constants
// are hoisted into registers and affine addressing is strength-reduced to
// pointer increments; only data-dependent indexing (table lookups, ring
// buffers) keeps the shift-add address idiom.

func init() {
	mustRegister(Workload{
		Name:     "crc32",
		PaperRef: "MiBench crc32",
		MaxInsts: 300_000,
		Source: `
	.data
table:
	.zero 1024
buf:
	.zero 8192
	.text
_start:
	# Build the CRC-32 table.
	la s0, table
	li s1, 0
	li s9, 256
	li s10, 0xEDB88320
tloop:
	mv t0, s1
	li t1, 8
bitloop:
	andi t2, t0, 1
	srli t0, t0, 1
	beqz t2, skipxor
	xor t0, t0, s10
skipxor:
	addi t1, t1, -1
	bnez t1, bitloop
	slli t4, s1, 2
	add t5, s0, t4
	sw t0, 0(t5)
	addi s1, s1, 1
	blt s1, s9, tloop

	# Fill the buffer with an LCG byte stream (pointer walk).
	la s2, buf
	li s4, 12345
	li s5, 1103515245
	li s7, 12345
	mv t0, s2
	li t5, 8192
	add s8, s2, t5   # end
fill:
	mul s4, s4, s5
	add s4, s4, s7
	srli t2, s4, 16
	sb t2, 0(t0)
	addi t0, t0, 1
	bltu t0, s8, fill

	# CRC the buffer: pointer walk, data-dependent table lookup.
	li s6, 0xffffffff
	mv t0, s2
crcloop:
	lbu t2, 0(t0)
	xor t3, s6, t2
	andi t3, t3, 255
	slli t3, t3, 2
	add t3, s0, t3
	lwu t4, 0(t3)
	srli s6, s6, 8
	xor s6, s6, t4
	addi t0, t0, 1
	bltu t0, s8, crcloop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "bitcount",
		PaperRef: "MiBench bitcount",
		MaxInsts: 320_000,
		Source: `
	.data
nibbles:
	.byte 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4
counts:
	.zero 2048
	.text
_start:
	la s0, nibbles
	la s10, counts
	li s11, 0        # output index
	li s1, 6000      # values to count
	li s2, 987654321 # LCG state
	li s3, 1664525
	li s4, 0         # accumulator (parallel-bits method)
	li s5, 0         # accumulator (nibble-table method)
	li s6, 0x5555555555555555
	li s7, 0x3333333333333333
	li s8, 0x0f0f0f0f0f0f0f0f
	li s9, 1013904223
vloop:
	mul s2, s2, s3
	add s2, s2, s9
	mv t0, s2

	# Method 1: parallel bit counting.
	srli t1, t0, 1
	and t1, t1, s6
	sub t1, t0, t1
	srli t2, t1, 2
	and t2, t2, s7
	and t1, t1, s7
	add t1, t1, t2
	srli t2, t1, 4
	add t1, t1, t2
	and t1, t1, s8
	srli t2, t1, 8
	add t1, t1, t2
	srli t2, t1, 16
	add t1, t1, t2
	srli t2, t1, 32
	add t1, t1, t2
	andi t1, t1, 127
	add s4, s4, t1

	# Method 2: nibble table over the low 16 bits (data-dependent).
	andi t3, t0, 15
	add t4, s0, t3
	lbu t5, 0(t4)
	add s5, s5, t5
	srli t3, t0, 4
	andi t3, t3, 15
	add t4, s0, t3
	lbu t5, 0(t4)
	add s5, s5, t5
	srli t3, t0, 8
	andi t3, t3, 15
	add t4, s0, t3
	lbu t5, 0(t4)
	add s5, s5, t5
	srli t3, t0, 12
	andi t3, t3, 15
	add t4, s0, t3
	lbu t5, 0(t4)
	add s5, s5, t5

	# Record this value's count.
	andi s11, s11, 2047
	add t6, s10, s11
	sb t1, 0(t6)
	addi s11, s11, 1

	addi s1, s1, -1
	bnez s1, vloop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "qsort",
		PaperRef: "MiBench qsort",
		MaxInsts: 400_000,
		Source: `
	.data
arr:
	.zero 8192       # 1024 dwords
	.text
_start:
	# Fill with LCG values (pointer walk).
	la s0, arr
	li t1, 424242
	li t2, 6364136223846793005
	li s4, 1442695040888963407
	mv t0, s0
	li t6, 8192
	add s5, s0, t6   # end
fillq:
	mul t1, t1, t2
	add t1, t1, s4
	srli t3, t1, 33
	sd t3, 0(t0)
	addi t0, t0, 8
	bltu t0, s5, fillq

	# Iterative quicksort with an explicit range stack; the partition
	# walks element pointers as compiled code would.
	mv s3, sp        # stack sentinel
	li s1, 0
	li s2, 1023
	addi sp, sp, -16
	sd s1, 0(sp)
	sd s2, 8(sp)
qloop:
	beq sp, s3, qdone
	ld s1, 0(sp)
	ld s2, 8(sp)
	addi sp, sp, 16
	bge s1, s2, qloop
	# Lomuto partition, pivot = arr[hi].
	slli t0, s2, 3
	add t0, s0, t0   # &arr[hi]
	ld t1, 0(t0)     # pivot
	slli t2, s1, 3
	add t2, s0, t2   # i pointer
	mv t3, t2        # j pointer
part:
	bgeu t3, t0, partdone
	ld t5, 0(t3)
	bgeu t5, t1, noswap
	ld a1, 0(t2)
	sd t5, 0(t2)
	sd a1, 0(t3)
	addi t2, t2, 8
noswap:
	addi t3, t3, 8
	j part
partdone:
	ld t5, 0(t2)
	sd t1, 0(t2)
	sd t5, 0(t0)
	# Convert the i pointer back to an index; push (lo, i-1), (i+1, hi).
	sub t4, t2, s0
	srli t4, t4, 3
	addi a2, t4, -1
	addi a3, t4, 1
	addi sp, sp, -32
	sd s1, 0(sp)
	sd a2, 8(sp)
	sd a3, 16(sp)
	sd s2, 24(sp)
	j qloop
qdone:
	# Verify sortedness; exit 1 on failure.
	addi t0, s0, 8
	li t6, 8192
	add t6, s0, t6
verify:
	ld t2, 0(t0)
	ld t3, -8(t0)
	bltu t2, t3, bad
	addi t0, t0, 8
	bltu t0, t6, verify
	li a7, 93
	li a0, 0
	ecall
bad:
	li a7, 93
	li a0, 1
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "sha",
		PaperRef: "MiBench sha (unrolled SHA-1 schedule + compress)",
		MaxInsts: 300_000,
		Source:   shaSource(),
	})

	mustRegister(Workload{
		Name:     "stringsearch",
		PaperRef: "MiBench stringsearch",
		MaxInsts: 300_000,
		Source: `
	.data
text:
	.zero 2048
pats:
	.zero 256        # 16 patterns x 16 bytes
	.text
_start:
	# Generate pseudo-text of letters a-p (pointer walk).
	la s0, text
	li t1, 777
	li t2, 1103515245
	li s3, 12345
	li s8, 54321
	mv t0, s0
	li t5, 2048
	add s9, s0, t5   # text end
gentext:
	mul t1, t1, t2
	add t1, t1, s3
	srli t3, t1, 20
	andi t3, t3, 15
	addi t3, t3, 97
	sb t3, 0(t0)
	addi t0, t0, 1
	bltu t0, s9, gentext

	# Generate 16 patterns of 8 letters each (stride 16).
	la s1, pats
	li t0, 0
	li t5, 256
	li s10, 8
genpat:
	mul t1, t1, t2
	add t1, t1, s8
	andi t6, t0, 15
	bgeu t6, s10, patskip
	srli t3, t1, 18
	andi t3, t3, 15
	addi t3, t3, 97
	add t4, s1, t0
	sb t3, 0(t4)
patskip:
	addi t0, t0, 1
	blt t0, t5, genpat

	# Naive search: for each pattern, scan the text with a pointer.
	li s2, 0         # pattern index
	li s4, 0         # match count
	addi s11, s9, -8 # scan end
patloop:
	slli t0, s2, 4
	add s5, s1, t0   # pattern base
	lbu s6, 0(s5)    # first char
	mv t1, s0        # text pointer
scan:
	lbu t2, 0(t1)
	bne t2, s6, nomatch
	# Compare the remaining 7 chars.
	li t3, 1
cmploop:
	add t4, s5, t3
	lbu t5, 0(t4)
	add t4, t1, t3
	lbu t6, 0(t4)
	bne t5, t6, nomatch
	addi t3, t3, 1
	blt t3, s10, cmploop
	addi s4, s4, 1
nomatch:
	addi t1, t1, 1
	bltu t1, s11, scan
	addi s2, s2, 1
	li t5, 16
	blt s2, t5, patloop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "basicmath",
		PaperRef: "MiBench basicmath",
		MaxInsts: 350_000,
		Source: `
	.data
results:
	.zero 2048       # 256 dwords, result ring
	.text
_start:
	la s9, results
	li s11, 0        # ring index
	li s0, 2000      # iterations
	li s1, 99991     # LCG state
	li s2, 22695477
	li s10, 0        # checksum
	li s3, 0xfffff   # mask (hoisted)
	li s4, 32768     # sqrt initial guess (hoisted)
mloop:
	mul s1, s1, s2
	addi s1, s1, 1
	srli t0, s1, 33  # a
	srli t1, s1, 12
	and t1, t1, s3   # b
	addi t0, t0, 3
	addi t1, t1, 7

	# gcd(a, b) by remainder.
	mv t3, t0
	mv t4, t1
gcd:
	beqz t4, gcddone
	rem t5, t3, t4
	mv t3, t4
	mv t4, t5
	j gcd
gcddone:
	add s10, s10, t3

	# Integer square root by Newton iteration.
	mv t3, t0
	beqz t3, sqrtdone
	mv t4, s4
	li t6, 8
newton:
	div t5, t3, t4
	add t4, t4, t5
	srli t4, t4, 1
	addi t6, t6, -1
	bnez t6, newton
sqrtdone:
	add s10, s10, t4

	# Cubic polynomial evaluation (Horner).
	mv t3, t1
	li t4, 3
	mul t5, t3, t4
	addi t5, t5, -5
	mul t5, t5, t3
	addi t5, t5, 7
	mul t5, t5, t3
	addi t5, t5, -11
	add s10, s10, t5

	# Store the iteration result and fold in an older one.
	andi s11, s11, 255
	slli t6, s11, 3
	add t6, s9, t6
	ld a1, 0(t6)
	add s10, s10, a1
	sd s10, 0(t6)
	addi s11, s11, 1

	addi s0, s0, -1
	bnez s0, mloop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "fft",
		PaperRef: "MiBench fft (fixed point, interleaved complex)",
		MaxInsts: 350_000,
		Source: `
	.data
	.align 6
cplx:
	.zero 8192       # 512 complex points x 16 bytes {re, im}
tw:
	.zero 2048       # 256 twiddle dwords
	.text
_start:
	la s0, cplx
	la s2, tw
	# Fill inputs and twiddles with an LCG (pointer walks).
	li t1, 31337
	li t2, 6364136223846793005
	li s7, 1442695040888963407
	li s9, 0xffffff
	mv t0, s0
	li t6, 8192
	add s10, s0, t6  # cplx end
ffill:
	mul t1, t1, t2
	add t1, t1, s7
	srli t3, t1, 40
	sd t3, 0(t0)     # re
	srli t3, t1, 20
	and t3, t3, s9
	sd t3, 8(t0)     # im
	addi t0, t0, 16
	bltu t0, s10, ffill
	mv t0, s2
	li t6, 2048
	add s11, s2, t6  # tw end
tfill:
	mul t1, t1, t2
	addi t1, t1, 99
	srli t3, t1, 48
	sd t3, 0(t0)
	addi t0, t0, 8
	bltu t0, s11, tfill

	# 9 radix-2 passes over 512 interleaved complex points, repeated.
	li s8, 4         # transforms
xform:
	li s3, 1         # half-span (elements)
	li s4, 9         # passes
pass:
	mv s5, s0        # group pointer
	slli s6, s3, 4   # half-span in bytes
group:
	mv t2, s5        # top pointer
	add t4, s5, s6   # bottom pointer
	add a5, s5, s6   # group end for the butterfly walk
	mv a1, s2        # twiddle pointer
bfly:
	ld t3, 0(t2)     # re[top]
	ld a6, 8(t2)     # im[top] (contiguous pair)
	ld t5, 0(t4)     # re[bot]
	ld t6, 8(t4)     # im[bot] (contiguous pair)
	ld a2, 0(a1)     # twiddle
	mul t5, t5, a2
	srai t5, t5, 16
	mul t6, t6, a2
	srai t6, t6, 16
	add a3, t3, t5
	sd a3, 0(t2)
	add a4, a6, t6
	sd a4, 8(t2)     # store pair (separated by one ALU op)
	sub a3, t3, t5
	sd a3, 0(t4)
	sub a4, a6, t6
	sd a4, 8(t4)     # store pair (separated by one ALU op)
	addi t2, t2, 16
	addi t4, t4, 16
	addi a1, a1, 8
	bltu t2, a5, bfly
	slli t6, s6, 1
	add s5, s5, t6
	bltu s5, s10, group
	slli s3, s3, 1
	addi s4, s4, -1
	bnez s4, pass
	addi s8, s8, -1
	bnez s8, xform

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "dijkstra",
		PaperRef: "MiBench dijkstra",
		MaxInsts: 400_000,
		Source: `
	.data
adj:
	.zero 36864      # 96 x 96 words
dist:
	.zero 384        # 96 words
vis:
	.zero 96
	.text
_start:
	la s0, adj
	la s1, dist
	la s2, vis
	li s3, 96        # N

	# Random weight matrix (pointer walk).
	li t1, 55555
	li t2, 1103515245
	li s5, 12345
	mv t0, s0
	li t5, 36864
	add s6, s0, t5   # adj end
wfill:
	mul t1, t1, t2
	add t1, t1, s5
	srli t3, t1, 16
	andi t3, t3, 1023
	addi t3, t3, 1
	sw t3, 0(t0)
	addi t0, t0, 4
	bltu t0, s6, wfill

	li s11, 2        # runs with different sources
	li s10, 0        # source node
	li s7, 0x3fffffff # INF (hoisted)
	slli s8, s3, 2
	add s8, s1, s8   # dist end
run:
	# Initialise dist = INF, vis = 0; dist[src] = 0.
	mv t0, s1
	mv t3, s2
init:
	sw s7, 0(t0)
	sb zero, 0(t3)
	addi t0, t0, 4
	addi t3, t3, 1
	bltu t0, s8, init
	slli t1, s10, 2
	add t1, s1, t1
	sw zero, 0(t1)

	mv s4, s3        # iterations
dloop:
	# Find the unvisited node with minimal distance (pointer walk).
	mv t0, s2        # vis pointer
	mv t5, s1        # dist pointer
	li a1, -1        # best index
	li t6, 0         # index
	mv a2, s7
find:
	lbu t4, 0(t0)
	bnez t4, findnext
	lw a4, 0(t5)
	bge a4, a2, findnext
	mv a2, a4
	mv a1, t6
findnext:
	addi t0, t0, 1
	addi t5, t5, 4
	addi t6, t6, 1
	blt t6, s3, find
	bltz a1, rundone
	# Mark visited and relax neighbours (paired row/dist pointers).
	add t3, s2, a1
	li t4, 1
	sb t4, 0(t3)
	mul t5, a1, s3
	slli t5, t5, 2
	add t5, s0, t5   # row pointer
	mv a3, s1        # dist pointer
relax:
	lw a4, 0(t5)     # weight
	lw a6, 0(a3)     # current distance (DBR pair with the weight load)
	add a5, a2, a4
	bge a5, a6, relaxnext
	sw a5, 0(a3)
relaxnext:
	addi t5, t5, 4
	addi a3, a3, 4
	bltu a3, s8, relax
	addi s4, s4, -1
	bnez s4, dloop
rundone:
	addi s10, s10, 17
	addi s11, s11, -1
	bnez s11, run

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "susan",
		PaperRef: "MiBench susan (smoothing)",
		MaxInsts: 350_000,
		Source: `
	.data
img:
	.zero 7744       # 88 x 88 bytes
out:
	.zero 7744
	.text
_start:
	la s0, img
	la s1, out
	li s2, 88        # dimension

	# Random image (pointer walk).
	li t1, 4242
	li t2, 1664525
	li s5, 1013904223
	mv t0, s0
	li t5, 7744
	add s6, s0, t5
ifill:
	mul t1, t1, t2
	add t1, t1, s5
	srli t3, t1, 24
	sb t3, 0(t0)
	addi t0, t0, 1
	bltu t0, s6, ifill

	# 3x3 box filter over the interior: the centre and output pointers
	# walk the row; neighbour taps are constant offsets (three contiguous
	# byte loads per stencil row).
	li s7, 57        # divide-by-9 multiplier (hoisted)
	li s3, 1         # row
	addi s8, s2, -1  # bound
rowloop:
	mul t0, s3, s2
	addi t0, t0, 1
	add t1, s0, t0   # centre pointer
	add t4, s1, t0   # output pointer
	addi s4, s8, -1  # columns to process
colloop:
	addi t2, t1, -89
	lbu a1, 0(t2)
	lbu a2, 1(t2)
	lbu a3, 2(t2)
	add a1, a1, a2
	add a1, a1, a3
	addi t2, t1, -1
	lbu a2, 0(t2)
	lbu a3, 1(t2)
	lbu a4, 2(t2)
	add a2, a2, a3
	add a1, a1, a2
	add a1, a1, a4
	addi t2, t1, 87
	lbu a2, 0(t2)
	lbu a3, 1(t2)
	lbu a4, 2(t2)
	add a2, a2, a3
	add a1, a1, a2
	add a1, a1, a4
	mul a1, a1, s7
	srli a1, a1, 9
	sb a1, 0(t4)
	addi t1, t1, 1
	addi t4, t4, 1
	addi s4, s4, -1
	bnez s4, colloop
	addi s3, s3, 1
	blt s3, s8, rowloop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "rijndael",
		PaperRef: "MiBench rijndael",
		MaxInsts: 300_000,
		Source: `
	.data
tbox:
	.zero 4096       # 4 tables x 256 words
cipher:
	.zero 8192       # ciphertext output ring
	.text
_start:
	la s0, tbox
	la s8, cipher
	mv s9, s8        # output pointer
	li s10, 8192
	add s10, s8, s10 # output end
	# Fill the lookup tables (pointer walk).
	li t1, 0xc0ffee
	li t2, 22695477
	mv t0, s0
	li t5, 4096
	add s3, s0, t5
tfill:
	mul t1, t1, t2
	addi t1, t1, 1
	srli t3, t1, 13
	sw t3, 0(t0)
	addi t0, t0, 4
	bltu t0, s3, tfill

	li s1, 2200      # blocks
	addi s4, s0, 1024 # table 1 base
	addi s5, s4, 1024 # table 2 base
	addi s6, s5, 1024 # table 3 base
	li s2, 0x0123456789abcdef # running block state
blockloop:
	mv t0, s2
	li s7, 4         # rounds
roundloop:
	# Four data-dependent table lookups on the state bytes.
	andi t1, t0, 255
	slli t1, t1, 2
	add t1, s0, t1
	lwu t2, 0(t1)
	srli t3, t0, 8
	andi t3, t3, 255
	slli t3, t3, 2
	add t3, s4, t3
	lwu t4, 0(t3)
	srli t5, t0, 16
	andi t5, t5, 255
	slli t5, t5, 2
	add t5, s5, t5
	lwu t6, 0(t5)
	srli a1, t0, 24
	andi a1, a1, 255
	slli a1, a1, 2
	add a1, s6, a1
	lwu a2, 0(a1)
	# Combine.
	xor t2, t2, t4
	slli t6, t6, 13
	xor t2, t2, t6
	slli a2, a2, 29
	xor t0, t2, a2
	addi s7, s7, -1
	bnez s7, roundloop
	add s2, s2, t0
	addi s2, s2, 1
	# Emit the ciphertext block: two stores separated by the whitening
	# computation (a non-consecutive same-base store pair).
	sd t0, 0(s9)
	xor t2, t0, s2
	slli t2, t2, 3
	sd t2, 8(s9)
	addi s9, s9, 16
	bltu s9, s10, cipherok
	mv s9, s8
cipherok:
	addi s1, s1, -1
	bnez s1, blockloop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "adpcm",
		PaperRef: "MiBench adpcm",
		MaxInsts: 300_000,
		Source: `
	.data
steps:
	.word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31
	.word 34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143
outbuf:
	.zero 4096
	.text
_start:
	la s0, steps
	la s7, outbuf
	li s8, 0         # output index
	li s1, 18000     # samples
	li s2, 31415     # LCG
	li s3, 1103515245
	li s4, 0         # predictor
	li s5, 8         # step index
	li s6, 12345
	li s9, 0xffff    # sample mask (hoisted)
	li s10, 4        # magnitude threshold (hoisted)
	li s11, 31       # max index (hoisted)
sloop:
	mul s2, s2, s3
	add s2, s2, s6
	srli t0, s2, 18
	and t0, t0, s9   # sample
	sub t1, t0, s4   # diff
	bgez t1, pos
	neg t1, t1
	li t6, 8         # sign bit
	j quant
pos:
	li t6, 0
quant:
	slli t2, s5, 2
	add t2, s0, t2
	lw t3, 0(t2)     # step (data-dependent lookup)
	li t4, 0
	blt t1, t3, q1
	ori t4, t4, 4
	sub t1, t1, t3
q1:
	srai t5, t3, 1
	blt t1, t5, q2
	ori t4, t4, 2
	sub t1, t1, t5
q2:
	srai t5, t3, 2
	blt t1, t5, q3
	ori t4, t4, 1
q3:
	or t4, t4, t6
	# Emit the code to the output stream.
	andi a6, s8, 2047
	add a2, s7, a6
	sb t4, 0(a2)
	addi s8, s8, 1
	# Update the predictor and step index.
	andi a2, t4, 7
	mul a3, a2, t3
	srai a3, a3, 2
	beqz t6, addpred
	sub s4, s4, a3
	j clamp
addpred:
	add s4, s4, a3
clamp:
	# Index update: +-1 based on code magnitude.
	blt a2, s10, dec
	addi s5, s5, 2
	j clampidx
dec:
	addi s5, s5, -1
clampidx:
	bgez s5, notneg
	li s5, 0
notneg:
	ble s5, s11, idxok
	li s5, 31
idxok:
	addi s1, s1, -1
	bnez s1, sloop

	li a7, 93
	li a0, 0
	ecall
`,
	})
}
