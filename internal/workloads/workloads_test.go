package workloads

import (
	"testing"

	"helios/internal/emu"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"adpcm", "basicmath", "bitcount", "crc32", "dijkstra", "fft",
		"gcc", "mcf", "omnetpp", "perlbench", "qsort", "rijndael",
		"sha", "stringsearch", "susan", "typeset", "xz",
	}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("registry has %d workloads: %v", len(got), got)
	}
	for _, n := range want {
		if _, ok := ByName(n); !ok {
			t.Errorf("workload %q missing", n)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName accepted a bogus name")
	}
}

// TestAllWorkloadsRunToCompletion executes every kernel functionally,
// checking it terminates with the expected exit code within its
// instruction budget (plus slack).
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m, err := w.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			n, err := m.Run(w.MaxInsts * 4)
			if err != nil {
				t.Fatalf("after %d insts: %v", n, err)
			}
			if !m.Halted() {
				t.Fatalf("did not halt within %d instructions", w.MaxInsts*4)
			}
			if m.ExitCode() != w.WantExit {
				t.Errorf("exit = %d, want %d", m.ExitCode(), w.WantExit)
			}
			// Each kernel should be substantial: at least 50k dynamic
			// instructions (so experiments measure steady state), and it
			// should roughly respect its declared budget.
			if n < 50_000 {
				t.Errorf("only %d dynamic instructions; too small to measure", n)
			}
			t.Logf("%s: %d dynamic instructions", w.Name, n)
		})
	}
}

// TestWorkloadsAreDeterministic runs each kernel twice and compares the
// full retirement streams.
func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s1, err := w.Trace(20_000)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := w.Trace(20_000)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; ; i++ {
				r1, ok1 := s1.Next()
				r2, ok2 := s2.Next()
				if ok1 != ok2 {
					t.Fatalf("streams diverge in length at %d", i)
				}
				if !ok1 {
					break
				}
				if r1 != r2 {
					t.Fatalf("streams diverge at %d: %+v vs %+v", i, r1, r2)
				}
			}
			if err := s1.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadsTouchMemory verifies every kernel actually exercises the
// memory system (the paper is about memory fusion).
func TestWorkloadsTouchMemory(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s, err := w.Trace(0) // full budget: past any init-fill phase
			if err != nil {
				t.Fatal(err)
			}
			var loads, stores, total int
			for {
				r, ok := s.Next()
				if !ok {
					break
				}
				total++
				if r.IsLoad() {
					loads++
				}
				if r.IsStore() {
					stores++
				}
			}
			if loads == 0 {
				t.Error("kernel performs no loads")
			}
			if stores == 0 {
				t.Error("kernel performs no stores")
			}
			frac := float64(loads+stores) / float64(total)
			t.Logf("%s: %.1f%% memory µ-ops", w.Name, 100*frac)
		})
	}
}

func TestTraceBound(t *testing.T) {
	w, _ := ByName("crc32")
	s, err := w.Trace(100)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("stream yielded %d records, want 100", n)
	}
	if rec, err := w.Record(100); err != nil || rec.Len() != 100 {
		t.Errorf("Record = %d records, err %v; want 100", rec.Len(), err)
	}
}

func TestProgramsAssembleOnce(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Program(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// TestQsortSelfCheck ensures the self-verifying kernel actually fails when
// the data is unsorted (sanity for the checker itself): we run it normally
// and require exit 0, which TestAllWorkloadsRunToCompletion covers; here
// we additionally confirm it retires a sensible mix of work.
func TestQsortSelfCheck(t *testing.T) {
	w, _ := ByName("qsort")
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() || m.ExitCode() != 0 {
		t.Fatalf("qsort self-check failed: halted=%v exit=%d", m.Halted(), m.ExitCode())
	}
}

var sinkRetired emu.Retired

func BenchmarkEmulation(b *testing.B) {
	w, _ := ByName("crc32")
	s, err := w.Trace(uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := s.Next()
		if !ok {
			s, _ = w.Trace(uint64(b.N))
			continue
		}
		sinkRetired = r
	}
}
