package workloads

// SPEC CPU 2017-style kernels: each reproduces the dominant inner-loop
// behaviour of the corresponding paper workload, in the pointer-increment
// style -O3 code uses.

func init() {
	mustRegister(Workload{
		Name:     "mcf",
		PaperRef: "605.mcf (pointer chasing over arcs)",
		MaxInsts: 300_000,
		Source: `
	.data
nodes:
	.zero 262144     # 8192 nodes x 32 bytes (exceeds the L1D: the chase
	                 # is cache-latency bound, as 605.mcf is DRAM bound)
	.text
_start:
	la s0, nodes
	li s1, 8192      # node count

	# Link node[i] -> node[(i*1657+17) % 4096]: a full permutation walk
	# with a cache-hostile stride; the payload fields sit next to the
	# pointer (pair-able loads on traversal).
	li t0, 0
	li s2, 1657
	li s3, 8191
	mv t4, s0        # this-node pointer
build:
	mul t2, t0, s2
	addi t2, t2, 17
	and t2, t2, s3
	slli t3, t2, 5
	add t3, s0, t3   # next node address
	sd t3, 0(t4)     # next pointer
	sd t0, 8(t4)     # cost payload
	sd t2, 16(t4)    # flow payload
	addi t4, t4, 32
	addi t0, t0, 1
	blt t0, s1, build

	# Chase the list, accumulating cost+flow (ld 8(x) / ld 16(x) pair).
	li s4, 6         # passes
	li s5, 0         # checksum
chase:
	mv t0, s0
	li t1, 8192
walk:
	ld t2, 8(t0)
	ld t3, 16(t0)
	add s5, s5, t2
	add s5, s5, t3
	ld t0, 0(t0)
	addi t1, t1, -1
	bnez t1, walk
	addi s4, s4, -1
	bnez s4, chase

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "xz",
		PaperRef: "657.xz (LZ match emission, store-queue pressure)",
		MaxInsts: 350_000,
		Source: `
	.data
src:
	.zero 16384
dst:
	.zero 32768
	.text
_start:
	la s0, src
	la s1, dst

	# Seed the source window (pointer walk).
	li t1, 271828
	li t2, 6364136223846793005
	li s7, 1442695040888963407
	mv t0, s0
	li t4, 16384
	add s8, s0, t4   # src end
sfill:
	mul t1, t1, t2
	add t1, t1, s7
	sd t1, 0(t0)
	addi t0, t0, 8
	bltu t0, s8, sfill

	# LZ match emission: each match writes a token header (three small
	# stores into one line, separated by the length/offset computations,
	# i.e. non-consecutive store pairs) and then copies 32 bytes with
	# loads and stores interleaved with ALU work, as compilers schedule
	# them. Store bursts far exceed one store per cycle: the store queue
	# is the bottleneck, which memory fusion relieves (the paper's 657.xz
	# behaviour).
	li s2, 2600      # matches
	li s3, 0         # destination offset
	li s4, 918273    # LCG
	li s5, 22695477
	li s6, 12345
	li s9, 16319     # source offset mask
	li s10, 32640    # destination wrap bound
match:
	mul s4, s4, s5
	add s4, s4, s6
	srli t0, s4, 16
	and t0, t0, s9
	andi t0, t0, -8
	add t1, s0, t0   # source pointer
	add t2, s1, s3   # destination pointer
	# Token header: tag byte, length halfword, offset word. The stores
	# hit the same line but are separated by the field computations.
	srli t4, s4, 8
	sb t4, 0(t2)
	srli t5, s4, 24
	andi t5, t5, 63
	addi t5, t5, 3   # match length field
	sh t5, 2(t2)
	xor a5, t5, t0
	slli a5, a5, 1
	sw a5, 4(t2)
	# Copy 64 bytes: load pairs feed stores; each store pair is split by
	# real work (pointer bumps, checksum updates), so only non-consecutive
	# fusion can pair the stores. The burst exceeds one store per cycle:
	# the store queue is the binding resource.
	ld a1, 0(t1)
	ld a2, 8(t1)
	sd a1, 8(t2)
	addi t1, t1, 16
	srli a6, a1, 32
	sd a2, 16(t2)
	ld a3, 0(t1)
	ld a4, 8(t1)
	sd a3, 24(t2)
	xor a6, a6, a4
	sd a4, 32(t2)
	ld a1, 0(t1)
	ld a2, 8(t1)
	sd a1, 40(t2)
	addi t1, t1, 16
	add s11, s11, a6
	sd a2, 48(t2)
	ld a3, 0(t1)
	ld a4, 8(t1)
	sd a3, 56(t2)
	xor a6, a3, a4
	add s11, s11, a6
	sd a4, 64(t2)
	addi s3, s3, 72
	bltu s3, s10, nowrap
	li s3, 0
nowrap:
	addi s2, s2, -1
	bnez s2, match

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "gcc",
		PaperRef: "602.gcc (hash tables, branchy integer)",
		MaxInsts: 350_000,
		Source: `
	.data
htab:
	.zero 65536      # 2048 buckets x 32 bytes (key, value, count, flags)
	.text
_start:
	la s0, htab
	li s1, 14000     # operations
	li s2, 133331    # LCG
	li s3, 1664525
	li s4, 0         # hits
	li s5, 0         # inserts
	li s6, 1013904223
	li s7, 0xffff    # key mask (hoisted)
	li s8, 2654435761 # hash multiplier (hoisted)
	li s9, 65536
	add s9, s0, s9   # table end (hoisted)
oploop:
	mul s2, s2, s3
	add s2, s2, s6
	srli t0, s2, 16
	and t0, t0, s7
	addi t0, t0, 1   # key (never 0)
	# Multiplicative hash to a bucket.
	mul t3, t0, s8
	srli t3, t3, 16
	andi t3, t3, 2047
	slli t3, t3, 5
	add t3, s0, t3   # bucket address
	ld t4, 0(t3)     # stored key
	beqz t4, insert
	bne t4, t0, collide
	# Hit: update the record fields; the stores are separated by the
	# field computations (non-consecutive same-base store pairs).
	ld t5, 8(t3)
	addi t5, t5, 1
	sd t5, 8(t3)
	ld t6, 16(t3)
	add t6, t6, t0
	sd t6, 16(t3)
	xor a2, t5, t6
	sd a2, 24(t3)
	addi s4, s4, 1
	j opnext
collide:
	# Linear probe one step (wrap inside the table).
	addi t3, t3, 32
	bltu t3, s9, probeok
	mv t3, s0
probeok:
	ld t4, 0(t3)
	beqz t4, insert
	bne t4, t0, opnext  # give up after one probe
	ld t5, 8(t3)
	addi t5, t5, 1
	sd t5, 8(t3)
	addi s4, s4, 1
	j opnext
insert:
	sd t0, 0(t3)
	li t5, 1
	sd t5, 8(t3)
	add t6, t0, t5
	sd t6, 16(t3)
	slli a2, t0, 1
	sd a2, 24(t3)
	addi s5, s5, 1
opnext:
	addi s1, s1, -1
	bnez s1, oploop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "perlbench",
		PaperRef: "600.perlbench (string hashing)",
		MaxInsts: 350_000,
		Source: `
	.data
text:
	.zero 4096
	.text
_start:
	la s0, text
	# Generate words of 3-10 letters separated by spaces.
	li t0, 0
	li t1, 161803
	li t2, 22695477
	li s2, 12345
	li t6, 4094
gen:
	mul t1, t1, t2
	add t1, t1, s2
	srli t3, t1, 16
	andi t4, t3, 7
	addi t4, t4, 3   # word length
word:
	mul t1, t1, t2
	add t1, t1, s2
	srli t3, t1, 20
	andi t3, t3, 25
	addi t3, t3, 97
	add t5, s0, t0
	sb t3, 0(t5)
	addi t0, t0, 1
	bge t0, t6, gendone
	addi t4, t4, -1
	bnez t4, word
	add t5, s0, t0
	li t3, 32
	sb t3, 0(t5)
	addi t0, t0, 1
	blt t0, t6, gen
gendone:
	add t5, s0, t0
	sb zero, 0(t5)   # terminator

	# Hash every word, several passes (pointer walk).
	li s1, 6         # passes
	li s10, 0        # checksum
	li s3, 32        # space (hoisted)
	li s4, 5381      # hash seed (hoisted)
pass:
	mv t0, s0        # text pointer
	mv t2, s4        # hash state
hchar:
	lbu t4, 0(t0)
	beqz t4, passdone
	beq t4, s3, wordend
	slli t6, t2, 5
	add t2, t6, t2
	add t2, t2, t4   # h = h*33 + c
	j hnext
wordend:
	add s10, s10, t2
	mv t2, s4
hnext:
	addi t0, t0, 1
	j hchar
passdone:
	add s10, s10, t2
	addi s1, s1, -1
	bnez s1, pass

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "omnetpp",
		PaperRef: "620.omnetpp (event queue / binary heap)",
		MaxInsts: 400_000,
		Source: `
	.data
heap:
	.zero 8192       # 512 events x 16 bytes (time, id), 1-based
	.text
_start:
	la s0, heap
	li s1, 0         # heap size
	li s2, 271       # LCG
	li s3, 1103515245
	li s8, 3000      # events to schedule then drain
	li s4, 12345     # LCG increment
	li s9, 0         # processed counter
	li s5, 0xfffff   # timestamp mask (hoisted)
	li s6, 500       # capacity bound (hoisted)
	li s7, 1         # root index (hoisted)

	# Interleave inserts and pops like a discrete event loop: two inserts,
	# one pop, until the budget is used; then drain.
evloop:
	beqz s8, drain
	# Insert event with pseudo-random timestamp.
	mul s2, s2, s3
	add s2, s2, s4
	srli t0, s2, 16
	and t0, t0, s5   # timestamp
	bge s1, s6, evpop # heap full: pop instead
	addi s1, s1, 1
	mv t3, s1        # hole index
sift_up:
	ble t3, s7, up_done
	srli t5, t3, 1   # parent
	slli t6, t5, 4
	add t6, s0, t6
	ld a1, 0(t6)     # parent time
	bleu a1, t0, up_done
	# Move the parent down (time and id are a contiguous pair).
	slli a2, t3, 4
	add a2, s0, a2
	ld a3, 8(t6)
	sd a1, 0(a2)
	sd a3, 8(a2)
	mv t3, t5
	j sift_up
up_done:
	slli a2, t3, 4
	add a2, s0, a2
	sd t0, 0(a2)
	sd s8, 8(a2)
	addi s8, s8, -1
	# Every other event, pop the minimum.
	andi t4, s8, 1
	bnez t4, evloop
evpop:
	beqz s1, evloop
	# Pop the root; move the last element into the hole and sift down.
	addi t3, s0, 16
	ld a4, 8(t3)     # popped id
	add s9, s9, a4
	slli t4, s1, 4
	add t4, s0, t4
	ld t0, 0(t4)     # last time
	ld t1, 8(t4)     # last id
	addi s1, s1, -1
	beqz s1, evloop
	mv t3, s7        # hole = root
sift_down:
	slli t4, t3, 1   # left child
	bgt t4, s1, down_done
	slli t5, t4, 4
	add t5, s0, t5
	ld a1, 0(t5)     # left time
	addi t6, t4, 1
	bgt t6, s1, pickleft
	slli a2, t6, 4
	add a2, s0, a2
	ld a3, 0(a2)     # right time
	bgeu a3, a1, pickleft
	mv t4, t6
	mv a1, a3
pickleft:
	bleu t0, a1, down_done
	# Move the child up.
	slli a2, t4, 4
	add a2, s0, a2
	ld a3, 0(a2)
	ld a4, 8(a2)
	slli a5, t3, 4
	add a5, s0, a5
	sd a3, 0(a5)
	sd a4, 8(a5)
	mv t3, t4
	j sift_down
down_done:
	slli a5, t3, 4
	add a5, s0, a5
	sd t0, 0(a5)
	sd t1, 8(a5)
	bnez s8, evloop
drain:
	bnez s1, evpop

	li a7, 93
	li a0, 0
	ecall
`,
	})

	mustRegister(Workload{
		Name:     "typeset",
		PaperRef: "MiBench typeset (box layout passes)",
		MaxInsts: 350_000,
		Source: `
	.data
boxes:
	.zero 96000      # 2000 boxes x 48 bytes
	.text
_start:
	la s0, boxes
	li s1, 2000      # boxes
	li s3, 48        # box stride (hoisted)
	mul s4, s1, s3
	add s4, s0, s4   # boxes end

	# Initialise box fields (pointer walk): width, height, depth, glue,
	# shift, flags.
	li t1, 1234567
	li t2, 22695477
	mv t4, s0
binit:
	mul t1, t1, t2
	addi t1, t1, 1
	srli t5, t1, 40
	sd t5, 0(t4)     # width
	srli t5, t1, 30
	andi t5, t5, 1023
	sd t5, 8(t4)     # height
	srli t5, t1, 20
	andi t5, t5, 255
	sd t5, 16(t4)    # depth
	sd zero, 24(t4)  # glue
	sd zero, 32(t4)  # shift
	andi t5, t1, 3
	sd t5, 40(t4)    # flags
	add t4, t4, s3
	bltu t4, s4, binit

	# Layout passes: accumulate line widths, set glue and shift fields.
	# The field loads pair within the line; the two field stores are
	# separated by the shift computation (non-consecutive store pair).
	li s2, 5         # passes
	li s10, 0        # total width
	li s5, 60000     # line break threshold (hoisted)
lpass:
	mv t4, s0        # box pointer
	li s11, 0        # running line width
box:
	ld t5, 0(t4)     # width
	ld t6, 8(t4)     # height (contiguous pair)
	add s11, s11, t5
	add s11, s11, t6
	ld a1, 16(t4)    # depth
	ld a2, 40(t4)    # flags (same line, non-contiguous)
	sd s11, 24(t4)   # glue
	add a3, a1, a2
	slli a4, a3, 1
	xor a3, a3, a4
	sd a3, 32(t4)    # shift (pairs with glue across the computation)
	bltu s11, s5, boxnext
	add s10, s10, s11
	li s11, 0
boxnext:
	add t4, t4, s3
	bltu t4, s4, box
	addi s2, s2, -1
	bnez s2, lpass

	li a7, 93
	li a0, 0
	ecall
`,
	})
}
