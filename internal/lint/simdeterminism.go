package lint

import (
	"go/ast"
	"go/types"
)

// simPackages are the packages in which any run-to-run nondeterminism
// would silently corrupt the paper's figures: the cycle-accurate
// simulation packages (the same µ-op stream must produce the same cycle
// count on every run) plus the scheduling layers (core, experiments) —
// the suite scheduler fans cells across workers, so its work
// distribution and result assembly must never depend on map iteration
// order or wall time, or parallel runs would stop being byte-identical
// to serial ones.
var simPackages = map[string]bool{
	"ooo": true, "fusion": true, "branch": true, "cache": true,
	"emu": true, "memdep": true, "trace": true,
	"core": true, "experiments": true,
}

// SimDeterminism forbids the three classic nondeterminism sources inside
// simulation and scheduling packages: wall-clock reads (time.Now), the
// process-global math/rand generator, and iteration over map-typed
// values — unless the loop body is provably order-insensitive or the
// site is annotated //helios:nondeterminism-ok <reason>.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid time.Now, global math/rand calls and order-sensitive map " +
		"iteration in simulation and scheduling packages " +
		"(ooo, fusion, branch, cache, emu, memdep, trace, core, experiments)",
	Run: runSimDeterminism,
}

func runSimDeterminism(p *Pass) error {
	if !simPackages[p.Pkg.Name()] {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || p.isTestFile(n.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkDeterministicCall(n)
			case *ast.RangeStmt:
				p.checkMapRange(n)
			}
			return true
		})
	}
	return nil
}

func (p *Pass) checkDeterministicCall(call *ast.CallExpr) {
	if p.funcFromPkg(call, "time", "Now") {
		if !p.Annotated(call.Pos(), "nondeterminism-ok") {
			p.Reportf(call.Pos(), "time.Now in a simulation package: cycle counts must not depend on wall time (use the simulated cycle counter, or annotate //helios:nondeterminism-ok <reason>)")
		}
		return
	}
	fn, ok := p.pkgLevelCallee(call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // rng.Intn etc. on an explicitly seeded *rand.Rand is fine
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf":
		return // constructors; seededrand audits their seed derivation
	}
	if !p.Annotated(call.Pos(), "nondeterminism-ok") {
		p.Reportf(call.Pos(), "global math/rand.%s in a simulation package: draw from a seeded *rand.Rand instead (or annotate //helios:nondeterminism-ok <reason>)", fn.Name())
	}
}

// checkMapRange flags `range m` where m is map-typed, unless the loop is
// order-insensitive by construction or annotated.
func (p *Pass) checkMapRange(rng *ast.RangeStmt) {
	tv, ok := p.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Annotated(rng.Pos(), "nondeterminism-ok") {
		return
	}
	if p.orderInsensitiveBody(rng.Body) {
		return
	}
	p.Reportf(rng.Pos(), "iteration over a map in a simulation package is order-nondeterministic: sort the keys first, restructure, or annotate //helios:nondeterminism-ok <reason>")
}

// orderInsensitiveBody conservatively proves a map-range body commutes
// across iteration orders. Only a small allowlist of statement shapes
// qualifies: deleting from a map, storing to another map, commutative
// integer accumulation (x++, x += e, x |= e, x &= e — integer only;
// float addition does not commute in rounding), and `if` guards around
// the map mutations whose condition is loop-invariant (no calls, and no
// reference to anything the loop itself mutates). Anything else —
// appends, calls, early exits — needs sorting or an annotation.
func (p *Pass) orderInsensitiveBody(body *ast.BlockStmt) bool {
	mutated := make(map[string]bool) // printed forms of accum targets and mutated maps
	p.collectLoopMutations(body, mutated)
	return p.orderInsensitiveStmts(body.List, mutated)
}

// collectLoopMutations records the printed form of every expression the
// body assigns, increments or deletes from, so condition guards can be
// checked for loop-invariance.
func (p *Pass) collectLoopMutations(body *ast.BlockStmt, out map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			out[exprString(n.X)] = true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					out[exprString(idx.X)] = true
				} else {
					out[exprString(lhs)] = true
				}
			}
		case *ast.CallExpr:
			if isBuiltin(p, n, "delete") && len(n.Args) == 2 {
				out[exprString(n.Args[0])] = true
			}
		}
		return true
	})
}

func (p *Pass) orderInsensitiveStmts(stmts []ast.Stmt, mutated map[string]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call, "delete") {
				return false
			}
		case *ast.IncDecStmt:
			if !p.isIntegerExpr(s.X) {
				return false
			}
		case *ast.AssignStmt:
			if !p.commutativeAssign(s) {
				return false
			}
		case *ast.IfStmt:
			// A guard commutes only when its condition cannot observe
			// the loop's own mutations and the guarded statements are
			// map mutations (conditional accumulation like
			// `if sum < 10 { sum += v }` stays order-sensitive).
			if s.Init != nil || s.Else != nil || !p.loopInvariantCond(s.Cond, mutated) {
				return false
			}
			if !p.onlyMapMutations(s.Body.List) || !p.orderInsensitiveStmts(s.Body.List, mutated) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// onlyMapMutations accepts delete calls and map-index stores (no
// accumulators), the statements that commute even under a condition.
func (p *Pass) onlyMapMutations(stmts []ast.Stmt) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call, "delete") {
				return false
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || s.Tok.String() != "=" {
				return false
			}
			if _, ok := s.Lhs[0].(*ast.IndexExpr); !ok {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// loopInvariantCond reports whether the condition is free of calls and
// of references to expressions the loop mutates (range variables are
// fine: each iteration sees its own key/value).
func (p *Pass) loopInvariantCond(cond ast.Expr, mutated map[string]bool) bool {
	ok := true
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ok = false
		case *ast.Ident:
			if mutated[n.Name] {
				ok = false
			}
		case *ast.SelectorExpr:
			if mutated[exprString(n)] {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// commutativeAssign accepts `m[k] = v` and integer `x += e` / `x |= e` /
// `x &= e` / `x ^= e` forms.
func (p *Pass) commutativeAssign(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok.String() {
	case "=":
		idx, ok := s.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		tv, ok := p.TypesInfo.Types[idx.X]
		if !ok {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	case "+=", "|=", "&=", "^=":
		return p.isIntegerExpr(s.Lhs[0])
	}
	return false
}

func (p *Pass) isIntegerExpr(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
