package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the PR-2 context convention: cancellation flows
// top-down through explicit context.Context parameters, always in the
// first position, and library packages never mint their own root
// context — context.Background() belongs to main functions (and to the
// few documented legacy wrappers annotated //helios:ctx-ok <reason>).
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters come first; library packages must " +
		"not call context.Background()",
	Run: runCtxFirst,
}

func runCtxFirst(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			p.checkCtxPosition(fd)
		}
		if p.Pkg.Name() == "main" {
			continue // the process root: Background() is exactly right here
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.funcFromPkg(call, "context", "Background") || p.funcFromPkg(call, "context", "TODO") {
				if !p.FuncAnnotated(file, call.Pos(), "ctx-ok") {
					p.Reportf(call.Pos(), "library package calls context.%s: accept a ctx parameter instead so callers control cancellation (or annotate the wrapper //helios:ctx-ok <reason>)", calleeName(call))
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxPosition flags a context.Context parameter anywhere but first.
func (p *Pass) checkCtxPosition(fd *ast.FuncDecl) {
	params := fd.Type.Params
	if params == nil {
		return
	}
	pos := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if p.isContextType(field.Type) && pos > 0 {
			p.Reportf(field.Pos(), "%s: context.Context must be the first parameter", fd.Name.Name)
		}
		pos += n
	}
}

func (p *Pass) isContextType(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "<call>"
}
