package lint

import (
	"go/ast"
	"strings"
)

// SeededRand enforces the chaos-harness convention from PR 2: every
// random generator is constructed from an explicit, caller-provided
// seed, so any campaign failure can be replayed as a unit test. A
// rand.NewSource (or rand.New source expression) whose seed is a bare
// literal, wall-clock derived, or unrelated to any seed-named value is
// flagged.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "every rand.New/rand.NewSource must derive its seed from a " +
		"config or parameter whose name mentions 'seed', never a literal or time.Now",
	Run: runSeededRand,
}

func runSeededRand(p *Pass) error {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || p.isTestFile(n.Pos()) {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.funcFromPkg(call, "math/rand", "NewSource") || len(call.Args) != 1 {
				return true
			}
			if p.FuncAnnotated(file, call.Pos(), "seed-ok") {
				return true
			}
			seed := call.Args[0]
			switch {
			case p.containsWallClock(seed):
				p.Reportf(call.Pos(), "rand.NewSource seeded from the wall clock: runs become unreproducible; thread a seed through the config instead")
			case !p.referencesSeedName(seed):
				p.Reportf(call.Pos(), "rand.NewSource seed %s does not derive from a seed parameter or config field (name something *seed*, or annotate //helios:seed-ok <reason>)", exprString(seed))
			}
			return true
		})
	}
	return nil
}

// containsWallClock reports whether the expression transitively calls
// time.Now (the classic `rand.NewSource(time.Now().UnixNano())`).
func (p *Pass) containsWallClock(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && p.funcFromPkg(call, "time", "Now") {
			found = true
		}
		return !found
	})
	return found
}

// referencesSeedName reports whether any identifier or selector inside
// the expression is seed-named (contains "seed", case-insensitive) —
// the convention that makes the derivation auditable at a glance.
func (p *Pass) referencesSeedName(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok &&
			strings.Contains(strings.ToLower(id.Name), "seed") {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a short source-ish form of an expression for
// diagnostics (identifiers and selectors verbatim, anything else
// elided).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}
