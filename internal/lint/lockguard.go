package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockGuard infers which struct fields a mutex protects and then holds
// every access to that standard: for each named struct with a
// sync.Mutex/sync.RWMutex field, accesses to sibling fields from the
// type's methods are classified as under-lock or not by walking each
// method body in source order (Lock sets the state, Unlock clears it,
// defer Unlock holds it to function end, and a function literal resets
// it — a closure may run on another goroutine). A field whose accesses
// are majority-under-lock (and at least twice) is declared guarded;
// every remaining unguarded access is a finding. This is how the
// admission queue, result cache and batcher in internal/serve and the
// suite scheduler in internal/core keep their invariants as they grow:
// adding one forgotten-lock access trips CI instead of a race.
//
// The analyzer also builds lock-order edges: acquiring mutex B while
// holding mutex A — directly, or by calling (through the module call
// graph) a function whose transitive lock set contains B — records
// A→B. If the reverse edge exists anywhere in the module, both sites
// are a deadlock-shaped inversion and the later-discovered one is
// reported.
//
// Escape hatch: //helios:lockguard-ok <reason> on the access line (or
// the line above).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "struct fields accessed mostly under their sibling mutex must " +
		"always be accessed under it; lock-order inversions across the " +
		"call graph are findings",
	Run: runLockGuard,
}

// lockEdge is one observed acquisition order: to was locked while from
// was held.
type lockEdge struct {
	pos token.Position
	via string // rendering of the call/lock site for the message
}

// lockFacts is the module-scoped store shared by every lockguard pass.
type lockFacts struct {
	edges map[[2]*types.Var]lockEdge
}

func runLockGuard(p *Pass) error {
	facts := p.Mod.Fact("lockguard", func() any {
		return &lockFacts{edges: make(map[[2]*types.Var]lockEdge)}
	}).(*lockFacts)

	// Structs declared in this package that own a mutex.
	guarded := make(map[*types.Named][]*types.Var) // struct → mutex fields
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isMutexType(st.Field(i).Type()) {
				guarded[named] = append(guarded[named], st.Field(i))
			}
		}
	}

	type accessSite struct {
		pos     token.Pos
		guarded bool
		fn      string
	}
	accesses := make(map[*types.Var][]accessSite) // field → sites
	var fieldOrder []*types.Var

	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recvNamed := namedOfReceiver(p.TypesInfo, fd)
			mutexes := guarded[recvNamed]
			var recvObj types.Object
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if names := fd.Recv.List[0].Names; len(names) > 0 {
					recvObj = p.TypesInfo.Defs[names[0]]
				}
			}
			if recvNamed == nil || len(mutexes) == 0 || recvObj == nil {
				// Still walk for lock-order edges: any function can
				// acquire two unrelated mutexes.
				p.walkLocks(fd, nil, nil, nil, facts)
				continue
			}
			onAccess := func(field *types.Var, pos token.Pos, underLock bool) {
				if _, ok := accesses[field]; !ok {
					fieldOrder = append(fieldOrder, field)
				}
				accesses[field] = append(accesses[field],
					accessSite{pos: pos, guarded: underLock, fn: fd.Name.Name})
			}
			p.walkLocks(fd, recvObj, recvNamed, onAccess, facts)
		}
	}

	sort.Slice(fieldOrder, func(i, j int) bool { return fieldOrder[i].Pos() < fieldOrder[j].Pos() })
	for _, field := range fieldOrder {
		sites := accesses[field]
		locked := 0
		for _, s := range sites {
			if s.guarded {
				locked++
			}
		}
		if locked < 2 || locked*2 <= len(sites) {
			continue // not majority-under-lock: not an inferred guard set
		}
		owner, mu := ownerAndMutex(field)
		for _, s := range sites {
			if s.guarded || p.Annotated(s.pos, "lockguard-ok") {
				continue
			}
			p.Reportf(s.pos, "field %s.%s is guarded by %s.%s (%d/%d accesses hold it) but %s accesses it without the lock (or annotate //helios:lockguard-ok <reason>)",
				owner, field.Name(), owner, mu, locked, len(sites), s.fn)
		}
	}
	return nil
}

// ownerAndMutex names the field's declaring struct and its (first)
// mutex field for diagnostics.
func ownerAndMutex(field *types.Var) (owner, mutex string) {
	owner, mutex = "?", "mu"
	pkg := field.Pkg()
	if pkg == nil {
		return owner, mutex
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				owner = tn.Name()
			}
		}
		if owner == tn.Name() {
			for i := 0; i < st.NumFields(); i++ {
				if isMutexType(st.Field(i).Type()) {
					return owner, st.Field(i).Name()
				}
			}
		}
	}
	return owner, mutex
}

// walkLocks traverses one function body in source order, tracking the
// set of held mutexes. recvObj/recvNamed scope field-access recording
// to the method's own receiver; onAccess may be nil (edge-only walks).
func (p *Pass) walkLocks(fd *ast.FuncDecl, recvObj types.Object, recvNamed *types.Named, onAccess func(*types.Var, token.Pos, bool), facts *lockFacts) {
	w := &lockWalker{
		pass:     p,
		info:     p.TypesInfo,
		recvObj:  recvObj,
		onAccess: onAccess,
		held:     make(map[*types.Var]bool),
		heldSeq:  []*types.Var{},
		facts:    facts,
	}
	w.walkStmt(fd.Body)
}

type lockWalker struct {
	pass     *Pass
	info     *types.Info
	recvObj  types.Object
	onAccess func(*types.Var, token.Pos, bool)
	held     map[*types.Var]bool
	heldSeq  []*types.Var // acquisition order of currently held mutexes
	facts    *lockFacts
}

func (w *lockWalker) anyHeld() bool {
	for _, m := range w.heldSeq {
		if w.held[m] {
			return true
		}
	}
	return false
}

func (w *lockWalker) acquire(m *types.Var, pos token.Pos) {
	for _, h := range w.heldSeq {
		if w.held[h] && h != m {
			w.addEdge(h, m, pos, "acquired directly")
		}
	}
	if !w.held[m] {
		w.held[m] = true
		w.heldSeq = append(w.heldSeq, m)
	}
}

func (w *lockWalker) release(m *types.Var) {
	w.held[m] = false
	for i, h := range w.heldSeq {
		if h == m {
			w.heldSeq = append(w.heldSeq[:i], w.heldSeq[i+1:]...)
			break
		}
	}
}

// addEdge records from→to and reports an inversion if the module has
// already seen to→from.
func (w *lockWalker) addEdge(from, to *types.Var, pos token.Pos, via string) {
	key := [2]*types.Var{from, to}
	if _, ok := w.facts.edges[key]; ok {
		return
	}
	at := w.pass.Fset.Position(pos)
	w.facts.edges[key] = lockEdge{pos: at, via: via}
	if rev, ok := w.facts.edges[[2]*types.Var{to, from}]; ok {
		if w.pass.Annotated(pos, "lockguard-ok") {
			return
		}
		w.pass.Reportf(pos, "lock-order inversion: %s acquired while holding %s, but %s:%d acquires them in the opposite order (deadlock-shaped; pick one order or annotate //helios:lockguard-ok <reason>)",
			mutexName(to), mutexName(from), rev.pos.Filename, rev.pos.Line)
	}
}

func mutexName(m *types.Var) string {
	owner, _ := ownerAndMutex(m)
	if owner == "?" {
		return m.Name()
	}
	return fmt.Sprintf("%s.%s", owner, m.Name())
}

// walkStmt threads the held-set through statements in source order.
// Control flow is approximated: branch bodies inherit and mutate the
// same state, which matches the straight-line lock/unlock and
// defer-unlock shapes this module actually uses.
func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.DeferStmt:
		if m := w.mutexOpTarget(s.Call, "Unlock", "RUnlock"); m != nil {
			return // deferred unlock: held to function end
		}
		w.walkExpr(s.Call)
	case *ast.GoStmt:
		// The goroutine body runs elsewhere: walk its closure with a
		// fresh (empty) held-set; its arguments evaluate here.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.freshWalk(lit.Body)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		// A branch that terminates (return/break/continue) takes its
		// lock-state changes with it: code after the if only runs when
		// the branch was NOT taken, so the pre-branch state is restored.
		// This is what makes the singleflight idiom — unlock+return on
		// the hit path, fall through still holding the lock — analyzable
		// in source order.
		held, seq := w.snapshot()
		w.walkStmt(s.Body)
		if terminates(s.Body) {
			w.restore(held, seq)
		}
		held, seq = w.snapshot()
		w.walkStmt(s.Else)
		if s.Else != nil && terminates(s.Else) {
			w.restore(held, seq)
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		w.walkStmt(s.Body)
		w.walkStmt(s.Post)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkStmt(s.Body)
	case *ast.SelectStmt:
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.walkExpr(e)
		}
		for _, st := range s.Body {
			w.walkStmt(st)
		}
	case *ast.CommClause:
		w.walkStmt(s.Comm)
		for _, st := range s.Body {
			w.walkStmt(st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.walkExpr(e)
				return false
			}
			return true
		})
	}
}

// snapshot copies the current held-set and acquisition order.
func (w *lockWalker) snapshot() (map[*types.Var]bool, []*types.Var) {
	held := make(map[*types.Var]bool, len(w.held))
	for k, v := range w.held {
		held[k] = v
	}
	return held, append([]*types.Var(nil), w.heldSeq...)
}

func (w *lockWalker) restore(held map[*types.Var]bool, seq []*types.Var) {
	w.held = held
	w.heldSeq = seq
}

// terminates reports whether the statement always transfers control
// away (return, break, continue, goto, panic) — conservatively: only
// the shapes that appear in this codebase's lock/unlock idioms.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	}
	return false
}

// freshWalk walks a closure body with an empty held-set (same access
// recorder: a closure touching receiver fields without its own lock is
// exactly the bug this analyzer exists for).
func (w *lockWalker) freshWalk(body *ast.BlockStmt) {
	inner := &lockWalker{pass: w.pass, info: w.info, recvObj: w.recvObj,
		onAccess: w.onAccess, held: make(map[*types.Var]bool), facts: w.facts}
	inner.walkStmt(body)
}

func (w *lockWalker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if m := w.mutexOpTarget(e, "Lock", "RLock", "TryLock"); m != nil {
			w.acquire(m, e.Pos())
			return
		}
		if m := w.mutexOpTarget(e, "Unlock", "RUnlock"); m != nil {
			w.release(m)
			return
		}
		for _, arg := range e.Args {
			w.walkExpr(arg)
		}
		w.walkExpr(e.Fun)
		w.callEdges(e)
	case *ast.FuncLit:
		w.freshWalk(e.Body)
	case *ast.SelectorExpr:
		w.recordAccess(e)
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.UnaryExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	}
}

// recordAccess notes a receiver-field access (ident.field where ident
// is the method receiver) with the current lock state. Mutex fields
// themselves are not data.
func (w *lockWalker) recordAccess(sel *ast.SelectorExpr) {
	if w.onAccess == nil || w.recvObj == nil {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || w.info.Uses[id] != w.recvObj {
		return
	}
	field, ok := w.info.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() || isMutexType(field.Type()) {
		return
	}
	w.onAccess(field, sel.Sel.Pos(), w.anyHeld())
}

// callEdges propagates lock-order edges through calls: calling, while
// holding A, a function whose transitive lock set contains B records
// A→B.
func (w *lockWalker) callEdges(call *ast.CallExpr) {
	if w.facts == nil || !w.anyHeld() {
		return
	}
	callee := resolveCallee(w.info, call)
	if callee == nil {
		return
	}
	node := w.pass.Mod.Graph().NodeOf(callee)
	if node == nil {
		return
	}
	for _, m := range w.pass.lockSetOf(node) {
		for _, h := range w.heldSeq {
			if w.held[h] && h != m {
				w.addEdge(h, m, call.Pos(), "via call to "+callee.Name())
			}
		}
	}
}

// lockSetCache memoizes each function's transitive lock set, shared
// module-wide through the fact store.
type lockSetCache struct {
	sets map[*FuncNode][]*types.Var
	busy map[*FuncNode]bool
}

// lockSetOf returns every mutex the function may acquire, directly or
// through module-internal calls.
func (p *Pass) lockSetOf(node *FuncNode) []*types.Var {
	cache := p.Mod.Fact("lockguard-sets", func() any {
		return &lockSetCache{sets: make(map[*FuncNode][]*types.Var), busy: make(map[*FuncNode]bool)}
	}).(*lockSetCache)
	if set, ok := cache.sets[node]; ok {
		return set
	}
	if cache.busy[node] {
		return nil // recursion: the cycle adds nothing new
	}
	cache.busy[node] = true
	defer func() { cache.busy[node] = false }()
	set := make(map[*types.Var]bool)
	if node.Decl.Body != nil {
		info := node.Pkg.TypesInfo
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m := mutexOpTargetIn(info, call, "Lock", "RLock", "TryLock"); m != nil {
				set[m] = true
			}
			return true
		})
	}
	for _, c := range node.Callees {
		for _, m := range p.lockSetOf(c) {
			set[m] = true
		}
	}
	out := make([]*types.Var, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	cache.sets[node] = out
	return out
}

// mutexOpTarget resolves calls of the form x.field.Op() where field is
// a sync.Mutex/RWMutex field, returning the field's identity.
func (w *lockWalker) mutexOpTarget(call *ast.CallExpr, ops ...string) *types.Var {
	return mutexOpTargetIn(w.info, call, ops...)
}

func mutexOpTargetIn(info *types.Info, call *ast.CallExpr, ops ...string) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	match := false
	for _, op := range ops {
		if sel.Sel.Name == op {
			match = true
		}
	}
	if !match {
		return nil
	}
	// The method must belong to sync.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	field, ok := info.Uses[inner.Sel].(*types.Var)
	if !ok || !field.IsField() || !isMutexType(field.Type()) {
		return nil
	}
	return field
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// namedOfReceiver resolves the receiver's named struct type.
func namedOfReceiver(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
