package lint

// Registry returns every analyzer in the suite, in catalog order
// (DESIGN.md §10 for the single-package six, §15 for the call-graph
// four). cmd/heliosvet runs them all; individual tests run them one at
// a time over testdata packages.
func Registry() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		SeededRand,
		StatsComplete,
		CtxFirst,
		MagicLatency,
		ErrPolicy,
		HotAlloc,
		LockGuard,
		GoroutineLife,
		ErrTaxonomy,
	}
}
