package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc turns the arena win (DESIGN.md §13, BENCH_pr6.json's −92%
// allocs/op) into a compile-time contract: every function reachable
// from a //helios:hotpath root must be allocation-free and map-free.
// The benchmark pin (TestCommitObsOffNoAllocs) proves one call site on
// one machine; this analyzer proves the property over the whole static
// call closure, across packages, on every CI run.
//
// Inside the closure the analyzer flags, line by line:
//
//   - append (may grow the backing array), make, new
//   - map reads, writes, deletes and iteration
//   - composite literals that escape (&T{...}, slice/map literals)
//   - function literals (closures allocate their environment)
//   - implicit interface conversions at call boundaries and explicit
//     conversions to interface types
//   - string concatenation
//   - calls to fmt, and any call the graph cannot resolve (interface
//     methods, function values, out-of-module functions) — unprovable
//     is treated as a finding, not as safe
//
// Escape hatches: //helios:hotalloc-ok <reason> on the offending line
// (or the line above) waives one site; the same annotation in a
// function's doc comment waives the whole function and stops traversal
// into it — the reason vouches for everything behind it (the obs-enabled
// emit path, the flush/repair path).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions reachable from //helios:hotpath roots must not allocate: " +
		"no append/make/new, map ops, escaping composites, closures, " +
		"interface conversions, fmt calls or unresolvable calls",
	Run: runHotAlloc,
}

// pureStdlib lists stdlib packages whose functions are value-in,
// value-out compiler intrinsics: calling them cannot allocate, so the
// out-of-module rule does not apply.
var pureStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
}

func runHotAlloc(p *Pass) error {
	g := p.Mod.Graph()
	roots := g.HotpathRoots(p.Pkg)
	if len(roots) == 0 {
		return nil
	}
	for _, node := range g.Reachable(roots, "hotalloc-ok") {
		if node.Decl.Body == nil {
			continue
		}
		hc := &hotChecker{pass: p, node: node, info: node.Pkg.TypesInfo}
		ast.Inspect(node.Decl.Body, hc.visit)
	}
	return nil
}

// hotChecker inspects one reachable function's body. All type lookups
// go through the declaring package's TypesInfo — the pass may belong to
// a different package than the function it is auditing.
type hotChecker struct {
	pass *Pass
	node *FuncNode
	info *types.Info
}

// reportf files a finding unless the site carries a hotalloc-ok line
// annotation (checked module-wide: the site may be in another package).
func (hc *hotChecker) reportf(pos token.Pos, format string, args ...any) {
	at := hc.node.Pkg.Fset.Position(pos)
	if hc.pass.Mod.Annotated(at, "hotalloc-ok") {
		return
	}
	args = append(args, hc.node.Name())
	hc.pass.Reportf(pos, format+" (hot path via %s; annotate //helios:hotalloc-ok <reason> if proven safe)", args...)
}

func (hc *hotChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		hc.checkCall(n)
	case *ast.IndexExpr:
		if hc.isMapType(n.X) {
			hc.reportf(n.Pos(), "map access on the hot path")
		}
	case *ast.RangeStmt:
		if hc.isMapType(n.X) {
			hc.reportf(n.Pos(), "map iteration on the hot path")
		}
	case *ast.FuncLit:
		hc.reportf(n.Pos(), "closure on the hot path allocates its environment")
		return false // the literal's body is not on the hot path proper
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				hc.reportf(n.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.CompositeLit:
		if tv, ok := hc.info.Types[n]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				hc.reportf(n.Pos(), "slice/map literal allocates")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && hc.isStringExpr(n.X) {
			hc.reportf(n.Pos(), "string concatenation allocates")
		}
	}
	return true
}

func (hc *hotChecker) checkCall(call *ast.CallExpr) {
	// Conversions: only those that box into an interface allocate.
	if tv, ok := hc.info.Types[call.Fun]; ok && tv.IsType() {
		if _, iface := tv.Type.Underlying().(*types.Interface); iface {
			hc.reportf(call.Pos(), "conversion to interface type %s boxes its operand", tv.Type)
		}
		return
	}
	// Builtins: the allocating and map-touching ones are findings; the
	// pure ones (len, cap, copy, panic, min, max, ...) pass.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := hc.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				hc.reportf(call.Pos(), "append may grow its backing array")
			case "make", "new":
				hc.reportf(call.Pos(), "%s allocates", id.Name)
			case "delete":
				hc.reportf(call.Pos(), "map delete on the hot path")
			}
			return
		}
	}
	callee := resolveCallee(hc.info, call)
	switch {
	case callee == nil:
		hc.reportf(call.Pos(), "indirect call cannot be proven allocation-free")
		return
	case callee.Pkg() != nil && callee.Pkg().Path() == "fmt":
		hc.reportf(call.Pos(), "fmt.%s formats and allocates", callee.Name())
		return
	case callee.Pkg() != nil && pureStdlib[callee.Pkg().Path()]:
		// Compiler-intrinsic packages: value in, value out, no heap.
		return
	case hc.pass.Mod.Graph().NodeOf(callee) == nil:
		// Interface-method declarations and out-of-module (stdlib)
		// functions have no body in the graph: unauditable.
		hc.reportf(call.Pos(), "call to %s is outside the audited module", callee.Name())
		return
	}
	hc.checkCallArgs(call, callee)
}

// checkCallArgs flags arguments that implicitly convert to interface
// parameters — the conversion boxes the value on every call.
func (hc *hotChecker) checkCallArgs(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, iface := pt.Underlying().(*types.Interface); !iface {
			continue
		}
		at, ok := hc.info.Types[arg]
		if !ok {
			continue
		}
		if _, argIface := at.Type.Underlying().(*types.Interface); argIface {
			continue // interface to interface: no new box
		}
		hc.reportf(arg.Pos(), "argument boxes %s into interface parameter of %s", at.Type, callee.Name())
	}
}

func (hc *hotChecker) isMapType(e ast.Expr) bool {
	tv, ok := hc.info.Types[e]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func (hc *hotChecker) isStringExpr(e ast.Expr) bool {
	tv, ok := hc.info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
