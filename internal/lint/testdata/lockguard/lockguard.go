// Package lockx seeds lockguard violations for the golden test: a
// counter whose field is majority-accessed under its mutex (so the
// guard set is inferred) with one racy reader, and a pair of methods
// that acquire two mutexes in opposite orders.
package lockx

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int
	hits int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func (c *counter) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

// getOrInit is the singleflight idiom from the suite cache: unlock and
// return on the hit path, fall through still holding the lock. The
// early-return branch must not poison the lock state of the code after
// the if — every access here is guarded.
func (c *counter) getOrInit() int {
	c.mu.Lock()
	for {
		if c.n > 0 {
			n := c.n
			c.mu.Unlock()
			return n
		}
		break
	}
	c.n = 1 // ok: still held; the terminated branch took its unlock with it
	c.mu.Unlock()
	return 1
}

func (c *counter) racyPeek() int {
	return c.n // want "field counter.n is guarded by counter.mu"
}

func (c *counter) snapshot() int {
	//helios:lockguard-ok log-only read, staleness acceptable
	return c.n // ok: annotated with a reason
}

// hits is touched only once under lock: below the inference threshold,
// so the unguarded read stays quiet.
func (c *counter) bump() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *counter) peekHits() int { return c.hits } // ok: no inferred guard set

type twin struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
	x   int
	y   int
}

func (t *twin) lockBoth() {
	t.mu1.Lock()
	t.mu2.Lock()
	t.x++
	t.mu2.Unlock()
	t.mu1.Unlock()
}

func (t *twin) lockBothReversed() {
	t.mu2.Lock()
	t.mu1.Lock() // want "lock-order inversion"
	t.y++
	t.mu1.Unlock()
	t.mu2.Unlock()
}
