// Package hotx seeds hotalloc violations for the golden test: a toy
// per-cycle loop marked //helios:hotpath, with every banned construct
// in its static call closure and compliant neighbours that must stay
// quiet.
package hotx

import "fmt"

type ring struct {
	buf  []int
	head int
}

// step is the toy pipeline's per-cycle loop.
//
//helios:hotpath toy per-cycle loop; must stay allocation-free
func step(r *ring, counts map[string]int, fn func()) {
	r.buf[r.head] = 1 // ok: indexing an existing slice
	r.head++
	cur := ring{head: r.head} // ok: value composite literal stays on the stack
	_ = cur

	r.buf = append(r.buf, 2) // want "append may grow its backing array"
	//helios:hotalloc-ok ring grows only during warmup
	r.buf = append(r.buf, 3) // ok: line waived with a reason

	_ = counts["x"]         // want "map access on the hot path"
	delete(counts, "x")     // want "map delete on the hot path"
	for k := range counts { // want "map iteration on the hot path"
		_ = k
	}

	fn()                // want "indirect call cannot be proven allocation-free"
	fmt.Println(r.head) // want "fmt.Println formats and allocates"

	helper(r)
	flush(r)
}

var prefix = "cycle"

func helper(r *ring) {
	p := &ring{} // want "composite literal escapes to the heap"
	_ = p
	s := []int{1, 2} // want "slice/map literal allocates"
	_ = s
	scratch := make([]int, 4) // want "make allocates"
	_ = scratch
	name := prefix + "x" // want "string concatenation allocates"
	_ = name
	cb := func() {} // want "closure on the hot path allocates its environment"
	_ = cb
	var v any = r.head // ok: assignment conversion is not a call site the checker sees
	_ = v
	box(r.head)     // want "argument boxes int into interface parameter of box"
	_ = any(r.head) // want "conversion to interface type any boxes its operand"
}

func box(v any) { _ = v }

// flush repairs cold state after a misprediction; it is not on the
// per-cycle path proper, so the whole function is vouched for and the
// walker stops here.
//
//helios:hotalloc-ok cold repair path, amortized over flushes
func flush(r *ring) {
	r.buf = append(r.buf, 0) // ok: function-level waiver stops traversal
}

// coldSetup is not reachable from any hotpath root: it may allocate
// freely.
func coldSetup() *ring {
	return &ring{buf: make([]int, 8)}
}
