// Package corex seeds ctxfirst violations for the golden test.
package corex

import "context"

func run(ctx context.Context) error {
	return ctx.Err()
}

func goodOrder(ctx context.Context, name string) error {
	_ = name
	return run(ctx)
}

func badOrder(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = name
	return run(ctx)
}

func mintsRoot() error {
	return run(context.Background()) // want "library package calls context.Background"
}

func mintsTODO() error {
	return run(context.TODO()) // want "library package calls context.TODO"
}

// legacyWrapper predates the context-first refactor and is kept for the
// examples; new callers use goodOrder.
//
//helios:ctx-ok documented legacy wrapper, examples only
func legacyWrapper() error {
	return run(context.Background()) // ok: waived at the function level
}
