// Package chaosx seeds seededrand violations for the golden test.
package chaosx

import (
	"math/rand"
	"time"
)

type campaignConfig struct {
	Seed int64
}

func literalSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "does not derive from a seed parameter"
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

func unrelatedVariable(n int64) *rand.Rand {
	return rand.New(rand.NewSource(n)) // want "does not derive from a seed parameter"
}

func fromConfig(cfg campaignConfig) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed)) // ok: config-derived
}

func fromParameter(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 7)) // ok: derived from a seed parameter
}

//helios:seed-ok fixed golden stream shared with the reference traces
func goldenStream() *rand.Rand {
	return rand.New(rand.NewSource(1)) // ok: annotated
}
