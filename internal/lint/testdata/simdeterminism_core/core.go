// Package core seeds simdeterminism violations for the scheduler-layer
// coverage: the suite scheduler's package is in scope so that work
// distribution and result assembly can never silently depend on map
// iteration order or wall time — parallel runs must stay byte-identical
// to serial ones.
package core

import "time"

// fanoutByMap distributes work by ranging over a map: the assignment of
// cells to workers (and hence any append-ordered result) would differ
// run to run.
func fanoutByMap(work map[string]int, run func(string)) {
	for name := range work { // want "iteration over a map in a simulation package"
		run(name)
	}
}

// cellWall reads the wall clock without declaring why that is safe.
func cellWall(run func()) time.Duration {
	start := time.Now() // want "time.Now in a simulation package"
	run()
	return time.Since(start)
}

// annotatedWall is the sanctioned shape: wall time feeding a
// measurement surface that simulated results never read.
func annotatedWall(run func()) time.Duration {
	start := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it
	run()
	return time.Since(start)
}
