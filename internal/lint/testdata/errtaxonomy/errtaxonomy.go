// Package errtaxx seeds errtaxonomy violations for the golden test.
// ResponseWriter and Request are local stand-ins for net/http's types:
// the analyzer roots on parameter type names, so the golden universe
// stays closed (no net/http source import).
package errtaxx

import (
	"errors"
	"fmt"
)

type ResponseWriter interface{ Write([]byte) (int, error) }

type Request struct{ Path string }

// apiError is the toy taxonomy: kinded, machine-readable.
type apiError struct {
	Kind string
	Msg  string
}

func (e *apiError) Error() string { return e.Kind + ": " + e.Msg }

func handleRun(w ResponseWriter, r *Request) {
	if r.Path == "" {
		fail(w, errors.New("empty path")) // want "errors.New in the HTTP handler layer"
		return
	}
	if err := validate(r); err != nil {
		fail(w, err)
		return
	}
	fail(w, &apiError{Kind: "bad-request", Msg: "unrouted"}) // ok: kinded error
}

// validate has no HTTP parameters itself, but it is reachable from
// handleRun within the package, so its naked fmt.Errorf is a finding.
func validate(r *Request) error {
	if len(r.Path) > 128 {
		return fmt.Errorf("path too long: %d bytes", len(r.Path)) // want "fmt.Errorf in the HTTP handler layer"
	}
	return nil
}

func fail(w ResponseWriter, err error) {
	_, _ = w.Write([]byte(err.Error()))
}

func audit(r *Request) error {
	//helios:errtaxonomy-ok log-only marker, never written to a response
	return errors.New("audit: " + r.Path) // ok: annotated with a reason
}

// debugDump is developer-only plumbing behind a build flag.
//
//helios:errtaxonomy-ok debug endpoint, responses never reach clients
func debugDump(w ResponseWriter, r *Request) {
	_, _ = w.Write([]byte(fmt.Errorf("dump %s", r.Path).Error())) // ok: function-level waiver
}

// loadConfig is not reachable from any handler: ordinary error
// plumbing is fine outside the HTTP layer.
func loadConfig(path string) error {
	return fmt.Errorf("config %s missing", path)
}
