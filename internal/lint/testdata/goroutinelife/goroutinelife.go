// Package gorx seeds goroutinelife violations for the golden test:
// goroutines with and without join/cancel primitives, and infinite
// loops that do and do not check cancellation.
package gorx

import (
	"context"
	"sync"
)

func work() {}

func fanout(ctx context.Context, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // ok: joinable via WaitGroup
		defer wg.Done()
		work()
	}()

	go func() { // ok: cancellable via ctx
		<-ctx.Done()
	}()

	go func() { // want "neither joinable nor cancellable"
		for i := 0; i < 10; i++ {
			work()
		}
	}()

	go func() { // ok: references ctx, but the loop inside never checks it
		for { // want "infinite loop in goroutine never checks cancellation"
			if ctx == nil {
				return
			}
			work()
		}
	}()

	go func() { // ok: loop selects on ctx.Done each iteration
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			work()
		}
	}()

	go worker(ctx) // ok: named function's body blocks on ctx.Done
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

func pump(ch chan int) {
	go func() { // ok: draining a channel is a lifecycle (closes end it)
		for v := range ch {
			_ = v
		}
	}()
}

func spawn(fn func()) {
	go fn() // want "cannot be resolved statically"
}

func fire(fn func()) {
	//helios:goroutinelife-ok caller joins through the task's own done channel
	go fn() // ok: annotated with a reason
}
