// Package statsx seeds statscomplete violations for the golden test.
package statsx

import "strconv"

// RunStats has a complete dump surface: Rows enumerates every exported
// numeric field, and Skips opts out explicitly.
type RunStats struct {
	Cycles uint64
	Insts  uint64
	Skips  uint64 `json:"-"`
}

func (s *RunStats) Rows() [][2]string {
	return [][2]string{
		{"cycles", strconv.FormatUint(s.Cycles, 10)},
		{"insts", strconv.FormatUint(s.Insts, 10)},
	}
}

// DropStats increments Misses somewhere in the pipeline but never
// reports it — the exact bug class the analyzer exists for.
type DropStats struct {
	Hits   uint64
	Misses uint64 // want "DropStats.Misses is never referenced"
}

func (s *DropStats) Rows() [][2]string {
	return [][2]string{{"hits", strconv.FormatUint(s.Hits, 10)}}
}

// OrphanStats has counters but no reporting surface at all.
type OrphanStats struct { // want "OrphanStats has exported numeric counters but no dump surface"
	Retries uint64
}

// SumStats reaches its fields through a helper method called from the
// surface — the closure the analyzer must follow.
type SumStats struct {
	A uint64
	B uint64
}

func (s *SumStats) total() uint64 { return s.A + s.B }

func (s *SumStats) Rows() [][2]string {
	return [][2]string{{"total", strconv.FormatUint(s.total(), 10)}}
}

// SeriesStats dumps through the CSV time-series surface (Header/Row, as
// the obs interval sampler does). Samples is referenced from Row, but
// Drops never reaches any surface.
type SeriesStats struct {
	Cycle   uint64
	Samples uint64
	Drops   uint64 // want "SeriesStats.Drops is never referenced"
}

func (s SeriesStats) Header() []string { return []string{"cycle", "samples"} }

func (s SeriesStats) Row(prev SeriesStats) []string {
	return []string{
		strconv.FormatUint(s.Cycle, 10),
		strconv.FormatUint(s.Samples-prev.Samples, 10),
	}
}

// WaitAgg is a pure counter aggregate (the shape of stats.Histogram and
// stats.TopDown): a struct of numerics and numeric arrays.
type WaitAgg struct {
	Count   uint64
	Buckets [4]uint64
}

// Opaque mixes in a non-counter field, so fields of this type are not
// audited as counters.
type Opaque struct {
	Name  string
	Total uint64
}

// AggStats embeds counter aggregates: Waits reaches the surface, Slots
// is a collected-but-unreported sub-account, and Meta is not
// counter-shaped so the analyzer leaves it alone.
type AggStats struct {
	Cycles uint64
	Waits  WaitAgg
	Slots  WaitAgg // want "AggStats.Slots is never referenced"
	Meta   Opaque
}

func (s *AggStats) Rows() [][2]string {
	return [][2]string{
		{"cycles", strconv.FormatUint(s.Cycles, 10)},
		{"wait_count", strconv.FormatUint(s.Waits.Count, 10)},
	}
}

// SchedMetrics mirrors the suite scheduler's split surface: Rows
// carries the deterministic counters, WallRows the wall-time half.
// Both count as dump surfaces; Stalls reaches neither.
type SchedMetrics struct {
	Cells  uint64
	WallNs uint64
	Stalls uint64 // want "SchedMetrics.Stalls is never referenced"
}

func (m *SchedMetrics) Rows() [][2]string {
	return [][2]string{{"cells", strconv.FormatUint(m.Cells, 10)}}
}

func (m *SchedMetrics) WallRows() [][2]string {
	return [][2]string{{"wall_ns", strconv.FormatUint(m.WallNs, 10)}}
}

// BareMetrics has counters but no reporting surface at all — the
// Metrics suffix is audited exactly like Stats.
type BareMetrics struct { // want "BareMetrics has exported numeric counters but no dump surface"
	Runs uint64
}
