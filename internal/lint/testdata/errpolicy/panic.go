// Package emux seeds errpolicy violations for the golden test.
package emux

import "fmt"

func decode(b byte) (int, error) {
	if b > 7 {
		panic("bad opcode") // want "panic outside the recovered run loop"
	}
	return int(b), nil
}

func decodeTyped(b byte) (int, error) {
	if b > 7 {
		return 0, fmt.Errorf("emux: bad opcode %d", b) // ok: typed error
	}
	return int(b), nil
}

// MustDecode is the blessed panic shape: a Must* helper for static
// program text in tests and workload definitions.
func MustDecode(b byte) int {
	v, err := decode(b % 8)
	if err != nil {
		panic(err) // ok: Must* helper
	}
	return v
}

func init() {
	if MustDecode(1) != 1 {
		panic("emux: self-check failed") // ok: init-time registration
	}
}

// buildTable constructs the static dispatch table.
//
//helios:panic-ok static table construction, exercised by every test
func buildTable() []int {
	t := make([]int, 8)
	for i := range t {
		if i > 8 {
			panic("unreachable") // ok: waived at the function level
		}
		t[i] = i
	}
	return t
}
