// Package ooo seeds simdeterminism violations for the golden test: the
// package is named after a simulation package so the analyzer is in
// scope. Each `// want` comment is a diagnostic the analyzer must emit.
package ooo

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a simulation package"
}

func globalRand() int {
	return rand.Intn(8) // want "global math/rand.Intn in a simulation package"
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8) // ok: draws from an explicitly seeded *rand.Rand
}

func mapKeysUnsorted(m map[int]int) []int {
	var out []int
	for k := range m { // want "iteration over a map in a simulation package"
		out = append(out, k)
	}
	return out
}

func mapFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "iteration over a map in a simulation package"
		sum += v // float addition does not commute in rounding
	}
	return sum
}

func mapIntSum(m map[int]uint64) uint64 {
	var sum uint64
	for _, v := range m { // ok: commutative integer accumulation
		sum += v
	}
	return sum
}

func mapGuardedPrune(m map[uint64]uint64, cycle uint64) {
	for k, ready := range m { // ok: guarded delete with loop-invariant condition
		if ready <= cycle {
			delete(m, k)
		}
	}
}

func mapGuardedAccum(m map[uint64]uint64) uint64 {
	var sum uint64
	for _, v := range m { // want "iteration over a map in a simulation package"
		if sum < 100 { // condition observes the accumulator: order-sensitive
			sum += v
		}
	}
	return sum
}

func mapAnnotated(m map[int]int) int {
	last := 0
	//helios:nondeterminism-ok result is order-independent because the caller only checks emptiness
	for k := range m {
		last = k
	}
	return last
}
