// Package ooo seeds magiclatency violations for the golden test (named
// after a simulation package so the analyzer is in scope; the file is
// deliberately not config.go).
package ooo

type table struct{ n int }

func newTable(logSize uint) *table { return &table{n: 1 << logSize} }

type machine struct {
	IQSize  int
	Latency int
	Mode    int
}

func build() *machine {
	_ = newTable(11) // want "literal 11 passed as \"logSize\""
	return &machine{
		IQSize:  160, // want "literal 160 assigned to field \"IQSize\""
		Latency: 5,   // want "literal 5 assigned to field \"Latency\""
		Mode:    3,   // ok: not a machine-parameter name
	}
}

// DefaultMachine is a Default* constructor: the one blessed home for
// literal machine parameters outside config.go.
func DefaultMachine() *machine {
	return &machine{IQSize: 160, Latency: 5}
}

func buildFromConfig(cfg machine) *table {
	return newTable(uint(cfg.IQSize)) // ok: config-driven
}

func scratch() *table {
	//helios:param-ok bounded scratch table, not a simulated structure
	return newTable(12) // ok: annotated
}

func unit() *table {
	return newTable(1) // ok: 0/1 are not magic
}
