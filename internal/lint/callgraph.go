package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file is the cross-package layer under the domain analyzers
// (DESIGN.md §15): a Module groups every package of one Load into a
// single analysis universe, and its CallGraph resolves static calls
// across package boundaries so reachability-based rules (hotalloc's
// "nothing reachable from a hot root allocates", lockguard's lock-order
// edges, goroutinelife's named-function goroutine bodies) can follow a
// call from internal/ooo into internal/cache or internal/stats without
// any per-analyzer plumbing.
//
// The graph is deliberately static and conservative: only calls whose
// callee resolves to a named function or method *declared in the
// module* become edges. Calls through interfaces, function values and
// the standard library are not edges — analyzers that care (hotalloc)
// treat an unresolvable call as its own finding rather than silently
// assuming it is safe.

// Module is one analysis universe: every package loaded together, plus
// the lazily built call graph and a module-wide annotation index (a
// cross-package analyzer may report a finding in a package other than
// the one its pass is visiting, so the waiver lookup must span all of
// them).
type Module struct {
	Pkgs []*Package

	graph *CallGraph
	ann   map[string]map[int][]string // filename → line → annotation keys
	facts map[string]any
}

// Fact returns the module-scoped fact stored under key, creating it
// with mk on first use. Analyzers use facts to accumulate state across
// per-package passes — lockguard's lock-order edge set must span
// packages, or an A→B edge seen in one package could never meet its
// B→A partner seen in another. RunAll visits packages in deterministic
// (dependency) order, so fact accumulation is reproducible.
func (m *Module) Fact(key string, mk func() any) any {
	if m.facts == nil {
		m.facts = make(map[string]any)
	}
	v, ok := m.facts[key]
	if !ok {
		v = mk()
		m.facts[key] = v
	}
	return v
}

// NewModule groups the packages into one universe. All packages must
// share one *token.FileSet (both Load and the linttest harness do).
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs}
}

// Graph returns the module's call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m.Pkgs)
	}
	return m.graph
}

// Annotated reports whether pos is covered by a //helios:<key> comment
// on its own line or the line above, searching every package in the
// module (the module-wide analogue of Pass.Annotated).
func (m *Module) Annotated(pos token.Position, key string) bool {
	if m.ann == nil {
		m.ann = make(map[string]map[int][]string)
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						am := annotationRe.FindStringSubmatch(c.Text)
						if am == nil {
							continue
						}
						at := pkg.Fset.Position(c.Pos())
						byLine := m.ann[at.Filename]
						if byLine == nil {
							byLine = make(map[int][]string)
							m.ann[at.Filename] = byLine
						}
						byLine[at.Line] = append(byLine[at.Line], am[1])
					}
				}
			}
		}
	}
	byLine := m.ann[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, k := range byLine[line] {
			if k == key {
				return true
			}
		}
	}
	return false
}

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	Fn   *types.Func   // the type-checker's identity for the function
	Decl *ast.FuncDecl // its declaration (body may be nil for externs)
	Pkg  *Package      // the package that declares it

	// Callees are the statically resolved out-edges, in source order of
	// the first call site, deduplicated.
	Callees []*FuncNode
}

// Name returns a diagnostic-friendly name ("(*Pipeline).commitStage").
func (n *FuncNode) Name() string {
	sig, ok := n.Fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		return "(" + types.TypeString(t, func(p *types.Package) string { return "" }) + ")." + n.Fn.Name()
	}
	return n.Fn.Name()
}

// CallGraph maps every function declared in the module to its node.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// ordered holds the nodes in deterministic (position) order so
	// traversals report findings stably.
	ordered []*FuncNode
}

// hotpathRe matches the root marker for reachability analyses:
//
//	//helios:hotpath commit-side per-cycle loop; must stay allocation-free
//
// Unlike the *-ok escape hatches, hotpath is an opt-in root, not a
// waiver, so it lives outside the annotationRe grammar.
var hotpathRe = regexp.MustCompile(`^//\s*helios:hotpath\b`)

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	for _, node := range g.nodes {
		g.ordered = append(g.ordered, node)
	}
	sort.Slice(g.ordered, func(i, j int) bool {
		a, b := g.ordered[i], g.ordered[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	for _, node := range g.ordered {
		if node.Decl.Body == nil {
			continue
		}
		seen := make(map[*FuncNode]bool)
		pkg := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := resolveCallee(pkg.TypesInfo, call)
			if callee == nil {
				return true
			}
			target, ok := g.nodes[callee]
			if !ok || seen[target] {
				return true
			}
			seen[target] = true
			node.Callees = append(node.Callees, target)
			return true
		})
	}
	return g
}

// resolveCallee returns the *types.Func a call statically resolves to,
// or nil for indirect calls (function values, interface methods,
// builtins, conversions).
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	// An interface method has no body in the module; the *types.Func of
	// the interface's method set is distinct from any implementation's,
	// so the nodes lookup naturally fails for dynamic dispatch.
	return fn
}

// NodeOf returns the node for a resolved function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.ordered }

// HotpathRoots returns the functions declared in pkg whose doc comment
// carries the //helios:hotpath marker, in source order.
func (g *CallGraph) HotpathRoots(pkg *types.Package) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.ordered {
		if n.Pkg.Types != pkg || n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if hotpathRe.MatchString(c.Text) {
				roots = append(roots, n)
				break
			}
		}
	}
	return roots
}

// FuncWaived reports whether the node's declaration doc carries the
// given //helios:<key> waiver. A waived function is both silenced and a
// traversal barrier: its callees are vouched for by the waiver's reason.
func (g *CallGraph) FuncWaived(n *FuncNode, key string) bool {
	if n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if m := annotationRe.FindStringSubmatch(c.Text); m != nil && m[1] == key {
			return true
		}
	}
	return false
}

// Reachable walks the graph from the roots, skipping functions waived
// with waiveKey (and everything only reachable through them), and
// returns the visited nodes in deterministic breadth-first order.
func (g *CallGraph) Reachable(roots []*FuncNode, waiveKey string) []*FuncNode {
	var (
		order   []*FuncNode
		visited = make(map[*FuncNode]bool)
		queue   []*FuncNode
	)
	for _, r := range roots {
		if !visited[r] {
			visited[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, c := range n.Callees {
			if visited[c] {
				continue
			}
			if waiveKey != "" && g.FuncWaived(c, waiveKey) {
				continue
			}
			if strings.HasSuffix(c.Pkg.Fset.Position(c.Decl.Pos()).Filename, "_test.go") {
				continue
			}
			visited[c] = true
			queue = append(queue, c)
		}
	}
	return order
}
