package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"
)

// machineParamWords are the name fragments that mark a parameter or
// struct field as a machine parameter — a latency, capacity, geometry
// or width that belongs in Config so every simulated machine stays
// paper-comparable and sweepable.
var machineParamWords = []string{
	"size", "sets", "ways", "bits", "entries", "lat", "penalty",
	"width", "port", "cap", "depth", "nest", "dist", "interval",
}

// magicPackages limits the check to the cycle-level model and the
// memory hierarchy, where a hard-coded constant silently changes the
// simulated machine.
var magicPackages = map[string]bool{"ooo": true, "cache": true}

// MagicLatency flags integer literals used as machine parameters —
// latencies, queue capacities, table geometries — outside config.go and
// Default* constructors. Paper Table II lives in configuration, not
// scattered through the pipeline stages.
var MagicLatency = &Analyzer{
	Name: "magiclatency",
	Doc: "cycle latencies and structure capacities in ooo/cache must come " +
		"from Config (config.go / Default* funcs), not inline literals",
	Run: runMagicLatency,
}

func runMagicLatency(p *Pass) error {
	if !magicPackages[p.Pkg.Name()] {
		return nil
	}
	for _, f := range p.Files {
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if base == "config.go" || strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Default") {
				continue // DefaultConfig and friends are the parameter home
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					p.checkMagicCallArgs(n)
				case *ast.CompositeLit:
					p.checkMagicFields(n)
				}
				return true
			})
		}
	}
	return nil
}

// checkMagicCallArgs flags literal arguments bound to machine-parameter
// names (e.g. NewBTB(1024, 4) where the params are sets, ways).
func (p *Pass) checkMagicCallArgs(call *ast.CallExpr) {
	fn, ok := p.pkgLevelCallee(call)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		param := sig.Params().At(i)
		if !isMachineParamName(param.Name()) {
			continue
		}
		if lit, v, ok := p.intLiteral(arg); ok && v >= 2 && !p.Annotated(lit.Pos(), "param-ok") {
			p.Reportf(lit.Pos(), "magic machine parameter: literal %s passed as %q to %s — thread it through Config (or annotate //helios:param-ok <reason>)", lit.Value, param.Name(), fn.Name())
		}
	}
}

// checkMagicFields flags literal values assigned to machine-parameter
// fields in struct literals (e.g. Config{IQSize: 97}).
func (p *Pass) checkMagicFields(cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isMachineParamName(key.Name) {
			continue
		}
		if lit, v, ok := p.intLiteral(kv.Value); ok && v >= 2 && !p.Annotated(lit.Pos(), "param-ok") {
			p.Reportf(lit.Pos(), "magic machine parameter: literal %s assigned to field %q — move the value to config.go or a Default* constructor (or annotate //helios:param-ok <reason>)", lit.Value, key.Name)
		}
	}
}

// intLiteral unwraps conversions/parens and returns the basic literal
// plus its constant value when the expression is a plain integer
// literal.
func (p *Pass) intLiteral(e ast.Expr) (*ast.BasicLit, int64, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		tv, ok := p.TypesInfo.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return nil, 0, false
		}
		v, ok := constant.Int64Val(tv.Value)
		return e, v, ok
	case *ast.CallExpr: // a conversion like uint(11)
		if len(e.Args) == 1 {
			if tv, ok := p.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return p.intLiteral(e.Args[0])
			}
		}
	}
	return nil, 0, false
}

func isMachineParamName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range machineParamWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}
