package lint_test

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"helios/internal/lint"
)

// writeTree lays a synthetic module out on disk: a two-package module
// where `app` imports both its sibling `util` (exercising the in-module
// importer) and the standard library's strings (exercising the
// source-importer fallback, which previously had no coverage).
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadSyntheticModule(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.22\n",
		"util/util.go": `package util

// Shout is imported by app, so the loader must check util first.
func Shout(s string) string { return s + "!" }
`,
		"app/app.go": `package app

import (
	"strings"

	"loadtest/util"
)

// Banner leans on a stdlib function, forcing the loader's
// source-importer fallback to type-check strings from GOROOT source.
func Banner(s string) string { return util.Shout(strings.ToUpper(s)) }
`,
	})

	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	// Dependency-first order: util must be checked before app imports it.
	if pkgs[0].Path != "loadtest/util" || pkgs[1].Path != "loadtest/app" {
		t.Fatalf("topo order = [%s %s], want [loadtest/util loadtest/app]", pkgs[0].Path, pkgs[1].Path)
	}
	app, util := pkgs[1], pkgs[0]

	// The in-module import must resolve to the very *types.Package the
	// loader checked — pointer identity is what lets the call graph match
	// type objects across packages.
	var sawUtil, sawStrings bool
	for _, imp := range app.Types.Imports() {
		switch imp.Path() {
		case "loadtest/util":
			sawUtil = true
			if imp != util.Types {
				t.Error("app's util import is not the loader-checked *types.Package (identity broken)")
			}
		case "strings":
			sawStrings = true
			if !imp.Complete() {
				t.Error("strings was not fully type-checked by the source-importer fallback")
			}
		}
	}
	if !sawUtil || !sawStrings {
		t.Fatalf("app imports = %v, want both loadtest/util and strings", app.Types.Imports())
	}

	// The fallback-resolved object must be a real, typed function.
	strPkg := func() *types.Package {
		for _, imp := range app.Types.Imports() {
			if imp.Path() == "strings" {
				return imp
			}
		}
		return nil
	}()
	fn, ok := strPkg.Scope().Lookup("ToUpper").(*types.Func)
	if !ok {
		t.Fatal("strings.ToUpper missing from the fallback-imported package scope")
	}
	if fn.Type().(*types.Signature).Results().Len() != 1 {
		t.Errorf("strings.ToUpper signature = %s, want one result", fn.Type())
	}
}

// TestLoadBadPattern: go list failures must surface as errors, not
// panics or empty loads.
func TestLoadBadPattern(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.22\n",
	})
	if _, err := lint.Load(dir, "./nosuchpkg"); err == nil {
		t.Fatal("Load of a nonexistent package pattern succeeded, want error")
	}
}

// TestLoadTypeError: a package that does not type-check must fail with
// a positioned error naming the package.
func TestLoadTypeError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module loadtest\n\ngo 1.22\n",
		"bad/bad.go": `package bad

func Broken() int { return "not an int" }
`,
	})
	if _, err := lint.Load(dir, "./..."); err == nil {
		t.Fatal("Load of an ill-typed package succeeded, want error")
	}
}
