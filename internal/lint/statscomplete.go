package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// statsSurfaceMethods are the method names recognized as a stats
// struct's reporting surface: the enumerations that feed JSON dumps,
// tables and CLIs, the Header/Row pair used by CSV time-series
// emitters (the obs interval sampler), and the WallRows enumeration the
// suite scheduler uses for its nondeterministic wall-time half. A
// counter that is incremented by the pipeline but missing from every
// surface method is a silently unreported statistic — exactly the bug
// class that makes a reproduction drift from the paper without failing
// any test.
var statsSurfaceMethods = map[string]bool{
	"Rows": true, "Dump": true, "DumpJSON": true, "MarshalJSON": true,
	"Header": true, "Row": true, "WallRows": true,
}

// StatsComplete checks that every exported numeric field of a *Stats or
// *Metrics struct is reachable from the struct's dump surface (a Rows/
// Dump/DumpJSON/MarshalJSON/Header/Row/WallRows method, including the
// methods those call on the same type). Fields tagged `json:"-"` are
// deliberately unreported and exempt.
var StatsComplete = &Analyzer{
	Name: "statscomplete",
	Doc: "every exported numeric field of a *Stats or *Metrics struct must be " +
		"referenced from its dump surface (Rows/Dump/DumpJSON/MarshalJSON/Header/Row/WallRows)",
	Run: runStatsComplete,
}

func runStatsComplete(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !strings.HasSuffix(ts.Name.Name, "Stats") &&
					!strings.HasSuffix(ts.Name.Name, "Metrics") {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				p.checkStatsType(ts.Name.Name, st)
			}
		}
	}
	return nil
}

func (p *Pass) checkStatsType(typeName string, st *ast.StructType) {
	type field struct {
		name *ast.Ident
	}
	var fields []field
	for _, fd := range st.Fields.List {
		if !p.numericField(fd) || jsonOmitted(fd) {
			continue
		}
		for _, name := range fd.Names {
			if name.IsExported() {
				fields = append(fields, field{name})
			}
		}
	}
	if len(fields) == 0 {
		return
	}
	reached, haveSurface := p.surfaceFieldRefs(typeName)
	if !haveSurface {
		p.Reportf(st.Pos(), "%s has exported numeric counters but no dump surface: add a Rows/Dump/DumpJSON/MarshalJSON/Header/Row/WallRows method enumerating every field", typeName)
		return
	}
	for _, f := range fields {
		if !reached[f.name.Name] {
			p.Reportf(f.name.Pos(), "%s.%s is never referenced from the %s dump surface: the counter is collected but silently unreported", typeName, f.name.Name, typeName)
		}
	}
}

// numericField reports whether the field's type is counter-shaped —
// the shapes the pipeline uses for statistics.
func (p *Pass) numericField(fd *ast.Field) bool {
	tv, ok := p.TypesInfo.Types[fd.Type]
	if !ok {
		return false
	}
	return counterShape(tv.Type, true)
}

// counterShape reports whether t is a numeric basic type, an array of
// counters, or (at the field's top level only) a pure counter aggregate:
// a struct whose exported fields are all themselves counter-shaped —
// the shape of stats.Histogram and stats.TopDown. Aggregates embedded
// in a *Stats struct carry counters the same way scalar fields do, so
// skipping them would let a whole sub-account (e.g. the top-down slot
// buckets) go silently unreported.
func counterShape(t types.Type, allowStruct bool) bool {
	u := t.Underlying()
	if arr, ok := u.(*types.Array); ok {
		return counterShape(arr.Elem(), allowStruct)
	}
	if st, ok := u.(*types.Struct); ok {
		if !allowStruct {
			return false
		}
		exported := 0
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			exported++
			if !counterShape(f.Type(), false) {
				return false
			}
		}
		return exported > 0
	}
	b, ok := u.(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// jsonOmitted reports a `json:"-"` struct tag — the explicit opt-out.
func jsonOmitted(fd *ast.Field) bool {
	if fd.Tag == nil {
		return false
	}
	tag := strings.Trim(fd.Tag.Value, "`")
	return reflect.StructTag(tag).Get("json") == "-"
}

// surfaceFieldRefs walks the dump-surface methods of typeName — plus any
// same-type methods they call, transitively — and collects every field
// name referenced anywhere in those bodies.
func (p *Pass) surfaceFieldRefs(typeName string) (map[string]bool, bool) {
	methods := make(map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if receiverTypeName(fd.Recv.List[0].Type) == typeName {
				methods[fd.Name.Name] = fd
			}
		}
	}
	reached := make(map[string]bool)
	var queue []string
	seen := make(map[string]bool)
	haveSurface := false
	for name := range methods {
		if statsSurfaceMethods[name] {
			haveSurface = true
			queue = append(queue, name)
			seen[name] = true
		}
	}
	for len(queue) > 0 {
		fd := methods[queue[0]]
		queue = queue[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			reached[id.Name] = true
			// Follow helper methods on the same type (e.g. Rows calling
			// s.TotalMemPairs(), which reads the pair counters).
			if _, isMethod := methods[id.Name]; isMethod && !seen[id.Name] {
				seen[id.Name] = true
				queue = append(queue, id.Name)
			}
			return true
		})
	}
	return reached, haveSurface
}

// receiverTypeName unwraps *T / T receiver expressions to "T".
func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(e.X)
	}
	return ""
}
