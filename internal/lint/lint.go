// Package lint is a small, dependency-free static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis, specialized for this
// repository's correctness conventions. The canonical x/tools module is
// not vendored here, so the framework re-implements the three concepts
// the analyzers need — Analyzer, Pass and Diagnostic — on top of the
// standard library's go/ast and go/types, plus the repository-specific
// annotation escape hatches (//helios:nondeterminism-ok and friends).
//
// The analyzers themselves live in sibling files: the single-package
// six (simdeterminism.go, seededrand.go, statscomplete.go, ctxfirst.go,
// magiclatency.go, errpolicy.go) and the call-graph four (hotalloc.go,
// lockguard.go, goroutinelife.go, errtaxonomy.go) built on the
// cross-package Module/CallGraph layer in callgraph.go. Registry
// returns them all, and cmd/heliosvet is the multichecker driver. See
// DESIGN.md §10 and §15 for the catalog and the conventions each
// analyzer enforces.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "simdeterminism"
	Doc  string // one-paragraph description of the convention enforced
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned for editors and CI annotations.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer. Mod is
// the module universe the package was loaded in: single-package
// analyzers ignore it, while the call-graph analyzers (hotalloc,
// lockguard, goroutinelife, errtaxonomy) traverse Mod.Graph() to follow
// calls across package boundaries.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Mod       *Module

	diags       *[]Diagnostic
	annotations map[string]map[int][]string // filename → line → annotation keys
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotationRe matches the repository's escape-hatch comments:
//
//	//helios:nondeterminism-ok iteration only deletes entries
//	//helios:param-ok heuristic window, not a machine parameter
//
// The key is everything between "helios:" and the first space; a
// non-empty reason is required (enforced by Annotated's callers via
// the bare-annotation diagnostic in checkAnnotations).
var annotationRe = regexp.MustCompile(`^//\s*helios:([a-z-]+-ok)\b[ \t]*(.*)$`)

// buildAnnotations indexes every //helios:*-ok comment by file and line.
func (p *Pass) buildAnnotations() {
	p.annotations = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := annotationRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.annotations[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.annotations[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
				if strings.TrimSpace(m[2]) == "" {
					p.Reportf(c.Pos(), "annotation //helios:%s needs a reason (\"//helios:%s <why>\")", m[1], m[1])
				}
			}
		}
	}
}

// Annotated reports whether pos is covered by a //helios:<key> comment
// on the same line or the line directly above (a comment-only line).
func (p *Pass) Annotated(pos token.Pos, key string) bool {
	if p.annotations == nil {
		p.buildAnnotations()
	}
	at := p.Fset.Position(pos)
	byLine := p.annotations[at.Filename]
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, k := range byLine[line] {
			if k == key {
				return true
			}
		}
	}
	return false
}

// FuncAnnotated reports whether the doc comment of the function
// enclosing pos (or the function's body lines immediately preceding
// pos) carries the annotation. Used for function-scoped waivers such as
// the legacy context.Background convenience wrappers.
func (p *Pass) FuncAnnotated(file *ast.File, pos token.Pos, key string) bool {
	if p.Annotated(pos, key) {
		return true
	}
	fd := enclosingFuncDecl(file, pos)
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if m := annotationRe.FindStringSubmatch(c.Text); m != nil && m[1] == key {
			return true
		}
	}
	return false
}

// enclosingFuncDecl returns the top-level function declaration whose
// body spans pos, or nil.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// isTestFile reports whether the node's file is a _test.go file; every
// analyzer in the suite exempts tests (determinism there is the test
// author's concern, and literal seeds in tests are deliberate).
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// funcFromPkg resolves a called expression to a package-level function
// of the given import path (e.g. "time".Now), seeing through selector
// uses. It returns false for methods, so rng.Intn never matches
// math/rand.Intn.
func (p *Pass) funcFromPkg(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// pkgLevelCallee returns the (*types.Func, true) a call resolves to when
// the callee is a named function or method; false for indirect calls.
func (p *Pass) pkgLevelCallee(call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := p.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// Run executes one analyzer over one loaded package and returns its
// findings sorted by position. The package forms a single-package
// module, so call-graph analyzers see only its own functions — the
// linttest harness relies on this to keep testdata universes closed.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return runIn(a, pkg, NewModule([]*Package{pkg}))
}

// runIn executes one analyzer over one package inside mod's universe.
func runIn(a *Analyzer, pkg *Package, mod *Module) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Mod:       mod,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunAll executes every analyzer over every package. All packages share
// one Module, so cross-package analyzers can chase calls from any pass
// into any other loaded package (reporting at the callee's position).
// Cross-package findings are deduplicated: two root packages reaching
// the same offending line produce one diagnostic.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	mod := NewModule(pkgs)
	var all []Diagnostic
	seen := make(map[Diagnostic]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			ds, err := runIn(a, pkg, mod)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				if !seen[d] {
					seen[d] = true
					all = append(all, d)
				}
			}
		}
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
