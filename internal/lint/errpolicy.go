package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrPolicy enforces the PR-2 failure contract: the only panics in the
// tree live behind the pipeline's recovered run loop (package ooo,
// where every stage panic is converted to a typed *SimError with a
// crash dump) or in Must*-style constructors used for static program
// text. Everything else returns typed errors — a chaos campaign that
// can panic the process cannot assert "no panics, no hangs".
var ErrPolicy = &Analyzer{
	Name: "errpolicy",
	Doc: "panic is only legal inside package ooo (recovered run loop), " +
		"Must*/must* helpers and init-time registration; elsewhere return typed errors",
	Run: runErrPolicy,
}

func runErrPolicy(p *Pass) error {
	if p.Pkg.Name() == "ooo" {
		return nil // every stage runs under run()'s recover; see pipeline.go
	}
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isPanicCall(call) {
				return true
			}
			if fd := enclosingFuncDecl(file, call.Pos()); fd != nil {
				name := fd.Name.Name
				if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") || name == "init" {
					return true
				}
			}
			if p.FuncAnnotated(file, call.Pos(), "panic-ok") {
				return true
			}
			p.Reportf(call.Pos(), "panic outside the recovered run loop: return a typed error instead, rename the helper must*/Must*, or annotate //helios:panic-ok <reason>")
			return true
		})
	}
	return nil
}

func (p *Pass) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = p.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
