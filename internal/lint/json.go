package lint

import (
	"encoding/json"
	"io"
)

// JSONSchema is the version tag of heliosvet's machine-readable output.
// The schema only ever grows: existing fields keep their names, types
// and order (Go's encoding/json emits struct fields in declaration
// order, so the layout below IS the wire order), and new fields append.
const JSONSchema = "helios/vet/v1"

// JSONReport is the envelope heliosvet -json writes: one document per
// run, findings sorted by (file, line, column, analyzer) — the same
// deterministic order the text output uses.
type JSONReport struct {
	Schema   string        `json:"schema"`
	Findings []JSONFinding `json:"findings"`
	Count    int           `json:"count"`
}

// JSONFinding is one diagnostic. File is relative to the working
// directory heliosvet ran in (absolute when outside it), matching the
// text and -github outputs.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders the diagnostics as a schema-versioned JSON document.
// rel maps a diagnostic's absolute filename to the reported path; nil
// keeps filenames as-is. Findings is always an array (never null), so
// `jq .findings[]` works on clean runs too.
func WriteJSON(w io.Writer, diags []Diagnostic, rel func(string) string) error {
	if rel == nil {
		rel = func(s string) string { return s }
	}
	rep := JSONReport{
		Schema:   JSONSchema,
		Findings: make([]JSONFinding, 0, len(diags)),
		Count:    len(diags),
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, JSONFinding{
			File:     rel(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
