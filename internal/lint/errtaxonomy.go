package lint

import (
	"go/ast"
	"go/types"
)

// ErrTaxonomy keeps the service's error surface machine-readable: every
// non-200 body heliosd writes is a typed *serve.Error with a Kind from
// the taxonomy (DESIGN.md §14), so clients branch on kinds, never on
// message text. A naked fmt.Errorf or errors.New constructed in the
// handler layer has no Kind — whatever message it carries either leaks
// to a response verbatim or gets mis-classified as internal — so inside
// the HTTP layer it is a finding.
//
// Mechanically: the analyzer roots at every function that takes an
// http.ResponseWriter or *http.Request parameter (matched by type name,
// so the rule also covers future handlers and testdata doubles), walks
// the call graph through same-package callees only, and flags each
// fmt.Errorf / errors.New / http.Error call in that closure. The
// package boundary is deliberate: deeper layers (core, ooo) return
// ordinary errors, and the serve layer's classify() converts them to
// taxonomy kinds at the boundary — that conversion point is exactly
// what this analyzer protects.
//
// Escape hatch: //helios:errtaxonomy-ok <reason> on the call line, or
// on a function's doc comment to waive the function and everything only
// reachable through it.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc: "HTTP handlers and their same-package callees must surface only " +
		"the typed error taxonomy; naked fmt.Errorf/errors.New/http.Error " +
		"in the handler layer is a finding",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(p *Pass) error {
	g := p.Mod.Graph()
	var roots []*FuncNode
	for _, n := range g.Nodes() {
		if n.Pkg.Types != p.Pkg || n.Decl.Type.Params == nil {
			continue
		}
		if p.isTestFile(n.Decl.Pos()) {
			continue
		}
		if funcTakesHTTPParam(n.Pkg.TypesInfo, n.Decl) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	for _, node := range reachableInPackage(g, roots, "errtaxonomy-ok") {
		if node.Decl.Body == nil {
			continue
		}
		info := node.Pkg.TypesInfo
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := resolveCallee(info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			var what string
			switch {
			case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
				what = "fmt.Errorf"
			case callee.Pkg().Path() == "errors" && callee.Name() == "New":
				what = "errors.New"
			case callee.Pkg().Path() == "net/http" && callee.Name() == "Error":
				what = "http.Error"
			default:
				return true
			}
			if p.Annotated(call.Pos(), "errtaxonomy-ok") {
				return true
			}
			p.Reportf(call.Pos(), "%s in the HTTP handler layer (via %s) bypasses the typed error taxonomy: construct a kinded error instead (or annotate //helios:errtaxonomy-ok <reason> if it never reaches a response)", what, node.Name())
			return true
		})
	}
	return nil
}

// funcTakesHTTPParam reports whether any parameter's (possibly
// pointer-stripped) named type is called ResponseWriter or Request —
// the shape shared by http.HandlerFunc handlers and the api()-wrapped
// typed handlers.
func funcTakesHTTPParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			continue
		}
		switch named.Obj().Name() {
		case "ResponseWriter", "Request":
			return true
		}
	}
	return false
}

// reachableInPackage is Reachable restricted to the roots' packages:
// an edge into another package is not followed (that package has its
// own error discipline and its own conversion boundary).
func reachableInPackage(g *CallGraph, roots []*FuncNode, waiveKey string) []*FuncNode {
	var (
		order   []*FuncNode
		visited = make(map[*FuncNode]bool)
		queue   []*FuncNode
	)
	for _, r := range roots {
		if !visited[r] && !g.FuncWaived(r, waiveKey) {
			visited[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, c := range n.Callees {
			if visited[c] || c.Pkg != n.Pkg {
				continue
			}
			if waiveKey != "" && g.FuncWaived(c, waiveKey) {
				continue
			}
			visited[c] = true
			queue = append(queue, c)
		}
	}
	return order
}
