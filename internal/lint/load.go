package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // import path ("helios/internal/ooo")
	Name      string // package name ("ooo")
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// Load enumerates the packages matching the patterns (relative to dir,
// e.g. "./...") with the go command and type-checks them from source.
// Only non-test Go files are analyzed — every analyzer in the suite
// exempts tests anyway — and in-module imports are resolved against the
// freshly checked packages so the whole module is loaded exactly once.
// Standard-library imports are type-checked from GOROOT source, which
// keeps the loader free of external dependencies and network access.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		byPath:   make(map[string]*listedPackage, len(listed)),
		checked:  make(map[string]*Package),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	for _, lp := range listed {
		ld.byPath[lp.ImportPath] = lp
	}
	// Deterministic order: dependency-first so the in-module importer
	// always finds its imports already checked, ties broken by path.
	order, err := topoOrder(listed)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(order))
	for _, path := range order {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to `go list -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// topoOrder returns the listed import paths dependency-first.
func topoOrder(listed []*listedPackage) ([]string, error) {
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	var (
		order   []string
		visit   func(path string) error
		state   = make(map[string]int) // 0 new, 1 visiting, 2 done
		pending []string
	)
	visit = func(path string) error {
		lp, ok := byPath[path]
		if !ok {
			return nil // stdlib or out-of-pattern: the fallback importer handles it
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range lp.Imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	for _, lp := range listed {
		pending = append(pending, lp.ImportPath)
	}
	sort.Strings(pending)
	for _, path := range pending {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// loader type-checks listed packages, caching results so each package —
// and each standard-library dependency — is checked once per Load.
type loader struct {
	fset     *token.FileSet
	byPath   map[string]*listedPackage
	checked  map[string]*Package
	fallback types.ImporterFrom
}

// Import implements types.Importer over the in-module cache with a
// from-source fallback for the standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

func (ld *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg.Types, nil
	}
	if lp, ok := ld.byPath[path]; ok {
		pkg, err := ld.check(lp.ImportPath)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.fallback.ImportFrom(path, srcDir, mode)
}

// check parses and type-checks one listed package.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	lp := ld.byPath[path]
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg, err := CheckFiles(ld.fset, path, files, ld)
	if err != nil {
		return nil, err
	}
	pkg.Dir = lp.Dir
	ld.checked[path] = pkg
	return pkg, nil
}

// CheckFiles type-checks a parsed file set as one package. It is shared
// by the loader and the linttest harness (which parses testdata
// directories directly, outside any go list universe).
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
