package lint_test

import (
	"testing"

	"helios/internal/lint"
	"helios/internal/lint/linttest"
)

// Each analyzer must fire on its seeded testdata violations and stay
// quiet on the adjacent compliant code — the analysistest-style golden
// contract from ISSUE 3.

func TestSimDeterminism(t *testing.T) {
	linttest.Run(t, lint.SimDeterminism, "testdata/simdeterminism")
}

// TestSimDeterminismScheduler covers the scheduler-layer packages
// (core, experiments) added to the analyzer's scope alongside the
// cycle-accurate ones: work distribution over a map or an unannotated
// wall-clock read would let parallel suite runs drift from serial ones.
func TestSimDeterminismScheduler(t *testing.T) {
	linttest.Run(t, lint.SimDeterminism, "testdata/simdeterminism_core")
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, lint.SeededRand, "testdata/seededrand")
}

func TestStatsComplete(t *testing.T) {
	linttest.Run(t, lint.StatsComplete, "testdata/statscomplete")
}

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, lint.CtxFirst, "testdata/ctxfirst")
}

func TestMagicLatency(t *testing.T) {
	linttest.Run(t, lint.MagicLatency, "testdata/magiclatency")
}

func TestErrPolicy(t *testing.T) {
	linttest.Run(t, lint.ErrPolicy, "testdata/errpolicy")
}

// The call-graph four (DESIGN.md §15). Each testdata package is a
// closed single-package universe: linttest wraps it in a one-package
// Module, so reachability, waivers and guard-set inference all resolve
// without loading the real repo.

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/hotalloc")
}

func TestLockGuard(t *testing.T) {
	linttest.Run(t, lint.LockGuard, "testdata/lockguard")
}

func TestGoroutineLife(t *testing.T) {
	linttest.Run(t, lint.GoroutineLife, "testdata/goroutinelife")
}

func TestErrTaxonomy(t *testing.T) {
	linttest.Run(t, lint.ErrTaxonomy, "testdata/errtaxonomy")
}

// TestRegistryComplete pins the catalog: adding an analyzer without
// registering it (or registering one twice) is a silent CI hole.
func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.Registry() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if names[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"simdeterminism", "seededrand", "statscomplete",
		"ctxfirst", "magiclatency", "errpolicy",
		"hotalloc", "lockguard", "goroutinelife", "errtaxonomy",
	} {
		if !names[want] {
			t.Errorf("registry missing analyzer %q", want)
		}
	}
}
