package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"helios/internal/lint"
)

// TestWriteJSONGolden pins the -json wire format byte for byte: the
// schema tag, the field order (declaration order in JSONReport /
// JSONFinding — encoding/json preserves it), the two-space indent and
// the trailing newline. Downstream tooling parses this; any change must
// bump the schema version, and this test is where the change surfaces.
func TestWriteJSONGolden(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "/work/internal/ooo/commit.go", Line: 99, Column: 11},
			Analyzer: "hotalloc",
			Message:  "append may grow its backing array",
		},
		{
			Pos:      token.Position{Filename: "/work/internal/serve/api.go", Line: 194, Column: 14},
			Analyzer: "errtaxonomy",
			Message:  "fmt.Errorf in the HTTP handler layer",
		},
	}
	rel := func(p string) string { return strings.TrimPrefix(p, "/work/") }

	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags, rel); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "schema": "helios/vet/v1",
  "findings": [
    {
      "file": "internal/ooo/commit.go",
      "line": 99,
      "column": 11,
      "analyzer": "hotalloc",
      "message": "append may grow its backing array"
    },
    {
      "file": "internal/serve/api.go",
      "line": 194,
      "column": 14,
      "analyzer": "errtaxonomy",
      "message": "fmt.Errorf in the HTTP handler layer"
    }
  ],
  "count": 2
}
`
	if got := buf.String(); got != golden {
		t.Errorf("JSON output drifted from the %s golden:\n got:\n%s\nwant:\n%s", lint.JSONSchema, got, golden)
	}
}

// TestWriteJSONEmpty: a clean run must still emit a findings *array*
// (never null) so `jq .findings[]` works unconditionally.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema   string            `json:"schema"`
		Findings []json.RawMessage `json:"findings"`
		Count    int               `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != lint.JSONSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, lint.JSONSchema)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 || rep.Count != 0 {
		t.Errorf("empty run = %s, want findings: [] and count: 0", buf.String())
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("findings must serialize as [] on a clean run, got:\n%s", buf.String())
	}
}
