package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLife enforces that every goroutine has a lifecycle: the body
// of each `go` statement must be joinable or cancellable — it must
// reference a context.Context, a done/quit channel (any channel
// operation or select counts), or a sync.WaitGroup. On top of that,
// any unconditional loop (`for {}` / `for { ... }` with no condition)
// inside the body must check cancellation on each iteration: a select,
// a channel receive, or a ctx.Err()/ctx.Done() call in the loop body.
//
// This is the shape RunCells workers, the batcher's execute fan-out and
// heliosd's drain waiter already have; the analyzer keeps the next
// goroutine honest. A `go` statement whose callee cannot be resolved
// (method value, function in another module) is a finding too —
// unauditable is not the same as safe.
//
// Escape hatch: //helios:goroutinelife-ok <reason> on the go statement.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "every go statement must be joinable or cancellable (context, " +
		"done channel, or WaitGroup), and infinite loops inside goroutine " +
		"bodies must check cancellation",
	Run: runGoroutineLife,
}

func runGoroutineLife(p *Pass) error {
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.Annotated(gs.Pos(), "goroutinelife-ok") {
				return true
			}
			p.checkGoStmt(gs)
			return true
		})
	}
	return nil
}

func (p *Pass) checkGoStmt(gs *ast.GoStmt) {
	var body *ast.BlockStmt
	var info *types.Info = p.TypesInfo
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		callee := resolveCallee(p.TypesInfo, gs.Call)
		if callee == nil {
			p.Reportf(gs.Pos(), "goroutine body cannot be resolved statically, so its lifecycle cannot be audited (use a func literal or a named function, or annotate //helios:goroutinelife-ok <reason>)")
			return
		}
		node := p.Mod.Graph().NodeOf(callee)
		if node == nil || node.Decl.Body == nil {
			p.Reportf(gs.Pos(), "goroutine runs %s, which is outside the audited module; its lifecycle cannot be audited (annotate //helios:goroutinelife-ok <reason> if it is bounded)", callee.Name())
			return
		}
		body = node.Decl.Body
		info = node.Pkg.TypesInfo
	}

	// The goroutine is lifecycle-bound if its body (or, for named
	// callees, the call's arguments) references a cancellation or join
	// primitive.
	bound := referencesLifecycle(info, body)
	if !bound {
		for _, arg := range gs.Call.Args {
			if exprHasLifecycleType(p.TypesInfo, arg) {
				bound = true
				break
			}
		}
	}
	if !bound {
		p.Reportf(gs.Pos(), "goroutine is neither joinable nor cancellable: body references no context, done channel, or WaitGroup (annotate //helios:goroutinelife-ok <reason> if its lifetime is otherwise bounded)")
		return
	}

	// Unconditional loops inside the body must check cancellation.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // nested goroutines get their own go statements
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopChecksCancellation(info, loop.Body) {
			if !p.Annotated(loop.Pos(), "goroutinelife-ok") {
				p.Reportf(loop.Pos(), "infinite loop in goroutine never checks cancellation: add a select, channel receive, or ctx.Err() check per iteration (or annotate //helios:goroutinelife-ok <reason>)")
			}
		}
		return true
	})
}

// referencesLifecycle reports whether the body mentions a
// context.Context value, a sync.WaitGroup method, or performs any
// channel operation (send, receive, close, select, range-over-channel).
func referencesLifecycle(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, b := info.Uses[id].(*types.Builtin); b {
					found = true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && isWaitGroupMethod(fn) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopChecksCancellation reports whether a loop body contains a
// select, a channel receive, a range over a channel, or a call to
// ctx.Err()/ctx.Done() on a context value.
func loopChecksCancellation(info *types.Info, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			ok = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				ok = true
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) {
				ok = true
			}
		case *ast.CallExpr:
			if sel, s := n.Fun.(*ast.SelectorExpr); s {
				if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && exprHasLifecycleType(info, sel.X) {
					ok = true
				}
			}
		}
		return !ok
	})
	return ok
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// exprHasLifecycleType reports whether the expression's type is a
// context.Context, a channel, or a (*)sync.WaitGroup.
func exprHasLifecycleType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if isContextType(t) {
		return true
	}
	if _, c := t.Underlying().(*types.Chan); c {
		return true
	}
	if ptr, p := t.(*types.Pointer); p {
		t = ptr.Elem()
	}
	if named, n := t.(*types.Named); n {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
