// Package linttest is the golden-test harness for the lint analyzers,
// in the style of golang.org/x/tools/go/analysis/analysistest: a
// testdata directory holds one package that deliberately violates the
// convention, and `// want "regexp"` comments mark the line each
// diagnostic must land on. The test fails if a want goes unmatched
// (the analyzer did not fire) or a diagnostic appears with no want
// (a false positive).
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"helios/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads the single package under dir, applies the analyzer, and
// checks its diagnostics against the `// want` comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	wants := make(map[string]map[int][]*wantEntry) // file base name → line → wants
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		wants[e.Name()] = collectWants(t, fset, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}
	pkg, err := lint.CheckFiles(fset, "testdata/"+filepath.Base(dir), files,
		importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := lint.Run(a, pkg)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if w := matchWant(wants[base], d.Pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic:\n  %s", d)
	}
	names := make([]string, 0, len(wants))
	for name := range wants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lines := make([]int, 0, len(wants[name]))
		for line := range wants[name] {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, w := range wants[name][line] {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matching %q (analyzer did not fire)", name, line, w.re.String())
				}
			}
		}
	}
}

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) map[int][]*wantEntry {
	t.Helper()
	byLine := make(map[int][]*wantEntry)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
				pattern := strings.ReplaceAll(m[1], `\"`, `"`)
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("linttest: bad want pattern %q: %v", m[1], err)
				}
				line := fset.Position(c.Pos()).Line
				byLine[line] = append(byLine[line], &wantEntry{re: re})
			}
		}
	}
	return byLine
}

func matchWant(byLine map[int][]*wantEntry, line int, msg string) *wantEntry {
	for _, w := range byLine[line] {
		if !w.matched && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}
