package emu

import (
	"math"
	"testing"
	"testing/quick"

	"helios/internal/asm"
	"helios/internal/isa"
)

func run(t *testing.T, src string, max uint64) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p)
	if _, err := m.Run(max); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestArithmeticProgram(t *testing.T) {
	m := run(t, `
	_start:
		li a0, 6
		li a1, 7
		mul a2, a0, a1
		li a7, 93
		mv a0, a2
		ecall
	`, 100)
	if !m.Halted() || m.ExitCode() != 42 {
		t.Fatalf("halted=%v exit=%d, want 42", m.Halted(), m.ExitCode())
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..100 = 5050.
	m := run(t, `
	_start:
		li t0, 100
		li t1, 0
	loop:
		add t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		mv a0, t1
		li a7, 93
		ecall
	`, 10000)
	if m.ExitCode() != 5050 {
		t.Fatalf("exit = %d, want 5050", m.ExitCode())
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := run(t, `
		.data
	buf:
		.zero 64
		.text
	_start:
		la a0, buf
		li t0, 0x1122334455667788
		sd t0, 0(a0)
		lw t1, 0(a0)       # sign-extended low word
		lwu t2, 4(a0)      # zero-extended high word
		lb t3, 7(a0)       # 0x11
		lbu t4, 3(a0)      # 0x55
		lh t5, 0(a0)       # 0x7788 sign-extended
		mv a0, zero
		li a7, 93
		ecall
	`, 100)
	want := map[isa.Reg]uint64{
		isa.T1: uint64(int64(int32(0x55667788))),
		isa.T2: 0x11223344,
		isa.T3: 0x11,
		isa.T4: 0x55,
		isa.T5: 0x7788,
	}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("%v = %#x, want %#x", r, m.Regs[r], v)
		}
	}
}

func TestWriteSyscall(t *testing.T) {
	m := run(t, `
		.data
	msg:
		.ascii "hello"
		.text
	_start:
		li a7, 64
		li a0, 1
		la a1, msg
		li a2, 5
		ecall
		li a7, 93
		li a0, 0
		ecall
	`, 100)
	if m.Output() != "hello" {
		t.Fatalf("output = %q, want hello", m.Output())
	}
}

func TestDivisionCornerCases(t *testing.T) {
	m := run(t, `
	_start:
		li t0, 10
		li t1, 0
		div t2, t0, t1      # -1
		rem t3, t0, t1      # 10
		divu t4, t0, t1     # all ones
		li t5, -9223372036854775808
		li t6, -1
		div s2, t5, t6      # MinInt64
		rem s3, t5, t6      # 0
		li a7, 93
		li a0, 0
		ecall
	`, 100)
	if got := int64(m.Regs[isa.T2]); got != -1 {
		t.Errorf("div by zero = %d, want -1", got)
	}
	if got := m.Regs[isa.T3]; got != 10 {
		t.Errorf("rem by zero = %d, want 10", got)
	}
	if got := m.Regs[isa.T4]; got != math.MaxUint64 {
		t.Errorf("divu by zero = %#x", got)
	}
	if got := int64(m.Regs[isa.S2]); got != math.MinInt64 {
		t.Errorf("overflow div = %d", got)
	}
	if got := m.Regs[isa.S3]; got != 0 {
		t.Errorf("overflow rem = %d", got)
	}
}

func TestMulHigh(t *testing.T) {
	// Compare the helpers against big-integer reference logic via quick.
	f := func(a, b int64) bool {
		// mulhu reference using 32-bit limbs.
		ref := func(x, y uint64) uint64 {
			x0, x1 := x&0xffffffff, x>>32
			y0, y1 := y&0xffffffff, y>>32
			mid := x0*y0>>32 + x0*y1&0xffffffff + x1*y0&0xffffffff
			return x1*y1 + x0*y1>>32 + x1*y0>>32 + mid>>32
		}
		if mulhu(uint64(a), uint64(b)) != ref(uint64(a), uint64(b)) {
			return false
		}
		// mulh must satisfy (hi,lo) == a*b over 128 bits: check via identity
		// hi = mulhu(a,b) - (a<0 ? b : 0) - (b<0 ? a : 0).
		want := mulhu(uint64(a), uint64(b))
		if a < 0 {
			want -= uint64(b)
		}
		if b < 0 {
			want -= uint64(a)
		}
		return mulh(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Golden cases.
	if mulh(-1, -1) != 0 {
		t.Errorf("mulh(-1,-1) = %#x, want 0", mulh(-1, -1))
	}
	if mulh(math.MinInt64, -1) != 0 { // product is +2^63: high half is 0
		t.Errorf("mulh(min,-1) = %#x, want 0", mulh(math.MinInt64, -1))
	}
	if mulh(math.MinInt64, 2) != ^uint64(0) { // product is -2^64: high half is -1
		t.Errorf("mulh(min,2) = %#x, want all-ones", mulh(math.MinInt64, 2))
	}
	if mulhsu(-1, 1) != math.MaxUint64 {
		t.Errorf("mulhsu(-1,1) = %#x", mulhsu(-1, 1))
	}
}

func TestRetiredRecords(t *testing.T) {
	p, err := asm.Assemble(`
	_start:
		li t0, 4
	loop:
		addi t0, t0, -1
		bnez t0, loop
		ld a0, 0(sp)
		sd a0, 8(sp)
		li a7, 93
		ecall
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	var recs []Retired
	for !m.Halted() {
		r, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	// Sequence numbers are dense and ordered.
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("rec %d has seq %d", i, r.Seq)
		}
	}
	// The backward branch is taken 3 times, not-taken once.
	taken, notTaken := 0, 0
	for _, r := range recs {
		if r.Inst.Op == isa.OpBNE {
			if r.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 3 || notTaken != 1 {
		t.Errorf("branch outcomes taken=%d notTaken=%d, want 3/1", taken, notTaken)
	}
	// Loads and stores carry effective addresses.
	var sawLoad, sawStore bool
	for _, r := range recs {
		if r.IsLoad() {
			sawLoad = true
			if r.EA != asm.StackTop || r.MemSize != 8 {
				t.Errorf("load EA=%#x size=%d", r.EA, r.MemSize)
			}
		}
		if r.IsStore() {
			sawStore = true
			if r.EA != asm.StackTop+8 {
				t.Errorf("store EA=%#x", r.EA)
			}
		}
	}
	if !sawLoad || !sawStore {
		t.Error("missing load/store records")
	}
}

func TestX0AlwaysZero(t *testing.T) {
	m := run(t, `
	_start:
		li t0, 99
		add zero, t0, t0
		addi zero, zero, 55
		mv a0, zero
		li a7, 93
		ecall
	`, 100)
	if m.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0 (x0 must stay zero)", m.ExitCode())
	}
}

func TestMemorySparseness(t *testing.T) {
	mem := NewMemory()
	if got := mem.Read(0xdeadbeef, 8); got != 0 {
		t.Errorf("unmapped read = %#x", got)
	}
	if mem.MappedPages() != 0 {
		t.Error("read allocated a page")
	}
	mem.Write(0xfff, 8, 0x0102030405060708) // crosses a page boundary
	if got := mem.Read(0xfff, 8); got != 0x0102030405060708 {
		t.Errorf("cross-page read = %#x", got)
	}
	if mem.MappedPages() != 2 {
		t.Errorf("pages = %d, want 2", mem.MappedPages())
	}
}

func TestMemoryLastWriteWins(t *testing.T) {
	f := func(addr uint64, a, b uint64) bool {
		addr &= 0xffffff
		mem := NewMemory()
		mem.Write(addr, 8, a)
		mem.Write(addr, 8, b)
		return mem.Read(addr, 8) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBound(t *testing.T) {
	p, err := asm.Assemble("spin:\n j spin\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || m.Halted() {
		t.Fatalf("n=%d halted=%v; want bound respected", n, m.Halted())
	}
}

func TestJalrFunctionCall(t *testing.T) {
	m := run(t, `
	_start:
		li a0, 5
		call double
		call double
		li a7, 93
		ecall
	double:
		slli a0, a0, 1
		ret
	`, 100)
	if m.ExitCode() != 20 {
		t.Fatalf("exit = %d, want 20", m.ExitCode())
	}
}
