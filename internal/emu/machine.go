package emu

import (
	"bytes"
	"fmt"
	"math"
	"math/bits"

	"helios/internal/asm"
	"helios/internal/isa"
)

// Linux-compatible syscall numbers recognised by the ECALL handler.
const (
	SysWrite = 64
	SysExit  = 93
)

// Retired describes one architecturally committed instruction: everything
// the timing model needs to know about it.
type Retired struct {
	Seq      uint64 // dynamic instruction number, starting at 0
	PC       uint64
	NextPC   uint64 // architectural successor (branch outcome applied)
	Inst     isa.Inst
	EA       uint64 // effective address for loads/stores
	MemSize  uint8  // bytes accessed (0 for non-memory)
	Taken    bool   // conditional branch outcome
	StoreVal uint64 // value stored (stores only), for debugging
}

// IsLoad reports whether the retired instruction is a load.
func (r Retired) IsLoad() bool { return r.Inst.Op.IsLoad() }

// IsStore reports whether the retired instruction is a store.
func (r Retired) IsStore() bool { return r.Inst.Op.IsStore() }

// Machine is the architectural state of the emulator.
type Machine struct {
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *Memory

	// Decoded text for fast fetch.
	textBase uint64
	text     []isa.Inst

	seq      uint64
	halted   bool
	exitCode int
	output   bytes.Buffer
}

// New creates a machine loaded with the given program: text and data are
// copied into memory, the stack pointer is initialised, and PC is set to
// the entry point.
func New(p *asm.Program) *Machine {
	m := &Machine{Mem: NewMemory(), textBase: p.TextBase, PC: p.Entry}
	m.text = make([]isa.Inst, len(p.Text))
	for i, w := range p.Text {
		m.text[i] = isa.Decode(w)
		m.Mem.Write(p.TextBase+uint64(4*i), 4, uint64(w))
	}
	m.Mem.StoreBytes(p.DataBase, p.Data)
	m.Regs[isa.SP] = asm.StackTop
	return m
}

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.halted }

// ExitCode returns the program's exit status (valid after Halted).
func (m *Machine) ExitCode() int { return m.exitCode }

// Output returns everything the program wrote via the write syscall.
func (m *Machine) Output() string { return m.output.String() }

// InstretCount returns the number of retired instructions so far.
func (m *Machine) InstretCount() uint64 { return m.seq }

// fetch returns the instruction at pc.
func (m *Machine) fetch(pc uint64) (isa.Inst, error) {
	idx := (pc - m.textBase) / 4
	if pc >= m.textBase && idx < uint64(len(m.text)) && pc%4 == 0 {
		return m.text[idx], nil
	}
	w := uint32(m.Mem.Read(pc, 4))
	i := isa.Decode(w)
	if !i.Valid() {
		return i, fmt.Errorf("emu: invalid instruction %#08x at pc %#x", w, pc)
	}
	return i, nil
}

// Step executes one instruction and returns its retirement record.
func (m *Machine) Step() (Retired, error) {
	if m.halted {
		return Retired{}, fmt.Errorf("emu: machine is halted")
	}
	pc := m.PC
	inst, err := m.fetch(pc)
	if err != nil {
		return Retired{}, err
	}
	r := Retired{Seq: m.seq, PC: pc, Inst: inst, NextPC: pc + 4}

	reg := func(i isa.Reg) uint64 { return m.Regs[i] }
	setReg := func(i isa.Reg, v uint64) {
		if i != isa.Zero {
			m.Regs[i] = v
		}
	}
	rs1 := reg(inst.Rs1)
	rs2 := reg(inst.Rs2)
	imm := inst.Imm

	switch inst.Op {
	case isa.OpLUI:
		setReg(inst.Rd, uint64(imm))
	case isa.OpAUIPC:
		setReg(inst.Rd, pc+uint64(imm))
	case isa.OpJAL:
		setReg(inst.Rd, pc+4)
		r.NextPC = pc + uint64(imm)
	case isa.OpJALR:
		t := (rs1 + uint64(imm)) &^ 1
		setReg(inst.Rd, pc+4)
		r.NextPC = t
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		taken := false
		switch inst.Op {
		case isa.OpBEQ:
			taken = rs1 == rs2
		case isa.OpBNE:
			taken = rs1 != rs2
		case isa.OpBLT:
			taken = int64(rs1) < int64(rs2)
		case isa.OpBGE:
			taken = int64(rs1) >= int64(rs2)
		case isa.OpBLTU:
			taken = rs1 < rs2
		case isa.OpBGEU:
			taken = rs1 >= rs2
		}
		r.Taken = taken
		if taken {
			r.NextPC = pc + uint64(imm)
		}
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpLHU, isa.OpLWU:
		addr := rs1 + uint64(imm)
		size := inst.Op.MemSize()
		v := m.Mem.Read(addr, size)
		if !inst.Op.UnsignedLoad() {
			shift := 64 - 8*uint(size)
			v = uint64(int64(v<<shift) >> shift)
		}
		setReg(inst.Rd, v)
		r.EA, r.MemSize = addr, size
	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
		addr := rs1 + uint64(imm)
		size := inst.Op.MemSize()
		m.Mem.Write(addr, size, rs2)
		r.EA, r.MemSize, r.StoreVal = addr, size, rs2
	case isa.OpADDI:
		setReg(inst.Rd, rs1+uint64(imm))
	case isa.OpSLTI:
		setReg(inst.Rd, b2u(int64(rs1) < imm))
	case isa.OpSLTIU:
		setReg(inst.Rd, b2u(rs1 < uint64(imm)))
	case isa.OpXORI:
		setReg(inst.Rd, rs1^uint64(imm))
	case isa.OpORI:
		setReg(inst.Rd, rs1|uint64(imm))
	case isa.OpANDI:
		setReg(inst.Rd, rs1&uint64(imm))
	case isa.OpSLLI:
		setReg(inst.Rd, rs1<<uint(imm))
	case isa.OpSRLI:
		setReg(inst.Rd, rs1>>uint(imm))
	case isa.OpSRAI:
		setReg(inst.Rd, uint64(int64(rs1)>>uint(imm)))
	case isa.OpADDIW:
		setReg(inst.Rd, sext32(uint32(rs1)+uint32(imm)))
	case isa.OpSLLIW:
		setReg(inst.Rd, sext32(uint32(rs1)<<uint(imm)))
	case isa.OpSRLIW:
		setReg(inst.Rd, sext32(uint32(rs1)>>uint(imm)))
	case isa.OpSRAIW:
		setReg(inst.Rd, uint64(int64(int32(rs1)>>uint(imm))))
	case isa.OpADD:
		setReg(inst.Rd, rs1+rs2)
	case isa.OpSUB:
		setReg(inst.Rd, rs1-rs2)
	case isa.OpSLL:
		setReg(inst.Rd, rs1<<(rs2&63))
	case isa.OpSLT:
		setReg(inst.Rd, b2u(int64(rs1) < int64(rs2)))
	case isa.OpSLTU:
		setReg(inst.Rd, b2u(rs1 < rs2))
	case isa.OpXOR:
		setReg(inst.Rd, rs1^rs2)
	case isa.OpSRL:
		setReg(inst.Rd, rs1>>(rs2&63))
	case isa.OpSRA:
		setReg(inst.Rd, uint64(int64(rs1)>>(rs2&63)))
	case isa.OpOR:
		setReg(inst.Rd, rs1|rs2)
	case isa.OpAND:
		setReg(inst.Rd, rs1&rs2)
	case isa.OpADDW:
		setReg(inst.Rd, sext32(uint32(rs1)+uint32(rs2)))
	case isa.OpSUBW:
		setReg(inst.Rd, sext32(uint32(rs1)-uint32(rs2)))
	case isa.OpSLLW:
		setReg(inst.Rd, sext32(uint32(rs1)<<(rs2&31)))
	case isa.OpSRLW:
		setReg(inst.Rd, sext32(uint32(rs1)>>(rs2&31)))
	case isa.OpSRAW:
		setReg(inst.Rd, uint64(int64(int32(rs1)>>(rs2&31))))
	case isa.OpMUL:
		setReg(inst.Rd, rs1*rs2)
	case isa.OpMULH:
		setReg(inst.Rd, mulh(int64(rs1), int64(rs2)))
	case isa.OpMULHSU:
		setReg(inst.Rd, mulhsu(int64(rs1), rs2))
	case isa.OpMULHU:
		setReg(inst.Rd, mulhu(rs1, rs2))
	case isa.OpDIV:
		setReg(inst.Rd, uint64(divS(int64(rs1), int64(rs2))))
	case isa.OpDIVU:
		setReg(inst.Rd, divU(rs1, rs2))
	case isa.OpREM:
		setReg(inst.Rd, uint64(remS(int64(rs1), int64(rs2))))
	case isa.OpREMU:
		setReg(inst.Rd, remU(rs1, rs2))
	case isa.OpMULW:
		setReg(inst.Rd, sext32(uint32(rs1)*uint32(rs2)))
	case isa.OpDIVW:
		setReg(inst.Rd, uint64(int64(int32(divS(int64(int32(rs1)), int64(int32(rs2)))))))
	case isa.OpDIVUW:
		setReg(inst.Rd, sext32(uint32(divU(uint64(uint32(rs1)), uint64(uint32(rs2))))))
	case isa.OpREMW:
		setReg(inst.Rd, uint64(int64(int32(remS(int64(int32(rs1)), int64(int32(rs2)))))))
	case isa.OpREMUW:
		setReg(inst.Rd, sext32(uint32(remU(uint64(uint32(rs1)), uint64(uint32(rs2))))))
	case isa.OpFENCE:
		// Memory ordering is architectural no-op in the functional model.
	case isa.OpEBREAK:
		m.halted = true
		m.exitCode = -1
	case isa.OpECALL:
		m.syscall()
	default:
		return Retired{}, fmt.Errorf("emu: unimplemented opcode %v at pc %#x", inst.Op, pc)
	}

	m.PC = r.NextPC
	m.seq++
	return r, nil
}

// syscall implements the minimal Linux-style ABI: a7 selects the call.
func (m *Machine) syscall() {
	switch m.Regs[isa.A7] {
	case SysExit:
		m.halted = true
		m.exitCode = int(int64(m.Regs[isa.A0]))
	case SysWrite:
		buf := m.Regs[isa.A1]
		n := m.Regs[isa.A2]
		if n > 1<<20 {
			n = 1 << 20
		}
		m.output.Write(m.Mem.LoadBytes(buf, int(n)))
		m.Regs[isa.A0] = n
	default:
		// Unknown syscalls return -1, like a strict seccomp sandbox.
		m.Regs[isa.A0] = math.MaxUint64
	}
}

// Run executes until the program exits or maxInsts instructions retire.
// It returns the number of instructions retired.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	start := m.seq
	for !m.halted && m.seq-start < maxInsts {
		if _, err := m.Step(); err != nil {
			return m.seq - start, err
		}
	}
	return m.seq - start, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

// mulh computes the high 64 bits of the signed 128-bit product.
func mulh(a, b int64) uint64 {
	hi := mulhu(uint64(a), uint64(b))
	// Correct the unsigned product for negative operands.
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	return hi
}

// mulhsu computes the high 64 bits of signed × unsigned.
func mulhsu(a int64, b uint64) uint64 {
	hi := mulhu(uint64(a), b)
	if a < 0 {
		hi -= b
	}
	return hi
}

// mulhu computes the high 64 bits of the unsigned 128-bit product.
func mulhu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

func divS(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt64 && b == -1:
		return math.MinInt64
	}
	return a / b
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return math.MaxUint64
	}
	return a / b
}

func remS(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt64 && b == -1:
		return 0
	}
	return a % b
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}
