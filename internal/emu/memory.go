// Package emu implements a user-level functional emulator for the RV64IM
// subset. It plays the role Spike plays in the paper: it executes the
// program architecturally and produces the committed dynamic instruction
// stream — with effective addresses and branch outcomes — that is injected
// into the cycle-level out-of-order model in internal/ooo.
package emu

// pageBits selects a 4 KiB page granule for the sparse memory map.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse little-endian byte-addressable memory. Reads of
// unmapped addresses return zero; writes allocate pages on demand.
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && alloc {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.pageFor(addr, true)[addr&pageMask] = b
}

// Read returns size bytes starting at addr as a little-endian unsigned
// integer. size must be 1, 2, 4 or 8; accesses may cross page boundaries.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	var v uint64
	// Fast path: within one page.
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(p[off]) | uint64(p[off+1])<<8
		case 4:
			return uint64(p[off]) | uint64(p[off+1])<<8 | uint64(p[off+2])<<16 | uint64(p[off+3])<<24
		case 8:
			return uint64(p[off]) | uint64(p[off+1])<<8 | uint64(p[off+2])<<16 | uint64(p[off+3])<<24 |
				uint64(p[off+4])<<32 | uint64(p[off+5])<<40 | uint64(p[off+6])<<48 | uint64(p[off+7])<<56
		}
	}
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size uint8, v uint64) {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.pageFor(addr, true)
		for i := uint8(0); i < size; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := uint8(0); i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// StoreBytes copies buf into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, buf []byte) {
	for i, b := range buf {
		m.StoreByte(addr+uint64(i), b)
	}
}

// LoadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// MappedPages returns the number of allocated pages (for tests/stats).
func (m *Memory) MappedPages() int { return len(m.pages) }
