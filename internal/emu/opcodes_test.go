package emu

import (
	"math/rand"
	"testing"

	"helios/internal/asm"
	"helios/internal/isa"
)

// refALU is the Go-semantics reference for every register-register and
// register-immediate RV64IM operation the emulator implements.
func refALU(op isa.Opcode, a, b uint64, imm int64) (uint64, bool) {
	switch op {
	case isa.OpADDI:
		return a + uint64(imm), true
	case isa.OpSLTI:
		return b2u(int64(a) < imm), true
	case isa.OpSLTIU:
		return b2u(a < uint64(imm)), true
	case isa.OpXORI:
		return a ^ uint64(imm), true
	case isa.OpORI:
		return a | uint64(imm), true
	case isa.OpANDI:
		return a & uint64(imm), true
	case isa.OpSLLI:
		return a << uint(imm), true
	case isa.OpSRLI:
		return a >> uint(imm), true
	case isa.OpSRAI:
		return uint64(int64(a) >> uint(imm)), true
	case isa.OpADDIW:
		return sext32(uint32(a) + uint32(imm)), true
	case isa.OpSLLIW:
		return sext32(uint32(a) << uint(imm)), true
	case isa.OpSRLIW:
		return sext32(uint32(a) >> uint(imm)), true
	case isa.OpSRAIW:
		return uint64(int64(int32(a) >> uint(imm))), true
	case isa.OpADD:
		return a + b, true
	case isa.OpSUB:
		return a - b, true
	case isa.OpSLL:
		return a << (b & 63), true
	case isa.OpSLT:
		return b2u(int64(a) < int64(b)), true
	case isa.OpSLTU:
		return b2u(a < b), true
	case isa.OpXOR:
		return a ^ b, true
	case isa.OpSRL:
		return a >> (b & 63), true
	case isa.OpSRA:
		return uint64(int64(a) >> (b & 63)), true
	case isa.OpOR:
		return a | b, true
	case isa.OpAND:
		return a & b, true
	case isa.OpADDW:
		return sext32(uint32(a) + uint32(b)), true
	case isa.OpSUBW:
		return sext32(uint32(a) - uint32(b)), true
	case isa.OpSLLW:
		return sext32(uint32(a) << (b & 31)), true
	case isa.OpSRLW:
		return sext32(uint32(a) >> (b & 31)), true
	case isa.OpSRAW:
		return uint64(int64(int32(a) >> (b & 31))), true
	case isa.OpMUL:
		return a * b, true
	case isa.OpMULH:
		return mulh(int64(a), int64(b)), true
	case isa.OpMULHSU:
		return mulhsu(int64(a), b), true
	case isa.OpMULHU:
		return mulhu(a, b), true
	case isa.OpDIV:
		return uint64(divS(int64(a), int64(b))), true
	case isa.OpDIVU:
		return divU(a, b), true
	case isa.OpREM:
		return uint64(remS(int64(a), int64(b))), true
	case isa.OpREMU:
		return remU(a, b), true
	case isa.OpMULW:
		return sext32(uint32(a) * uint32(b)), true
	case isa.OpDIVW:
		return uint64(int64(int32(divS(int64(int32(a)), int64(int32(b)))))), true
	case isa.OpDIVUW:
		return sext32(uint32(divU(uint64(uint32(a)), uint64(uint32(b))))), true
	case isa.OpREMW:
		return uint64(int64(int32(remS(int64(int32(a)), int64(int32(b)))))), true
	case isa.OpREMUW:
		return sext32(uint32(remU(uint64(uint32(a)), uint64(uint32(b))))), true
	}
	return 0, false
}

// TestEveryALUOpcode executes each ALU/M opcode on random operands through
// the full machine (not just helpers) and checks against the reference.
func TestEveryALUOpcode(t *testing.T) {
	ops := []isa.Opcode{
		isa.OpADDI, isa.OpSLTI, isa.OpSLTIU, isa.OpXORI, isa.OpORI, isa.OpANDI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpADDIW, isa.OpSLLIW,
		isa.OpSRLIW, isa.OpSRAIW,
		isa.OpADD, isa.OpSUB, isa.OpSLL, isa.OpSLT, isa.OpSLTU, isa.OpXOR,
		isa.OpSRL, isa.OpSRA, isa.OpOR, isa.OpAND, isa.OpADDW, isa.OpSUBW,
		isa.OpSLLW, isa.OpSRLW, isa.OpSRAW,
		isa.OpMUL, isa.OpMULH, isa.OpMULHSU, isa.OpMULHU, isa.OpDIV,
		isa.OpDIVU, isa.OpREM, isa.OpREMU, isa.OpMULW, isa.OpDIVW,
		isa.OpDIVUW, isa.OpREMW, isa.OpREMUW,
	}
	r := rand.New(rand.NewSource(314159))
	for _, op := range ops {
		for trial := 0; trial < 50; trial++ {
			a := r.Uint64()
			bv := r.Uint64()
			switch trial {
			case 0:
				a, bv = 0, 0
			case 1:
				a, bv = ^uint64(0), ^uint64(0)
			case 2:
				a, bv = 1<<63, ^uint64(0) // MinInt64 / -1
			case 3:
				bv = 0 // division by zero
			}
			var imm int64
			inst := isa.Inst{Op: op, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2}
			switch op {
			case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
				imm = int64(r.Intn(64))
			case isa.OpSLLIW, isa.OpSRLIW, isa.OpSRAIW:
				imm = int64(r.Intn(32))
			default:
				if op.Format() == isa.FormatI {
					imm = int64(r.Intn(4096) - 2048)
				}
			}
			inst.Imm = imm

			// Assemble a 3-instruction program around the op.
			prog := &asm.Program{
				TextBase: asm.DefaultTextBase,
				DataBase: asm.DefaultDataBase,
				Entry:    asm.DefaultTextBase,
				Text: []uint32{
					isa.MustEncode(inst),
					isa.MustEncode(isa.Inst{Op: isa.OpECALL}),
				},
				Symbols: map[string]uint64{},
			}
			m := New(prog)
			m.Regs[isa.A1] = a
			m.Regs[isa.A2] = bv
			m.Regs[isa.A7] = SysExit
			if _, err := m.Run(10); err != nil {
				t.Fatalf("%v: %v", op, err)
			}
			want, ok := refALU(op, a, bv, imm)
			if !ok {
				t.Fatalf("no reference for %v", op)
			}
			if got := m.Regs[isa.A0]; got != want {
				t.Errorf("%v a=%#x b=%#x imm=%d: got %#x, want %#x",
					op, a, bv, imm, got, want)
			}
		}
	}
}

// TestLoadStoreWidths round-trips every access width, signed and unsigned,
// at every alignment inside a line.
func TestLoadStoreWidths(t *testing.T) {
	pairs := []struct {
		store isa.Opcode
		load  isa.Opcode
		size  uint8
		sext  bool
	}{
		{isa.OpSB, isa.OpLB, 1, true},
		{isa.OpSB, isa.OpLBU, 1, false},
		{isa.OpSH, isa.OpLH, 2, true},
		{isa.OpSH, isa.OpLHU, 2, false},
		{isa.OpSW, isa.OpLW, 4, true},
		{isa.OpSW, isa.OpLWU, 4, false},
		{isa.OpSD, isa.OpLD, 8, true},
	}
	r := rand.New(rand.NewSource(27182))
	for _, pc := range pairs {
		for off := int64(0); off < 16; off++ {
			v := r.Uint64()
			prog := &asm.Program{
				TextBase: asm.DefaultTextBase,
				DataBase: asm.DefaultDataBase,
				Entry:    asm.DefaultTextBase,
				Text: []uint32{
					isa.MustEncode(isa.Inst{Op: pc.store, Rs1: isa.A1, Rs2: isa.A2, Imm: off}),
					isa.MustEncode(isa.Inst{Op: pc.load, Rd: isa.A0, Rs1: isa.A1, Imm: off}),
					isa.MustEncode(isa.Inst{Op: isa.OpECALL}),
				},
				Symbols: map[string]uint64{},
			}
			m := New(prog)
			m.Regs[isa.A1] = asm.DefaultDataBase + 64
			m.Regs[isa.A2] = v
			m.Regs[isa.A7] = SysExit
			if _, err := m.Run(10); err != nil {
				t.Fatalf("%v/%v: %v", pc.store, pc.load, err)
			}
			mask := ^uint64(0)
			if pc.size < 8 {
				mask = 1<<(8*pc.size) - 1
			}
			want := v & mask
			if pc.sext && pc.size < 8 {
				shift := 64 - 8*uint(pc.size)
				want = uint64(int64(want<<shift) >> shift)
			}
			if got := m.Regs[isa.A0]; got != want {
				t.Errorf("%v/%v off=%d: got %#x, want %#x", pc.store, pc.load, off, got, want)
			}
		}
	}
}

// TestBranchSemantics checks every conditional branch both ways.
func TestBranchSemantics(t *testing.T) {
	cases := []struct {
		op    isa.Opcode
		a, b  uint64
		taken bool
	}{
		{isa.OpBEQ, 5, 5, true},
		{isa.OpBEQ, 5, 6, false},
		{isa.OpBNE, 5, 6, true},
		{isa.OpBNE, 5, 5, false},
		{isa.OpBLT, ^uint64(0), 1, true},  // -1 < 1 signed
		{isa.OpBLT, 1, ^uint64(0), false}, // 1 < -1 signed
		{isa.OpBGE, 1, ^uint64(0), true},
		{isa.OpBGE, ^uint64(0), 1, false},
		{isa.OpBLTU, 1, ^uint64(0), true}, // 1 < max unsigned
		{isa.OpBLTU, ^uint64(0), 1, false},
		{isa.OpBGEU, ^uint64(0), 1, true},
		{isa.OpBGEU, 1, ^uint64(0), false},
	}
	for _, c := range cases {
		prog := &asm.Program{
			TextBase: asm.DefaultTextBase,
			DataBase: asm.DefaultDataBase,
			Entry:    asm.DefaultTextBase,
			Text: []uint32{
				isa.MustEncode(isa.Inst{Op: c.op, Rs1: isa.A1, Rs2: isa.A2, Imm: 8}),
				isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: isa.A0, Imm: 1}), // skipped if taken
				isa.MustEncode(isa.Inst{Op: isa.OpECALL}),
			},
			Symbols: map[string]uint64{},
		}
		m := New(prog)
		m.Regs[isa.A1] = c.a
		m.Regs[isa.A2] = c.b
		m.Regs[isa.A7] = SysExit
		if _, err := m.Run(10); err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		skipped := m.Regs[isa.A0] == 0
		if skipped != c.taken {
			t.Errorf("%v a=%#x b=%#x: taken=%v, want %v", c.op, c.a, c.b, skipped, c.taken)
		}
	}
}

// TestUnknownSyscallReturnsError checks the strict-sandbox behaviour.
func TestUnknownSyscallReturnsError(t *testing.T) {
	prog := &asm.Program{
		TextBase: asm.DefaultTextBase,
		DataBase: asm.DefaultDataBase,
		Entry:    asm.DefaultTextBase,
		Text: []uint32{
			isa.MustEncode(isa.Inst{Op: isa.OpECALL}),
			isa.MustEncode(isa.Inst{Op: isa.OpECALL}),
		},
		Symbols: map[string]uint64{},
	}
	m := New(prog)
	m.Regs[isa.A7] = 9999 // unknown
	r, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	if m.Regs[isa.A0] != ^uint64(0) {
		t.Errorf("unknown syscall returned %#x, want -1", m.Regs[isa.A0])
	}
	if m.Halted() {
		t.Error("unknown syscall must not halt")
	}
}

// TestEbreakHalts checks the debugger-trap path.
func TestEbreakHalts(t *testing.T) {
	prog := &asm.Program{
		TextBase: asm.DefaultTextBase,
		DataBase: asm.DefaultDataBase,
		Entry:    asm.DefaultTextBase,
		Text:     []uint32{isa.MustEncode(isa.Inst{Op: isa.OpEBREAK})},
		Symbols:  map[string]uint64{},
	}
	m := New(prog)
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() || m.ExitCode() != -1 {
		t.Errorf("ebreak: halted=%v exit=%d", m.Halted(), m.ExitCode())
	}
}
