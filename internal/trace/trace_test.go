package trace_test

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/isa"
	"helios/internal/trace"
	"helios/internal/workloads"
)

// TestReplayBitIdentical is the fidelity property behind the whole
// record-once/replay-many design: for every registered workload, a
// Recording replay is bit-identical to the live emulator stream, and a
// second replay is bit-identical to the first.
func TestReplayBitIdentical(t *testing.T) {
	const budget = 20_000
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			rec, err := w.Record(budget)
			if err != nil {
				t.Fatal(err)
			}
			live, err := w.Trace(budget)
			if err != nil {
				t.Fatal(err)
			}
			c1, c2 := rec.Replay(), rec.Replay()
			for i := 0; ; i++ {
				lr, lok := live.Next()
				r1, ok1 := c1.Next()
				r2, ok2 := c2.Next()
				if lok != ok1 || lok != ok2 {
					t.Fatalf("length diverges at %d: live=%v replay=%v replay2=%v", i, lok, ok1, ok2)
				}
				if !lok {
					break
				}
				if r1 != lr {
					t.Fatalf("replay diverges from live at %d:\n%+v\n%+v", i, r1, lr)
				}
				if r2 != r1 {
					t.Fatalf("second replay diverges at %d", i)
				}
			}
			if err := live.Err(); err != nil {
				t.Fatal(err)
			}
			if rec.Len() == 0 {
				t.Fatal("empty recording")
			}
		})
	}
}

// TestFileRoundTrip checks WriteTo/ReadFrom preserve every record and the
// metadata header.
func TestFileRoundTrip(t *testing.T) {
	w, ok := workloads.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	rec, err := w.Record(5_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	got, err := trace.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rec.Name || got.MaxInsts != rec.MaxInsts || got.Len() != rec.Len() {
		t.Fatalf("header mismatch: got (%q,%d,%d), want (%q,%d,%d)",
			got.Name, got.MaxInsts, got.Len(), rec.Name, rec.MaxInsts, rec.Len())
	}
	for i := 0; i < rec.Len(); i++ {
		if got.At(i) != rec.At(i) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, got.At(i), rec.At(i))
		}
	}
}

// TestReadFromErrors exercises the corrupt/truncated input paths.
func TestReadFromErrors(t *testing.T) {
	w, _ := workloads.ByName("crc32")
	rec, err := w.Record(500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("not-gzip", func(t *testing.T) {
		if _, err := trace.ReadFrom(bytes.NewReader(make([]byte, 64))); err == nil {
			t.Error("want error on non-gzip input")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := trace.ReadFrom(bytes.NewReader(nil)); err == nil {
			t.Error("want error on empty input")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		_, err := trace.ReadFrom(bytes.NewReader(valid[:len(valid)/2]))
		if err == nil {
			t.Error("want error on truncated file")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		if _, err := trace.ReadFrom(gzipped([]byte("NOPE\x01\x00\x00\x00"))); err == nil ||
			!strings.Contains(err.Error(), "magic") {
			t.Errorf("want bad-magic error, got %v", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		if _, err := trace.ReadFrom(gzipped([]byte{'H', 'T', 'R', 'C', 0xff, 0x7f, 0, 0})); err == nil ||
			!strings.Contains(err.Error(), "version") {
			t.Errorf("want bad-version error, got %v", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		if _, err := trace.ReadFrom(gzipped([]byte{'H', 'T'})); err == nil {
			t.Error("want error on truncated header")
		}
	})
}

// gzipped compresses raw bytes so corrupt payloads still pass the gzip layer.
func gzipped(payload []byte) *bytes.Buffer {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(payload)
	zw.Close()
	return &buf
}

// TestLiveSurfacesEmulationFault verifies the satellite fix: an emulator
// fault is reported through Err instead of silently ending the stream,
// and Record refuses to produce a truncated recording.
func TestLiveSurfacesEmulationFault(t *testing.T) {
	// Jump into zeroed memory: the fetch of an all-zero word is an
	// invalid instruction and must fault.
	prog, err := asm.Assemble(`
_start:
	li t0, 1
	li t1, 2
	add t2, t0, t1
	li t3, 0x90000
	jr t3
`)
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewLive(emu.New(prog), 0)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if src.Err() == nil {
		t.Fatal("Err() = nil, want the emulation fault")
	}
	if n == 0 {
		t.Error("the pre-fault prefix should have streamed")
	}
	if _, err := trace.Record(trace.NewLive(emu.New(prog), 0)); err == nil {
		t.Error("Record must refuse a faulting stream")
	}
}

// TestLimit bounds a source without hiding its error.
func TestLimit(t *testing.T) {
	w, _ := workloads.ByName("sha")
	rec, err := w.Record(1_000)
	if err != nil {
		t.Fatal(err)
	}
	lim := trace.Limit(rec.Replay(), 100)
	n := 0
	for {
		if _, ok := lim.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("Limit yielded %d, want 100", n)
	}
	if err := lim.Err(); err != nil {
		t.Fatal(err)
	}
	if got := trace.Limit(rec.Replay(), 0); got == nil {
		t.Error("Limit(_, 0) must pass the source through")
	}
}

// TestFuncAdapter wraps a closure as a Source.
func TestFuncAdapter(t *testing.T) {
	i := 0
	src := trace.Func(func() (emu.Retired, bool) {
		if i >= 3 {
			return emu.Retired{}, false
		}
		r := emu.Retired{Seq: uint64(i), Inst: isa.Inst{Op: isa.OpADDI}}
		i++
		return r, true
	})
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 || src.Err() != nil {
		t.Errorf("Func adapter: n=%d err=%v", n, src.Err())
	}
}
