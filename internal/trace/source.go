// Package trace materializes the committed-path dynamic µ-op stream.
//
// The paper's methodology is two-phase: the functional simulator (Spike
// there, internal/emu here) produces the committed dynamic stream once,
// and the cycle-level model consumes it per configuration. Because fusion
// never changes architectural results, the stream is identical for every
// configuration (DESIGN.md §7), so it can be recorded once and replayed
// many times — the same decoupling ChampSim-style trace-driven simulators
// use. This package provides the seam: a Source interface over the
// stream, a live emulator-backed implementation, a Recording that buffers
// the stream once and hands out O(1) replay cursors, and a versioned
// binary file format so expensive streams can be captured and re-run
// across processes.
package trace

import (
	"context"
	"fmt"

	"helios/internal/emu"
)

// Source supplies the committed-path dynamic instruction stream in
// program order. Next returns the next retired record until the stream is
// exhausted; Err reports whether the stream ended because of an emulation
// fault rather than a clean halt or bound, so consumers can fail loudly
// instead of silently truncating the run.
type Source interface {
	Next() (emu.Retired, bool)
	Err() error
}

// Live is an emulator-backed Source: each Next executes one instruction
// on the underlying machine. A step fault ends the stream and is surfaced
// via Err.
type Live struct {
	m     *emu.Machine
	limit uint64 // 0 = unbounded (run until the machine halts)
	n     uint64
	err   error
}

// NewLive returns a Source over the machine's execution, bounded by
// maxInsts retired instructions (0 = run until the program halts).
func NewLive(m *emu.Machine, maxInsts uint64) *Live {
	return &Live{m: m, limit: maxInsts}
}

// Next executes and returns the next instruction.
func (s *Live) Next() (emu.Retired, bool) {
	if s.err != nil || s.m.Halted() || (s.limit > 0 && s.n >= s.limit) {
		return emu.Retired{}, false
	}
	r, err := s.m.Step()
	if err != nil {
		s.err = fmt.Errorf("trace: emulation fault after %d µ-ops: %w", s.n, err)
		return emu.Retired{}, false
	}
	s.n++
	return r, true
}

// Err reports the emulation fault that ended the stream, if any.
func (s *Live) Err() error { return s.err }

// funcSource adapts a bare stream closure (which cannot fault) to Source.
type funcSource struct {
	fn func() (emu.Retired, bool)
}

func (s funcSource) Next() (emu.Retired, bool) { return s.fn() }
func (s funcSource) Err() error                { return nil }

// Func wraps a plain stream closure as an error-free Source. It exists
// for synthetic streams (tests, generators); emulator-backed streams
// should use Live so faults propagate.
func Func(fn func() (emu.Retired, bool)) Source { return funcSource{fn} }

// limited bounds an inner Source to a fixed number of records.
type limited struct {
	src Source
	n   uint64
}

func (l *limited) Next() (emu.Retired, bool) {
	if l.n == 0 {
		return emu.Retired{}, false
	}
	l.n--
	return l.src.Next()
}

func (l *limited) Err() error { return l.src.Err() }

// Limit returns a Source that yields at most maxInsts records from src
// (0 = no additional bound).
func Limit(src Source, maxInsts uint64) Source {
	if maxInsts == 0 {
		return src
	}
	return &limited{src: src, n: maxInsts}
}

// ctxCheckStride is how many records a ctxSource yields between context
// polls: frequent enough that a long emulation cancels promptly, rare
// enough to keep the poll off the per-record hot path.
const ctxCheckStride = 1024

// ctxSource ends the stream with ctx.Err() once ctx is done, so a long
// recording emulation honors cancellation and deadlines.
type ctxSource struct {
	ctx context.Context
	src Source
	n   uint64
	err error
}

func (s *ctxSource) Next() (emu.Retired, bool) {
	if s.err != nil {
		return emu.Retired{}, false
	}
	if s.n%ctxCheckStride == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return emu.Retired{}, false
		}
	}
	s.n++
	return s.src.Next()
}

func (s *ctxSource) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

// WithContext bounds src by ctx: once ctx is cancelled or past its
// deadline the stream ends and Err reports ctx.Err().
func WithContext(ctx context.Context, src Source) Source {
	return &ctxSource{ctx: ctx, src: src}
}
