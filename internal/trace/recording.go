package trace

import "helios/internal/emu"

// Recording is a materialized committed-path stream: the record-once half
// of record-once/replay-many. It is immutable after Record and safe for
// concurrent Replay from many goroutines.
type Recording struct {
	// Name identifies the traced workload (metadata only).
	Name string
	// MaxInsts is the instruction bound the recording was captured with
	// (0 = the stream ran to its natural end).
	MaxInsts uint64

	recs []emu.Retired
}

// Record drains src into a new Recording. If the stream ended on an
// emulation fault, the fault is returned and no recording is produced —
// a truncated trace must never masquerade as a complete one.
func Record(src Source) (*Recording, error) {
	var recs []emu.Retired
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return &Recording{recs: recs}, nil
}

// FromRecords builds a Recording directly from records (tests, decoders).
func FromRecords(name string, maxInsts uint64, recs []emu.Retired) *Recording {
	return &Recording{Name: name, MaxInsts: maxInsts, recs: recs}
}

// Len returns the number of recorded µ-ops.
func (r *Recording) Len() int { return len(r.recs) }

// At returns the i-th recorded µ-op.
func (r *Recording) At(i int) emu.Retired { return r.recs[i] }

// Replay returns a fresh O(1) cursor over the recording. Cursors are
// independent; any number may be live at once.
func (r *Recording) Replay() *Cursor { return &Cursor{rec: r} }

// Cursor is a replay iterator over a Recording. It implements Source and
// never reports an error: only complete recordings exist.
type Cursor struct {
	rec *Recording
	pos int
}

// Next returns the next recorded µ-op.
func (c *Cursor) Next() (emu.Retired, bool) {
	if c.pos >= len(c.rec.recs) {
		return emu.Retired{}, false
	}
	r := c.rec.recs[c.pos]
	c.pos++
	return r, true
}

// Err always returns nil: a Recording is only constructed from a stream
// that ended cleanly.
func (c *Cursor) Err() error { return nil }
