package trace_test

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"testing"

	"helios/internal/emu"
	"helios/internal/isa"
	"helios/internal/trace"
)

// fuzzSeedRecording builds a small deterministic recording for seeding
// the fuzz corpus and exercising the hardening paths.
func fuzzSeedRecording(n int) *trace.Recording {
	recs := make([]emu.Retired, n)
	for i := range recs {
		recs[i] = emu.Retired{
			Seq:    uint64(i),
			PC:     0x1000 + uint64(i)*4,
			NextPC: 0x1000 + uint64(i)*4 + 4,
			Inst:   isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
		}
	}
	return trace.FromRecords("fuzz", uint64(n), recs)
}

// FuzzReadFrom hammers the trace file reader with arbitrary bytes: it
// must never panic, never allocate absurdly, and any input it accepts
// must survive a write/read round trip unchanged.
func FuzzReadFrom(f *testing.F) {
	rec := fuzzSeedRecording(16)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:11])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("HTRC garbage that is not gzip"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := trace.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: metadata must be sane and the recording must
		// round-trip bit-identically.
		if got.Name == "" {
			t.Fatal("accepted a recording with an empty name")
		}
		var out bytes.Buffer
		if _, werr := got.WriteTo(&out); werr != nil {
			t.Fatalf("accepted recording fails to re-serialize: %v", werr)
		}
		again, rerr := trace.ReadFrom(&out)
		if rerr != nil {
			t.Fatalf("round trip of accepted input failed: %v", rerr)
		}
		if again.Name != got.Name || again.MaxInsts != got.MaxInsts || again.Len() != got.Len() {
			t.Fatalf("round trip changed metadata: (%q,%d,%d) vs (%q,%d,%d)",
				again.Name, again.MaxInsts, again.Len(), got.Name, got.MaxInsts, got.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if again.At(i) != got.At(i) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}

// TestHostileHeaders verifies the pre-allocation bounds: zero and
// oversized name lengths and absurd record counts are rejected outright.
func TestHostileHeaders(t *testing.T) {
	header := func(nameLen uint16, name string, count uint64) []byte {
		var p []byte
		p = append(p, 'H', 'T', 'R', 'C')
		p = binary.LittleEndian.AppendUint16(p, trace.FileVersion)
		p = binary.LittleEndian.AppendUint16(p, nameLen)
		p = append(p, name...)
		p = binary.LittleEndian.AppendUint64(p, 0) // bound
		p = binary.LittleEndian.AppendUint64(p, count)
		return p
	}
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"zero-name-len", header(0, "", 0), "empty workload name"},
		{"oversized-name-len", header(0xffff, "x", 0), "implausible workload name length"},
		{"absurd-count", header(1, "x", 1<<50), "implausible record count"},
		{"count-beyond-payload", header(1, "x", 100), "truncated after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := trace.ReadFrom(gzipped(tc.payload))
			if err == nil {
				t.Fatal("hostile header accepted")
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTrailerVerified checks that payload corruption caught only by the
// gzip CRC, and trailing bytes beyond the promised record count, both
// fail the read instead of yielding a silently wrong recording.
func TestTrailerVerified(t *testing.T) {
	rec := fuzzSeedRecording(8)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	t.Run("trailing-records", func(t *testing.T) {
		// Rebuild the payload with one extra record appended but the
		// original count in the header.
		payload := rawPayload(t, buf.Bytes())
		extra := append(append([]byte(nil), payload...), make([]byte, 55)...)
		if _, err := trace.ReadFrom(gzipped(extra)); err == nil {
			t.Error("trailing records accepted")
		}
	})
	t.Run("writeto-empty-name", func(t *testing.T) {
		anon := trace.FromRecords("", 0, nil)
		if _, err := anon.WriteTo(&bytes.Buffer{}); err == nil {
			t.Error("WriteTo accepted an unnamed recording")
		}
	})
}

// rawPayload gunzips a trace file back to its framed payload.
func rawPayload(t *testing.T, file []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	payload, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}
