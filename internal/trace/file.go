package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"helios/internal/emu"
	"helios/internal/isa"
)

// Binary trace file format, gzip-framed. Inside the gzip stream:
//
//	magic   [4]byte  "HTRC"
//	version uint16   (little endian, currently 1)
//	namelen uint16   + namelen bytes of workload name (UTF-8)
//	bound   uint64   the MaxInsts the recording was captured with
//	count   uint64   number of records
//	count × 55-byte records (see encodeRecord)
//
// gzip's trailing CRC over the uncompressed payload catches mid-stream
// corruption; the magic/version header catches wrong or stale files.

var fileMagic = [4]byte{'H', 'T', 'R', 'C'}

// FileVersion is the current trace file format version.
const FileVersion = 1

const recordSize = 55

// Hostile-header bounds: a trace header must stay within these before a
// single byte of it is trusted for allocation. Real workload names are a
// dozen bytes; real recordings are millions of records, not 2^40.
const (
	maxNameLen     = 1 << 12
	maxFileRecords = 1 << 40
)

// FrameOffsets returns every frame boundary of the uncompressed payload
// of a trace file with the given name length and record count: after the
// magic, version, name length, name, bound and count fields, then after
// each record. Fault-injection tooling (internal/chaos) truncates the
// payload at each of these offsets to prove ReadFrom fails loudly at
// every one.
func FrameOffsets(nameLen, count int) []int {
	offs := []int{4, 6, 8, 8 + nameLen, 16 + nameLen, 24 + nameLen}
	base := 24 + nameLen
	for i := 1; i <= count; i++ {
		offs = append(offs, base+i*recordSize)
	}
	return offs
}

// flag bits in the record's flags byte.
const flagTaken = 1 << 0

func encodeRecord(buf *[recordSize]byte, r emu.Retired) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], r.Seq)
	le.PutUint64(buf[8:], r.PC)
	le.PutUint64(buf[16:], r.NextPC)
	le.PutUint16(buf[24:], uint16(r.Inst.Op))
	buf[26] = uint8(r.Inst.Rd)
	buf[27] = uint8(r.Inst.Rs1)
	buf[28] = uint8(r.Inst.Rs2)
	le.PutUint64(buf[29:], uint64(r.Inst.Imm))
	le.PutUint64(buf[37:], r.EA)
	buf[45] = r.MemSize
	var flags uint8
	if r.Taken {
		flags |= flagTaken
	}
	buf[46] = flags
	le.PutUint64(buf[47:], r.StoreVal)
}

func decodeRecord(buf *[recordSize]byte) emu.Retired {
	le := binary.LittleEndian
	return emu.Retired{
		Seq:    le.Uint64(buf[0:]),
		PC:     le.Uint64(buf[8:]),
		NextPC: le.Uint64(buf[16:]),
		Inst: isa.Inst{
			Op:  isa.Opcode(le.Uint16(buf[24:])),
			Rd:  isa.Reg(buf[26]),
			Rs1: isa.Reg(buf[27]),
			Rs2: isa.Reg(buf[28]),
			Imm: int64(le.Uint64(buf[29:])),
		},
		EA:       le.Uint64(buf[37:]),
		MemSize:  buf[45],
		Taken:    buf[46]&flagTaken != 0,
		StoreVal: le.Uint64(buf[47:]),
	}
}

// countingWriter tracks compressed bytes written to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo serializes the recording to w in the versioned gzip-framed
// binary format and returns the number of (compressed) bytes written.
// It implements io.WriterTo.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	zw := gzip.NewWriter(cw)

	hdr := make([]byte, 0, 32+len(r.Name))
	hdr = append(hdr, fileMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, FileVersion)
	if len(r.Name) == 0 {
		return 0, fmt.Errorf("trace: recording has no workload name")
	}
	if len(r.Name) > maxNameLen {
		return 0, fmt.Errorf("trace: workload name too long (%d bytes)", len(r.Name))
	}
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(r.Name)))
	hdr = append(hdr, r.Name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, r.MaxInsts)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(r.recs)))
	if _, err := zw.Write(hdr); err != nil {
		return cw.n, err
	}

	var buf [recordSize]byte
	for _, rec := range r.recs {
		encodeRecord(&buf, rec)
		if _, err := zw.Write(buf[:]); err != nil {
			return cw.n, err
		}
	}
	if err := zw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a recording previously written by WriteTo. It
// fails loudly on non-trace input, version mismatches, hostile headers
// (absurd name lengths or record counts), truncation, trailing garbage
// and payload corruption (the gzip CRC is verified before the recording
// is returned).
func ReadFrom(rd io.Reader) (*Recording, error) {
	zr, err := gzip.NewReader(bufio.NewReader(rd))
	if err != nil {
		return nil, fmt.Errorf("trace: not a trace file (gzip: %w)", err)
	}
	defer zr.Close()
	// A trace file is exactly one gzip stream: anything after it is not
	// ours, and single-stream mode makes the final EOF verify the CRC.
	zr.Multistream(false)

	var fixed [8]byte // magic + version + namelen
	if _, err := io.ReadFull(zr, fixed[:]); err != nil {
		return nil, fmt.Errorf("trace: truncated header: %w", err)
	}
	if *(*[4]byte)(fixed[0:4]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", fixed[0:4])
	}
	if v := binary.LittleEndian.Uint16(fixed[4:]); v != FileVersion {
		return nil, fmt.Errorf("trace: unsupported file version %d (want %d)", v, FileVersion)
	}
	nameLen := binary.LittleEndian.Uint16(fixed[6:])
	if nameLen == 0 {
		return nil, fmt.Errorf("trace: empty workload name")
	}
	if int(nameLen) > maxNameLen {
		return nil, fmt.Errorf("trace: implausible workload name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(zr, name); err != nil {
		return nil, fmt.Errorf("trace: truncated header: %w", err)
	}
	var tail [16]byte // bound + count
	if _, err := io.ReadFull(zr, tail[:]); err != nil {
		return nil, fmt.Errorf("trace: truncated header: %w", err)
	}
	bound := binary.LittleEndian.Uint64(tail[0:])
	count := binary.LittleEndian.Uint64(tail[8:])
	if count > maxFileRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}

	// Grow incrementally: a corrupt count must not pre-allocate the world.
	recs := make([]emu.Retired, 0, min(count, 1<<20))
	var buf [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(zr, buf[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("trace: truncated after %d of %d records", i, count)
			}
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		recs = append(recs, decodeRecord(&buf))
	}
	// Drain to the end of the gzip stream: this forces the CRC/length
	// trailer check (catching mid-stream corruption) and rejects files
	// whose payload holds more than the header's count promised.
	var extra [1]byte
	if n, err := io.ReadFull(zr, extra[:]); n != 0 || !errors.Is(err, io.EOF) {
		if n != 0 {
			return nil, fmt.Errorf("trace: trailing data after %d records", count)
		}
		return nil, fmt.Errorf("trace: corrupt stream trailer: %w", err)
	}
	return &Recording{Name: string(name), MaxInsts: bound, recs: recs}, nil
}
