package helios

// Fusion Predictor geometry from the paper (Section IV-A2): a tournament
// of a "local" PC-indexed table and a "global" gshare-like table, each
// 512 sets × 4 ways with 8-bit tags, 6-bit distances, 2-bit confidence
// counters and pseudo-LRU replacement, arbitrated by a 2048-entry
// direct-mapped selector of 2-bit counters.
const (
	fpSets     = 512
	fpWays     = 4
	selEntries = 2048
	maxConf    = 3
	distBits   = 6
	maxFPDist  = 1<<distBits - 1 // 63
)

type fpEntry struct {
	valid bool
	tag   uint8
	dist  uint8 // 6-bit distance to the head nucleus
	conf  uint8 // 2-bit saturating confidence
	stamp uint64
}

type fpTable struct {
	entries [fpSets * fpWays]fpEntry
	clock   uint64
}

func (t *fpTable) set(idx uint64) []fpEntry {
	i := int(idx % fpSets)
	return t.entries[i*fpWays : (i+1)*fpWays]
}

func fpTag(pc uint64) uint8 { return uint8((pc >> 2) ^ (pc >> 11)) }

// lookup returns the entry for pc in the set idx, or nil.
func (t *fpTable) lookup(idx uint64, tag uint8) *fpEntry {
	set := t.set(idx)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			t.clock++
			set[i].stamp = t.clock
			return &set[i]
		}
	}
	return nil
}

// train updates or allocates an entry for an observed (pc, distance) pair.
func (t *fpTable) train(idx uint64, tag uint8, dist uint8) {
	if e := t.lookup(idx, tag); e != nil {
		if e.dist == dist {
			if e.conf < maxConf {
				e.conf++
			}
		} else {
			e.dist = dist
			e.conf = 1
		}
		return
	}
	// Allocate, evicting the pseudo-LRU way.
	set := t.set(idx)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	t.clock++
	set[victim] = fpEntry{valid: true, tag: tag, dist: dist, conf: 1, stamp: t.clock}
}

// FPConfig tunes the fusion predictor's confidence estimation. The zero
// value reproduces the paper's design (2-bit counters, fuse at 3,
// deterministic updates). Probabilistic updates implement the paper's
// suggested accuracy/coverage trade ("probabilistic counters", Riley &
// Zilles): confidence increments succeed only with probability
// 1/2^ProbShift, so entries take longer to earn trust.
type FPConfig struct {
	// ConfidenceThreshold is the counter value required to fuse
	// (default and maximum: 3).
	ConfidenceThreshold uint8
	// ProbShift > 0 enables probabilistic increments with probability
	// 1/2^ProbShift.
	ProbShift uint8
}

func (c *FPConfig) normalize() {
	if c.ConfidenceThreshold == 0 || c.ConfidenceThreshold > maxConf {
		c.ConfidenceThreshold = maxConf
	}
}

// Prediction is the FP's answer for a µ-op at Decode.
type Prediction struct {
	Distance  int
	Confident bool // saturating counter at max: fusion may be attempted
	local     bool // which component provided the prediction (for updates)
}

// FP is the tournament fusion predictor.
type FP struct {
	cfg      FPConfig
	rng      uint64 // deterministic xorshift for probabilistic updates
	local    fpTable
	global   fpTable
	selector [selEntries]uint8 // 2-bit: >=2 prefers global

	// Stats.
	Lookups, Hits uint64
	Trainings     uint64
	Mispredicts   uint64
}

// NewFP returns a fusion predictor with the paper's configuration.
func NewFP() *FP { return NewFPWith(FPConfig{}) }

// NewFPWith returns a fusion predictor with explicit confidence tuning.
func NewFPWith(cfg FPConfig) *FP {
	cfg.normalize()
	return &FP{cfg: cfg, rng: 0x9e3779b97f4a7c15}
}

// coin returns true with probability 1/2^shift (deterministic xorshift).
func (f *FP) coin(shift uint8) bool {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng&(1<<shift-1) == 0
}

func localIndex(pc uint64) uint64 { return pc >> 2 }
func globalIndex(pc, ghr uint64) uint64 {
	return (pc >> 2) ^ (ghr & 0x1ff) ^ (ghr >> 9 & 0x1ff)
}
func selIndex(pc uint64) uint64 { return (pc >> 2) % selEntries }

// Predict consults both components for the µ-op at pc given the global
// branch history and arbitrates with the selector.
func (f *FP) Predict(pc, ghr uint64) (Prediction, bool) {
	f.Lookups++
	tag := fpTag(pc)
	le := f.local.lookup(localIndex(pc), tag)
	ge := f.global.lookup(globalIndex(pc, ghr), tag)
	if le == nil && ge == nil {
		return Prediction{}, false
	}
	useGlobal := f.selector[selIndex(pc)] >= 2
	var e *fpEntry
	isLocal := false
	switch {
	case le != nil && (ge == nil || !useGlobal):
		e, isLocal = le, true
	default:
		e = ge
	}
	f.Hits++
	return Prediction{
		Distance:  int(e.dist),
		Confident: e.conf >= f.cfg.ConfidenceThreshold,
		local:     isLocal,
	}, true
}

// Train records a pair discovered by the UCH at Commit: the µ-op at pc
// should fuse with the head nucleus `distance` µ-ops earlier. Both
// components train; the selector moves toward whichever component already
// agreed with the observation.
func (f *FP) Train(pc, ghr uint64, distance int) {
	if distance < 1 {
		return
	}
	if distance > maxFPDist {
		distance = maxFPDist
	}
	f.Trainings++
	tag := fpTag(pc)
	d := uint8(distance)

	localAgrees := entryAgrees(f.local.lookup(localIndex(pc), tag), d)
	globalAgrees := entryAgrees(f.global.lookup(globalIndex(pc, ghr), tag), d)
	sel := &f.selector[selIndex(pc)]
	switch {
	case localAgrees && !globalAgrees:
		if *sel > 0 {
			*sel--
		}
	case globalAgrees && !localAgrees:
		if *sel < 3 {
			*sel++
		}
	}

	if f.cfg.ProbShift > 0 && !f.coin(f.cfg.ProbShift) {
		// Probabilistic hysteresis: this training event is dropped for
		// existing entries (allocation of new entries still proceeds so
		// the predictor can learn at all).
		if f.local.lookup(localIndex(pc), tag) != nil &&
			f.global.lookup(globalIndex(pc, ghr), tag) != nil {
			return
		}
	}
	f.local.train(localIndex(pc), tag, d)
	f.global.train(globalIndex(pc, ghr), tag, d)
}

func entryAgrees(e *fpEntry, dist uint8) bool {
	return e != nil && e.dist == dist
}

// Mispredict resets the confidence of the providing entry after an
// incorrectly fused µ-op is discovered at Execute (the paper resets the
// confidence counter to 0 on a fusion misprediction).
func (f *FP) Mispredict(pc, ghr uint64, p Prediction) {
	f.Mispredicts++
	tag := fpTag(pc)
	var e *fpEntry
	if p.local {
		e = f.local.lookup(localIndex(pc), tag)
	} else {
		e = f.global.lookup(globalIndex(pc, ghr), tag)
	}
	if e != nil {
		e.conf = 0
	}
	// Steer the selector away from the mispredicting component.
	sel := &f.selector[selIndex(pc)]
	if p.local {
		if *sel < 3 {
			*sel++
		}
	} else if *sel > 0 {
		*sel--
	}
}
