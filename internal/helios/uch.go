// Package helios implements the paper's contribution: the predictor
// infrastructure that drives non-consecutive (NCSF), non-contiguous
// (NCTF) and different-base-register (DBR) memory fusion.
//
// Two structures cooperate (Section IV-A): the Unfused Committed History
// (UCH) lives at Commit and discovers fuseable pairs among µ-ops that
// retired unfused; the Fusion Predictor (FP) lives at Decode and predicts,
// for a µ-op PC, the distance in µ-ops to the head nucleus it should fuse
// with. The package also provides the storage cost model of Section IV-B7.
package helios

// UCH parameters from the paper: 6-entry fully associative load history,
// single-entry store history, 7-bit commit numbers, 64 µ-op max distance.
const (
	LdUCHEntries = 6
	MaxDistance  = 64
	cnMask       = 127 // 7-bit commit number
)

type uchEntry struct {
	valid bool
	tag   uint64 // cache line address (32-bit partial tag in hardware)
	cn    uint8  // 7-bit commit number of the unfused µ-op
	stamp uint64 // LRU (realised through the CN in hardware)
}

// UCH is the Unfused Committed History. Loads and stores have distinct
// histories: stores keep only the last unfused committed store because
// stores must not fuse across other stores.
type UCH struct {
	loads []uchEntry
	store uchEntry
	clock uint64

	// Stats.
	LoadMatches, StoreMatches uint64
	LoadInserts, StoreInserts uint64
}

// NewUCH returns an empty history with the paper's 6-entry load side.
func NewUCH() *UCH { return NewUCHSize(LdUCHEntries) }

// NewUCHSize returns a history with a custom load-side capacity
// (for the sizing ablation; the paper chose 6).
func NewUCHSize(loadEntries int) *UCH {
	if loadEntries < 1 {
		loadEntries = 1
	}
	return &UCH{loads: make([]uchEntry, loadEntries)}
}

// ObserveLoad is called when an unfused load commits. If an earlier
// unfused load to the same cache line is present, the pair is reported:
// the entry is invalidated (a µ-op can fuse with only one other µ-op) and
// the distance between the two µ-ops is returned for FP training.
// Otherwise the load is inserted.
func (u *UCH) ObserveLoad(lineAddr uint64, seq uint64) (distance int, found bool) {
	u.clock++
	cn := uint8(seq & cnMask)
	for i := range u.loads {
		e := &u.loads[i]
		if e.valid && e.tag == lineAddr {
			d := int((cn - e.cn) & cnMask)
			e.valid = false
			if d >= 1 && d <= MaxDistance {
				u.LoadMatches++
				return d, true
			}
			// CN wrapped or same µ-op slot: treat as stale, fall through
			// to insertion.
			break
		}
	}
	u.insertLoad(lineAddr, cn)
	return 0, false
}

func (u *UCH) insertLoad(lineAddr uint64, cn uint8) {
	u.LoadInserts++
	victim := 0
	for i := range u.loads {
		if !u.loads[i].valid {
			victim = i
			break
		}
		if u.loads[i].stamp < u.loads[victim].stamp {
			victim = i
		}
	}
	u.loads[victim] = uchEntry{valid: true, tag: lineAddr, cn: cn, stamp: u.clock}
}

// ObserveStore is the store-side equivalent with a single-entry history.
func (u *UCH) ObserveStore(lineAddr uint64, seq uint64) (distance int, found bool) {
	u.clock++
	cn := uint8(seq & cnMask)
	if u.store.valid && u.store.tag == lineAddr {
		d := int((cn - u.store.cn) & cnMask)
		u.store.valid = false
		if d >= 1 && d <= MaxDistance {
			u.StoreMatches++
			return d, true
		}
	}
	u.StoreInserts++
	u.store = uchEntry{valid: true, tag: lineAddr, cn: cn, stamp: u.clock}
	return 0, false
}

// InvalidateStore clears the store history; called when a store commits
// that must not be a head nucleus (e.g. it was fused already). This keeps
// the "no store in catalyst" rule intact: the last unfused committed store
// is only valid if no other store committed since.
func (u *UCH) InvalidateStore() { u.store.valid = false }

// Reset clears both histories (pipeline flush).
func (u *UCH) Reset() {
	for i := range u.loads {
		u.loads[i] = uchEntry{}
	}
	u.store = uchEntry{}
}
