package helios

// StorageCost itemises the storage the Helios mechanisms add over a
// baseline with consecutive+contiguous memory fusion, reproducing the
// accounting of Sections IV-B and IV-C for the paper's machine
// configuration (140-entry AQ, 160-entry IQ, 352-entry ROB, 128-entry LQ,
// 32-entry RAT, 2 NCSF nesting levels).
type StorageCost struct {
	AQBits           int // Is Head/Tail Nucleus bits + 8-bit NCS tags
	RenameCounters   int // Max Active NCS + Active NCS
	PhysRegNucleusAQ int // head/tail bit per physical register id in the AQ
	PhysRegNucleusIQ int
	PhysRegNucleusLQ int
	WaRBuffer        int // 2-entry rename-side destination buffer (+ deadlock bits)
	RATInsideNCS     int
	IQNCSReady       int
	DispatchBuffer   int
	RATDeadlockTags  int
	RenameDeadlock   int // deadlock tag bits in the rename buffer
	ROBCommitGroups  int // Ext ComGroup + delimiter bits
	LQSQSecondAccess int // offset + size of the second access
	SerializingBit   int
	StorePairBit     int

	FusionPredictor int // local + global + selector
	FlushPointers   int // two 9-bit ROB pointers per ROB entry (Section IV-C)
}

// MachineParams are the structure sizes the cost depends on.
type MachineParams struct {
	AQEntries  int
	IQEntries  int
	ROBEntries int
	LQEntries  int
	RATEntries int
	NestLevels int
}

// PaperParams is the configuration evaluated in the paper.
func PaperParams() MachineParams {
	return MachineParams{
		AQEntries:  140,
		IQEntries:  160,
		ROBEntries: 352,
		LQEntries:  128,
		RATEntries: 32,
		NestLevels: 2,
	}
}

// Cost computes the itemised storage for the given machine.
func Cost(p MachineParams) StorageCost {
	physRegIDBits := 1 // one nucleus bit per physical register identifier
	return StorageCost{
		// Is Head + Is Tail + 8-bit NCS tag per AQ entry.
		AQBits:         p.AQEntries * (2 + 8),
		RenameCounters: 4,
		// 5 register identifiers per AQ entry (3 src + 2 dst), 5 per IQ
		// entry, 2 per LQ entry (the paper reports 700/800/256 bits).
		PhysRegNucleusAQ: p.AQEntries * 5 * physRegIDBits,
		PhysRegNucleusIQ: p.IQEntries * 5 * physRegIDBits,
		PhysRegNucleusLQ: p.LQEntries * 2 * physRegIDBits,
		// One physical register identifier (~8 bits) + NCS tag per nest
		// level; the paper reports 34 bits for 2 entries.
		WaRBuffer:       p.NestLevels * 17,
		RATInsideNCS:    p.RATEntries,
		IQNCSReady:      p.IQEntries,
		DispatchBuffer:  p.NestLevels * 32, // ROB/IQ/LQ/SQ pointers per level
		RATDeadlockTags: p.RATEntries * p.NestLevels,
		RenameDeadlock:  p.NestLevels * 2,
		ROBCommitGroups: p.ROBEntries * 2,
		// 6-bit offset + 2-bit size per LQ/SQ entry; the paper reports 704
		// bits total for its LQ+SQ capacity.
		LQSQSecondAccess: 704,
		SerializingBit:   1,
		StorePairBit:     1,
		FusionPredictor:  FusionPredictorBits(),
		FlushPointers:    p.ROBEntries * 2 * 9,
	}
}

// FusionPredictorBits returns the FP storage: two 2048-entry tables of
// 17-bit entries plus a 2048-entry selector of 2-bit counters (72 Kbit).
func FusionPredictorBits() int {
	table := fpSets * fpWays * 17
	selector := selEntries * 2
	return 2*table + selector
}

// NCSFBits returns the pipeline-side storage (everything except the
// predictor and the flush pointers); the paper reports 4.77 Kbit.
func (c StorageCost) NCSFBits() int {
	return c.AQBits + c.RenameCounters +
		c.PhysRegNucleusAQ + c.PhysRegNucleusIQ + c.PhysRegNucleusLQ +
		c.WaRBuffer + c.RATInsideNCS + c.IQNCSReady + c.DispatchBuffer +
		c.RATDeadlockTags + c.RenameDeadlock + c.ROBCommitGroups +
		c.LQSQSecondAccess + c.SerializingBit + c.StorePairBit
}

// TotalBits returns pipeline storage plus the fusion predictor
// (the paper reports 76.77 Kbit ≈ 9.60 KB).
func (c StorageCost) TotalBits() int { return c.NCSFBits() + c.FusionPredictor }

// TotalWithFlushBits additionally includes the flush-pointer upper bound
// of Section IV-C (the paper reports ≈ 83 Kbit).
func (c StorageCost) TotalWithFlushBits() int { return c.TotalBits() + c.FlushPointers }
