package helios

import "testing"

func TestUCHPairDiscovery(t *testing.T) {
	u := NewUCH()
	// First load inserts; the second to the same line matches.
	if _, found := u.ObserveLoad(0x10, 100); found {
		t.Error("first observation cannot match")
	}
	d, found := u.ObserveLoad(0x10, 105)
	if !found || d != 5 {
		t.Fatalf("distance = %d, %v; want 5, true", d, found)
	}
	// The matched entry is invalidated: a third access inserts again.
	if _, found := u.ObserveLoad(0x10, 110); found {
		t.Error("entry must be invalidated after a match")
	}
}

func TestUCHDistanceBound(t *testing.T) {
	u := NewUCH()
	u.ObserveLoad(0x10, 0)
	if _, found := u.ObserveLoad(0x10, 65); found {
		t.Error("distance 65 exceeds the 64 µ-op maximum")
	}
	// Exactly 64 is allowed.
	u2 := NewUCH()
	u2.ObserveLoad(0x20, 0)
	if d, found := u2.ObserveLoad(0x20, 64); !found || d != 64 {
		t.Errorf("distance 64 should match, got %d %v", d, found)
	}
}

func TestUCHCNWrap(t *testing.T) {
	u := NewUCH()
	u.ObserveLoad(0x10, 120)
	// seq 130: (130-120)&127 = 10.
	if d, found := u.ObserveLoad(0x10, 130); !found || d != 10 {
		t.Errorf("wrapped distance = %d, %v; want 10", d, found)
	}
}

func TestUCHLRUReplacement(t *testing.T) {
	u := NewUCH()
	// Fill all 6 entries.
	for i := uint64(0); i < LdUCHEntries; i++ {
		u.ObserveLoad(0x100+i, i)
	}
	// Insert a 7th line: evicts the LRU (line 0x100).
	u.ObserveLoad(0x200, 6)
	// Line 0x101 is still resident (probe it before anything else: every
	// miss inserts and shifts the LRU order).
	if _, found := u.ObserveLoad(0x101, 7); !found {
		t.Error("resident line should match")
	}
	if _, found := u.ObserveLoad(0x100, 8); found {
		t.Error("evicted line must not match")
	}
}

func TestUCHStoreSingleEntry(t *testing.T) {
	u := NewUCH()
	u.ObserveStore(0x10, 0)
	u.ObserveStore(0x20, 1) // single-entry history: replaces 0x10
	if d, found := u.ObserveStore(0x20, 3); !found || d != 2 {
		t.Errorf("store match = %d, %v; want 2", d, found)
	}
	// The match invalidated the entry; the same line now re-inserts.
	if _, found := u.ObserveStore(0x20, 4); found {
		t.Error("matched entry must be invalidated")
	}
}

func TestUCHInvalidateStore(t *testing.T) {
	u := NewUCH()
	u.ObserveStore(0x10, 0)
	u.InvalidateStore()
	if _, found := u.ObserveStore(0x10, 1); found {
		t.Error("invalidated store must not match")
	}
}

func TestUCHReset(t *testing.T) {
	u := NewUCH()
	u.ObserveLoad(0x10, 0)
	u.ObserveStore(0x20, 1)
	u.Reset()
	if _, found := u.ObserveLoad(0x10, 2); found {
		t.Error("reset did not clear loads")
	}
	if _, found := u.ObserveStore(0x20, 3); found {
		t.Error("reset did not clear stores")
	}
}

func TestFPTrainToConfidence(t *testing.T) {
	f := NewFP()
	pc, ghr := uint64(0x1000), uint64(0)
	if _, ok := f.Predict(pc, ghr); ok {
		t.Error("untrained FP must miss")
	}
	// Three trainings saturate the 2-bit counter (1 -> 2 -> 3).
	for i := 0; i < 3; i++ {
		f.Train(pc, ghr, 5)
	}
	p, ok := f.Predict(pc, ghr)
	if !ok || p.Distance != 5 || !p.Confident {
		t.Fatalf("prediction = %+v, %v; want distance 5 confident", p, ok)
	}
}

func TestFPNotConfidentBeforeSaturation(t *testing.T) {
	f := NewFP()
	f.Train(0x1000, 0, 5)
	p, ok := f.Predict(0x1000, 0)
	if !ok {
		t.Fatal("trained FP must hit")
	}
	if p.Confident {
		t.Error("one training must not saturate confidence")
	}
}

func TestFPDistanceChangeResetsConfidence(t *testing.T) {
	f := NewFP()
	for i := 0; i < 3; i++ {
		f.Train(0x1000, 0, 5)
	}
	f.Train(0x1000, 0, 9) // new distance: confidence back to 1
	p, _ := f.Predict(0x1000, 0)
	if p.Distance != 9 || p.Confident {
		t.Errorf("prediction after distance change = %+v", p)
	}
}

func TestFPMispredictResetsConfidence(t *testing.T) {
	f := NewFP()
	for i := 0; i < 3; i++ {
		f.Train(0x1000, 0, 5)
	}
	p, _ := f.Predict(0x1000, 0)
	f.Mispredict(0x1000, 0, p)
	p2, ok := f.Predict(0x1000, 0)
	if !ok {
		t.Fatal("entry should survive a misprediction")
	}
	if p2.Confident {
		t.Error("confidence must reset to 0 on misprediction")
	}
}

func TestFPDistanceCap(t *testing.T) {
	f := NewFP()
	for i := 0; i < 3; i++ {
		f.Train(0x1000, 0, 1000)
	}
	p, _ := f.Predict(0x1000, 0)
	if p.Distance != maxFPDist {
		t.Errorf("distance = %d, want capped at %d", p.Distance, maxFPDist)
	}
	// Non-positive distances are ignored.
	before := f.Trainings
	f.Train(0x2000, 0, 0)
	if f.Trainings != before {
		t.Error("zero distance must not train")
	}
}

func TestFPGlobalComponentDisambiguatesByHistory(t *testing.T) {
	// The same PC fuses at distance 3 under history A and distance 7 under
	// history B: the local component thrashes, the global one learns both.
	f := NewFP()
	const pc = 0x1000
	ghrA, ghrB := uint64(0b1010), uint64(0b0101)
	for i := 0; i < 8; i++ {
		f.Train(pc, ghrA, 3)
		f.Train(pc, ghrB, 7)
	}
	pa, okA := f.Predict(pc, ghrA)
	pb, okB := f.Predict(pc, ghrB)
	if !okA || !okB {
		t.Fatal("both histories should hit")
	}
	if pa.Distance != 3 || pb.Distance != 7 {
		t.Errorf("distances = %d/%d, want 3/7 (global component)", pa.Distance, pb.Distance)
	}
	if !pa.Confident || !pb.Confident {
		t.Error("global entries should be confident after repeated agreement")
	}
}

func TestFPSetConflictEviction(t *testing.T) {
	f := NewFP()
	// 5 PCs mapping to the same local set (stride = sets*4 bytes) exceed
	// the 4 ways: the LRU entry is evicted.
	base := uint64(0x1000)
	stride := uint64(fpSets * 4)
	for i := uint64(0); i < 5; i++ {
		for j := 0; j < 3; j++ {
			f.Train(base+i*stride, uint64(i), 4)
		}
	}
	hits := 0
	for i := uint64(0); i < 5; i++ {
		// Use a fresh history so only the local component can hit;
		// global entries are scattered by the differing histories above.
		if _, ok := f.Predict(base+i*stride, uint64(i)); ok {
			hits++
		}
	}
	if hits < 4 {
		t.Errorf("hits = %d, want >= 4 (only one eviction)", hits)
	}
}

func TestStorageBudget(t *testing.T) {
	c := Cost(PaperParams())
	// Paper numbers: AQ changes 1.37 Kbit; 700/800/256 nucleus bits in
	// AQ/IQ/LQ; FP 72 Kbit; NCSF support ≈ 4.77 Kbit; total ≈ 76.77 Kbit;
	// with flush pointers ≈ 83 Kbit.
	if c.AQBits != 1400 {
		t.Errorf("AQ bits = %d, want 1400 (1.37 Kbit)", c.AQBits)
	}
	if c.PhysRegNucleusAQ != 700 || c.PhysRegNucleusIQ != 800 || c.PhysRegNucleusLQ != 256 {
		t.Errorf("nucleus bits = %d/%d/%d, want 700/800/256",
			c.PhysRegNucleusAQ, c.PhysRegNucleusIQ, c.PhysRegNucleusLQ)
	}
	if c.FusionPredictor != 73728 { // 72 Kbit
		t.Errorf("FP bits = %d, want 73728", c.FusionPredictor)
	}
	ncsf := c.NCSFBits()
	if ncsf < 4400 || ncsf > 5200 {
		t.Errorf("NCSF bits = %d, want ≈ 4.77 Kbit", ncsf)
	}
	total := c.TotalBits()
	if total < 77000 || total > 80000 {
		t.Errorf("total bits = %d, want ≈ 76.77 Kbit", total)
	}
	if c.FlushPointers != 6336 {
		t.Errorf("flush pointers = %d, want 6336", c.FlushPointers)
	}
	withFlush := c.TotalWithFlushBits()
	if withFlush < 83000 || withFlush > 87000 {
		t.Errorf("total with flush = %d, want ≈ 83-85 Kbit", withFlush)
	}
}

func TestProbabilisticCountersSlowConvergence(t *testing.T) {
	trainsUntilConfident := func(f *FP) int {
		for i := 1; ; i++ {
			f.Train(0x1000, 0, 5)
			if p, ok := f.Predict(0x1000, 0); ok && p.Confident {
				return i
			}
			if i > 10000 {
				t.Fatal("never became confident")
			}
		}
	}
	plain := trainsUntilConfident(NewFP())
	prob := trainsUntilConfident(NewFPWith(FPConfig{ProbShift: 3}))
	if plain != 3 {
		t.Errorf("plain FP needed %d trainings, want 3", plain)
	}
	if prob <= plain {
		t.Errorf("probabilistic FP converged in %d trainings, want > %d", prob, plain)
	}
}

func TestProbabilisticCountersResistNoise(t *testing.T) {
	// A stable distance with occasional noise: probabilistic updates drop
	// most of the noisy distance flips, so the entry stays confident more
	// of the time than with deterministic counters.
	confidentFraction := func(f *FP) float64 {
		confident := 0
		for i := 0; i < 4000; i++ {
			d := 5
			if i%5 == 4 {
				d = 9 // noise
			}
			f.Train(0x2000, 0, d)
			if p, ok := f.Predict(0x2000, 0); ok && p.Confident && p.Distance == 5 {
				confident++
			}
		}
		return float64(confident) / 4000
	}
	plain := confidentFraction(NewFP())
	prob := confidentFraction(NewFPWith(FPConfig{ProbShift: 2}))
	if prob <= plain {
		t.Errorf("probabilistic FP confident %.2f of the time, plain %.2f: hysteresis missing",
			prob, plain)
	}
}

func TestConfidenceThreshold(t *testing.T) {
	f := NewFPWith(FPConfig{ConfidenceThreshold: 1})
	f.Train(0x3000, 0, 4)
	p, ok := f.Predict(0x3000, 0)
	if !ok || !p.Confident {
		t.Errorf("threshold-1 FP should be confident after one training: %+v %v", p, ok)
	}
}

func TestUCHCustomSize(t *testing.T) {
	u := NewUCHSize(2)
	u.ObserveLoad(0x10, 0)
	u.ObserveLoad(0x20, 1)
	u.ObserveLoad(0x30, 2) // evicts 0x10
	if _, found := u.ObserveLoad(0x20, 3); !found {
		t.Error("resident line missing in 2-entry UCH")
	}
	if _, found := u.ObserveLoad(0x10, 4); found {
		t.Error("evicted line matched in 2-entry UCH")
	}
}
