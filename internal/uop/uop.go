// Package uop defines the micro-op level vocabulary shared by the fusion
// engine (internal/fusion), the Helios predictor (internal/helios) and the
// out-of-order pipeline (internal/ooo): fusion kinds, the paper's address
// relationship taxonomy for memory pairs (Figure 4), and architectural
// register extraction helpers.
//
// In this model every RISC-V instruction translates to exactly one µ-op
// (as in the paper), so a µ-op is identified by its dynamic sequence
// number and carries its architectural instruction.
package uop

import "helios/internal/isa"

// FuseKind says what kind of fused µ-op a head nucleus has become.
type FuseKind uint8

// Fusion kinds.
const (
	FuseNone      FuseKind = iota
	FuseIdiom              // non-memory idiom from Table I (e.g. slli+add)
	FuseLoadPair           // two loads fused into a load pair µ-op
	FuseStorePair          // two stores fused into a store pair µ-op
)

func (k FuseKind) String() string {
	switch k {
	case FuseNone:
		return "none"
	case FuseIdiom:
		return "idiom"
	case FuseLoadPair:
		return "ldp"
	case FuseStorePair:
		return "stp"
	}
	return "?"
}

// IsMemory reports whether the fusion kind pairs memory µ-ops.
func (k FuseKind) IsMemory() bool { return k == FuseLoadPair || k == FuseStorePair }

// AddrCategory classifies the address relationship of a fused memory pair,
// matching the categories of Figure 4 in the paper.
type AddrCategory uint8

// Address categories, mutually exclusive. Classification order is
// Overlapping > Contiguous > SameLine > NextLine.
const (
	AddrNone        AddrCategory = iota
	AddrOverlapping              // byte ranges intersect
	AddrContiguous               // ranges exactly adjacent, no gap
	AddrSameLine                 // same cache line, gap between ranges
	AddrNextLine                 // within one line-size region spanning two lines
	AddrTooFar                   // more than a line-size region apart: not fuseable
)

func (c AddrCategory) String() string {
	switch c {
	case AddrOverlapping:
		return "overlapping"
	case AddrContiguous:
		return "contiguous"
	case AddrSameLine:
		return "sameline"
	case AddrNextLine:
		return "nextline"
	case AddrTooFar:
		return "toofar"
	}
	return "none"
}

// Fuseable reports whether the category permits microarchitectural fusion
// (the data fits within a cache-access-granularity region).
func (c AddrCategory) Fuseable() bool {
	return c == AddrOverlapping || c == AddrContiguous || c == AddrSameLine || c == AddrNextLine
}

// ArchFuseable reports whether the category would be expressible as an
// architectural pair instruction (Armv8 ldp/stp requires exact contiguity).
func (c AddrCategory) ArchFuseable() bool { return c == AddrContiguous }

// Classify determines the address category of two accesses
// [ea1, ea1+sz1) and [ea2, ea2+sz2) for the given cache line size.
func Classify(ea1 uint64, sz1 uint8, ea2 uint64, sz2 uint8, lineSize uint64) AddrCategory {
	if sz1 == 0 || sz2 == 0 {
		return AddrNone
	}
	end1 := ea1 + uint64(sz1)
	end2 := ea2 + uint64(sz2)
	lo, hi := ea1, end1
	if ea2 < lo {
		lo = ea2
	}
	if end2 > hi {
		hi = end2
	}
	span := hi - lo
	if span > lineSize {
		return AddrTooFar
	}
	switch {
	case ea1 < end2 && ea2 < end1:
		return AddrOverlapping
	case end1 == ea2 || end2 == ea1:
		return AddrContiguous
	case lo/lineSize == (hi-1)/lineSize:
		return AddrSameLine
	default:
		return AddrNextLine
	}
}

// CrossesLine reports whether the combined access [lo, lo+span) crosses a
// cache line boundary, requiring two serialized cache accesses.
func CrossesLine(lo, span, lineSize uint64) bool {
	if span == 0 {
		return false
	}
	return lo/lineSize != (lo+span-1)/lineSize
}

// CombinedRange returns the lowest byte address and byte span covered by
// the two accesses.
func CombinedRange(ea1 uint64, sz1 uint8, ea2 uint64, sz2 uint8) (lo, span uint64) {
	end1 := ea1 + uint64(sz1)
	end2 := ea2 + uint64(sz2)
	lo, hi := ea1, end1
	if ea2 < lo {
		lo = ea2
	}
	if end2 > hi {
		hi = end2
	}
	return lo, hi - lo
}

// Sources returns the architectural source registers of the instruction,
// excluding x0 (which is not a true dependency).
func Sources(i isa.Inst) []isa.Reg {
	var out []isa.Reg
	if i.Op.HasRs1() && i.Rs1 != isa.Zero {
		out = append(out, i.Rs1)
	}
	if i.Op.HasRs2() && i.Rs2 != isa.Zero {
		out = append(out, i.Rs2)
	}
	return out
}

// Dest returns the architectural destination register, if the instruction
// writes one (writes to x0 do not count).
func Dest(i isa.Inst) (isa.Reg, bool) {
	if i.Op.HasRd() && i.Rd != isa.Zero {
		return i.Rd, true
	}
	return 0, false
}
