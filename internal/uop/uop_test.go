package uop

import (
	"testing"
	"testing/quick"

	"helios/internal/isa"
)

func TestClassify(t *testing.T) {
	const line = 64
	cases := []struct {
		name string
		ea1  uint64
		sz1  uint8
		ea2  uint64
		sz2  uint8
		want AddrCategory
	}{
		{"contiguous 8+8", 0, 8, 8, 8, AddrContiguous},
		{"contiguous reversed", 8, 8, 0, 8, AddrContiguous},
		{"contiguous asymmetric", 0, 8, 8, 4, AddrContiguous},
		{"overlap exact", 16, 8, 16, 8, AddrOverlapping},
		{"overlap partial", 16, 8, 20, 8, AddrOverlapping},
		{"same line with gap", 0, 8, 32, 8, AddrSameLine},
		{"same line far apart", 0, 4, 60, 4, AddrSameLine},
		{"next line within region", 32, 8, 72, 8, AddrNextLine},
		{"contiguous across line", 56, 8, 64, 8, AddrContiguous},
		{"too far", 0, 8, 120, 8, AddrTooFar},
		{"way too far", 0, 8, 4096, 8, AddrTooFar},
		{"zero size", 0, 0, 8, 8, AddrNone},
	}
	for _, c := range cases {
		if got := Classify(c.ea1, c.sz1, c.ea2, c.sz2, line); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifySymmetry(t *testing.T) {
	f := func(ea1, ea2 uint64, s1, s2 uint8) bool {
		sz1 := 1 << (s1 % 4) // 1,2,4,8
		sz2 := 1 << (s2 % 4)
		ea1 &= 0xffff
		ea2 &= 0xffff
		a := Classify(ea1, uint8(sz1), ea2, uint8(sz2), 64)
		b := Classify(ea2, uint8(sz2), ea1, uint8(sz1), 64)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyFuseableImpliesWithinRegion(t *testing.T) {
	f := func(ea1, ea2 uint64, s1, s2 uint8) bool {
		sz1 := uint8(1 << (s1 % 4))
		sz2 := uint8(1 << (s2 % 4))
		ea1 &= 0xffff
		ea2 &= 0xffff
		cat := Classify(ea1, sz1, ea2, sz2, 64)
		lo, span := CombinedRange(ea1, sz1, ea2, sz2)
		_ = lo
		if cat.Fuseable() && span > 64 {
			return false
		}
		if cat == AddrTooFar && span <= 64 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossesLine(t *testing.T) {
	cases := []struct {
		lo, span uint64
		want     bool
	}{
		{0, 8, false},
		{56, 8, false},
		{57, 8, true},
		{60, 16, true},
		{64, 64, false},
		{63, 2, true},
		{0, 0, false},
	}
	for _, c := range cases {
		if got := CrossesLine(c.lo, c.span, 64); got != c.want {
			t.Errorf("CrossesLine(%d,%d) = %v, want %v", c.lo, c.span, got, c.want)
		}
	}
}

func TestSourcesAndDest(t *testing.T) {
	add := isa.Inst{Op: isa.OpADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2}
	if s := Sources(add); len(s) != 2 || s[0] != isa.A1 || s[1] != isa.A2 {
		t.Errorf("Sources(add) = %v", s)
	}
	if d, ok := Dest(add); !ok || d != isa.A0 {
		t.Errorf("Dest(add) = %v, %v", d, ok)
	}
	// x0 never appears.
	addz := isa.Inst{Op: isa.OpADD, Rd: isa.Zero, Rs1: isa.Zero, Rs2: isa.A2}
	if s := Sources(addz); len(s) != 1 || s[0] != isa.A2 {
		t.Errorf("Sources with x0 = %v", s)
	}
	if _, ok := Dest(addz); ok {
		t.Error("Dest(x0) should not count")
	}
	// Stores have two sources and no destination.
	sd := isa.Inst{Op: isa.OpSD, Rs1: isa.SP, Rs2: isa.A0}
	if s := Sources(sd); len(s) != 2 {
		t.Errorf("Sources(sd) = %v", s)
	}
	if _, ok := Dest(sd); ok {
		t.Error("stores have no destination")
	}
}

func TestFuseKind(t *testing.T) {
	if !FuseLoadPair.IsMemory() || !FuseStorePair.IsMemory() {
		t.Error("pair kinds must be memory")
	}
	if FuseIdiom.IsMemory() || FuseNone.IsMemory() {
		t.Error("idiom/none must not be memory")
	}
	for _, k := range []FuseKind{FuseNone, FuseIdiom, FuseLoadPair, FuseStorePair} {
		if k.String() == "?" {
			t.Errorf("missing String for %d", k)
		}
	}
}

func TestArchFuseable(t *testing.T) {
	if !AddrContiguous.ArchFuseable() {
		t.Error("contiguous must be architecturally fuseable")
	}
	for _, c := range []AddrCategory{AddrOverlapping, AddrSameLine, AddrNextLine, AddrTooFar} {
		if c.ArchFuseable() {
			t.Errorf("%v must not be architecturally fuseable", c)
		}
	}
}
