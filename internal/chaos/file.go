package chaos

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"helios/internal/trace"
)

// File-level fault helpers. Trace files are gzip-framed, so faults are
// applied at two layers: truncation happens on the *uncompressed* payload
// at every frame boundary (then re-gzipped, so the file itself is
// well-formed gzip and only the trace framing is damaged), and bit flips
// happen on the raw compressed bytes (exercising the gzip header, CRC
// and deflate stream as well as the framing).

// Serialize renders a recording to trace-file bytes.
func Serialize(rec *trace.Recording) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Gunzip returns the uncompressed framed payload of a trace file.
func Gunzip(file []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(file))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// Gzip re-compresses a (possibly damaged) payload into a well-formed
// gzip stream.
func Gzip(payload []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(payload) //nolint:errcheck // bytes.Buffer cannot fail
	zw.Close()        //nolint:errcheck
	return buf.Bytes()
}

// FrameTruncations returns the recording's trace file truncated at every
// frame boundary of the payload (plus the empty payload), each re-gzipped
// into a valid gzip stream. The final element is the full, undamaged
// payload. trace.ReadFrom must reject every proper prefix loudly.
func FrameTruncations(rec *trace.Recording) ([][]byte, error) {
	file, err := Serialize(rec)
	if err != nil {
		return nil, err
	}
	payload, err := Gunzip(file)
	if err != nil {
		return nil, err
	}
	offs := append([]int{0}, trace.FrameOffsets(len(rec.Name), rec.Len())...)
	out := make([][]byte, 0, len(offs))
	for _, off := range offs {
		if off > len(payload) {
			break
		}
		out = append(out, Gzip(payload[:off]))
	}
	return out, nil
}

// FlipBit returns a copy of file with one bit inverted.
func FlipBit(file []byte, byteIdx int, bit uint) []byte {
	out := append([]byte(nil), file...)
	out[byteIdx%len(out)] ^= 1 << (bit % 8)
	return out
}

// FaultyWriter is a byte-budgeted sink for the observability outputs:
// it accepts writes until the next one would exceed Limit, then fails
// every subsequent attempt with ErrInjected — the shape of a disk
// filling up (or a pipe closing) mid-trace. Writes counts attempts
// including rejected ones, so a test can prove a sticky error latch
// stopped calling Write at all.
type FaultyWriter struct {
	Limit  int // bytes accepted before the fault fires
	N      int // bytes accepted so far
	Writes int // write attempts, including rejected ones
}

// Write implements io.Writer with the budgeted fault.
func (w *FaultyWriter) Write(p []byte) (int, error) {
	w.Writes++
	if w.N+len(p) > w.Limit {
		return 0, fmt.Errorf("%w: write rejected after %d bytes", ErrInjected, w.N)
	}
	w.N += len(p)
	return len(p), nil
}

// RecordingsEqual reports whether two recordings are bit-identical in
// metadata and every record.
func RecordingsEqual(a, b *trace.Recording) bool {
	if a.Name != b.Name || a.MaxInsts != b.MaxInsts || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}
