package chaos

import (
	"errors"
	"testing"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/ooo"
	"helios/internal/trace"
)

// chaosProgram mixes dependent ALU work, pairable loads and stores, and
// short branches — enough to exercise every fusion path while staying
// small enough to replay hundreds of times.
const chaosProgram = `
	.data
buf:
	.zero 2048
	.text
_start:
	la s0, buf
	li s1, 200
	li t0, 3
	li t1, 5
loop:
	ld t2, 0(s0)
	ld t3, 8(s0)
	add t2, t2, t0
	xor t3, t3, t1
	sd t2, 16(s0)
	sd t3, 24(s0)
	slli t4, t0, 2
	add t4, t4, s0
	ld t5, 32(s0)
	beqz t5, skip
	addi t1, t1, 1
skip:
	addi t0, t0, 1
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
`

// buildRecording assembles and records the chaos program's committed
// stream once; campaigns replay it.
func buildRecording(t testing.TB) *trace.Recording {
	t.Helper()
	prog, err := asm.Assemble(chaosProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	rec, err := trace.Record(trace.NewLive(emu.New(prog), 0))
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	rec.Name = "chaos"
	rec.MaxInsts = uint64(rec.Len())
	return rec
}

// TestFaultInjectionContract is the chaos driver: it fires the full
// campaign set — stream faults, file faults, flush storms, randomized
// machine configurations — and asserts the stack-wide failure contract:
// several hundred injected faults, every one ending in a clean
// correctly-accounted result or a typed structured error; zero panics,
// hangs, silent truncations or architectural divergences.
func TestFaultInjectionContract(t *testing.T) {
	rec := buildRecording(t)

	var total Report
	total.Merge(StreamCampaign(rec, 120, 0xC0FFEE))
	total.Merge(FileCampaign(rec, 80, 0xBEEF))
	storms, randomCfgs := 24, 30
	if testing.Short() {
		storms, randomCfgs = 6, 6
	}
	total.Merge(PipelineCampaign(rec, storms, randomCfgs, 0xFACADE))

	t.Log(total.String())
	if total.Runs < 200 {
		t.Errorf("only %d injections; the contract demands at least 200", total.Runs)
	}
	for _, v := range total.Violations {
		t.Errorf("violation: %s", v)
	}
	if total.Clean+total.TypedErrors+len(total.Violations) != total.Runs {
		t.Errorf("report does not add up: %+v", total)
	}
	if total.Clean == 0 || total.TypedErrors == 0 {
		t.Errorf("campaign not exercising both outcomes: %s", total.String())
	}
}

// TestInjectorSilentTruncation pins the hardest stream case: the source
// just stops early with no error, and the pipeline must exit cleanly
// having committed exactly what it was given.
func TestInjectorSilentTruncation(t *testing.T) {
	rec := buildRecording(t)
	inj := Inject(rec.Replay(), StreamFault{Kind: FaultSilentTruncate, At: 500})
	p := ooo.New(ooo.DefaultConfig(0), inj)
	st, err := p.RunChecked(64)
	if err != nil {
		t.Fatalf("silent truncation must end cleanly, got %v", err)
	}
	if inj.Delivered() != 500 {
		t.Fatalf("delivered %d records, want 500", inj.Delivered())
	}
	if st.CommittedInsts != 500 {
		t.Errorf("committed %d instructions of 500 delivered", st.CommittedInsts)
	}
}

// TestInjectorSentinelVisible checks an injected stream error stays
// identifiable through the pipeline's error wrapping.
func TestInjectorSentinelVisible(t *testing.T) {
	rec := buildRecording(t)
	inj := Inject(rec.Replay(), StreamFault{Kind: FaultTruncate, At: 300})
	p := ooo.New(ooo.DefaultConfig(0), inj)
	_, err := p.RunChecked(64)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want the ErrInjected sentinel", err)
	}
	var se *ooo.SimError
	if !errors.As(err, &se) || se.Kind != ooo.FailStream {
		t.Fatalf("err = %v, want a %s SimError", err, ooo.FailStream)
	}
}

// TestInjectorReorderCaught checks a program-order violation from the
// source is rejected as a corrupt stream, not simulated.
func TestInjectorReorderCaught(t *testing.T) {
	rec := buildRecording(t)
	inj := Inject(rec.Replay(), StreamFault{Kind: FaultReorder, At: 100})
	p := ooo.New(ooo.DefaultConfig(0), inj)
	_, err := p.RunChecked(64)
	var se *ooo.SimError
	if !errors.As(err, &se) || se.Kind != ooo.FailCorrupt {
		t.Fatalf("err = %v, want a %s SimError", err, ooo.FailCorrupt)
	}
}
