package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
)

// observedStats replays the chaos recording with an interval sampler
// attached to the given sink and returns the final stats.
func observedStats(t *testing.T, sink *bytes.Buffer, every uint64) *ooo.Stats {
	t.Helper()
	rec := buildRecording(t)
	cfg := ooo.DefaultConfig(fusion.ModeHelios)
	cfg.Obs = &obs.Observer{Metrics: sink, SampleEvery: every}
	p := ooo.New(cfg, rec.Replay())
	st, err := p.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st
}

// TestIntervalSamplerPartialFinalInterval pins the end-of-run flush:
// when the run length is not a multiple of the sampling period, the
// tail interval must still appear as a final row stamped with the last
// simulated cycle — otherwise the series silently under-reports the
// run.
func TestIntervalSamplerPartialFinalInterval(t *testing.T) {
	var buf bytes.Buffer
	every := uint64(512)
	st := observedStats(t, &buf, every)
	if st.Cycles%every == 0 {
		// Astronomically unlikely drift (the recording is fixed); keep
		// the partial-tail premise explicit rather than vacuous.
		every = 511
		buf.Reset()
		st = observedStats(t, &buf, every)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("no interval rows emitted:\n%s", buf.String())
	}
	rows := lines[1:] // drop the header
	wantRows := int(st.Cycles / every)
	if st.Cycles%every != 0 {
		wantRows++
	}
	if len(rows) != wantRows {
		t.Errorf("%d interval rows for %d cycles at period %d, want %d",
			len(rows), st.Cycles, every, wantRows)
	}
	last := strings.Split(rows[len(rows)-1], ",")
	if cyc, err := strconv.ParseUint(last[0], 10, 64); err != nil || cyc != st.Cycles {
		t.Errorf("final row cycle = %q, want %d (partial tail interval lost)", last[0], st.Cycles)
	}
}

// TestObserverWriteFaultLatchSticky drives the sampler into an injected
// write failure and proves the error latch: Err() returns the fault,
// and no further write attempts reach the sink once it is latched.
func TestObserverWriteFaultLatchSticky(t *testing.T) {
	fw := &FaultyWriter{Limit: 0} // even the header write fails
	ob := &obs.Observer{Metrics: fw, SampleEvery: 1}
	ob.Sample(obs.IntervalStats{Cycle: 1})
	if err := ob.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err() = %v, want the injected fault", err)
	}
	attempts := fw.Writes
	if attempts == 0 {
		t.Fatal("fault never reached the writer")
	}
	first := ob.Err()
	ob.Sample(obs.IntervalStats{Cycle: 2})
	ob.Sample(obs.IntervalStats{Cycle: 3})
	if fw.Writes != attempts {
		t.Errorf("latched observer still attempted %d more writes", fw.Writes-attempts)
	}
	if err := ob.Err(); !errors.Is(err, errors.Unwrap(first)) && err != first {
		t.Errorf("latched error changed from %v to %v", first, err)
	}
}

// TestObserverWriteFaultSurfacesAsRunError is the end-to-end contract
// of satellite observability sinks: a write fault injected into the
// interval CSV must turn the whole observed replay into an error at the
// core layer — never a clean result over a silently truncated series.
func TestObserverWriteFaultSurfacesAsRunError(t *testing.T) {
	suite := core.NewSuite(2000)
	fw := &FaultyWriter{Limit: 64} // the header alone exceeds this
	ob := &obs.Observer{Metrics: fw, SampleEvery: 16}
	//helios:ctx-ok test drives the public replay path directly
	_, err := suite.ObserveReplay(context.Background(), "crc32", fusion.ModeHelios, ob)
	if err == nil {
		t.Fatal("observed replay with a failing metrics sink returned no error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error %v does not wrap the injected fault", err)
	}
	if !strings.Contains(err.Error(), "observer") {
		t.Errorf("error %v does not attribute the failure to the observer", err)
	}
	if fmt.Sprint(ob.Err()) == "<nil>" {
		t.Error("observer latch empty after surfaced failure")
	}
}
