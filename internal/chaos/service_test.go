package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/workloads"
)

// TestServiceCampaignClassification drives the campaign with a `do`
// that produces every outcome class and checks the contract arithmetic:
// Runs == Clean + TypedErrors + len(Violations), panics are recovered
// into violations, and hangs are caught by the watchdog.
func TestServiceCampaignClassification(t *testing.T) {
	rep := ServiceCampaign(context.Background(), 4, 5, 200*time.Millisecond,
		func(ctx context.Context, client, seq int) (ServiceVerdict, string) {
			switch seq {
			case 0:
				return ServiceClean, ""
			case 1:
				return ServiceTypedError, ""
			case 2:
				panic("handler exploded")
			case 3:
				<-ctx.Done() // hang until the watchdog gives up
				return ServiceClean, ""
			default:
				return ServiceViolation, "untyped failure"
			}
		})
	if rep.Runs != 20 {
		t.Fatalf("Runs = %d, want 20", rep.Runs)
	}
	if rep.Clean != 4 || rep.TypedErrors != 4 {
		t.Errorf("Clean/TypedErrors = %d/%d, want 4/4", rep.Clean, rep.TypedErrors)
	}
	if len(rep.Violations) != 12 {
		t.Fatalf("Violations = %d, want 12:\n%s", len(rep.Violations), strings.Join(rep.Violations, "\n"))
	}
	var panics, hangs int
	for _, v := range rep.Violations {
		if strings.Contains(v, "panicked") {
			panics++
		}
		if strings.Contains(v, "hung request") {
			hangs++
		}
	}
	if panics != 4 || hangs != 4 {
		t.Errorf("panic/hang violations = %d/%d, want 4/4", panics, hangs)
	}
}

// TestCorruptRecordingFailsReplay pins the helper's contract: the
// corrupted copy has the same identity as the original, and the
// pipeline rejects it with a typed corrupt-stream error.
func TestCorruptRecordingFailsReplay(t *testing.T) {
	w, ok := workloads.ByName("crc32")
	if !ok {
		t.Fatal("crc32 workload missing")
	}
	rec, err := w.Record(5_000)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := CorruptRecording(rec, uint64(rec.Len()/2), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Name != rec.Name || bad.MaxInsts != rec.MaxInsts {
		t.Errorf("identity not preserved: %s@%d vs %s@%d", bad.Name, bad.MaxInsts, rec.Name, rec.MaxInsts)
	}
	p := ooo.New(ooo.DefaultConfig(fusion.ModeNoFusion), bad.Replay())
	_, err = p.RunChecked(256)
	if err == nil {
		t.Fatal("corrupted recording replayed cleanly")
	}
	var se *ooo.SimError
	if !errors.As(err, &se) || se.Kind != ooo.FailCorrupt {
		t.Fatalf("err = %v, want a %s SimError", err, ooo.FailCorrupt)
	}
}
