// Package chaos is the fault-injection harness for the simulation stack.
// It wraps the three trust boundaries — the committed-path stream
// (trace.Source), the on-disk trace file format, and the pipeline itself
// — with deterministic, seeded fault injectors, and provides campaign
// drivers that assert the stack's failure contract: every injected fault
// ends in a clean result or a typed *ooo.SimError; never a panic, a
// hang, or a silently wrong result.
//
// The injectors are deliberately hostile but reproducible: every fault
// is described by a small struct with an explicit seed, so a campaign
// failure can be replayed as a unit test.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"helios/internal/emu"
	"helios/internal/isa"
	"helios/internal/trace"
)

// ErrInjected is the sentinel latched by stream faults, so campaign
// drivers (and tests) can tell an injected failure from a genuine one
// with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// FaultKind selects what a StreamFault does to the stream.
type FaultKind int

const (
	// FaultError ends the stream after delivering every record, with
	// ErrInjected latched — the shape of an emulator fault at the end.
	FaultError FaultKind = iota
	// FaultTruncate ends the stream early at record At, with ErrInjected
	// latched — a fault mid-emulation.
	FaultTruncate
	// FaultSilentTruncate ends the stream early at record At with no
	// error — the hardest case: the consumer must still terminate
	// cleanly and report exactly the records it was given.
	FaultSilentTruncate
	// FaultCorruptRecord mutates one field of record At into an
	// impossible value (bad opcode, register, access size, or a sequence
	// jump), chosen by Seed.
	FaultCorruptRecord
	// FaultReorder swaps records At and At+1, modeling a source that
	// violates program order.
	FaultReorder

	numFaultKinds
)

// String names the fault for campaign violation messages.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultTruncate:
		return "truncate"
	case FaultSilentTruncate:
		return "silent-truncate"
	case FaultCorruptRecord:
		return "corrupt-record"
	case FaultReorder:
		return "reorder"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// StreamFault describes one deterministic stream-level fault.
type StreamFault struct {
	Kind FaultKind
	At   uint64 // record index the fault strikes at
	Seed int64  // selects the corruption variant for FaultCorruptRecord
}

// RandomStreamFault draws a fault with At inside [0, maxAt).
func RandomStreamFault(rng *rand.Rand, maxAt uint64) StreamFault {
	return StreamFault{
		Kind: FaultKind(rng.Intn(int(numFaultKinds))),
		At:   uint64(rng.Int63n(int64(maxAt))),
		Seed: rng.Int63(),
	}
}

// Injected is a trace.Source that applies one StreamFault to an inner
// source. Delivered reports how many records were actually handed out,
// which is the ground truth a clean consumer must account for.
type Injected struct {
	src       trace.Source
	f         StreamFault
	n         uint64 // records delivered so far
	err       error
	done      bool
	swapped   *emu.Retired // buffered second record of a reorder swap
	corrupted bool
}

// Inject wraps src with the given fault.
func Inject(src trace.Source, f StreamFault) *Injected {
	return &Injected{src: src, f: f}
}

// Delivered returns the number of records handed to the consumer.
func (s *Injected) Delivered() uint64 { return s.n }

// Next implements trace.Source.
func (s *Injected) Next() (emu.Retired, bool) {
	if s.done {
		return emu.Retired{}, false
	}
	switch s.f.Kind {
	case FaultTruncate, FaultSilentTruncate:
		if s.n == s.f.At {
			s.done = true
			if s.f.Kind == FaultTruncate {
				s.err = fmt.Errorf("%w: stream truncated at record %d", ErrInjected, s.f.At)
			}
			return emu.Retired{}, false
		}
	case FaultReorder:
		if s.swapped != nil {
			r := *s.swapped
			s.swapped = nil
			s.n++
			return r, true
		}
		if s.n == s.f.At {
			first, ok1 := s.src.Next()
			if !ok1 {
				s.done = true
				return emu.Retired{}, false
			}
			second, ok2 := s.src.Next()
			if !ok2 {
				// Nothing to swap with: deliver the record unharmed.
				s.n++
				return first, true
			}
			s.swapped = &first
			s.n++
			return second, true
		}
	}
	r, ok := s.src.Next()
	if !ok {
		s.done = true
		if s.f.Kind == FaultError {
			s.err = fmt.Errorf("%w: emulation fault after %d records", ErrInjected, s.n)
		}
		return emu.Retired{}, false
	}
	if s.f.Kind == FaultCorruptRecord && s.n == s.f.At {
		corruptRecord(&r, s.f.Seed)
		s.corrupted = true
	}
	s.n++
	return r, true
}

// Err implements trace.Source: injected faults latch like real ones.
func (s *Injected) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

// corruptRecord mutates one field into an impossible value, variant
// chosen by seed.
func corruptRecord(r *emu.Retired, seed int64) {
	switch seed % 4 {
	case 0:
		r.Seq += 100_000 // sequence jump: silent record loss
	case 1:
		r.Inst.Op = isa.Opcode(isa.NumOpcodes + 5)
	case 2:
		r.Inst.Rd = 77 // register index off the end of the RAT
	default:
		r.MemSize = 99 // impossible access size
	}
}
