package chaos

import (
	"math/rand"

	"helios/internal/cache"
	"helios/internal/fusion"
	"helios/internal/ooo"
)

// RandomConfig draws a legal but aggressively varied machine
// configuration: narrow and wide pipelines, tiny and huge structures,
// odd cache geometries and latencies. Every configuration it returns
// must simulate any well-formed stream to the same architectural result
// as the default machine — the pipeline campaign asserts exactly that.
func RandomConfig(rng *rand.Rand, mode fusion.Mode) ooo.Config {
	cfg := ooo.DefaultConfig(mode)

	cfg.FetchWidth = 1 + rng.Intn(8)
	cfg.DecodeWidth = 1 + rng.Intn(8)
	cfg.RenameWidth = 1 + rng.Intn(5)
	cfg.DispatchWidth = 1 + rng.Intn(5)
	cfg.CommitWidth = 1 + rng.Intn(8)

	cfg.AQSize = 8 + rng.Intn(133)
	cfg.ROBSize = 16 + rng.Intn(337)
	cfg.IQSize = 8 + rng.Intn(153)
	cfg.LQSize = 4 + rng.Intn(125)
	cfg.SQSize = 4 + rng.Intn(69)
	cfg.PhysRegs = 64 + rng.Intn(321)

	cfg.ALUPorts = 1 + rng.Intn(4)
	cfg.LoadPorts = 1 + rng.Intn(2)
	cfg.StorePorts = 1 + rng.Intn(2)

	cfg.ALULatency = 1 + rng.Intn(2)
	cfg.MulLatency = 1 + rng.Intn(5)
	cfg.DivLatency = 5 + rng.Intn(26)
	cfg.RedirectPenalty = 5 + rng.Intn(16)
	cfg.StoreDrainPerCycle = 1 + rng.Intn(2)
	cfg.MaxNCSFNest = 1 + rng.Intn(4)

	// Predictor geometry: architectural results must not depend on
	// prediction quality, only cycle counts do.
	cfg.TAGELogSize = uint(7 + rng.Intn(6))
	cfg.BTBSets = 1 << (6 + rng.Intn(5))
	cfg.BTBWays = 1 + rng.Intn(4)
	cfg.RASSize = 8 + rng.Intn(57)
	cfg.StoreSetLogSize = uint(8 + rng.Intn(5))
	cfg.StoreSetLogSets = uint(5 + rng.Intn(3))

	cfg.Cache = randomCache(rng)
	return cfg
}

// randomCache draws a hierarchy with varied geometry. Line size stays at
// 64 B (it is also the fusion pairing granularity); sets, ways and
// latencies swing widely.
func randomCache(rng *rand.Rand) cache.Config {
	level := func(name string, maxSets, maxWays, minLat, maxLat int) cache.LevelConfig {
		return cache.LevelConfig{
			Name:     name,
			Sets:     1 << (2 + rng.Intn(maxSets)),
			Ways:     1 + rng.Intn(maxWays),
			LineSize: 64,
			Latency:  minLat + rng.Intn(maxLat-minLat+1),
		}
	}
	return cache.Config{
		LineSize:         64,
		L1I:              level("L1I", 5, 8, 1, 3),
		L1D:              level("L1D", 5, 12, 2, 7),
		L2:               level("L2", 9, 8, 8, 20),
		LLC:              level("LLC", 10, 16, 25, 60),
		MemLatency:       50 + rng.Intn(251),
		NextLinePrefetch: rng.Intn(2) == 0,
	}
}
