package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"helios/internal/trace"
)

// ServiceVerdict classifies one request outcome against the service
// failure contract (DESIGN.md §14): every response a client receives is
// either a valid result or a typed, machine-readable error — never a
// panic, a hang, or an unclassifiable failure.
type ServiceVerdict int

const (
	// ServiceClean: a well-formed successful result.
	ServiceClean ServiceVerdict = iota
	// ServiceTypedError: a machine-readable typed error (overload,
	// deadline, bad request, engine fault, ...).
	ServiceTypedError
	// ServiceViolation: anything else — an untyped failure, a response
	// that parses as neither result nor typed error, a panic, a hang.
	ServiceViolation
)

// ServiceCampaign is the server-level fault campaign driver: `clients`
// concurrent clients each issue `perClient` requests through `do`,
// which performs one request (hostile or benign — the caller arms the
// faults) and classifies the outcome. The driver supplies the contract
// enforcement around it: a panic inside `do` is recovered and reported
// as a violation, and a call that exceeds `timeout` is reported as a
// hung request — the one failure a server must never produce, because a
// client cannot distinguish it from a dead service.
//
// Outcomes aggregate into the same Report as the stream/file/pipeline
// campaigns: Runs == Clean + TypedErrors with empty Violations is the
// passing contract.
func ServiceCampaign(ctx context.Context, clients, perClient int, timeout time.Duration,
	do func(ctx context.Context, client, seq int) (ServiceVerdict, string)) Report {
	var (
		mu  sync.Mutex
		rep Report
	)
	note := func(v ServiceVerdict, detail string, client, seq int) {
		mu.Lock()
		defer mu.Unlock()
		rep.Runs++
		switch v {
		case ServiceClean:
			rep.Clean++
		case ServiceTypedError:
			rep.TypedErrors++
		default:
			rep.violation("client %d seq %d: %s", client, seq, detail)
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if ctx.Err() != nil {
					return
				}
				v, detail := watchdogCall(ctx, timeout, c, i, do)
				note(v, detail, c, i)
			}
		}(c)
	}
	wg.Wait()
	return rep
}

// AuditedServiceCampaign is ServiceCampaign plus a post-campaign audit
// hook: after every client finishes, `audit` inspects whatever
// cross-request invariants the caller cares about and returns one error
// per violation, each folded into Report.Violations. heliosd's soak
// audits the telemetry span-balance contract this way — every span
// started during the campaign (including under panic, deadline and
// drain paths) must have ended exactly once by the time the audit runs.
func AuditedServiceCampaign(ctx context.Context, clients, perClient int, timeout time.Duration,
	do func(ctx context.Context, client, seq int) (ServiceVerdict, string),
	audit func() []error) Report {
	rep := ServiceCampaign(ctx, clients, perClient, timeout, do)
	if audit != nil {
		for _, err := range audit() {
			if err != nil {
				rep.violation("post-campaign audit: %v", err)
			}
		}
	}
	return rep
}

// Audits combines independent audit hooks into the single function
// AuditedServiceCampaign accepts, preserving hook order and flattening
// their findings. Nil hooks are skipped, so call sites can list
// conditionally-armed audits without branching:
//
//	chaos.AuditedServiceCampaign(ctx, clients, n, timeout, do,
//	    chaos.Audits(balanceAudit, samplingAudit, flightAudit))
func Audits(hooks ...func() []error) func() []error {
	return func() []error {
		var errs []error
		for _, hook := range hooks {
			if hook == nil {
				continue
			}
			errs = append(errs, hook()...)
		}
		return errs
	}
}

// watchdogCall runs one `do` invocation under a panic recovery and a
// hang watchdog. On timeout the request goroutine is abandoned (its
// context is cancelled, and its eventual result is discarded) — exactly
// what a real client does to a hung server.
func watchdogCall(ctx context.Context, timeout time.Duration, client, seq int,
	do func(ctx context.Context, client, seq int) (ServiceVerdict, string)) (ServiceVerdict, string) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v      ServiceVerdict
		detail string
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{ServiceViolation, fmt.Sprintf("request panicked: %v", r)}
			}
		}()
		v, d := do(cctx, client, seq)
		done <- outcome{v, d}
	}()
	select {
	case o := <-done:
		return o.v, o.detail
	case <-time.After(timeout):
		return ServiceViolation, fmt.Sprintf("hung request (no response in %v)", timeout)
	}
}

// CorruptRecording returns a copy of rec with one record mutated into
// an impossible value (the FaultCorruptRecord variants: bad opcode,
// register, access size, or a sequence jump). The copy records cleanly
// but fails the pipeline's stream validation on replay — the poisoned
// cache entry used to exercise a service's graceful-degradation path.
func CorruptRecording(rec *trace.Recording, at uint64, seed int64) (*trace.Recording, error) {
	f := StreamFault{Kind: FaultCorruptRecord, At: at, Seed: seed}
	bad, err := trace.Record(Inject(rec.Replay(), f))
	if err != nil {
		return nil, fmt.Errorf("chaos: re-record with corruption: %w", err)
	}
	bad.Name = rec.Name
	bad.MaxInsts = rec.MaxInsts
	return bad, nil
}
