package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/trace"
)

// Report aggregates the outcome of a fault-injection campaign. The
// contract under test: Runs == Clean + TypedErrors and Violations is
// empty — every injection ended in a clean, correctly-accounted result
// or a structured *ooo.SimError; nothing panicked, hung, or silently
// produced a wrong answer.
type Report struct {
	Runs        int
	Clean       int // runs that ended without error, with correct accounting
	TypedErrors int // runs that died with a typed *ooo.SimError
	Violations  []string
}

// Merge folds another report into r.
func (r *Report) Merge(o Report) {
	r.Runs += o.Runs
	r.Clean += o.Clean
	r.TypedErrors += o.TypedErrors
	r.Violations = append(r.Violations, o.Violations...)
}

func (r *Report) violation(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String summarizes the report for logs.
func (r *Report) String() string {
	return fmt.Sprintf("chaos: %d runs, %d clean, %d typed errors, %d violations",
		r.Runs, r.Clean, r.TypedErrors, len(r.Violations))
}

// checkInterval is how often campaign pipeline runs sweep invariants.
const checkInterval = 256

// StreamCampaign replays the recording `runs` times, each through a
// fresh random stream fault and a fusion mode cycled from the paper's
// six, and classifies every outcome against the failure contract:
//
//   - a clean exit must account for exactly the records delivered;
//   - an error exit must be a *ooo.SimError of any kind except panic
//     (the validation layer, not the recovery layer, must catch stream
//     faults);
//   - latched injected errors must stay visible through errors.Is.
func StreamCampaign(rec *trace.Recording, runs int, seed int64) Report {
	rng := rand.New(rand.NewSource(seed))
	var rep Report
	for i := 0; i < runs; i++ {
		f := RandomStreamFault(rng, uint64(rec.Len()))
		mode := fusion.Modes[i%len(fusion.Modes)]
		inj := Inject(rec.Replay(), f)
		p := ooo.New(ooo.DefaultConfig(mode), inj)
		st, err := p.RunChecked(checkInterval)
		rep.Runs++

		var se *ooo.SimError
		switch {
		case err == nil:
			if st.CommittedInsts != inj.Delivered() {
				rep.violation("%v/%v at %d: clean exit but committed %d of %d delivered records",
					f.Kind, mode, f.At, st.CommittedInsts, inj.Delivered())
				continue
			}
			rep.Clean++
		case errors.As(err, &se):
			if se.Kind == ooo.FailPanic {
				rep.violation("%v/%v at %d: fault reached panic recovery: %v", f.Kind, mode, f.At, err)
				continue
			}
			if (f.Kind == FaultError || f.Kind == FaultTruncate) && !errors.Is(err, ErrInjected) {
				rep.violation("%v/%v at %d: injected sentinel lost: %v", f.Kind, mode, f.At, err)
				continue
			}
			rep.TypedErrors++
		default:
			rep.violation("%v/%v at %d: untyped error: %v", f.Kind, mode, f.At, err)
		}
	}
	return rep
}

// FileCampaign attacks the recording's serialized trace file: the
// payload truncated at every frame boundary (all must be rejected with
// an error, never a panic or a short parse), and `flips` single-bit
// flips of the compressed bytes (each must either fail to parse or
// parse to a recording bit-identical to the original — the gzip CRC
// guarantees there is no third outcome).
func FileCampaign(rec *trace.Recording, flips int, seed int64) Report {
	var rep Report
	truncs, err := FrameTruncations(rec)
	if err != nil {
		rep.violation("building truncations: %v", err)
		return rep
	}
	for i, file := range truncs {
		rep.Runs++
		got, rerr := trace.ReadFrom(bytes.NewReader(file))
		if i == len(truncs)-1 {
			// Final entry is the untruncated payload: must round-trip.
			if rerr != nil || !RecordingsEqual(got, rec) {
				rep.violation("full payload failed to round-trip: %v", rerr)
				continue
			}
			rep.Clean++
			continue
		}
		if rerr == nil {
			rep.violation("truncation %d accepted as a %d-record recording", i, got.Len())
			continue
		}
		rep.TypedErrors++
	}

	file, err := Serialize(rec)
	if err != nil {
		rep.violation("serializing: %v", err)
		return rep
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < flips; i++ {
		rep.Runs++
		flipped := FlipBit(file, rng.Intn(len(file)), uint(rng.Intn(8)))
		got, rerr := trace.ReadFrom(bytes.NewReader(flipped))
		switch {
		case rerr != nil:
			rep.TypedErrors++
		case RecordingsEqual(got, rec):
			// The flip hit a byte outside the integrity envelope (gzip
			// MTIME/OS header fields): parsing unchanged data is fine.
			rep.Clean++
		default:
			rep.violation("bit flip %d parsed to a different recording", i)
		}
	}
	return rep
}

// PipelineCampaign runs the recording through `storms` flush-storm
// configurations (the default machine with a forced flush from a random
// live µ-op every 256–2048 cycles) and `randomCfgs` randomized machine
// configurations, across the fusion modes. Every run must finish clean
// and commit exactly the recording's architectural instruction count —
// chaos in the microarchitecture must never leak into architecture.
func PipelineCampaign(rec *trace.Recording, storms, randomCfgs int, seed int64) Report {
	rng := rand.New(rand.NewSource(seed))
	want := uint64(rec.Len())
	var rep Report

	runOne := func(label string, cfg ooo.Config) {
		rep.Runs++
		p := ooo.New(cfg, rec.Replay())
		st, err := p.RunChecked(checkInterval)
		if err != nil {
			var se *ooo.SimError
			if errors.As(err, &se) {
				rep.violation("%s: run died: %v", label, err)
			} else {
				rep.violation("%s: untyped error: %v", label, err)
			}
			return
		}
		if st.CommittedInsts != want {
			rep.violation("%s: committed %d instructions, want %d", label, st.CommittedInsts, want)
			return
		}
		rep.Clean++
	}

	for i := 0; i < storms; i++ {
		mode := fusion.Modes[i%len(fusion.Modes)]
		cfg := ooo.DefaultConfig(mode)
		cfg.ChaosFlushInterval = 256 + uint64(rng.Intn(1793))
		cfg.ChaosSeed = rng.Int63()
		runOne(fmt.Sprintf("storm/%v/interval=%d", mode, cfg.ChaosFlushInterval), cfg)
	}
	for i := 0; i < randomCfgs; i++ {
		mode := fusion.Modes[i%len(fusion.Modes)]
		cfg := RandomConfig(rng, mode)
		runOne(fmt.Sprintf("random-config/%v/#%d", mode, i), cfg)
	}
	return rep
}
