package cache

import "testing"

func smallConfig() Config {
	return Config{
		LineSize:         64,
		L1I:              LevelConfig{Name: "L1I", Sets: 4, Ways: 2, LineSize: 64, Latency: 1},
		L1D:              LevelConfig{Name: "L1D", Sets: 4, Ways: 2, LineSize: 64, Latency: 5},
		L2:               LevelConfig{Name: "L2", Sets: 16, Ways: 4, LineSize: 64, Latency: 13},
		LLC:              LevelConfig{Name: "LLC", Sets: 64, Ways: 8, LineSize: 64, Latency: 40},
		MemLatency:       200,
		NextLinePrefetch: false,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(smallConfig())
	cold := h.DataLatency(0x1000, 8, 0)
	// Cold miss goes all the way to memory: 5 + 13 + 40 + 200.
	if cold != 258 {
		t.Errorf("cold latency = %d, want 258", cold)
	}
	warm := h.DataLatency(0x1000, 8, 1000)
	if warm != 5 {
		t.Errorf("warm latency = %d, want 5", warm)
	}
}

func TestSameLineSharesFill(t *testing.T) {
	h := New(smallConfig())
	h.DataLatency(0x1000, 8, 0)
	if got := h.DataLatency(0x1020, 8, 1000); got != 5 {
		t.Errorf("same-line access = %d, want 5 (line already filled)", got)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := New(smallConfig())
	// Fill the L1 set that address 0 maps to (4 sets × 64B = 256B stride),
	// with more lines than L1 ways.
	h.DataLatency(0, 8, 0)
	h.DataLatency(256, 8, 1000)
	h.DataLatency(512, 8, 2000) // evicts line 0 from L1 (2 ways)
	got := h.DataLatency(0, 8, 3000)
	if got != 5+13 {
		t.Errorf("L2 hit latency = %d, want 18", got)
	}
}

func TestLineCrossingBothHit(t *testing.T) {
	h := New(smallConfig())
	h.DataLatency(0x1000, 8, 0)           // fill line 0x40
	h.DataLatency(0x1040, 8, 500)         // fill next line
	got := h.DataLatency(0x103c, 8, 1000) // crosses the boundary
	if got != 6 {
		t.Errorf("crossing latency (both hit) = %d, want 6 (5+1)", got)
	}
}

func TestLineCrossingSecondMisses(t *testing.T) {
	h := New(smallConfig())
	h.DataLatency(0x1000, 8, 0) // only the first line present
	got := h.DataLatency(0x103c, 8, 1000)
	if got <= 6 {
		t.Errorf("crossing latency with second miss = %d, want full miss cost", got)
	}
}

func TestMSHRMerge(t *testing.T) {
	h := New(smallConfig())
	first := h.DataLatency(0x2000, 8, 100)
	// A second access to the same line 10 cycles later, while the fill is
	// outstanding... but our model fills instantly on the books; the merge
	// path is exercised via a second miss to the same line in the same
	// window after an eviction-free lookup. Here we just verify monotone
	// behaviour: the second access is never slower than the first.
	second := h.DataLatency(0x2000, 8, 110)
	if second > first {
		t.Errorf("second access (%d) slower than first (%d)", second, first)
	}
}

func TestPrefetchNextLine(t *testing.T) {
	cfg := smallConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	h.DataLatency(0x1000, 8, 0) // miss; prefetches 0x1040
	if got := h.DataLatency(0x1040, 8, 1000); got != 5 {
		t.Errorf("prefetched line latency = %d, want 5", got)
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := New(smallConfig())
	h.FetchLatency(0x100, 0)
	if h.L1I().Misses != 1 {
		t.Errorf("L1I misses = %d, want 1", h.L1I().Misses)
	}
	h.FetchLatency(0x104, 10)
	if h.L1I().Hits != 1 {
		t.Errorf("L1I hits = %d, want 1", h.L1I().Hits)
	}
	if h.L1D().Hits+h.L1D().Misses != 0 {
		t.Error("fetch must not touch L1D")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)
	// Three lines mapping to the same 2-way L1D set.
	a, b, c := uint64(0), uint64(256), uint64(512)
	h.DataLatency(a, 8, 0)
	h.DataLatency(b, 8, 100)
	h.DataLatency(a, 8, 200) // touch a: b becomes LRU
	h.DataLatency(c, 8, 300) // evicts b
	if !h.L1D().Contains(a) {
		t.Error("a should still be in L1D")
	}
	if h.L1D().Contains(b) {
		t.Error("b should have been evicted")
	}
	if !h.L1D().Contains(c) {
		t.Error("c should be in L1D")
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1D.Sets*cfg.L1D.Ways*int(cfg.L1D.LineSize) != 48*1024 {
		t.Errorf("L1D size = %d, want 48 KiB", cfg.L1D.Sets*cfg.L1D.Ways*int(cfg.L1D.LineSize))
	}
	if cfg.L2.Sets*cfg.L2.Ways*int(cfg.L2.LineSize) != 512*1024 {
		t.Error("L2 size wrong")
	}
	if cfg.LLC.Sets*cfg.LLC.Ways*int(cfg.LLC.LineSize) != 2*1024*1024 {
		t.Error("LLC size wrong")
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := New(smallConfig())
	for i := 0; i < 10; i++ {
		h.DataLatency(uint64(i*4), 4, uint64(i*10)) // all within line 0
	}
	if h.L1D().Hits+h.L1D().Misses != 10 {
		t.Errorf("accesses = %d, want 10", h.L1D().Hits+h.L1D().Misses)
	}
	if h.L1D().Misses != 1 {
		t.Errorf("misses = %d, want 1 (all within one line)", h.L1D().Misses)
	}
}
