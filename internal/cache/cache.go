// Package cache models the Icelake-like cache hierarchy of the paper's
// simulated machine (Table II): L1I, L1D, a unified L2, a last-level cache
// and a flat DRAM latency, with LRU replacement, miss-merge (MSHR-like)
// tracking and an optional next-line prefetcher.
//
// The model is timing-only: data values come from the functional emulator,
// the hierarchy answers "how many cycles does this access take".
package cache

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name     string
	Sets     int
	Ways     int
	LineSize uint64
	Latency  int // hit latency in cycles (total, not incremental)
}

// Level is one cache level with LRU replacement.
type Level struct {
	cfg    LevelConfig
	lines  []line // Sets × Ways
	clock  uint64
	next   *Level // nil means next is memory
	memLat int

	// In-flight fills, line address → ready cycle (MSHR merge).
	inflight map[uint64]uint64

	// Stats.
	Hits, Misses uint64
}

type line struct {
	valid bool
	tag   uint64
	stamp uint64
}

// NewLevel creates a cache level backed by next (or memory when next is
// nil, with memLat cycles of latency).
func NewLevel(cfg LevelConfig, next *Level, memLat int) *Level {
	return &Level{
		cfg:      cfg,
		lines:    make([]line, cfg.Sets*cfg.Ways),
		next:     next,
		memLat:   memLat,
		inflight: make(map[uint64]uint64),
	}
}

// Config returns the level's configuration.
func (l *Level) Config() LevelConfig { return l.cfg }

func (l *Level) set(lineAddr uint64) []line {
	idx := int(lineAddr % uint64(l.cfg.Sets))
	return l.lines[idx*l.cfg.Ways : (idx+1)*l.cfg.Ways]
}

// lookup probes without filling; returns way index or -1.
func (l *Level) lookup(lineAddr uint64) int {
	set := l.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return i
		}
	}
	return -1
}

// Contains reports whether the line holding addr is present (no side
// effects; for tests).
func (l *Level) Contains(addr uint64) bool {
	return l.lookup(addr/l.cfg.LineSize) >= 0
}

// Access performs a (timing) access to addr at the given cycle and returns
// the number of cycles until the data is available. Misses recurse into
// the next level and fill this one.
func (l *Level) Access(addr uint64, cycle uint64) int {
	lineAddr := addr / l.cfg.LineSize
	l.clock++
	if w := l.lookup(lineAddr); w >= 0 {
		l.Hits++
		l.set(lineAddr)[w].stamp = l.clock
		return l.cfg.Latency
	}
	l.Misses++
	// Merge with an outstanding fill of the same line if there is one.
	//helios:hotalloc-ok bounded miss-merge map, ≤256 entries by the sweep below; a read never allocates
	if ready, ok := l.inflight[lineAddr]; ok && ready > cycle {
		return int(ready-cycle) + l.cfg.Latency
	}
	var lat int
	if l.next != nil {
		lat = l.next.Access(addr, cycle)
	} else {
		lat = l.memLat
	}
	total := l.cfg.Latency + lat
	l.fill(lineAddr)
	//helios:hotalloc-ok bounded miss-merge map, ≤256 entries by the sweep below; replacing it would perturb cycle-exact timing pinned by the BENCH trajectory
	l.inflight[lineAddr] = cycle + uint64(total)
	if len(l.inflight) > 256 {
		l.pruneInflight(cycle)
	}
	return total
}

func (l *Level) fill(lineAddr uint64) {
	set := l.set(lineAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	l.clock++
	set[victim] = line{valid: true, tag: lineAddr, stamp: l.clock}
}

//helios:hotalloc-ok bounded sweep of the ≤256-entry inflight map, runs at most once per 256 outstanding misses
func (l *Level) pruneInflight(cycle uint64) {
	for k, ready := range l.inflight {
		if ready <= cycle {
			delete(l.inflight, k)
		}
	}
}

// Config describes the whole hierarchy.
type Config struct {
	LineSize         uint64
	L1I, L1D         LevelConfig
	L2, LLC          LevelConfig
	MemLatency       int
	NextLinePrefetch bool // simple next-line prefetcher on L1D misses
}

// DefaultConfig returns the Table II machine's hierarchy: 32 KiB 8-way
// L1I, 48 KiB 12-way 5-cycle L1D, 512 KiB 8-way 13-cycle L2, 2 MiB 16-way
// 40-cycle LLC, 200-cycle DRAM, 64 B lines.
func DefaultConfig() Config {
	return Config{
		LineSize:         64,
		L1I:              LevelConfig{Name: "L1I", Sets: 64, Ways: 8, LineSize: 64, Latency: 1},
		L1D:              LevelConfig{Name: "L1D", Sets: 64, Ways: 12, LineSize: 64, Latency: 5},
		L2:               LevelConfig{Name: "L2", Sets: 1024, Ways: 8, LineSize: 64, Latency: 13},
		LLC:              LevelConfig{Name: "LLC", Sets: 2048, Ways: 16, LineSize: 64, Latency: 40},
		MemLatency:       200,
		NextLinePrefetch: true,
	}
}

// Hierarchy wires the levels together: separate L1I/L1D over a unified
// L2 over the LLC over DRAM.
type Hierarchy struct {
	cfg Config
	l1i *Level
	l1d *Level
	l2  *Level
	llc *Level
}

// New builds a hierarchy from the configuration.
func New(cfg Config) *Hierarchy {
	llc := NewLevel(cfg.LLC, nil, cfg.MemLatency)
	l2 := NewLevel(cfg.L2, llc, 0)
	return &Hierarchy{
		cfg: cfg,
		l1i: NewLevel(cfg.L1I, l2, 0),
		l1d: NewLevel(cfg.L1D, l2, 0),
		l2:  l2,
		llc: llc,
	}
}

// LineSize returns the cache line size in bytes.
func (h *Hierarchy) LineSize() uint64 { return h.cfg.LineSize }

// L1D exposes the data cache level (for stats).
func (h *Hierarchy) L1D() *Level { return h.l1d }

// L1I exposes the instruction cache level (for stats).
func (h *Hierarchy) L1I() *Level { return h.l1i }

// L2 exposes the unified second level (for stats).
func (h *Hierarchy) L2() *Level { return h.l2 }

// LLC exposes the last-level cache (for stats).
func (h *Hierarchy) LLC() *Level { return h.llc }

// Counters is a value snapshot of the hierarchy's hit/miss counts, the
// shape the interval sampler consumes (building one allocates nothing).
type Counters struct {
	L1IHits, L1IMisses uint64
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
	LLCHits, LLCMisses uint64
}

// Counters snapshots the per-level hit/miss counts.
func (h *Hierarchy) Counters() Counters {
	return Counters{
		L1IHits: h.l1i.Hits, L1IMisses: h.l1i.Misses,
		L1DHits: h.l1d.Hits, L1DMisses: h.l1d.Misses,
		L2Hits: h.l2.Hits, L2Misses: h.l2.Misses,
		LLCHits: h.llc.Hits, LLCMisses: h.llc.Misses,
	}
}

// FetchLatency models an instruction fetch of pc.
func (h *Hierarchy) FetchLatency(pc uint64, cycle uint64) int {
	return h.l1i.Access(pc, cycle)
}

// DataLatency models a data access covering [addr, addr+span). Accesses
// crossing a line boundary perform two serialized accesses: if the second
// line also hits, the penalty is a single cycle (as in current cores); a
// miss on the second line costs its full latency.
func (h *Hierarchy) DataLatency(addr, span uint64, cycle uint64) int {
	if span == 0 {
		span = 1
	}
	first := h.l1d.Access(addr, cycle)
	lastLine := (addr + span - 1) / h.cfg.LineSize
	if lastLine == addr/h.cfg.LineSize {
		h.maybePrefetch(addr, cycle)
		return first
	}
	secondAddr := lastLine * h.cfg.LineSize
	second := h.l1d.Access(secondAddr, cycle+uint64(first))
	h.maybePrefetch(secondAddr, cycle)
	if second <= h.cfg.L1D.Latency {
		return first + 1 // both lines in L1: one extra serialized cycle
	}
	return first + second
}

func (h *Hierarchy) maybePrefetch(addr uint64, cycle uint64) {
	if !h.cfg.NextLinePrefetch {
		return
	}
	next := (addr/h.cfg.LineSize + 1) * h.cfg.LineSize
	if h.l1d.lookup(next/h.cfg.LineSize) < 0 {
		// Issue the prefetch; its latency is absorbed off the critical path.
		h.l1d.Access(next, cycle)
	}
}
