package branch

// TAGE is a tagged-geometric-history-length conditional branch predictor
// (Seznec & Michaud), the class of predictor the paper's baseline machine
// uses (L-TAGE). It combines a bimodal base predictor with several tagged
// components indexed with geometrically increasing history lengths.
type TAGE struct {
	base  *Bimodal
	comps []*tageComponent

	// Allocation-throttling counter (useful-bit reset).
	tick int
}

type tageComponent struct {
	histLen uint
	logSize uint
	mask    uint64
	entries []tageEntry
}

type tageEntry struct {
	tag    uint16
	ctr    int8  // 3-bit signed: -4..3, taken when >= 0
	useful uint8 // 2-bit usefulness
}

// tageHistLens are the geometric history lengths of the tagged components.
var tageHistLens = []uint{4, 8, 16, 32, 64, 128}

// NewTAGE creates a TAGE predictor with six tagged components of
// 2^logSize entries each and a 2^(logSize+1)-entry bimodal base.
func NewTAGE(logSize uint) *TAGE {
	t := &TAGE{base: NewBimodal(logSize + 1)}
	for _, hl := range tageHistLens {
		n := uint64(1) << logSize
		t.comps = append(t.comps, &tageComponent{
			histLen: hl,
			logSize: logSize,
			mask:    n - 1,
			entries: make([]tageEntry, n),
		})
	}
	return t
}

// foldHistory folds histLen bits of history into width bits.
func foldHistory(ghr uint64, histLen, width uint) uint64 {
	h := ghr
	if histLen < 64 {
		h &= 1<<histLen - 1
	}
	var folded uint64
	for histLen > 0 {
		folded ^= h & (1<<width - 1)
		h >>= width
		if histLen >= width {
			histLen -= width
		} else {
			histLen = 0
		}
	}
	return folded
}

func (c *tageComponent) index(pc, ghr uint64) uint64 {
	return ((pc >> 2) ^ (pc >> (2 + c.logSize)) ^ foldHistory(ghr, c.histLen, c.logSize)) & c.mask
}

func (c *tageComponent) tag(pc, ghr uint64) uint16 {
	return uint16(((pc >> 2) ^ foldHistory(ghr, c.histLen, 8) ^ foldHistory(ghr, c.histLen, 7)<<1) & 0xff)
}

// Predict implements DirectionPredictor.
func (t *TAGE) Predict(pc, ghr uint64) bool {
	pred, _, _ := t.predict(pc, ghr)
	return pred
}

// predict returns the prediction, the provider component index (-1 for the
// base predictor) and the alternate prediction.
func (t *TAGE) predict(pc, ghr uint64) (pred bool, provider int, altPred bool) {
	provider = -1
	altProvider := -1
	for i := len(t.comps) - 1; i >= 0; i-- {
		c := t.comps[i]
		e := &c.entries[c.index(pc, ghr)]
		if e.tag == c.tag(pc, ghr) {
			if provider < 0 {
				provider = i
			} else {
				altProvider = i
				break
			}
		}
	}
	altPred = t.base.Predict(pc, ghr)
	if altProvider >= 0 {
		c := t.comps[altProvider]
		altPred = c.entries[c.index(pc, ghr)].ctr >= 0
	}
	if provider >= 0 {
		c := t.comps[provider]
		return c.entries[c.index(pc, ghr)].ctr >= 0, provider, altPred
	}
	return altPred, provider, altPred
}

// Update implements DirectionPredictor.
func (t *TAGE) Update(pc, ghr uint64, taken bool) {
	pred, provider, altPred := t.predict(pc, ghr)

	// Update the provider's counter (or the base predictor).
	if provider >= 0 {
		c := t.comps[provider]
		e := &c.entries[c.index(pc, ghr)]
		if taken && e.ctr < 3 {
			e.ctr++
		} else if !taken && e.ctr > -4 {
			e.ctr--
		}
		// Usefulness: the provider was useful if it differed from altpred
		// and was correct.
		if pred != altPred {
			if pred == taken {
				if e.useful < 3 {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		t.base.Update(pc, ghr, taken)
	}

	// On a misprediction, try to allocate an entry in a longer-history
	// component.
	if pred != taken {
		t.allocate(pc, ghr, taken, provider)
	}
}

func (t *TAGE) allocate(pc, ghr uint64, taken bool, provider int) {
	start := provider + 1
	if start >= len(t.comps) {
		return
	}
	// Find a component with a non-useful entry.
	for i := start; i < len(t.comps); i++ {
		c := t.comps[i]
		e := &c.entries[c.index(pc, ghr)]
		if e.useful == 0 {
			e.tag = c.tag(pc, ghr)
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// All candidates were useful: age them so future allocations succeed.
	t.tick++
	if t.tick >= 8 {
		t.tick = 0
		for i := start; i < len(t.comps); i++ {
			c := t.comps[i]
			e := &c.entries[c.index(pc, ghr)]
			if e.useful > 0 {
				e.useful--
			}
		}
	}
}
