package branch

import (
	"math/rand"
	"testing"
)

// trainAccuracy runs a predictor over a synthetic outcome stream and
// returns the fraction predicted correctly after warmup.
func trainAccuracy(p DirectionPredictor, outcomes func(i int) (pc uint64, taken bool), n, warmup int) float64 {
	var h History
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := outcomes(i)
		pred := p.Predict(pc, h.Bits())
		if i >= warmup {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, h.Bits(), taken)
		h.Push(taken)
	}
	return float64(correct) / float64(total)
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(10)
	acc := trainAccuracy(p, func(i int) (uint64, bool) {
		// Branch at 0x100 is always taken; branch at 0x200 never.
		if i%2 == 0 {
			return 0x100, true
		}
		return 0x200, false
	}, 2000, 100)
	if acc < 0.99 {
		t.Errorf("bimodal accuracy on biased branches = %.3f, want >= 0.99", acc)
	}
}

func TestBimodalCannotLearnPattern(t *testing.T) {
	// Strictly alternating outcome: a bimodal counter hovers and misses.
	p := NewBimodal(10)
	acc := trainAccuracy(p, func(i int) (uint64, bool) {
		return 0x100, i%2 == 0
	}, 2000, 100)
	if acc > 0.7 {
		t.Errorf("bimodal accuracy on alternating pattern = %.3f, expected poor", acc)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	p := NewGshare(12, 12)
	acc := trainAccuracy(p, func(i int) (uint64, bool) {
		return 0x100, i%2 == 0 // alternating: trivially captured by history
	}, 4000, 1000)
	if acc < 0.99 {
		t.Errorf("gshare accuracy on alternating pattern = %.3f, want >= 0.99", acc)
	}
}

func TestTAGELearnsLongPattern(t *testing.T) {
	// Period-20 pattern requires longer history than gshare's practical
	// reach with a small table; TAGE should nail it.
	pattern := make([]bool, 20)
	r := rand.New(rand.NewSource(7))
	for i := range pattern {
		pattern[i] = r.Intn(2) == 0
	}
	p := NewTAGE(10)
	acc := trainAccuracy(p, func(i int) (uint64, bool) {
		return 0x400, pattern[i%len(pattern)]
	}, 20000, 5000)
	if acc < 0.95 {
		t.Errorf("TAGE accuracy on period-20 pattern = %.3f, want >= 0.95", acc)
	}
}

func TestTAGEBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch B correlates with the previous two outcomes of branch A.
	gen := func(i int) (uint64, bool) {
		phase := i % 3
		switch phase {
		case 0:
			return 0x100, i%6 < 3
		case 1:
			return 0x200, i%6 >= 3
		default:
			return 0x300, (i%6 < 3) != (i%6 >= 3)
		}
	}
	tage := trainAccuracy(NewTAGE(10), gen, 12000, 3000)
	bimodal := trainAccuracy(NewBimodal(10), gen, 12000, 3000)
	if tage < bimodal {
		t.Errorf("TAGE (%.3f) should be at least as good as bimodal (%.3f)", tage, bimodal)
	}
	if tage < 0.9 {
		t.Errorf("TAGE accuracy = %.3f, want >= 0.9", tage)
	}
}

func TestFoldHistory(t *testing.T) {
	// Folding must confine the result to width bits and depend on history.
	if got := foldHistory(^uint64(0), 64, 10); got >= 1<<10 {
		t.Errorf("fold overflow: %#x", got)
	}
	if foldHistory(0b1010, 4, 10) == foldHistory(0b0101, 4, 10) {
		t.Error("fold should distinguish different histories")
	}
	if foldHistory(0, 64, 10) != 0 {
		t.Error("fold of zero history must be zero")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(64, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x, %v", tgt, ok)
	}
	// Update in place.
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Errorf("updated target = %#x", tgt)
	}
}

func TestBTBEviction(t *testing.T) {
	b := NewBTB(1, 2) // tiny: one set, two ways
	b.Insert(0x100, 1)
	b.Insert(0x200, 2)
	// Touch 0x100 so 0x200 becomes LRU.
	b.Lookup(0x100)
	b.Insert(0x300, 3)
	if _, ok := b.Lookup(0x200); ok {
		t.Error("LRU entry should have been evicted")
	}
	if _, ok := b.Lookup(0x100); !ok {
		t.Error("MRU entry should have survived")
	}
	if _, ok := b.Lookup(0x300); !ok {
		t.Error("new entry missing")
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	if r.Depth() != 1 {
		t.Errorf("depth = %d, want 1", r.Depth())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS should be empty after wrap: entry 1 was overwritten")
	}
}

func TestHistory(t *testing.T) {
	var h History
	h.Push(true)
	h.Push(false)
	h.Push(true)
	if h.Bits() != 0b101 {
		t.Errorf("bits = %#b", h.Bits())
	}
	h.Set(0)
	if h.Bits() != 0 {
		t.Error("Set failed")
	}
}
