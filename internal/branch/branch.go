// Package branch implements the control-flow prediction structures used by
// the pipeline model: a TAGE conditional branch predictor (the paper's
// baseline uses L-TAGE), a branch target buffer, a return address stack,
// and the simpler bimodal/gshare predictors that also serve as building
// blocks for the Helios fusion predictor's tournament organisation.
package branch

// DirectionPredictor predicts conditional branch directions.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc given
	// the current global history.
	Predict(pc uint64, ghr uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, ghr uint64, taken bool)
}

// counter2 is a 2-bit saturating counter; values 0..3, taken when >= 2.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) inc() counter2 {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c counter2) dec() counter2 {
	if c > 0 {
		return c - 1
	}
	return c
}

func (c counter2) update(taken bool) counter2 {
	if taken {
		return c.inc()
	}
	return c.dec()
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal creates a bimodal predictor with 2^logSize entries,
// initialised weakly taken.
func NewBimodal(logSize uint) *Bimodal {
	n := uint64(1) << logSize
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: n - 1}
}

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64, _ uint64) bool {
	return b.table[(pc>>2)&b.mask].taken()
}

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc uint64, _ uint64, taken bool) {
	i := (pc >> 2) & b.mask
	b.table[i] = b.table[i].update(taken)
}

// Gshare XORs folded global history into the PC index.
type Gshare struct {
	table   []counter2
	mask    uint64
	histLen uint
}

// NewGshare creates a gshare predictor with 2^logSize entries using
// histLen bits of global history.
func NewGshare(logSize, histLen uint) *Gshare {
	n := uint64(1) << logSize
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: n - 1, histLen: histLen}
}

func (g *Gshare) index(pc, ghr uint64) uint64 {
	h := ghr & (1<<g.histLen - 1)
	return ((pc >> 2) ^ h) & g.mask
}

// Predict implements DirectionPredictor.
func (g *Gshare) Predict(pc, ghr uint64) bool {
	return g.table[g.index(pc, ghr)].taken()
}

// Update implements DirectionPredictor.
func (g *Gshare) Update(pc, ghr uint64, taken bool) {
	i := g.index(pc, ghr)
	g.table[i] = g.table[i].update(taken)
}

// History maintains the speculative global branch history register.
type History struct {
	bits uint64
}

// Push shifts one outcome into the history.
func (h *History) Push(taken bool) {
	h.bits <<= 1
	if taken {
		h.bits |= 1
	}
}

// Bits returns the raw history bits (most recent outcome in bit 0).
func (h *History) Bits() uint64 { return h.bits }

// Set overwrites the history (used on pipeline flush recovery).
func (h *History) Set(bits uint64) { h.bits = bits }
