package branch

// BTB is a set-associative branch target buffer. The fetch stage needs it
// to know the target of predicted-taken branches and indirect jumps; a
// taken control transfer that misses in the BTB is a frontend redirect.
type BTB struct {
	sets    int
	ways    int
	entries []btbEntry // sets × ways
	clock   uint64     // global access stamp for LRU

	// Stats.
	Hits, Misses uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	stamp  uint64 // last-access time; smallest is LRU
}

// NewBTB creates a BTB with the given geometry (both powers of two
// recommended; sets must be > 0).
func NewBTB(sets, ways int) *BTB {
	return &BTB{sets: sets, ways: ways, entries: make([]btbEntry, sets*ways)}
}

func (b *BTB) set(pc uint64) []btbEntry {
	idx := int((pc >> 2) % uint64(b.sets))
	return b.entries[idx*b.ways : (idx+1)*b.ways]
}

// Lookup returns the cached target for pc.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.clock++
			set[i].stamp = b.clock
			b.Hits++
			return set[i].target, true
		}
	}
	b.Misses++
	return 0, false
}

// Insert records the target for pc, evicting the LRU way if needed.
func (b *BTB) Insert(pc, target uint64) {
	set := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	b.clock++
	set[victim] = btbEntry{valid: true, tag: pc, target: target, stamp: b.clock}
}

// RAS is a return address stack with wrap-around overflow, as in real
// frontends (overflow silently overwrites the oldest entry).
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS creates a return address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return address (on a return). ok is false if empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }
