package serve

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RequestSummary is one flight-recorder entry: the always-on,
// bounded-memory record of a recent request that /debugz/requests and
// `heliosctl triage` serve. Unlike traces it exists even with telemetry
// off — the flight recorder is the first stop of an incident triage,
// the trace (when the sampler retained one) is the deep link.
type RequestSummary struct {
	// Seq is the recorder-unique monotonic sequence number; `heliosctl
	// triage -follow` polls with after=<last seen Seq>.
	Seq uint64 `json:"seq"`
	// TimeUnixUS is the request's arrival wall-clock (unix µs).
	TimeUnixUS int64  `json:"time_unix_us"`
	Method     string `json:"method"`
	Path       string `json:"path"`
	// Workload/Mode are filled by handlers that resolve one (empty for
	// suite/diff/malformed requests).
	Workload string `json:"workload,omitempty"`
	Mode     string `json:"mode,omitempty"`
	// Outcome is "ok" or the typed error kind ("overload", "engine-fault",
	// "panic", ...) — same vocabulary as the trace outcome attribute.
	Outcome string `json:"outcome"`
	// Cache is the result-cache verdict: "hit", "miss", "coalesced" or
	// empty for requests that never touched the cache.
	Cache string `json:"cache,omitempty"`
	// DurUS is the request wall time in microseconds, admission to
	// response (rejected requests measure the rejection path).
	DurUS int64 `json:"dur_us"`
	// Sampled reports the tail sampler's verdict; Policy names the
	// deciding policy. With telemetry off both stay zero values.
	Sampled bool   `json:"sampled,omitempty"`
	Policy  string `json:"policy,omitempty"`
	// TraceID is set only when the trace was retained — it resolves via
	// GET /tracez?id=<TraceID> until evicted.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// DefaultFlightSize is the flight-recorder capacity when
// Config.FlightSize is 0.
const DefaultFlightSize = 256

// flightRecorder is a fixed-capacity ring of request summaries. Entries
// are value structs in a preallocated slice — recording is two index
// ops and a struct copy under a mutex, cheap enough to stay always-on.
type flightRecorder struct {
	mu      sync.Mutex
	entries []RequestSummary
	cap     int
	next    uint64 // next Seq; entries hold Seq (next-len .. next-1]
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightSize
	}
	return &flightRecorder{entries: make([]RequestSummary, 0, capacity), cap: capacity}
}

// record assigns the summary its sequence number and appends it,
// overwriting the oldest entry when full.
func (f *flightRecorder) record(fs *RequestSummary) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next++
	fs.Seq = f.next
	if len(f.entries) < f.cap {
		f.entries = append(f.entries, *fs)
		return
	}
	f.entries[int((fs.Seq-1)%uint64(f.cap))] = *fs
}

// snapshot returns entries with Seq > after, oldest first, at most
// limit (0 = all). after=0 returns the whole ring.
func (f *flightRecorder) snapshot(after uint64, limit int) []RequestSummary {
	f.mu.Lock()
	out := make([]RequestSummary, 0, len(f.entries))
	lo := uint64(0)
	if n := uint64(len(f.entries)); f.next > n {
		lo = f.next - n
	}
	if after > lo {
		lo = after
	}
	for seq := lo + 1; seq <= f.next; seq++ {
		out = append(out, f.entries[int((seq-1)%uint64(f.cap))])
	}
	f.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// size reports how many entries are resident (≤ cap — the bound the
// chaos soak asserts is exact).
func (f *flightRecorder) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// flightKey threads the request's *RequestSummary through its context
// so handlers annotate it (workload, mode, cache verdict) the same way
// they annotate the trace.
type flightKey struct{}

func withFlight(ctx context.Context, fs *RequestSummary) context.Context {
	return context.WithValue(ctx, flightKey{}, fs)
}

// flightFrom returns the request's summary, or nil outside a request.
// Callers nil-check; the summary is goroutine-local until recorded.
func flightFrom(ctx context.Context) *RequestSummary {
	fs, _ := ctx.Value(flightKey{}).(*RequestSummary)
	return fs
}

// handleDebugRequests serves the flight recorder as JSON, newest-last.
// Filters: outcome=<kind|ok|error> (error = any non-ok), workload=,
// min_ms=<float>, after=<seq>, limit=<n>. The response carries
// next_after for -follow polling.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, &Error{Kind: ErrBadRequest, Msg: "bad after: " + err.Error()})
			return
		}
		after = n
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, &Error{Kind: ErrBadRequest, Msg: "bad limit: " + v})
			return
		}
		limit = n
	}
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, &Error{Kind: ErrBadRequest, Msg: "bad min_ms: " + v})
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	outcome := q.Get("outcome")
	workload := q.Get("workload")

	all := s.flight.snapshot(after, 0)
	entries := make([]RequestSummary, 0, len(all))
	maxSeq := after
	for _, e := range all {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		switch outcome {
		case "", e.Outcome:
		case "error":
			if e.Outcome == "ok" {
				continue
			}
		default:
			continue
		}
		if workload != "" && e.Workload != workload {
			continue
		}
		if minDur > 0 && time.Duration(e.DurUS)*time.Microsecond < minDur {
			continue
		}
		entries = append(entries, e)
	}
	if limit > 0 && len(entries) > limit {
		entries = entries[len(entries)-limit:]
	}
	writeJSON(w, http.StatusOK, struct {
		Requests  []RequestSummary `json:"requests"`
		NextAfter uint64           `json:"next_after"`
	}{entries, maxSeq})
}
