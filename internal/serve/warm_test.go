package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helios/internal/report"
)

// TestCacheWarmRoundTrip is the warm-start satellite end to end: a
// first server computes results into -cache-dir manifests, a second
// server booted on the same directory serves them as cache hits
// without re-simulating, and the restored count is visible on
// /metricz (JSON warm_entries and the Prometheus gauge).
func TestCacheWarmRoundTrip(t *testing.T) {
	dir := t.TempDir()

	cfg := testConfig()
	cfg.CacheDir = dir
	_, tsA := newTestServer(t, cfg)

	for _, req := range []RunRequest{
		{Workload: "crc32", Mode: "Helios"},
		{Workload: "qsort", Mode: "NoFusion"},
	} {
		resp, body := postJSON(t, tsA.URL+"/v1/run", req)
		if resp.StatusCode != 200 {
			t.Fatalf("seed run %s: %d %s", req.Workload, resp.StatusCode, body)
		}
		if decodeRun(t, body).Cached {
			t.Fatalf("first %s run reported cached", req.Workload)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 2 {
		t.Fatalf("cache dir holds %d manifests (%v), want 2", len(files), err)
	}

	// Second boot on the same directory: both results must come back
	// warm, and the very first request must already be a pure hit.
	sB, tsB := newTestServer(t, cfg)
	if got := sB.WarmEntries(); got != 2 {
		t.Fatalf("WarmEntries = %d, want 2", got)
	}
	resp, body := postJSON(t, tsB.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	if resp.StatusCode != 200 {
		t.Fatalf("warm run: %d %s", resp.StatusCode, body)
	}
	if rr := decodeRun(t, body); !rr.Cached {
		t.Errorf("first request after warm boot was not a cache hit: %s", body)
	}

	// The gauge is on both metric surfaces.
	mresp, err := http.Get(tsB.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cache struct {
			WarmEntries int `json:"warm_entries"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if doc.Cache.WarmEntries != 2 {
		t.Errorf("metricz warm_entries = %d, want 2", doc.Cache.WarmEntries)
	}
	presp, err := http.Get(tsB.URL + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	pbody, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pbody), "heliosd_cache_warm_entries 2") {
		t.Errorf("prometheus exposition lacks heliosd_cache_warm_entries 2:\n%s", pbody)
	}
}

// TestCacheWarmRejectsUntrusted pins the paranoid half of the warm
// scan: garbage files, schema drift, foreign engines, and manifests
// whose recorded result key no longer reproduces from their own fields
// (the hand-edit / cache-poisoning case) are all skipped at boot —
// logged, never fatal, never installed.
func TestCacheWarmRejectsUntrusted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CacheDir = dir
	_, tsA := newTestServer(t, cfg)
	resp, body := postJSON(t, tsA.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	if resp.StatusCode != 200 {
		t.Fatalf("seed run: %d %s", resp.StatusCode, body)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir holds %d manifests, want 1", len(files))
	}
	good, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(t *testing.T, name string, mutate func(*report.Manifest)) {
		t.Helper()
		var m report.Manifest
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		mutate(&m)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// One poisoned variant per trust check, beside the one good file.
	os.WriteFile(filepath.Join(dir, "garbage.json"), []byte("{not json"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644)
	tamper(t, "schema.json", func(m *report.Manifest) { m.SchemaVersion = 99 })
	tamper(t, "engine.json", func(m *report.Manifest) { m.Engine = "helios-sim/0.0" })
	tamper(t, "nokey.json", func(m *report.Manifest) { m.ResultKey = "" })
	tamper(t, "edited.json", func(m *report.Manifest) { m.Stats.Cycles /= 2; m.Budget++ })
	tamper(t, "mode.json", func(m *report.Manifest) { m.Mode = "NoFusion" })

	sB := New(context.Background(), cfg)
	if got := sB.WarmEntries(); got != 1 {
		t.Errorf("WarmEntries = %d, want 1 (only the untampered manifest)", got)
	}
}
