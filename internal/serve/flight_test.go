package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func getDebugRequests(t *testing.T, url string) (entries []RequestSummary, nextAfter uint64) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc struct {
		Requests  []RequestSummary `json:"requests"`
		NextAfter uint64           `json:"next_after"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return doc.Requests, doc.NextAfter
}

// TestFlightRecorderEndpoint drives mixed traffic through a server
// with a tiny flight ring and pins the /debugz/requests contract:
// entries are oldest-first with monotonic seqs, the ring bound is
// exact, the outcome/workload/min_ms filters compose, and the
// next_after cursor pages without loss — the API `heliosctl triage
// -follow` polls.
func TestFlightRecorderEndpoint(t *testing.T) {
	cfg := testConfig()
	cfg.FlightSize = 4
	s, ts := newTestServer(t, cfg)
	if got := s.FlightSize(); got != 0 {
		t.Fatalf("fresh recorder holds %d entries", got)
	}

	// Three ok runs, one bad-request, one unknown workload: 5 requests
	// into a 4-slot ring — the first must be overwritten.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "qsort", Mode: "Helios"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "no_such_kernel"})
	postJSONQuiet(ts.URL+"/v1/run", map[string]int{"workload": 7})

	all, next := getDebugRequests(t, ts.URL+"/debugz/requests")
	if len(all) != 4 {
		t.Fatalf("recorder returned %d entries, want the ring bound 4", len(all))
	}
	if next != 5 {
		t.Errorf("next_after = %d, want 5", next)
	}
	for i, e := range all {
		if want := uint64(i + 2); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d (oldest evicted, oldest-first order)", i, e.Seq, want)
		}
	}
	// The second ok run survives with its cache/trace annotations.
	if e := all[0]; e.Workload != "qsort" || e.Outcome != "ok" || e.Cache != "miss" {
		t.Errorf("entry 2 = %+v, want ok qsort miss", e)
	}
	// Repeat crc32 run was a pure hit.
	if e := all[1]; e.Cache != "hit" {
		t.Errorf("repeat crc32 cache = %q, want hit", all[1].Cache)
	}
	if e := all[2]; e.Outcome != string(ErrBadRequest) || e.Workload != "" {
		t.Errorf("unknown-workload entry = %+v, want bad-request with no workload", e)
	}

	// outcome=error folds every non-ok kind; outcome=<kind> is exact.
	errs, _ := getDebugRequests(t, ts.URL+"/debugz/requests?outcome=error")
	if len(errs) != 2 {
		t.Errorf("outcome=error returned %d entries, want 2", len(errs))
	}
	bad, _ := getDebugRequests(t, ts.URL+"/debugz/requests?outcome=bad-request")
	if len(bad) != 2 {
		t.Errorf("outcome=bad-request returned %d entries, want 2", len(bad))
	}
	oks, _ := getDebugRequests(t, ts.URL+"/debugz/requests?outcome=ok&workload=qsort")
	if len(oks) != 1 || oks[0].Workload != "qsort" {
		t.Errorf("workload filter returned %+v, want the one qsort run", oks)
	}
	none, _ := getDebugRequests(t, ts.URL+"/debugz/requests?min_ms=60000")
	if len(none) != 0 {
		t.Errorf("min_ms=60000 returned %d entries, want 0", len(none))
	}

	// Cursor paging: after=<seen> returns only newer entries, and the
	// cursor advances even when filters empty the page.
	page, pnext := getDebugRequests(t, fmt.Sprintf("%s/debugz/requests?after=%d", ts.URL, all[1].Seq))
	if len(page) != 2 || page[0].Seq != all[2].Seq {
		t.Errorf("after=%d returned %d entries starting at %d", all[1].Seq, len(page), page[0].Seq)
	}
	if pnext != next {
		t.Errorf("paged next_after = %d, want %d", pnext, next)
	}
	empty, enext := getDebugRequests(t, fmt.Sprintf("%s/debugz/requests?after=%d", ts.URL, next))
	if len(empty) != 0 || enext != next {
		t.Errorf("after=tip returned %d entries, next_after %d (want 0, %d)", len(empty), enext, next)
	}

	// limit keeps the newest.
	last, _ := getDebugRequests(t, ts.URL+"/debugz/requests?limit=1")
	if len(last) != 1 || last[0].Seq != next {
		t.Errorf("limit=1 returned seq %d, want the newest %d", last[0].Seq, next)
	}

	// Hostile parameters are typed 400s.
	for _, q := range []string{"after=x", "limit=-1", "min_ms=-2", "min_ms=soon"} {
		resp, err := http.Get(ts.URL + "/debugz/requests?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("?%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestFlightRecorderTelemetryOff: the recorder is always-on — with
// telemetry disabled entries still record, just without sampler
// verdicts or trace deep links.
func TestFlightRecorderTelemetryOff(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	all, _ := getDebugRequests(t, ts.URL+"/debugz/requests")
	if len(all) != 1 {
		t.Fatalf("recorder returned %d entries, want 1", len(all))
	}
	e := all[0]
	if e.Outcome != "ok" || e.Workload != "crc32" {
		t.Errorf("entry = %+v, want ok crc32", e)
	}
	if e.Sampled || e.Policy != "" || e.TraceID != 0 {
		t.Errorf("telemetry-off entry carries sampler state: %+v", e)
	}
	if e.DurUS <= 0 {
		t.Errorf("DurUS = %d, want > 0", e.DurUS)
	}
}
