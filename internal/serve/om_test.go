package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"helios/internal/telemetry"
	"helios/internal/telemetry/sampling"
)

// TestMetriczOpenMetricsExemplars is the exemplar acceptance check:
// the OpenMetrics exposition carries `# {trace_id=...}` exemplars on
// duration-histogram buckets, passes the OM lint including retention
// consistency (every exemplar's trace resolves in the ring), and the
// deep link round-trips — /tracez?id= serves exactly the trace the
// bucket names.
func TestMetriczOpenMetricsExemplars(t *testing.T) {
	cfg := telemetryConfig()
	cfg.Sampler = sampling.Default(7)
	s, ts := newTestServer(t, cfg)

	// Mixed traffic so multiple bucket families have candidates: two
	// distinct runs (misses with record spans), one repeat (hit), one
	// error.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "qsort", Mode: "NoFusion"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "no_such_kernel"})

	resp, err := http.Get(ts.URL + "/metricz?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.OpenMetricsContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.OpenMetricsContentType)
	}
	text := string(body)
	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "# EOF") {
		t.Error("exposition does not end with # EOF")
	}
	if !strings.Contains(text, "# {trace_id=") {
		t.Fatalf("exposition carries no exemplars:\n%s", text)
	}

	// The full OM lint with the retention-consistency hook wired to the
	// live tracer — a dangling exemplar fails here.
	tel := s.Telemetry()
	opts := telemetry.LintOptions{
		OpenMetrics: true,
		ResolveTrace: func(traceID string) bool {
			id, err := strconv.ParseUint(traceID, 10, 64)
			return err == nil && tel.Retained(id)
		},
	}
	if err := telemetry.LintExpositionOptions(strings.NewReader(text), opts); err != nil {
		t.Fatalf("OpenMetrics lint: %v\n%s", err, text)
	}

	// Round-trip one exemplar through the public deep link.
	i := strings.Index(text, `# {trace_id="`)
	rest := text[i+len(`# {trace_id="`):]
	traceID := rest[:strings.Index(rest, `"`)]
	tresp, err := http.Get(ts.URL + "/tracez?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != 200 {
		t.Errorf("exemplar deep link /tracez?id=%s: status %d", traceID, tresp.StatusCode)
	}

	// A trace id nothing retains is the taxonomy's typed 404.
	nresp, err := http.Get(ts.URL + "/tracez?id=9999999")
	if err != nil {
		t.Fatal(err)
	}
	nbody, _ := io.ReadAll(nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != 404 {
		t.Fatalf("unknown trace id: status %d (%s)", nresp.StatusCode, nbody)
	}
	if e := decodeError(t, nbody); e.Kind != ErrNotFound {
		t.Errorf("unknown trace kind = %s, want %s", e.Kind, ErrNotFound)
	}

	// The 0.0.4 surface must stay exemplar-free and pass the classic
	// lint — old scrapers never see OM syntax.
	presp, err := http.Get(ts.URL + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if strings.Contains(string(pbody), "# {trace_id=") {
		t.Error("0.0.4 exposition leaks exemplar syntax")
	}
	if err := telemetry.LintExposition(strings.NewReader(string(pbody))); err != nil {
		t.Errorf("0.0.4 lint: %v", err)
	}
}
