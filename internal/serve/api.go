// Package serve implements heliosd: simulation-as-a-service over
// HTTP+JSON, engineered robustness-first. Every result is keyed by a
// content hash of (workload, machine config, budget, engine version) so
// repeat requests are pure cache hits; in-flight misses are deduplicated
// by singleflight; distinct requests sharing a workload coalesce through
// a time/size-bounded micro-batcher into one record phase.
//
// The robustness layer is the contract (DESIGN.md §14): a bounded
// admission queue that rejects overload with a typed 429 carrying a
// retry-after hint, per-request deadlines propagated as context into the
// engine with partial-work cancellation, per-request panic isolation
// that converts faults into structured JSON instead of process death,
// graceful degradation of corrupt cached recordings to a single live
// re-emulation, and graceful drain on shutdown.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"helios/internal/ooo"
)

// RunRequest asks for one workload under one fusion mode. The zero
// values of the optional fields select the server's defaults.
type RunRequest struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode,omitempty"`  // fusion mode name; default Helios
	Insts    uint64 `json:"insts,omitempty"` // instruction budget; 0 = server default
	// DeadlineMs bounds this request's wall time; the server clamps it
	// to its configured maximum. 0 = the server's default deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Config optionally overrides the whole machine description. When
	// set, Mode is taken from the config and the result is cached only
	// under its content hash (custom machines bypass the suite's
	// default-config cache).
	Config *ooo.Config `json:"config,omitempty"`
	// Obs requests a per-run observability artifact: "pipeview" (Konata
	// O3PipeView), "events" (NDJSON pipeline events) or "interval"
	// (interval-sampled CSV). An observed run replays off the suite's
	// record-once trace outside the result cache and the micro-batcher —
	// the artifact is a side effect, not a cacheable value — and replay
	// determinism makes the payload byte-identical to heliossim's for
	// the same workload/config/budget.
	Obs string `json:"obs,omitempty"`
	// ObsInterval is the sampler period for obs:"interval", in committed
	// instructions (0 = the server default).
	ObsInterval uint64 `json:"obs_interval,omitempty"`
}

// Artifact is the captured observability stream of an obs run. Exactly
// one of Data and Path is set: inline base64 by default, or a
// server-side file when the server is configured with an artifact
// directory. SHA256 covers the raw bytes either way, so clients can
// verify integrity and replay determinism without re-downloading.
type Artifact struct {
	Kind     string `json:"kind"`               // pipeview | events | interval
	Encoding string `json:"encoding"`           // base64 | file
	Bytes    int    `json:"bytes"`              // raw payload size
	SHA256   string `json:"sha256"`             // hex digest of the raw bytes
	Data     string `json:"data,omitempty"`     // base64 payload (encoding=base64)
	Path     string `json:"path,omitempty"`     // server-side path (encoding=file)
	Manifest string `json:"manifest,omitempty"` // matching manifest path, when manifests are on
}

// RunResponse is one simulation result plus its service identity.
type RunResponse struct {
	Key       string    `json:"key"` // content address of the result
	Workload  string    `json:"workload"`
	Mode      string    `json:"mode"`
	Insts     uint64    `json:"insts"`                // resolved budget
	Engine    string    `json:"engine"`               // engine version baked into the key
	Cached    bool      `json:"cached"`               // pure content-cache hit
	Coalesced bool      `json:"coalesced,omitempty"`  // waited on an identical in-flight run
	BatchSize int       `json:"batch_size,omitempty"` // size of the micro-batch this ran in
	IPC       float64   `json:"ipc"`
	Stats     ooo.Stats `json:"stats"`
	// Artifact carries the captured obs stream for requests with an obs
	// field.
	Artifact *Artifact `json:"artifact,omitempty"`
}

// SuiteRequest asks for a workload×mode matrix in one call; the server
// fans it across the suite scheduler.
type SuiteRequest struct {
	Workloads  []string `json:"workloads"`
	Modes      []string `json:"modes,omitempty"` // default: all six configurations
	Insts      uint64   `json:"insts,omitempty"`
	DeadlineMs int64    `json:"deadline_ms,omitempty"`
}

// SuiteCell is one cell of a suite response: a result summary or a
// typed per-cell error (one bad cell does not fail the matrix).
type SuiteCell struct {
	Workload string  `json:"workload"`
	Mode     string  `json:"mode"`
	IPC      float64 `json:"ipc,omitempty"`
	Cycles   uint64  `json:"cycles,omitempty"`
	Insts    uint64  `json:"insts,omitempty"` // committed instructions
	Error    *Error  `json:"error,omitempty"`
}

// SuiteResponse is the matrix in request order.
type SuiteResponse struct {
	Engine string      `json:"engine"`
	Budget uint64      `json:"budget"` // resolved instruction budget
	Cells  []SuiteCell `json:"cells"`
}

// DiffRequest asks for a differential report: the named workloads under
// a baseline and a target fusion mode, rendered by internal/report.
type DiffRequest struct {
	Workloads    []string `json:"workloads"`
	BaselineMode string   `json:"baseline_mode"`
	TargetMode   string   `json:"target_mode"`
	Insts        uint64   `json:"insts,omitempty"`
	DeadlineMs   int64    `json:"deadline_ms,omitempty"`
}

// DiffResponse carries the rendered report in both formats.
type DiffResponse struct {
	Engine   string `json:"engine"`
	Markdown string `json:"markdown"`
	CSV      string `json:"csv"`
}

// ErrKind is the machine-readable error taxonomy of the service. Every
// non-200 response body is an Error with one of these kinds, so clients
// branch on the kind, never on message text.
type ErrKind string

const (
	// ErrBadRequest: malformed JSON, unknown workload or mode, or an
	// out-of-range parameter. Not retryable.
	ErrBadRequest ErrKind = "bad-request"
	// ErrOversized: the request body exceeded the server's byte limit.
	// Not retryable as-is.
	ErrOversized ErrKind = "oversized"
	// ErrOverload: the bounded admission queue is full. Retryable after
	// the RetryAfterMs hint.
	ErrOverload ErrKind = "overload"
	// ErrDraining: the server is shutting down and no longer admits
	// work. Retryable against another replica, after RetryAfterMs.
	ErrDraining ErrKind = "draining"
	// ErrDeadline: the request's deadline expired before the simulation
	// finished; partial work was cancelled. Retryable with a larger
	// deadline (or smaller budget).
	ErrDeadline ErrKind = "deadline"
	// ErrCanceled: the client went away mid-request.
	ErrCanceled ErrKind = "canceled"
	// ErrNotFound: the referenced resource does not exist — e.g. a
	// /tracez?id= for a trace the sampler dropped or the ring evicted.
	// Not retryable.
	ErrNotFound ErrKind = "not-found"
	// ErrEngine: the simulation engine faulted; Engine carries the full
	// structured *ooo.SimError crash dump. Retryable — the degradation
	// path repairs corrupt recordings, so a retry usually succeeds.
	ErrEngine ErrKind = "engine-fault"
	// ErrInternal: a recovered handler panic or unclassified failure.
	ErrInternal ErrKind = "internal"
)

// Error is the typed failure envelope. It implements error so the
// server's internals can return it through ordinary error plumbing.
type Error struct {
	Kind ErrKind `json:"kind"`
	Msg  string  `json:"msg"`
	// RetryAfterMs is the server's backoff hint for retryable kinds
	// (overload, draining). heliosctl uses it as the backoff floor.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Engine is the structured *ooo.SimError crash dump for
	// engine-fault errors.
	Engine json.RawMessage `json:"engine,omitempty"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Kind, e.Msg)
}

// HTTPStatus maps the error taxonomy onto HTTP status codes.
func (e *Error) HTTPStatus() int {
	switch e.Kind {
	case ErrBadRequest:
		return 400
	case ErrOversized:
		return 413
	case ErrOverload:
		return 429
	case ErrDraining:
		return 503
	case ErrDeadline:
		return 504
	case ErrCanceled:
		return 499 // client closed request (nginx convention)
	case ErrNotFound:
		return 404
	default:
		return 500
	}
}

// Retryable reports whether a client should retry this error kind
// (possibly against another replica).
func (e *Error) Retryable() bool {
	switch e.Kind {
	case ErrOverload, ErrDraining, ErrEngine, ErrInternal:
		return true
	}
	return false
}

// resultKey computes the content address of a fully resolved request:
// SHA-256 over the canonical JSON of (workload, machine config, budget,
// engine version). Config marshals its fields in declaration order and
// excludes per-run wiring (Obs is json:"-"), so the bytes — and the key
// — are deterministic. Identical requests are therefore pure cache
// hits, and any change to workload, machine, budget or engine yields a
// different key by construction.
func resultKey(workload string, cfg ooo.Config, budget uint64, engine string) (string, error) {
	b, err := json.Marshal(struct {
		Workload string     `json:"workload"`
		Config   ooo.Config `json:"config"`
		Budget   uint64     `json:"budget"`
		Engine   string     `json:"engine"`
	}{workload, cfg, budget, engine})
	if err != nil {
		//helios:errtaxonomy-ok classified to a kinded ErrInternal at the handleRun boundary, never written raw
		return "", fmt.Errorf("serve: hash request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
