package serve

import (
	"context"
	"errors"
	"sync"

	"helios/internal/core"
	"helios/internal/telemetry"
)

// resultCache is the content-addressed result store plus the
// singleflight layer that deduplicates in-flight misses: the first
// request for a key runs the simulation, every concurrent identical
// request waits on the same flight, and later requests are pure hits.
// The pattern (flight channel under one mutex, re-check loop after
// every wait) is the one proven in core.Suite; context failures are
// never cached, so a deadline that expires while waiting poisons
// nothing.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	flight  map[string]chan struct{}

	hits      uint64
	misses    uint64
	coalesced uint64
}

type cacheEntry struct {
	res *core.Result
	err error
}

func newResultCache() *resultCache {
	return &resultCache{
		entries: make(map[string]*cacheEntry),
		flight:  make(map[string]chan struct{}),
	}
}

// do returns the cached result for key, or runs fn once to produce it.
// cached reports a pure hit; coalesced reports that this call waited on
// an identical in-flight run. Errors are cached (a deterministic
// request that faults will fault again) except context failures, which
// belong to the caller, not the key.
func (c *resultCache) do(ctx context.Context, key string, fn func() (*core.Result, error)) (res *core.Result, cached, coalesced bool, err error) {
	// cache_read covers the lookup/wait loop; spans end explicitly on
	// every exit path (never by defer) so the span-balance contract the
	// chaos soak audits holds even when a waiter's context dies mid-loop.
	tr := telemetry.FromContext(ctx)
	rd := tr.Start("cache_read")
	c.mu.Lock()
	for {
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.mu.Unlock()
			rd.SetAttr("hit", "true")
			rd.SetBool("coalesced", coalesced)
			rd.End()
			return e.res, !coalesced, coalesced, e.err
		}
		ch, inflight := c.flight[key]
		if !inflight {
			break
		}
		c.coalesced++
		coalesced = true
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			rd.SetAttr("hit", "false")
			rd.SetBool("coalesced", true)
			rd.End()
			return nil, false, true, ctx.Err()
		}
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.flight[key] = ch
	c.misses++
	c.mu.Unlock()
	rd.SetAttr("hit", "false")
	rd.SetBool("coalesced", coalesced)
	rd.End()

	res, err = fn()

	wr := tr.Start("cache_write")
	c.mu.Lock()
	if !isCtxErr(err) {
		c.entries[key] = &cacheEntry{res: res, err: err}
	}
	delete(c.flight, key)
	c.mu.Unlock()
	close(ch)
	wr.SetBool("stored", !isCtxErr(err))
	wr.End()
	return res, false, coalesced, err
}

// warm installs a result restored from disk, reporting whether it was
// stored. Boot-time only, before traffic: a live entry (or in-flight
// run) for the key wins over the disk copy, and warmed entries never
// count as hits or misses until a request touches them.
func (c *resultCache) warm(key string, res *core.Result) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return false
	}
	if _, inflight := c.flight[key]; inflight {
		return false
	}
	c.entries[key] = &cacheEntry{res: res}
	return true
}

// stats snapshots the cache counters.
func (c *resultCache) stats() (entries int, hits, misses, coalesced uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses, c.coalesced
}

// isCtxErr reports whether err is a cancellation/deadline failure.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
