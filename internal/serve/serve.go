package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/report"
	"helios/internal/stats"
	"helios/internal/telemetry"
	"helios/internal/workloads"
)

// Config tunes the service's robustness envelope. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// QueueDepth bounds concurrently admitted requests — the admission
	// queue. Request QueueDepth+1 is rejected with a typed 429.
	QueueDepth int
	// DefaultDeadline applies when a request carries no deadline_ms;
	// MaxDeadline clamps client-supplied deadlines.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the backoff hint attached to overload/draining
	// rejections.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies; larger bodies get a typed 413.
	MaxBodyBytes int64
	// MaxBatch / BatchWait bound the micro-batcher: a pending batch is
	// cut at MaxBatch requests or BatchWait after its first request.
	MaxBatch  int
	BatchWait time.Duration
	// DefaultInsts is the instruction budget when a request sends none
	// (0 = each workload's own budget).
	DefaultInsts uint64
	// SuiteWorkers bounds the suite endpoint's scheduler fan-out
	// (0 = GOMAXPROCS).
	SuiteWorkers int
	// ManifestDir, when set, receives a per-request JSON manifest
	// (config + stats + build identity) for every completed /v1/run.
	ManifestDir string
	// Telemetry enables per-request span tracing (DESIGN.md §16). Off,
	// the tracer is a nil pointer and every hook on the request path is
	// a zero-allocation no-op (TestServeTelemetryOffNoAllocs).
	Telemetry bool
	// TraceRing bounds the finished traces retained for GET /tracez
	// (0 = telemetry.DefaultRing).
	TraceRing int
	// TraceDir, when set (and Telemetry is on), receives one Chrome
	// trace-event JSON file per finished request.
	TraceDir string
	// ArtifactDir, when set, switches /v1/run obs artifacts from inline
	// base64 payloads to server-side files referenced by path.
	ArtifactDir string
	// SpanLog, when non-nil (and Telemetry is on), receives the NDJSON
	// span stream.
	SpanLog io.Writer
	// Sampler, when non-nil (and Telemetry is on), makes the tail-based
	// retention decision for every finished trace (DESIGN.md §17). Nil
	// retains every finished trace FIFO — the pre-sampling behavior.
	Sampler telemetry.Sampler
	// CacheDir, when set, is scanned at boot for manifests written by a
	// previous heliosd process; every verifiable one warms the result
	// cache. Completed runs write their manifest there too, so the next
	// restart warms from this run's results.
	CacheDir string
	// FlightSize bounds the always-on flight recorder behind
	// /debugz/requests (0 = DefaultFlightSize).
	FlightSize int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		QueueDepth:      64,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     2 * time.Minute,
		RetryAfter:      500 * time.Millisecond,
		MaxBodyBytes:    1 << 20,
		MaxBatch:        8,
		BatchWait:       2 * time.Millisecond,
	}
}

// Counters is the server's cumulative request telemetry, exposed by
// /metricz and the smoke tooling. All fields are monotonic.
type Counters struct {
	Admitted         uint64 `json:"admitted"`
	RejectedOverload uint64 `json:"rejected_overload"`
	RejectedDraining uint64 `json:"rejected_draining"`
	BadRequests      uint64 `json:"bad_requests"`
	Oversized        uint64 `json:"oversized"`
	DeadlineExpired  uint64 `json:"deadline_expired"`
	Canceled         uint64 `json:"canceled"`
	EngineFaults     uint64 `json:"engine_faults"`
	PanicsRecovered  uint64 `json:"panics_recovered"`
	Completed        uint64 `json:"completed"`
	ManifestsWritten uint64 `json:"manifests_written"`
	ManifestErrors   uint64 `json:"manifest_errors"`
}

// Server is the heliosd service core: it owns the suite (record-once
// cache + scheduler), the content-addressed result cache, the
// micro-batcher and the robustness envelope. It is transport-agnostic —
// Handler returns the http.Handler; the cmd owns the listener.
type Server struct {
	cfg     Config
	suite   *core.Suite
	cache   *resultCache
	batch   *batcher
	baseCtx context.Context
	// tel is nil unless Config.Telemetry — the nil pointer IS the
	// disabled state, so the request path never branches on a flag.
	tel *telemetry.Tracer
	// flight is the always-on request flight recorder (/debugz/requests);
	// unlike traces it records with telemetry off too.
	flight *flightRecorder
	// warmEntries counts results restored from CacheDir at boot; written
	// once before traffic, read-only after.
	warmEntries int

	wg sync.WaitGroup

	mu          sync.Mutex
	draining    bool
	inflight    int
	maxInflight int
	c           Counters
	latency     stats.Histogram // completed-request wall time, microseconds
	// latencyEx holds per-bucket exemplar candidates for the
	// request-duration histogram; exposition filters them through
	// Tracer.Retained so /metricz only links to traces /tracez can serve.
	latencyEx telemetry.ExemplarSet
}

// New builds a server rooted at ctx: the context bounds background work
// (the batcher's shared record phases) and should be the process root.
func New(ctx context.Context, cfg Config) *Server {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	suite := core.NewSuite(cfg.DefaultInsts)
	var tel *telemetry.Tracer
	if cfg.Telemetry {
		tel = telemetry.New(telemetry.Options{Ring: cfg.TraceRing, NDJSON: cfg.SpanLog, Sampler: cfg.Sampler})
	}
	s := &Server{
		cfg:     cfg,
		suite:   suite,
		cache:   newResultCache(),
		batch:   newBatcher(ctx, suite, cfg.MaxBatch, cfg.BatchWait),
		baseCtx: ctx,
		tel:     tel,
		flight:  newFlightRecorder(cfg.FlightSize),
	}
	if cfg.CacheDir != "" {
		s.warmEntries = s.warmCache(cfg.CacheDir)
	}
	return s
}

// Suite exposes the underlying record/replay cache — the chaos soak
// seeds poisoned recordings through it, and cmds surface its metrics.
func (s *Server) Suite() *core.Suite { return s.suite }

// Telemetry exposes the span tracer (nil when disabled); the chaos soak
// audits its span-balance contract through this.
func (s *Server) Telemetry() *telemetry.Tracer { return s.tel }

// MaxInflight reports the admission high-water mark; the soak test
// asserts it never exceeds QueueDepth.
func (s *Server) MaxInflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxInflight
}

// Counters snapshots the request telemetry.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the service's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.api(s.handleRun))
	mux.HandleFunc("POST /v1/suite", s.api(s.handleSuite))
	mux.HandleFunc("POST /v1/diff", s.api(s.handleDiff))
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("GET /tracez", s.handleTracez)
	mux.HandleFunc("GET /debugz/requests", s.handleDebugRequests)
	return mux
}

// WarmEntries reports how many cached results boot restored from
// CacheDir (the heliosd_cache_warm_entries gauge).
func (s *Server) WarmEntries() int { return s.warmEntries }

// FlightSize reports how many summaries the flight recorder currently
// holds (≤ its capacity — the bound the chaos soak asserts is exact).
func (s *Server) FlightSize() int { return s.flight.size() }

// Drain stops admission (new API requests get a typed 503) and waits
// for every in-flight request to finish or ctx to expire. Manifests are
// written synchronously inside each request, so a nil return means all
// results and manifests reached their destinations.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("serve: drain deadline expired with %d request(s) in flight: %w", n, ctx.Err())
	}
}

// api wraps an endpoint with the robustness envelope, outermost first:
// panic isolation (a handler or engine fault becomes a structured 500,
// never process death), drain refusal, bounded admission, body limit,
// and error classification.
func (s *Server) api(h func(ctx context.Context, r *http.Request) (any, *Error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The trace opens before admission so rejected requests trace
		// too, and finishes after the panic recovery defer has run —
		// every span opened below is closed on every exit path, which
		// is exactly the balance contract the chaos soak audits. The
		// flight-recorder defer registers first, so (LIFO) it commits
		// after finishTrace has run the sampler: the summary carries
		// the tail verdict and, for retained traces, a resolvable id.
		start := time.Now()
		fs := &RequestSummary{TimeUnixUS: start.UnixMicro(), Method: r.Method, Path: r.URL.Path}
		tr := s.tel.StartTrace(r.Method + " " + r.URL.Path)
		defer s.recordFlight(fs, tr, start)
		defer s.finishTrace(tr)
		defer func() {
			if rec := recover(); rec != nil {
				s.mu.Lock()
				s.c.PanicsRecovered++
				s.mu.Unlock()
				fs.Outcome = "panic"
				tr.SetAttr("outcome", "panic")
				writeError(w, &Error{Kind: ErrInternal,
					Msg: fmt.Sprintf("recovered handler panic: %v", rec)})
			}
		}()
		adm := tr.Start("admission")
		depth, e := s.admitOne()
		adm.SetInt("inflight", int64(depth))
		if e != nil {
			adm.SetAttr("rejected", string(e.Kind))
			adm.End()
			fs.Outcome = string(e.Kind)
			tr.SetAttr("outcome", string(e.Kind))
			writeError(w, e)
			return
		}
		adm.End()
		t0 := time.Now()
		defer s.releaseOne(t0, tr)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		resp, e := h(withFlight(telemetry.WithTrace(r.Context(), tr), fs), r)
		if e != nil {
			s.noteError(e)
			fs.Outcome = string(e.Kind)
			tr.SetAttr("outcome", string(e.Kind))
			writeError(w, e)
			return
		}
		s.mu.Lock()
		s.c.Completed++
		s.mu.Unlock()
		fs.Outcome = "ok"
		tr.SetAttr("outcome", "ok")
		writeJSON(w, http.StatusOK, resp)
	}
}

// recordFlight stamps the summary's duration and the sampler's tail
// verdict, then commits it to the flight recorder. It runs after
// finishTrace (defer LIFO), so the verdict is decided; TraceID is set
// only when the trace actually sits in the retention ring right now,
// which keeps `heliosctl triage` → `heliosctl trace -id` from dangling.
func (s *Server) recordFlight(fs *RequestSummary, tr *telemetry.Trace, start time.Time) {
	fs.DurUS = time.Since(start).Microseconds()
	if v, ok := tr.Verdict(); ok {
		fs.Sampled = v.Keep
		fs.Policy = v.Policy
		if v.Keep && s.tel.Retained(tr.ID()) {
			fs.TraceID = tr.ID()
		}
	}
	s.flight.record(fs)
}

// finishTrace closes a request trace and, when TraceDir is set, exports
// it as a standalone Chrome trace-event file. Export failures are
// telemetry, never request failures.
func (s *Server) finishTrace(tr *telemetry.Trace) {
	tr.Finish()
	if tr == nil || s.cfg.TraceDir == "" {
		return
	}
	ti := tr.Snapshot()
	path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("trace-%d.json", ti.ID))
	f, err := os.Create(path)
	if err != nil {
		s.logf("serve: trace export %s: %v", path, err)
		return
	}
	defer f.Close()
	if err := telemetry.WriteChromeTrace(f, []telemetry.TraceInfo{ti}); err != nil {
		s.logf("serve: trace export %s: %v", path, err)
	}
}

// admitOne is the bounded admission queue: it refuses drains and
// overload under one lock so the inflight count can never exceed
// QueueDepth, and registers the request with the drain group. The int
// return is the post-admission inflight depth (the queue position the
// admission span records).
func (s *Server) admitOne() (int, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.c.RejectedDraining++
		return s.inflight, &Error{Kind: ErrDraining, Msg: "server is draining",
			RetryAfterMs: s.cfg.RetryAfter.Milliseconds()}
	}
	if s.inflight >= s.cfg.QueueDepth {
		s.c.RejectedOverload++
		return s.inflight, &Error{Kind: ErrOverload,
			Msg:          fmt.Sprintf("admission queue full (%d in flight)", s.inflight),
			RetryAfterMs: s.cfg.RetryAfter.Milliseconds()}
	}
	s.inflight++
	if s.inflight > s.maxInflight {
		s.maxInflight = s.inflight
	}
	s.c.Admitted++
	s.wg.Add(1)
	return s.inflight, nil
}

// releaseOne returns the request's admission slot and folds its wall
// time into the latency histogram. When the request carries a trace the
// duration also becomes an exemplar candidate — candidate, because the
// sampler has not run yet (releaseOne precedes finishTrace in the defer
// stack); exposition filters through Tracer.Retained, so only traces
// the sampler kept are ever emitted.
func (s *Server) releaseOne(t0 time.Time, tr *telemetry.Trace) {
	us := time.Since(t0).Microseconds()
	id := tr.ID()
	s.mu.Lock()
	s.inflight--
	s.latency.Observe(uint64(us))
	if id != 0 {
		s.latencyEx.Observe(uint64(us), id, time.Now().UnixMicro())
	}
	s.mu.Unlock()
	s.wg.Done()
}

// noteError counts a classified failure.
func (s *Server) noteError(e *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case ErrBadRequest:
		s.c.BadRequests++
	case ErrOversized:
		s.c.Oversized++
	case ErrDeadline:
		s.c.DeadlineExpired++
	case ErrCanceled:
		s.c.Canceled++
	case ErrEngine:
		s.c.EngineFaults++
	}
}

// reqCtx derives the request's deadline context: client-supplied
// deadline_ms, clamped to MaxDeadline, defaulting to DefaultDeadline.
func (s *Server) reqCtx(ctx context.Context, deadlineMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMs > 0 {
		d = time.Duration(deadlineMs) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// classify maps an engine/context failure onto the error taxonomy.
func classify(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &Error{Kind: ErrDeadline, Msg: "deadline expired before the simulation finished; partial work cancelled"}
	}
	if errors.Is(err, context.Canceled) {
		return &Error{Kind: ErrCanceled, Msg: "request cancelled"}
	}
	var se *ooo.SimError
	if errors.As(err, &se) {
		return &Error{Kind: ErrEngine, Msg: err.Error(), Engine: se.JSON()}
	}
	return &Error{Kind: ErrInternal, Msg: err.Error()}
}

// resolveRun turns a RunRequest into a fully resolved (name, config,
// budget) triple, validating every axis against the registered
// workloads and the paper's fusion modes.
func (s *Server) resolveRun(req *RunRequest) (name string, cfg ooo.Config, budget uint64, custom bool, e *Error) {
	wl, ok := workloads.ByName(req.Workload)
	if !ok {
		return "", cfg, 0, false, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown workload %q (GET /v1/workloads lists them)", req.Workload)}
	}
	budget = req.Insts
	if budget == 0 {
		budget = s.cfg.DefaultInsts
	}
	if budget == 0 {
		budget = wl.MaxInsts
	}
	if req.Config != nil {
		if req.Mode != "" && req.Mode != req.Config.Mode.String() {
			return "", cfg, 0, false, &Error{Kind: ErrBadRequest,
				Msg: fmt.Sprintf("mode %q conflicts with config.Mode %q", req.Mode, req.Config.Mode)}
		}
		return wl.Name, *req.Config, budget, true, nil
	}
	modeName := req.Mode
	if modeName == "" {
		modeName = fusion.ModeHelios.String()
	}
	mode, ok := fusion.ModeByName(modeName)
	if !ok {
		return "", cfg, 0, false, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown fusion mode %q (want one of %v)", modeName, fusion.Modes)}
	}
	return wl.Name, ooo.DefaultConfig(mode), budget, false, nil
}

func (s *Server) handleRun(ctx0 context.Context, r *http.Request) (any, *Error) {
	var req RunRequest
	if e := decodeJSON(r, &req); e != nil {
		return nil, e
	}
	name, cfg, budget, custom, e := s.resolveRun(&req)
	if e != nil {
		return nil, e
	}
	key, err := resultKey(name, cfg, budget, core.EngineVersion())
	if err != nil {
		return nil, classify(err)
	}
	tr := telemetry.FromContext(ctx0)
	tr.SetAttr("workload", name)
	tr.SetAttr("mode", cfg.Mode.String())
	tr.SetAttr("key", key)
	fs := flightFrom(ctx0)
	if fs != nil {
		fs.Workload = name
		fs.Mode = cfg.Mode.String()
	}
	ctx, cancel := s.reqCtx(ctx0, req.DeadlineMs)
	defer cancel()

	if req.Obs != "" {
		return s.runObs(ctx, &req, name, cfg, budget, key)
	}

	batchSize := 0
	res, cached, coalesced, err := s.cache.do(ctx, key, func() (*core.Result, error) {
		rr, n, rerr := s.batch.submit(ctx, name, budget, cfg, custom)
		batchSize = n
		return rr, rerr
	})
	if err != nil {
		return nil, classify(err)
	}
	tr.SetAttr("cached", boolStr(cached))
	if fs != nil {
		switch {
		case cached:
			fs.Cache = "hit"
		case coalesced:
			fs.Cache = "coalesced"
		default:
			fs.Cache = "miss"
		}
	}
	if s.manifestDirs() != nil && !cached {
		msp := tr.Start("manifest")
		s.writeManifest(key, name, cfg, budget, res)
		msp.End()
	}
	return &RunResponse{
		Key:       key,
		Workload:  name,
		Mode:      cfg.Mode.String(),
		Insts:     budget,
		Engine:    core.EngineVersion(),
		Cached:    cached,
		Coalesced: coalesced,
		BatchSize: batchSize,
		IPC:       res.Stats.IPC(),
		Stats:     res.Stats,
	}, nil
}

func boolStr(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// obsDefaultInterval is the interval sampler period (in committed µops)
// when an obs:"interval" request does not specify one — the same
// default as heliossim -interval's documentation examples.
const obsDefaultInterval = 10000

// runObs serves a /v1/run request carrying an obs field: the result is
// recomputed as one observed replay off the suite's record-once trace
// (never through the result cache — an observed run is side-effecting)
// and the captured stream is returned as an artifact, inline base64 by
// default or as a server-side file when ArtifactDir is set. Replay
// determinism makes the payload byte-identical to a heliossim run of
// the same workload/config/budget.
func (s *Server) runObs(ctx context.Context, req *RunRequest, name string, cfg ooo.Config, budget uint64, key string) (any, *Error) {
	ob, buf, ext, e := buildObserver(req)
	if e != nil {
		return nil, e
	}
	tr := telemetry.FromContext(ctx)
	sp := tr.Start("replay")
	sp.SetAttr("obs", req.Obs)
	res, err := s.suite.ObserveReplayConfig(ctx, name, cfg, budget, ob)
	sp.End()
	if err != nil {
		return nil, classify(err)
	}
	art, e := s.emitArtifact(ctx, req.Obs, ext, name, cfg, key, buf.Bytes())
	if e != nil {
		return nil, e
	}
	if s.manifestDirs() != nil {
		msp := tr.Start("manifest")
		s.writeManifest(key, name, cfg, budget, res)
		msp.End()
	}
	if s.cfg.ManifestDir != "" {
		art.Manifest = filepath.Join(s.cfg.ManifestDir,
			fmt.Sprintf("%s-%s-%s.json", name, cfg.Mode, key[:12]))
	}
	return &RunResponse{
		Key:      key,
		Workload: name,
		Mode:     cfg.Mode.String(),
		Insts:    budget,
		Engine:   core.EngineVersion(),
		IPC:      res.Stats.IPC(),
		Stats:    res.Stats,
		Artifact: art,
	}, nil
}

// buildObserver maps a request's obs field onto a buffered
// obs.Observer: exactly one stream is wired per request, so the
// artifact is a single well-defined file.
func buildObserver(req *RunRequest) (*obs.Observer, *bytes.Buffer, string, *Error) {
	buf := &bytes.Buffer{}
	switch req.Obs {
	case "pipeview":
		return &obs.Observer{PipeView: buf}, buf, "pipeview", nil
	case "events":
		return &obs.Observer{Events: buf}, buf, "events.ndjson", nil
	case "interval":
		interval := req.ObsInterval
		if interval == 0 {
			interval = obsDefaultInterval
		}
		return &obs.Observer{Metrics: buf, SampleEvery: interval}, buf, "intervals.csv", nil
	default:
		return nil, nil, "", &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown obs kind %q (want pipeview, events or interval)", req.Obs)}
	}
}

// emitArtifact packages a captured obs stream: a server-side file under
// ArtifactDir when configured, an inline base64 payload otherwise. The
// SHA-256 of the raw bytes rides along either way so clients can check
// replay determinism against a local heliossim run without downloading.
func (s *Server) emitArtifact(ctx context.Context, kind, ext, name string, cfg ooo.Config, key string, data []byte) (*Artifact, *Error) {
	sp := telemetry.FromContext(ctx).Start("artifact")
	sp.SetAttr("kind", kind)
	sp.SetInt("bytes", int64(len(data)))
	defer sp.End()
	sum := sha256.Sum256(data)
	art := &Artifact{
		Kind:   kind,
		Bytes:  len(data),
		SHA256: hex.EncodeToString(sum[:]),
	}
	if s.cfg.ArtifactDir == "" {
		art.Encoding = "base64"
		art.Data = base64.StdEncoding.EncodeToString(data)
		return art, nil
	}
	art.Encoding = "file"
	path := filepath.Join(s.cfg.ArtifactDir, fmt.Sprintf("%s-%s-%s.%s", name, cfg.Mode, key[:12], ext))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, &Error{Kind: ErrInternal, Msg: "write artifact: " + err.Error()}
	}
	art.Path = path
	return art, nil
}

// manifestDirs lists the directories a completed run's manifest lands
// in: ManifestDir (the operator-facing archive) and CacheDir (the
// warm-start index the next boot scans), deduplicated.
func (s *Server) manifestDirs() []string {
	var dirs []string
	if s.cfg.ManifestDir != "" {
		dirs = append(dirs, s.cfg.ManifestDir)
	}
	if s.cfg.CacheDir != "" && s.cfg.CacheDir != s.cfg.ManifestDir {
		dirs = append(dirs, s.cfg.CacheDir)
	}
	return dirs
}

// writeManifest records one completed run in the manifest directories,
// stamped with the cache identity (ResultKey/Budget/Engine) warmCache
// verifies on the next boot. Manifest failures are telemetry, not
// request failures: the result is already computed and correct.
func (s *Server) writeManifest(key, name string, cfg ooo.Config, budget uint64, res *core.Result) {
	m := report.NewManifest(name, cfg.Mode, cfg, res.Stats)
	m.ResultKey = key
	m.Budget = budget
	m.Engine = core.EngineVersion()
	fname := fmt.Sprintf("%s-%s-%s.json", name, cfg.Mode, key[:12])
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, dir := range s.manifestDirs() {
		path := filepath.Join(dir, fname)
		if err := m.WriteFile(path); err != nil {
			s.c.ManifestErrors++
			s.logf("serve: manifest %s: %v", path, err)
			continue
		}
		s.c.ManifestsWritten++
	}
}

// resolveMatrix validates a workload×mode matrix and returns the
// scheduler cells in request order.
func (s *Server) resolveMatrix(names, modeNames []string, budget uint64) ([]core.Cell, *Error) {
	if len(names) == 0 {
		return nil, &Error{Kind: ErrBadRequest, Msg: "workloads list is empty"}
	}
	var modes []fusion.Mode
	if len(modeNames) == 0 {
		modes = fusion.Modes
	} else {
		for _, mn := range modeNames {
			m, ok := fusion.ModeByName(mn)
			if !ok {
				return nil, &Error{Kind: ErrBadRequest,
					Msg: fmt.Sprintf("unknown fusion mode %q (want one of %v)", mn, fusion.Modes)}
			}
			modes = append(modes, m)
		}
	}
	cells := make([]core.Cell, 0, len(names)*len(modes))
	for _, n := range names {
		if _, ok := workloads.ByName(n); !ok {
			return nil, &Error{Kind: ErrBadRequest,
				Msg: fmt.Sprintf("unknown workload %q (GET /v1/workloads lists them)", n)}
		}
		for _, m := range modes {
			cells = append(cells, core.Cell{Workload: n, Mode: m, Budget: budget})
		}
	}
	return cells, nil
}

func (s *Server) handleSuite(ctx0 context.Context, r *http.Request) (any, *Error) {
	var req SuiteRequest
	if e := decodeJSON(r, &req); e != nil {
		return nil, e
	}
	cells, e := s.resolveMatrix(req.Workloads, req.Modes, req.Insts)
	if e != nil {
		return nil, e
	}
	ctx, cancel := s.reqCtx(ctx0, req.DeadlineMs)
	defer cancel()

	out := s.suite.RunCells(ctx, cells, s.cfg.SuiteWorkers)
	resp := &SuiteResponse{Engine: core.EngineVersion(), Budget: req.Insts}
	for _, cr := range out {
		cell := SuiteCell{Workload: cr.Cell.Workload, Mode: cr.Cell.Mode.String()}
		if cr.Err != nil {
			cell.Error = classify(cr.Err)
		} else {
			cell.IPC = cr.Result.Stats.IPC()
			cell.Cycles = cr.Result.Stats.Cycles
			cell.Insts = cr.Result.Stats.CommittedInsts
		}
		resp.Cells = append(resp.Cells, cell)
	}
	return resp, nil
}

func (s *Server) handleDiff(ctx0 context.Context, r *http.Request) (any, *Error) {
	var req DiffRequest
	if e := decodeJSON(r, &req); e != nil {
		return nil, e
	}
	base, ok := fusion.ModeByName(req.BaselineMode)
	if !ok {
		return nil, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown baseline mode %q", req.BaselineMode)}
	}
	target, ok := fusion.ModeByName(req.TargetMode)
	if !ok {
		return nil, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown target mode %q", req.TargetMode)}
	}
	cells, e := s.resolveMatrix(req.Workloads, []string{base.String(), target.String()}, req.Insts)
	if e != nil {
		return nil, e
	}
	ctx, cancel := s.reqCtx(ctx0, req.DeadlineMs)
	defer cancel()

	out := s.suite.RunCells(ctx, cells, s.cfg.SuiteWorkers)
	var baseMs, targetMs []*report.Manifest
	for _, cr := range out {
		if cr.Err != nil {
			return nil, classify(cr.Err) // a diff over partial results would be quietly wrong
		}
		m := report.NewManifest(cr.Cell.Workload, cr.Cell.Mode,
			ooo.DefaultConfig(cr.Cell.Mode), cr.Result.Stats)
		if cr.Cell.Mode == base {
			baseMs = append(baseMs, m)
		} else {
			targetMs = append(targetMs, m)
		}
	}
	d := report.NewDiff(base.String(), baseMs, target.String(), targetMs)
	md, err := d.Markdown()
	if err != nil {
		return nil, classify(err)
	}
	return &DiffResponse{Engine: core.EngineVersion(), Markdown: md, CSV: d.CSV()}, nil
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Name     string `json:"name"`
		Insts    uint64 `json:"insts"`
		PaperRef string `json:"paper_ref"`
	}
	var rows []row
	for _, wl := range workloads.All() {
		rows = append(rows, row{wl.Name, wl.MaxInsts, wl.PaperRef})
	}
	writeJSON(w, http.StatusOK, rows)
}

// health is the body shared by /healthz and /readyz: queue and cache
// state at a glance.
type health struct {
	Status        string `json:"status"`
	Engine        string `json:"engine"`
	Draining      bool   `json:"draining"`
	Inflight      int    `json:"inflight"`
	QueueDepth    int    `json:"queue_depth"`
	CacheEntries  int    `json:"cache_entries"`
	LiveFallbacks uint64 `json:"live_fallbacks"`
}

func (s *Server) healthSnapshot() health {
	entries, _, _, _ := s.cache.stats()
	lf := s.suite.Metrics().LiveFallbacks
	s.mu.Lock()
	defer s.mu.Unlock()
	return health{
		Status:        "ok",
		Engine:        core.EngineVersion(),
		Draining:      s.draining,
		Inflight:      s.inflight,
		QueueDepth:    s.cfg.QueueDepth,
		CacheEntries:  entries,
		LiveFallbacks: lf,
	}
}

// handleHealthz is liveness: the process is up and the mux responds.
// Always 200 — a draining server is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz is readiness: 503 while draining or while the admission
// queue is saturated, so load balancers steer traffic away before
// requests start bouncing off the queue.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.healthSnapshot()
	status := http.StatusOK
	switch {
	case h.Draining:
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case h.Inflight >= h.QueueDepth:
		h.Status = "saturated"
		status = http.StatusServiceUnavailable
	default:
		h.Status = "ready"
	}
	writeJSON(w, status, h)
}

// HistSummary is the JSON rendering of a latency histogram: count,
// mean and the P50/P95/P99 percentiles, all in the histogram's base
// unit (microseconds for heliosd). Both /metricz forms derive from the
// same stats.Histogram, so JSON percentiles and Prometheus buckets can
// never disagree about the underlying distribution.
type HistSummary struct {
	Count uint64 `json:"count"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
}

func summarize(h stats.Histogram) HistSummary {
	return HistSummary{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
	}
}

// metricsSnapshot is one consistent read of every counter surface the
// two /metricz renderings share.
type metricsSnapshot struct {
	draining       bool
	inflight       int
	maxInflight    int
	queueDepth     int
	c              Counters
	latency        stats.Histogram
	cacheEntries   int
	cacheHits      uint64
	cacheMisses    uint64
	cacheCoalesced uint64
	batches        uint64
	batched        uint64
	maxBatch       uint64
	suite          core.Metrics
	tracing        telemetry.Metrics
	spanHists      []telemetry.NamedHistogram
	sampling       telemetry.SamplingStats
	spanEx         []telemetry.NamedExemplars
	latencyEx      telemetry.ExemplarSet
	warmEntries    int
}

func (s *Server) snapshotMetrics() metricsSnapshot {
	var snap metricsSnapshot
	snap.cacheEntries, snap.cacheHits, snap.cacheMisses, snap.cacheCoalesced = s.cache.stats()
	snap.batches, snap.batched, snap.maxBatch = s.batch.stats()
	snap.suite = s.suite.Metrics()
	snap.tracing = s.tel.Metrics()
	snap.spanHists = s.tel.Histograms()
	snap.sampling = s.tel.Sampling()
	snap.spanEx = s.tel.SpanExemplars()
	snap.warmEntries = s.warmEntries
	s.mu.Lock()
	snap.draining = s.draining
	snap.inflight = s.inflight
	snap.maxInflight = s.maxInflight
	snap.queueDepth = s.cfg.QueueDepth
	snap.c = s.c
	snap.latency = s.latency
	snap.latencyEx = s.latencyEx
	s.mu.Unlock()
	return snap
}

// samplingJSON is the /metricz JSON rendering of the sampler's ledger.
type samplingJSON struct {
	Kept            uint64            `json:"kept"`
	Dropped         uint64            `json:"dropped"`
	Retained        int               `json:"retained"`
	KeptByPolicy    map[string]uint64 `json:"kept_by_policy,omitempty"`
	EvictedByPolicy map[string]uint64 `json:"evicted_by_policy,omitempty"`
}

func policyMap(rows []telemetry.PolicyCount) map[string]uint64 {
	if len(rows) == 0 {
		return nil
	}
	m := make(map[string]uint64, len(rows))
	for _, r := range rows {
		m[r.Policy] = r.Count
	}
	return m
}

// handleMetricz content-negotiates the metrics surface via
// negotiateMetrics (see its doc comment for the full precedence): the
// structured JSON document by default, Prometheus text 0.0.4 for
// classic scrapers, OpenMetrics 1.0.0 — with trace exemplars on the
// histogram buckets when telemetry is on — for clients that ask for it.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	format, fe := negotiateMetrics(r.URL.Query().Get("format"), r.Header.Get("Accept"))
	if fe != nil {
		writeError(w, fe)
		return
	}
	snap := s.snapshotMetrics()
	if format != formatJSON {
		s.writeProm(w, snap, format == formatOM)
		return
	}
	payload := struct {
		Engine      string   `json:"engine"`
		Draining    bool     `json:"draining"`
		Inflight    int      `json:"inflight"`
		MaxInflight int      `json:"max_inflight"`
		QueueDepth  int      `json:"queue_depth"`
		Server      Counters `json:"server"`
		Cache       struct {
			Entries     int    `json:"entries"`
			WarmEntries int    `json:"warm_entries"`
			Hits        uint64 `json:"hits"`
			Misses      uint64 `json:"misses"`
			Coalesced   uint64 `json:"coalesced"`
		} `json:"cache"`
		Batch struct {
			Batches  uint64 `json:"batches"`
			Requests uint64 `json:"requests"`
			MaxBatch uint64 `json:"max_batch"`
		} `json:"batch"`
		Suite struct {
			TraceMisses   uint64 `json:"trace_misses"`
			TraceHits     uint64 `json:"trace_hits"`
			Replays       uint64 `json:"replays"`
			PipelineRuns  uint64 `json:"pipeline_runs"`
			DedupedRuns   uint64 `json:"deduped_runs"`
			LiveFallbacks uint64 `json:"live_fallbacks"`
		} `json:"suite"`
		LatencyUs HistSummary            `json:"latency_us"`
		Spans     map[string]HistSummary `json:"spans,omitempty"`
		Tracing   *telemetry.Metrics     `json:"tracing,omitempty"`
		Sampling  *samplingJSON          `json:"sampling,omitempty"`
	}{
		Engine:      core.EngineVersion(),
		Draining:    snap.draining,
		Inflight:    snap.inflight,
		MaxInflight: snap.maxInflight,
		QueueDepth:  snap.queueDepth,
		Server:      snap.c,
		LatencyUs:   summarize(snap.latency),
	}
	payload.Cache.Entries = snap.cacheEntries
	payload.Cache.WarmEntries = snap.warmEntries
	payload.Cache.Hits = snap.cacheHits
	payload.Cache.Misses = snap.cacheMisses
	payload.Cache.Coalesced = snap.cacheCoalesced
	payload.Batch.Batches = snap.batches
	payload.Batch.Requests = snap.batched
	payload.Batch.MaxBatch = snap.maxBatch
	payload.Suite.TraceMisses = snap.suite.TraceMisses
	payload.Suite.TraceHits = snap.suite.TraceHits
	payload.Suite.Replays = snap.suite.Replays
	payload.Suite.PipelineRuns = snap.suite.PipelineRuns
	payload.Suite.DedupedRuns = snap.suite.DedupedRuns
	payload.Suite.LiveFallbacks = snap.suite.LiveFallbacks
	if s.tel != nil {
		payload.Tracing = &snap.tracing
		payload.Sampling = &samplingJSON{
			Kept:            snap.tracing.SampledKept,
			Dropped:         snap.tracing.SampledDropped,
			Retained:        snap.sampling.Retained,
			KeptByPolicy:    policyMap(snap.sampling.KeptByPolicy),
			EvictedByPolicy: policyMap(snap.sampling.EvictedByPolicy),
		}
		if len(snap.spanHists) > 0 {
			payload.Spans = make(map[string]HistSummary, len(snap.spanHists))
			for _, nh := range snap.spanHists {
				payload.Spans[nh.Name] = summarize(nh.Hist)
			}
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

// writeProm renders the snapshot as Prometheus exposition 0.0.4 or,
// when om is set, OpenMetrics 1.0.0 with trace exemplars on the
// histogram buckets. The name scheme follows the convention in
// DESIGN.md §16: heliosd_ prefix, _total suffix on counters, base units
// spelled out in the name. Both dialects pass telemetry's linter —
// CI's telemetry-smoke job asserts exactly that, and in OpenMetrics
// mode additionally that every exemplar resolves via /tracez.
func (s *Server) writeProm(w http.ResponseWriter, snap metricsSnapshot, om bool) {
	var p *telemetry.PromWriter
	if om {
		w.Header().Set("Content-Type", telemetry.OpenMetricsContentType)
		p = telemetry.NewOpenMetricsWriter(w)
	} else {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		p = telemetry.NewPromWriter(w)
	}
	p.Counter("heliosd_requests_admitted_total", "Requests admitted past the bounded queue.", snap.c.Admitted)
	p.CounterVec("heliosd_requests_rejected_total", "Requests refused at admission, by reason.", []telemetry.LabeledValue{
		{Labels: []telemetry.Label{{Name: "reason", Value: "overload"}}, Value: snap.c.RejectedOverload},
		{Labels: []telemetry.Label{{Name: "reason", Value: "draining"}}, Value: snap.c.RejectedDraining},
	})
	p.CounterVec("heliosd_requests_failed_total", "Admitted requests that failed, by error kind.", []telemetry.LabeledValue{
		{Labels: []telemetry.Label{{Name: "kind", Value: "bad_request"}}, Value: snap.c.BadRequests},
		{Labels: []telemetry.Label{{Name: "kind", Value: "oversized"}}, Value: snap.c.Oversized},
		{Labels: []telemetry.Label{{Name: "kind", Value: "deadline"}}, Value: snap.c.DeadlineExpired},
		{Labels: []telemetry.Label{{Name: "kind", Value: "canceled"}}, Value: snap.c.Canceled},
		{Labels: []telemetry.Label{{Name: "kind", Value: "engine_fault"}}, Value: snap.c.EngineFaults},
	})
	p.Counter("heliosd_requests_completed_total", "Requests that returned 200.", snap.c.Completed)
	p.Counter("heliosd_panics_recovered_total", "Handler panics converted to structured 500s.", snap.c.PanicsRecovered)
	p.Counter("heliosd_manifests_written_total", "Per-run manifests written.", snap.c.ManifestsWritten)
	p.Counter("heliosd_manifest_errors_total", "Manifest writes that failed.", snap.c.ManifestErrors)
	p.Gauge("heliosd_draining", "1 while the server refuses new work.", b2f(snap.draining))
	p.Gauge("heliosd_inflight_requests", "Requests currently admitted.", float64(snap.inflight))
	p.Gauge("heliosd_inflight_requests_max", "Admission high-water mark.", float64(snap.maxInflight))
	p.Gauge("heliosd_queue_depth", "Configured admission bound.", float64(snap.queueDepth))
	p.Gauge("heliosd_cache_entries", "Content-addressed results resident.", float64(snap.cacheEntries))
	p.Gauge("heliosd_cache_warm_entries", "Results restored from the cache directory at boot.", float64(snap.warmEntries))
	p.Counter("heliosd_cache_hits_total", "Result-cache hits.", snap.cacheHits)
	p.Counter("heliosd_cache_misses_total", "Result-cache misses.", snap.cacheMisses)
	p.Counter("heliosd_cache_coalesced_total", "Requests that waited on an identical in-flight run.", snap.cacheCoalesced)
	p.Counter("heliosd_batches_total", "Micro-batches executed.", snap.batches)
	p.Counter("heliosd_batched_requests_total", "Requests that rode in a micro-batch.", snap.batched)
	p.Gauge("heliosd_batch_size_max", "Largest batch cut so far.", float64(snap.maxBatch))
	p.Counter("heliosd_suite_trace_hits_total", "Record-once trace cache hits.", snap.suite.TraceHits)
	p.Counter("heliosd_suite_trace_misses_total", "Record-once trace cache misses.", snap.suite.TraceMisses)
	p.Counter("heliosd_suite_replays_total", "Replay runs off cached recordings.", snap.suite.Replays)
	p.Counter("heliosd_suite_pipeline_runs_total", "Full pipeline simulations.", snap.suite.PipelineRuns)
	p.Counter("heliosd_suite_deduped_runs_total", "Suite runs deduplicated by singleflight.", snap.suite.DedupedRuns)
	p.Counter("heliosd_suite_live_fallbacks_total", "Corrupt recordings degraded to live re-emulation.", snap.suite.LiveFallbacks)
	// keep filters exemplars to currently retained traces at exposition
	// time, so every emitted trace_id deep-links into /tracez. Nil tel
	// (or 0.0.4 mode) emits no exemplars at all.
	keep := func(id uint64) bool { return s.tel.Retained(id) }
	p.HistogramEx("heliosd_request_duration_microseconds", "Completed-request wall time.",
		snap.latency, telemetry.Exemplars{Set: &snap.latencyEx, Keep: keep})
	if s.tel != nil {
		t := snap.tracing
		p.Counter("heliosd_traces_started_total", "Request traces started.", t.TracesStarted)
		p.Counter("heliosd_traces_finished_total", "Request traces finished.", t.TracesFinished)
		p.Counter("heliosd_spans_started_total", "Spans started.", t.SpansStarted)
		p.Counter("heliosd_spans_ended_total", "Spans ended.", t.SpansEnded)
		p.Counter("heliosd_span_double_ends_total", "Duplicate span Ends (contract violations).", t.SpanDoubleEnds)
		p.Counter("heliosd_spans_dropped_total", "Spans dropped on finished traces.", t.SpansDropped)
		p.Counter("heliosd_trace_ring_evicted_total", "Finished traces evicted from the /tracez ring.", t.RingEvicted)
		p.Counter("heliosd_trace_export_errors_total", "Trace/NDJSON export failures.", t.ExportErrors)
		p.Counter("heliosd_traces_sampled_kept_total", "Finished traces the tail sampler kept.", t.SampledKept)
		p.Counter("heliosd_traces_sampled_dropped_total", "Finished traces the tail sampler dropped.", t.SampledDropped)
		p.CounterVec("heliosd_trace_ring_admitted_total", "Ring admissions by deciding sampling policy.",
			policyRows(snap.sampling.KeptByPolicy))
		p.CounterVec("heliosd_trace_ring_evictions_total", "Ring evictions by the evicted trace's admitting policy.",
			policyRows(snap.sampling.EvictedByPolicy))
		p.Gauge("heliosd_trace_ring_retained", "Finished traces currently retained for /tracez.", float64(snap.sampling.Retained))
		if len(snap.spanHists) > 0 {
			exByName := make(map[string]*telemetry.ExemplarSet, len(snap.spanEx))
			for i := range snap.spanEx {
				exByName[snap.spanEx[i].Name] = &snap.spanEx[i].Set
			}
			series := make([]telemetry.LabeledHist, 0, len(snap.spanHists))
			for _, nh := range snap.spanHists {
				series = append(series, telemetry.LabeledHist{
					Labels: []telemetry.Label{{Name: "span", Value: nh.Name}},
					Hist:   nh.Hist,
					Ex:     telemetry.Exemplars{Set: exByName[nh.Name], Keep: keep},
				})
			}
			p.HistogramVec("heliosd_span_duration_microseconds", "Span wall time, labeled by span name.", series)
		}
	}
	p.Close()
	if err := p.Err(); err != nil {
		s.logf("serve: prometheus exposition: %v", err)
	}
}

// policyRows renders per-policy sampling counts as labeled samples,
// already sorted by policy name (Tracer.Sampling guarantees it).
func policyRows(rows []telemetry.PolicyCount) []telemetry.LabeledValue {
	out := make([]telemetry.LabeledValue, 0, len(rows))
	for _, r := range rows {
		out = append(out, telemetry.LabeledValue{
			Labels: []telemetry.Label{{Name: "policy", Value: r.Policy}},
			Value:  r.Count,
		})
	}
	return out
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// handleTracez serves the tracer's retained ring of finished request
// traces as one Chrome trace-event JSON document — load it straight
// into Perfetto. `?id=N` narrows to one retained trace (the deep link
// /metricz exemplars and flight-recorder entries carry), with a typed
// 404 when the id is not retained — dropped, evicted, or never issued.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeError(w, &Error{Kind: ErrBadRequest,
			Msg: "telemetry disabled (start heliosd with -telemetry)"})
		return
	}
	traces := s.tel.Finished()
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			writeError(w, &Error{Kind: ErrBadRequest, Msg: "bad trace id: " + err.Error()})
			return
		}
		ti, ok := s.tel.Find(id)
		if !ok {
			writeError(w, &Error{Kind: ErrNotFound,
				Msg: fmt.Sprintf("trace %d is not retained (dropped by the sampler, evicted, or never issued)", id)})
			return
		}
		traces = []telemetry.TraceInfo{ti}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.WriteChromeTrace(w, traces); err != nil {
		s.logf("serve: tracez export: %v", err)
	}
}

// decodeJSON parses a request body strictly: unknown fields, trailing
// garbage and oversized bodies are typed errors.
func decodeJSON(r *http.Request, v any) *Error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &Error{Kind: ErrOversized,
				Msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return &Error{Kind: ErrBadRequest, Msg: "malformed request: " + err.Error()}
	}
	if dec.More() {
		return &Error{Kind: ErrBadRequest, Msg: "trailing data after JSON body"}
	}
	return nil
}

// writeJSON marshals first and writes once, so a marshal failure can
// still produce a well-formed error response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, &Error{Kind: ErrInternal, Msg: "encode response: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError renders a typed error with its HTTP mapping and, for
// retryable kinds, the standard Retry-After header (whole seconds,
// rounded up) alongside the precise retry_after_ms in the body.
func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterMs > 0 {
		secs := (e.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	w.WriteHeader(e.HTTPStatus())
	b, err := json.Marshal(e)
	if err != nil { // Error is plain data; cannot happen
		fmt.Fprintf(w, `{"kind":%q,"msg":"error encoding failed"}`, e.Kind)
		return
	}
	w.Write(append(b, '\n'))
}
