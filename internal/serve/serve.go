package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/report"
	"helios/internal/stats"
	"helios/internal/workloads"
)

// Config tunes the service's robustness envelope. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// QueueDepth bounds concurrently admitted requests — the admission
	// queue. Request QueueDepth+1 is rejected with a typed 429.
	QueueDepth int
	// DefaultDeadline applies when a request carries no deadline_ms;
	// MaxDeadline clamps client-supplied deadlines.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the backoff hint attached to overload/draining
	// rejections.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies; larger bodies get a typed 413.
	MaxBodyBytes int64
	// MaxBatch / BatchWait bound the micro-batcher: a pending batch is
	// cut at MaxBatch requests or BatchWait after its first request.
	MaxBatch  int
	BatchWait time.Duration
	// DefaultInsts is the instruction budget when a request sends none
	// (0 = each workload's own budget).
	DefaultInsts uint64
	// SuiteWorkers bounds the suite endpoint's scheduler fan-out
	// (0 = GOMAXPROCS).
	SuiteWorkers int
	// ManifestDir, when set, receives a per-request JSON manifest
	// (config + stats + build identity) for every completed /v1/run.
	ManifestDir string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		QueueDepth:      64,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     2 * time.Minute,
		RetryAfter:      500 * time.Millisecond,
		MaxBodyBytes:    1 << 20,
		MaxBatch:        8,
		BatchWait:       2 * time.Millisecond,
	}
}

// Counters is the server's cumulative request telemetry, exposed by
// /metricz and the smoke tooling. All fields are monotonic.
type Counters struct {
	Admitted         uint64 `json:"admitted"`
	RejectedOverload uint64 `json:"rejected_overload"`
	RejectedDraining uint64 `json:"rejected_draining"`
	BadRequests      uint64 `json:"bad_requests"`
	Oversized        uint64 `json:"oversized"`
	DeadlineExpired  uint64 `json:"deadline_expired"`
	Canceled         uint64 `json:"canceled"`
	EngineFaults     uint64 `json:"engine_faults"`
	PanicsRecovered  uint64 `json:"panics_recovered"`
	Completed        uint64 `json:"completed"`
	ManifestsWritten uint64 `json:"manifests_written"`
	ManifestErrors   uint64 `json:"manifest_errors"`
}

// Server is the heliosd service core: it owns the suite (record-once
// cache + scheduler), the content-addressed result cache, the
// micro-batcher and the robustness envelope. It is transport-agnostic —
// Handler returns the http.Handler; the cmd owns the listener.
type Server struct {
	cfg     Config
	suite   *core.Suite
	cache   *resultCache
	batch   *batcher
	baseCtx context.Context

	wg sync.WaitGroup

	mu          sync.Mutex
	draining    bool
	inflight    int
	maxInflight int
	c           Counters
	latency     stats.Histogram // completed-request wall time, microseconds
}

// New builds a server rooted at ctx: the context bounds background work
// (the batcher's shared record phases) and should be the process root.
func New(ctx context.Context, cfg Config) *Server {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	suite := core.NewSuite(cfg.DefaultInsts)
	return &Server{
		cfg:     cfg,
		suite:   suite,
		cache:   newResultCache(),
		batch:   newBatcher(ctx, suite, cfg.MaxBatch, cfg.BatchWait),
		baseCtx: ctx,
	}
}

// Suite exposes the underlying record/replay cache — the chaos soak
// seeds poisoned recordings through it, and cmds surface its metrics.
func (s *Server) Suite() *core.Suite { return s.suite }

// MaxInflight reports the admission high-water mark; the soak test
// asserts it never exceeds QueueDepth.
func (s *Server) MaxInflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxInflight
}

// Counters snapshots the request telemetry.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the service's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.api(s.handleRun))
	mux.HandleFunc("POST /v1/suite", s.api(s.handleSuite))
	mux.HandleFunc("POST /v1/diff", s.api(s.handleDiff))
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	return mux
}

// Drain stops admission (new API requests get a typed 503) and waits
// for every in-flight request to finish or ctx to expire. Manifests are
// written synchronously inside each request, so a nil return means all
// results and manifests reached their destinations.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("serve: drain deadline expired with %d request(s) in flight: %w", n, ctx.Err())
	}
}

// api wraps an endpoint with the robustness envelope, outermost first:
// panic isolation (a handler or engine fault becomes a structured 500,
// never process death), drain refusal, bounded admission, body limit,
// and error classification.
func (s *Server) api(h func(ctx context.Context, r *http.Request) (any, *Error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.mu.Lock()
				s.c.PanicsRecovered++
				s.mu.Unlock()
				writeError(w, &Error{Kind: ErrInternal,
					Msg: fmt.Sprintf("recovered handler panic: %v", rec)})
			}
		}()
		if e := s.admitOne(); e != nil {
			writeError(w, e)
			return
		}
		t0 := time.Now()
		defer s.releaseOne(t0)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		resp, e := h(r.Context(), r)
		if e != nil {
			s.noteError(e)
			writeError(w, e)
			return
		}
		s.mu.Lock()
		s.c.Completed++
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
	}
}

// admitOne is the bounded admission queue: it refuses drains and
// overload under one lock so the inflight count can never exceed
// QueueDepth, and registers the request with the drain group.
func (s *Server) admitOne() *Error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.c.RejectedDraining++
		return &Error{Kind: ErrDraining, Msg: "server is draining",
			RetryAfterMs: s.cfg.RetryAfter.Milliseconds()}
	}
	if s.inflight >= s.cfg.QueueDepth {
		s.c.RejectedOverload++
		return &Error{Kind: ErrOverload,
			Msg:          fmt.Sprintf("admission queue full (%d in flight)", s.inflight),
			RetryAfterMs: s.cfg.RetryAfter.Milliseconds()}
	}
	s.inflight++
	if s.inflight > s.maxInflight {
		s.maxInflight = s.inflight
	}
	s.c.Admitted++
	s.wg.Add(1)
	return nil
}

func (s *Server) releaseOne(t0 time.Time) {
	us := time.Since(t0).Microseconds()
	s.mu.Lock()
	s.inflight--
	s.latency.Observe(uint64(us))
	s.mu.Unlock()
	s.wg.Done()
}

// noteError counts a classified failure.
func (s *Server) noteError(e *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case ErrBadRequest:
		s.c.BadRequests++
	case ErrOversized:
		s.c.Oversized++
	case ErrDeadline:
		s.c.DeadlineExpired++
	case ErrCanceled:
		s.c.Canceled++
	case ErrEngine:
		s.c.EngineFaults++
	}
}

// reqCtx derives the request's deadline context: client-supplied
// deadline_ms, clamped to MaxDeadline, defaulting to DefaultDeadline.
func (s *Server) reqCtx(ctx context.Context, deadlineMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMs > 0 {
		d = time.Duration(deadlineMs) * time.Millisecond
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// classify maps an engine/context failure onto the error taxonomy.
func classify(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &Error{Kind: ErrDeadline, Msg: "deadline expired before the simulation finished; partial work cancelled"}
	}
	if errors.Is(err, context.Canceled) {
		return &Error{Kind: ErrCanceled, Msg: "request cancelled"}
	}
	var se *ooo.SimError
	if errors.As(err, &se) {
		return &Error{Kind: ErrEngine, Msg: err.Error(), Engine: se.JSON()}
	}
	return &Error{Kind: ErrInternal, Msg: err.Error()}
}

// resolveRun turns a RunRequest into a fully resolved (name, config,
// budget) triple, validating every axis against the registered
// workloads and the paper's fusion modes.
func (s *Server) resolveRun(req *RunRequest) (name string, cfg ooo.Config, budget uint64, custom bool, e *Error) {
	wl, ok := workloads.ByName(req.Workload)
	if !ok {
		return "", cfg, 0, false, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown workload %q (GET /v1/workloads lists them)", req.Workload)}
	}
	budget = req.Insts
	if budget == 0 {
		budget = s.cfg.DefaultInsts
	}
	if budget == 0 {
		budget = wl.MaxInsts
	}
	if req.Config != nil {
		if req.Mode != "" && req.Mode != req.Config.Mode.String() {
			return "", cfg, 0, false, &Error{Kind: ErrBadRequest,
				Msg: fmt.Sprintf("mode %q conflicts with config.Mode %q", req.Mode, req.Config.Mode)}
		}
		return wl.Name, *req.Config, budget, true, nil
	}
	modeName := req.Mode
	if modeName == "" {
		modeName = fusion.ModeHelios.String()
	}
	mode, ok := fusion.ModeByName(modeName)
	if !ok {
		return "", cfg, 0, false, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown fusion mode %q (want one of %v)", modeName, fusion.Modes)}
	}
	return wl.Name, ooo.DefaultConfig(mode), budget, false, nil
}

func (s *Server) handleRun(ctx0 context.Context, r *http.Request) (any, *Error) {
	var req RunRequest
	if e := decodeJSON(r, &req); e != nil {
		return nil, e
	}
	name, cfg, budget, custom, e := s.resolveRun(&req)
	if e != nil {
		return nil, e
	}
	key, err := resultKey(name, cfg, budget, core.EngineVersion())
	if err != nil {
		return nil, classify(err)
	}
	ctx, cancel := s.reqCtx(ctx0, req.DeadlineMs)
	defer cancel()

	batchSize := 0
	res, cached, coalesced, err := s.cache.do(ctx, key, func() (*core.Result, error) {
		rr, n, rerr := s.batch.submit(ctx, name, budget, cfg, custom)
		batchSize = n
		return rr, rerr
	})
	if err != nil {
		return nil, classify(err)
	}
	if s.cfg.ManifestDir != "" && !cached {
		s.writeManifest(key, name, cfg, res)
	}
	return &RunResponse{
		Key:       key,
		Workload:  name,
		Mode:      cfg.Mode.String(),
		Insts:     budget,
		Engine:    core.EngineVersion(),
		Cached:    cached,
		Coalesced: coalesced,
		BatchSize: batchSize,
		IPC:       res.Stats.IPC(),
		Stats:     res.Stats,
	}, nil
}

// writeManifest records one completed run in the manifest directory.
// Manifest failures are telemetry, not request failures: the result is
// already computed and correct.
func (s *Server) writeManifest(key, name string, cfg ooo.Config, res *core.Result) {
	m := report.NewManifest(name, cfg.Mode, cfg, res.Stats)
	path := filepath.Join(s.cfg.ManifestDir, fmt.Sprintf("%s-%s-%s.json", name, cfg.Mode, key[:12]))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := m.WriteFile(path); err != nil {
		s.c.ManifestErrors++
		s.logf("serve: manifest %s: %v", path, err)
		return
	}
	s.c.ManifestsWritten++
}

// resolveMatrix validates a workload×mode matrix and returns the
// scheduler cells in request order.
func (s *Server) resolveMatrix(names, modeNames []string, budget uint64) ([]core.Cell, *Error) {
	if len(names) == 0 {
		return nil, &Error{Kind: ErrBadRequest, Msg: "workloads list is empty"}
	}
	var modes []fusion.Mode
	if len(modeNames) == 0 {
		modes = fusion.Modes
	} else {
		for _, mn := range modeNames {
			m, ok := fusion.ModeByName(mn)
			if !ok {
				return nil, &Error{Kind: ErrBadRequest,
					Msg: fmt.Sprintf("unknown fusion mode %q (want one of %v)", mn, fusion.Modes)}
			}
			modes = append(modes, m)
		}
	}
	cells := make([]core.Cell, 0, len(names)*len(modes))
	for _, n := range names {
		if _, ok := workloads.ByName(n); !ok {
			return nil, &Error{Kind: ErrBadRequest,
				Msg: fmt.Sprintf("unknown workload %q (GET /v1/workloads lists them)", n)}
		}
		for _, m := range modes {
			cells = append(cells, core.Cell{Workload: n, Mode: m, Budget: budget})
		}
	}
	return cells, nil
}

func (s *Server) handleSuite(ctx0 context.Context, r *http.Request) (any, *Error) {
	var req SuiteRequest
	if e := decodeJSON(r, &req); e != nil {
		return nil, e
	}
	cells, e := s.resolveMatrix(req.Workloads, req.Modes, req.Insts)
	if e != nil {
		return nil, e
	}
	ctx, cancel := s.reqCtx(ctx0, req.DeadlineMs)
	defer cancel()

	out := s.suite.RunCells(ctx, cells, s.cfg.SuiteWorkers)
	resp := &SuiteResponse{Engine: core.EngineVersion(), Budget: req.Insts}
	for _, cr := range out {
		cell := SuiteCell{Workload: cr.Cell.Workload, Mode: cr.Cell.Mode.String()}
		if cr.Err != nil {
			cell.Error = classify(cr.Err)
		} else {
			cell.IPC = cr.Result.Stats.IPC()
			cell.Cycles = cr.Result.Stats.Cycles
			cell.Insts = cr.Result.Stats.CommittedInsts
		}
		resp.Cells = append(resp.Cells, cell)
	}
	return resp, nil
}

func (s *Server) handleDiff(ctx0 context.Context, r *http.Request) (any, *Error) {
	var req DiffRequest
	if e := decodeJSON(r, &req); e != nil {
		return nil, e
	}
	base, ok := fusion.ModeByName(req.BaselineMode)
	if !ok {
		return nil, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown baseline mode %q", req.BaselineMode)}
	}
	target, ok := fusion.ModeByName(req.TargetMode)
	if !ok {
		return nil, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown target mode %q", req.TargetMode)}
	}
	cells, e := s.resolveMatrix(req.Workloads, []string{base.String(), target.String()}, req.Insts)
	if e != nil {
		return nil, e
	}
	ctx, cancel := s.reqCtx(ctx0, req.DeadlineMs)
	defer cancel()

	out := s.suite.RunCells(ctx, cells, s.cfg.SuiteWorkers)
	var baseMs, targetMs []*report.Manifest
	for _, cr := range out {
		if cr.Err != nil {
			return nil, classify(cr.Err) // a diff over partial results would be quietly wrong
		}
		m := report.NewManifest(cr.Cell.Workload, cr.Cell.Mode,
			ooo.DefaultConfig(cr.Cell.Mode), cr.Result.Stats)
		if cr.Cell.Mode == base {
			baseMs = append(baseMs, m)
		} else {
			targetMs = append(targetMs, m)
		}
	}
	d := report.NewDiff(base.String(), baseMs, target.String(), targetMs)
	md, err := d.Markdown()
	if err != nil {
		return nil, classify(err)
	}
	return &DiffResponse{Engine: core.EngineVersion(), Markdown: md, CSV: d.CSV()}, nil
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Name     string `json:"name"`
		Insts    uint64 `json:"insts"`
		PaperRef string `json:"paper_ref"`
	}
	var rows []row
	for _, wl := range workloads.All() {
		rows = append(rows, row{wl.Name, wl.MaxInsts, wl.PaperRef})
	}
	writeJSON(w, http.StatusOK, rows)
}

// health is the body shared by /healthz and /readyz: queue and cache
// state at a glance.
type health struct {
	Status        string `json:"status"`
	Engine        string `json:"engine"`
	Draining      bool   `json:"draining"`
	Inflight      int    `json:"inflight"`
	QueueDepth    int    `json:"queue_depth"`
	CacheEntries  int    `json:"cache_entries"`
	LiveFallbacks uint64 `json:"live_fallbacks"`
}

func (s *Server) healthSnapshot() health {
	entries, _, _, _ := s.cache.stats()
	lf := s.suite.Metrics().LiveFallbacks
	s.mu.Lock()
	defer s.mu.Unlock()
	return health{
		Status:        "ok",
		Engine:        core.EngineVersion(),
		Draining:      s.draining,
		Inflight:      s.inflight,
		QueueDepth:    s.cfg.QueueDepth,
		CacheEntries:  entries,
		LiveFallbacks: lf,
	}
}

// handleHealthz is liveness: the process is up and the mux responds.
// Always 200 — a draining server is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz is readiness: 503 while draining or while the admission
// queue is saturated, so load balancers steer traffic away before
// requests start bouncing off the queue.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.healthSnapshot()
	status := http.StatusOK
	switch {
	case h.Draining:
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case h.Inflight >= h.QueueDepth:
		h.Status = "saturated"
		status = http.StatusServiceUnavailable
	default:
		h.Status = "ready"
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	entries, hits, misses, coalesced := s.cache.stats()
	batches, batched, maxBatch := s.batch.stats()
	sm := s.suite.Metrics()
	s.mu.Lock()
	lat := s.latency
	payload := struct {
		Engine      string   `json:"engine"`
		Draining    bool     `json:"draining"`
		Inflight    int      `json:"inflight"`
		MaxInflight int      `json:"max_inflight"`
		QueueDepth  int      `json:"queue_depth"`
		Server      Counters `json:"server"`
		Cache       struct {
			Entries   int    `json:"entries"`
			Hits      uint64 `json:"hits"`
			Misses    uint64 `json:"misses"`
			Coalesced uint64 `json:"coalesced"`
		} `json:"cache"`
		Batch struct {
			Batches  uint64 `json:"batches"`
			Requests uint64 `json:"requests"`
			MaxBatch uint64 `json:"max_batch"`
		} `json:"batch"`
		Suite struct {
			TraceMisses   uint64 `json:"trace_misses"`
			TraceHits     uint64 `json:"trace_hits"`
			Replays       uint64 `json:"replays"`
			PipelineRuns  uint64 `json:"pipeline_runs"`
			DedupedRuns   uint64 `json:"deduped_runs"`
			LiveFallbacks uint64 `json:"live_fallbacks"`
		} `json:"suite"`
		LatencyUs struct {
			Count uint64 `json:"count"`
			Mean  uint64 `json:"mean"`
			P50   uint64 `json:"p50"`
			P95   uint64 `json:"p95"`
			P99   uint64 `json:"p99"`
		} `json:"latency_us"`
	}{
		Engine:      core.EngineVersion(),
		Draining:    s.draining,
		Inflight:    s.inflight,
		MaxInflight: s.maxInflight,
		QueueDepth:  s.cfg.QueueDepth,
		Server:      s.c,
	}
	s.mu.Unlock()
	payload.Cache.Entries = entries
	payload.Cache.Hits = hits
	payload.Cache.Misses = misses
	payload.Cache.Coalesced = coalesced
	payload.Batch.Batches = batches
	payload.Batch.Requests = batched
	payload.Batch.MaxBatch = maxBatch
	payload.Suite.TraceMisses = sm.TraceMisses
	payload.Suite.TraceHits = sm.TraceHits
	payload.Suite.Replays = sm.Replays
	payload.Suite.PipelineRuns = sm.PipelineRuns
	payload.Suite.DedupedRuns = sm.DedupedRuns
	payload.Suite.LiveFallbacks = sm.LiveFallbacks
	payload.LatencyUs.Count = lat.Count
	payload.LatencyUs.Mean = lat.Mean()
	payload.LatencyUs.P50 = lat.Percentile(50)
	payload.LatencyUs.P95 = lat.Percentile(95)
	payload.LatencyUs.P99 = lat.Percentile(99)
	writeJSON(w, http.StatusOK, payload)
}

// decodeJSON parses a request body strictly: unknown fields, trailing
// garbage and oversized bodies are typed errors.
func decodeJSON(r *http.Request, v any) *Error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &Error{Kind: ErrOversized,
				Msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return &Error{Kind: ErrBadRequest, Msg: "malformed request: " + err.Error()}
	}
	if dec.More() {
		return &Error{Kind: ErrBadRequest, Msg: "trailing data after JSON body"}
	}
	return nil
}

// writeJSON marshals first and writes once, so a marshal failure can
// still produce a well-formed error response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, &Error{Kind: ErrInternal, Msg: "encode response: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError renders a typed error with its HTTP mapping and, for
// retryable kinds, the standard Retry-After header (whole seconds,
// rounded up) alongside the precise retry_after_ms in the body.
func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterMs > 0 {
		secs := (e.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	w.WriteHeader(e.HTTPStatus())
	b, err := json.Marshal(e)
	if err != nil { // Error is plain data; cannot happen
		fmt.Fprintf(w, `{"kind":%q,"msg":"error encoding failed"}`, e.Kind)
		return
	}
	w.Write(append(b, '\n'))
}
