package serve

import (
	"context"
	"sync"
	"time"

	"helios/internal/core"
	"helios/internal/ooo"
	"helios/internal/telemetry"
)

// batcher coalesces distinct cache-miss requests that share a
// (workload, budget) pair into one record phase. The shape follows
// kserve's batcher: requests fan in to a pending batch, the batch is
// cut when it reaches maxSize or when maxWait elapses since its first
// request, and results fan back out to each request's own channel. The
// record phase runs once per batch under the server's root context — a
// shared recording deliberately outlives any single client's deadline —
// and every request then replays the warm recording under its own
// context, so one slow batch member cannot hold the others' deadlines
// hostage.
type batcher struct {
	suite   *core.Suite
	baseCtx context.Context
	maxSize int
	maxWait time.Duration

	mu     sync.Mutex
	groups map[groupKey]*batchGroup

	batches  uint64 // batches executed
	requests uint64 // requests that went through a batch
	maxBatch uint64 // largest batch cut so far
}

type groupKey struct {
	workload string
	budget   uint64
}

// batchItem is one request waiting in a pending batch.
type batchItem struct {
	ctx    context.Context
	cfg    ooo.Config
	custom bool           // custom machine: bypass the suite's default-config cache
	done   chan batchDone // buffered; the executor never blocks on it
}

type batchDone struct {
	res  *core.Result
	err  error
	size int
}

type batchGroup struct {
	items []*batchItem
	timer *time.Timer
}

func newBatcher(ctx context.Context, suite *core.Suite, maxSize int, maxWait time.Duration) *batcher {
	if maxSize < 1 {
		maxSize = 1
	}
	return &batcher{
		suite:   suite,
		baseCtx: ctx,
		maxSize: maxSize,
		maxWait: maxWait,
		groups:  make(map[groupKey]*batchGroup),
	}
}

// submit enqueues one request and blocks until its batch has run (or
// ctx dies). It returns the result plus the size of the batch the
// request rode in.
func (b *batcher) submit(ctx context.Context, workload string, budget uint64, cfg ooo.Config, custom bool) (*core.Result, int, error) {
	item := &batchItem{ctx: ctx, cfg: cfg, custom: custom, done: make(chan batchDone, 1)}
	key := groupKey{workload, budget}

	// batch_wait spans the whole coalesce-to-result window: every item
	// parks before cut() detaches the batch, so the executor's record
	// and replay spans nest strictly inside it and lane 0 stays laminar.
	tr := telemetry.FromContext(ctx)
	bw := tr.Start("batch_wait")
	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{}
		b.groups[key] = g
		if b.maxWait > 0 && b.maxSize > 1 {
			g.timer = time.AfterFunc(b.maxWait, func() { b.cut(key, g) })
		}
	}
	g.items = append(g.items, item)
	full := len(g.items) >= b.maxSize
	b.mu.Unlock()
	if full {
		b.cut(key, g)
	}

	select {
	case d := <-item.done:
		bw.SetInt("batch_size", int64(d.size))
		bw.End()
		return d.res, d.size, d.err
	case <-ctx.Done():
		// The batch still runs; this item's replay fails fast on its own
		// dead context and the executor's send lands in the buffered
		// channel, so nothing leaks.
		bw.SetAttr("abandoned", "true")
		bw.End()
		return nil, 0, ctx.Err()
	}
}

// cut detaches the group (idempotently: the size trigger and the timer
// can race) and executes it.
func (b *batcher) cut(key groupKey, g *batchGroup) {
	b.mu.Lock()
	if b.groups[key] != g {
		b.mu.Unlock() // already cut by the other trigger
		return
	}
	delete(b.groups, key)
	if g.timer != nil {
		g.timer.Stop()
	}
	b.batches++
	b.requests += uint64(len(g.items))
	if n := uint64(len(g.items)); n > b.maxBatch {
		b.maxBatch = n
	}
	b.mu.Unlock()
	go b.execute(key, g)
}

// execute runs one batch: a single record phase, then an indexed
// fan-out of per-request replays, each under its own request context.
func (b *batcher) execute(key groupKey, g *batchGroup) {
	size := len(g.items)
	// Every item in the batch shares one record phase: each request's
	// trace gets its own "record" span over the shared work, so one
	// trace file tells the whole story of what its request waited on.
	recs := make([]*telemetry.Span, len(g.items))
	for i, item := range g.items {
		recs[i] = telemetry.FromContext(item.ctx).Start("record")
		recs[i].SetInt("batch_size", int64(size))
	}
	_, recErr := b.suite.RecordingBudget(b.baseCtx, key.workload, key.budget)
	for _, sp := range recs {
		sp.SetBool("err", recErr != nil)
		sp.End()
	}
	if recErr != nil {
		for _, item := range g.items {
			item.done <- batchDone{err: recErr, size: size}
		}
		return
	}
	var wg sync.WaitGroup
	for _, item := range g.items {
		wg.Add(1)
		go func(item *batchItem) {
			defer wg.Done()
			sp := telemetry.FromContext(item.ctx).Start("replay")
			sp.SetBool("custom", item.custom)
			var (
				res *core.Result
				err error
			)
			if item.custom {
				res, err = b.suite.ReplayConfig(item.ctx, key.workload, item.cfg, key.budget)
			} else {
				// Default machine: go through the suite cache so server
				// traffic and suite-endpoint cells share results.
				res, err = b.suite.GetBudget(item.ctx, key.workload, item.cfg.Mode, key.budget)
			}
			sp.SetBool("err", err != nil)
			sp.End()
			item.done <- batchDone{res: res, err: err, size: size}
		}(item)
	}
	wg.Wait()
}

// stats snapshots the batch counters.
func (b *batcher) stats() (batches, requests, maxBatch uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.requests, b.maxBatch
}
