package serve

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/telemetry"
)

// telemetryConfig is testConfig with span tracing on.
func telemetryConfig() Config {
	cfg := testConfig()
	cfg.Telemetry = true
	return cfg
}

// TestServeTelemetryOffNoAllocs pins the disabled-path contract at the
// service layer, mirroring ooo's TestCommitObsOffNoAllocs: with
// Config.Telemetry false the tracer is a nil pointer and the complete
// span hook sequence of one request — trace start, admission span,
// context threading, cache/batch spans, outcome attrs, finish —
// allocates nothing.
func TestServeTelemetryOffNoAllocs(t *testing.T) {
	s := New(context.Background(), testConfig())
	if s.Telemetry() != nil {
		t.Fatal("telemetry should be disabled in testConfig")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		tr := s.tel.StartTrace("POST /v1/run")
		adm := tr.Start("admission")
		adm.SetInt("inflight", 3)
		adm.End()
		hctx := telemetry.WithTrace(ctx, tr)
		tr2 := telemetry.FromContext(hctx)
		tr2.SetAttr("workload", "crc32")
		rd := tr2.Start("cache_read")
		rd.SetAttr("hit", "true")
		rd.SetBool("coalesced", false)
		rd.End()
		bw := tr2.Start("batch_wait")
		bw.SetInt("batch_size", 1)
		bw.End()
		tr.SetAttr("outcome", "ok")
		s.finishTrace(tr)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry request path allocated %.1f times per run, want 0", allocs)
	}
}

// TestServeTraceLifecycle drives real traffic through a telemetry-on
// server and checks the recorded traces against the structural
// contract: every trace validates (in-bounds, laminar per lane), spans
// sum consistently with the measured wall time, the expected request
// phases are present, and the span ledger balances.
func TestServeTraceLifecycle(t *testing.T) {
	s, ts := newTestServer(t, telemetryConfig())

	req := RunRequest{Workload: "crc32", Mode: "Helios"}
	if resp, _ := postJSON(t, ts.URL+"/v1/run", req); resp.StatusCode != 200 {
		t.Fatalf("uncached run: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/run", req); resp.StatusCode != 200 {
		t.Fatalf("cached run: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "no-such"}); resp.StatusCode != 400 {
		t.Fatalf("bad workload: status %d", resp.StatusCode)
	}

	tel := s.Telemetry()
	if err := tel.Balance(); err != nil {
		t.Fatal(err)
	}
	traces := tel.Finished()
	if len(traces) != 3 {
		t.Fatalf("got %d finished traces, want 3", len(traces))
	}
	for _, ti := range traces {
		if err := ti.Validate(); err != nil {
			t.Errorf("trace %d: %v", ti.ID, err)
		}
		if sum := ti.TopLevelSumUS(0); sum > ti.DurUS {
			t.Errorf("trace %d: top-level span sum %dµs exceeds trace duration %dµs", ti.ID, sum, ti.DurUS)
		}
	}

	// The uncached run's trace carries the full phase ledger.
	first := traces[0]
	want := map[string]bool{"admission": false, "cache_read": false,
		"cache_write": false, "batch_wait": false, "record": false, "replay": false}
	for _, sp := range first.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
		if sp.Unended {
			t.Errorf("span %q never ended", sp.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("uncached run trace lacks a %q span", name)
		}
	}
	if v := attrValue(first.Attrs, "outcome"); v != "ok" {
		t.Errorf("trace outcome = %q, want ok", v)
	}
	if v := attrValue(first.Attrs, "workload"); v != "crc32" {
		t.Errorf("trace workload = %q, want crc32", v)
	}

	// The cached run read the cache and never touched the batcher.
	second := traces[1]
	for _, sp := range second.Spans {
		if sp.Name == "batch_wait" || sp.Name == "record" {
			t.Errorf("cached run trace has a %q span", sp.Name)
		}
	}
	if v := attrValue(second.Attrs, "cached"); v != "true" {
		t.Errorf("cached run cached attr = %q, want true", v)
	}

	// The rejected-validation run still traced, with the error outcome.
	third := traces[2]
	if v := attrValue(third.Attrs, "outcome"); v != string(ErrBadRequest) {
		t.Errorf("bad-request trace outcome = %q, want %q", v, ErrBadRequest)
	}
}

func attrValue(attrs []telemetry.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTracezEndpoint checks that GET /tracez serves the retained ring
// as loadable Chrome trace-event JSON, and that it 400s with telemetry
// off.
func TestTracezEndpoint(t *testing.T) {
	s, ts := newTestServer(t, telemetryConfig())
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})

	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tracez status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("tracez is not valid JSON: %v", err)
	}
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("tracez has no complete (X) span events")
	}
	_ = s

	// Telemetry off: a typed 400, not an empty document.
	_, tsOff := newTestServer(t, testConfig())
	respOff, err := http.Get(tsOff.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respOff.Body)
	respOff.Body.Close()
	if respOff.StatusCode != 400 {
		t.Errorf("tracez with telemetry off: status %d, want 400", respOff.StatusCode)
	}
}

// TestRunObsArtifact checks the per-request obs plumbing: the inline
// base64 artifact decodes to exactly the bytes a direct observed replay
// of the same (workload, config, budget) produces — the determinism
// contract that makes server artifacts interchangeable with local
// heliossim output.
func TestRunObsArtifact(t *testing.T) {
	_, ts := newTestServer(t, telemetryConfig())

	resp, body := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Workload: "crc32", Mode: "Helios", Obs: "pipeview"})
	if resp.StatusCode != 200 {
		t.Fatalf("obs run: status %d: %s", resp.StatusCode, body)
	}
	rr := decodeRun(t, body)
	if rr.Artifact == nil {
		t.Fatal("obs run returned no artifact")
	}
	if rr.Artifact.Kind != "pipeview" || rr.Artifact.Encoding != "base64" {
		t.Fatalf("artifact = %+v, want inline pipeview", rr.Artifact)
	}
	got, err := base64.StdEncoding.DecodeString(rr.Artifact.Data)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(got)
	if hex.EncodeToString(sum[:]) != rr.Artifact.SHA256 {
		t.Error("artifact SHA256 does not match payload")
	}

	// Reference run: same workload/config/budget through a fresh suite.
	var ref strings.Builder
	suite := core.NewSuite(testConfig().DefaultInsts)
	_, err = suite.ObserveReplayConfig(context.Background(), "crc32",
		ooo.DefaultConfig(mustMode(t, "Helios")), 0, &obs.Observer{PipeView: &ref})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != ref.String() {
		t.Errorf("server pipeview (%d bytes) differs from direct observed replay (%d bytes)",
			len(got), ref.Len())
	}

	// Unknown kinds are typed 400s.
	resp, _ = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Obs: "flamegraph"})
	if resp.StatusCode != 400 {
		t.Errorf("unknown obs kind: status %d, want 400", resp.StatusCode)
	}
}

// TestRunObsArtifactDir checks the file-encoding path: with ArtifactDir
// set the payload lands on disk and the response carries the path plus
// the digest of the file's bytes.
func TestRunObsArtifactDir(t *testing.T) {
	cfg := telemetryConfig()
	cfg.ArtifactDir = t.TempDir()
	_, ts := newTestServer(t, cfg)

	resp, body := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Workload: "crc32", Mode: "Helios", Obs: "interval", ObsInterval: 500})
	if resp.StatusCode != 200 {
		t.Fatalf("obs run: status %d: %s", resp.StatusCode, body)
	}
	rr := decodeRun(t, body)
	if rr.Artifact == nil || rr.Artifact.Encoding != "file" || rr.Artifact.Path == "" {
		t.Fatalf("artifact = %+v, want file encoding with a path", rr.Artifact)
	}
	data, err := os.ReadFile(rr.Artifact.Path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != rr.Artifact.SHA256 {
		t.Error("artifact file digest does not match response SHA256")
	}
	if len(data) != rr.Artifact.Bytes {
		t.Errorf("artifact file is %d bytes, response says %d", len(data), rr.Artifact.Bytes)
	}
	if !strings.HasPrefix(string(data), "cycle,") {
		t.Errorf("interval CSV does not start with its header: %q", firstLine(data))
	}
}

func firstLine(b []byte) string {
	if i := strings.IndexByte(string(b), '\n'); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}

// TestMetriczContentNegotiation checks both /metricz renderings: the
// JSON document keeps its shape (with the histogram summary and, with
// telemetry on, span summaries), and the Prometheus form passes the
// repo's own exposition linter with the expected families present.
func TestMetriczContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, telemetryConfig())
	req := RunRequest{Workload: "crc32", Mode: "Helios"}
	postJSON(t, ts.URL+"/v1/run", req)
	postJSON(t, ts.URL+"/v1/run", req)

	// Default: JSON with the HistSummary latency shape.
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		LatencyUs HistSummary            `json:"latency_us"`
		Spans     map[string]HistSummary `json:"spans"`
		Tracing   *telemetry.Metrics     `json:"tracing"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metricz JSON: %v", err)
	}
	if doc.LatencyUs.Count != 2 {
		t.Errorf("latency count = %d, want 2", doc.LatencyUs.Count)
	}
	if doc.LatencyUs.P99 < doc.LatencyUs.P50 {
		t.Errorf("P99 %d < P50 %d", doc.LatencyUs.P99, doc.LatencyUs.P50)
	}
	if doc.Tracing == nil || doc.Tracing.TracesFinished != 2 {
		t.Errorf("tracing block = %+v, want 2 finished traces", doc.Tracing)
	}
	if _, ok := doc.Spans["admission"]; !ok {
		t.Errorf("spans block lacks admission summary: %v", doc.Spans)
	}

	// Prometheus negotiation via query param and via Accept header.
	for _, u := range []string{ts.URL + "/metricz?format=prometheus", ts.URL + "/metricz"} {
		preq, _ := http.NewRequest("GET", u, nil)
		preq.Header.Set("Accept", "text/plain")
		presp, err := http.DefaultClient.Do(preq)
		if err != nil {
			t.Fatal(err)
		}
		pbody, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if ct := presp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
			t.Fatalf("prometheus Content-Type = %q", ct)
		}
		if err := telemetry.LintExposition(strings.NewReader(string(pbody))); err != nil {
			t.Fatalf("exposition lint: %v\n%s", err, pbody)
		}
		for _, fam := range []string{
			"heliosd_requests_admitted_total",
			"heliosd_request_duration_microseconds_bucket",
			"heliosd_span_duration_microseconds_bucket",
			"heliosd_spans_started_total",
		} {
			if !strings.Contains(string(pbody), fam) {
				t.Errorf("exposition lacks %s", fam)
			}
		}
	}

	// format=json forces JSON even under a text Accept header.
	jreq, _ := http.NewRequest("GET", ts.URL+"/metricz?format=json", nil)
	jreq.Header.Set("Accept", "text/plain")
	jresp, err := http.DefaultClient.Do(jreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, jresp.Body)
	jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("format=json Content-Type = %q", ct)
	}
}

// TestMetriczPromDisabledTelemetry: the exposition stays lintable with
// telemetry off — the span families are simply absent.
func TestMetriczPromDisabledTelemetry(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	resp, err := http.Get(ts.URL + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.LintExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	if strings.Contains(string(body), "heliosd_span_duration") {
		t.Error("telemetry-off exposition advertises span histograms")
	}
}

// TestTraceDirExport: with TraceDir set every finished request trace
// lands as its own Chrome trace file.
func TestTraceDirExport(t *testing.T) {
	cfg := telemetryConfig()
	cfg.TraceDir = t.TempDir()
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})

	entries, err := os.ReadDir(cfg.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("TraceDir has %d files, want 1", len(entries))
	}
	b, err := os.ReadFile(cfg.TraceDir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("exported trace lacks traceEvents")
	}
}

func mustMode(t *testing.T, name string) fusion.Mode {
	t.Helper()
	m, ok := fusion.ModeByName(name)
	if !ok {
		t.Fatalf("unknown mode %q", name)
	}
	return m
}
