package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/report"
)

// warmCache scans dir for result manifests written by a previous
// heliosd process and installs every verifiable one into the
// content-addressed result cache, so a restart serves yesterday's
// results as cache hits instead of re-simulating them.
//
// The scan is deliberately paranoid — an on-disk manifest is input, not
// truth: a file is skipped (with a log line, never an error — a corrupt
// warm entry must not stop boot) unless its schema version matches,
// its engine version matches the running binary, and its recorded
// ResultKey reproduces bit-for-bit from its own (workload, config,
// budget, engine) fields. That last check makes cache poisoning by a
// stale or hand-edited manifest structurally impossible: the key IS
// the content hash the serve path would compute for the same request.
//
// Unlike report.LoadDir this scanner tolerates duplicates (the same
// workload under many modes/budgets is exactly what a result cache
// holds) and foreign files.
func (s *Server) warmCache(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.logf("serve: cache warm scan %s: %v", dir, err)
		return 0
	}
	warmed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			s.logf("serve: cache warm: read %s: %v", path, err)
			continue
		}
		var m report.Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			s.logf("serve: cache warm: parse %s: %v", path, err)
			continue
		}
		switch {
		case m.SchemaVersion != report.SchemaVersion:
			s.logf("serve: cache warm: %s has schema %d, want %d", path, m.SchemaVersion, report.SchemaVersion)
			continue
		case m.ResultKey == "" || m.Budget == 0:
			s.logf("serve: cache warm: %s lacks a result key (not written by heliosd?)", path)
			continue
		case m.Engine != core.EngineVersion():
			s.logf("serve: cache warm: %s is from engine %s, this binary is %s", path, m.Engine, core.EngineVersion())
			continue
		}
		key, err := resultKey(m.Workload, m.Config, m.Budget, m.Engine)
		if err != nil || key != m.ResultKey {
			s.logf("serve: cache warm: %s result key does not reproduce (stale or edited), skipping", path)
			continue
		}
		mode, ok := fusion.ModeByName(m.Mode)
		if !ok || mode != m.Config.Mode {
			s.logf("serve: cache warm: %s mode %q disagrees with config, skipping", path, m.Mode)
			continue
		}
		if s.cache.warm(key, &core.Result{Workload: m.Workload, Mode: m.Config.Mode, Stats: m.Stats}) {
			warmed++
		}
	}
	s.logf("serve: cache warm: %d result(s) restored from %s", warmed, dir)
	return warmed
}
