package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// metricsFormat is the /metricz exposition format resolved by
// negotiation.
type metricsFormat int

const (
	formatJSON metricsFormat = iota // structured JSON document (default)
	formatProm                      // Prometheus text 0.0.4
	formatOM                        // OpenMetrics 1.0.0, exemplars when telemetry is on
)

// negotiateMetrics resolves the /metricz response format. The
// precedence is deterministic and documented (DESIGN.md §17):
//
//  1. An explicit ?format= query wins outright: "json", "prometheus"
//     (alias "text"), or "openmetrics". Any other value is a typed 400
//     — a misspelled format must not silently fall back to a different
//     scrape syntax.
//  2. Otherwise the Accept header is parsed with RFC 9110 quality
//     factors over the three supported types. Each media range counts
//     toward the most specific offer it names: application/openmetrics-text,
//     text/plain (the 0.0.4 exposition), application/json. The
//     wildcards map deterministically: text/* → text/plain, and
//     application/* and */* → application/json (JSON is the canonical
//     default document). Unknown types and malformed elements are
//     ignored. Highest q wins; ties break by specificity (exact >
//     partial wildcard > */*), then by server preference
//     openmetrics > prometheus > json.
//  3. No Accept header, nothing acceptable (every matching offer at
//     q=0), or only unknown types: JSON.
func negotiateMetrics(format, accept string) (metricsFormat, *Error) {
	switch format {
	case "json":
		return formatJSON, nil
	case "prometheus", "text":
		return formatProm, nil
	case "openmetrics":
		return formatOM, nil
	case "":
	default:
		return formatJSON, &Error{Kind: ErrBadRequest,
			Msg: fmt.Sprintf("unknown format %q (want json, prometheus or openmetrics)", format)}
	}

	type vote struct {
		q    float64
		spec int
		set  bool
	}
	// Index by metricsFormat; preference order for exact ties is
	// om > prom > json.
	votes := [3]vote{}
	cast := func(f metricsFormat, q float64, spec int) {
		v := &votes[f]
		if !v.set || q > v.q || (q == v.q && spec > v.spec) {
			*v = vote{q: q, spec: spec, set: true}
		}
	}
	for _, elem := range strings.Split(accept, ",") {
		parts := strings.Split(elem, ";")
		mt := strings.ToLower(strings.TrimSpace(parts[0]))
		if mt == "" {
			continue
		}
		q := 1.0
		bad := false
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if rest, ok := strings.CutPrefix(p, "q="); ok {
				parsed, err := strconv.ParseFloat(rest, 64)
				if err != nil || parsed < 0 || parsed > 1 {
					bad = true // malformed q: ignore the whole element
					break
				}
				q = parsed
			}
		}
		if bad {
			continue
		}
		switch mt {
		case "application/openmetrics-text":
			cast(formatOM, q, 2)
		case "text/plain":
			cast(formatProm, q, 2)
		case "application/json":
			cast(formatJSON, q, 2)
		case "text/*":
			cast(formatProm, q, 1)
		case "application/*":
			cast(formatJSON, q, 1)
		case "*/*":
			cast(formatJSON, q, 0)
		}
	}
	best := formatJSON
	bestVote := vote{}
	for _, f := range []metricsFormat{formatOM, formatProm, formatJSON} {
		v := votes[f]
		if !v.set || v.q == 0 {
			continue
		}
		if !bestVote.set || v.q > bestVote.q || (v.q == bestVote.q && v.spec > bestVote.spec) {
			best, bestVote = f, v
		}
	}
	if !bestVote.set {
		return formatJSON, nil
	}
	return best, nil
}
