package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"helios/internal/chaos"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/telemetry/sampling"
	"helios/internal/workloads"
)

// TestServiceSoak is the server-level chaos campaign (ISSUE satellite):
// concurrent clients fire a randomized mix of benign and hostile
// traffic — valid runs across workloads/modes/budgets, custom chaotic
// machine configs, malformed JSON, unknown workloads, oversized bodies,
// 1ms deadlines — against a server whose trace cache has been seeded
// with corrupt recordings. The contract under fire:
//
//   - zero panics, zero hung requests (chaos.ServiceCampaign's watchdog)
//   - every response is a valid result or a typed error (no violations)
//   - the admission queue bound is never exceeded
//   - every span started during the campaign ended exactly once — no
//     orphan spans under the panic/deadline/drain paths (the audit hook
//     of chaos.AuditedServiceCampaign)
//   - the tail sampler under fire: zero error-kind traces evicted, the
//     retention ledger exact (kept − evicted == retained ≤ ring), the
//     healthy-traffic budget genuinely dropping traces, and every
//     error in the flight recorder carrying a trace ID that resolves
//   - the server drains cleanly afterwards and refuses new work typed
//
// Run under -race this doubles as the concurrency audit of the whole
// serve stack (cache singleflight, batcher, admission accounting,
// tracer, sampler, flight recorder).
func TestServiceSoak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultInsts = 3_000
	cfg.QueueDepth = 6 // small enough that overload genuinely fires
	cfg.MaxBatch = 4
	cfg.BatchWait = time.Millisecond
	cfg.MaxBodyBytes = 8 << 10
	cfg.RetryAfter = 5 * time.Millisecond
	cfg.Telemetry = true
	cfg.TraceRing = 512 // above the error-trace count, so no error ever needs evicting
	// The campaign's sampler: the standard chain with the healthy-traffic
	// budget pinched to a non-refilling 8-trace burst (perSec 0), so the
	// rate policy is guaranteed to run dry and SampledDropped > 0 is a
	// hard assertion, not a timing accident. Seeded floor keeps verdicts
	// reproducible across runs.
	cfg.Sampler = sampling.NewChain(
		sampling.Errors(),
		sampling.SlowTail(99, 64),
		sampling.SpanBoost(sampling.PrioSpan, "record", "degrade"),
		sampling.Limit(sampling.All(), 0, 8),
		sampling.Floor(0.01, 1),
	)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Poison the trace cache for two workloads: requests touching them
	// must survive via the live-fallback degradation path.
	for i, name := range []string{"crc32", "sha"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		rec, err := w.Record(cfg.DefaultInsts)
		if err != nil {
			t.Fatal(err)
		}
		bad, err := chaos.CorruptRecording(rec, uint64(rec.Len()/3), int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		s.Suite().SeedRecording(bad)
	}

	names := []string{"crc32", "sha", "qsort", "bitcount"}
	const clients, perClient = 8, 25

	// The span audit runs after every client is done. Batch executors for
	// deadline-abandoned requests can still be finishing their (balanced)
	// span pairs in the background, so the balance check polls briefly
	// before declaring an orphan — a genuinely leaked span never heals,
	// a lagging End does.
	audit := func() []error {
		tel := s.Telemetry()
		var balErr error
		for wait := time.Duration(0); wait < 10*time.Second; wait += 20 * time.Millisecond {
			if balErr = tel.Balance(); balErr == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var errs []error
		if balErr != nil {
			errs = append(errs, balErr)
		}
		for _, ti := range tel.Finished() {
			if err := ti.Validate(); err != nil {
				errs = append(errs, fmt.Errorf("trace %d (%s): %w", ti.ID, ti.Name, err))
			}
		}
		return errs
	}

	// The sampling audit runs after the balance audit has polled the
	// tracer to quiescence, so the ledger it checks is final.
	samplingAudit := func() []error {
		tel := s.Telemetry()
		m := tel.Metrics()
		st := tel.Sampling()
		var errs []error
		if m.SampledDropped == 0 {
			errs = append(errs, fmt.Errorf("sampler dropped nothing — the soak never exercised tail sampling"))
		}
		var kept, evicted uint64
		for _, pc := range st.KeptByPolicy {
			kept += pc.Count
		}
		for _, pc := range st.EvictedByPolicy {
			evicted += pc.Count
			if pc.Policy == "error" && pc.Count > 0 {
				errs = append(errs, fmt.Errorf("%d error-kind traces evicted from the ring — errors must outlive everything", pc.Count))
			}
		}
		if kept != m.SampledKept {
			errs = append(errs, fmt.Errorf("kept-by-policy ledger leak: per-policy sum %d != sampled_kept %d", kept, m.SampledKept))
		}
		if evicted != m.RingEvicted {
			errs = append(errs, fmt.Errorf("evicted-by-policy ledger leak: per-policy sum %d != ring_evicted %d", evicted, m.RingEvicted))
		}
		if st.Retained > cfg.TraceRing {
			errs = append(errs, fmt.Errorf("ring bound violated: %d retained > cap %d", st.Retained, cfg.TraceRing))
		}
		if uint64(st.Retained) != m.SampledKept-m.RingEvicted {
			errs = append(errs, fmt.Errorf("retention ledger: retained %d != kept %d - evicted %d",
				st.Retained, m.SampledKept, m.RingEvicted))
		}
		return errs
	}

	// The flight audit: exactly one entry per campaign request (the ring
	// is sized above the campaign), and every error entry deep-links to a
	// retained trace — the triage pipeline's core promise. recordFlight
	// is the last deferred hook of a request, so the recorder can trail
	// the tracer by microseconds; poll briefly before judging.
	flightAudit := func() []error {
		var errs []error
		want := clients * perClient
		for wait := time.Duration(0); s.FlightSize() < want && wait < 2*time.Second; wait += 10 * time.Millisecond {
			time.Sleep(10 * time.Millisecond)
		}
		if got := s.FlightSize(); got != want {
			errs = append(errs, fmt.Errorf("flight recorder holds %d entries, want exactly %d", got, want))
		}
		for _, e := range s.flight.snapshot(0, 0) {
			if e.Outcome == "ok" {
				continue
			}
			if e.Outcome == "" {
				errs = append(errs, fmt.Errorf("flight #%d (%s %s): empty outcome", e.Seq, e.Method, e.Path))
				continue
			}
			if !e.Sampled || e.Policy != "error" {
				errs = append(errs, fmt.Errorf("flight #%d outcome %q: sampled=%t policy=%q, want kept by the error policy",
					e.Seq, e.Outcome, e.Sampled, e.Policy))
				continue
			}
			if e.TraceID == 0 {
				errs = append(errs, fmt.Errorf("flight #%d outcome %q: no retained trace to deep-link", e.Seq, e.Outcome))
				continue
			}
			if _, ok := s.Telemetry().Find(e.TraceID); !ok {
				errs = append(errs, fmt.Errorf("flight #%d outcome %q: trace %d does not resolve", e.Seq, e.Outcome, e.TraceID))
			}
		}
		return errs
	}

	rep := chaos.AuditedServiceCampaign(ctx, clients, perClient, 30*time.Second,
		func(ctx context.Context, client, seq int) (chaos.ServiceVerdict, string) {
			rng := rand.New(rand.NewPCG(uint64(client), uint64(seq)))
			switch rng.IntN(10) {
			case 0: // malformed JSON
				return expectTypedError(ts.URL+"/v1/run", `{"workload": nope}`, 400, ErrBadRequest)
			case 1: // unknown workload
				return expectTypedError(ts.URL+"/v1/run", `{"workload":"missing_kernel"}`, 400, ErrBadRequest)
			case 2: // oversized body
				return expectTypedError(ts.URL+"/v1/run",
					`{"workload":"`+strings.Repeat("x", 16<<10)+`"}`, 413, ErrOversized)
			case 3: // hopeless 1ms deadline
				body := fmt.Sprintf(`{"workload":%q,"deadline_ms":1}`, names[rng.IntN(len(names))])
				return soakPost(ts.URL+"/v1/run", body)
			case 4: // custom chaotic machine: tiny structures, still legal
				c := ooo.DefaultConfig(fusion.Modes[rng.IntN(len(fusion.Modes))])
				c.ROBSize = 16 + rng.IntN(64)
				c.IQSize = 8 + rng.IntN(32)
				req, _ := json.Marshal(RunRequest{Workload: names[rng.IntN(len(names))], Config: &c})
				return soakPost(ts.URL+"/v1/run", string(req))
			case 5: // suite matrix
				body := fmt.Sprintf(`{"workloads":[%q],"modes":["NoFusion","Helios"]}`, names[rng.IntN(len(names))])
				return soakPost(ts.URL+"/v1/suite", body)
			case 6: // observed replay with an inline artifact
				body := fmt.Sprintf(`{"workload":%q,"obs":"pipeview","insts":2000}`, names[rng.IntN(len(names))])
				return soakPost(ts.URL+"/v1/run", body)
			default: // benign run across workloads/modes/budgets
				body := fmt.Sprintf(`{"workload":%q,"mode":%q,"insts":%d}`,
					names[rng.IntN(len(names))],
					fusion.Modes[rng.IntN(len(fusion.Modes))].String(),
					1_000*(1+rng.IntN(3)))
				return soakPost(ts.URL+"/v1/run", body)
			}
		}, chaos.Audits(audit, samplingAudit, flightAudit))

	if rep.Runs != clients*perClient {
		t.Errorf("Runs = %d, want %d", rep.Runs, clients*perClient)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("service contract violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Clean+rep.TypedErrors != rep.Runs {
		t.Errorf("classification leak: clean %d + typed %d != runs %d", rep.Clean, rep.TypedErrors, rep.Runs)
	}
	if rep.Clean == 0 {
		t.Error("soak produced no clean results — traffic mix is broken")
	}
	if got := s.MaxInflight(); got > cfg.QueueDepth {
		t.Errorf("admission bound violated: max inflight %d > queue depth %d", got, cfg.QueueDepth)
	}
	if c := s.Counters(); c.PanicsRecovered != 0 {
		t.Errorf("PanicsRecovered = %d, want 0", c.PanicsRecovered)
	}

	// The degradation path must have fired for the poisoned workloads —
	// otherwise this soak never exercised it.
	if lf := s.Suite().Metrics().LiveFallbacks; lf == 0 {
		t.Error("LiveFallbacks = 0: corrupt recordings were never served through")
	}

	// Post-campaign: clean drain within the deadline, then typed refusal.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	status, body, err := postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "crc32"})
	if err != nil {
		t.Fatal(err)
	}
	if status != 503 {
		t.Fatalf("post-drain status = %d, want 503 (%s)", status, body)
	}
	var e Error
	if err := json.Unmarshal(body, &e); err != nil || e.Kind != ErrDraining {
		t.Errorf("post-drain error = %s (%v), want kind %s", body, err, ErrDraining)
	}
}

// soakPost issues one request and classifies the response against the
// service contract: HTTP 200 with a parseable result is clean, any
// non-200 with a parseable typed error is a typed error, everything
// else is a violation.
func soakPost(url, body string) (chaos.ServiceVerdict, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return chaos.ServiceViolation, "transport error: " + err.Error()
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return chaos.ServiceViolation, "read body: " + err.Error()
	}
	if resp.StatusCode == 200 {
		var probe struct {
			Cells json.RawMessage `json:"cells"` // suite responses
			Key   string          `json:"key"`   // run responses
		}
		if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
			return chaos.ServiceViolation, "200 with unparseable body: " + buf.String()
		}
		if probe.Key == "" && probe.Cells == nil {
			return chaos.ServiceViolation, "200 with neither result nor cells: " + buf.String()
		}
		return chaos.ServiceClean, ""
	}
	var e Error
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Kind == "" {
		return chaos.ServiceViolation,
			fmt.Sprintf("status %d with untyped body: %s", resp.StatusCode, buf.String())
	}
	return chaos.ServiceTypedError, ""
}

// expectTypedError issues a hostile request and additionally pins the
// exact status and error kind the taxonomy promises for it.
func expectTypedError(url, body string, wantStatus int, wantKind ErrKind) (chaos.ServiceVerdict, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return chaos.ServiceViolation, "transport error: " + err.Error()
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return chaos.ServiceViolation, "read body: " + err.Error()
	}
	// Under load the admission queue may bounce the request before it is
	// parsed — overload/draining are legal answers to any request.
	var e Error
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Kind == "" {
		return chaos.ServiceViolation,
			fmt.Sprintf("status %d with untyped body: %s", resp.StatusCode, buf.String())
	}
	if e.Kind == ErrOverload || e.Kind == ErrDraining {
		return chaos.ServiceTypedError, ""
	}
	if resp.StatusCode != wantStatus || e.Kind != wantKind {
		return chaos.ServiceViolation,
			fmt.Sprintf("got %d/%s, want %d/%s", resp.StatusCode, e.Kind, wantStatus, wantKind)
	}
	return chaos.ServiceTypedError, ""
}
