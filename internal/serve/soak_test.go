package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"helios/internal/chaos"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/workloads"
)

// TestServiceSoak is the server-level chaos campaign (ISSUE satellite):
// concurrent clients fire a randomized mix of benign and hostile
// traffic — valid runs across workloads/modes/budgets, custom chaotic
// machine configs, malformed JSON, unknown workloads, oversized bodies,
// 1ms deadlines — against a server whose trace cache has been seeded
// with corrupt recordings. The contract under fire:
//
//   - zero panics, zero hung requests (chaos.ServiceCampaign's watchdog)
//   - every response is a valid result or a typed error (no violations)
//   - the admission queue bound is never exceeded
//   - every span started during the campaign ended exactly once — no
//     orphan spans under the panic/deadline/drain paths (the audit hook
//     of chaos.AuditedServiceCampaign)
//   - the server drains cleanly afterwards and refuses new work typed
//
// Run under -race this doubles as the concurrency audit of the whole
// serve stack (cache singleflight, batcher, admission accounting,
// tracer).
func TestServiceSoak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DefaultInsts = 3_000
	cfg.QueueDepth = 6 // small enough that overload genuinely fires
	cfg.MaxBatch = 4
	cfg.BatchWait = time.Millisecond
	cfg.MaxBodyBytes = 8 << 10
	cfg.RetryAfter = 5 * time.Millisecond
	cfg.Telemetry = true
	cfg.TraceRing = 512 // retain the whole campaign for the audit

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Poison the trace cache for two workloads: requests touching them
	// must survive via the live-fallback degradation path.
	for i, name := range []string{"crc32", "sha"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		rec, err := w.Record(cfg.DefaultInsts)
		if err != nil {
			t.Fatal(err)
		}
		bad, err := chaos.CorruptRecording(rec, uint64(rec.Len()/3), int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		s.Suite().SeedRecording(bad)
	}

	names := []string{"crc32", "sha", "qsort", "bitcount"}
	const clients, perClient = 8, 25

	// The span audit runs after every client is done. Batch executors for
	// deadline-abandoned requests can still be finishing their (balanced)
	// span pairs in the background, so the balance check polls briefly
	// before declaring an orphan — a genuinely leaked span never heals,
	// a lagging End does.
	audit := func() []error {
		tel := s.Telemetry()
		var balErr error
		for wait := time.Duration(0); wait < 10*time.Second; wait += 20 * time.Millisecond {
			if balErr = tel.Balance(); balErr == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var errs []error
		if balErr != nil {
			errs = append(errs, balErr)
		}
		for _, ti := range tel.Finished() {
			if err := ti.Validate(); err != nil {
				errs = append(errs, fmt.Errorf("trace %d (%s): %w", ti.ID, ti.Name, err))
			}
		}
		return errs
	}

	rep := chaos.AuditedServiceCampaign(ctx, clients, perClient, 30*time.Second,
		func(ctx context.Context, client, seq int) (chaos.ServiceVerdict, string) {
			rng := rand.New(rand.NewPCG(uint64(client), uint64(seq)))
			switch rng.IntN(10) {
			case 0: // malformed JSON
				return expectTypedError(ts.URL+"/v1/run", `{"workload": nope}`, 400, ErrBadRequest)
			case 1: // unknown workload
				return expectTypedError(ts.URL+"/v1/run", `{"workload":"missing_kernel"}`, 400, ErrBadRequest)
			case 2: // oversized body
				return expectTypedError(ts.URL+"/v1/run",
					`{"workload":"`+strings.Repeat("x", 16<<10)+`"}`, 413, ErrOversized)
			case 3: // hopeless 1ms deadline
				body := fmt.Sprintf(`{"workload":%q,"deadline_ms":1}`, names[rng.IntN(len(names))])
				return soakPost(ts.URL+"/v1/run", body)
			case 4: // custom chaotic machine: tiny structures, still legal
				c := ooo.DefaultConfig(fusion.Modes[rng.IntN(len(fusion.Modes))])
				c.ROBSize = 16 + rng.IntN(64)
				c.IQSize = 8 + rng.IntN(32)
				req, _ := json.Marshal(RunRequest{Workload: names[rng.IntN(len(names))], Config: &c})
				return soakPost(ts.URL+"/v1/run", string(req))
			case 5: // suite matrix
				body := fmt.Sprintf(`{"workloads":[%q],"modes":["NoFusion","Helios"]}`, names[rng.IntN(len(names))])
				return soakPost(ts.URL+"/v1/suite", body)
			case 6: // observed replay with an inline artifact
				body := fmt.Sprintf(`{"workload":%q,"obs":"pipeview","insts":2000}`, names[rng.IntN(len(names))])
				return soakPost(ts.URL+"/v1/run", body)
			default: // benign run across workloads/modes/budgets
				body := fmt.Sprintf(`{"workload":%q,"mode":%q,"insts":%d}`,
					names[rng.IntN(len(names))],
					fusion.Modes[rng.IntN(len(fusion.Modes))].String(),
					1_000*(1+rng.IntN(3)))
				return soakPost(ts.URL+"/v1/run", body)
			}
		}, audit)

	if rep.Runs != clients*perClient {
		t.Errorf("Runs = %d, want %d", rep.Runs, clients*perClient)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("service contract violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Clean+rep.TypedErrors != rep.Runs {
		t.Errorf("classification leak: clean %d + typed %d != runs %d", rep.Clean, rep.TypedErrors, rep.Runs)
	}
	if rep.Clean == 0 {
		t.Error("soak produced no clean results — traffic mix is broken")
	}
	if got := s.MaxInflight(); got > cfg.QueueDepth {
		t.Errorf("admission bound violated: max inflight %d > queue depth %d", got, cfg.QueueDepth)
	}
	if c := s.Counters(); c.PanicsRecovered != 0 {
		t.Errorf("PanicsRecovered = %d, want 0", c.PanicsRecovered)
	}

	// The degradation path must have fired for the poisoned workloads —
	// otherwise this soak never exercised it.
	if lf := s.Suite().Metrics().LiveFallbacks; lf == 0 {
		t.Error("LiveFallbacks = 0: corrupt recordings were never served through")
	}

	// Post-campaign: clean drain within the deadline, then typed refusal.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	status, body, err := postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "crc32"})
	if err != nil {
		t.Fatal(err)
	}
	if status != 503 {
		t.Fatalf("post-drain status = %d, want 503 (%s)", status, body)
	}
	var e Error
	if err := json.Unmarshal(body, &e); err != nil || e.Kind != ErrDraining {
		t.Errorf("post-drain error = %s (%v), want kind %s", body, err, ErrDraining)
	}
}

// soakPost issues one request and classifies the response against the
// service contract: HTTP 200 with a parseable result is clean, any
// non-200 with a parseable typed error is a typed error, everything
// else is a violation.
func soakPost(url, body string) (chaos.ServiceVerdict, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return chaos.ServiceViolation, "transport error: " + err.Error()
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return chaos.ServiceViolation, "read body: " + err.Error()
	}
	if resp.StatusCode == 200 {
		var probe struct {
			Cells json.RawMessage `json:"cells"` // suite responses
			Key   string          `json:"key"`   // run responses
		}
		if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
			return chaos.ServiceViolation, "200 with unparseable body: " + buf.String()
		}
		if probe.Key == "" && probe.Cells == nil {
			return chaos.ServiceViolation, "200 with neither result nor cells: " + buf.String()
		}
		return chaos.ServiceClean, ""
	}
	var e Error
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Kind == "" {
		return chaos.ServiceViolation,
			fmt.Sprintf("status %d with untyped body: %s", resp.StatusCode, buf.String())
	}
	return chaos.ServiceTypedError, ""
}

// expectTypedError issues a hostile request and additionally pins the
// exact status and error kind the taxonomy promises for it.
func expectTypedError(url, body string, wantStatus int, wantKind ErrKind) (chaos.ServiceVerdict, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return chaos.ServiceViolation, "transport error: " + err.Error()
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return chaos.ServiceViolation, "read body: " + err.Error()
	}
	// Under load the admission queue may bounce the request before it is
	// parsed — overload/draining are legal answers to any request.
	var e Error
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Kind == "" {
		return chaos.ServiceViolation,
			fmt.Sprintf("status %d with untyped body: %s", resp.StatusCode, buf.String())
	}
	if e.Kind == ErrOverload || e.Kind == ErrDraining {
		return chaos.ServiceTypedError, ""
	}
	if resp.StatusCode != wantStatus || e.Kind != wantKind {
		return chaos.ServiceViolation,
			fmt.Sprintf("got %d/%s, want %d/%s", resp.StatusCode, e.Kind, wantStatus, wantKind)
	}
	return chaos.ServiceTypedError, ""
}
