package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"helios/internal/chaos"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/workloads"
)

// testConfig keeps unit-test servers fast and deterministic: tiny
// budgets, no batch window (cut immediately), generous deadline.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DefaultInsts = 5_000
	cfg.MaxBatch = 1
	cfg.BatchWait = 0
	cfg.DefaultDeadline = 30 * time.Second
	return cfg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// postJSONQuiet is postJSON for goroutines, where t.Fatal is illegal:
// failures come back as errors.
func postJSONQuiet(url string, body any) (int, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

func decodeRun(t *testing.T, b []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatalf("bad RunResponse %s: %v", b, err)
	}
	return rr
}

func decodeError(t *testing.T, b []byte) Error {
	t.Helper()
	var e Error
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("bad Error body %s: %v", b, err)
	}
	if e.Kind == "" {
		t.Fatalf("error body has no kind: %s", b)
	}
	return e
}

// TestRunCachedAndCoalesced pins the content-addressed cache contract:
// the first request computes, an identical repeat is a pure hit with
// the same key, and a different budget is a different key.
func TestRunCachedAndCoalesced(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	req := RunRequest{Workload: "crc32", Mode: "Helios"}

	resp, body := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	first := decodeRun(t, body)
	if first.Cached || first.Key == "" || first.IPC <= 0 {
		t.Fatalf("first run: cached=%v key=%q ipc=%v", first.Cached, first.Key, first.IPC)
	}
	if first.Engine == "" || !strings.HasPrefix(first.Engine, "helios-engine/") {
		t.Errorf("engine identity missing: %q", first.Engine)
	}

	_, body = postJSON(t, ts.URL+"/v1/run", req)
	second := decodeRun(t, body)
	if !second.Cached || second.Key != first.Key {
		t.Errorf("repeat was not a cache hit: cached=%v key match=%v", second.Cached, second.Key == first.Key)
	}
	if second.Stats.Cycles != first.Stats.Cycles {
		t.Error("cache hit returned different stats")
	}

	_, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios", Insts: 2_000})
	other := decodeRun(t, body)
	if other.Cached || other.Key == first.Key {
		t.Error("different budget shared a content key")
	}
}

// TestRunCustomConfig: a custom machine bypasses the default cache but
// still gets a content key, and a config change changes the key.
func TestRunCustomConfig(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cfg := ooo.DefaultConfig(fusion.ModeHelios)
	cfg.FetchWidth = 1
	cfg.DecodeWidth = 1
	cfg.RenameWidth = 1
	cfg.DispatchWidth = 1
	cfg.CommitWidth = 1
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Config: &cfg})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	narrow := decodeRun(t, body)

	wide := ooo.DefaultConfig(fusion.ModeHelios)
	_, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Config: &wide})
	def := decodeRun(t, body)
	if narrow.Key == def.Key {
		t.Error("different machine configs shared a content key")
	}
	if narrow.Stats.Cycles <= def.Stats.Cycles {
		t.Errorf("1-wide machine (%d cycles) should be slower than the 8-wide default (%d cycles)",
			narrow.Stats.Cycles, def.Stats.Cycles)
	}
}

// TestHostileRequests drives the input-validation taxonomy: malformed
// JSON, trailing garbage, unknown fields, unknown workload/mode, an
// oversized body and a conflicting mode/config pair — every one a typed
// 4xx, never a 500.
func TestHostileRequests(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 4 << 10
	_, ts := newTestServer(t, cfg)

	cases := []struct {
		name   string
		body   string
		status int
		kind   ErrKind
	}{
		{"malformed", `{"workload": crc32}`, 400, ErrBadRequest},
		{"trailing", `{"workload":"crc32"} garbage`, 400, ErrBadRequest},
		{"unknown-field", `{"workload":"crc32","wat":1}`, 400, ErrBadRequest},
		{"unknown-workload", `{"workload":"nope"}`, 400, ErrBadRequest},
		{"unknown-mode", `{"workload":"crc32","mode":"Turbo"}`, 400, ErrBadRequest},
		{"oversized", `{"workload":"` + strings.Repeat("a", 8<<10) + `"}`, 413, ErrOversized},
		{"empty", ``, 400, ErrBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, buf.Bytes())
			}
			if e := decodeError(t, buf.Bytes()); e.Kind != tc.kind {
				t.Errorf("kind = %s, want %s", e.Kind, tc.kind)
			}
		})
	}
}

// TestAdmissionOverload holds QueueDepth slots open via the batch
// window (a long BatchWait parks the first requests inside their
// admission slots) and checks the next request bounces with a typed
// 429 carrying both retry-after forms.
func TestAdmissionOverload(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.MaxBatch = 64               // never cut by size
	cfg.BatchWait = 2 * time.Second // park requests in the window
	cfg.RetryAfter = 1500 * time.Millisecond
	s, ts := newTestServer(t, cfg)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct modes: distinct content keys, same batch group.
			postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: fusion.Modes[i].String()})
		}(i)
	}
	// Wait until both slots are held.
	deadline := time.Now().Add(2 * time.Second)
	for s.healthSnapshot().Inflight < 2 {
		if time.Now().After(deadline) {
			t.Fatal("parked requests never occupied the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "sha", Mode: "Helios"})
	if resp.StatusCode != 429 {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	e := decodeError(t, body)
	if e.Kind != ErrOverload || e.RetryAfterMs != 1500 {
		t.Errorf("overload error = %+v, want kind=overload retry_after_ms=1500", e)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After header = %q, want %q (1500ms rounded up)", ra, "2")
	}
	wg.Wait()
	if got := s.MaxInflight(); got > 2 {
		t.Errorf("max inflight = %d, exceeded QueueDepth 2", got)
	}
	if c := s.Counters(); c.RejectedOverload != 1 {
		t.Errorf("RejectedOverload = %d, want 1", c.RejectedOverload)
	}
}

// TestDeadlinePropagation: a 1ms deadline with the run parked behind a
// longer batch window must come back as a typed 504, and the partial
// work must not poison the cache — a later request with a sane deadline
// succeeds.
func TestDeadlinePropagation(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 64
	cfg.BatchWait = 100 * time.Millisecond
	_, ts := newTestServer(t, cfg)

	req := RunRequest{Workload: "crc32", Mode: "Helios", DeadlineMs: 1}
	resp, body := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != 504 {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != ErrDeadline {
		t.Errorf("kind = %s, want %s", e.Kind, ErrDeadline)
	}

	req.DeadlineMs = 30_000
	resp, body = postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != 200 {
		t.Fatalf("deadline failure was cached: retry got %d (%s)", resp.StatusCode, body)
	}
}

// TestBatchCoalescing fires every fusion mode for one workload
// concurrently with a wide batch window: all six must ride one batch
// (one record phase — TraceMisses == 1) and report the batch size.
func TestBatchCoalescing(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = len(fusion.Modes)
	cfg.BatchWait = 500 * time.Millisecond
	s, ts := newTestServer(t, cfg)

	var wg sync.WaitGroup
	sizes := make([]int, len(fusion.Modes))
	for i, m := range fusion.Modes {
		wg.Add(1)
		go func(i int, m fusion.Mode) {
			defer wg.Done()
			status, body, err := postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: m.String()})
			if err != nil || status != 200 {
				t.Errorf("%v: status %d err %v: %s", m, status, err, body)
				return
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Errorf("%v: bad RunResponse %s: %v", m, body, err)
				return
			}
			sizes[i] = rr.BatchSize
		}(i, m)
	}
	wg.Wait()

	if m := s.Suite().Metrics(); m.TraceMisses != 1 {
		t.Errorf("TraceMisses = %d, want 1 (six modes must share one record phase)", m.TraceMisses)
	}
	for i, n := range sizes {
		if n != len(fusion.Modes) {
			t.Errorf("request %d rode a batch of %d, want %d", i, n, len(fusion.Modes))
		}
	}
}

// TestDegradationServesThroughCorruptCache seeds a poisoned recording
// and checks the request still succeeds via exactly one live
// re-emulation, with the repair visible on /healthz.
func TestDegradationServesThroughCorruptCache(t *testing.T) {
	cfg := testConfig()
	s, ts := newTestServer(t, cfg)

	w, _ := workloads.ByName("crc32")
	rec, err := w.Record(cfg.DefaultInsts)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := chaos.CorruptRecording(rec, uint64(rec.Len()/2), 99)
	if err != nil {
		t.Fatal(err)
	}
	s.Suite().SeedRecording(bad)

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	if resp.StatusCode != 200 {
		t.Fatalf("corrupt recording was not degraded: %d (%s)", resp.StatusCode, body)
	}
	if rr := decodeRun(t, body); rr.Stats.CommittedInsts == 0 {
		t.Fatal("empty result after degradation")
	}
	if lf := s.Suite().Metrics().LiveFallbacks; lf != 1 {
		t.Errorf("LiveFallbacks = %d, want 1", lf)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if h.LiveFallbacks != 1 {
		t.Errorf("/healthz live_fallbacks = %d, want 1", h.LiveFallbacks)
	}
}

// TestSuiteEndpoint: a 2×2 matrix comes back in request order with
// consistent per-cell results.
func TestSuiteEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, body := postJSON(t, ts.URL+"/v1/suite", SuiteRequest{
		Workloads: []string{"crc32", "sha"},
		Modes:     []string{"NoFusion", "Helios"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SuiteResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	want := []string{"crc32/NoFusion", "crc32/Helios", "sha/NoFusion", "sha/Helios"}
	if len(sr.Cells) != len(want) {
		t.Fatalf("cells = %d, want %d", len(sr.Cells), len(want))
	}
	for i, c := range sr.Cells {
		if got := c.Workload + "/" + c.Mode; got != want[i] {
			t.Errorf("cell %d = %s, want %s (request order)", i, got, want[i])
		}
		if c.Error != nil || c.IPC <= 0 || c.Cycles == 0 {
			t.Errorf("cell %d incomplete: %+v", i, c)
		}
	}
}

// TestDiffEndpoint: the differential report renders and carries the
// expected markers.
func TestDiffEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, body := postJSON(t, ts.URL+"/v1/diff", DiffRequest{
		Workloads:    []string{"crc32"},
		BaselineMode: "NoFusion",
		TargetMode:   "Helios",
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dr DiffResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dr.Markdown, "crc32") || !strings.Contains(dr.Markdown, "IPC") {
		t.Errorf("markdown report missing expected content:\n%.400s", dr.Markdown)
	}
	if !strings.Contains(dr.CSV, "crc32") {
		t.Error("csv report missing workload row")
	}
}

// TestDrain pins the drain contract: in-flight work finishes, new work
// is refused with a typed 503, readyz flips to draining, and Drain
// returns nil within the deadline.
func TestDrain(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 64
	cfg.BatchWait = 150 * time.Millisecond // park one request mid-flight
	s, ts := newTestServer(t, cfg)

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		status, body, err := postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
		if err != nil {
			body = []byte(err.Error())
		}
		inflight <- result{status, body}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.healthSnapshot().Inflight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	r := <-inflight
	if r.status != 200 {
		t.Fatalf("in-flight request was not drained cleanly: %d (%s)", r.status, r.body)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "sha"})
	if resp.StatusCode != 503 {
		t.Fatalf("post-drain status = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != ErrDraining {
		t.Errorf("kind = %s, want %s", e.Kind, ErrDraining)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != 503 {
		t.Errorf("readyz while draining = %d, want 503", rresp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Errorf("healthz while draining = %d, want 200 (draining is alive)", hresp.StatusCode)
	}
}

// TestDrainDeadlineExpires: a request that outlives the drain window
// surfaces as a drain error naming the stragglers.
func TestDrainDeadlineExpires(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 64
	cfg.BatchWait = time.Second
	s, ts := newTestServer(t, cfg)

	go postJSONQuiet(ts.URL+"/v1/run", RunRequest{Workload: "crc32"})
	deadline := time.Now().Add(2 * time.Second)
	for s.healthSnapshot().Inflight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := s.Drain(dctx)
	if err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("drain err = %v, want deadline error naming in-flight count", err)
	}
}

// TestMetricz spot-checks the telemetry surface.
func TestMetricz(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32"})

	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Server Counters `json:"server"`
		Cache  struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		} `json:"cache"`
		LatencyUs struct {
			Count uint64 `json:"count"`
		} `json:"latency_us"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Server.Admitted != 2 || m.Server.Completed != 2 {
		t.Errorf("admitted/completed = %d/%d, want 2/2", m.Server.Admitted, m.Server.Completed)
	}
	if m.Cache.Entries != 1 || m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache = %+v, want 1 entry, 1 hit, 1 miss", m.Cache)
	}
	if m.LatencyUs.Count != 2 {
		t.Errorf("latency count = %d, want 2", m.LatencyUs.Count)
	}
}

// TestResultKeySensitivity: the content address must move with every
// input axis and be stable for identical inputs.
func TestResultKeySensitivity(t *testing.T) {
	base := ooo.DefaultConfig(fusion.ModeHelios)
	k0, err := resultKey("crc32", base, 1000, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if k1, _ := resultKey("crc32", base, 1000, "e1"); k1 != k0 {
		t.Error("identical inputs produced different keys")
	}
	variants := map[string]func() (string, error){
		"workload": func() (string, error) { return resultKey("sha", base, 1000, "e1") },
		"budget":   func() (string, error) { return resultKey("crc32", base, 2000, "e1") },
		"engine":   func() (string, error) { return resultKey("crc32", base, 1000, "e2") },
		"config": func() (string, error) {
			c := base
			c.ROBSize = 64
			return resultKey("crc32", c, 1000, "e1")
		},
		"mode": func() (string, error) {
			return resultKey("crc32", ooo.DefaultConfig(fusion.ModeNoFusion), 1000, "e1")
		},
	}
	for axis, fn := range variants {
		k, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("changing %s did not change the content key", axis)
		}
	}
}

// TestPanicIsolation: a handler panic becomes a structured 500, the
// server keeps serving, and the recovery is counted.
func TestPanicIsolation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(ctx, testConfig())
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.HandleFunc("POST /boom", s.api(func(ctx context.Context, r *http.Request) (any, *Error) {
		panic("stage exploded")
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/boom", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if e := decodeError(t, buf.Bytes()); e.Kind != ErrInternal {
		t.Errorf("kind = %s, want %s", e.Kind, ErrInternal)
	}
	if c := s.Counters(); c.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", c.PanicsRecovered)
	}
	// Still serving.
	resp2, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32"})
	if resp2.StatusCode != 200 {
		t.Fatalf("server did not survive the panic: %d (%s)", resp2.StatusCode, body)
	}
}

// TestManifestPerRequest: completed runs land one manifest each in the
// manifest directory, loadable by the report package's reader rules.
func TestManifestPerRequest(t *testing.T) {
	cfg := testConfig()
	cfg.ManifestDir = t.TempDir()
	s, ts := newTestServer(t, cfg)

	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "NoFusion"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"})
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crc32", Mode: "Helios"}) // cache hit: no new manifest

	if c := s.Counters(); c.ManifestsWritten != 2 || c.ManifestErrors != 0 {
		t.Errorf("manifests written/errors = %d/%d, want 2/0", c.ManifestsWritten, c.ManifestErrors)
	}
}

// TestWorkloadsEndpoint sanity-checks the discovery surface.
func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []struct {
		Name  string `json:"name"`
		Insts uint64 `json:"insts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no workloads listed")
	}
	seen := false
	for _, r := range rows {
		if r.Name == "crc32" && r.Insts > 0 {
			seen = true
		}
	}
	if !seen {
		t.Errorf("crc32 missing from %v", rows)
	}
}
