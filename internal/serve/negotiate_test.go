package serve

import (
	"io"
	"net/http"
	"testing"
)

// TestNegotiateMetrics pins the documented /metricz format-resolution
// precedence (the ISSUE satellite): an explicit ?format= wins outright
// and misspellings are typed 400s; otherwise RFC 9110 quality factors
// decide, with deterministic wildcard mapping, specificity tie-breaks,
// and the om > prom > json server preference on exact ties.
func TestNegotiateMetrics(t *testing.T) {
	cases := []struct {
		name, format, accept string
		want                 metricsFormat
		wantErr              bool
	}{
		{"no header defaults to json", "", "", formatJSON, false},
		{"format json", "json", "", formatJSON, false},
		{"format prometheus", "prometheus", "", formatProm, false},
		{"format text alias", "text", "", formatProm, false},
		{"format openmetrics", "openmetrics", "", formatOM, false},
		{"format overrides accept", "json", "text/plain", formatJSON, false},
		{"unknown format is a typed 400", "promtheus", "", formatJSON, true},

		{"curl default */*", "", "*/*", formatJSON, false},
		{"exact text/plain", "", "text/plain", formatProm, false},
		{"exact openmetrics", "", "application/openmetrics-text", formatOM, false},
		{"exact json", "", "application/json", formatJSON, false},
		{"text wildcard", "", "text/*", formatProm, false},
		{"application wildcard", "", "application/*", formatJSON, false},

		{"higher q wins", "", "application/openmetrics-text;q=0.9, text/plain;q=1.0", formatProm, false},
		{"q demotes below the wildcard", "", "text/plain;q=0.8, */*;q=0.9", formatJSON, false},
		{"specificity breaks q ties", "", "text/*;q=0.9, */*;q=0.9", formatProm, false},
		{"server preference breaks exact ties", "", "text/plain, application/openmetrics-text", formatOM, false},
		{"prometheus scrape header", "", "application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.3", formatOM, false},

		{"q=0 excludes the type", "", "text/plain;q=0", formatJSON, false},
		{"all offers at q=0 fall back to json", "", "text/plain;q=0, application/openmetrics-text;q=0", formatJSON, false},
		{"malformed q ignores the element", "", "text/plain;q=banana", formatJSON, false},
		{"malformed element does not poison the rest", "", "text/plain;q=banana, application/openmetrics-text", formatOM, false},
		{"unknown types are ignored", "", "application/xml, image/png", formatJSON, false},
		{"whitespace and case tolerated", "", " TEXT/PLAIN ; q=0.7 , application/json;q=0.2", formatProm, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := negotiateMetrics(tc.format, tc.accept)
			if (err != nil) != tc.wantErr {
				t.Fatalf("negotiateMetrics(%q, %q) err = %v, wantErr %t", tc.format, tc.accept, err, tc.wantErr)
			}
			if err != nil {
				if err.Kind != ErrBadRequest {
					t.Fatalf("error kind = %s, want %s", err.Kind, ErrBadRequest)
				}
				return
			}
			if got != tc.want {
				t.Errorf("negotiateMetrics(%q, %q) = %d, want %d", tc.format, tc.accept, got, tc.want)
			}
		})
	}
}

// TestMetriczUnknownFormatTyped drives the misspelled-format rule
// through the HTTP surface: the response must be the taxonomy's typed
// 400, not a silent fallback exposition a scraper would misparse.
func TestMetriczUnknownFormatTyped(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/metricz?format=promtheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
	}
	e := decodeError(t, body)
	if e.Kind != ErrBadRequest {
		t.Errorf("kind = %s, want %s", e.Kind, ErrBadRequest)
	}
}
