package report_test

import (
	"context"
	"testing"

	"helios/internal/experiments"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/report"
)

// renderOnce replays the given workloads from one shared recording
// cache under baseline and Helios configurations, builds manifests with
// a pinned build identity, and renders the diff.
func renderOnce(t *testing.T, h *experiments.Harness, names []string) (string, string) {
	t.Helper()
	ctx := context.Background()
	build := report.BuildInfo{Module: "helios", Version: "test", Go: "test", Revision: "test"}
	var base, target []*report.Manifest
	for _, name := range names {
		for _, mode := range []fusion.Mode{fusion.ModeNoFusion, fusion.ModeHelios} {
			r, err := h.Suite.Get(ctx, name, mode)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			m := report.NewManifest(name, mode, ooo.DefaultConfig(mode), r.Stats)
			m.Build = build // pin: only the simulated stats may vary
			if mode == fusion.ModeNoFusion {
				base = append(base, m)
			} else {
				target = append(target, m)
			}
		}
	}
	d := report.NewDiff("baseline", base, "helios", target)
	md, err := d.Markdown()
	if err != nil {
		t.Fatalf("markdown: %v", err)
	}
	return md, d.CSV()
}

// TestReportReplayByteIdentical is the acceptance check for the whole
// record-once/replay-many → manifest → diff chain: rendering the report
// twice from two independent replays of the same recordings must
// produce byte-identical markdown and CSV.
func TestReportReplayByteIdentical(t *testing.T) {
	names := []string{"bitcount", "crc32"}
	h1 := experiments.New(2000)
	md1, csv1 := renderOnce(t, h1, names)
	h2 := experiments.New(2000)
	md2, csv2 := renderOnce(t, h2, names)
	if md1 != md2 {
		t.Errorf("markdown differs across two replays of the same workloads")
	}
	if csv1 != csv2 {
		t.Errorf("CSV differs across two replays of the same workloads")
	}
	if len(md1) == 0 || len(csv1) == 0 {
		t.Fatalf("empty report output")
	}
}

// TestWriteManifestsEndToEnd drives the experiments-side emission into
// two directories and diffs them through the public loader — the same
// path `make report-smoke` exercises.
func TestWriteManifestsEndToEnd(t *testing.T) {
	ctx := context.Background()
	h := experiments.New(2000)
	h.Workloads = []string{"crc32"}
	baseDir, targetDir := t.TempDir(), t.TempDir()
	if err := h.WriteManifests(ctx, baseDir, fusion.ModeNoFusion); err != nil {
		t.Fatalf("baseline manifests: %v", err)
	}
	if err := h.WriteManifests(ctx, targetDir, fusion.ModeHelios); err != nil {
		t.Fatalf("target manifests: %v", err)
	}
	base, err := report.LoadDir(baseDir)
	if err != nil {
		t.Fatalf("load baseline: %v", err)
	}
	target, err := report.LoadDir(targetDir)
	if err != nil {
		t.Fatalf("load target: %v", err)
	}
	d := report.NewDiff("baseline", base, "helios", target)
	if len(d.Pairs) != 1 || d.Pairs[0].Workload != "crc32" {
		t.Fatalf("pairs = %+v, want [crc32]", d.Pairs)
	}
	md, err := d.Markdown()
	if err != nil {
		t.Fatalf("markdown: %v", err)
	}
	if md == "" {
		t.Fatal("empty markdown")
	}
	// The loaded manifests carry real conserved top-down accounts.
	for _, p := range d.Pairs {
		for side, m := range map[string]*report.Manifest{"base": p.Base, "target": p.Target} {
			if err := m.Stats.TopDown.CheckConservation(); err != nil {
				t.Errorf("%s: %v", side, err)
			}
		}
	}
}
