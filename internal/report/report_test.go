package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helios/internal/fusion"
	"helios/internal/ooo"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixedBuild is the build identity used by golden manifests: real
// provenance (temp paths, VCS state) would make the golden
// machine-dependent.
var fixedBuild = BuildInfo{
	Module:   "helios",
	Version:  "(devel)",
	Go:       "go1.22",
	Revision: "deadbeefcafe4242",
}

// synthManifest builds a deterministic manifest from a seed: the
// top-down account is conserved (buckets sum to the slot budget), the
// histograms are filled with a fixed sample pattern, and every derived
// metric the renderers touch is nonzero.
func synthManifest(workload string, mode fusion.Mode, seed uint64) *Manifest {
	var st ooo.Stats
	st.Cycles = 10_000 + seed*37
	st.CommittedInsts = 18_000 + seed*211
	st.CommittedUops = st.CommittedInsts - seed*100
	st.CommittedMem = st.CommittedInsts / 3

	st.CSFLoadPairs = 400 + seed*13
	st.CSFStorePairs = 150 + seed*7
	st.NCSFLoadPairs = seed * 90
	st.NCSFStorePairs = seed * 20
	st.FusedIdiom = 250 + seed*5
	st.FusionPredictions = seed * 120
	st.FusionMispredicts = seed * 3
	st.Branches = st.CommittedInsts / 6
	st.BranchMispredicts = st.Branches / 50

	td := &st.TopDown
	td.SlotsPerCycle = 5
	td.Cycles = st.Cycles
	budget := td.SlotBudget()
	td.Retiring = budget * 4 / 10
	td.FusedRetiring = budget / 20 * seed % (budget / 10)
	td.FrontendLatency = budget / 8
	td.FrontendBandwidth = budget / 10
	td.BadSpeculation = budget / 25
	td.BackendCore = budget / 12
	td.BackendMemL1D = budget / 30
	td.BackendMemL2 = budget / 40
	td.BackendMemLLC = budget / 50
	// The last bucket absorbs the remainder so conservation holds.
	td.BackendMemDRAM = budget - td.TotalSlots()

	for i := uint64(0); i < 200; i++ {
		st.IssueWaitHist.Observe(i % (8 + seed))
		st.LoadToUseHist.Observe(4 + i%(30+seed*9))
		st.FlushRecoveryHist.Observe(10 + i%(60+seed*4))
	}

	return &Manifest{
		SchemaVersion: SchemaVersion,
		Workload:      workload,
		Mode:          mode.String(),
		Build:         fixedBuild,
		Config:        ooo.DefaultConfig(mode),
		Stats:         st,
	}
}

// writeManifests writes ms into a fresh temp dir and returns it.
func writeManifests(t *testing.T, ms ...*Manifest) string {
	t.Helper()
	dir := t.TempDir()
	for _, m := range ms {
		if err := m.WriteFile(filepath.Join(dir, m.Workload+".json")); err != nil {
			t.Fatalf("write %s: %v", m.Workload, err)
		}
	}
	return dir
}

// goldenDiff builds the diff every rendering test uses: two matched
// workloads, one base-only and one target-only straggler.
func goldenDiff(t *testing.T) *Diff {
	t.Helper()
	baseDir := writeManifests(t,
		synthManifest("aha", fusion.ModeNoFusion, 1),
		synthManifest("crc32", fusion.ModeNoFusion, 2),
		synthManifest("zlib", fusion.ModeNoFusion, 3))
	targetDir := writeManifests(t,
		synthManifest("aha", fusion.ModeHelios, 4),
		synthManifest("crc32", fusion.ModeHelios, 5),
		synthManifest("qsort", fusion.ModeHelios, 6))
	base, err := LoadDir(baseDir)
	if err != nil {
		t.Fatalf("load base: %v", err)
	}
	target, err := LoadDir(targetDir)
	if err != nil {
		t.Fatalf("load target: %v", err)
	}
	return NewDiff("baseline", base, "helios", target)
}

// checkGolden compares got against the committed golden file,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/report -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden; re-run with -update and review the diff.\ngot:\n%s", name, got)
	}
}

func TestDiffMarkdownGolden(t *testing.T) {
	d := goldenDiff(t)
	md, err := d.Markdown()
	if err != nil {
		t.Fatalf("markdown: %v", err)
	}
	checkGolden(t, "diff.golden.md", []byte(md))
}

func TestDiffCSVGolden(t *testing.T) {
	d := goldenDiff(t)
	checkGolden(t, "diff.golden.csv", []byte(d.CSV()))
}

func TestDiffAlignment(t *testing.T) {
	d := goldenDiff(t)
	if len(d.Pairs) != 2 || d.Pairs[0].Workload != "aha" || d.Pairs[1].Workload != "crc32" {
		t.Errorf("pairs = %+v, want aha+crc32", d.Pairs)
	}
	if len(d.BaseOnly) != 1 || d.BaseOnly[0] != "zlib" {
		t.Errorf("base-only = %v, want [zlib]", d.BaseOnly)
	}
	if len(d.TargetOnly) != 1 || d.TargetOnly[0] != "qsort" {
		t.Errorf("target-only = %v, want [qsort]", d.TargetOnly)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := synthManifest("aha", fusion.ModeHelios, 1)
	dir := writeManifests(t, m)
	ms, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ms) != 1 {
		t.Fatalf("loaded %d manifests, want 1", len(ms))
	}
	got := ms[0]
	if got.Workload != m.Workload || got.Mode != m.Mode || got.Build != m.Build {
		t.Errorf("identity drifted: %+v", got)
	}
	if got.Stats != m.Stats {
		t.Errorf("stats did not survive the round trip")
	}
	if got.Config.DispatchWidth != m.Config.DispatchWidth {
		t.Errorf("config dispatch width %d, want %d",
			got.Config.DispatchWidth, m.Config.DispatchWidth)
	}
}

func TestLoadDirRejectsDuplicateWorkload(t *testing.T) {
	m := synthManifest("aha", fusion.ModeHelios, 1)
	dir := t.TempDir()
	for _, name := range []string{"a.json", "b.json"} {
		if err := m.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "appears in both") {
		t.Errorf("duplicate workload not rejected: %v", err)
	}
}

func TestLoadDirRejectsForeignSchema(t *testing.T) {
	m := synthManifest("aha", fusion.ModeHelios, 1)
	m.SchemaVersion = SchemaVersion + 1
	dir := writeManifests(t, m)
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("foreign schema not rejected: %v", err)
	}
}

func TestLoadDirRejectsEmptyDir(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory not rejected")
	}
}

func TestMarkdownRejectsInconsistentHistogram(t *testing.T) {
	base := synthManifest("aha", fusion.ModeNoFusion, 1)
	target := synthManifest("aha", fusion.ModeHelios, 2)
	// A foreign-geometry import shows up as bucket counts that disagree
	// with Count; the suite-level merge must refuse it.
	target.Stats.LoadToUseHist.Count += 9
	b, err := LoadDir(writeManifests(t, base))
	if err != nil {
		t.Fatal(err)
	}
	tg, err := LoadDir(writeManifests(t, target))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDiff("baseline", b, "helios", tg)
	if _, err := d.Markdown(); err == nil || !strings.Contains(err.Error(), "bucket layout mismatch") {
		t.Errorf("inconsistent histogram not rejected: %v", err)
	}
}

func TestBuildNeverEmpty(t *testing.T) {
	b := Build()
	for name, v := range map[string]string{
		"Module": b.Module, "Version": b.Version, "Go": b.Go, "Revision": b.Revision,
	} {
		if v == "" {
			t.Errorf("Build().%s is empty; want a value or \"unknown\"", name)
		}
	}
}

// TestTopDownSynthConserved keeps the fixture honest: the golden
// manifests must satisfy the same conservation invariant real runs do.
func TestTopDownSynthConserved(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		m := synthManifest("w", fusion.ModeHelios, seed)
		if err := m.Stats.TopDown.CheckConservation(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
