// Package report implements per-run manifests and cross-run
// differential analysis: a manifest freezes one simulation's identity
// (workload, fusion mode, build provenance, machine config) together
// with its full statistics, and a Diff aligns two manifest directories
// by workload to decompose every IPC delta into top-down bucket
// movement, fusion-coverage shifts and latency-distribution shifts.
// All rendering is deterministic: fixed precision, sorted workloads,
// no map iteration on an output path.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"

	"helios/internal/fusion"
	"helios/internal/ooo"
)

// SchemaVersion is stamped into every manifest so a reader can reject
// files written by an incompatible future layout instead of silently
// zero-filling missing fields.
const SchemaVersion = 1

// BuildInfo identifies the binary that produced a manifest, from the
// module metadata the Go linker embeds (runtime/debug.ReadBuildInfo).
type BuildInfo struct {
	Module   string // main module path
	Version  string // module version ("(devel)" for source builds)
	Go       string // toolchain that built the binary
	Revision string // VCS revision, when the build had VCS metadata
	Modified bool   // working tree was dirty at build time
}

// Build captures the running binary's identity. Fields the runtime
// cannot supply (tests, stripped builds) stay "unknown" rather than
// empty so manifest diffs show the absence explicitly.
func Build() BuildInfo {
	b := BuildInfo{Module: "unknown", Version: "unknown", Go: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Path != "" {
		b.Module = info.Main.Path
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.Go = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// Manifest is the on-disk record of one simulation run: everything a
// later differential analysis needs to align it with a counterpart run
// and explain the difference.
type Manifest struct {
	SchemaVersion int
	Workload      string
	Mode          string // fusion.Mode name (String form)
	Build         BuildInfo
	Config        ooo.Config
	Stats         ooo.Stats
	// ResultKey, Budget and Engine are stamped by heliosd (optional —
	// absent from manifests written by heliossim or older builds).
	// Together they make a manifest directory double as a warm-start
	// index for the service's content-addressed result cache: ResultKey
	// must reproduce from (Workload, Config, Budget, Engine), so a
	// reader can verify an entry before trusting it.
	ResultKey string `json:",omitempty"`
	Budget    uint64 `json:",omitempty"`
	Engine    string `json:",omitempty"`
}

// NewManifest assembles a manifest for one finished run, stamping the
// current binary's build identity.
func NewManifest(workload string, mode fusion.Mode, cfg ooo.Config, st ooo.Stats) *Manifest {
	return &Manifest{
		SchemaVersion: SchemaVersion,
		Workload:      workload,
		Mode:          mode.String(),
		Build:         Build(),
		Config:        cfg,
		Stats:         st,
	}
}

// WriteFile serializes the manifest as indented JSON. encoding/json
// emits struct fields in declaration order, so the bytes are
// deterministic for identical runs.
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("report: marshal %s: %w", m.Workload, err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadDir reads every *.json manifest in dir, sorted by workload name.
// Duplicate workloads and schema mismatches are errors: a diff aligned
// against an ambiguous or foreign-layout side would be quietly wrong.
func LoadDir(dir string) ([]*Manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var ms []*Manifest
	seen := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("report: parse %s: %w", path, err)
		}
		if m.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("report: %s has schema version %d, this tool reads %d",
				path, m.SchemaVersion, SchemaVersion)
		}
		if m.Workload == "" {
			return nil, fmt.Errorf("report: %s has no workload name", path)
		}
		if prev, dup := seen[m.Workload]; dup {
			return nil, fmt.Errorf("report: workload %q appears in both %s and %s",
				m.Workload, prev, path)
		}
		seen[m.Workload] = path
		ms = append(ms, &m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("report: no manifests in %s", dir)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Workload < ms[j].Workload })
	return ms, nil
}
