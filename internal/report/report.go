package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"helios/internal/stats"
)

// Pair is one workload matched across the two manifest sets.
type Pair struct {
	Workload     string
	Base, Target *Manifest
}

// Diff is the aligned comparison of two manifest directories.
type Diff struct {
	BaseLabel, TargetLabel string
	Pairs                  []Pair   // matched workloads, sorted by name
	BaseOnly, TargetOnly   []string // workloads present on one side only
}

// NewDiff aligns two manifest sets by workload name. Both inputs are
// sorted (LoadDir guarantees it), so a two-pointer merge keeps the
// output order deterministic without any map iteration.
func NewDiff(baseLabel string, base []*Manifest, targetLabel string, target []*Manifest) *Diff {
	d := &Diff{BaseLabel: baseLabel, TargetLabel: targetLabel}
	i, j := 0, 0
	for i < len(base) && j < len(target) {
		switch {
		case base[i].Workload == target[j].Workload:
			d.Pairs = append(d.Pairs, Pair{base[i].Workload, base[i], target[j]})
			i++
			j++
		case base[i].Workload < target[j].Workload:
			d.BaseOnly = append(d.BaseOnly, base[i].Workload)
			i++
		default:
			d.TargetOnly = append(d.TargetOnly, target[j].Workload)
			j++
		}
	}
	for ; i < len(base); i++ {
		d.BaseOnly = append(d.BaseOnly, base[i].Workload)
	}
	for ; j < len(target); j++ {
		d.TargetOnly = append(d.TargetOnly, target[j].Workload)
	}
	return d
}

// tdBuckets orders the top-down presentation; names match the Rows
// dump so the markdown cross-references the raw counters.
var tdBuckets = []struct {
	name string
	get  func(*stats.TopDown) uint64
}{
	{"retiring", func(t *stats.TopDown) uint64 { return t.Retiring }},
	{"fused_retiring", func(t *stats.TopDown) uint64 { return t.FusedRetiring }},
	{"frontend_latency", func(t *stats.TopDown) uint64 { return t.FrontendLatency }},
	{"frontend_bandwidth", func(t *stats.TopDown) uint64 { return t.FrontendBandwidth }},
	{"bad_speculation", func(t *stats.TopDown) uint64 { return t.BadSpeculation }},
	{"backend_core", func(t *stats.TopDown) uint64 { return t.BackendCore }},
	{"backend_mem_l1d", func(t *stats.TopDown) uint64 { return t.BackendMemL1D }},
	{"backend_mem_l2", func(t *stats.TopDown) uint64 { return t.BackendMemL2 }},
	{"backend_mem_llc", func(t *stats.TopDown) uint64 { return t.BackendMemLLC }},
	{"backend_mem_dram", func(t *stats.TopDown) uint64 { return t.BackendMemDRAM }},
}

// histograms lists the latency distributions compared per workload and
// (via Merge) at suite level.
var histograms = []struct {
	name string
	get  func(*Manifest) *stats.Histogram
}{
	{"issue_wait", func(m *Manifest) *stats.Histogram { return &m.Stats.IssueWaitHist }},
	{"load_to_use", func(m *Manifest) *stats.Histogram { return &m.Stats.LoadToUseHist }},
	{"flush_recovery", func(m *Manifest) *stats.Histogram { return &m.Stats.FlushRecoveryHist }},
}

// pct renders v as a percentage of total with two decimals.
func pct(v, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// z flushes deltas smaller than the rendered precision to +0, so a
// float rounding residue never prints as "-0.00".
func z(d float64) float64 {
	if math.Abs(d) < 0.005 {
		return 0
	}
	return d
}

// perKinst renders a count per thousand committed instructions.
func perKinst(v, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return 1000 * float64(v) / float64(insts)
}

// modeSet summarizes the fusion modes of one side (normally a single
// mode per directory, but the diff does not require it).
func modeSet(ms []*Manifest) string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range ms {
		if !seen[m.Mode] {
			seen[m.Mode] = true
			out = append(out, m.Mode)
		}
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// buildCell renders one side's build identity for the header table.
func buildCell(b BuildInfo) string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s, %s)", b.Module, b.Version, b.Go, rev)
}

// Markdown renders the full differential report. The only error source
// is suite-level histogram merging, which rejects internally
// inconsistent (foreign-geometry) data rather than printing wrong
// percentiles.
func (d *Diff) Markdown() (string, error) {
	var b strings.Builder
	f := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	f("# Differential report: %s vs %s\n\n", d.BaseLabel, d.TargetLabel)

	// Run identity.
	f("| side | label | mode | build |\n|---|---|---|---|\n")
	baseMs := make([]*Manifest, 0, len(d.Pairs))
	targetMs := make([]*Manifest, 0, len(d.Pairs))
	for _, p := range d.Pairs {
		baseMs = append(baseMs, p.Base)
		targetMs = append(targetMs, p.Target)
	}
	baseBuild, targetBuild := "n/a", "n/a"
	if len(baseMs) > 0 {
		baseBuild = buildCell(baseMs[0].Build)
	}
	if len(targetMs) > 0 {
		targetBuild = buildCell(targetMs[0].Build)
	}
	f("| base | %s | %s | %s |\n", d.BaseLabel, modeSet(baseMs), baseBuild)
	f("| target | %s | %s | %s |\n\n", d.TargetLabel, modeSet(targetMs), targetBuild)

	// IPC per workload with geomean speedup.
	f("## IPC\n\n")
	f("| workload | %s | %s | Δ | speedup |\n|---|---|---|---|---|\n", d.BaseLabel, d.TargetLabel)
	logSum, logN := 0.0, 0
	for _, p := range d.Pairs {
		bi, ti := p.Base.Stats.IPC(), p.Target.Stats.IPC()
		speed := "n/a"
		if bi > 0 {
			s := ti / bi
			speed = fmt.Sprintf("%.4f", s)
			if s > 0 {
				logSum += math.Log(s)
				logN++
			}
		}
		f("| %s | %.4f | %.4f | %+.4f | %s |\n", p.Workload, bi, ti, ti-bi, speed)
	}
	if logN > 0 {
		f("| **geomean** | | | | %.4f |\n", math.Exp(logSum/float64(logN)))
	}
	f("\n")

	// Top-down decomposition: where did the slots move?
	f("## Top-down slot decomposition\n\n")
	f("Bucket shares are percentages of each run's slot budget")
	f(" (DispatchWidth × cycles); Δ is in percentage points.\n\n")
	for _, p := range d.Pairs {
		bt, tt := &p.Base.Stats.TopDown, &p.Target.Stats.TopDown
		f("### %s\n\n", p.Workload)
		f("| bucket | %s %% | %s %% | Δ pp |\n|---|---|---|---|\n", d.BaseLabel, d.TargetLabel)
		for _, bk := range tdBuckets {
			bp := pct(bk.get(bt), bt.SlotBudget())
			tp := pct(bk.get(tt), tt.SlotBudget())
			f("| %s | %.2f | %.2f | %+.2f |\n", bk.name, bp, tp, z(tp-bp))
		}
		f("\n")
	}

	// Fusion coverage.
	f("## Fusion coverage\n\n")
	f("| workload | fused frac Δ | csf/kinst Δ | ncsf/kinst Δ | idioms/kinst Δ |\n")
	f("|---|---|---|---|---|\n")
	for _, p := range d.Pairs {
		bs, ts := &p.Base.Stats, &p.Target.Stats
		f("| %s | %+.4f | %+.2f | %+.2f | %+.2f |\n", p.Workload,
			ts.FusedUopFraction()-bs.FusedUopFraction(),
			perKinst(ts.CSFPairs(), ts.CommittedInsts)-perKinst(bs.CSFPairs(), bs.CommittedInsts),
			perKinst(ts.NCSFPairs(), ts.CommittedInsts)-perKinst(bs.NCSFPairs(), bs.CommittedInsts),
			perKinst(ts.FusedIdiom+ts.FusedMemIdiom, ts.CommittedInsts)-
				perKinst(bs.FusedIdiom+bs.FusedMemIdiom, bs.CommittedInsts))
	}
	f("\n")

	// Latency distribution shifts, per workload and suite-wide.
	f("## Latency distribution shifts\n\n")
	for _, h := range histograms {
		f("### %s\n\n", h.name)
		f("| workload | P50 | P95 | P99 |\n|---|---|---|---|\n")
		var baseAll, targetAll stats.Histogram
		for _, p := range d.Pairs {
			bh, th := h.get(p.Base), h.get(p.Target)
			if err := baseAll.Merge(bh); err != nil {
				return "", fmt.Errorf("%s/%s (%s): %w", p.Workload, h.name, d.BaseLabel, err)
			}
			if err := targetAll.Merge(th); err != nil {
				return "", fmt.Errorf("%s/%s (%s): %w", p.Workload, h.name, d.TargetLabel, err)
			}
			f("| %s | %d → %d | %d → %d | %d → %d |\n", p.Workload,
				bh.Percentile(50), th.Percentile(50),
				bh.Percentile(95), th.Percentile(95),
				bh.Percentile(99), th.Percentile(99))
		}
		f("| **suite** | %d → %d | %d → %d | %d → %d |\n\n",
			baseAll.Percentile(50), targetAll.Percentile(50),
			baseAll.Percentile(95), targetAll.Percentile(95),
			baseAll.Percentile(99), targetAll.Percentile(99))
	}

	// Alignment losses are part of the result, not a silent drop.
	if len(d.BaseOnly)+len(d.TargetOnly) > 0 {
		f("## Unmatched workloads\n\n")
		for _, w := range d.BaseOnly {
			f("- `%s` only in %s\n", w, d.BaseLabel)
		}
		for _, w := range d.TargetOnly {
			f("- `%s` only in %s\n", w, d.TargetLabel)
		}
		f("\n")
	}
	return b.String(), nil
}

// CSV renders one flat row per matched workload for spreadsheet
// consumption; columns mirror the markdown sections.
func (d *Diff) CSV() string {
	var b strings.Builder
	cols := []string{"workload", "base_mode", "target_mode", "base_ipc", "target_ipc", "speedup"}
	for _, bk := range tdBuckets {
		cols = append(cols, "d_"+bk.name+"_pp")
	}
	cols = append(cols, "d_fused_frac")
	for _, h := range histograms {
		cols = append(cols, h.name+"_base_p99", h.name+"_target_p99")
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, p := range d.Pairs {
		bi, ti := p.Base.Stats.IPC(), p.Target.Stats.IPC()
		speed := "n/a"
		if bi > 0 {
			speed = fmt.Sprintf("%.4f", ti/bi)
		}
		row := []string{p.Workload, p.Base.Mode, p.Target.Mode,
			fmt.Sprintf("%.4f", bi), fmt.Sprintf("%.4f", ti), speed}
		bt, tt := &p.Base.Stats.TopDown, &p.Target.Stats.TopDown
		for _, bk := range tdBuckets {
			row = append(row, fmt.Sprintf("%.2f",
				z(pct(bk.get(tt), tt.SlotBudget())-pct(bk.get(bt), bt.SlotBudget()))))
		}
		row = append(row, fmt.Sprintf("%.4f",
			p.Target.Stats.FusedUopFraction()-p.Base.Stats.FusedUopFraction()))
		for _, h := range histograms {
			row = append(row, fmt.Sprint(h.get(p.Base).Percentile(99)),
				fmt.Sprint(h.get(p.Target).Percentile(99)))
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
