package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/report"
)

// WriteManifests runs every workload of the harness under the given
// fusion mode (through the suite's shared recording cache, so a
// baseline and a target directory built from one harness replay the
// exact same committed streams) and writes one per-run JSON manifest
// per workload into dir — the input format of cmd/heliosreport.
func (h *Harness) WriteManifests(ctx context.Context, dir string, mode fusion.Mode) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, name := range h.Workloads {
		r, err := h.Suite.Get(ctx, name, mode)
		if err != nil {
			return fmt.Errorf("experiments: %s/%v: %w", name, mode, err)
		}
		m := report.NewManifest(name, mode, ooo.DefaultConfig(mode), r.Stats)
		if err := m.WriteFile(filepath.Join(dir, name+".json")); err != nil {
			return fmt.Errorf("experiments: %s/%v: %w", name, mode, err)
		}
	}
	return nil
}
