// Package experiments regenerates every table and figure of the paper's
// evaluation: the motivation studies (Figures 2-5), the Helios results
// (Figure 8, Table III, Figures 9-10) and the storage budget (Section
// IV-B7). Each driver returns a stats.Table whose rows mirror the paper's
// per-application series; cmd/experiments and bench_test.go print them.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/helios"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/stats"
	"helios/internal/uop"
	"helios/internal/workloads"
)

// Harness drives the full experiment suite with one shared result cache.
type Harness struct {
	Suite     *core.Suite
	Workloads []string

	// Parallel bounds the scheduler's replay workers during RunAll's
	// warm-up fan-out (0 = GOMAXPROCS, 1 = serial). The figures and
	// tables are byte-identical for every value: results are assembled
	// by cell index, never by completion order.
	Parallel int
}

// New creates a harness over every registered workload with the given
// per-run instruction budget (0 = each workload's own budget).
func New(maxInsts uint64) *Harness {
	return &Harness{
		Suite:     core.NewSuite(maxInsts),
		Workloads: workloads.Names(),
	}
}

// Observe replays one workload under the given mode with the
// observability layer attached, reusing the suite's shared recording.
// The cmd/experiments -obs mode fans this over every workload to
// produce per-workload pipeline traces and interval series.
func (h *Harness) Observe(ctx context.Context, name string, mode fusion.Mode, ob *obs.Observer) (*core.Result, error) {
	return h.Suite.ObserveReplay(ctx, name, mode, ob)
}

// IDs lists the experiment identifiers accepted by Run, in paper order.
func IDs() []string {
	return []string{
		"fig2", "fig3", "fig4", "fig5", "fig8", "fig9", "fig10",
		"table2", "table3", "cost",
	}
}

// Run dispatches one experiment by identifier.
func (h *Harness) Run(ctx context.Context, id string) (*stats.Table, error) {
	switch id {
	case "fig2":
		return h.Figure2(ctx)
	case "fig3":
		return h.Figure3(ctx)
	case "fig4":
		return h.Figure4(ctx)
	case "fig5":
		return h.Figure5(ctx)
	case "fig8":
		return h.Figure8(ctx)
	case "fig9":
		return h.Figure9(ctx)
	case "fig10":
		return h.Figure10(ctx)
	case "table2":
		return h.Table2(ctx)
	case "table3":
		return h.Table3(ctx)
	case "cost":
		return h.TableCost(ctx)
	}
	return nil, fmt.Errorf("experiments: unknown id %q (want one of %v)", id, IDs())
}

// Figure2 reports the percentage of dynamic µ-ops covered by fusion,
// split into the Memory pairing idioms and the Other (non-memory) idioms,
// measured on the RISCVFusion++ configuration.
func (h *Harness) Figure2(ctx context.Context) (*stats.Table, error) {
	t := stats.NewTable(
		"Figure 2: fused µ-ops by idiom class (% of dynamic instructions), RISCVFusion++",
		"benchmark", "memory", "others")
	var mems, others []float64
	for _, name := range h.Workloads {
		r, err := h.Suite.Get(ctx, name, fusion.ModeRISCVFusionPP)
		if err != nil {
			return nil, err
		}
		s := r.Stats
		mem := 2 * float64(s.TotalMemPairs()) / float64(s.CommittedInsts)
		oth := 2 * float64(s.FusedIdiom+s.FusedMemIdiom) / float64(s.CommittedInsts)
		mems = append(mems, mem)
		others = append(others, oth)
		t.AddRow(name, stats.Pct(mem, 2), stats.Pct(oth, 2))
	}
	t.AddRow("average", stats.Pct(stats.Mean(mems), 2), stats.Pct(stats.Mean(others), 2))
	return t, nil
}

// Figure3 reports IPC of all-idiom fusion (RISCVFusion++) and memory-only
// fusion (CSF-SBR) normalised to no fusion.
func (h *Harness) Figure3(ctx context.Context) (*stats.Table, error) {
	t := stats.NewTable(
		"Figure 3: normalized IPC, all idioms vs memory-only fusion (baseline = NoFusion)",
		"benchmark", "all idioms", "memory only")
	var alls, memsOnly []float64
	for _, name := range h.Workloads {
		base, err := h.Suite.Get(ctx, name, fusion.ModeNoFusion)
		if err != nil {
			return nil, err
		}
		all, err := h.Suite.Get(ctx, name, fusion.ModeRISCVFusionPP)
		if err != nil {
			return nil, err
		}
		mem, err := h.Suite.Get(ctx, name, fusion.ModeCSFSBR)
		if err != nil {
			return nil, err
		}
		na := all.Stats.IPC() / base.Stats.IPC()
		nm := mem.Stats.IPC() / base.Stats.IPC()
		alls = append(alls, na)
		memsOnly = append(memsOnly, nm)
		t.AddRow(name, stats.F(na, 3), stats.F(nm, 3))
	}
	t.AddRow("geomean", stats.F(stats.Geomean(alls), 3), stats.F(stats.Geomean(memsOnly), 3))
	return t, nil
}

// analyzeTrace runs the oracle pair analysis over a workload's committed
// stream, replaying the suite's shared recording rather than re-emulating.
func (h *Harness) analyzeTrace(ctx context.Context, name string, cfg fusion.PairConfig) (fusion.TraceStats, error) {
	rec, err := h.Suite.Recording(ctx, name)
	if err != nil {
		return fusion.TraceStats{}, err
	}
	return fusion.AnalyzeTrace(rec.Replay(), cfg)
}

// Figure4 classifies consecutive memory pairs by address relationship:
// contiguous, overlapping, same cache line, next line.
func (h *Harness) Figure4(ctx context.Context) (*stats.Table, error) {
	t := stats.NewTable(
		"Figure 4: consecutive memory pairs by address category (% of dynamic µ-ops)",
		"benchmark", "contiguous", "overlapping", "sameline", "nextline")
	sums := make([]float64, 4)
	for _, name := range h.Workloads {
		ts, err := h.analyzeTrace(ctx, name, fusion.PairConfig{LineSize: 64, MaxDist: 64, ConsecutiveOnly: true})
		if err != nil {
			return nil, err
		}
		cats := []uop.AddrCategory{uop.AddrContiguous, uop.AddrOverlapping, uop.AddrSameLine, uop.AddrNextLine}
		row := []string{name}
		for i, c := range cats {
			frac := 2 * float64(ts.CSFByCategory[c]) / float64(ts.TotalUops)
			sums[i] += frac
			row = append(row, stats.Pct(frac, 2))
		}
		t.AddRow(row...)
	}
	n := float64(len(h.Workloads))
	t.AddRow("average", stats.Pct(sums[0]/n, 2), stats.Pct(sums[1]/n, 2),
		stats.Pct(sums[2]/n, 2), stats.Pct(sums[3]/n, 2))
	return t, nil
}

// Figure5 reports the additional potential of non-consecutive fusion and
// of pairs using different base registers.
func (h *Harness) Figure5(ctx context.Context) (*stats.Table, error) {
	t := stats.NewTable(
		"Figure 5: non-consecutive and different-base-register fusion potential (% of dynamic µ-ops)",
		"benchmark", "csf", "ncsf", "dbr", "ncsf asym", "mean dist")
	var csfs, ncsfs, dbrs []float64
	for _, name := range h.Workloads {
		ts, err := h.analyzeTrace(ctx, name, fusion.DefaultPairConfig())
		if err != nil {
			return nil, err
		}
		tot := float64(ts.TotalUops)
		csf := 2 * float64(ts.CSFPairs) / tot
		ncsf := 2 * float64(ts.NCSFPairs) / tot
		dbr := 2 * float64(ts.CSFDiffBase+ts.NCSFDiffBase) / tot
		asym := 0.0
		if ts.NCSFPairs > 0 {
			asym = float64(ts.NCSFAsymmetric) / float64(ts.NCSFPairs)
		}
		csfs, ncsfs, dbrs = append(csfs, csf), append(ncsfs, ncsf), append(dbrs, dbr)
		t.AddRow(name, stats.Pct(csf, 2), stats.Pct(ncsf, 2), stats.Pct(dbr, 2),
			stats.Pct(asym, 1), stats.F(ts.MeanDistance(), 1))
	}
	t.AddRow("average", stats.Pct(stats.Mean(csfs), 2), stats.Pct(stats.Mean(ncsfs), 2),
		stats.Pct(stats.Mean(dbrs), 2), "", "")
	return t, nil
}

// Figure8 reports committed CSF and NCSF pairs in Helios and OracleFusion
// as a percentage of dynamic memory instructions, plus the mean head-tail
// distance (the paper reports 10.5 µ-ops on average).
func (h *Harness) Figure8(ctx context.Context) (*stats.Table, error) {
	t := stats.NewTable(
		"Figure 8: fused pairs relative to dynamic memory instructions",
		"benchmark", "helios csf", "helios ncsf", "oracle csf", "oracle ncsf", "helios dist")
	var hc, hn, oc, on []float64
	for _, name := range h.Workloads {
		hr, err := h.Suite.Get(ctx, name, fusion.ModeHelios)
		if err != nil {
			return nil, err
		}
		or, err := h.Suite.Get(ctx, name, fusion.ModeOracle)
		if err != nil {
			return nil, err
		}
		pct := func(pairs uint64, s *ooo.Stats) float64 {
			if s.CommittedMem == 0 {
				return 0
			}
			return 2 * float64(pairs) / float64(s.CommittedMem)
		}
		h1 := pct(hr.Stats.CSFPairs(), &hr.Stats)
		h2 := pct(hr.Stats.NCSFPairs(), &hr.Stats)
		o1 := pct(or.Stats.CSFPairs(), &or.Stats)
		o2 := pct(or.Stats.NCSFPairs(), &or.Stats)
		hc, hn, oc, on = append(hc, h1), append(hn, h2), append(oc, o1), append(on, o2)
		t.AddRow(name, stats.Pct(h1, 1), stats.Pct(h2, 1), stats.Pct(o1, 1), stats.Pct(o2, 1),
			stats.F(hr.Stats.MeanNCSFDistance(), 1))
	}
	t.AddRow("average", stats.Pct(stats.Mean(hc), 1), stats.Pct(stats.Mean(hn), 1),
		stats.Pct(stats.Mean(oc), 1), stats.Pct(stats.Mean(on), 1), "")
	return t, nil
}

// Figure9 reports rename/dispatch structural stalls as a percentage of
// execution cycles for the baseline, Helios and OracleFusion.
func (h *Harness) Figure9(ctx context.Context) (*stats.Table, error) {
	modes := []fusion.Mode{fusion.ModeNoFusion, fusion.ModeHelios, fusion.ModeOracle}
	t := stats.NewTable(
		"Figure 9: structural stall cycles (% of total cycles)",
		"benchmark", "config", "rename(regs)", "rob", "iq", "lq", "sq", "aq", "total")
	for _, name := range h.Workloads {
		for _, m := range modes {
			r, err := h.Suite.Get(ctx, name, m)
			if err != nil {
				return nil, err
			}
			s := r.Stats
			cyc := float64(s.Cycles)
			t.AddRow(name, m.String(),
				stats.Pct(float64(s.StallFreeList)/cyc, 1),
				stats.Pct(float64(s.StallROB)/cyc, 1),
				stats.Pct(float64(s.StallIQ)/cyc, 1),
				stats.Pct(float64(s.StallLQ)/cyc, 1),
				stats.Pct(float64(s.StallSQ)/cyc, 1),
				stats.Pct(float64(s.StallAQ)/cyc, 1),
				stats.Pct(float64(s.StallCycles())/cyc, 1))
		}
	}
	return t, nil
}

// Figure10 reports the IPC of every configuration normalised to NoFusion,
// with the geomean across workloads (the paper's headline: Helios +14.2%,
// Oracle +16.3%, RISCVFusion++ +7%, CSF-SBR +6%, RISCVFusion +0.8%).
func (h *Harness) Figure10(ctx context.Context) (*stats.Table, error) {
	modes := []fusion.Mode{
		fusion.ModeRISCVFusion, fusion.ModeCSFSBR, fusion.ModeRISCVFusionPP,
		fusion.ModeHelios, fusion.ModeOracle,
	}
	headers := []string{"benchmark"}
	for _, m := range modes {
		headers = append(headers, m.String())
	}
	t := stats.NewTable("Figure 10: IPC normalized to NoFusion", headers...)
	norm := make(map[fusion.Mode][]float64)
	for _, name := range h.Workloads {
		base, err := h.Suite.Get(ctx, name, fusion.ModeNoFusion)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, m := range modes {
			r, err := h.Suite.Get(ctx, name, m)
			if err != nil {
				return nil, err
			}
			v := r.Stats.IPC() / base.Stats.IPC()
			norm[m] = append(norm[m], v)
			row = append(row, stats.F(v, 3))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, m := range modes {
		row = append(row, stats.F(stats.Geomean(norm[m]), 3))
	}
	t.AddRow(row...)
	return t, nil
}

// Table2 dumps the simulated machine configuration.
func (h *Harness) Table2(ctx context.Context) (*stats.Table, error) {
	cfg := ooo.DefaultConfig(fusion.ModeHelios)
	t := stats.NewTable("Table II: simulated machine", "parameter", "value")
	rows := [][2]string{
		{"fetch/decode width", fmt.Sprintf("%d/%d", cfg.FetchWidth, cfg.DecodeWidth)},
		{"rename/dispatch width", fmt.Sprintf("%d/%d", cfg.RenameWidth, cfg.DispatchWidth)},
		{"commit width", fmt.Sprint(cfg.CommitWidth)},
		{"allocation queue", fmt.Sprint(cfg.AQSize)},
		{"rob / iq", fmt.Sprintf("%d / %d", cfg.ROBSize, cfg.IQSize)},
		{"lq / sq", fmt.Sprintf("%d / %d", cfg.LQSize, cfg.SQSize)},
		{"physical registers", fmt.Sprint(cfg.PhysRegs)},
		{"ports (alu/load/store)", fmt.Sprintf("%d/%d/%d", cfg.ALUPorts, cfg.LoadPorts, cfg.StorePorts)},
		{"redirect penalty", fmt.Sprint(cfg.RedirectPenalty)},
		{"L1D", fmt.Sprintf("%d KiB, %d-way, %d cycles",
			cfg.Cache.L1D.Sets*cfg.Cache.L1D.Ways*int(cfg.Cache.L1D.LineSize)/1024,
			cfg.Cache.L1D.Ways, cfg.Cache.L1D.Latency)},
		{"L2", fmt.Sprintf("%d KiB, %d-way, %d cycles",
			cfg.Cache.L2.Sets*cfg.Cache.L2.Ways*int(cfg.Cache.L2.LineSize)/1024,
			cfg.Cache.L2.Ways, cfg.Cache.L2.Latency)},
		{"LLC", fmt.Sprintf("%d KiB, %d-way, %d cycles",
			cfg.Cache.LLC.Sets*cfg.Cache.LLC.Ways*int(cfg.Cache.LLC.LineSize)/1024,
			cfg.Cache.LLC.Ways, cfg.Cache.LLC.Latency)},
		{"memory latency", fmt.Sprint(cfg.Cache.MemLatency)},
		{"fusion max distance", fmt.Sprint(cfg.PairCfg.MaxDist)},
		{"NCSF nesting levels", fmt.Sprint(cfg.MaxNCSFNest)},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t, nil
}

// Table3 reports the Helios fusion predictor's coverage, accuracy and
// MPKI per application.
func (h *Harness) Table3(ctx context.Context) (*stats.Table, error) {
	t := stats.NewTable(
		"Table III: Helios fusion predictor coverage, accuracy and MPKI",
		"benchmark", "coverage", "accuracy", "mpki")
	var cov, acc, mpki []float64
	for _, name := range h.Workloads {
		r, err := h.Suite.Get(ctx, name, fusion.ModeHelios)
		if err != nil {
			return nil, err
		}
		s := r.Stats
		cov = append(cov, s.Coverage())
		acc = append(acc, s.Accuracy())
		mpki = append(mpki, s.FusionMPKI())
		t.AddRow(name, stats.Pct(s.Coverage(), 2), stats.Pct(s.Accuracy(), 2),
			stats.F(s.FusionMPKI(), 4))
	}
	t.AddRow("average", stats.Pct(stats.Mean(cov), 2), stats.Pct(stats.Mean(acc), 2),
		stats.F(stats.Mean(mpki), 4))
	return t, nil
}

// TableCost reports the Helios storage budget (Sections IV-B7 and IV-C).
func (h *Harness) TableCost(ctx context.Context) (*stats.Table, error) {
	c := helios.Cost(helios.PaperParams())
	t := stats.NewTable("Helios storage budget", "structure", "bits")
	items := []struct {
		name string
		bits int
	}{
		{"allocation queue (nucleus bits + NCS tags)", c.AQBits},
		{"rename counters", c.RenameCounters},
		{"physical register nucleus bits (AQ)", c.PhysRegNucleusAQ},
		{"physical register nucleus bits (IQ)", c.PhysRegNucleusIQ},
		{"physical register nucleus bits (LQ)", c.PhysRegNucleusLQ},
		{"WaR rename buffer", c.WaRBuffer},
		{"RAT Inside-NCS bits", c.RATInsideNCS},
		{"IQ NCS-Ready bits", c.IQNCSReady},
		{"dispatch buffer", c.DispatchBuffer},
		{"RAT deadlock tags", c.RATDeadlockTags},
		{"rename deadlock bits", c.RenameDeadlock},
		{"ROB extended commit groups", c.ROBCommitGroups},
		{"LQ/SQ second access fields", c.LQSQSecondAccess},
		{"serializing + store-pair bits", c.SerializingBit + c.StorePairBit},
		{"NCSF support total", c.NCSFBits()},
		{"fusion predictor", c.FusionPredictor},
		{"total (predictor + NCSF)", c.TotalBits()},
		{"flush pointers (upper bound)", c.FlushPointers},
		{"grand total", c.TotalWithFlushBits()},
	}
	for _, it := range items {
		t.AddRow(it.name, fmt.Sprint(it.bits))
	}
	return t, nil
}

// MetricsTable reports the suite's record-once/replay-many observability
// counters: functional emulations performed vs replays served from the
// trace cache, plus a sorted snapshot of the result cache. Every row is
// a deterministic function of the work requested — wall times are
// deliberately excluded (see WallTimeTable) so two identical
// `experiments -metrics` runs produce byte-identical output.
func (h *Harness) MetricsTable() *stats.Table {
	m := h.Suite.Metrics()
	t := stats.NewTable("Trace layer: record-once/replay-many counters", "counter", "value")
	for _, row := range m.Rows() {
		t.AddRow(row[0], row[1])
	}
	cached := h.Suite.CacheSnapshot()
	t.AddRow("cached results", fmt.Sprint(len(cached)))
	for i, key := range cached {
		t.AddRow(fmt.Sprintf("cached[%d]", i), key)
	}
	return t
}

// WallTimeTable reports where the wall time went: phase totals plus —
// when the scheduler fanned cells out — the elapsed fan-out time, the
// serial-equivalent sum of per-cell walls, the realized speedup and
// each cell's wall. Wall time is inherently nondeterministic, so it
// lives in its own table that cmd/experiments only prints on request
// (and to stderr), keeping the default -metrics surface byte-stable.
func (h *Harness) WallTimeTable() *stats.Table {
	m := h.Suite.Metrics()
	t := stats.NewTable("Trace layer: wall time (nondeterministic)", "phase", "time")
	for _, row := range m.WallRows() {
		t.AddRow(row[0], row[1])
	}
	return t
}

// RunAll executes every experiment and returns the tables keyed by id.
func (h *Harness) RunAll(ctx context.Context) (map[string]*stats.Table, error) {
	// Warm the cache for the modes the experiments need, fanning
	// workload×mode cells across h.Parallel scheduler workers.
	h.Suite.PrefetchN(ctx, h.Workloads, fusion.Modes, h.Parallel)
	out := make(map[string]*stats.Table)
	for _, id := range IDs() {
		tbl, err := h.Run(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out[id] = tbl
	}
	return out, nil
}

// SortedIDs returns experiment ids in stable presentation order.
func SortedIDs(m map[string]*stats.Table) []string {
	ids := make([]string, 0, len(m))
	//helios:nondeterminism-ok ids are sorted into IDs() order below
	for id := range m {
		ids = append(ids, id)
	}
	order := map[string]int{}
	for i, id := range IDs() {
		order[id] = i
	}
	sort.Slice(ids, func(i, j int) bool { return order[ids[i]] < order[ids[j]] })
	return ids
}
