package experiments

import (
	"context"
	"testing"
)

// TestParallelMatchesSerial is the scheduler's end-to-end determinism
// gate: a fully parallel RunAll must render every figure and table —
// and the deterministic `-metrics` surface — byte-identical to a serial
// run. The CI race job runs this under -race, so it also serves as the
// data-race probe for the fan-out path.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(workers int) (map[string]string, string) {
		h := New(20_000)
		h.Workloads = []string{"crc32", "sha", "xz"}
		h.Parallel = workers
		tbls, err := h.RunAll(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rendered := make(map[string]string, len(tbls))
		for id, tbl := range tbls {
			rendered[id] = tbl.String()
		}
		return rendered, h.MetricsTable().String()
	}

	serial, serialMetrics := run(1)
	parallel, parallelMetrics := run(8)

	for _, id := range IDs() {
		if parallel[id] != serial[id] {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial[id], parallel[id])
		}
	}
	if parallelMetrics != serialMetrics {
		t.Errorf("-metrics surface differs:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialMetrics, parallelMetrics)
	}

	// The wall-time table is nondeterministic by nature, but its shape is
	// not: a parallel run must report the fan-out rows.
	h := New(20_000)
	h.Workloads = []string{"crc32"}
	h.Parallel = 4
	if _, err := h.RunAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	wt := h.WallTimeTable()
	found := false
	for i := 0; i < wt.NumRows(); i++ {
		if wt.Row(i)[0] == "realized speedup" {
			found = true
		}
	}
	if !found {
		t.Errorf("WallTimeTable misses the realized-speedup row:\n%s", wt)
	}
}
