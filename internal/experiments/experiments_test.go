package experiments

import (
	"context"

	"strconv"
	"strings"
	"testing"

	"helios/internal/fusion"
	"helios/internal/workloads"
)

// smallHarness runs with a reduced budget and a workload subset so every
// experiment stays fast in unit tests.
func smallHarness() *Harness {
	h := New(25_000)
	h.Workloads = []string{"crc32", "sha", "xz", "typeset", "mcf"}
	return h
}

func TestIDsDispatch(t *testing.T) {
	h := smallHarness()
	for _, id := range IDs() {
		tbl, err := h.Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.NumRows() == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := h.Run(context.Background(), "nope"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestFigure10Shape(t *testing.T) {
	h := smallHarness()
	tbl, err := h.Figure10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The last row is the geomean; parse the normalized IPCs.
	last := tbl.Row(tbl.NumRows() - 1)
	if last[0] != "geomean" {
		t.Fatalf("last row = %v", last)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	riscv := parse(last[1])   // RISCVFusion
	csf := parse(last[2])     // CSF-SBR
	rpp := parse(last[3])     // RISCVFusion++
	heliosV := parse(last[4]) // Helios
	oracle := parse(last[5])  // OracleFusion

	// The paper's qualitative ordering (Section V-B3): every fusion
	// flavour helps, Helios beats consecutive-only fusion, and the oracle
	// is the upper bound.
	if csf < 1.0 || rpp < 1.0 || heliosV < 1.0 || oracle < 1.0 {
		t.Errorf("fusion should not hurt on geomean: %v", last)
	}
	if heliosV < csf {
		t.Errorf("Helios (%v) must beat CSF-SBR (%v)", heliosV, csf)
	}
	if oracle+1e-9 < heliosV {
		t.Errorf("Oracle (%v) must be an upper bound over Helios (%v)", oracle, heliosV)
	}
	if rpp < riscv {
		t.Errorf("RISCVFusion++ (%v) must cover RISCVFusion (%v)", rpp, riscv)
	}
}

func TestTable3Sanity(t *testing.T) {
	h := smallHarness()
	tbl, err := h.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		acc := strings.TrimSuffix(row[2], "%")
		v, err := strconv.ParseFloat(acc, 64)
		if err != nil {
			t.Fatalf("bad accuracy cell %q", row[2])
		}
		// The predictor's confidence mechanism keeps accuracy high (the
		// paper reports 99.7% average).
		if v < 90 {
			t.Errorf("%s: accuracy %v%% suspiciously low", row[0], v)
		}
	}
}

func TestFigure2MemoryDominates(t *testing.T) {
	h := New(25_000)
	h.Workloads = []string{"xz", "typeset", "mcf", "fft"}
	tbl, err := h.Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Row(tbl.NumRows() - 1)
	mem, _ := strconv.ParseFloat(strings.TrimSuffix(last[1], "%"), 64)
	oth, _ := strconv.ParseFloat(strings.TrimSuffix(last[2], "%"), 64)
	// The paper's observation: memory pairing idioms dominate the other
	// idioms on average (5.6% vs 1.1% there).
	if mem <= oth {
		t.Errorf("memory idioms (%v%%) should dominate others (%v%%)", mem, oth)
	}
}

func TestFigure4CategoriesAddUp(t *testing.T) {
	h := smallHarness()
	tbl, err := h.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != len(h.Workloads)+1 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
}

func TestFigure8OracleCoversHelios(t *testing.T) {
	h := smallHarness()
	tbl, err := h.Figure8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Row(tbl.NumRows() - 1)
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	heliosTotal := parse(last[1]) + parse(last[2])
	oracleTotal := parse(last[3]) + parse(last[4])
	// Helios approaches the oracle's pair counts (paper: 12.2% vs 13.6% of
	// dynamic µ-ops); it must not exceed it by much nor collapse to zero.
	if heliosTotal <= 0 {
		t.Error("Helios fused nothing")
	}
	if heliosTotal > 1.3*oracleTotal+5 {
		t.Errorf("Helios pairs (%v%%) far exceed oracle (%v%%)", heliosTotal, oracleTotal)
	}
}

func TestTableCostMatchesPaper(t *testing.T) {
	h := smallHarness()
	tbl, err := h.TableCost(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]string{}
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		cells[row[0]] = row[1]
	}
	if cells["fusion predictor"] != "73728" {
		t.Errorf("FP bits = %s, want 73728 (72 Kbit)", cells["fusion predictor"])
	}
}

func TestRunAllSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	h := New(15_000)
	h.Workloads = []string{"crc32", "xz"}
	tables, err := h.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Errorf("tables = %d, want %d", len(tables), len(IDs()))
	}
	ids := SortedIDs(tables)
	if ids[0] != "fig2" {
		t.Errorf("sorted ids = %v", ids)
	}
}

// TestFigure10RecordsOncePerWorkload is the acceptance check for the
// record-once/replay-many trace layer: a full Figure 10 sweep performs
// exactly one functional emulation per workload, and every other
// configuration replays the recorded trace.
func TestFigure10RecordsOncePerWorkload(t *testing.T) {
	h := New(15_000)
	h.Workloads = []string{"crc32", "sha", "xz"}
	if _, err := h.Figure10(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := h.Suite.Metrics()
	n := uint64(len(h.Workloads))
	modes := uint64(len(fusion.Modes))
	if m.TraceMisses != n {
		t.Errorf("functional emulations = %d, want exactly %d (one per workload)", m.TraceMisses, n)
	}
	if m.TraceHits != n*(modes-1) {
		t.Errorf("trace cache hits = %d, want %d", m.TraceHits, n*(modes-1))
	}
	if m.PipelineRuns != n*modes {
		t.Errorf("pipeline runs = %d, want %d", m.PipelineRuns, n*modes)
	}

	tbl := h.MetricsTable()
	if tbl.NumRows() == 0 {
		t.Error("metrics table is empty")
	}
}

func TestHarnessDefaultsToAllWorkloads(t *testing.T) {
	h := New(1000)
	if len(h.Workloads) != len(workloads.Names()) {
		t.Errorf("harness workloads = %d, want %d", len(h.Workloads), len(workloads.Names()))
	}
}
