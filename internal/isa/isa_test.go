package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGoldenEncodings(t *testing.T) {
	// Golden values cross-checked against the RISC-V spec encodings.
	cases := []struct {
		inst Inst
		want uint32
	}{
		{Inst{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 3}, 0x00310093},
		{Inst{Op: OpLD, Rd: 5, Rs1: 6, Imm: 8}, 0x00833283},
		{Inst{Op: OpSD, Rs1: 8, Rs2: 7, Imm: 16}, 0x00743823},
		{Inst{Op: OpJAL, Rd: 1, Imm: 8}, 0x008000ef},
		{Inst{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -4}, 0xfe208ee3},
		{Inst{Op: OpLUI, Rd: 10, Imm: 0x12345000}, 0x12345537},
		{Inst{Op: OpADD, Rd: 3, Rs1: 4, Rs2: 5}, 0x005201b3},
		{Inst{Op: OpSUB, Rd: 3, Rs1: 4, Rs2: 5}, 0x405201b3},
		{Inst{Op: OpMUL, Rd: 3, Rs1: 4, Rs2: 5}, 0x025201b3},
		{Inst{Op: OpSRAI, Rd: 1, Rs1: 1, Imm: 32}, 0x4200d093},
		{Inst{Op: OpECALL}, 0x00000073},
		{Inst{Op: OpEBREAK}, 0x00100073},
	}
	for _, c := range cases {
		got, err := Encode(c.inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.inst, err)
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.inst, got, c.want)
		}
		back := Decode(c.want)
		if back != c.inst {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.want, back, c.inst)
		}
	}
}

// randInst generates a random valid instruction for the given opcode.
func randInst(op Opcode, r *rand.Rand) Inst {
	i := Inst{Op: op}
	if op.HasRd() {
		i.Rd = Reg(r.Intn(32))
	}
	if op.HasRs1() {
		i.Rs1 = Reg(r.Intn(32))
	}
	if op.HasRs2() {
		i.Rs2 = Reg(r.Intn(32))
	}
	switch op {
	case OpSLLI, OpSRLI, OpSRAI:
		i.Imm = int64(r.Intn(64))
	case OpSLLIW, OpSRLIW, OpSRAIW:
		i.Imm = int64(r.Intn(32))
	case OpLUI, OpAUIPC:
		i.Imm = int64(int32(r.Uint32() & 0xfffff000))
	case OpJAL:
		i.Imm = int64(r.Intn(1<<20)-1<<19) &^ 1
	case OpECALL, OpEBREAK, OpFENCE:
		// no immediate
	default:
		switch op.Format() {
		case FormatI, FormatS:
			i.Imm = int64(r.Intn(1<<12) - 1<<11)
		case FormatB:
			i.Imm = int64(r.Intn(1<<12)-1<<11) &^ 1
		}
	}
	return i
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for op := Opcode(1); op < numOpcodes; op++ {
		if op == OpInvalid {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			in := randInst(op, r)
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("Encode(%v): %v", in, err)
			}
			out := Decode(w)
			if out != in {
				t.Fatalf("round trip %v: encoded %#08x decoded to %v", in, w, out)
			}
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		i := Decode(w)
		// A decoded instruction must be either invalid or re-encodable.
		if i.Op == OpInvalid {
			return true
		}
		_, err := Encode(i)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbageIsInvalid(t *testing.T) {
	for _, w := range []uint32{0, 0xffffffff, 0x7f, 0x00000001} {
		if got := Decode(w); got.Op != OpInvalid {
			t.Errorf("Decode(%#08x) = %v, want invalid", w, got)
		}
	}
}

func TestRegNames(t *testing.T) {
	cases := []struct {
		name string
		reg  Reg
	}{
		{"zero", Zero}, {"ra", RA}, {"sp", SP}, {"a0", A0}, {"t6", T6},
		{"x0", Zero}, {"x10", A0}, {"x31", T6}, {"fp", S0}, {"s0", S0},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if !ok || got != c.reg {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", c.name, got, ok, c.reg)
		}
	}
	for _, bad := range []string{"x32", "q0", "", "x", "a99"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) succeeded, want failure", bad)
		}
	}
}

func TestOpcodeMetadata(t *testing.T) {
	if !OpLD.IsLoad() || OpLD.MemSize() != 8 {
		t.Error("ld metadata wrong")
	}
	if !OpSB.IsStore() || OpSB.MemSize() != 1 {
		t.Error("sb metadata wrong")
	}
	if !OpLBU.UnsignedLoad() || OpLB.UnsignedLoad() {
		t.Error("load signedness metadata wrong")
	}
	if !OpBEQ.IsBranch() || OpJAL.IsBranch() {
		t.Error("branch classification wrong")
	}
	if !OpJAL.IsControlFlow() || !OpJALR.IsControlFlow() || OpADD.IsControlFlow() {
		t.Error("control flow classification wrong")
	}
	if !OpFENCE.IsSerializing() || !OpECALL.IsSerializing() || OpADD.IsSerializing() {
		t.Error("serializing classification wrong")
	}
	if OpMUL.Class() != ClassMul || OpDIV.Class() != ClassDiv {
		t.Error("mul/div class wrong")
	}
	// Every named opcode resolves back through OpcodeByName.
	for op := Opcode(1); op < numOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	i := Inst{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}
	if tgt, ok := i.BranchTarget(0x100); !ok || tgt != 0xf8 {
		t.Errorf("BranchTarget = %#x, %v", tgt, ok)
	}
	j := Inst{Op: OpJALR, Rd: 0, Rs1: 1}
	if _, ok := j.BranchTarget(0x100); ok {
		t.Error("jalr should not have a static target")
	}
}

func TestReadsWritesReg(t *testing.T) {
	i := Inst{Op: OpADD, Rd: 3, Rs1: 4, Rs2: 5}
	if !i.WritesReg(3) || i.WritesReg(4) {
		t.Error("WritesReg wrong")
	}
	if !i.ReadsReg(4) || !i.ReadsReg(5) || i.ReadsReg(3) {
		t.Error("ReadsReg wrong")
	}
	z := Inst{Op: OpADD, Rd: 0, Rs1: 0, Rs2: 0}
	if z.WritesReg(0) || z.ReadsReg(0) {
		t.Error("x0 must never count as read or written")
	}
}
