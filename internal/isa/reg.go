// Package isa defines the RV64IM instruction set used throughout the
// simulator: architectural registers, opcodes with micro-architectural
// metadata, and binary encode/decode/disassemble routines.
//
// The subset implemented is the one exercised by the workloads in
// internal/workloads and covers the full RV64I base plus the M extension,
// FENCE, ECALL and EBREAK. Every instruction decodes to a single µ-op
// (as in the paper, where RISC-V memory instructions always translate to a
// single µ-op).
package isa

import "fmt"

// Reg is an architectural register index (x0..x31).
type Reg uint8

// Architectural registers by ABI name.
const (
	Zero Reg = iota // x0: hardwired zero
	RA              // x1: return address
	SP              // x2: stack pointer
	GP              // x3: global pointer
	TP              // x4: thread pointer
	T0              // x5
	T1              // x6
	T2              // x7
	S0              // x8 / fp
	S1              // x9
	A0              // x10
	A1              // x11
	A2              // x12
	A3              // x13
	A4              // x14
	A5              // x15
	A6              // x16
	A7              // x17
	S2              // x18
	S3              // x19
	S4              // x20
	S5              // x21
	S6              // x22
	S7              // x23
	S8              // x24
	S9              // x25
	S10             // x26
	S11             // x27
	T3              // x28
	T4              // x29
	T5              // x30
	T6              // x31
)

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

var abiNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register (e.g. "a0").
func (r Reg) String() string {
	if int(r) < len(abiNames) {
		return abiNames[r]
	}
	return fmt.Sprintf("x%d?", uint8(r))
}

// XName returns the numeric name of the register (e.g. "x10").
func (r Reg) XName() string { return fmt.Sprintf("x%d", uint8(r)) }

// RegByName resolves a register name, accepting both numeric ("x10") and
// ABI ("a0", "fp") forms. The second result reports whether the name was
// recognised.
func RegByName(name string) (Reg, bool) {
	if name == "fp" {
		return S0, true
	}
	for i, n := range abiNames {
		if n == name {
			return Reg(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		n := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		if n < NumRegs {
			return Reg(n), true
		}
	}
	return 0, false
}
