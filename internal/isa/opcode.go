package isa

// Format is the RISC-V instruction encoding format.
type Format uint8

// Encoding formats of RV64.
const (
	FormatR Format = iota // register-register
	FormatI               // register-immediate, loads, jalr
	FormatS               // stores
	FormatB               // conditional branches
	FormatU               // lui/auipc
	FormatJ               // jal
)

// Class is a coarse micro-architectural classification of an instruction,
// used for issue-port selection and execution latency.
type Class uint8

// Instruction classes.
const (
	ClassALU    Class = iota // single-cycle integer
	ClassMul                 // integer multiply
	ClassDiv                 // integer divide / remainder
	ClassLoad                // memory load
	ClassStore               // memory store
	ClassBranch              // conditional branch
	ClassJump                // jal/jalr
	ClassSystem              // ecall/ebreak/fence (serializing)
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassSystem:
		return "system"
	}
	return "unknown"
}

// Opcode identifies one RV64IM instruction.
type Opcode uint8

// RV64IM opcodes.
const (
	OpInvalid Opcode = iota

	// RV32I / RV64I upper-immediate and control flow.
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Loads.
	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU

	// Stores.
	OpSB
	OpSH
	OpSW
	OpSD

	// Register-immediate ALU.
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW

	// Register-register ALU.
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW

	// M extension.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW

	// System.
	OpFENCE
	OpECALL
	OpEBREAK

	numOpcodes
)

// NumOpcodes is the count of defined opcodes (including OpInvalid).
const NumOpcodes = int(numOpcodes)

// opInfo is the static metadata table for each opcode.
type opInfo struct {
	name     string
	format   Format
	class    Class
	memSize  uint8 // access size in bytes for loads/stores, else 0
	unsigned bool  // for loads: zero-extending
	hasRd    bool
	hasRs1   bool
	hasRs2   bool
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {name: "invalid", format: FormatI, class: ClassSystem},

	OpLUI:   {name: "lui", format: FormatU, class: ClassALU, hasRd: true},
	OpAUIPC: {name: "auipc", format: FormatU, class: ClassALU, hasRd: true},
	OpJAL:   {name: "jal", format: FormatJ, class: ClassJump, hasRd: true},
	OpJALR:  {name: "jalr", format: FormatI, class: ClassJump, hasRd: true, hasRs1: true},
	OpBEQ:   {name: "beq", format: FormatB, class: ClassBranch, hasRs1: true, hasRs2: true},
	OpBNE:   {name: "bne", format: FormatB, class: ClassBranch, hasRs1: true, hasRs2: true},
	OpBLT:   {name: "blt", format: FormatB, class: ClassBranch, hasRs1: true, hasRs2: true},
	OpBGE:   {name: "bge", format: FormatB, class: ClassBranch, hasRs1: true, hasRs2: true},
	OpBLTU:  {name: "bltu", format: FormatB, class: ClassBranch, hasRs1: true, hasRs2: true},
	OpBGEU:  {name: "bgeu", format: FormatB, class: ClassBranch, hasRs1: true, hasRs2: true},

	OpLB:  {name: "lb", format: FormatI, class: ClassLoad, memSize: 1, hasRd: true, hasRs1: true},
	OpLH:  {name: "lh", format: FormatI, class: ClassLoad, memSize: 2, hasRd: true, hasRs1: true},
	OpLW:  {name: "lw", format: FormatI, class: ClassLoad, memSize: 4, hasRd: true, hasRs1: true},
	OpLD:  {name: "ld", format: FormatI, class: ClassLoad, memSize: 8, hasRd: true, hasRs1: true},
	OpLBU: {name: "lbu", format: FormatI, class: ClassLoad, memSize: 1, unsigned: true, hasRd: true, hasRs1: true},
	OpLHU: {name: "lhu", format: FormatI, class: ClassLoad, memSize: 2, unsigned: true, hasRd: true, hasRs1: true},
	OpLWU: {name: "lwu", format: FormatI, class: ClassLoad, memSize: 4, unsigned: true, hasRd: true, hasRs1: true},

	OpSB: {name: "sb", format: FormatS, class: ClassStore, memSize: 1, hasRs1: true, hasRs2: true},
	OpSH: {name: "sh", format: FormatS, class: ClassStore, memSize: 2, hasRs1: true, hasRs2: true},
	OpSW: {name: "sw", format: FormatS, class: ClassStore, memSize: 4, hasRs1: true, hasRs2: true},
	OpSD: {name: "sd", format: FormatS, class: ClassStore, memSize: 8, hasRs1: true, hasRs2: true},

	OpADDI:  {name: "addi", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSLTI:  {name: "slti", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSLTIU: {name: "sltiu", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpXORI:  {name: "xori", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpORI:   {name: "ori", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpANDI:  {name: "andi", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSLLI:  {name: "slli", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSRLI:  {name: "srli", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSRAI:  {name: "srai", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpADDIW: {name: "addiw", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSLLIW: {name: "slliw", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSRLIW: {name: "srliw", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},
	OpSRAIW: {name: "sraiw", format: FormatI, class: ClassALU, hasRd: true, hasRs1: true},

	OpADD:  {name: "add", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSUB:  {name: "sub", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSLL:  {name: "sll", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSLT:  {name: "slt", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSLTU: {name: "sltu", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpXOR:  {name: "xor", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSRL:  {name: "srl", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSRA:  {name: "sra", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpOR:   {name: "or", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpAND:  {name: "and", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpADDW: {name: "addw", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSUBW: {name: "subw", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSLLW: {name: "sllw", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSRLW: {name: "srlw", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OpSRAW: {name: "sraw", format: FormatR, class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},

	OpMUL:    {name: "mul", format: FormatR, class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	OpMULH:   {name: "mulh", format: FormatR, class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	OpMULHSU: {name: "mulhsu", format: FormatR, class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	OpMULHU:  {name: "mulhu", format: FormatR, class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	OpDIV:    {name: "div", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpDIVU:   {name: "divu", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpREM:    {name: "rem", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpREMU:   {name: "remu", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpMULW:   {name: "mulw", format: FormatR, class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	OpDIVW:   {name: "divw", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpDIVUW:  {name: "divuw", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpREMW:   {name: "remw", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	OpREMUW:  {name: "remuw", format: FormatR, class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},

	OpFENCE:  {name: "fence", format: FormatI, class: ClassSystem},
	OpECALL:  {name: "ecall", format: FormatI, class: ClassSystem},
	OpEBREAK: {name: "ebreak", format: FormatI, class: ClassSystem},
}

// String returns the assembly mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opTable) {
		return opTable[op].name
	}
	return "op?"
}

// Format returns the encoding format of the opcode.
func (op Opcode) Format() Format { return opTable[op].format }

// Class returns the micro-architectural class of the opcode.
func (op Opcode) Class() Class { return opTable[op].class }

// MemSize returns the access size in bytes for loads and stores, 0 otherwise.
func (op Opcode) MemSize() uint8 { return opTable[op].memSize }

// IsLoad reports whether the opcode is a memory load.
func (op Opcode) IsLoad() bool { return opTable[op].class == ClassLoad }

// IsStore reports whether the opcode is a memory store.
func (op Opcode) IsStore() bool { return opTable[op].class == ClassStore }

// IsBranch reports whether the opcode is a conditional branch.
func (op Opcode) IsBranch() bool { return opTable[op].class == ClassBranch }

// IsControlFlow reports whether the opcode can change control flow.
func (op Opcode) IsControlFlow() bool {
	c := opTable[op].class
	return c == ClassBranch || c == ClassJump
}

// IsSerializing reports whether the opcode serializes the pipeline
// (fences and environment calls).
func (op Opcode) IsSerializing() bool { return opTable[op].class == ClassSystem }

// UnsignedLoad reports whether a load zero-extends its result.
func (op Opcode) UnsignedLoad() bool { return opTable[op].unsigned }

// HasRd reports whether the opcode writes an integer destination register.
func (op Opcode) HasRd() bool { return opTable[op].hasRd }

// HasRs1 reports whether the opcode reads rs1.
func (op Opcode) HasRs1() bool { return opTable[op].hasRs1 }

// HasRs2 reports whether the opcode reads rs2.
func (op Opcode) HasRs2() bool { return opTable[op].hasRs2 }

// OpcodeByName resolves an assembly mnemonic to an opcode.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opTable))
	for op := Opcode(1); op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
