package isa

// Decode translates a 32-bit RV64IM instruction word into an Inst.
// Unrecognised words decode to an Inst with Op == OpInvalid.
func Decode(w uint32) Inst {
	major := w & 0x7f
	rd := Reg(w >> 7 & 31)
	funct3 := w >> 12 & 7
	rs1 := Reg(w >> 15 & 31)
	rs2 := Reg(w >> 20 & 31)
	funct7 := w >> 25 & 0x7f

	switch major {
	case majLUI:
		return Inst{Op: OpLUI, Rd: rd, Imm: int64(int32(w & 0xfffff000))}
	case majAUIPC:
		return Inst{Op: OpAUIPC, Rd: rd, Imm: int64(int32(w & 0xfffff000))}
	case majJAL:
		return Inst{Op: OpJAL, Rd: rd, Imm: immJ(w)}
	case majJALR:
		if funct3 == 0 {
			return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case majBranch:
		var op Opcode
		switch funct3 {
		case 0b000:
			op = OpBEQ
		case 0b001:
			op = OpBNE
		case 0b100:
			op = OpBLT
		case 0b101:
			op = OpBGE
		case 0b110:
			op = OpBLTU
		case 0b111:
			op = OpBGEU
		default:
			return Inst{}
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB(w)}
	case majLoad:
		ops := [8]Opcode{OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU, OpInvalid}
		op := ops[funct3]
		if op == OpInvalid {
			return Inst{}
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}
	case majStore:
		if funct3 > 0b011 {
			return Inst{}
		}
		ops := [4]Opcode{OpSB, OpSH, OpSW, OpSD}
		return Inst{Op: ops[funct3], Rs1: rs1, Rs2: rs2, Imm: immS(w)}
	case majOpImm:
		switch funct3 {
		case 0b000:
			return Inst{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b010:
			return Inst{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b011:
			return Inst{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b100:
			return Inst{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b110:
			return Inst{Op: OpORI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b111:
			return Inst{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b001:
			if funct7>>1 == 0 {
				return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 63)}
			}
		case 0b101:
			switch funct7 >> 1 {
			case 0b000000:
				return Inst{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 63)}
			case 0b010000:
				return Inst{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 63)}
			}
		}
	case majOpImmW:
		switch funct3 {
		case 0b000:
			return Inst{Op: OpADDIW, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 0b001:
			if funct7 == 0 {
				return Inst{Op: OpSLLIW, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 31)}
			}
		case 0b101:
			switch funct7 {
			case 0b0000000:
				return Inst{Op: OpSRLIW, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 31)}
			case 0b0100000:
				return Inst{Op: OpSRAIW, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 31)}
			}
		}
	case majOp:
		op := decodeOpRR(funct3, funct7, false)
		if op != OpInvalid {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
		}
	case majOpW:
		op := decodeOpRR(funct3, funct7, true)
		if op != OpInvalid {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
		}
	case majMisc:
		if funct3 == 0 {
			return Inst{Op: OpFENCE}
		}
	case majSystem:
		if funct3 == 0 {
			switch w >> 20 {
			case 0:
				return Inst{Op: OpECALL}
			case 1:
				return Inst{Op: OpEBREAK}
			}
		}
	}
	return Inst{}
}

func decodeOpRR(funct3, funct7 uint32, wide bool) Opcode {
	switch funct7 {
	case 0b0000000:
		if wide {
			switch funct3 {
			case 0b000:
				return OpADDW
			case 0b001:
				return OpSLLW
			case 0b101:
				return OpSRLW
			}
			return OpInvalid
		}
		ops := [8]Opcode{OpADD, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpOR, OpAND}
		return ops[funct3]
	case 0b0100000:
		switch funct3 {
		case 0b000:
			if wide {
				return OpSUBW
			}
			return OpSUB
		case 0b101:
			if wide {
				return OpSRAW
			}
			return OpSRA
		}
	case 0b0000001:
		if wide {
			switch funct3 {
			case 0b000:
				return OpMULW
			case 0b100:
				return OpDIVW
			case 0b101:
				return OpDIVUW
			case 0b110:
				return OpREMW
			case 0b111:
				return OpREMUW
			}
			return OpInvalid
		}
		ops := [8]Opcode{OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}
		return ops[funct3]
	}
	return OpInvalid
}

// Immediate extraction helpers; all sign-extend.

func immI(w uint32) int64 { return int64(int32(w) >> 20) }

func immS(w uint32) int64 {
	return int64(int32(w&0xfe000000)>>20) | int64(w>>7&31)
}

func immB(w uint32) int64 {
	imm := int64(int32(w&0x80000000)>>19) | // bit 12
		int64(w>>25&0x3f)<<5 | // bits 10:5
		int64(w>>8&0xf)<<1 | // bits 4:1
		int64(w>>7&1)<<11 // bit 11
	return imm
}

func immJ(w uint32) int64 {
	imm := int64(int32(w&0x80000000)>>11) | // bit 20
		int64(w>>21&0x3ff)<<1 | // bits 10:1
		int64(w>>20&1)<<11 | // bit 11
		int64(w>>12&0xff)<<12 // bits 19:12
	return imm
}
