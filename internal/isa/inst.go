package isa

import "fmt"

// Inst is one decoded RV64IM instruction.
//
// Imm holds the sign-extended immediate for I/S/B/U/J formats (for U
// formats it is the already-shifted 32-bit value, i.e. imm<<12). For shift
// immediates it holds the 6-bit shift amount.
type Inst struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Valid reports whether the instruction holds a defined opcode.
func (i Inst) Valid() bool { return i.Op != OpInvalid && int(i.Op) < NumOpcodes }

// String renders the instruction in assembly syntax.
func (i Inst) String() string {
	switch i.Op {
	case OpInvalid:
		return "invalid"
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", i.Op, i.Rd, uint32(i.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpSB, OpSH, OpSW, OpSD:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case OpFENCE, OpECALL, OpEBREAK:
		return i.Op.String()
	}
	switch i.Op.Format() {
	case FormatI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
	return i.Op.String()
}

// BranchTarget returns the control-flow target of a branch or jal
// instruction located at pc. For jalr the target depends on a register
// value and cannot be computed statically; ok is false in that case.
func (i Inst) BranchTarget(pc uint64) (target uint64, ok bool) {
	switch i.Op {
	case OpJAL:
		return pc + uint64(i.Imm), true
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return pc + uint64(i.Imm), true
	}
	return 0, false
}

// WritesReg reports whether the instruction writes architectural register r
// (never true for x0, which is hardwired to zero).
func (i Inst) WritesReg(r Reg) bool {
	return i.Op.HasRd() && i.Rd == r && r != Zero
}

// ReadsReg reports whether the instruction reads architectural register r.
func (i Inst) ReadsReg(r Reg) bool {
	if r == Zero {
		return false
	}
	return (i.Op.HasRs1() && i.Rs1 == r) || (i.Op.HasRs2() && i.Rs2 == r)
}
