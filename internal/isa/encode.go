package isa

import "fmt"

// RISC-V major opcode fields (bits 6:0).
const (
	majLUI    = 0b0110111
	majAUIPC  = 0b0010111
	majJAL    = 0b1101111
	majJALR   = 0b1100111
	majBranch = 0b1100011
	majLoad   = 0b0000011
	majStore  = 0b0100011
	majOpImm  = 0b0010011
	majOpImmW = 0b0011011
	majOp     = 0b0110011
	majOpW    = 0b0111011
	majMisc   = 0b0001111
	majSystem = 0b1110011
)

// encSpec describes how an opcode maps onto binary fields.
type encSpec struct {
	major  uint32
	funct3 uint32
	funct7 uint32
}

var encTable = map[Opcode]encSpec{
	OpLUI:   {major: majLUI},
	OpAUIPC: {major: majAUIPC},
	OpJAL:   {major: majJAL},
	OpJALR:  {major: majJALR, funct3: 0},

	OpBEQ:  {major: majBranch, funct3: 0b000},
	OpBNE:  {major: majBranch, funct3: 0b001},
	OpBLT:  {major: majBranch, funct3: 0b100},
	OpBGE:  {major: majBranch, funct3: 0b101},
	OpBLTU: {major: majBranch, funct3: 0b110},
	OpBGEU: {major: majBranch, funct3: 0b111},

	OpLB:  {major: majLoad, funct3: 0b000},
	OpLH:  {major: majLoad, funct3: 0b001},
	OpLW:  {major: majLoad, funct3: 0b010},
	OpLD:  {major: majLoad, funct3: 0b011},
	OpLBU: {major: majLoad, funct3: 0b100},
	OpLHU: {major: majLoad, funct3: 0b101},
	OpLWU: {major: majLoad, funct3: 0b110},

	OpSB: {major: majStore, funct3: 0b000},
	OpSH: {major: majStore, funct3: 0b001},
	OpSW: {major: majStore, funct3: 0b010},
	OpSD: {major: majStore, funct3: 0b011},

	OpADDI:  {major: majOpImm, funct3: 0b000},
	OpSLTI:  {major: majOpImm, funct3: 0b010},
	OpSLTIU: {major: majOpImm, funct3: 0b011},
	OpXORI:  {major: majOpImm, funct3: 0b100},
	OpORI:   {major: majOpImm, funct3: 0b110},
	OpANDI:  {major: majOpImm, funct3: 0b111},
	OpSLLI:  {major: majOpImm, funct3: 0b001, funct7: 0b0000000},
	OpSRLI:  {major: majOpImm, funct3: 0b101, funct7: 0b0000000},
	OpSRAI:  {major: majOpImm, funct3: 0b101, funct7: 0b0100000},
	OpADDIW: {major: majOpImmW, funct3: 0b000},
	OpSLLIW: {major: majOpImmW, funct3: 0b001, funct7: 0b0000000},
	OpSRLIW: {major: majOpImmW, funct3: 0b101, funct7: 0b0000000},
	OpSRAIW: {major: majOpImmW, funct3: 0b101, funct7: 0b0100000},

	OpADD:  {major: majOp, funct3: 0b000, funct7: 0b0000000},
	OpSUB:  {major: majOp, funct3: 0b000, funct7: 0b0100000},
	OpSLL:  {major: majOp, funct3: 0b001, funct7: 0b0000000},
	OpSLT:  {major: majOp, funct3: 0b010, funct7: 0b0000000},
	OpSLTU: {major: majOp, funct3: 0b011, funct7: 0b0000000},
	OpXOR:  {major: majOp, funct3: 0b100, funct7: 0b0000000},
	OpSRL:  {major: majOp, funct3: 0b101, funct7: 0b0000000},
	OpSRA:  {major: majOp, funct3: 0b101, funct7: 0b0100000},
	OpOR:   {major: majOp, funct3: 0b110, funct7: 0b0000000},
	OpAND:  {major: majOp, funct3: 0b111, funct7: 0b0000000},

	OpADDW: {major: majOpW, funct3: 0b000, funct7: 0b0000000},
	OpSUBW: {major: majOpW, funct3: 0b000, funct7: 0b0100000},
	OpSLLW: {major: majOpW, funct3: 0b001, funct7: 0b0000000},
	OpSRLW: {major: majOpW, funct3: 0b101, funct7: 0b0000000},
	OpSRAW: {major: majOpW, funct3: 0b101, funct7: 0b0100000},

	OpMUL:    {major: majOp, funct3: 0b000, funct7: 0b0000001},
	OpMULH:   {major: majOp, funct3: 0b001, funct7: 0b0000001},
	OpMULHSU: {major: majOp, funct3: 0b010, funct7: 0b0000001},
	OpMULHU:  {major: majOp, funct3: 0b011, funct7: 0b0000001},
	OpDIV:    {major: majOp, funct3: 0b100, funct7: 0b0000001},
	OpDIVU:   {major: majOp, funct3: 0b101, funct7: 0b0000001},
	OpREM:    {major: majOp, funct3: 0b110, funct7: 0b0000001},
	OpREMU:   {major: majOp, funct3: 0b111, funct7: 0b0000001},
	OpMULW:   {major: majOpW, funct3: 0b000, funct7: 0b0000001},
	OpDIVW:   {major: majOpW, funct3: 0b100, funct7: 0b0000001},
	OpDIVUW:  {major: majOpW, funct3: 0b101, funct7: 0b0000001},
	OpREMW:   {major: majOpW, funct3: 0b110, funct7: 0b0000001},
	OpREMUW:  {major: majOpW, funct3: 0b111, funct7: 0b0000001},

	OpFENCE:  {major: majMisc, funct3: 0b000},
	OpECALL:  {major: majSystem, funct3: 0b000},
	OpEBREAK: {major: majSystem, funct3: 0b000},
}

// Encode produces the 32-bit binary encoding of the instruction.
func Encode(i Inst) (uint32, error) {
	spec, ok := encTable[i.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode opcode %v", i.Op)
	}
	rd := uint32(i.Rd) & 31
	rs1 := uint32(i.Rs1) & 31
	rs2 := uint32(i.Rs2) & 31
	base := spec.major | spec.funct3<<12

	switch i.Op.Format() {
	case FormatR:
		return base | rd<<7 | rs1<<15 | rs2<<20 | spec.funct7<<25, nil
	case FormatU:
		if i.Imm&0xfff != 0 {
			return 0, fmt.Errorf("isa: U-type immediate %#x has low bits set", i.Imm)
		}
		if i.Imm != int64(int32(i.Imm)) {
			return 0, fmt.Errorf("isa: U-type immediate %#x out of range", i.Imm)
		}
		return base | rd<<7 | uint32(i.Imm)&0xfffff000, nil
	case FormatJ:
		imm := i.Imm
		if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
			return 0, fmt.Errorf("isa: J-type immediate %d out of range", imm)
		}
		u := uint32(imm)
		enc := (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u >> 12 & 0xff << 12)
		return base | rd<<7 | enc, nil
	case FormatB:
		imm := i.Imm
		if imm < -(1<<12) || imm >= 1<<12 || imm&1 != 0 {
			return 0, fmt.Errorf("isa: B-type immediate %d out of range", imm)
		}
		u := uint32(imm)
		enc := (u>>12&1)<<31 | (u>>5&0x3f)<<25 | (u>>1&0xf)<<8 | (u >> 11 & 1 << 7)
		return base | rs1<<15 | rs2<<20 | enc, nil
	case FormatS:
		imm := i.Imm
		if imm < -(1<<11) || imm >= 1<<11 {
			return 0, fmt.Errorf("isa: S-type immediate %d out of range", imm)
		}
		u := uint32(imm) & 0xfff
		return base | (u&0x1f)<<7 | rs1<<15 | rs2<<20 | (u>>5)<<25, nil
	case FormatI:
		switch i.Op {
		case OpSLLI, OpSRLI, OpSRAI:
			if i.Imm < 0 || i.Imm > 63 {
				return 0, fmt.Errorf("isa: shift amount %d out of range", i.Imm)
			}
			return base | rd<<7 | rs1<<15 | uint32(i.Imm)<<20 | (spec.funct7>>1)<<26, nil
		case OpSLLIW, OpSRLIW, OpSRAIW:
			if i.Imm < 0 || i.Imm > 31 {
				return 0, fmt.Errorf("isa: shift amount %d out of range", i.Imm)
			}
			return base | rd<<7 | rs1<<15 | uint32(i.Imm)<<20 | spec.funct7<<25, nil
		case OpECALL:
			return base, nil
		case OpEBREAK:
			return base | 1<<20, nil
		case OpFENCE:
			return base, nil
		}
		imm := i.Imm
		if imm < -(1<<11) || imm >= 1<<11 {
			return 0, fmt.Errorf("isa: I-type immediate %d out of range", imm)
		}
		return base | rd<<7 | rs1<<15 | (uint32(imm)&0xfff)<<20, nil
	}
	return 0, fmt.Errorf("isa: unknown format for %v", i.Op)
}

// MustEncode is like Encode but panics on error; for use with instruction
// constants in tests and workloads.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
