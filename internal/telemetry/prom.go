package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"helios/internal/stats"
)

// PromWriter renders Prometheus text exposition format 0.0.4
// (`text/plain; version=0.0.4`) or, via NewOpenMetricsWriter,
// OpenMetrics 1.0.0: one HELP/TYPE header per metric family followed
// by its samples. Callers emit families in order; the writer tracks
// seen names and refuses a family that reappears after another
// family's samples (promtool rejects ungrouped families). Errors
// latch: the first write or format error is kept and later calls
// no-op.
//
// The OpenMetrics dialect differs in three ways, all handled here so
// call sites are format-agnostic: counter families are TYPE-declared
// without the `_total` suffix (samples keep it), histogram bucket
// samples may carry `# {trace_id="..."} value timestamp` exemplars,
// and the exposition must end with `# EOF` (Close emits it).
type PromWriter struct {
	w    io.Writer
	om   bool
	err  error
	seen map[string]bool
	last string
}

// PromContentType is the Content-Type of the classic 0.0.4 exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the Content-Type of the OpenMetrics
// exposition — the version heliosd advertises when exemplars are on.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewPromWriter wraps w in the classic 0.0.4 dialect; exemplars passed
// to HistogramEx/HistogramVec are silently dropped (0.0.4 has no
// exemplar syntax).
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// NewOpenMetricsWriter wraps w in the OpenMetrics 1.0.0 dialect.
// Callers must Close() the writer to terminate the exposition with
// `# EOF` (LintExposition enforces it).
func NewOpenMetricsWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, om: true, seen: make(map[string]bool)}
}

// Close terminates an OpenMetrics exposition. No-op in 0.0.4 mode.
func (p *PromWriter) Close() {
	if p.om {
		p.printf("# EOF\n")
	}
}

// Err reports the latched error, if any.
func (p *PromWriter) Err() error { return p.err }

// Label is one name="value" sample label.
type Label struct {
	Name  string
	Value string
}

func (p *PromWriter) header(name, typ, help string) {
	if p.err != nil {
		return
	}
	if !promNameRe.MatchString(name) {
		p.err = fmt.Errorf("telemetry: invalid metric name %q", name)
		return
	}
	if p.seen[name] {
		p.err = fmt.Errorf("telemetry: metric family %q emitted twice", name)
		return
	}
	p.seen[name] = true
	p.last = name
	fam := name
	if p.om && typ == "counter" {
		// OpenMetrics declares the counter family without _total; the
		// samples keep the suffix.
		fam = strings.TrimSuffix(name, "_total")
	}
	p.printf("# HELP %s %s\n# TYPE %s %s\n", fam, escapeHelp(help), fam, typ)
}

func (p *PromWriter) sample(name string, labels []Label, value string) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%s=%q", l.Name, l.Value)
		}
		sb.WriteByte('}')
	}
	p.printf("%s %s\n", sb.String(), value)
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Counter emits a single-sample counter family.
func (p *PromWriter) Counter(name, help string, v uint64, labels ...Label) {
	p.header(name, "counter", help)
	p.sample(name, labels, strconv.FormatUint(v, 10))
}

// CounterVec emits one counter family with one sample per label set.
func (p *PromWriter) CounterVec(name, help string, samples []LabeledValue) {
	p.header(name, "counter", help)
	for _, s := range samples {
		p.sample(name, s.Labels, strconv.FormatUint(s.Value, 10))
	}
}

// LabeledValue is one sample of a CounterVec/GaugeVec family.
type LabeledValue struct {
	Labels []Label
	Value  uint64
}

// Gauge emits a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	p.header(name, "gauge", help)
	p.sample(name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// histBucketStride picks which stats.Histogram bucket boundaries become
// `le` bounds: every 4th boundary from 15 up (one per octave), which
// are exact cumulative cut points of the underlying geometry — the
// exposition never interpolates.
const histBucketStride = 4

// Histogram emits h as a Prometheus histogram family in base units of
// the caller's choosing (heliosd uses microseconds and says so in the
// metric name, per the naming convention in DESIGN.md §16). Samples
// clamped into the last bucket by the 2^24 geometry cap surface in the
// final finite bucket, so the +Inf bucket always equals _count.
func (p *PromWriter) Histogram(name, help string, h stats.Histogram, labels ...Label) {
	p.header(name, "histogram", help)
	p.histSeries(name, labels, h, Exemplars{})
}

// Exemplars attaches an ExemplarSet to a histogram emission. Keep, when
// non-nil, is the retention filter: exemplars whose trace it rejects
// are skipped, so a bucket never links to a trace /tracez has evicted.
// Ignored entirely in 0.0.4 mode.
type Exemplars struct {
	Set  *ExemplarSet
	Keep func(traceID uint64) bool
}

// HistogramEx is Histogram plus per-bucket exemplars (OpenMetrics mode
// only). Each exposed `le` bucket carries the newest retained exemplar
// among the underlying fine buckets it covers.
func (p *PromWriter) HistogramEx(name, help string, h stats.Histogram, ex Exemplars, labels ...Label) {
	p.header(name, "histogram", help)
	p.histSeries(name, labels, h, ex)
}

// LabeledHist is one series of a HistogramVec family. Ex is optional
// and only consulted in OpenMetrics mode.
type LabeledHist struct {
	Labels []Label
	Hist   stats.Histogram
	Ex     Exemplars
}

// HistogramVec emits one histogram family with one bucket series per
// label set (heliosd's span-duration histograms label by span name).
func (p *PromWriter) HistogramVec(name, help string, series []LabeledHist) {
	p.header(name, "histogram", help)
	for _, s := range series {
		p.histSeries(name, s.Labels, s.Hist, s.Ex)
	}
}

func (p *PromWriter) histSeries(name string, labels []Label, h stats.Histogram, ex Exemplars) {
	var cum uint64
	prev := -1 // first exposed bucket covers fine buckets [0, 15]
	i := 0
	for i < stats.NumHistBuckets {
		cum += h.Buckets[i]
		if i >= 15 && (i-15)%histBucketStride == 0 {
			p.bucketSample(name, labels, strconv.FormatUint(stats.HistBucketBound(i), 10), cum, p.pickExemplar(ex, prev+1, i))
			prev = i
		}
		i++
	}
	p.bucketSample(name, labels, "+Inf", h.Count, nil)
	p.sample(name+"_sum", labels, strconv.FormatUint(h.Sum, 10))
	p.sample(name+"_count", labels, strconv.FormatUint(h.Count, 10))
}

func (p *PromWriter) pickExemplar(ex Exemplars, lo, hi int) *Exemplar {
	if !p.om || ex.Set == nil {
		return nil
	}
	e, ok := ex.Set.Pick(lo, hi, ex.Keep)
	if !ok {
		return nil
	}
	return &e
}

func (p *PromWriter) bucketSample(name string, labels []Label, le string, v uint64, ex *Exemplar) {
	bl := make([]Label, 0, len(labels)+1)
	bl = append(bl, labels...)
	bl = append(bl, Label{Name: "le", Value: le})
	if ex == nil {
		p.sample(name+"_bucket", bl, strconv.FormatUint(v, 10))
		return
	}
	value := strconv.FormatUint(v, 10) +
		fmt.Sprintf(" # {trace_id=%q} %d %s",
			strconv.FormatUint(ex.TraceID, 10), ex.Value,
			strconv.FormatFloat(float64(ex.TSUnixUS)/1e6, 'f', 6, 64))
	p.sample(name+"_bucket", bl, value)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// LintExposition is the promtool-shaped checker the CI smoke job runs
// against /metricz output — stdlib-only, mirroring `promtool check
// metrics`-adjacent parse rules for format 0.0.4:
//
//   - metric and label names match the Prometheus grammar
//   - TYPE lines precede their family's samples, appear at most once,
//     and carry a known type; HELP at most once per family
//   - families are contiguous (no interleaving) and samples parse as
//     <name>{labels} <value> with a float-parseable value
//   - no duplicate name+labelset
//   - histogram families have ascending cumulative le buckets ending
//     in +Inf, plus _sum and _count, with _count equal to the +Inf
//     bucket
//
// It returns the first violation found, prefixed with its line number.
func LintExposition(r io.Reader) error {
	return LintExpositionOptions(r, LintOptions{})
}

// LintOptions extends the linter to the OpenMetrics dialect.
type LintOptions struct {
	// OpenMetrics switches on the 1.0.0 rules: the exposition must end
	// with `# EOF`, counter families are TYPE-declared without `_total`
	// while samples keep it, and `# {...}` exemplars are legal on
	// _bucket and _total samples (they are an error in 0.0.4 mode).
	OpenMetrics bool
	// ResolveTrace, when non-nil, is the retention-consistency check:
	// every exemplar's trace_id must resolve (heliosctl points it at
	// /tracez?id=..., tests at Tracer.Retained). Dangling exemplars —
	// a bucket deep-linking to an evicted trace — are a lint error.
	ResolveTrace func(traceID string) bool
}

// LintExpositionOptions lints r under opts; see LintExposition.
func LintExpositionOptions(r io.Reader, opts LintOptions) error {
	l := &promLinter{
		types:   map[string]string{},
		helped:  map[string]bool{},
		closed:  map[string]bool{},
		seen:    map[string]bool{},
		hists:   map[string]*histCheck{},
		om:      opts.OpenMetrics,
		resolve: opts.ResolveTrace,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if err := l.line(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty exposition")
	}
	return l.finish()
}

type histCheck struct {
	lastLE   float64
	haveInf  bool
	infCount float64
	count    float64
	haveCnt  bool
	haveSum  bool
}

type promLinter struct {
	types   map[string]string // family → declared type
	helped  map[string]bool
	closed  map[string]bool // family had samples and a later family began
	seen    map[string]bool // name+labels duplicates
	hists   map[string]*histCheck
	cur     string // family currently being emitted
	om      bool
	resolve func(string) bool
	sawEOF  bool
}

var (
	promHelpRe     = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	promTypeRe     = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped|unknown)$`)
	promSampleRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\d+)?\s*$`)
	promLabelRe    = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	promExemplarRe = regexp.MustCompile(`^\{([^}]*)\} (\S+)( (\S+))?$`)
)

// family strips histogram/summary sample suffixes to the declaring
// family name when that family was TYPE-declared, and — in the
// OpenMetrics dialect — the `_total` suffix of counter samples.
func (l *promLinter) family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := l.types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	if base, ok := strings.CutSuffix(name, "_total"); ok {
		if l.types[base] == "counter" {
			return base
		}
	}
	return name
}

func (l *promLinter) enter(fam string) error {
	if l.cur == fam {
		return nil
	}
	if l.cur != "" {
		l.closed[l.cur] = true
	}
	if l.closed[fam] {
		return fmt.Errorf("family %q reappears after other families (samples must be grouped)", fam)
	}
	l.cur = fam
	return nil
}

func (l *promLinter) line(s string) error {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	if l.sawEOF {
		return fmt.Errorf("content after # EOF: %q", s)
	}
	if strings.HasPrefix(s, "#") {
		if s == "# EOF" {
			if l.om {
				l.sawEOF = true
			}
			return nil // free-form comment in 0.0.4, terminator in OpenMetrics
		}
		if m := promHelpRe.FindStringSubmatch(s); m != nil {
			if l.helped[m[1]] {
				return fmt.Errorf("second HELP for %q", m[1])
			}
			l.helped[m[1]] = true
			return l.enter(m[1])
		}
		if m := promTypeRe.FindStringSubmatch(s); m != nil {
			if _, dup := l.types[m[1]]; dup {
				return fmt.Errorf("second TYPE for %q", m[1])
			}
			l.types[m[1]] = m[2]
			return l.enter(m[1])
		}
		if strings.HasPrefix(s, "# HELP") || strings.HasPrefix(s, "# TYPE") {
			return fmt.Errorf("malformed comment line %q", s)
		}
		return nil // free-form comment
	}
	s, ex, err := l.splitExemplar(s)
	if err != nil {
		return err
	}
	m := promSampleRe.FindStringSubmatch(s)
	if m == nil {
		return fmt.Errorf("unparseable sample line %q", s)
	}
	name, rawLabels, rawValue := m[1], m[3], m[4]
	if ex != nil {
		if !strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("exemplar on %q (only _bucket and _total samples may carry exemplars)", name)
		}
	}
	value, err := parsePromValue(rawValue)
	if err != nil {
		return fmt.Errorf("sample %q: %w", name, err)
	}
	var le string
	canon := name
	var nonLE []string
	if rawLabels != "" {
		pairs := splitLabels(rawLabels)
		var parts []string
		for _, pair := range pairs {
			lm := promLabelRe.FindStringSubmatch(pair)
			if lm == nil {
				return fmt.Errorf("bad label %q in %q", pair, name)
			}
			if lm[1] == "le" {
				le = lm[2]
			} else {
				nonLE = append(nonLE, lm[1]+"="+lm[2])
			}
			parts = append(parts, lm[1]+"="+lm[2])
		}
		sort.Strings(parts)
		canon += "{" + strings.Join(parts, ",") + "}"
	}
	if l.seen[canon] {
		return fmt.Errorf("duplicate sample %q", canon)
	}
	l.seen[canon] = true
	fam := l.family(name)
	if err := l.enter(fam); err != nil {
		return err
	}
	typ, declared := l.types[fam]
	if !declared {
		return fmt.Errorf("sample %q lacks a preceding TYPE declaration", name)
	}
	if typ == "histogram" {
		// A vector histogram family holds one independent bucket series
		// per non-le label set; bucket ordering and the +Inf/_count
		// equation hold within a series, not across the family.
		sort.Strings(nonLE)
		series := fam + "{" + strings.Join(nonLE, ",") + "}"
		return l.histSample(fam, series, name, le, value, ex)
	}
	return nil
}

// lintExemplar is a parsed `# {labels} value [timestamp]` sample tail.
type lintExemplar struct {
	traceID string
	value   float64
}

// splitExemplar peels an OpenMetrics exemplar off a sample line,
// validating its syntax and (when a resolver is installed) that its
// trace_id resolves to a retained trace. Returns the line with the
// exemplar removed.
func (l *promLinter) splitExemplar(s string) (string, *lintExemplar, error) {
	idx := strings.Index(s, " # ")
	if idx < 0 {
		return s, nil, nil
	}
	if !l.om {
		return s, nil, fmt.Errorf("exemplar syntax in a 0.0.4 exposition: %q", s[idx+1:])
	}
	tail := s[idx+3:]
	m := promExemplarRe.FindStringSubmatch(tail)
	if m == nil {
		return s, nil, fmt.Errorf("malformed exemplar %q", tail)
	}
	rawLabels, rawValue, rawTS := m[1], m[2], m[4]
	value, err := parsePromValue(rawValue)
	if err != nil {
		return s, nil, fmt.Errorf("exemplar value: %w", err)
	}
	if rawTS != "" {
		if _, err := strconv.ParseFloat(rawTS, 64); err != nil {
			return s, nil, fmt.Errorf("exemplar timestamp %q: %w", rawTS, err)
		}
	}
	ex := &lintExemplar{value: value}
	if rawLabels != "" {
		for _, pair := range splitLabels(rawLabels) {
			lm := promLabelRe.FindStringSubmatch(pair)
			if lm == nil {
				return s, nil, fmt.Errorf("bad exemplar label %q", pair)
			}
			if lm[1] == "trace_id" {
				ex.traceID = lm[2]
			}
		}
	}
	if ex.traceID == "" {
		return s, nil, fmt.Errorf("exemplar lacks a trace_id label: %q", tail)
	}
	if l.resolve != nil && !l.resolve(ex.traceID) {
		return s, nil, fmt.Errorf("exemplar trace_id=%q does not resolve to a retained trace", ex.traceID)
	}
	return s[:idx], ex, nil
}

func (l *promLinter) histSample(fam, series, name, le string, value float64, ex *lintExemplar) error {
	hc := l.hists[series]
	if hc == nil {
		hc = &histCheck{lastLE: math.Inf(-1)}
		l.hists[series] = hc
	}
	switch name {
	case fam + "_bucket":
		if le == "" {
			return fmt.Errorf("histogram bucket of %q lacks an le label", fam)
		}
		bound, err := parsePromValue(le)
		if err != nil {
			return fmt.Errorf("histogram %q le=%q: %w", fam, le, err)
		}
		if bound <= hc.lastLE {
			return fmt.Errorf("histogram %q buckets out of order at le=%q", fam, le)
		}
		if value < hc.infCount {
			return fmt.Errorf("histogram %q bucket counts not cumulative at le=%q", fam, le)
		}
		if ex != nil && (ex.value > bound || ex.value <= hc.lastLE) {
			return fmt.Errorf("histogram %q exemplar value %v outside bucket (%v, %v]",
				fam, ex.value, hc.lastLE, bound)
		}
		hc.lastLE = bound
		hc.infCount = value
		if math.IsInf(bound, +1) {
			hc.haveInf = true
		}
	case fam + "_sum":
		hc.haveSum = true
	case fam + "_count":
		hc.haveCnt = true
		hc.count = value
	case fam:
		return fmt.Errorf("histogram %q has a bare sample (expected _bucket/_sum/_count)", fam)
	}
	return nil
}

func (l *promLinter) finish() error {
	// Deterministic iteration: report the lexically first broken series.
	series := make([]string, 0, len(l.hists))
	for s := range l.hists {
		series = append(series, s)
	}
	sort.Strings(series)
	for _, s := range series {
		hc := l.hists[s]
		if !hc.haveInf {
			return fmt.Errorf("histogram series %q lacks a +Inf bucket", s)
		}
		if !hc.haveSum || !hc.haveCnt {
			return fmt.Errorf("histogram series %q lacks _sum or _count", s)
		}
		if hc.count != hc.infCount {
			return fmt.Errorf("histogram series %q _count %v != +Inf bucket %v", s, hc.count, hc.infCount)
		}
	}
	if l.om && !l.sawEOF {
		return fmt.Errorf("OpenMetrics exposition does not end with # EOF")
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("non-numeric value %q", s)
	}
	return v, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQ, esc := false, false
	for _, r := range s {
		switch {
		case esc:
			esc = false
			cur.WriteRune(r)
		case r == '\\' && inQ:
			esc = true
			cur.WriteRune(r)
		case r == '"':
			inQ = !inQ
			cur.WriteRune(r)
		case r == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
