// Package sampling implements tail-based trace retention policies for
// the telemetry tracer. A Chain of Policies is installed as
// telemetry.Options.Sampler; at every trace Finish each policy votes on
// the sealed TraceInfo and the highest-priority keeper wins, so the
// retention ring holds the interesting traces (errors, tail latency,
// rare spans) and evicts the boring ones (healthy cached hits) first.
//
// Two disciplines shape the package:
//
//   - Determinism under test. No policy reads the wall clock or global
//     rand: the probabilistic floor hashes the trace ID against an
//     injected seed, the token bucket advances on trace finish
//     timestamps (epoch-relative microseconds carried by the trace
//     itself), and the adaptive latency threshold is a pure function of
//     the duration histogram it has accumulated. Replaying the same
//     trace stream yields byte-identical verdicts — the chaos soak and
//     the unit tests depend on it.
//
//   - The tail is the decision point. Policies see the finished trace
//     (outcome attribute, spans, duration), not the request head, so
//     "keep every error" and "keep the p99 outlier" are exact, not
//     guesses. Head-style volume control (floor, rate limit) still
//     composes in — it just runs at the tail with complete information.
package sampling

import (
	"math"
	"sync"

	"helios/internal/stats"
	"helios/internal/telemetry"
)

// Eviction priorities, highest keeps longest. Spacing leaves room for
// deployment-specific policies in between.
const (
	// PrioFloor marks traces kept only by the probabilistic floor —
	// the first to be evicted.
	PrioFloor = 10
	// PrioRate marks traces kept by the rate-limited volume budget.
	PrioRate = 20
	// PrioSpan marks traces carrying a boosted rare span (record,
	// degrade).
	PrioSpan = 40
	// PrioSlow marks tail-latency outliers.
	PrioSlow = 60
	// PrioError marks error traces — never evicted while anything
	// lower-priority remains.
	PrioError = 100
)

// Policy is one composable retention rule. Decide votes keep/drop with
// an eviction priority; it runs at trace Finish and may carry internal
// state (Decide must be safe for concurrent use — Finish runs on
// request goroutines).
type Policy interface {
	Name() string
	Decide(ti telemetry.TraceInfo) (keep bool, priority int)
}

// Chain is an ordered policy set implementing telemetry.Sampler. Every
// policy sees every trace (so stateful policies learn from drops too);
// the verdict is the highest-priority keeper, ties going to the
// earliest policy in the chain.
type Chain struct {
	policies []Policy
}

// NewChain builds a chain. An empty chain drops everything except what
// no sampler at all would do — install nil instead of an empty chain to
// keep every trace.
func NewChain(policies ...Policy) *Chain {
	return &Chain{policies: policies}
}

// Sample implements telemetry.Sampler.
func (c *Chain) Sample(ti telemetry.TraceInfo) telemetry.SampleVerdict {
	verdict := telemetry.SampleVerdict{Policy: "none"}
	for _, p := range c.policies {
		keep, prio := p.Decide(ti)
		if keep && (!verdict.Keep || prio > verdict.Priority) {
			verdict = telemetry.SampleVerdict{Keep: true, Policy: p.Name(), Priority: prio}
		}
	}
	return verdict
}

// Default is the standard heliosd chain: keep all errors, keep
// tail-latency outliers above the adaptive p99, boost traces with rare
// record/degrade spans, admit a rate-limited volume budget of healthy
// traffic, and guarantee a deterministic 1% floor so even a quiet
// policy set retains a background sample. seed feeds the floor hash.
func Default(seed uint64) *Chain {
	return NewChain(
		Errors(),
		SlowTail(99, 64),
		SpanBoost(PrioSpan, "record", "degrade"),
		Limit(All(), 25, 50),
		Floor(0.01, seed),
	)
}

// errors keeps every trace whose outcome attribute is a failure kind
// (serve stamps "ok" on success, the typed ErrKind on failure, "panic"
// on a recovered panic) or that contains a span flagged err=true (the
// batch executor marks record/replay spans that saw a *ooo.SimError).
type errorsPolicy struct{}

// Errors returns the always-keep-on-error policy (priority PrioError).
func Errors() Policy { return errorsPolicy{} }

func (errorsPolicy) Name() string { return "error" }

func (errorsPolicy) Decide(ti telemetry.TraceInfo) (bool, int) {
	for _, a := range ti.Attrs {
		if a.Key == "outcome" && a.Value != "ok" {
			return true, PrioError
		}
	}
	for _, sp := range ti.Spans {
		for _, a := range sp.Attrs {
			if a.Key == "err" && a.Value == "true" {
				return true, PrioError
			}
		}
	}
	return false, 0
}

// allPolicy keeps everything at priority zero — the identity element
// of the algebra, useful as the inner policy of a Limit.
type allPolicy struct{}

// All returns the keep-everything policy.
func All() Policy { return allPolicy{} }

func (allPolicy) Name() string { return "all" }

func (allPolicy) Decide(telemetry.TraceInfo) (bool, int) { return true, 0 }

// floorPolicy is the probabilistic floor: a deterministic hash of the
// trace ID against a seed keeps a fixed fraction of all traffic
// regardless of what the rest of the chain thinks.
type floorPolicy struct {
	seed      uint64
	threshold uint64 // keep when hash < threshold
}

// Floor returns a policy keeping ~rate (0..1) of traces at PrioFloor,
// decided by hashing the trace ID with seed — the same (seed, ID)
// always votes the same way, so tests and replays are exact.
func Floor(rate float64, seed uint64) Policy {
	if rate < 0 {
		rate = 0
	}
	var threshold uint64
	if rate >= 1 {
		threshold = math.MaxUint64
	} else {
		threshold = uint64(rate * float64(1<<63) * 2)
	}
	return &floorPolicy{seed: seed, threshold: threshold}
}

func (f *floorPolicy) Name() string { return "floor" }

func (f *floorPolicy) Decide(ti telemetry.TraceInfo) (bool, int) {
	if f.threshold == math.MaxUint64 {
		return true, PrioFloor
	}
	return splitmix64(f.seed^ti.ID) < f.threshold, PrioFloor
}

// splitmix64 is the finalizer from Vigna's SplitMix64 — the same mixer
// chaos.RandomConfig idioms use; good avalanche, no allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// limitPolicy wraps an inner policy with a token bucket: inner keepers
// pass only while tokens remain. Time advances on the traces' own
// finish timestamps (epoch-relative microseconds), so the bucket
// refills deterministically from the trace stream instead of the wall
// clock.
type limitPolicy struct {
	inner  Policy
	perSec float64
	burst  float64

	mu     sync.Mutex
	tokens float64
	lastUS int64
	primed bool
}

// Limit returns a rate-limited version of inner: at most ~perSec
// keepers per second with the given burst, at PrioRate (or inner's
// priority if higher). Non-keepers of inner spend nothing.
func Limit(inner Policy, perSec float64, burst int) Policy {
	if burst < 1 {
		burst = 1
	}
	return &limitPolicy{inner: inner, perSec: perSec, burst: float64(burst), tokens: float64(burst)}
}

func (l *limitPolicy) Name() string { return "rate" }

func (l *limitPolicy) Decide(ti telemetry.TraceInfo) (bool, int) {
	keep, prio := l.inner.Decide(ti)
	if !keep {
		return false, 0
	}
	if prio < PrioRate {
		prio = PrioRate
	}
	nowUS := ti.StartUS + ti.DurUS
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.primed {
		l.primed = true
		l.lastUS = nowUS
	}
	if nowUS > l.lastUS {
		l.tokens += float64(nowUS-l.lastUS) / 1e6 * l.perSec
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.lastUS = nowUS
	}
	if l.tokens < 1 {
		return false, 0
	}
	l.tokens--
	return true, prio
}

// slowTailPolicy keeps traces slower than the target percentile of the
// request durations it has seen so far — an adaptive threshold that
// tracks the live distribution instead of a hard-coded latency SLO.
type slowTailPolicy struct {
	pct    int
	warmup uint64

	mu   sync.Mutex
	hist stats.Histogram
}

// SlowTail returns a policy keeping traces whose duration exceeds the
// pct-th percentile (1..100) of the durations observed so far, at
// PrioSlow. The comparison is strict — a uniform distribution keeps
// nothing, only genuine outliers clear the bar. The first warmup
// traces only feed the histogram — a threshold learned from two
// samples is noise, not a tail.
func SlowTail(pct int, warmup uint64) Policy {
	if pct < 1 {
		pct = 1
	}
	if pct > 100 {
		pct = 100
	}
	return &slowTailPolicy{pct: pct, warmup: warmup}
}

func (s *slowTailPolicy) Name() string { return "slow" }

func (s *slowTailPolicy) Decide(ti telemetry.TraceInfo) (bool, int) {
	dur := uint64(ti.DurUS)
	s.mu.Lock()
	defer s.mu.Unlock()
	warm := s.hist.Count >= s.warmup
	thr := s.hist.Percentile(s.pct)
	s.hist.Observe(dur)
	if !warm {
		return false, 0
	}
	return dur > thr, PrioSlow
}

// spanBoostPolicy keeps any trace containing one of the named spans —
// the hook for rare, load-bearing phases (an uncached record, a
// degraded replay) that a volume-based sampler would mostly miss.
type spanBoostPolicy struct {
	prio  int
	names map[string]bool
}

// SpanBoost returns a policy keeping traces that contain a span with
// one of the given names, at the given priority.
func SpanBoost(prio int, names ...string) Policy {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return &spanBoostPolicy{prio: prio, names: set}
}

func (s *spanBoostPolicy) Name() string { return "span" }

func (s *spanBoostPolicy) Decide(ti telemetry.TraceInfo) (bool, int) {
	for _, sp := range ti.Spans {
		if s.names[sp.Name] {
			return true, s.prio
		}
	}
	return false, 0
}
