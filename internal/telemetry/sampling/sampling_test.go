package sampling

import (
	"testing"
	"time"

	"helios/internal/telemetry"
)

func traceWith(id uint64, durUS int64, outcome string, spans ...string) telemetry.TraceInfo {
	ti := telemetry.TraceInfo{ID: id, Name: "POST /v1/run", StartUS: int64(id) * 1000, DurUS: durUS}
	if outcome != "" {
		ti.Attrs = []telemetry.Attr{{Key: "outcome", Value: outcome}}
	}
	for _, name := range spans {
		ti.Spans = append(ti.Spans, telemetry.SpanInfo{Name: name, DurUS: durUS / 2})
	}
	return ti
}

func TestErrorsPolicy(t *testing.T) {
	p := Errors()
	if keep, prio := p.Decide(traceWith(1, 100, "ok")); keep || prio != 0 {
		t.Fatalf("ok trace kept (keep=%v prio=%d)", keep, prio)
	}
	for _, outcome := range []string{"bad-request", "overload", "engine-fault", "panic", "deadline"} {
		keep, prio := p.Decide(traceWith(2, 100, outcome))
		if !keep || prio != PrioError {
			t.Fatalf("outcome %q: keep=%v prio=%d, want keep at PrioError", outcome, keep, prio)
		}
	}
	// A span flagged err=true (the batch executor's SimError marker)
	// keeps the trace even when the request-level outcome looks healthy.
	ti := traceWith(3, 100, "ok", "replay")
	ti.Spans[0].Attrs = []telemetry.Attr{{Key: "err", Value: "true"}}
	if keep, _ := p.Decide(ti); !keep {
		t.Fatal("trace with err=true span was not kept")
	}
}

func TestFloorDeterminismAndRate(t *testing.T) {
	const seed = 42
	p := Floor(0.10, seed)
	q := Floor(0.10, seed)
	kept := 0
	for id := uint64(1); id <= 10000; id++ {
		k1, prio := p.Decide(traceWith(id, 100, "ok"))
		k2, _ := q.Decide(traceWith(id, 100, "ok"))
		if k1 != k2 {
			t.Fatalf("id %d: same seed disagrees", id)
		}
		if k1 {
			if prio != PrioFloor {
				t.Fatalf("floor keeps at prio %d, want %d", prio, PrioFloor)
			}
			kept++
		}
	}
	// 10% ± 1.5% over 10k hashed IDs.
	if kept < 850 || kept > 1150 {
		t.Fatalf("floor kept %d of 10000, want ~1000", kept)
	}
	if k, _ := Floor(0, seed).Decide(traceWith(7, 1, "ok")); k {
		t.Fatal("rate-0 floor kept a trace")
	}
	if k, _ := Floor(1, seed).Decide(traceWith(7, 1, "ok")); !k {
		t.Fatal("rate-1 floor dropped a trace")
	}
}

func TestLimitTokenBucket(t *testing.T) {
	// 1 keeper per second, burst 2; trace finish timestamps drive refill.
	p := Limit(All(), 1, 2)
	mk := func(id uint64, finishUS int64) telemetry.TraceInfo {
		return telemetry.TraceInfo{ID: id, StartUS: finishUS, DurUS: 0}
	}
	if k, prio := p.Decide(mk(1, 0)); !k || prio != PrioRate {
		t.Fatalf("first trace: keep=%v prio=%d", k, prio)
	}
	if k, _ := p.Decide(mk(2, 0)); !k {
		t.Fatal("burst token 2 not granted")
	}
	if k, _ := p.Decide(mk(3, 0)); k {
		t.Fatal("kept beyond burst with no time passed")
	}
	// One second later one token has refilled.
	if k, _ := p.Decide(mk(4, int64(time.Second/time.Microsecond))); !k {
		t.Fatal("refilled token not granted")
	}
	if k, _ := p.Decide(mk(5, int64(time.Second/time.Microsecond))); k {
		t.Fatal("second keep from a single refilled token")
	}
}

func TestSlowTailAdaptiveThreshold(t *testing.T) {
	p := SlowTail(99, 32)
	// Warmup: uniform fast traffic feeds the histogram, nothing kept.
	for id := uint64(1); id <= 32; id++ {
		if k, _ := p.Decide(traceWith(id, 10, "ok")); k {
			t.Fatalf("trace %d kept during warmup", id)
		}
	}
	// Post-warmup uniform traffic sits at the percentile, not above it.
	if k, _ := p.Decide(traceWith(33, 10, "ok")); k {
		t.Fatal("uniform-latency trace kept as slow")
	}
	keep, prio := p.Decide(traceWith(34, 50_000, "ok"))
	if !keep || prio != PrioSlow {
		t.Fatalf("outlier: keep=%v prio=%d, want keep at PrioSlow", keep, prio)
	}
	// The threshold adapts: after enough slow traffic, what was an
	// outlier becomes the norm and stops being kept.
	for id := uint64(35); id < 3500; id++ {
		p.Decide(traceWith(id, 50_000, "ok"))
	}
	if k, _ := p.Decide(traceWith(4000, 50_000, "ok")); k {
		t.Fatal("threshold did not adapt to the new normal")
	}
}

func TestSpanBoost(t *testing.T) {
	p := SpanBoost(PrioSpan, "record", "degrade")
	if k, _ := p.Decide(traceWith(1, 100, "ok", "admission", "cache_read")); k {
		t.Fatal("cached trace kept by span boost")
	}
	keep, prio := p.Decide(traceWith(2, 100, "ok", "admission", "record", "replay"))
	if !keep || prio != PrioSpan {
		t.Fatalf("record trace: keep=%v prio=%d", keep, prio)
	}
	if k, _ := p.Decide(traceWith(3, 100, "ok", "degrade")); !k {
		t.Fatal("degrade trace not kept")
	}
}

func TestChainHighestPriorityWins(t *testing.T) {
	c := NewChain(
		Floor(1, 1), // keeps everything at PrioFloor
		Errors(),    // keeps errors at PrioError
	)
	v := c.Sample(traceWith(1, 100, "ok"))
	if !v.Keep || v.Policy != "floor" || v.Priority != PrioFloor {
		t.Fatalf("ok trace verdict %+v, want floor keep", v)
	}
	v = c.Sample(traceWith(2, 100, "engine-fault"))
	if !v.Keep || v.Policy != "error" || v.Priority != PrioError {
		t.Fatalf("error trace verdict %+v, want error keep", v)
	}
	// An empty chain (or all-drop verdicts) reports policy "none".
	v = NewChain().Sample(traceWith(3, 100, "ok"))
	if v.Keep || v.Policy != "none" {
		t.Fatalf("empty chain verdict %+v", v)
	}
}

func TestDefaultChainShape(t *testing.T) {
	c := Default(7)
	// Errors always clear the rate limit and the floor.
	for i := 0; i < 500; i++ {
		v := c.Sample(traceWith(uint64(1000+i), 100, "engine-fault"))
		if !v.Keep || v.Policy != "error" {
			t.Fatalf("error trace %d verdict %+v", i, v)
		}
	}
	// Healthy traffic is kept by rate/floor, not error.
	v := c.Sample(traceWith(1, 100, "ok"))
	if v.Keep && v.Policy == "error" {
		t.Fatalf("healthy trace attributed to error policy: %+v", v)
	}
}

func TestChainIsDeterministic(t *testing.T) {
	run := func() []telemetry.SampleVerdict {
		c := Default(99)
		var out []telemetry.SampleVerdict
		for id := uint64(1); id <= 300; id++ {
			dur := int64(10 + id%7*25)
			outcome := "ok"
			if id%37 == 0 {
				outcome = "overload"
			}
			spans := []string{"admission", "cache_read"}
			if id%53 == 0 {
				spans = append(spans, "record")
			}
			out = append(out, c.Sample(traceWith(id, dur, outcome, spans...)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
