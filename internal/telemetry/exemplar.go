package telemetry

import "helios/internal/stats"

// Exemplar links one histogram observation back to the trace that
// produced it — the OpenMetrics bridge from a /metricz bucket to a
// /tracez trace. Value is the observed sample in the histogram's base
// unit (heliosd: microseconds); TSUnixUS is the capture wall-clock in
// unix microseconds (exposition renders seconds).
type Exemplar struct {
	TraceID  uint64
	Value    uint64
	TSUnixUS int64
}

// ExemplarSet is a fixed per-bucket exemplar sidecar aligned with a
// stats.Histogram: one slot per histogram bucket, latest observation
// wins. The zero value is ready to use and copies by value, mirroring
// stats.Histogram. Callers synchronize: the tracer observes under its
// own mutex, serve under s.mu.
type ExemplarSet struct {
	Slots [stats.NumHistBuckets]Exemplar
}

// Observe records v against trace traceID. A zero traceID (no active
// trace) is ignored, so untraced observations never produce dangling
// exemplars.
func (e *ExemplarSet) Observe(v, traceID uint64, tsUnixUS int64) {
	if e == nil || traceID == 0 {
		return
	}
	e.Slots[stats.HistBucketOf(v)] = Exemplar{TraceID: traceID, Value: v, TSUnixUS: tsUnixUS}
}

// Pick returns the newest exemplar in bucket slots [lo, hi] that
// satisfies keep (nil keep accepts everything). Exposition uses it to
// collapse the underlying fine buckets onto the strided `le` bounds
// while filtering out traces the retention ring has since evicted —
// every emitted exemplar must resolve via /tracez.
func (e *ExemplarSet) Pick(lo, hi int, keep func(traceID uint64) bool) (Exemplar, bool) {
	if e == nil {
		return Exemplar{}, false
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= stats.NumHistBuckets {
		hi = stats.NumHistBuckets - 1
	}
	var best Exemplar
	found := false
	for i := lo; i <= hi; i++ {
		ex := e.Slots[i]
		if ex.TraceID == 0 {
			continue
		}
		if keep != nil && !keep(ex.TraceID) {
			continue
		}
		if !found || ex.TSUnixUS >= best.TSUnixUS {
			best = ex
			found = true
		}
	}
	return best, found
}
