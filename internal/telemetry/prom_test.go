package telemetry_test

import (
	"strings"
	"testing"

	"helios/internal/stats"
	"helios/internal/telemetry"
)

func TestPromWriterPassesOwnLint(t *testing.T) {
	var h stats.Histogram
	for _, v := range []uint64{0, 3, 17, 900, 70000, 1 << 30} {
		h.Observe(v)
	}
	var sb strings.Builder
	p := telemetry.NewPromWriter(&sb)
	p.Counter("heliosd_requests_total", "Requests admitted.", 42)
	p.CounterVec("heliosd_requests_rejected_total", "Rejected requests by reason.", []telemetry.LabeledValue{
		{Labels: []telemetry.Label{{Name: "reason", Value: "overload"}}, Value: 7},
		{Labels: []telemetry.Label{{Name: "reason", Value: "draining"}}, Value: 1},
	})
	p.Gauge("heliosd_inflight", "In-flight requests.", 3)
	p.Histogram("heliosd_request_duration_microseconds", "Request latency.", h)
	if err := p.Err(); err != nil {
		t.Fatalf("PromWriter error: %v", err)
	}
	out := sb.String()
	if err := telemetry.LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own output fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE heliosd_requests_total counter",
		`heliosd_requests_rejected_total{reason="overload"} 7`,
		"# TYPE heliosd_request_duration_microseconds histogram",
		`heliosd_request_duration_microseconds_bucket{le="+Inf"} 6`,
		"heliosd_request_duration_microseconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The 2^30 sample clamps into the last finite bucket, so the final
	// finite bucket already equals the total count.
	if !strings.Contains(out, `heliosd_request_duration_microseconds_bucket{le="16777215"} 6`) {
		t.Fatalf("clamped tail not in final finite bucket:\n%s", out)
	}
}

func TestPromWriterRefusesSplitFamily(t *testing.T) {
	var sb strings.Builder
	p := telemetry.NewPromWriter(&sb)
	p.Counter("a_total", "a", 1)
	p.Counter("b_total", "b", 2)
	p.Counter("a_total", "a again", 3)
	if err := p.Err(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("Err = %v, want duplicate-family error", err)
	}
}

func TestLintExposition(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error, "" for pass
	}{
		{"minimal counter", "# HELP a_total x\n# TYPE a_total counter\na_total 1\n", ""},
		{"untyped sample", "a_total 1\n", "TYPE"},
		{"bad name", "# TYPE 9bad counter\n9bad 1\n", "malformed"},
		{"bad value", "# TYPE a counter\na pickle\n", "non-numeric"},
		{"duplicate sample", "# TYPE a counter\na 1\na 2\n", "duplicate"},
		{"split family", "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# HELP a again\n", "grouped"},
		{"double TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n", "second TYPE"},
		{
			"histogram ok",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\n" +
				"h_sum 3\nh_count 2\n",
			"",
		},
		{
			"histogram no inf",
			"# TYPE h histogram\n" + `h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		{
			"histogram out of order",
			"# TYPE h histogram\n" +
				`h_bucket{le="5"} 1` + "\n" +
				`h_bucket{le="2"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
			"out of order",
		},
		{
			"histogram not cumulative",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
			"cumulative",
		},
		{
			"histogram count mismatch",
			"# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
			"_count",
		},
		{"empty", "", "empty"},
		{"free comment ok", "# just a comment\n# TYPE a counter\na 1\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := telemetry.LintExposition(strings.NewReader(tc.in))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("lint = %v, want pass", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("lint = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
