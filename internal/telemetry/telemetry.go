// Package telemetry is the service-layer twin of internal/obs: where
// obs explains what the simulated core did to a µop, telemetry explains
// what heliosd did to a request. A Tracer hands out per-request Traces;
// code on the request path opens named Spans (admission, cache_read,
// batch_wait, record, replay, cache_write, manifest) carrying string
// attributes, and the tracer aggregates span durations into
// stats.Histogram latency histograms plus bookkeeping counters that
// prove the span contract (every started span ends exactly once).
//
// The package follows the same two disciplines as internal/obs:
//
//   - Zero cost when disabled. A nil *Tracer, nil *Trace and nil *Span
//     are fully usable no-ops: every exported method starts with a
//     concrete nil-pointer check and returns before touching anything
//     that could allocate. The disabled path is pinned at zero
//     allocations by TestDisabledPathNoAllocs (and end to end by
//     serve's TestServeTelemetryOffNoAllocs), and proven over the whole
//     static call closure by heliosvet's hotalloc analyzer via the
//     //helios:hotpath roots below.
//
//   - Determinism quarantine. Spans measure wall-clock time, which is
//     nondeterministic by nature; their output (Chrome trace JSON,
//     NDJSON span logs, Prometheus exposition) must therefore never be
//     spliced into a deterministic surface such as `experiments
//     -metrics` or a manifest's stats block. Exports live in their own
//     files/endpoints, exactly like ooo.Stats.WallRows vs Rows.
package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/stats"
)

// Options configures a Tracer.
type Options struct {
	// Clock supplies timestamps; nil means time.Now. Tests inject a
	// deterministic clock so span math is byte-checkable.
	Clock func() time.Time
	// Ring is how many finished traces the tracer retains for export
	// (/tracez, TraceDir). 0 means DefaultRing; negative disables
	// retention.
	Ring int
	// NDJSON, when non-nil, receives one JSON line per finished span
	// and per finished trace. Write errors latch (sticky, like
	// obs.Observer): the first error is kept and further writes stop.
	NDJSON io.Writer
	// Sampler decides at Finish which traces the ring retains and with
	// what eviction priority. Nil keeps every finished trace at priority
	// zero, which (ties evict oldest-first) reproduces the pre-sampling
	// FIFO ring exactly.
	Sampler Sampler
}

// SampleVerdict is a sampler's tail decision for one finished trace.
type SampleVerdict struct {
	// Keep admits the trace to the retention ring.
	Keep bool
	// Policy names the deciding policy ("error", "slow", "floor", ...;
	// "all" when no sampler is installed, "none" when dropped) — the key
	// eviction accounting is split by.
	Policy string
	// Priority orders eviction: when the ring is full the lowest
	// priority entry is evicted first, oldest-first within a priority.
	Priority int
}

// Sampler makes tail-based retention decisions. Sample is called once
// per trace at Finish, after the trace is sealed, with its complete
// snapshot; implementations may keep internal state (rate limiters,
// latency percentile trackers) and must be safe for concurrent use.
// The canonical implementation is sampling.Chain.
type Sampler interface {
	Sample(TraceInfo) SampleVerdict
}

// DefaultRing is the finished-trace retention when Options.Ring is 0.
const DefaultRing = 64

// Metrics is the tracer's telemetry-about-telemetry: cumulative
// counters proving the span lifecycle contract. SpansStarted must equal
// SpansEnded at quiescence and SpanDoubleEnds must stay zero — the
// chaos soak asserts exactly that after a hostile campaign.
type Metrics struct {
	TracesStarted  uint64
	TracesFinished uint64
	SpansStarted   uint64
	SpansEnded     uint64
	// SpanDoubleEnds counts End calls on already-ended spans (a bug in
	// the instrumented code; the duplicate End is ignored).
	SpanDoubleEnds uint64
	// SpansDropped counts Start calls against already-finished traces
	// (e.g. a batch executor outliving a deadline-expired request);
	// dropped spans return nil and never count as started.
	SpansDropped uint64
	// RingEvicted counts finished traces pushed out of the retention
	// ring before being exported.
	RingEvicted uint64
	// ExportErrors counts NDJSON sink write failures (the first error
	// latches and stops the sink).
	ExportErrors uint64
	// SampledKept / SampledDropped split TracesFinished by the sampler's
	// tail verdict. Kept traces entered the ring (they may be evicted
	// later — RingEvicted); dropped traces still fed the histograms but
	// were never retained. Kept + Dropped == TracesFinished at
	// quiescence, and Kept - RingEvicted == len(ring).
	SampledKept    uint64
	SampledDropped uint64
}

// Rows enumerates every counter as (name, value) pairs — the dump
// surface heliosvet's statscomplete analyzer requires of a *Metrics
// struct, and the source for both the JSON and Prometheus forms.
func (m Metrics) Rows() [][2]string {
	u := func(v uint64) string { return fmt.Sprint(v) }
	return [][2]string{
		{"traces_started", u(m.TracesStarted)},
		{"traces_finished", u(m.TracesFinished)},
		{"spans_started", u(m.SpansStarted)},
		{"spans_ended", u(m.SpansEnded)},
		{"span_double_ends", u(m.SpanDoubleEnds)},
		{"spans_dropped", u(m.SpansDropped)},
		{"ring_evicted", u(m.RingEvicted)},
		{"export_errors", u(m.ExportErrors)},
		{"sampled_kept", u(m.SampledKept)},
		{"sampled_dropped", u(m.SampledDropped)},
	}
}

// Balance returns a non-nil error when the lifecycle contract is
// violated: a started span never ended, a span ended twice, or a
// started trace never finished. Safe on a nil tracer (always nil).
func (t *Tracer) Balance() error {
	if t == nil {
		return nil
	}
	m := t.Metrics()
	if m.SpansStarted != m.SpansEnded {
		return fmt.Errorf("telemetry: span imbalance: %d started, %d ended", m.SpansStarted, m.SpansEnded)
	}
	if m.SpanDoubleEnds != 0 {
		return fmt.Errorf("telemetry: %d spans ended more than once", m.SpanDoubleEnds)
	}
	if m.TracesStarted != m.TracesFinished {
		return fmt.Errorf("telemetry: trace imbalance: %d started, %d finished", m.TracesStarted, m.TracesFinished)
	}
	if m.SampledKept+m.SampledDropped != m.TracesFinished {
		return fmt.Errorf("telemetry: sampling imbalance: %d kept + %d dropped != %d finished",
			m.SampledKept, m.SampledDropped, m.TracesFinished)
	}
	return nil
}

// Attr is one span attribute. A small slice of Attrs replaces a map so
// the enabled path stays cheap and export order stays deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Tracer is the process-wide telemetry hub. The zero *Tracer (nil) is
// the disabled state; all methods are nil-safe no-ops.
type Tracer struct {
	clock func() time.Time
	epoch time.Time

	// Lifecycle counters are atomics so span hooks never take two
	// locks; the mu below guards only the ring, histograms and sink.
	m struct {
		tracesStarted  atomic.Uint64
		tracesFinished atomic.Uint64
		spansStarted   atomic.Uint64
		spansEnded     atomic.Uint64
		spanDoubleEnds atomic.Uint64
		spansDropped   atomic.Uint64
		ringEvicted    atomic.Uint64
		exportErrors   atomic.Uint64
		sampledKept    atomic.Uint64
		sampledDropped atomic.Uint64
	}

	sampler Sampler

	mu        sync.Mutex
	nextID    uint64
	ring      []retainedTrace // kept traces, insertion order (seq ascending)
	ringSeq   uint64
	ringCap   int
	keptBy    map[string]uint64           // deciding policy → kept count
	evictedBy map[string]uint64           // evicted trace's policy → evictions
	hist      map[string]*stats.Histogram // span name → duration µs
	histEx    map[string]*ExemplarSet     // span name → bucket exemplars (kept traces only)
	ndjson    io.Writer
	ndjsonErr error
}

// retainedTrace is one ring entry: the trace plus the verdict that
// admitted it. Eviction removes the entry with the lowest priority,
// oldest (lowest seq) within a priority — boring traces go first.
type retainedTrace struct {
	tr     *Trace
	prio   int
	policy string
	seq    uint64
}

// New builds an enabled Tracer. A nil *Tracer is the disabled form —
// there is deliberately no "enabled" flag to check at call sites.
func New(o Options) *Tracer {
	t := &Tracer{
		clock:     o.Clock,
		ringCap:   o.Ring,
		sampler:   o.Sampler,
		keptBy:    make(map[string]uint64),
		evictedBy: make(map[string]uint64),
		hist:      make(map[string]*stats.Histogram),
		histEx:    make(map[string]*ExemplarSet),
		ndjson:    o.NDJSON,
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	if t.ringCap == 0 {
		t.ringCap = DefaultRing
	}
	if t.ringCap < 0 {
		t.ringCap = 0
	}
	t.epoch = t.clock()
	return t
}

// Metrics snapshots the lifecycle counters. Safe on nil (zero value).
func (t *Tracer) Metrics() Metrics {
	if t == nil {
		return Metrics{}
	}
	return Metrics{
		TracesStarted:  t.m.tracesStarted.Load(),
		TracesFinished: t.m.tracesFinished.Load(),
		SpansStarted:   t.m.spansStarted.Load(),
		SpansEnded:     t.m.spansEnded.Load(),
		SpanDoubleEnds: t.m.spanDoubleEnds.Load(),
		SpansDropped:   t.m.spansDropped.Load(),
		RingEvicted:    t.m.ringEvicted.Load(),
		ExportErrors:   t.m.exportErrors.Load(),
		SampledKept:    t.m.sampledKept.Load(),
		SampledDropped: t.m.sampledDropped.Load(),
	}
}

// Histograms snapshots the per-span-name duration histograms
// (microseconds), keyed and returned in sorted-name order for
// deterministic exposition. Safe on nil (empty).
func (t *Tracer) Histograms() []NamedHistogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NamedHistogram, 0, len(t.hist))
	for name, h := range t.hist {
		out = append(out, NamedHistogram{Name: name, Hist: *h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedHistogram pairs a span name with a value copy of its duration
// histogram.
type NamedHistogram struct {
	Name string
	Hist stats.Histogram
}

// SinkErr reports the latched NDJSON sink error, if any. Safe on nil.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ndjsonErr
}

// Trace is one request's span collection. A nil *Trace is the disabled
// form and all methods no-op.
type Trace struct {
	t     *Tracer
	id    uint64
	name  string
	start time.Time

	mu      sync.Mutex
	attrs   []Attr
	spans   []*Span
	end     time.Time
	done    bool
	verdict SampleVerdict
	decided bool
}

// Span is one timed region within a trace. A nil *Span no-ops.
type Span struct {
	tr    *Trace
	name  string
	lane  int
	start time.Time
	end   time.Time
	ended bool
	attrs []Attr
}

// StartTrace opens a new trace. The returned trace must be closed with
// Finish exactly once; spans started on it after Finish are dropped.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (t *Tracer) StartTrace(name string) *Trace {
	if t == nil {
		return nil
	}
	return t.startTrace(name)
}

//helios:hotalloc-ok enabled path only, behind StartTrace's nil check; disabled path pinned by TestDisabledPathNoAllocs
func (t *Tracer) startTrace(name string) *Trace {
	t.m.tracesStarted.Add(1)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Trace{t: t, id: id, name: name, start: t.clock()}
}

// ID returns the trace's tracer-unique id (0 for nil).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Verdict returns the sampler's tail decision for this trace. The
// second result is false until Finish has run (and always on nil) —
// the flight recorder reads it right after finishTrace, so the
// decision is stamped before retire returns.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (tr *Trace) Verdict() (SampleVerdict, bool) {
	if tr == nil {
		return SampleVerdict{}, false
	}
	return tr.verdictSnapshot()
}

//helios:hotalloc-ok enabled path only, behind Verdict's nil check
func (tr *Trace) verdictSnapshot() (SampleVerdict, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.verdict, tr.decided
}

// SetAttr attaches a key/value attribute to the trace itself.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (tr *Trace) SetAttr(key, value string) {
	if tr == nil {
		return
	}
	tr.setAttr(key, value)
}

//helios:hotalloc-ok enabled path only, behind SetAttr's nil check
func (tr *Trace) setAttr(key, value string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.attrs = append(tr.attrs, Attr{Key: key, Value: value})
}

// Start opens a span on lane 0, the request's own sequential timeline.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (tr *Trace) Start(name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.startSpan(name, 0)
}

// StartLane opens a span on an explicit lane (Chrome trace "tid").
// Lane 0 is the request timeline; core.RunCells uses lane 1+worker so
// parallel suites render as a per-worker utilization timeline.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (tr *Trace) StartLane(name string, lane int) *Span {
	if tr == nil {
		return nil
	}
	return tr.startSpan(name, lane)
}

//helios:hotalloc-ok enabled path only, behind Start/StartLane's nil check
func (tr *Trace) startSpan(name string, lane int) *Span {
	now := tr.t.clock()
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		tr.t.m.spansDropped.Add(1)
		return nil
	}
	sp := &Span{tr: tr, name: name, lane: lane, start: now}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	tr.t.m.spansStarted.Add(1)
	return sp
}

// SetAttr attaches a string attribute to the span.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.setAttr(key, value)
}

// SetInt attaches an integer attribute; the formatting happens only on
// the enabled path, behind the nil check.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.setInt(key, v)
}

//helios:hotalloc-ok enabled path only, behind SetInt's nil check; the int formats only when a span exists
func (sp *Span) setInt(key string, v int64) {
	sp.setAttr(key, strconv.FormatInt(v, 10))
}

// SetBool attaches a boolean attribute.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (sp *Span) SetBool(key string, v bool) {
	if sp == nil {
		return
	}
	if v {
		sp.setAttr(key, "true")
	} else {
		sp.setAttr(key, "false")
	}
}

//helios:hotalloc-ok enabled path only, behind the span nil checks
func (sp *Span) setAttr(key, value string) {
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// End closes the span. Ending twice is counted (SpanDoubleEnds) and
// otherwise ignored; the first End's timestamp wins.
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.endSpan()
}

//helios:hotalloc-ok enabled path only, behind End's nil check
func (sp *Span) endSpan() {
	now := sp.tr.t.clock()
	sp.tr.mu.Lock()
	if sp.ended {
		sp.tr.mu.Unlock()
		sp.tr.t.m.spanDoubleEnds.Add(1)
		return
	}
	sp.ended = true
	sp.end = now
	sp.tr.mu.Unlock()
	sp.tr.t.m.spansEnded.Add(1)
}

// Finish closes the trace: the trace's end time is stamped, span
// durations are folded into the tracer's histograms, the trace joins
// the retention ring, and the NDJSON sink (if any) receives the span
// log. Finishing twice is a no-op. Spans still open at Finish stay
// open — Balance exposes the leak — and export clamps their duration
// to the trace end (as it does for an End that races past Finish).
//
//helios:hotpath telemetry-disabled hook: a nil receiver must return without allocating
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.finish()
}

//helios:hotalloc-ok enabled path only, behind Finish's nil check
func (tr *Trace) finish() {
	now := tr.t.clock()
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.end = now
	tr.mu.Unlock()
	tr.t.m.tracesFinished.Add(1)
	tr.t.retire(tr)
}

// retire folds a just-finished trace into the tracer-level aggregates:
// the sampler's tail verdict is computed (and stamped on the trace for
// the flight recorder), span durations always feed the histograms, and
// kept traces join the ring — evicting the lowest-priority entry first
// when full — while their span durations also feed the exemplar store.
func (t *Tracer) retire(tr *Trace) {
	info := tr.Snapshot()
	verdict := SampleVerdict{Keep: true, Policy: "all"}
	if t.sampler != nil {
		verdict = t.sampler.Sample(info)
	}
	tr.mu.Lock()
	tr.verdict = verdict
	tr.decided = true
	tr.mu.Unlock()
	nowUS := t.clock().UnixMicro()
	t.mu.Lock()
	for i := range info.Spans {
		sp := &info.Spans[i]
		h := t.hist[sp.Name]
		if h == nil {
			h = &stats.Histogram{}
			t.hist[sp.Name] = h
		}
		h.Observe(uint64(sp.DurUS))
		if verdict.Keep {
			e := t.histEx[sp.Name]
			if e == nil {
				e = &ExemplarSet{}
				t.histEx[sp.Name] = e
			}
			e.Observe(uint64(sp.DurUS), info.ID, nowUS)
		}
	}
	rh := t.hist[info.Name]
	if rh == nil {
		rh = &stats.Histogram{}
		t.hist[info.Name] = rh
	}
	rh.Observe(uint64(info.DurUS))
	if verdict.Keep {
		re := t.histEx[info.Name]
		if re == nil {
			re = &ExemplarSet{}
			t.histEx[info.Name] = re
		}
		re.Observe(uint64(info.DurUS), info.ID, nowUS)
	}
	switch {
	case !verdict.Keep:
		t.m.sampledDropped.Add(1)
	case t.ringCap <= 0:
		// Retention disabled: the verdict still counts as kept so the
		// sampling balance (kept + dropped == finished) holds.
		t.m.sampledKept.Add(1)
		t.keptBy[verdict.Policy]++
	default:
		t.m.sampledKept.Add(1)
		t.keptBy[verdict.Policy]++
		if len(t.ring) >= t.ringCap {
			t.evictLocked()
		}
		t.ringSeq++
		t.ring = append(t.ring, retainedTrace{tr: tr, prio: verdict.Priority, policy: verdict.Policy, seq: t.ringSeq})
	}
	sink := t.ndjson
	broken := t.ndjsonErr != nil
	t.mu.Unlock()
	if sink != nil && !broken {
		if err := writeNDJSON(sink, info); err != nil {
			t.m.exportErrors.Add(1)
			t.mu.Lock()
			if t.ndjsonErr == nil {
				t.ndjsonErr = err
			}
			t.mu.Unlock()
		}
	}
}

// evictLocked removes the ring entry with the lowest priority (oldest
// within a priority) and accounts the eviction against the policy that
// had admitted it. Caller holds t.mu and guarantees the ring is
// non-empty.
func (t *Tracer) evictLocked() {
	victim := 0
	for i := 1; i < len(t.ring); i++ {
		v, c := t.ring[victim], t.ring[i]
		if c.prio < v.prio || (c.prio == v.prio && c.seq < v.seq) {
			victim = i
		}
	}
	t.evictedBy[t.ring[victim].policy]++
	n := copy(t.ring[victim:], t.ring[victim+1:])
	t.ring = t.ring[:victim+n]
	t.m.ringEvicted.Add(1)
}

// Finished snapshots the retention ring, oldest trace first. Safe on
// nil (empty).
func (t *Tracer) Finished() []TraceInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ring := make([]*Trace, 0, len(t.ring))
	for _, rt := range t.ring {
		ring = append(ring, rt.tr)
	}
	t.mu.Unlock()
	out := make([]TraceInfo, 0, len(ring))
	for _, tr := range ring {
		out = append(out, tr.Snapshot())
	}
	return out
}

// Retained reports whether trace id is currently in the retention ring
// — the exposition-time filter that keeps every emitted exemplar
// resolvable via /tracez. Safe on nil (false).
func (t *Tracer) Retained(id uint64) bool {
	if t == nil || id == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rt := range t.ring {
		if rt.tr.id == id {
			return true
		}
	}
	return false
}

// Find returns the retained trace with the given id, if any. Safe on
// nil (miss).
func (t *Tracer) Find(id uint64) (TraceInfo, bool) {
	if t == nil {
		return TraceInfo{}, false
	}
	t.mu.Lock()
	var tr *Trace
	for _, rt := range t.ring {
		if rt.tr.id == id {
			tr = rt.tr
			break
		}
	}
	t.mu.Unlock()
	if tr == nil {
		return TraceInfo{}, false
	}
	return tr.Snapshot(), true
}

// PolicyCount is one (policy, count) accounting row.
type PolicyCount struct {
	Policy string
	Count  uint64
}

// SamplingStats is the per-policy split of the sampler's verdicts:
// KeptByPolicy counts ring admissions by deciding policy, and
// EvictedByPolicy counts evictions by the evicted trace's admitting
// policy — together with Metrics they close the retention ledger
// (kept − evicted == retained). Rows are sorted by policy name for
// deterministic exposition.
type SamplingStats struct {
	KeptByPolicy    []PolicyCount
	EvictedByPolicy []PolicyCount
	Retained        int
}

// Rows enumerates the sampling ledger as (name, value) pairs — the
// dump surface heliosvet's statscomplete analyzer requires, flattening
// the per-policy splits into kept_<policy> / evicted_<policy> rows.
func (s SamplingStats) Rows() [][2]string {
	out := [][2]string{{"retained", fmt.Sprint(s.Retained)}}
	for _, pc := range s.KeptByPolicy {
		out = append(out, [2]string{"kept_" + pc.Policy, fmt.Sprint(pc.Count)})
	}
	for _, pc := range s.EvictedByPolicy {
		out = append(out, [2]string{"evicted_" + pc.Policy, fmt.Sprint(pc.Count)})
	}
	return out
}

// Sampling snapshots the per-policy accounting. Safe on nil (zero).
func (t *Tracer) Sampling() SamplingStats {
	if t == nil {
		return SamplingStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return SamplingStats{
		KeptByPolicy:    sortedCounts(t.keptBy),
		EvictedByPolicy: sortedCounts(t.evictedBy),
		Retained:        len(t.ring),
	}
}

func sortedCounts(m map[string]uint64) []PolicyCount {
	out := make([]PolicyCount, 0, len(m))
	for k, v := range m {
		out = append(out, PolicyCount{Policy: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}

// NamedExemplars pairs a span name with a value copy of its bucket
// exemplar set, aligned with the NamedHistogram of the same name.
type NamedExemplars struct {
	Name string
	Set  ExemplarSet
}

// SpanExemplars snapshots the per-span-name exemplar stores in
// sorted-name order. Safe on nil (empty). Only kept traces ever feed
// these; exposition additionally filters through Retained so evicted
// traces never leak into /metricz.
func (t *Tracer) SpanExemplars() []NamedExemplars {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NamedExemplars, 0, len(t.histEx))
	for name, e := range t.histEx {
		out = append(out, NamedExemplars{Name: name, Set: *e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ctxKey carries a *Trace through a context. The zero-size key boxes to
// runtime.zerobase, so context lookups stay allocation-free.
type ctxKey struct{}

// WithTrace returns a context carrying tr. A nil trace returns ctx
// unchanged, so the disabled path threads no value and pays nothing.
//
//helios:hotpath telemetry-disabled hook: a nil trace must return ctx unchanged without allocating
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	//helios:hotalloc-ok enabled path only, behind the nil check; WithValue allocates one context node per enabled request
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. The nil return
// composes with every other nil-safe method, so call sites never
// branch on enablement.
//
//helios:hotpath must stay allocation-free even on the miss path (zero-size key, no boxing of the result)
func FromContext(ctx context.Context) *Trace {
	//helios:hotalloc-ok ctxKey{} is zero-size (boxes to runtime.zerobase) and Context.Value lookups do not allocate; pinned by TestDisabledPathNoAllocs
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
