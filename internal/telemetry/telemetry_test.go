package telemetry_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"helios/internal/telemetry"
)

// fakeClock is a hand-advanced clock so span arithmetic is exact.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func us(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

func TestSpanLifecycleAndSnapshot(t *testing.T) {
	c := newFakeClock()
	tr := telemetry.New(telemetry.Options{Clock: c.Now})

	c.Advance(us(10))
	req := tr.StartTrace("POST /v1/run")
	req.SetAttr("workload", "crc32")

	c.Advance(us(5))
	adm := req.Start("admission")
	c.Advance(us(3))
	adm.End()

	outer := req.Start("batch_wait")
	outer.SetInt("batch_size", 2)
	c.Advance(us(2))
	inner := req.Start("replay")
	inner.SetBool("cached", false)
	c.Advance(us(7))
	inner.End()
	c.Advance(us(1))
	outer.End()

	lane := req.StartLane("cell", 3)
	c.Advance(us(4))
	lane.End()

	req.Finish()

	if err := tr.Balance(); err != nil {
		t.Fatalf("Balance: %v", err)
	}
	got := tr.Finished()
	if len(got) != 1 {
		t.Fatalf("Finished: got %d traces, want 1", len(got))
	}
	ti := got[0]
	if ti.Name != "POST /v1/run" || ti.ID != 1 {
		t.Fatalf("trace identity: %+v", ti)
	}
	if ti.StartUS != 10 {
		t.Fatalf("trace StartUS = %d, want 10", ti.StartUS)
	}
	if ti.DurUS != 22 {
		t.Fatalf("trace DurUS = %d, want 22", ti.DurUS)
	}
	if err := ti.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	byName := map[string]telemetry.SpanInfo{}
	for _, sp := range ti.Spans {
		byName[sp.Name] = sp
	}
	if sp := byName["admission"]; sp.StartUS != 5 || sp.DurUS != 3 {
		t.Fatalf("admission span = %+v", sp)
	}
	if sp := byName["batch_wait"]; sp.StartUS != 8 || sp.DurUS != 10 {
		t.Fatalf("batch_wait span = %+v", sp)
	}
	if sp := byName["replay"]; sp.StartUS != 10 || sp.DurUS != 7 {
		t.Fatalf("replay span = %+v", sp)
	}
	if sp := byName["cell"]; sp.Lane != 3 || sp.DurUS != 4 {
		t.Fatalf("cell span = %+v", sp)
	}
	// Lane 0 top-level spans (admission + batch_wait, replay nested
	// inside) must sum to no more than the trace duration.
	if sum := ti.TopLevelSumUS(0); sum != 13 || sum > ti.DurUS {
		t.Fatalf("TopLevelSumUS(0) = %d (trace %d)", sum, ti.DurUS)
	}

	hists := tr.Histograms()
	names := make([]string, 0, len(hists))
	for _, nh := range hists {
		names = append(names, nh.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"POST /v1/run", "admission", "batch_wait", "replay", "cell"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Histograms missing %q: %v", want, names)
		}
	}
	for _, nh := range hists {
		if nh.Hist.Count != 1 {
			t.Fatalf("histogram %q count = %d, want 1", nh.Name, nh.Hist.Count)
		}
	}
}

func TestBalanceViolations(t *testing.T) {
	c := newFakeClock()
	tr := telemetry.New(telemetry.Options{Clock: c.Now})

	// Unended span → imbalance.
	req := tr.StartTrace("r")
	req.Start("leak")
	req.Finish()
	if err := tr.Balance(); err == nil || !strings.Contains(err.Error(), "imbalance") {
		t.Fatalf("Balance after leak = %v, want span imbalance", err)
	}
	m := tr.Metrics()
	if m.SpansStarted != 1 || m.SpansEnded != 0 {
		t.Fatalf("Metrics after leak: %+v", m)
	}
	// The leaked span exports clamped and flagged.
	ti := tr.Finished()[0]
	if len(ti.Spans) != 1 || !ti.Spans[0].Unended {
		t.Fatalf("leaked span not flagged: %+v", ti.Spans)
	}

	// Double End is counted and ignored.
	tr2 := telemetry.New(telemetry.Options{Clock: c.Now})
	req2 := tr2.StartTrace("r")
	sp := req2.Start("x")
	sp.End()
	sp.End()
	req2.Finish()
	if err := tr2.Balance(); err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("Balance after double end = %v", err)
	}
	if m := tr2.Metrics(); m.SpanDoubleEnds != 1 {
		t.Fatalf("SpanDoubleEnds = %d, want 1", m.SpanDoubleEnds)
	}

	// Spans started after Finish are dropped, not leaked: the balance
	// holds even when a batch executor outlives a canceled request.
	tr3 := telemetry.New(telemetry.Options{Clock: c.Now})
	req3 := tr3.StartTrace("r")
	req3.Finish()
	if sp := req3.Start("late"); sp != nil {
		t.Fatal("Start on finished trace returned a live span")
	}
	if err := tr3.Balance(); err != nil {
		t.Fatalf("Balance with dropped span: %v", err)
	}
	if m := tr3.Metrics(); m.SpansDropped != 1 {
		t.Fatalf("SpansDropped = %d, want 1", m.SpansDropped)
	}
}

func TestRingEviction(t *testing.T) {
	c := newFakeClock()
	tr := telemetry.New(telemetry.Options{Clock: c.Now, Ring: 2})
	for i := 0; i < 5; i++ {
		req := tr.StartTrace("r")
		c.Advance(us(1))
		req.Finish()
	}
	got := tr.Finished()
	if len(got) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(got))
	}
	if got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("ring retained IDs %d,%d, want 4,5", got[0].ID, got[1].ID)
	}
	if m := tr.Metrics(); m.RingEvicted != 3 {
		t.Fatalf("RingEvicted = %d, want 3", m.RingEvicted)
	}
}

func TestContextThreading(t *testing.T) {
	c := newFakeClock()
	tr := telemetry.New(telemetry.Options{Clock: c.Now})
	req := tr.StartTrace("r")
	ctx := telemetry.WithTrace(context.Background(), req)
	if got := telemetry.FromContext(ctx); got != req {
		t.Fatal("FromContext did not return the threaded trace")
	}
	if got := telemetry.FromContext(context.Background()); got != nil {
		t.Fatal("FromContext on a bare context returned a trace")
	}
	if got := telemetry.WithTrace(context.Background(), nil); got != context.Background() {
		t.Fatal("WithTrace(nil) did not return ctx unchanged")
	}
	req.Finish()
}

func TestNDJSONSink(t *testing.T) {
	c := newFakeClock()
	var buf bytes.Buffer
	tr := telemetry.New(telemetry.Options{Clock: c.Now, NDJSON: &buf})
	req := tr.StartTrace("r")
	sp := req.Start("x")
	c.Advance(us(3))
	sp.End()
	req.Finish()
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("SinkErr: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var span struct {
		Type  string `json:"type"`
		Name  string `json:"name"`
		DurUS int64  `json:"dur_us"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("span line: %v", err)
	}
	if span.Type != "span" || span.Name != "x" || span.DurUS != 3 {
		t.Fatalf("span line = %+v", span)
	}
	var trace struct {
		Type  string `json:"type"`
		Spans int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &trace); err != nil {
		t.Fatalf("trace line: %v", err)
	}
	if trace.Type != "trace" || trace.Spans != 1 {
		t.Fatalf("trace line = %+v", trace)
	}
}

func TestChromeTraceExport(t *testing.T) {
	c := newFakeClock()
	tr := telemetry.New(telemetry.Options{Clock: c.Now})
	req := tr.StartTrace("POST /v1/run")
	sp := req.Start("replay")
	sp.SetAttr("workload", "crc32")
	c.Advance(us(9))
	sp.End()
	req.Finish()

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tr.Finished()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  uint64            `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	// One metadata event, one root X event, one span X event.
	if len(file.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(file.TraceEvents))
	}
	var phs []string
	for _, ev := range file.TraceEvents {
		phs = append(phs, ev.Ph)
	}
	if strings.Join(phs, "") != "MXX" {
		t.Fatalf("event phases = %v", phs)
	}
	span := file.TraceEvents[2]
	if span.Name != "replay" || span.Dur != 9 || span.Args["workload"] != "crc32" {
		t.Fatalf("span event = %+v", span)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	bad := telemetry.TraceInfo{
		Name:  "r",
		DurUS: 100,
		Spans: []telemetry.SpanInfo{
			{Name: "a", Lane: 0, StartUS: 0, DurUS: 60},
			{Name: "b", Lane: 0, StartUS: 50, DurUS: 40}, // straddles a's end
		},
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("Validate = %v, want overlap error", err)
	}
	escape := telemetry.TraceInfo{
		Name:  "r",
		DurUS: 10,
		Spans: []telemetry.SpanInfo{{Name: "a", StartUS: 5, DurUS: 20}},
	}
	if err := escape.Validate(); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("Validate = %v, want bounds error", err)
	}
}

// TestDisabledPathNoAllocs pins the package's core contract: with a nil
// tracer every hook — trace start, context threading, span start,
// attributes, end, finish, metrics reads — allocates nothing. This is
// the telemetry twin of obs's TestCommitObsOffNoAllocs; serve pins the
// same property end to end in TestServeTelemetryOffNoAllocs.
func TestDisabledPathNoAllocs(t *testing.T) {
	ctx := context.Background()
	var disabled *telemetry.Tracer
	allocs := testing.AllocsPerRun(200, func() {
		tr := disabled.StartTrace("POST /v1/run")
		c := telemetry.WithTrace(ctx, tr)
		tr2 := telemetry.FromContext(c)
		tr2.SetAttr("workload", "crc32")
		sp := tr2.Start("admission")
		sp.SetAttr("k", "v")
		sp.SetInt("n", 42)
		sp.SetBool("b", true)
		sp.End()
		lane := tr2.StartLane("cell", 7)
		lane.End()
		tr2.Finish()
		if disabled.Balance() != nil {
			t.Fatal("nil tracer out of balance")
		}
		if disabled.Metrics() != (telemetry.Metrics{}) {
			t.Fatal("nil tracer has metrics")
		}
		if disabled.Finished() != nil || disabled.Histograms() != nil {
			t.Fatal("nil tracer has traces")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %v allocs/op, want 0", allocs)
	}
}
