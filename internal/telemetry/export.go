package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceInfo is a race-free value snapshot of a trace, the unit every
// exporter consumes. Times are integer microseconds: StartUS is
// relative to the tracer's epoch (so multiple traces share one Chrome
// timeline), span StartUS relative to the trace's own start.
type TraceInfo struct {
	ID      uint64     `json:"id"`
	Name    string     `json:"name"`
	StartUS int64      `json:"start_us"`
	DurUS   int64      `json:"dur_us"`
	Attrs   []Attr     `json:"attrs,omitempty"`
	Spans   []SpanInfo `json:"spans"`
}

// SpanInfo is the exported form of one span.
type SpanInfo struct {
	Name    string `json:"name"`
	Lane    int    `json:"lane"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// Unended marks a span still open when its trace finished; its
	// duration is clamped to the trace end. Balance surfaces the leak.
	Unended bool   `json:"unended,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Snapshot copies the trace into its exportable form. Safe on nil
// (zero value). For a trace still in flight the duration runs to "now".
func (tr *Trace) Snapshot() TraceInfo {
	if tr == nil {
		return TraceInfo{}
	}
	now := tr.t.clock()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	end := tr.end
	if !tr.done {
		end = now
	}
	info := TraceInfo{
		ID:      tr.id,
		Name:    tr.name,
		StartUS: tr.start.Sub(tr.t.epoch).Microseconds(),
		DurUS:   end.Sub(tr.start).Microseconds(),
		Attrs:   append([]Attr(nil), tr.attrs...),
		Spans:   make([]SpanInfo, 0, len(tr.spans)),
	}
	for _, sp := range tr.spans {
		se := sp.end
		unended := !sp.ended
		if unended || se.After(end) {
			// Clamp to the trace end: open spans, and spans whose End
			// raced past Finish (a batch executor finishing a balanced
			// span pair for a deadline-abandoned request). The trace's
			// exported timeline is sealed at Finish.
			se = end
		}
		info.Spans = append(info.Spans, SpanInfo{
			Name:    sp.name,
			Lane:    sp.lane,
			StartUS: sp.start.Sub(tr.start).Microseconds(),
			DurUS:   se.Sub(sp.start).Microseconds(),
			Unended: unended,
			Attrs:   append([]Attr(nil), sp.attrs...),
		})
	}
	return info
}

// Validate checks the acceptance-criteria invariants on a finished
// trace: every span lies within the trace bounds, and on each lane the
// spans form a laminar family (any two are nested or disjoint), which
// is exactly what makes a Chrome trace render as a proper flame stack.
func (ti TraceInfo) Validate() error {
	lanes := map[int][]SpanInfo{}
	for _, sp := range ti.Spans {
		if sp.DurUS < 0 {
			return fmt.Errorf("telemetry: span %q has negative duration %dµs", sp.Name, sp.DurUS)
		}
		if sp.StartUS < 0 || sp.StartUS+sp.DurUS > ti.DurUS {
			return fmt.Errorf("telemetry: span %q [%d,%d]µs escapes trace bounds [0,%d]µs",
				sp.Name, sp.StartUS, sp.StartUS+sp.DurUS, ti.DurUS)
		}
		lanes[sp.Lane] = append(lanes[sp.Lane], sp)
	}
	for lane, spans := range lanes {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].StartUS != spans[j].StartUS {
				return spans[i].StartUS < spans[j].StartUS
			}
			return spans[i].DurUS > spans[j].DurUS
		})
		var stack []SpanInfo
		for _, sp := range spans {
			for len(stack) > 0 && stack[len(stack)-1].StartUS+stack[len(stack)-1].DurUS <= sp.StartUS {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if sp.StartUS+sp.DurUS > top.StartUS+top.DurUS {
					return fmt.Errorf("telemetry: lane %d spans %q and %q overlap without nesting",
						lane, top.Name, sp.Name)
				}
			}
			stack = append(stack, sp)
		}
	}
	return nil
}

// TopLevelSumUS returns the summed duration of the maximal (outermost)
// spans on the given lane — the quantity that must not exceed the
// trace's own duration when the lane is laminar.
func (ti TraceInfo) TopLevelSumUS(lane int) int64 {
	var spans []SpanInfo
	for _, sp := range ti.Spans {
		if sp.Lane == lane {
			spans = append(spans, sp)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUS != spans[j].StartUS {
			return spans[i].StartUS < spans[j].StartUS
		}
		return spans[i].DurUS > spans[j].DurUS
	})
	var sum, horizon int64
	for _, sp := range spans {
		if sp.StartUS >= horizon {
			sum += sp.DurUS
			horizon = sp.StartUS + sp.DurUS
		}
	}
	return sum
}

// chromeEvent is one entry in the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete events carry ts+dur in microseconds; ph "M" metadata
// events name the pid/tid lanes for the viewer.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  uint64            `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the object form of the trace-event format; Perfetto and
// chrome://tracing load it directly.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders traces as Chrome trace-event JSON. Each
// trace becomes a pid (process lane) named after the trace; each span
// lane becomes a tid within it, so one file holds a whole ring of
// requests side by side on a shared epoch-relative timeline.
func WriteChromeTrace(w io.Writer, traces []TraceInfo) error {
	file := chromeFile{TraceEvents: []chromeEvent{}}
	for _, ti := range traces {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  ti.ID,
			Args: map[string]string{"name": fmt.Sprintf("%s #%d", ti.Name, ti.ID)},
		})
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: ti.Name,
			Cat:  "trace",
			Ph:   "X",
			TS:   ti.StartUS,
			Dur:  maxI64(ti.DurUS, 1),
			PID:  ti.ID,
			TID:  0,
			Args: attrArgs(ti.Attrs, false),
		})
		for _, sp := range ti.Spans {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: sp.Name,
				Cat:  "span",
				Ph:   "X",
				TS:   ti.StartUS + sp.StartUS,
				Dur:  maxI64(sp.DurUS, 1),
				PID:  ti.ID,
				TID:  sp.Lane,
				Args: attrArgs(sp.Attrs, sp.Unended),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

func attrArgs(attrs []Attr, unended bool) map[string]string {
	if len(attrs) == 0 && !unended {
		return nil
	}
	args := make(map[string]string, len(attrs)+1)
	for _, a := range attrs {
		args[a.Key] = a.Value
	}
	if unended {
		args["unended"] = "true"
	}
	return args
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ndjsonSpan is the per-span NDJSON line; ndjsonTrace closes each
// trace's block of lines.
type ndjsonSpan struct {
	Type    string `json:"type"`
	Trace   uint64 `json:"trace"`
	Name    string `json:"name"`
	Lane    int    `json:"lane"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Unended bool   `json:"unended,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

type ndjsonTrace struct {
	Type    string `json:"type"`
	Trace   uint64 `json:"trace"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Spans   int    `json:"spans"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// writeNDJSON emits one finished trace as NDJSON: each span on its own
// line, then the trace summary line.
func writeNDJSON(w io.Writer, ti TraceInfo) error {
	enc := json.NewEncoder(w)
	for _, sp := range ti.Spans {
		if err := enc.Encode(ndjsonSpan{
			Type: "span", Trace: ti.ID, Name: sp.Name, Lane: sp.Lane,
			StartUS: ti.StartUS + sp.StartUS, DurUS: sp.DurUS,
			Unended: sp.Unended, Attrs: sp.Attrs,
		}); err != nil {
			return err
		}
	}
	return enc.Encode(ndjsonTrace{
		Type: "trace", Trace: ti.ID, Name: ti.Name,
		StartUS: ti.StartUS, DurUS: ti.DurUS, Spans: len(ti.Spans), Attrs: ti.Attrs,
	})
}
