package telemetry_test

import (
	"sync"
	"testing"

	"helios/internal/telemetry"
)

// nameSampler decides by trace name: "drop" traces are dropped, every
// other name keeps with the priority registered for it — the minimal
// deterministic sampler for pinning ring mechanics without the policy
// package.
type nameSampler struct{ prio map[string]int }

func (s nameSampler) Sample(ti telemetry.TraceInfo) telemetry.SampleVerdict {
	p, ok := s.prio[ti.Name]
	if !ok {
		return telemetry.SampleVerdict{Keep: false, Policy: "none"}
	}
	return telemetry.SampleVerdict{Keep: true, Policy: ti.Name, Priority: p}
}

// TestPriorityEviction pins the eviction order of the sampled ring:
// lowest priority leaves first, oldest-first within a priority, and
// every departure is charged to the evicted trace's admitting policy.
func TestPriorityEviction(t *testing.T) {
	c := newFakeClock()
	tr := telemetry.New(telemetry.Options{
		Clock: c.Now,
		Ring:  3,
		Sampler: nameSampler{prio: map[string]int{
			"floor": 10, "rate": 20, "error": 100,
		}},
	})
	finish := func(name string) uint64 {
		req := tr.StartTrace(name)
		id := req.ID()
		c.Advance(us(1))
		req.Finish()
		return id
	}

	finish("floor") // id 1
	finish("error") // id 2
	finish("floor") // id 3
	finish("drop")  // id 4: sampled out, never enters the ring

	if m := tr.Metrics(); m.SampledKept != 3 || m.SampledDropped != 1 {
		t.Fatalf("kept/dropped = %d/%d, want 3/1", m.SampledKept, m.SampledDropped)
	}
	if tr.Retained(4) {
		t.Fatal("dropped trace 4 reports as retained")
	}

	// Ring full at [floor#1, error#2, floor#3]. A rate keeper must evict
	// the OLDEST floor (id 1), not the newest.
	rateID := finish("rate")
	if tr.Retained(1) {
		t.Fatal("eviction took the newest floor trace; want oldest-first within a priority")
	}
	for _, id := range []uint64{2, 3, rateID} {
		if !tr.Retained(id) {
			t.Fatalf("trace %d missing from ring after priority eviction", id)
		}
	}

	// Two more errors: the floor then the rate trace leave; the error
	// traces outlive everything lower.
	finish("error")
	finish("error")
	got := tr.Finished()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	for _, ti := range got {
		if ti.Name != "error" {
			t.Fatalf("ring retains %q after error pressure, want only error traces", ti.Name)
		}
	}

	st := tr.Sampling()
	wantEvicted := map[string]uint64{"floor": 2, "rate": 1}
	if len(st.EvictedByPolicy) != len(wantEvicted) {
		t.Fatalf("EvictedByPolicy = %+v, want %v", st.EvictedByPolicy, wantEvicted)
	}
	for _, pc := range st.EvictedByPolicy {
		if wantEvicted[pc.Policy] != pc.Count {
			t.Errorf("evicted[%s] = %d, want %d", pc.Policy, pc.Count, wantEvicted[pc.Policy])
		}
	}
	wantKept := map[string]uint64{"floor": 2, "rate": 1, "error": 3}
	for _, pc := range st.KeptByPolicy {
		if wantKept[pc.Policy] != pc.Count {
			t.Errorf("kept[%s] = %d, want %d", pc.Policy, pc.Count, wantKept[pc.Policy])
		}
	}
	if st.Retained != 3 {
		t.Errorf("Retained = %d, want 3", st.Retained)
	}
	if err := tr.Balance(); err != nil {
		t.Errorf("Balance after eviction churn: %v", err)
	}
}

// TestConcurrentSamplingAccounting hammers Finish from many goroutines
// against a tiny ring and then closes the retention ledger exactly:
// kept + dropped == finished, kept − evicted == retained, and the
// per-policy splits sum to the counters. Run under -race this is the
// concurrency audit of the sampled eviction path (the ISSUE satellite).
func TestConcurrentSamplingAccounting(t *testing.T) {
	tr := telemetry.New(telemetry.Options{
		Ring: 8,
		Sampler: nameSampler{prio: map[string]int{
			"floor": 10, "error": 100,
		}},
	})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := [3]string{"floor", "error", "drop"}[i%3]
				req := tr.StartTrace(name)
				sp := req.Start("work")
				sp.End()
				req.Finish()
			}
		}(w)
	}
	wg.Wait()

	if err := tr.Balance(); err != nil {
		t.Fatalf("Balance after concurrent churn: %v", err)
	}
	m := tr.Metrics()
	st := tr.Sampling()
	if m.TracesFinished != workers*perWorker {
		t.Fatalf("TracesFinished = %d, want %d", m.TracesFinished, workers*perWorker)
	}
	if m.SampledKept+m.SampledDropped != m.TracesFinished {
		t.Errorf("verdict leak: kept %d + dropped %d != finished %d",
			m.SampledKept, m.SampledDropped, m.TracesFinished)
	}
	if uint64(st.Retained) != m.SampledKept-m.RingEvicted {
		t.Errorf("retention ledger: retained %d != kept %d - evicted %d",
			st.Retained, m.SampledKept, m.RingEvicted)
	}
	if st.Retained > 8 {
		t.Errorf("ring bound violated: %d retained > cap 8", st.Retained)
	}
	if got := len(tr.Finished()); got != st.Retained {
		t.Errorf("Finished() returns %d traces, Sampling().Retained says %d", got, st.Retained)
	}
	var kept, evicted uint64
	for _, pc := range st.KeptByPolicy {
		kept += pc.Count
	}
	for _, pc := range st.EvictedByPolicy {
		evicted += pc.Count
	}
	if kept != m.SampledKept || evicted != m.RingEvicted {
		t.Errorf("per-policy sums kept=%d evicted=%d, want %d/%d",
			kept, evicted, m.SampledKept, m.RingEvicted)
	}
	// Errors outnumber the ring: the survivors must all be error traces.
	for _, ti := range tr.Finished() {
		if ti.Name != "error" {
			t.Errorf("ring retains %q under error pressure", ti.Name)
		}
	}
}

// TestVerdictNilSafety: Verdict and ID on the disabled path (nil trace)
// must be safe zero-value no-ops — the flight recorder calls both on
// every request regardless of telemetry state.
func TestVerdictNilSafety(t *testing.T) {
	var tr *telemetry.Trace
	if id := tr.ID(); id != 0 {
		t.Errorf("nil trace ID = %d, want 0", id)
	}
	if v, ok := tr.Verdict(); ok || v.Keep {
		t.Errorf("nil trace Verdict = %+v,%t, want zero,false", v, ok)
	}
	// A live but unfinished trace has no verdict yet.
	tel := telemetry.New(telemetry.Options{})
	live := tel.StartTrace("r")
	if _, ok := live.Verdict(); ok {
		t.Error("unfinished trace already has a verdict")
	}
	live.Finish()
	v, ok := live.Verdict()
	if !ok || !v.Keep || v.Policy != "all" {
		t.Errorf("no-sampler verdict = %+v,%t, want keep/all", v, ok)
	}
}
