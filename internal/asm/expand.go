package asm

import (
	"strings"

	"helios/internal/isa"
)

// expand translates one source statement into proto instructions,
// performing pseudo-instruction expansion. The expansion size depends only
// on the statement text, so pass one and pass two agree.
func (a *assembler) expand(it item) ([]proto, error) {
	m := it.mnemonic
	args := it.args
	ln := it.line
	p := func(inst isa.Inst) proto { return proto{inst: inst, line: ln} }

	reg := func(i int) (isa.Reg, error) {
		if i >= len(args) {
			return 0, errAt(ln, "%s: missing operand %d", m, i+1)
		}
		r, ok := isa.RegByName(args[i])
		if !ok {
			return 0, errAt(ln, "%s: bad register %q", m, args[i])
		}
		return r, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, errAt(ln, "%s: missing operand %d", m, i+1)
		}
		v, err := parseInt(args[i])
		if err != nil {
			return 0, errAt(ln, "%s: bad immediate %q", m, args[i])
		}
		return v, nil
	}
	sym := func(i int) (string, error) {
		if i >= len(args) {
			return "", errAt(ln, "%s: missing operand %d", m, i+1)
		}
		if !isIdent(args[i]) {
			return "", errAt(ln, "%s: bad symbol %q", m, args[i])
		}
		return args[i], nil
	}

	// Direct (non-pseudo) instructions.
	if op, ok := isa.OpcodeByName(m); ok {
		return a.expandDirect(op, it)
	}

	switch m {
	case "nop":
		return []proto{p(isa.Inst{Op: isa.OpADDI})}, nil
	case "li":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := imm(1)
		if err != nil {
			return nil, err
		}
		insts := expandLi(rd, v)
		out := make([]proto, len(insts))
		for i, in := range insts {
			out[i] = p(in)
		}
		return out, nil
	case "la":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		s, err := sym(1)
		if err != nil {
			return nil, err
		}
		return []proto{
			{inst: isa.Inst{Op: isa.OpLUI, Rd: rd}, reloc: relocHi, sym: s, line: ln},
			{inst: isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd}, reloc: relocLo, sym: s, line: ln},
		}, nil
	case "mv":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs})}, nil
	case "not":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1})}, nil
	case "neg", "negw":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		op := isa.OpSUB
		if m == "negw" {
			op = isa.OpSUBW
		}
		return []proto{p(isa.Inst{Op: op, Rd: rd, Rs2: rs})}, nil
	case "sext.w":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpADDIW, Rd: rd, Rs1: rs})}, nil
	case "seqz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})}, nil
	case "snez":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpSLTU, Rd: rd, Rs2: rs})}, nil
	case "sltz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpSLT, Rd: rd, Rs1: rs})}, nil
	case "sgtz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpSLT, Rd: rd, Rs2: rs})}, nil
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		s, err := sym(1)
		if err != nil {
			return nil, err
		}
		var inst isa.Inst
		switch m {
		case "beqz":
			inst = isa.Inst{Op: isa.OpBEQ, Rs1: rs}
		case "bnez":
			inst = isa.Inst{Op: isa.OpBNE, Rs1: rs}
		case "blez":
			inst = isa.Inst{Op: isa.OpBGE, Rs2: rs} // 0 >= rs
		case "bgez":
			inst = isa.Inst{Op: isa.OpBGE, Rs1: rs}
		case "bltz":
			inst = isa.Inst{Op: isa.OpBLT, Rs1: rs}
		case "bgtz":
			inst = isa.Inst{Op: isa.OpBLT, Rs2: rs} // 0 < rs
		}
		return []proto{{inst: inst, reloc: relocBranch, sym: s, line: ln}}, nil
	case "bgt", "ble", "bgtu", "bleu":
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		s, err := sym(2)
		if err != nil {
			return nil, err
		}
		var op isa.Opcode
		switch m {
		case "bgt":
			op = isa.OpBLT
		case "ble":
			op = isa.OpBGE
		case "bgtu":
			op = isa.OpBLTU
		case "bleu":
			op = isa.OpBGEU
		}
		// Operands swapped: bgt rs,rt = blt rt,rs.
		return []proto{{inst: isa.Inst{Op: op, Rs1: rt, Rs2: rs}, reloc: relocBranch, sym: s, line: ln}}, nil
	case "j":
		s, err := sym(0)
		if err != nil {
			return nil, err
		}
		return []proto{{inst: isa.Inst{Op: isa.OpJAL, Rd: isa.Zero}, reloc: relocJal, sym: s, line: ln}}, nil
	case "jr":
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return []proto{p(isa.Inst{Op: isa.OpJALR, Rd: isa.Zero, Rs1: rs})}, nil
	case "call":
		s, err := sym(0)
		if err != nil {
			return nil, err
		}
		return []proto{{inst: isa.Inst{Op: isa.OpJAL, Rd: isa.RA}, reloc: relocJal, sym: s, line: ln}}, nil
	case "tail":
		s, err := sym(0)
		if err != nil {
			return nil, err
		}
		return []proto{{inst: isa.Inst{Op: isa.OpJAL, Rd: isa.Zero}, reloc: relocJal, sym: s, line: ln}}, nil
	case "ret":
		return []proto{p(isa.Inst{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA})}, nil
	}
	return nil, errAt(ln, "unknown mnemonic %q", m)
}

// expandDirect handles real (non-pseudo) opcodes.
func (a *assembler) expandDirect(op isa.Opcode, it item) ([]proto, error) {
	args := it.args
	ln := it.line
	reg := func(s string) (isa.Reg, error) {
		r, ok := isa.RegByName(s)
		if !ok {
			return 0, errAt(ln, "%s: bad register %q", op, s)
		}
		return r, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return errAt(ln, "%s: want %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	inst := isa.Inst{Op: op}
	switch op.Format() {
	case isa.FormatR:
		if err := need(3); err != nil {
			return nil, err
		}
		var err error
		if inst.Rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		if inst.Rs1, err = reg(args[1]); err != nil {
			return nil, err
		}
		if inst.Rs2, err = reg(args[2]); err != nil {
			return nil, err
		}
		return []proto{{inst: inst, line: ln}}, nil

	case isa.FormatU:
		if err := need(2); err != nil {
			return nil, err
		}
		var err error
		if inst.Rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		if hiSym, ok := parseHiLo(args[1], "%hi"); ok {
			return []proto{{inst: inst, reloc: relocHi, sym: hiSym, line: ln}}, nil
		}
		v, err := parseInt(args[1])
		if err != nil {
			return nil, errAt(ln, "%s: bad immediate %q", op, args[1])
		}
		inst.Imm = v << 12 // lui takes the upper-20 value in assembly
		return []proto{{inst: inst, line: ln}}, nil

	case isa.FormatJ:
		if err := need(2); err != nil {
			return nil, err
		}
		var err error
		if inst.Rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		if isIdent(args[1]) {
			return []proto{{inst: inst, reloc: relocJal, sym: args[1], line: ln}}, nil
		}
		v, err := parseInt(args[1])
		if err != nil {
			return nil, errAt(ln, "%s: bad target %q", op, args[1])
		}
		inst.Imm = v
		return []proto{{inst: inst, line: ln}}, nil

	case isa.FormatB:
		if err := need(3); err != nil {
			return nil, err
		}
		var err error
		if inst.Rs1, err = reg(args[0]); err != nil {
			return nil, err
		}
		if inst.Rs2, err = reg(args[1]); err != nil {
			return nil, err
		}
		if isIdent(args[2]) {
			return []proto{{inst: inst, reloc: relocBranch, sym: args[2], line: ln}}, nil
		}
		v, err := parseInt(args[2])
		if err != nil {
			return nil, errAt(ln, "%s: bad target %q", op, args[2])
		}
		inst.Imm = v
		return []proto{{inst: inst, line: ln}}, nil

	case isa.FormatS:
		if err := need(2); err != nil {
			return nil, err
		}
		var err error
		if inst.Rs2, err = reg(args[0]); err != nil {
			return nil, err
		}
		off, base, err := parseMem(args[1], ln)
		if err != nil {
			return nil, err
		}
		inst.Rs1 = base
		inst.Imm = off
		return []proto{{inst: inst, line: ln}}, nil

	case isa.FormatI:
		switch {
		case op == isa.OpECALL || op == isa.OpEBREAK || op == isa.OpFENCE:
			if len(args) != 0 {
				return nil, errAt(ln, "%s takes no operands", op)
			}
			return []proto{{inst: inst, line: ln}}, nil
		case op.IsLoad() || op == isa.OpJALR:
			if err := need(2); err != nil {
				return nil, err
			}
			var err error
			if inst.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
			off, base, err := parseMem(args[1], ln)
			if err != nil {
				return nil, err
			}
			inst.Rs1 = base
			inst.Imm = off
			return []proto{{inst: inst, line: ln}}, nil
		default: // register-immediate ALU
			if err := need(3); err != nil {
				return nil, err
			}
			var err error
			if inst.Rd, err = reg(args[0]); err != nil {
				return nil, err
			}
			if inst.Rs1, err = reg(args[1]); err != nil {
				return nil, err
			}
			if loSym, ok := parseHiLo(args[2], "%lo"); ok && op == isa.OpADDI {
				return []proto{{inst: inst, reloc: relocLo, sym: loSym, line: ln}}, nil
			}
			v, err := parseInt(args[2])
			if err != nil {
				return nil, errAt(ln, "%s: bad immediate %q", op, args[2])
			}
			inst.Imm = v
			return []proto{{inst: inst, line: ln}}, nil
		}
	}
	return nil, errAt(ln, "unsupported opcode %v", op)
}

// parseHiLo recognises %hi(sym) / %lo(sym) forms.
func parseHiLo(s, kind string) (string, bool) {
	if strings.HasPrefix(s, kind+"(") && strings.HasSuffix(s, ")") {
		inner := s[len(kind)+1 : len(s)-1]
		if isIdent(inner) {
			return inner, true
		}
	}
	return "", false
}

// parseMem parses "off(reg)", "(reg)" or "off" (base x0) memory operands.
func parseMem(s string, ln int) (int64, isa.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		v, err := parseInt(s)
		if err != nil {
			return 0, 0, errAt(ln, "bad memory operand %q", s)
		}
		return v, isa.Zero, nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, errAt(ln, "bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := parseInt(s[:open])
		if err != nil {
			return 0, 0, errAt(ln, "bad memory offset %q", s[:open])
		}
		off = v
	}
	r, ok := isa.RegByName(s[open+1 : len(s)-1])
	if !ok {
		return 0, 0, errAt(ln, "bad base register in %q", s)
	}
	return off, r, nil
}

// expandLi produces the canonical load-immediate sequence for an arbitrary
// 64-bit constant.
func expandLi(rd isa.Reg, v int64) []isa.Inst {
	if v >= -2048 && v < 2048 {
		return []isa.Inst{{Op: isa.OpADDI, Rd: rd, Imm: v}}
	}
	if v == int64(int32(v)) {
		hi := (uint32(v) + 0x800) & 0xfffff000
		lo := int64(int32(uint32(v)-hi) << 20 >> 20)
		insts := []isa.Inst{{Op: isa.OpLUI, Rd: rd, Imm: int64(int32(hi))}}
		if lo != 0 {
			insts = append(insts, isa.Inst{Op: isa.OpADDIW, Rd: rd, Rs1: rd, Imm: lo})
		}
		return insts
	}
	// General case: materialise the upper bits, shift, add the low 12 bits.
	lo := v << 52 >> 52 // sign-extended low 12 bits
	hi := (v - lo) >> 12
	insts := expandLi(rd, hi)
	insts = append(insts, isa.Inst{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 12})
	if lo != 0 {
		insts = append(insts, isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
	}
	return insts
}
