package asm

import (
	"strings"
	"testing"

	"helios/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		.text
	_start:
		addi a0, zero, 5
		addi a1, a0, 7
		add  a2, a0, a1
		ecall
	`)
	if len(p.Text) != 4 {
		t.Fatalf("text length = %d, want 4", len(p.Text))
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.TextBase)
	}
	i := isa.Decode(p.Text[0])
	want := isa.Inst{Op: isa.OpADDI, Rd: isa.A0, Imm: 5}
	if i != want {
		t.Errorf("inst 0 = %v, want %v", i, want)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		li   t0, 10
		li   t1, 0
	loop:
		addi t1, t1, 1
		addi t0, t0, -1
		bnez t0, loop
		j    done
		nop
	done:
		ecall
	`)
	// bnez is instruction index 4 (li 10 -> addi, li 0 -> addi).
	i := isa.Decode(p.Text[4])
	if i.Op != isa.OpBNE {
		t.Fatalf("inst 4 = %v, want bne", i)
	}
	if i.Imm != -8 { // back two instructions
		t.Errorf("branch offset = %d, want -8", i.Imm)
	}
	j := isa.Decode(p.Text[5])
	if j.Op != isa.OpJAL || j.Rd != isa.Zero || j.Imm != 8 {
		t.Errorf("j = %v (imm %d), want jal zero, +8", j, j.Imm)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
		ld   a0, 8(sp)
		ld   a1, (sp)
		sd   a0, -16(sp)
		lw   a2, 0(a0)
		sb   a3, 3(a1)
	`)
	cases := []isa.Inst{
		{Op: isa.OpLD, Rd: isa.A0, Rs1: isa.SP, Imm: 8},
		{Op: isa.OpLD, Rd: isa.A1, Rs1: isa.SP, Imm: 0},
		{Op: isa.OpSD, Rs1: isa.SP, Rs2: isa.A0, Imm: -16},
		{Op: isa.OpLW, Rd: isa.A2, Rs1: isa.A0, Imm: 0},
		{Op: isa.OpSB, Rs1: isa.A1, Rs2: isa.A3, Imm: 3},
	}
	for n, want := range cases {
		if got := isa.Decode(p.Text[n]); got != want {
			t.Errorf("inst %d = %v, want %v", n, got, want)
		}
	}
}

func TestDataSectionAndLa(t *testing.T) {
	p := mustAssemble(t, `
		.data
	nums:
		.word 1, 2, 3, 4
	msg:
		.asciz "hi"
		.align 3
	arr:
		.zero 64
		.text
	_start:
		la a0, nums
		la a1, arr
		lw a2, 0(a0)
	`)
	numsAddr, ok := p.Symbol("nums")
	if !ok || numsAddr != p.DataBase {
		t.Fatalf("nums = %#x, %v; want %#x", numsAddr, ok, p.DataBase)
	}
	msgAddr, _ := p.Symbol("msg")
	if msgAddr != p.DataBase+16 {
		t.Errorf("msg = %#x, want %#x", msgAddr, p.DataBase+16)
	}
	arrAddr, _ := p.Symbol("arr")
	if arrAddr%8 != 0 || arrAddr <= msgAddr {
		t.Errorf("arr = %#x, want 8-aligned after msg", arrAddr)
	}
	if p.Data[0] != 1 || p.Data[4] != 2 {
		t.Errorf("data words wrong: % x", p.Data[:8])
	}
	if string(p.Data[16:18]) != "hi" || p.Data[18] != 0 {
		t.Errorf("asciz wrong: % x", p.Data[16:19])
	}
	// la expands to lui+addi that resolves to numsAddr.
	lui := isa.Decode(p.Text[0])
	addi := isa.Decode(p.Text[1])
	got := uint64(uint32(lui.Imm)) + uint64(addi.Imm)
	if got != numsAddr {
		t.Errorf("la resolved to %#x, want %#x", got, numsAddr)
	}
}

func TestLiExpansion(t *testing.T) {
	cases := []int64{0, 1, -1, 2047, -2048, 2048, 4096, 0x12345, -0x12345,
		0x7fffffff, -0x80000000, 0x100000000, 0x123456789abcdef0, -0x123456789abcdef0}
	for _, v := range cases {
		insts := expandLi(isa.A0, v)
		// Simulate the sequence.
		var regs [32]int64
		for _, in := range insts {
			switch in.Op {
			case isa.OpADDI:
				regs[in.Rd] = regs[in.Rs1] + in.Imm
			case isa.OpADDIW:
				regs[in.Rd] = int64(int32(regs[in.Rs1] + in.Imm))
			case isa.OpLUI:
				regs[in.Rd] = in.Imm
			case isa.OpSLLI:
				regs[in.Rd] = regs[in.Rs1] << uint(in.Imm)
			default:
				t.Fatalf("li %#x: unexpected op %v", v, in.Op)
			}
		}
		if regs[isa.A0] != v {
			t.Errorf("li %#x evaluated to %#x (%d insts)", v, regs[isa.A0], len(insts))
		}
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz t0, t1
		snez t2, t3
		ret
	`)
	cases := []isa.Inst{
		{Op: isa.OpADDI, Rd: isa.A0, Rs1: isa.A1},
		{Op: isa.OpXORI, Rd: isa.A2, Rs1: isa.A3, Imm: -1},
		{Op: isa.OpSUB, Rd: isa.A4, Rs2: isa.A5},
		{Op: isa.OpSLTIU, Rd: isa.T0, Rs1: isa.T1, Imm: 1},
		{Op: isa.OpSLTU, Rd: isa.T2, Rs2: isa.T3},
		{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA},
	}
	for n, want := range cases {
		if got := isa.Decode(p.Text[n]); got != want {
			t.Errorf("inst %d = %v, want %v", n, got, want)
		}
	}
}

func TestSwappedBranches(t *testing.T) {
	p := mustAssemble(t, `
	top:
		bgt a0, a1, top
		ble a0, a1, top
		bgtu a0, a1, top
		bleu a0, a1, top
	`)
	wantOps := []isa.Opcode{isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	for n, op := range wantOps {
		i := isa.Decode(p.Text[n])
		if i.Op != op || i.Rs1 != isa.A1 || i.Rs2 != isa.A0 {
			t.Errorf("inst %d = %v, want %v with swapped regs", n, i, op)
		}
	}
}

func TestCallAndFunctions(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		call f
		ecall
	f:
		addi a0, a0, 1
		ret
	`)
	i := isa.Decode(p.Text[0])
	if i.Op != isa.OpJAL || i.Rd != isa.RA || i.Imm != 8 {
		t.Errorf("call = %v imm=%d, want jal ra, +8", i, i.Imm)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
		# full line comment
		addi a0, zero, 1 # trailing
		addi a1, zero, 2 // c++ style
	`)
	if len(p.Text) != 2 {
		t.Fatalf("text length = %d, want 2", len(p.Text))
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"addi a0, a1",         // missing operand
		"addi a0, a1, a2, a3", // too many
		"ld a0, 8(q9)",        // bad register
		"j undefined_label",
		"addi a0, a1, 99999", // immediate out of range
		".data\n.word nosuchsym",
		"x: nop\nx: nop", // duplicate label
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestHiLoRelocation(t *testing.T) {
	p := mustAssemble(t, `
		.data
	val:
		.dword 42
		.text
		lui  a0, %hi(val)
		addi a0, a0, %lo(val)
	`)
	lui := isa.Decode(p.Text[0])
	addi := isa.Decode(p.Text[1])
	addr, _ := p.Symbol("val")
	if got := uint64(uint32(lui.Imm)) + uint64(addi.Imm); got != addr {
		t.Errorf("hi/lo resolved to %#x, want %#x", got, addr)
	}
}

func TestDisassembleContainsSymbols(t *testing.T) {
	p := mustAssemble(t, "_start:\n nop\nend:\n ecall\n")
	d := p.Disassemble()
	if !strings.Contains(d, "_start:") || !strings.Contains(d, "ecall") {
		t.Errorf("disassembly missing content:\n%s", d)
	}
}

func TestSortedSymbols(t *testing.T) {
	p := mustAssemble(t, "b:\n nop\na:\n nop\n")
	syms := p.SortedSymbols()
	if len(syms) != 2 || syms[0] != "b" || syms[1] != "a" {
		t.Errorf("SortedSymbols = %v", syms)
	}
}
