// Package asm implements a two-pass assembler for the RV64IM subset
// defined in internal/isa. It supports the usual GNU-style directives
// (.text/.data/.align/.word/.dword/.byte/.half/.asciz/.zero), labels,
// %hi/%lo relocations and the standard RISC-V pseudo-instructions
// (li, la, mv, call, ret, beqz, j, ...), which is enough to write the
// benchmark kernels in internal/workloads by hand.
package asm

import (
	"fmt"
	"sort"

	"helios/internal/isa"
)

// Default placement of the two sections in the flat address space used by
// the emulator. The stack grows down from StackTop.
const (
	DefaultTextBase = 0x0001_0000
	DefaultDataBase = 0x0010_0000
	StackTop        = 0x7fff_f000
)

// Program is the output of the assembler: a flat text image, a flat data
// image and the symbol table.
type Program struct {
	TextBase uint64
	Text     []uint32 // instruction words, 4 bytes each
	DataBase uint64
	Data     []byte
	Entry    uint64
	Symbols  map[string]uint64
}

// Symbol returns the address of a defined symbol.
func (p *Program) Symbol(name string) (uint64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// TextEnd returns the first address past the text section.
func (p *Program) TextEnd() uint64 { return p.TextBase + uint64(4*len(p.Text)) }

// Disassemble renders the full text section with addresses, for debugging.
func (p *Program) Disassemble() string {
	out := ""
	addr2sym := map[uint64]string{}
	for s, a := range p.Symbols {
		addr2sym[a] = s
	}
	for i, w := range p.Text {
		pc := p.TextBase + uint64(4*i)
		if s, ok := addr2sym[pc]; ok {
			out += s + ":\n"
		}
		out += fmt.Sprintf("  %08x: %08x  %s\n", pc, w, isa.Decode(w))
	}
	return out
}

// SortedSymbols returns symbol names ordered by address, for stable output.
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
