package asm

import (
	"fmt"
	"strconv"
	"strings"

	"helios/internal/isa"
)

// relocKind describes how a proto-instruction's immediate is resolved in
// the second pass.
type relocKind uint8

const (
	relocNone   relocKind = iota
	relocBranch           // B-type pc-relative to symbol
	relocJal              // J-type pc-relative to symbol
	relocHi               // %hi(symbol): upper 20 bits with rounding
	relocLo               // %lo(symbol): low 12 bits, sign extended
)

// proto is an instruction awaiting symbol resolution.
type proto struct {
	inst   isa.Inst
	reloc  relocKind
	sym    string
	addend int64
	line   int
}

// item is one parsed source statement.
type item struct {
	label    string
	mnemonic string
	args     []string
	line     int
}

// Options configures section placement.
type Options struct {
	TextBase uint64
	DataBase uint64
}

// Assemble assembles source text with default section placement.
func Assemble(src string) (*Program, error) {
	return AssembleWith(src, Options{TextBase: DefaultTextBase, DataBase: DefaultDataBase})
}

// AssembleWith assembles source text using the given options.
func AssembleWith(src string, opts Options) (*Program, error) {
	if opts.TextBase == 0 {
		opts.TextBase = DefaultTextBase
	}
	if opts.DataBase == 0 {
		opts.DataBase = DefaultDataBase
	}
	a := &assembler{
		opts:    opts,
		symbols: make(map[string]uint64),
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	entry := opts.TextBase
	for _, name := range []string{"_start", "main"} {
		if v, ok := a.symbols[name]; ok {
			entry = v
			break
		}
	}
	return &Program{
		TextBase: opts.TextBase,
		Text:     a.text,
		DataBase: opts.DataBase,
		Data:     a.data,
		Entry:    entry,
		Symbols:  a.symbols,
	}, nil
}

type assembler struct {
	opts      Options
	textItems []item
	dataItems []item
	protos    []proto
	text      []uint32
	data      []byte
	symbols   map[string]uint64

	dataSizeSoFar uint64 // running size during pass one, for .align
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

// parse splits source into items assigned to the text or data section.
func (a *assembler) parse(src string) error {
	section := ".text"
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		s := stripComment(raw)
		s = strings.TrimSpace(s)
		for s != "" {
			// Leading labels, possibly several per line.
			if i := strings.IndexByte(s, ':'); i >= 0 && isIdent(s[:i]) {
				a.addItem(section, item{label: s[:i], line: line})
				s = strings.TrimSpace(s[i+1:])
				continue
			}
			break
		}
		if s == "" {
			continue
		}
		if s == ".text" || s == ".data" {
			section = s
			continue
		}
		mnemonic, rest := splitMnemonic(s)
		if mnemonic == ".globl" || mnemonic == ".global" || mnemonic == ".section" {
			continue // accepted and ignored
		}
		args, err := splitArgs(rest)
		if err != nil {
			return errAt(line, "%v", err)
		}
		a.addItem(section, item{mnemonic: mnemonic, args: args, line: line})
	}
	return nil
}

func (a *assembler) addItem(section string, it item) {
	if section == ".data" {
		a.dataItems = append(a.dataItems, it)
	} else {
		a.textItems = append(a.textItems, it)
	}
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case inStr:
			// skip
		case s[i] == '#':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func splitMnemonic(s string) (string, string) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], strings.TrimSpace(s[i:])
		}
	}
	return s, ""
}

// splitArgs splits an operand list on commas, honouring string literals.
func splitArgs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var args []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if inStr {
		return nil, fmt.Errorf("unterminated string literal")
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args, nil
}

// layout performs pass one: expand every text item to proto instructions to
// learn its size, assign label addresses in both sections.
func (a *assembler) layout() error {
	pc := a.opts.TextBase
	for _, it := range a.textItems {
		if it.label != "" {
			if _, dup := a.symbols[it.label]; dup {
				return errAt(it.line, "duplicate label %q", it.label)
			}
			a.symbols[it.label] = pc
			continue
		}
		ps, err := a.expand(it)
		if err != nil {
			return err
		}
		a.protos = append(a.protos, ps...)
		pc += uint64(4 * len(ps))
	}

	off := uint64(0)
	for _, it := range a.dataItems {
		if it.label != "" {
			if _, dup := a.symbols[it.label]; dup {
				return errAt(it.line, "duplicate label %q", it.label)
			}
			a.symbols[it.label] = a.opts.DataBase + off
			continue
		}
		n, err := a.emitData(it, false)
		if err != nil {
			return err
		}
		off += n
	}
	return nil
}

// emit performs pass two: resolve relocations and write binary output.
func (a *assembler) emit() error {
	a.text = make([]uint32, 0, len(a.protos))
	pc := a.opts.TextBase
	for _, p := range a.protos {
		inst := p.inst
		if p.reloc != relocNone {
			target, ok := a.symbols[p.sym]
			if !ok {
				return errAt(p.line, "undefined symbol %q", p.sym)
			}
			target += uint64(p.addend)
			switch p.reloc {
			case relocBranch, relocJal:
				inst.Imm = int64(target) - int64(pc)
			case relocHi:
				inst.Imm = int64(int32((uint32(target) + 0x800) & 0xfffff000))
			case relocLo:
				inst.Imm = int64(int32(target<<20) >> 20)
			}
		}
		w, err := isa.Encode(inst)
		if err != nil {
			return errAt(p.line, "encode %v: %v", inst, err)
		}
		a.text = append(a.text, w)
		pc += 4
	}

	a.data = a.data[:0]
	for _, it := range a.dataItems {
		if it.label != "" {
			continue
		}
		if _, err := a.emitData(it, true); err != nil {
			return err
		}
	}
	return nil
}

// emitData handles a data directive. When write is false it only computes
// the size contribution (pass one).
func (a *assembler) emitData(it item, write bool) (uint64, error) {
	put := func(b ...byte) {
		if write {
			a.data = append(a.data, b...)
		}
	}
	size := uint64(0)
	switch it.mnemonic {
	case ".align":
		if len(it.args) != 1 {
			return 0, errAt(it.line, ".align needs one argument")
		}
		n, err := parseInt(it.args[0])
		if err != nil || n < 0 || n > 12 {
			return 0, errAt(it.line, "bad .align %v", it.args[0])
		}
		align := uint64(1) << uint(n)
		cur := uint64(len(a.data))
		if !write {
			cur = a.dataSizeSoFar
		}
		pad := (align - cur%align) % align
		for i := uint64(0); i < pad; i++ {
			put(0)
		}
		size = pad
	case ".byte", ".half", ".word", ".dword", ".quad":
		width := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8, ".quad": 8}[it.mnemonic]
		for _, arg := range it.args {
			v, err := a.dataValue(arg, it.line)
			if err != nil {
				return 0, err
			}
			for b := 0; b < width; b++ {
				put(byte(v >> (8 * b)))
			}
			size += uint64(width)
		}
	case ".ascii", ".asciz", ".string":
		for _, arg := range it.args {
			s, err := parseString(arg)
			if err != nil {
				return 0, errAt(it.line, "%v", err)
			}
			put([]byte(s)...)
			size += uint64(len(s))
			if it.mnemonic != ".ascii" {
				put(0)
				size++
			}
		}
	case ".zero", ".space":
		if len(it.args) != 1 {
			return 0, errAt(it.line, "%s needs one argument", it.mnemonic)
		}
		n, err := parseInt(it.args[0])
		if err != nil || n < 0 {
			return 0, errAt(it.line, "bad %s size %v", it.mnemonic, it.args[0])
		}
		for i := int64(0); i < n; i++ {
			put(0)
		}
		size = uint64(n)
	default:
		return 0, errAt(it.line, "unknown data directive %q", it.mnemonic)
	}
	if !write {
		a.dataSizeSoFar += size
	}
	return size, nil
}

// dataValue resolves a data initialiser: a number or a defined symbol.
func (a *assembler) dataValue(arg string, line int) (int64, error) {
	if v, err := parseInt(arg); err == nil {
		return v, nil
	}
	if v, ok := a.symbols[arg]; ok {
		return int64(v), nil
	}
	return 0, errAt(line, "bad data value %q", arg)
}

func parseString(arg string) (string, error) {
	if len(arg) < 2 || arg[0] != '"' || arg[len(arg)-1] != '"' {
		return "", fmt.Errorf("expected string literal, got %q", arg)
	}
	return strconv.Unquote(arg)
}

func parseInt(s string) (int64, error) {
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}
