package fusion

import (
	"helios/internal/emu"
	"helios/internal/isa"
	"helios/internal/uop"
)

// TailDependsOnHead reports whether the last record's instruction depends,
// directly or transitively through the catalyst, on the first record's
// destination register. records must be ordered oldest first and contain
// at least head and tail. A fused pair with such a dependence would
// deadlock (Section IV-B2): the fused µ-op cannot issue before a source
// that only its own execution can produce.
func TailDependsOnHead(records []emu.Retired) bool {
	if len(records) < 2 {
		return false
	}
	head := records[0].Inst
	tail := records[len(records)-1].Inst
	var taint uint32
	if d, ok := uop.Dest(head); ok {
		taint |= 1 << d
	}
	if taint == 0 {
		return false // stores write no register: nothing to depend on
	}
	for _, r := range records[1 : len(records)-1] {
		in := r.Inst
		reads := false
		if in.Op.HasRs1() && in.Rs1 != isa.Zero && taint&(1<<in.Rs1) != 0 {
			reads = true
		}
		if in.Op.HasRs2() && in.Rs2 != isa.Zero && taint&(1<<in.Rs2) != 0 {
			reads = true
		}
		if d, ok := uop.Dest(in); ok {
			if reads {
				taint |= 1 << d
			} else {
				taint &^= 1 << d // overwritten with an untainted value
			}
		}
	}
	if tail.Op.HasRs1() && tail.Rs1 != isa.Zero && taint&(1<<tail.Rs1) != 0 {
		return true
	}
	if tail.Op.HasRs2() && tail.Rs2 != isa.Zero && taint&(1<<tail.Rs2) != 0 {
		return true
	}
	return false
}

// CatalystHasStore reports whether any record strictly between head and
// tail is a store. Store pairs must not fuse across another store
// (memory consistency, Section IV-B4).
func CatalystHasStore(records []emu.Retired) bool {
	for _, r := range records[1 : len(records)-1] {
		if r.IsStore() {
			return true
		}
	}
	return false
}

// CatalystHasSerializing reports whether any record strictly between head
// and tail is a serializing instruction (fence/ecall/ebreak).
func CatalystHasSerializing(records []emu.Retired) bool {
	for _, r := range records[1 : len(records)-1] {
		if r.Inst.Op.IsSerializing() {
			return true
		}
	}
	return false
}

// CatalystHasRegHazard reports whether the catalyst writes a register the
// tail reads (RaW) or reads a register the tail writes (WaR). Helios
// repairs these at Rename; prior proposals simply refuse to fuse them.
func CatalystHasRegHazard(records []emu.Retired) bool {
	if len(records) < 3 {
		return false
	}
	tail := records[len(records)-1].Inst
	tailDst, tailWrites := uop.Dest(tail)
	for _, r := range records[1 : len(records)-1] {
		in := r.Inst
		if d, ok := uop.Dest(in); ok && tail.ReadsReg(d) {
			return true // RaW: catalyst writes a tail source
		}
		if tailWrites && in.ReadsReg(tailDst) {
			return true // WaR: catalyst reads the tail's destination
		}
	}
	return false
}
