package fusion

// Mode selects one of the paper's evaluated fusion configurations
// (Section V-A).
type Mode int

// The six configurations of the evaluation (NoFusion is the baseline the
// others are normalised against).
const (
	ModeNoFusion      Mode = iota // no fusion at all
	ModeRISCVFusion               // non-memory Table I idioms only
	ModeCSFSBR                    // consecutive contiguous same-base memory pairs (may be asymmetric)
	ModeRISCVFusionPP             // all Table I idioms (non-memory + memory pairs)
	ModeHelios                    // predictor-driven NCSF/NCTF/DBR memory fusion on top of CSF
	ModeOracle                    // upper bound: all eligible memory pairs + non-memory idioms
)

// Modes lists all configurations in presentation order.
var Modes = []Mode{ModeNoFusion, ModeRISCVFusion, ModeCSFSBR, ModeRISCVFusionPP, ModeHelios, ModeOracle}

func (m Mode) String() string {
	switch m {
	case ModeNoFusion:
		return "NoFusion"
	case ModeRISCVFusion:
		return "RISCVFusion"
	case ModeCSFSBR:
		return "CSF-SBR"
	case ModeRISCVFusionPP:
		return "RISCVFusion++"
	case ModeHelios:
		return "Helios"
	case ModeOracle:
		return "OracleFusion"
	}
	return "?"
}

// ModeByName resolves a configuration name (as printed by String).
func ModeByName(name string) (Mode, bool) {
	for _, m := range Modes {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// NonMemIdioms reports whether the mode fuses non-memory Table I idioms.
func (m Mode) NonMemIdioms() bool {
	return m == ModeRISCVFusion || m == ModeRISCVFusionPP || m == ModeOracle
}

// ConsecutiveMemPairs reports whether the mode fuses consecutive
// contiguous same-base-register memory pairs at decode.
func (m Mode) ConsecutiveMemPairs() bool {
	return m == ModeCSFSBR || m == ModeRISCVFusionPP || m == ModeHelios || m == ModeOracle
}

// AsymmetricPairs reports whether differently sized accesses may pair.
func (m Mode) AsymmetricPairs() bool { return m.ConsecutiveMemPairs() }

// Predictive reports whether the Helios UCH+FP predictor drives
// non-consecutive fusion.
func (m Mode) Predictive() bool { return m == ModeHelios }

// OraclePairs reports whether perfect look-ahead pairing is used.
func (m Mode) OraclePairs() bool { return m == ModeOracle }
