// Package fusion implements the paper's fusion machinery that does not
// need the Helios predictor: the RISC-V macro-op fusion idiom catalogue of
// Celio et al. (Table I), static detection of consecutive memory pairs,
// register dependence analysis over a catalyst, and the OracleFusion
// upper-bound pairing used in the evaluation.
package fusion

import (
	"helios/internal/isa"
	"helios/internal/uop"
)

// Idiom identifies one entry of the fusion idiom catalogue (Table I).
// Memory pairing idioms (load pair / store pair) are the ones in bold in
// the paper's table; the rest are the non-memory idioms.
type Idiom uint8

// Fusion idioms.
const (
	IdiomNone        Idiom = iota
	IdiomLEA               // slli rd,rs,{1,2,3} + add rd,rd,rs2 (load effective address)
	IdiomClearUpper        // slli rd,rs,32 + srli rd,rd,32 (zero-extend word)
	IdiomLoadImm           // lui rd,imm + addi/addiw rd,rd,imm (32-bit constant)
	IdiomAuipcAddi         // auipc rd,imm + addi rd,rd,imm (pc-relative address)
	IdiomLoadGlobal        // lui/auipc rd,imm + load rd,imm(rd) (global access)
	IdiomIndexedLoad       // add rd,rs1,rs2 + load rd,imm(rd) (indirect addressing)
	IdiomLoadPair          // load + load, same base, contiguous (bold)
	IdiomStorePair         // store + store, same base, contiguous (bold)
)

func (i Idiom) String() string {
	switch i {
	case IdiomLEA:
		return "lea"
	case IdiomClearUpper:
		return "clear-upper"
	case IdiomLoadImm:
		return "load-imm"
	case IdiomAuipcAddi:
		return "auipc-addi"
	case IdiomLoadGlobal:
		return "load-global"
	case IdiomIndexedLoad:
		return "indexed-load"
	case IdiomLoadPair:
		return "load-pair"
	case IdiomStorePair:
		return "store-pair"
	}
	return "none"
}

// IsMemoryPair reports whether the idiom is a memory pairing idiom
// (bold rows of Table I).
func (i Idiom) IsMemoryPair() bool { return i == IdiomLoadPair || i == IdiomStorePair }

// Kind maps the idiom to the µ-op fusion kind.
func (i Idiom) Kind() uop.FuseKind {
	switch i {
	case IdiomNone:
		return uop.FuseNone
	case IdiomLoadPair:
		return uop.FuseLoadPair
	case IdiomStorePair:
		return uop.FuseStorePair
	default:
		return uop.FuseIdiom
	}
}

// MatchNonMemIdiom recognises the non-memory idioms of Table I for two
// consecutive instructions a (older) and b (younger). The pattern
// constraints follow Celio et al.: the intermediate destination must be
// consumed and overwritten by b, so the pair collapses into one µ-op with
// no extra live register.
func MatchNonMemIdiom(a, b isa.Inst) Idiom {
	if !a.Op.HasRd() || a.Rd == isa.Zero {
		return IdiomNone
	}
	rd := a.Rd
	switch a.Op {
	case isa.OpSLLI:
		if a.Imm >= 1 && a.Imm <= 3 &&
			b.Op == isa.OpADD && b.Rd == rd && (b.Rs1 == rd || b.Rs2 == rd) &&
			!(b.Rs1 == rd && b.Rs2 == rd) {
			return IdiomLEA
		}
		if a.Imm == 32 && b.Op == isa.OpSRLI && b.Imm == 32 && b.Rd == rd && b.Rs1 == rd {
			return IdiomClearUpper
		}
	case isa.OpLUI:
		if (b.Op == isa.OpADDI || b.Op == isa.OpADDIW) && b.Rd == rd && b.Rs1 == rd {
			return IdiomLoadImm
		}
		if b.Op.IsLoad() && b.Rd == rd && b.Rs1 == rd {
			return IdiomLoadGlobal
		}
	case isa.OpAUIPC:
		if b.Op == isa.OpADDI && b.Rd == rd && b.Rs1 == rd {
			return IdiomAuipcAddi
		}
		if b.Op.IsLoad() && b.Rd == rd && b.Rs1 == rd {
			return IdiomLoadGlobal
		}
	case isa.OpADD:
		if b.Op.IsLoad() && b.Rd == rd && b.Rs1 == rd {
			return IdiomIndexedLoad
		}
	}
	return IdiomNone
}

// MatchMemPair recognises a consecutive memory pairing idiom: two loads or
// two stores through the same base register whose immediates make the
// accesses exactly contiguous. When allowAsymmetric is false the accesses
// must also have the same size (the architectural ldp/stp restriction).
//
// A load pair is rejected when the second load depends on the first
// (dependent loads, Section II-B) or when both write the same register.
func MatchMemPair(a, b isa.Inst, allowAsymmetric bool) (Idiom, bool) {
	switch {
	case a.Op.IsLoad() && b.Op.IsLoad():
		if a.Rs1 != b.Rs1 {
			return IdiomNone, false
		}
		// Dependent loads cannot fuse: the first load produces the base
		// of the second, or rewrites its own base used by the second.
		if b.Rs1 == a.Rd || a.Rd == b.Rd {
			return IdiomNone, false
		}
		if !contiguousImm(a.Imm, a.Op.MemSize(), b.Imm, b.Op.MemSize(), allowAsymmetric) {
			return IdiomNone, false
		}
		return IdiomLoadPair, true
	case a.Op.IsStore() && b.Op.IsStore():
		if a.Rs1 != b.Rs1 {
			return IdiomNone, false
		}
		if !contiguousImm(a.Imm, a.Op.MemSize(), b.Imm, b.Op.MemSize(), allowAsymmetric) {
			return IdiomNone, false
		}
		return IdiomStorePair, true
	}
	return IdiomNone, false
}

// contiguousImm checks static contiguity of two same-base accesses.
func contiguousImm(imm0 int64, sz0 uint8, imm1 int64, sz1 uint8, allowAsymmetric bool) bool {
	if !allowAsymmetric && sz0 != sz1 {
		return false
	}
	return imm0+int64(sz0) == imm1 || imm1+int64(sz1) == imm0
}
