package fusion

import (
	"testing"

	"helios/internal/emu"
	"helios/internal/isa"
	"helios/internal/trace"
	"helios/internal/uop"
)

func inst(op isa.Opcode, rd, rs1, rs2 isa.Reg, imm int64) isa.Inst {
	return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
}

func TestMatchNonMemIdioms(t *testing.T) {
	cases := []struct {
		name string
		a, b isa.Inst
		want Idiom
	}{
		{
			"lea",
			inst(isa.OpSLLI, isa.T0, isa.A0, 0, 3),
			inst(isa.OpADD, isa.T0, isa.T0, isa.A1, 0),
			IdiomLEA,
		},
		{
			"lea shift too large",
			inst(isa.OpSLLI, isa.T0, isa.A0, 0, 4),
			inst(isa.OpADD, isa.T0, isa.T0, isa.A1, 0),
			IdiomNone,
		},
		{
			"lea different dest",
			inst(isa.OpSLLI, isa.T0, isa.A0, 0, 3),
			inst(isa.OpADD, isa.T1, isa.T0, isa.A1, 0),
			IdiomNone,
		},
		{
			"clear upper word",
			inst(isa.OpSLLI, isa.T0, isa.A0, 0, 32),
			inst(isa.OpSRLI, isa.T0, isa.T0, 0, 32),
			IdiomClearUpper,
		},
		{
			"load imm",
			inst(isa.OpLUI, isa.T0, 0, 0, 0x12000),
			inst(isa.OpADDIW, isa.T0, isa.T0, 0, 0x345),
			IdiomLoadImm,
		},
		{
			"auipc addi",
			inst(isa.OpAUIPC, isa.T0, 0, 0, 0x1000),
			inst(isa.OpADDI, isa.T0, isa.T0, 0, 8),
			IdiomAuipcAddi,
		},
		{
			"load global",
			inst(isa.OpLUI, isa.T0, 0, 0, 0x12000),
			inst(isa.OpLD, isa.T0, isa.T0, 0, 16),
			IdiomLoadGlobal,
		},
		{
			"indexed load",
			inst(isa.OpADD, isa.T0, isa.A0, isa.A1, 0),
			inst(isa.OpLD, isa.T0, isa.T0, 0, 0),
			IdiomIndexedLoad,
		},
		{
			"indexed load different dest rejected",
			inst(isa.OpADD, isa.T0, isa.A0, isa.A1, 0),
			inst(isa.OpLD, isa.T1, isa.T0, 0, 0),
			IdiomNone,
		},
		{
			"x0 destination rejected",
			inst(isa.OpSLLI, isa.Zero, isa.A0, 0, 3),
			inst(isa.OpADD, isa.Zero, isa.Zero, isa.A1, 0),
			IdiomNone,
		},
	}
	for _, c := range cases {
		if got := MatchNonMemIdiom(c.a, c.b); got != c.want {
			t.Errorf("%s: MatchNonMemIdiom = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMatchMemPair(t *testing.T) {
	ld := func(rd isa.Reg, imm int64) isa.Inst { return inst(isa.OpLD, rd, isa.A0, 0, imm) }
	sd := func(rs2 isa.Reg, imm int64) isa.Inst { return inst(isa.OpSD, 0, isa.A0, rs2, imm) }

	if id, ok := MatchMemPair(ld(isa.T0, 0), ld(isa.T1, 8), false); !ok || id != IdiomLoadPair {
		t.Error("contiguous load pair not matched")
	}
	if id, ok := MatchMemPair(ld(isa.T0, 8), ld(isa.T1, 0), false); !ok || id != IdiomLoadPair {
		t.Error("descending contiguous load pair not matched")
	}
	if _, ok := MatchMemPair(ld(isa.T0, 0), ld(isa.T1, 16), false); ok {
		t.Error("gap pair must not match statically")
	}
	if _, ok := MatchMemPair(ld(isa.A0, 0), ld(isa.T1, 8), false); ok {
		t.Error("dependent loads (base overwritten) must not match")
	}
	if _, ok := MatchMemPair(ld(isa.T0, 0), ld(isa.T0, 8), false); ok {
		t.Error("same destination must not match")
	}
	if id, ok := MatchMemPair(sd(isa.T0, 0), sd(isa.T1, 8), false); !ok || id != IdiomStorePair {
		t.Error("store pair not matched")
	}
	// Different base registers never match statically.
	other := inst(isa.OpLD, isa.T1, isa.A1, 0, 8)
	if _, ok := MatchMemPair(ld(isa.T0, 0), other, false); ok {
		t.Error("different base must not match")
	}
	// Asymmetric pair: ld + lw contiguous.
	lw := inst(isa.OpLW, isa.T1, isa.A0, 0, 8)
	if _, ok := MatchMemPair(ld(isa.T0, 0), lw, false); ok {
		t.Error("asymmetric must not match when disallowed")
	}
	if id, ok := MatchMemPair(ld(isa.T0, 0), lw, true); !ok || id != IdiomLoadPair {
		t.Error("asymmetric should match when allowed")
	}
}

// mem builds a Retired memory record.
func mem(seq uint64, op isa.Opcode, base isa.Reg, rd isa.Reg, ea uint64) emu.Retired {
	i := isa.Inst{Op: op, Rs1: base}
	if op.IsLoad() {
		i.Rd = rd
	} else {
		i.Rs2 = rd
	}
	return emu.Retired{Seq: seq, PC: 0x1000 + seq*4, Inst: i, EA: ea, MemSize: op.MemSize()}
}

// alu builds a Retired ALU record rd = rs1 op rs2.
func alu(seq uint64, rd, rs1, rs2 isa.Reg) emu.Retired {
	return emu.Retired{Seq: seq, PC: 0x1000 + seq*4, Inst: inst(isa.OpADD, rd, rs1, rs2, 0)}
}

func TestTailDependsOnHead(t *testing.T) {
	// ld x1 <- [x2]; add x3 = x1+1; ld x4 <- [x3]: deadlock.
	recs := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		alu(1, 3, 1, 0),
		mem(2, isa.OpLD, 3, 4, 0x108),
	}
	if !TailDependsOnHead(recs) {
		t.Error("indirect dependence not detected")
	}
	// Independent catalyst.
	recs2 := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		alu(1, 5, 6, 7),
		mem(2, isa.OpLD, 2, 4, 0x108),
	}
	if TailDependsOnHead(recs2) {
		t.Error("false dependence detected")
	}
	// Taint killed by overwrite: x3 tainted then overwritten with clean value.
	recs3 := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		alu(1, 3, 1, 0), // x3 tainted
		alu(2, 3, 6, 7), // x3 overwritten clean
		mem(3, isa.OpLD, 3, 4, 0x108),
	}
	if TailDependsOnHead(recs3) {
		t.Error("overwritten taint should clear")
	}
	// Direct dependence (tail base is head dest).
	recs4 := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		mem(1, isa.OpLD, 1, 4, 0x108),
	}
	if !TailDependsOnHead(recs4) {
		t.Error("direct dependence not detected")
	}
}

func TestCatalystPredicates(t *testing.T) {
	recs := []emu.Retired{
		mem(0, isa.OpSD, 2, 1, 0x100),
		mem(1, isa.OpSD, 2, 5, 0x200),
		mem(2, isa.OpSD, 2, 4, 0x108),
	}
	if !CatalystHasStore(recs) {
		t.Error("store in catalyst missed")
	}
	recs[1] = alu(1, 5, 6, 7)
	if CatalystHasStore(recs) {
		t.Error("false store in catalyst")
	}
	fence := emu.Retired{Seq: 1, Inst: isa.Inst{Op: isa.OpFENCE}}
	recs[1] = fence
	if !CatalystHasSerializing(recs) {
		t.Error("serializing in catalyst missed")
	}
}

func TestCatalystRegHazard(t *testing.T) {
	// Catalyst writes x3; tail reads x3: RaW.
	recs := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		alu(1, 3, 6, 7),
		mem(2, isa.OpLD, 3, 4, 0x108),
	}
	if !CatalystHasRegHazard(recs) {
		t.Error("RaW hazard missed")
	}
	// Catalyst reads x4; tail writes x4: WaR.
	recs2 := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		alu(1, 5, 4, 7),
		mem(2, isa.OpLD, 2, 4, 0x108),
	}
	if !CatalystHasRegHazard(recs2) {
		t.Error("WaR hazard missed")
	}
	recs3 := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		alu(1, 5, 6, 7),
		mem(2, isa.OpLD, 2, 4, 0x108),
	}
	if CatalystHasRegHazard(recs3) {
		t.Error("false hazard")
	}
}

func TestOracleConsecutivePair(t *testing.T) {
	o := NewOracle(DefaultPairConfig())
	if _, ok := o.Observe(mem(0, isa.OpLD, 2, 1, 0x100)); ok {
		t.Error("first load cannot pair")
	}
	p, ok := o.Observe(mem(1, isa.OpLD, 2, 3, 0x108))
	if !ok {
		t.Fatal("contiguous pair not found")
	}
	if p.HeadSeq != 0 || p.TailSeq != 1 || !p.Consecutive() || p.Kind != uop.FuseLoadPair {
		t.Errorf("pairing = %+v", p)
	}
	if p.Category != uop.AddrContiguous || !p.SameBase || !p.Symmetric {
		t.Errorf("pairing attributes = %+v", p)
	}
}

func TestOracleNonConsecutivePair(t *testing.T) {
	o := NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	o.Observe(alu(1, 5, 6, 7))
	o.Observe(alu(2, 8, 9, 10))
	p, ok := o.Observe(mem(3, isa.OpLD, 11, 3, 0x120)) // different base, same line
	if !ok {
		t.Fatal("NCSF DBR pair not found")
	}
	if p.Distance != 3 || p.SameBase {
		t.Errorf("pairing = %+v", p)
	}
	if p.Category != uop.AddrSameLine {
		t.Errorf("category = %v", p.Category)
	}
}

func TestOracleRejectsDeadlock(t *testing.T) {
	o := NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	o.Observe(alu(1, 3, 1, 0))                                 // x3 = f(x1): tainted
	if _, ok := o.Observe(mem(2, isa.OpLD, 3, 4, 0x108)); ok { // base x3
		t.Error("deadlocking pair must not fuse")
	}
}

func TestOracleStoreRules(t *testing.T) {
	o := NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpSD, 2, 1, 0x100))
	o.Observe(mem(1, isa.OpSD, 2, 5, 0x200)) // intervening store, too far to pair
	if _, ok := o.Observe(mem(2, isa.OpSD, 2, 4, 0x108)); ok {
		t.Error("store pair across another store must not fuse")
	}

	o = NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpSD, 2, 1, 0x100))
	o.Observe(alu(1, 5, 6, 7))
	p, ok := o.Observe(mem(2, isa.OpSD, 2, 4, 0x108))
	if !ok || p.Kind != uop.FuseStorePair {
		t.Error("NCSF store pair with clean catalyst should fuse")
	}

	// DBR stores never fuse.
	o = NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpSD, 2, 1, 0x100))
	if _, ok := o.Observe(mem(1, isa.OpSD, 9, 4, 0x108)); ok {
		t.Error("DBR store pair must not fuse")
	}
}

func TestOracleNoDoublePairing(t *testing.T) {
	o := NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	if _, ok := o.Observe(mem(1, isa.OpLD, 2, 3, 0x108)); !ok {
		t.Fatal("first pair missing")
	}
	// Seq 0 and 1 are used; a third load to the same line must not re-pair
	// with them.
	if p, ok := o.Observe(mem(2, isa.OpLD, 2, 4, 0x110)); ok {
		t.Errorf("third load paired with used µ-op: %+v", p)
	}
	// But a fourth can pair with the third.
	if _, ok := o.Observe(mem(3, isa.OpLD, 2, 5, 0x118)); !ok {
		t.Error("fourth load should pair with third")
	}
}

func TestOracleMaxDistance(t *testing.T) {
	cfg := DefaultPairConfig()
	cfg.MaxDist = 4
	o := NewOracle(cfg)
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	for i := uint64(1); i <= 4; i++ {
		o.Observe(alu(i, 5, 6, 7))
	}
	if _, ok := o.Observe(mem(5, isa.OpLD, 2, 3, 0x108)); ok {
		t.Error("pair beyond MaxDist must not fuse")
	}
}

func TestOracleSerializingBlocks(t *testing.T) {
	o := NewOracle(DefaultPairConfig())
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	o.Observe(emu.Retired{Seq: 1, Inst: isa.Inst{Op: isa.OpFENCE}})
	if _, ok := o.Observe(mem(2, isa.OpLD, 2, 3, 0x108)); ok {
		t.Error("pair across fence must not fuse")
	}
}

func TestOracleRestrictedConfigs(t *testing.T) {
	// ConsecutiveOnly rejects distance-2 pairs.
	cfg := DefaultPairConfig()
	cfg.ConsecutiveOnly = true
	o := NewOracle(cfg)
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	o.Observe(alu(1, 5, 6, 7))
	if _, ok := o.Observe(mem(2, isa.OpLD, 2, 3, 0x108)); ok {
		t.Error("ConsecutiveOnly violated")
	}
	// SameBaseOnly rejects DBR.
	cfg = DefaultPairConfig()
	cfg.SameBaseOnly = true
	o = NewOracle(cfg)
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	if _, ok := o.Observe(mem(1, isa.OpLD, 9, 3, 0x108)); ok {
		t.Error("SameBaseOnly violated")
	}
	// ContiguousOnly rejects same-line gaps.
	cfg = DefaultPairConfig()
	cfg.ContiguousOnly = true
	o = NewOracle(cfg)
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	if _, ok := o.Observe(mem(1, isa.OpLD, 2, 3, 0x110)); ok {
		t.Error("ContiguousOnly violated")
	}
	// SymmetricOnly rejects mixed sizes.
	cfg = DefaultPairConfig()
	cfg.SymmetricOnly = true
	o = NewOracle(cfg)
	o.Observe(mem(0, isa.OpLD, 2, 1, 0x100))
	if _, ok := o.Observe(mem(1, isa.OpLW, 2, 3, 0x108)); ok {
		t.Error("SymmetricOnly violated")
	}
}

func TestModePredicates(t *testing.T) {
	if ModeNoFusion.NonMemIdioms() || ModeNoFusion.ConsecutiveMemPairs() {
		t.Error("NoFusion must fuse nothing")
	}
	if !ModeRISCVFusion.NonMemIdioms() || ModeRISCVFusion.ConsecutiveMemPairs() {
		t.Error("RISCVFusion is non-memory only")
	}
	if ModeCSFSBR.NonMemIdioms() || !ModeCSFSBR.ConsecutiveMemPairs() {
		t.Error("CSF-SBR is memory only")
	}
	if !ModeRISCVFusionPP.NonMemIdioms() || !ModeRISCVFusionPP.ConsecutiveMemPairs() {
		t.Error("RISCVFusion++ fuses everything static")
	}
	if !ModeHelios.Predictive() || ModeOracle.Predictive() {
		t.Error("only Helios is predictive")
	}
	if !ModeOracle.OraclePairs() || ModeHelios.OraclePairs() {
		t.Error("only Oracle uses perfect pairing")
	}
	for _, m := range Modes {
		got, ok := ModeByName(m.String())
		if !ok || got != m {
			t.Errorf("ModeByName(%q) = %v, %v", m.String(), got, ok)
		}
	}
}

func TestAnalyzeTrace(t *testing.T) {
	// Build a small synthetic trace: a contiguous consecutive load pair,
	// an NCSF pair with one ALU between, and a lone load.
	recs := []emu.Retired{
		mem(0, isa.OpLD, 2, 1, 0x100),
		mem(1, isa.OpLD, 2, 3, 0x108), // CSF contiguous with 0
		alu(2, 5, 6, 7),
		mem(3, isa.OpLD, 2, 4, 0x200),
		alu(4, 8, 9, 10),
		mem(5, isa.OpLD, 2, 11, 0x210),  // NCSF same line with 3
		mem(6, isa.OpLD, 2, 12, 0x4000), // lone
	}
	// Give the records valid contiguous immediates so static matching sees
	// the first pair too.
	recs[0].Inst.Imm = 0
	recs[1].Inst.Imm = 8
	st, err := AnalyzeTrace(trace.FromRecords("synthetic", 0, recs).Replay(), DefaultPairConfig())
	if err != nil {
		t.Fatal(err)
	}

	if st.TotalUops != 7 || st.MemUops != 5 {
		t.Errorf("totals = %d/%d", st.TotalUops, st.MemUops)
	}
	if st.MemPairUops != 2 {
		t.Errorf("MemPairUops = %d, want 2", st.MemPairUops)
	}
	if st.CSFPairs != 1 || st.NCSFPairs != 1 {
		t.Errorf("pairs = %d CSF, %d NCSF; want 1/1", st.CSFPairs, st.NCSFPairs)
	}
	if st.CSFByCategory[uop.AddrContiguous] != 1 {
		t.Error("CSF category wrong")
	}
	if st.NCSFByCategory[uop.AddrSameLine] != 1 {
		t.Error("NCSF category wrong")
	}
	if st.MeanDistance() != 1.5 {
		t.Errorf("mean distance = %v, want 1.5", st.MeanDistance())
	}
}
