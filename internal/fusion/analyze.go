package fusion

import (
	"fmt"

	"helios/internal/emu"
	"helios/internal/trace"
	"helios/internal/uop"
)

// TraceStats tabulates the fusion potential of a committed instruction
// stream. It backs the motivation figures: Figure 2 (memory vs other
// idiom µ-ops), Figure 4 (address categories of consecutive pairs) and
// Figure 5 (non-consecutive and different-base-register potential).
type TraceStats struct {
	TotalUops uint64
	MemUops   uint64

	// Figure 2: µ-ops covered by consecutive (decode-window) fusion.
	MemPairUops    uint64 // µ-ops in consecutive memory pairing idioms
	OtherIdiomUops uint64 // µ-ops in non-memory idioms

	// Figure 4: consecutive (distance 1) pairs by address category.
	CSFPairs      uint64
	CSFByCategory [6]uint64 // indexed by uop.AddrCategory

	// Figure 5: non-consecutive additions and base-register breakdown.
	NCSFPairs      uint64
	NCSFByCategory [6]uint64
	CSFSameBase    uint64
	CSFDiffBase    uint64
	NCSFSameBase   uint64
	NCSFDiffBase   uint64
	CSFAsymmetric  uint64
	NCSFAsymmetric uint64

	// Catalyst character of NCSF pairs (Related Work discussion).
	NCSFWithRegHazard uint64 // RaW/WaR between catalyst and tail
	DistanceSum       uint64 // for the mean head-tail distance
}

// PairsTotal returns all pairs found (consecutive + non-consecutive).
func (s *TraceStats) PairsTotal() uint64 { return s.CSFPairs + s.NCSFPairs }

// Rows enumerates every counter as (name, value) pairs in declaration
// order — the dump surface the statscomplete analyzer audits, so a
// counter added to TraceStats without a row here fails lint.
func (s *TraceStats) Rows() [][2]string {
	u := func(v uint64) string { return fmt.Sprint(v) }
	rows := [][2]string{
		{"total_uops", u(s.TotalUops)},
		{"mem_uops", u(s.MemUops)},
		{"mem_pair_uops", u(s.MemPairUops)},
		{"other_idiom_uops", u(s.OtherIdiomUops)},
		{"csf_pairs", u(s.CSFPairs)},
	}
	for i, v := range s.CSFByCategory {
		rows = append(rows, [2]string{
			fmt.Sprintf("csf_by_category[%s]", uop.AddrCategory(i)), u(v)})
	}
	rows = append(rows, [2]string{"ncsf_pairs", u(s.NCSFPairs)})
	for i, v := range s.NCSFByCategory {
		rows = append(rows, [2]string{
			fmt.Sprintf("ncsf_by_category[%s]", uop.AddrCategory(i)), u(v)})
	}
	return append(rows, [][2]string{
		{"csf_same_base", u(s.CSFSameBase)},
		{"csf_diff_base", u(s.CSFDiffBase)},
		{"ncsf_same_base", u(s.NCSFSameBase)},
		{"ncsf_diff_base", u(s.NCSFDiffBase)},
		{"csf_asymmetric", u(s.CSFAsymmetric)},
		{"ncsf_asymmetric", u(s.NCSFAsymmetric)},
		{"ncsf_with_reg_hazard", u(s.NCSFWithRegHazard)},
		{"distance_sum", u(s.DistanceSum)},
	}...)
}

// MeanDistance returns the average head→tail distance in µ-ops.
func (s *TraceStats) MeanDistance() float64 {
	if s.PairsTotal() == 0 {
		return 0
	}
	return float64(s.DistanceSum) / float64(s.PairsTotal())
}

// AnalyzeTrace scans a committed stream and computes fusion potential.
// The source yields records in program order; if it ends on an emulation
// fault, the error is returned alongside the stats gathered so far.
func AnalyzeTrace(src trace.Source, cfg PairConfig) (TraceStats, error) {
	var st TraceStats
	oracle := NewOracle(cfg)

	var pending emu.Retired // previous µ-op not yet consumed by a pair
	havePending := false
	var recent []emu.Retired // for catalyst hazard inspection

	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		st.TotalUops++
		if r.MemSize != 0 {
			st.MemUops++
		}

		// Consecutive idiom matching (Figure 2): greedy, non-overlapping.
		if havePending {
			switch {
			case MatchNonMemIdiom(pending.Inst, r.Inst) != IdiomNone:
				st.OtherIdiomUops += 2
				havePending = false
			default:
				if _, ok := MatchMemPair(pending.Inst, r.Inst, true); ok {
					st.MemPairUops += 2
					havePending = false
				} else {
					pending = r
				}
			}
		} else {
			pending = r
			havePending = true
		}

		// Address-based pairing (Figures 4 & 5).
		recent = append(recent, r)
		if len(recent) > cfg.MaxDist+1 {
			recent = recent[1:]
		}
		if p, ok := oracle.Observe(r); ok {
			st.DistanceSum += uint64(p.Distance)
			if p.Consecutive() {
				st.CSFPairs++
				st.CSFByCategory[p.Category]++
				if p.SameBase {
					st.CSFSameBase++
				} else {
					st.CSFDiffBase++
				}
				if !p.Symmetric {
					st.CSFAsymmetric++
				}
			} else {
				st.NCSFPairs++
				st.NCSFByCategory[p.Category]++
				if p.SameBase {
					st.NCSFSameBase++
				} else {
					st.NCSFDiffBase++
				}
				if !p.Symmetric {
					st.NCSFAsymmetric++
				}
				// Inspect the catalyst for register hazards.
				if span := spanFor(recent, p); span != nil && CatalystHasRegHazard(span) {
					st.NCSFWithRegHazard++
				}
			}
		}
	}
	return st, src.Err()
}

// spanFor extracts the head..tail slice from the recent window.
func spanFor(recent []emu.Retired, p Pairing) []emu.Retired {
	if len(recent) == 0 {
		return nil
	}
	base := recent[0].Seq
	hi := int(p.HeadSeq - base)
	ti := int(p.TailSeq - base)
	if hi < 0 || ti >= len(recent) || hi >= ti {
		return nil
	}
	return recent[hi : ti+1]
}
