package fusion

import (
	"helios/internal/emu"
	"helios/internal/uop"
)

// PairConfig bounds which dynamic memory pairs are considered eligible.
// The defaults mirror the paper: fusion within one cache-line-sized region
// (64 B), head at most 64 µ-ops away, loads may use different base
// registers, store pairs must share the base register and must not fuse
// across another store.
type PairConfig struct {
	LineSize uint64
	MaxDist  int

	// ConsecutiveOnly restricts pairing to adjacent µ-ops (no catalyst).
	ConsecutiveOnly bool
	// SameBaseOnly restricts pairing to µ-ops sharing the architectural
	// base register.
	SameBaseOnly bool
	// ContiguousOnly restricts pairing to exactly contiguous accesses.
	ContiguousOnly bool
	// SymmetricOnly restricts pairing to equal access sizes.
	SymmetricOnly bool
}

// DefaultPairConfig returns the paper's Helios/Oracle eligibility rules.
func DefaultPairConfig() PairConfig {
	return PairConfig{LineSize: 64, MaxDist: 64}
}

// Pairing describes one fused memory pair found in the dynamic stream.
type Pairing struct {
	HeadSeq   uint64
	TailSeq   uint64
	Kind      uop.FuseKind
	Category  uop.AddrCategory
	Distance  int  // tail seq - head seq (1 = consecutive)
	SameBase  bool // same architectural base register
	Symmetric bool // equal access sizes
}

// Consecutive reports whether the pair has an empty catalyst.
func (p Pairing) Consecutive() bool { return p.Distance == 1 }

// Oracle performs perfect look-ahead pairing over the committed dynamic
// stream: every memory µ-op is matched with the closest older unpaired
// memory µ-op that forms an eligible pair. It implements the OracleFusion
// configuration and is also the analysis engine behind Figures 4 and 5.
type Oracle struct {
	cfg    PairConfig
	window []emu.Retired // the last cfg.MaxDist+1 records, oldest first
	paired map[uint64]bool
}

// NewOracle creates an oracle with the given eligibility rules.
func NewOracle(cfg PairConfig) *Oracle {
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.MaxDist <= 0 {
		cfg.MaxDist = 64
	}
	return &Oracle{cfg: cfg, paired: make(map[uint64]bool)}
}

// Observe consumes the next committed record in program order. If r (as a
// tail nucleus) forms an eligible pair with an older unpaired µ-op, the
// pairing is returned.
func (o *Oracle) Observe(r emu.Retired) (Pairing, bool) {
	// Maintain the sliding window.
	o.window = append(o.window, r)
	if len(o.window) > o.cfg.MaxDist+1 {
		evicted := o.window[0]
		o.window = o.window[1:]
		delete(o.paired, evicted.Seq)
	}
	if r.MemSize == 0 || o.paired[r.Seq] {
		return Pairing{}, false
	}

	tailIdx := len(o.window) - 1
	maxBack := o.cfg.MaxDist
	if o.cfg.ConsecutiveOnly {
		maxBack = 1
	}
	for back := 1; back <= maxBack && tailIdx-back >= 0; back++ {
		headIdx := tailIdx - back
		h := o.window[headIdx]
		if p, ok := o.tryPair(headIdx, tailIdx, h, r); ok {
			o.paired[h.Seq] = true
			o.paired[r.Seq] = true
			return p, true
		}
	}
	return Pairing{}, false
}

func (o *Oracle) tryPair(headIdx, tailIdx int, h, t emu.Retired) (Pairing, bool) {
	if h.MemSize == 0 || o.paired[h.Seq] {
		return Pairing{}, false
	}
	var kind uop.FuseKind
	switch {
	case h.IsLoad() && t.IsLoad():
		kind = uop.FuseLoadPair
	case h.IsStore() && t.IsStore():
		kind = uop.FuseStorePair
	default:
		return Pairing{}, false
	}
	sameBase := h.Inst.Rs1 == t.Inst.Rs1
	if o.cfg.SameBaseOnly && !sameBase {
		return Pairing{}, false
	}
	if o.cfg.SymmetricOnly && h.MemSize != t.MemSize {
		return Pairing{}, false
	}
	cat := uop.Classify(h.EA, h.MemSize, t.EA, t.MemSize, o.cfg.LineSize)
	if !cat.Fuseable() {
		return Pairing{}, false
	}
	if o.cfg.ContiguousOnly && cat != uop.AddrContiguous {
		return Pairing{}, false
	}
	span := o.window[headIdx : tailIdx+1]
	if CatalystHasSerializing(span) {
		return Pairing{}, false
	}
	if kind == uop.FuseLoadPair {
		if TailDependsOnHead(span) {
			return Pairing{}, false // would deadlock
		}
	} else {
		// Store pairs: same base register only (DBR store fusion is
		// negligible, Section IV-B) and no store in the catalyst. A
		// catalyst that rewrites the base register makes the pair
		// DBR-by-value, which the hardware equally cannot fuse.
		if !sameBase {
			return Pairing{}, false
		}
		if CatalystHasStore(span) {
			return Pairing{}, false
		}
		for _, rec := range span[1 : len(span)-1] {
			if rec.Inst.WritesReg(h.Inst.Rs1) {
				return Pairing{}, false
			}
		}
	}
	return Pairing{
		HeadSeq:   h.Seq,
		TailSeq:   t.Seq,
		Kind:      kind,
		Category:  cat,
		Distance:  int(t.Seq - h.Seq),
		SameBase:  sameBase,
		Symmetric: h.MemSize == t.MemSize,
	}, true
}

// Reset clears the window (used on pipeline flushes when the oracle is
// re-primed from the restart point).
func (o *Oracle) Reset() {
	o.window = o.window[:0]
	o.paired = make(map[uint64]bool)
}
