package obs_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenProg mixes pair-able loads, dependent ALU work and a loop
// branch, so the golden trace exercises fused retire events and the
// histogram paths in a few hundred µ-ops. Squash records come from the
// deterministic chaos-flush hook in observedRun (branch mispredicts
// stall fetch in this model; only flushes squash).
const goldenProg = `
	.data
arr:
	.zero 512
	.text
_start:
	li t0, 12
	la t1, arr
loop:
	ld a0, 0(t1)
	ld a1, 8(t1)
	add a2, a0, a1
	sd a2, 16(t1)
	addi t1, t1, 8
	addi t0, t0, -1
	bnez t0, loop
	li a7, 93
	li a0, 0
	ecall
`

// goldenRecording records goldenProg's committed stream once.
func goldenRecording(t *testing.T) *trace.Recording {
	t.Helper()
	prog, err := asm.Assemble(goldenProg)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	rec, err := trace.Record(trace.NewLive(emu.New(prog), 200))
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return rec
}

// observedRun replays rec with every observer output captured.
func observedRun(t *testing.T, rec *trace.Recording) (pipeview, events, metrics []byte) {
	t.Helper()
	var pv, ev, m bytes.Buffer
	ob := &obs.Observer{PipeView: &pv, Events: &ev, Metrics: &m, SampleEvery: 64}
	cfg := ooo.DefaultConfig(fusion.ModeHelios)
	cfg.Obs = ob
	// Seeded chaos flushes give the trace deterministic squash records.
	cfg.ChaosFlushInterval = 60
	cfg.ChaosSeed = 7
	if _, err := ooo.New(cfg, rec.Replay()).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := ob.Err(); err != nil {
		t.Fatalf("observer: %v", err)
	}
	return pv.Bytes(), ev.Bytes(), m.Bytes()
}

// TestPipeViewGolden pins the O3PipeView export byte-for-byte. The
// golden file is committed; `go test ./internal/obs -run Golden -update`
// regenerates it after an intentional format or model change.
func TestPipeViewGolden(t *testing.T) {
	got, _, _ := observedRun(t, goldenRecording(t))
	path := filepath.Join("testdata", "pipeview.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("O3PipeView output drifted from the golden file (%d vs %d bytes):\n%s\n"+
			"re-run with -update if the change is intentional",
			len(got), len(want), firstDiff(got, want))
	}
}

// firstDiff renders the first differing line pair for the failure
// message.
func firstDiff(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return "one output is a prefix of the other"
}

// TestReplayDeterminism is the tracer's determinism contract: two
// replays of one recording must produce byte-identical event, pipeview
// and interval streams.
func TestReplayDeterminism(t *testing.T) {
	rec := goldenRecording(t)
	pv1, ev1, m1 := observedRun(t, rec)
	pv2, ev2, m2 := observedRun(t, rec)
	if !bytes.Equal(pv1, pv2) {
		t.Error("O3PipeView output differs between two replays of the same recording")
	}
	if !bytes.Equal(ev1, ev2) {
		t.Error("NDJSON event stream differs between two replays of the same recording")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("interval metrics CSV differs between two replays of the same recording")
	}
	if len(pv1) == 0 || len(ev1) == 0 || len(m1) == 0 {
		t.Fatalf("observed run produced empty streams (pipeview %d, events %d, metrics %d bytes)",
			len(pv1), len(ev1), len(m1))
	}
}

// TestGoldenHasFusionAndSquash guards the golden workload's coverage:
// the trace must contain at least one fused retire and one squashed
// record, or the golden test would silently stop exercising those
// paths.
func TestGoldenHasFusionAndSquash(t *testing.T) {
	pv, ev, _ := observedRun(t, goldenRecording(t))
	if !bytes.Contains(ev, []byte(`"fused":`)) {
		t.Error("event stream has no fused µ-op; the golden workload should fuse pairs")
	}
	if !bytes.Contains(ev, []byte(`"squashed":true`)) {
		t.Error("event stream has no squash; the golden workload should mispredict at least once")
	}
	if !bytes.Contains(pv, []byte("O3PipeView:retire:0:store:0")) {
		t.Error("pipeview has no squashed record (retire tick 0)")
	}
}
