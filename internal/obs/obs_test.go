package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleEvent() *Event {
	return &Event{
		Seq: 7, PC: 0x80000010, Disasm: "ld a0, 0(a1)",
		Fetch: 10, Decode: 10, Rename: 11, Dispatch: 11,
		Issue: 13, Complete: 16, Retire: 20,
		Fused: "ldp", TailSeq: 8, TailPC: 0x80000014,
		PairDistance: 1, PairCategory: "same-base", Predicted: true,
	}
}

// TestPipeViewFormat pins the exact O3PipeView record shape Konata
// parses: seven lines, gem5 field order, squashed µ-ops retiring at 0.
func TestPipeViewFormat(t *testing.T) {
	var buf bytes.Buffer
	o := &Observer{PipeView: &buf}
	o.Retire(sampleEvent())

	sq := sampleEvent()
	sq.Retire = 0
	sq.Squashed = true
	sq.SquashCycle = 21
	o.Squash(sq)

	want := "O3PipeView:fetch:10:0x80000010:0:1:ld a0, 0(a1)\n" +
		"O3PipeView:decode:10\n" +
		"O3PipeView:rename:11\n" +
		"O3PipeView:dispatch:11\n" +
		"O3PipeView:issue:13\n" +
		"O3PipeView:complete:16\n" +
		"O3PipeView:retire:20:store:0\n" +
		"O3PipeView:fetch:10:0x80000010:0:2:ld a0, 0(a1)\n" +
		"O3PipeView:decode:10\n" +
		"O3PipeView:rename:11\n" +
		"O3PipeView:dispatch:11\n" +
		"O3PipeView:issue:13\n" +
		"O3PipeView:complete:16\n" +
		"O3PipeView:retire:0:store:0\n"
	if got := buf.String(); got != want {
		t.Errorf("pipeview output:\n%s\nwant:\n%s", got, want)
	}
	if err := o.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

// TestEventsNDJSON checks one event marshals to a single JSON line with
// the fusion metadata present and zero-value optionals omitted.
func TestEventsNDJSON(t *testing.T) {
	var buf bytes.Buffer
	o := &Observer{Events: &buf}
	o.Retire(sampleEvent())

	out := buf.String()
	if strings.Count(out, "\n") != 1 || !strings.HasSuffix(out, "\n") {
		t.Fatalf("want exactly one newline-terminated line, got %q", out)
	}
	for _, frag := range []string{
		`"seq":7`, `"fused":"ldp"`, `"tail_pc":2147483668`,
		`"pair_category":"same-base"`, `"predicted":true`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("event line missing %s: %s", frag, out)
		}
	}
	if strings.Contains(out, "squashed") || strings.Contains(out, "mispredicted") {
		t.Errorf("zero-value optional fields not omitted: %s", out)
	}
}

// TestSampleDeltas checks the interval CSV: header once, counters
// differenced per interval, occupancies passed through.
func TestSampleDeltas(t *testing.T) {
	var buf bytes.Buffer
	o := &Observer{Metrics: &buf, SampleEvery: 100}

	o.Sample(IntervalStats{Cycle: 100, Insts: 80, Uops: 90, Branches: 10, ROBOcc: 12})
	o.Sample(IntervalStats{Cycle: 200, Insts: 200, Uops: 220, Branches: 25,
		BranchMispredicts: 3, Flushes: 3, ROBOcc: 31})

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	row1 := strings.Split(lines[1], ",")
	row2 := strings.Split(lines[2], ",")
	if len(header) != len(row1) || len(header) != len(row2) {
		t.Fatalf("column count mismatch: header %d, rows %d/%d", len(header), len(row1), len(row2))
	}
	col := func(row []string, name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q in header %v", name, header)
		return ""
	}
	// First interval differences against zero.
	if got := col(row1, "insts"); got != "80" {
		t.Errorf("row1 insts = %s, want 80", got)
	}
	if got := col(row1, "ipc_milli"); got != "800" {
		t.Errorf("row1 ipc_milli = %s, want 800", got)
	}
	// Second interval is a true delta; occupancy is instantaneous.
	if got := col(row2, "insts"); got != "120" {
		t.Errorf("row2 insts = %s, want 120", got)
	}
	if got := col(row2, "ipc_milli"); got != "1200" {
		t.Errorf("row2 ipc_milli = %s, want 1200", got)
	}
	if got := col(row2, "branch_mispredicts"); got != "3" {
		t.Errorf("row2 branch_mispredicts = %s, want 3", got)
	}
	if got := col(row2, "mpki_milli"); got != "25000" {
		t.Errorf("row2 mpki_milli = %s, want 25000", got)
	}
	if got := col(row2, "rob_occ"); got != "31" {
		t.Errorf("row2 rob_occ = %s, want 31", got)
	}
	if got := col(row2, "flushes"); got != "3" {
		t.Errorf("row2 flushes = %s, want 3", got)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("sink full")
}

// TestStickyError checks the first write failure latches in Err() and
// suppresses all further output attempts.
func TestStickyError(t *testing.T) {
	w := &failWriter{}
	o := &Observer{PipeView: w, Events: w, Metrics: w}
	o.Retire(sampleEvent())
	if o.Err() == nil {
		t.Fatal("write error not latched")
	}
	n := w.n
	o.Retire(sampleEvent())
	o.Sample(IntervalStats{Cycle: 1})
	if w.n != n {
		t.Errorf("observer kept writing after error: %d -> %d writes", n, w.n)
	}
}
