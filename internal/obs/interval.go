package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// IntervalStats is one cumulative snapshot of the engine counters the
// interval sampler tracks. The pipeline fills it at each sample
// boundary; the Observer differences consecutive snapshots so the CSV
// rows are per-interval rates. Counter fields are running totals;
// *Occ fields are instantaneous structure occupancies at the sample
// cycle. It is a plain value struct so building one allocates nothing.
type IntervalStats struct {
	Cycle uint64 // sample cycle (cumulative by construction)

	// Running totals, differenced per interval.
	Insts             uint64 // retired instructions
	Uops              uint64 // retired µ-ops
	MemPairs          uint64 // retired fused memory pairs (ldp+stp)
	Idioms            uint64 // retired fused ALU/branch idioms
	FusionPredictions uint64 // Helios FP pairings attempted
	FusionMispredicts uint64 // FP pairings undone before retire
	Branches          uint64 // retired branches
	BranchMispredicts uint64
	BTBMisses         uint64
	L1DMisses         uint64
	L2Misses          uint64
	LLCMisses         uint64
	Flushes           uint64 // pipeline flushes (mispredict + NCSF + chaos)

	// Instantaneous occupancies at the sample cycle.
	ROBOcc uint64
	IQOcc  uint64
	LQOcc  uint64
	SQOcc  uint64
	AQOcc  uint64

	// Top-down slot buckets (running totals; the four memory levels are
	// pre-summed into TDBackendMem for the time series). Their interval
	// deltas are rendered signed: squash/unfuse reclassification can
	// move slots out of a bucket between two samples.
	TDRetiring      uint64
	TDFusedRetiring uint64
	TDFrontendLat   uint64
	TDFrontendBW    uint64
	TDBadSpec       uint64
	TDBackendCore   uint64
	TDBackendMem    uint64
}

// intervalHeader must match Row's column order exactly.
var intervalHeader = []string{
	"cycle", "insts", "ipc_milli", "uops", "mem_pairs", "idioms",
	"fp_predictions", "fp_mispredicts", "branches", "branch_mispredicts",
	"mpki_milli", "btb_misses", "l1d_misses", "l2_misses", "llc_misses",
	"flushes", "rob_occ", "iq_occ", "lq_occ", "sq_occ", "aq_occ",
	"td_retiring", "td_fused_retiring", "td_frontend_lat", "td_frontend_bw",
	"td_bad_spec", "td_backend_core", "td_backend_mem",
}

// Header returns the CSV column names, aligned with Row.
func (s IntervalStats) Header() []string { return intervalHeader }

// Row renders one CSV row of per-interval deltas against the previous
// snapshot (the zero value for the first interval). Derived rates stay
// integral: ipc_milli is retired instructions per kilocycle and
// mpki_milli is branch mispredicts per million instructions, both
// computed over this interval only.
func (s IntervalStats) Row(prev IntervalStats) []string {
	dCycles := s.Cycle - prev.Cycle
	dInsts := s.Insts - prev.Insts
	var ipcMilli, mpkiMilli uint64
	if dCycles > 0 {
		ipcMilli = dInsts * 1000 / dCycles
	}
	if dInsts > 0 {
		mpkiMilli = (s.BranchMispredicts - prev.BranchMispredicts) * 1000000 / dInsts
	}
	cols := []uint64{
		s.Cycle,
		dInsts,
		ipcMilli,
		s.Uops - prev.Uops,
		s.MemPairs - prev.MemPairs,
		s.Idioms - prev.Idioms,
		s.FusionPredictions - prev.FusionPredictions,
		s.FusionMispredicts - prev.FusionMispredicts,
		s.Branches - prev.Branches,
		s.BranchMispredicts - prev.BranchMispredicts,
		mpkiMilli,
		s.BTBMisses - prev.BTBMisses,
		s.L1DMisses - prev.L1DMisses,
		s.L2Misses - prev.L2Misses,
		s.LLCMisses - prev.LLCMisses,
		s.Flushes - prev.Flushes,
		s.ROBOcc,
		s.IQOcc,
		s.LQOcc,
		s.SQOcc,
		s.AQOcc,
	}
	out := make([]string, 0, len(intervalHeader))
	for _, v := range cols {
		out = append(out, fmt.Sprint(v))
	}
	// Top-down deltas are signed: reclassification (squash, unfuse) can
	// shrink a cumulative bucket between samples, and an unsigned
	// rendering would print the wrapped difference.
	sd := func(cur, prev uint64) string { return strconv.FormatInt(int64(cur-prev), 10) }
	out = append(out,
		sd(s.TDRetiring, prev.TDRetiring),
		sd(s.TDFusedRetiring, prev.TDFusedRetiring),
		sd(s.TDFrontendLat, prev.TDFrontendLat),
		sd(s.TDFrontendBW, prev.TDFrontendBW),
		sd(s.TDBadSpec, prev.TDBadSpec),
		sd(s.TDBackendCore, prev.TDBackendCore),
		sd(s.TDBackendMem, prev.TDBackendMem),
	)
	return out
}

// Sample ingests one cumulative snapshot and appends the interval CSV
// row (emitting the header before the first row). The pipeline calls
// this every SampleEvery cycles and once more at end of run so the
// final partial interval is not lost.
func (o *Observer) Sample(s IntervalStats) {
	if o.Metrics == nil || o.err != nil {
		return
	}
	if !o.wroteHeader {
		if _, err := fmt.Fprintln(o.Metrics, strings.Join(intervalHeader, ",")); err != nil {
			o.err = err
			return
		}
		o.wroteHeader = true
	}
	if _, err := fmt.Fprintln(o.Metrics, strings.Join(s.Row(o.prev), ",")); err != nil {
		o.err = err
		return
	}
	o.prev = s
}
