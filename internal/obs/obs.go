// Package obs is the pipeline observability layer: per-µop event
// tracing in NDJSON and gem5 O3PipeView form (loadable in the Konata
// visualizer), plus a cycle-bucketed interval metrics sampler. It turns
// the end-of-run aggregate counters of ooo.Stats into time-resolved,
// per-event data so fusion coverage collapses, flush storms and port
// stalls can be localized within a run.
//
// The layer is always available and off by default. The pipeline holds
// a single *Observer pointer that is nil when observability is
// disabled; every hook site is a plain nil check on a concrete type —
// no interface dispatch, no allocation — so the disabled cost is a
// predicted-not-taken branch (pinned by BenchmarkPipelineObsOff).
//
// All output is a deterministic function of the simulated stream and
// configuration: events are emitted in commit/squash order, interval
// rows at fixed cycle boundaries, and nothing reads wall clocks. Two
// replays of the same recording produce byte-identical traces, which
// heliosvet's determinism rules and the obs determinism test enforce.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event is the full pipeline lifecycle of one µ-op, emitted when it
// retires or is squashed. Stage fields hold the cycle the µ-op reached
// the stage, 0 when it never did (the run's cycle counter starts at 1,
// so 0 is unambiguous). A fused µ-op carries the metadata of its pair:
// the kind, the tail nucleus's identity, the address-category verdict
// and whether the Helios predictor proposed the pairing.
type Event struct {
	Seq    uint64 `json:"seq"`
	PC     uint64 `json:"pc"`
	Disasm string `json:"disasm"`

	Fetch    uint64 `json:"fetch"`
	Decode   uint64 `json:"decode"`
	Rename   uint64 `json:"rename"`
	Dispatch uint64 `json:"dispatch"`
	Issue    uint64 `json:"issue"`
	Complete uint64 `json:"complete"`
	Retire   uint64 `json:"retire"` // 0 when squashed

	Squashed    bool   `json:"squashed,omitempty"`
	SquashCycle uint64 `json:"squash_cycle,omitempty"`

	Mispredicted bool `json:"mispredicted,omitempty"` // branch mispredict

	// Fusion metadata (zero values when the µ-op is not fused).
	Fused        string `json:"fused,omitempty"` // idiom | ldp | stp
	TailSeq      uint64 `json:"tail_seq,omitempty"`
	TailPC       uint64 `json:"tail_pc,omitempty"`
	PairDistance int    `json:"pair_distance,omitempty"`
	PairCategory string `json:"pair_category,omitempty"`
	Predicted    bool   `json:"predicted,omitempty"` // pairing came from the Helios FP
	Unfused      bool   `json:"unfused,omitempty"`   // fusion was undone before retire
}

// Observer is a per-run observability sink. Attach one via
// ooo.Config.Obs; any nil writer disables that output. Observer is not
// safe for concurrent use — one pipeline, one observer, as with the
// rest of the per-run simulation state.
type Observer struct {
	// PipeView receives the gem5 O3PipeView-compatible trace (one
	// multi-line record per retired or squashed µ-op), which Konata
	// renders directly.
	PipeView io.Writer

	// Events receives one JSON object per µ-op event, newline-delimited.
	Events io.Writer

	// Metrics receives the interval time series as CSV (header first).
	Metrics io.Writer

	// SampleEvery is the interval sampler period in cycles (0 disables
	// sampling even when Metrics is set).
	SampleEvery uint64

	sn          uint64 // monotone O3PipeView record id
	wroteHeader bool
	prev        IntervalStats
	err         error // first write error; output stops once set
}

// Err returns the first write error the observer encountered, if any.
// Hook sites cannot return errors (they sit in the cycle loop), so
// failures latch here and the driver surfaces them after the run.
func (o *Observer) Err() error { return o.err }

// Retire records a µ-op leaving the ROB. ev.Retire must be set to the
// commit cycle.
func (o *Observer) Retire(ev *Event) { o.record(ev) }

// Squash records a µ-op killed by a flush. ev.Squashed/SquashCycle must
// be set; ev.Retire stays 0, which is how O3PipeView marks squashes.
func (o *Observer) Squash(ev *Event) { o.record(ev) }

func (o *Observer) record(ev *Event) {
	if o.err != nil {
		return
	}
	if o.PipeView != nil {
		o.writePipeView(ev)
	}
	if o.Events != nil && o.err == nil {
		b, err := json.Marshal(ev)
		if err != nil {
			o.err = err
			return
		}
		if _, err := o.Events.Write(append(b, '\n')); err != nil {
			o.err = err
		}
	}
}

// writePipeView emits one gem5 O3PipeView record. Stage ticks are raw
// cycle numbers (Konata only needs a consistent unit); unreached stages
// and squashed retires are 0, exactly as gem5 emits them.
func (o *Observer) writePipeView(ev *Event) {
	o.sn++
	_, err := fmt.Fprintf(o.PipeView,
		"O3PipeView:fetch:%d:0x%08x:0:%d:%s\n"+
			"O3PipeView:decode:%d\n"+
			"O3PipeView:rename:%d\n"+
			"O3PipeView:dispatch:%d\n"+
			"O3PipeView:issue:%d\n"+
			"O3PipeView:complete:%d\n"+
			"O3PipeView:retire:%d:store:0\n",
		ev.Fetch, ev.PC, o.sn, ev.Disasm,
		ev.Decode, ev.Rename, ev.Dispatch, ev.Issue, ev.Complete, ev.Retire)
	if err != nil {
		o.err = err
	}
}
