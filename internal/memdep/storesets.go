// Package memdep implements the store-set memory dependence predictor of
// Chrysos & Emer, used by the paper's baseline core (Table II) to let
// loads issue speculatively around older stores with unknown addresses
// while avoiding repeated memory-order violations.
package memdep

// Invalid marks an SSIT entry with no assigned store set.
const invalidSSID = ^uint32(0)

// StoreSets tracks which loads have historically conflicted with which
// stores. It combines the Store Set ID Table (SSIT), indexed by PC, with
// the Last Fetched Store Table (LFST), indexed by store set ID.
type StoreSets struct {
	ssit []uint32
	mask uint64

	lfst       []lfstEntry
	nextSSID   uint32
	numSSIDs   uint32
	resetEvery uint64
	accesses   uint64
}

type lfstEntry struct {
	valid bool
	seq   uint64 // sequence number of the last in-flight store in the set
}

// New creates a store-set predictor with 2^logSize SSIT entries and
// 2^logSets store sets. The tables are periodically cleared (as in the
// original proposal) to adapt to phase changes.
func New(logSize, logSets uint) *StoreSets {
	n := uint64(1) << logSize
	s := &StoreSets{
		ssit:       make([]uint32, n),
		mask:       n - 1,
		lfst:       make([]lfstEntry, 1<<logSets),
		numSSIDs:   1 << logSets,
		resetEvery: 1 << 16,
	}
	s.Clear()
	return s
}

// Clear invalidates all assignments.
func (s *StoreSets) Clear() {
	for i := range s.ssit {
		s.ssit[i] = invalidSSID
	}
	for i := range s.lfst {
		s.lfst[i] = lfstEntry{}
	}
	s.nextSSID = 0
}

func (s *StoreSets) index(pc uint64) uint64 { return (pc >> 2) & s.mask }

func (s *StoreSets) maybeReset() {
	s.accesses++
	if s.accesses >= s.resetEvery {
		s.accesses = 0
		s.Clear()
	}
}

// DispatchLoad is called when a load dispatches. If the load belongs to a
// store set with an in-flight store, it returns that store's sequence
// number: the load must not issue before it.
func (s *StoreSets) DispatchLoad(loadPC uint64) (depSeq uint64, ok bool) {
	s.maybeReset()
	ssid := s.ssit[s.index(loadPC)]
	if ssid == invalidSSID {
		return 0, false
	}
	e := s.lfst[ssid%s.numSSIDs]
	if !e.valid {
		return 0, false
	}
	return e.seq, true
}

// DispatchStore is called when a store dispatches; it becomes the last
// fetched store of its set (if it has one).
func (s *StoreSets) DispatchStore(storePC uint64, seq uint64) {
	s.maybeReset()
	ssid := s.ssit[s.index(storePC)]
	if ssid == invalidSSID {
		return
	}
	s.lfst[ssid%s.numSSIDs] = lfstEntry{valid: true, seq: seq}
}

// CompleteStore clears the LFST entry when the store it names executes.
func (s *StoreSets) CompleteStore(storePC uint64, seq uint64) {
	ssid := s.ssit[s.index(storePC)]
	if ssid == invalidSSID {
		return
	}
	e := &s.lfst[ssid%s.numSSIDs]
	if e.valid && e.seq == seq {
		e.valid = false
	}
}

// Violation trains the predictor after a memory-order violation between a
// load and an older store, merging both PCs into one store set using the
// original paper's rules.
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	li, si := s.index(loadPC), s.index(storePC)
	lid, sid := s.ssit[li], s.ssit[si]
	switch {
	case lid == invalidSSID && sid == invalidSSID:
		id := s.nextSSID % s.numSSIDs
		s.nextSSID++
		s.ssit[li], s.ssit[si] = id, id
	case lid == invalidSSID:
		s.ssit[li] = sid
	case sid == invalidSSID:
		s.ssit[si] = lid
	default:
		// Both assigned: merge into the smaller-numbered set.
		if lid < sid {
			s.ssit[si] = lid
		} else {
			s.ssit[li] = sid
		}
	}
}

// Assigned reports whether a PC currently belongs to a store set
// (exported for tests and stats).
func (s *StoreSets) Assigned(pc uint64) bool {
	return s.ssit[s.index(pc)] != invalidSSID
}
