package memdep

import "testing"

const (
	loadPC  = 0x1000
	storePC = 0x2000
)

func TestNoDependenceBeforeTraining(t *testing.T) {
	s := New(10, 6)
	if _, ok := s.DispatchLoad(loadPC); ok {
		t.Error("untrained predictor should predict no dependence")
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	s := New(10, 6)
	s.Violation(loadPC, storePC)
	if !s.Assigned(loadPC) || !s.Assigned(storePC) {
		t.Fatal("violation must assign both PCs to a set")
	}
	// The store dispatches; the load must now wait for it.
	s.DispatchStore(storePC, 42)
	dep, ok := s.DispatchLoad(loadPC)
	if !ok || dep != 42 {
		t.Fatalf("DispatchLoad = %d, %v; want 42, true", dep, ok)
	}
}

func TestCompleteStoreClearsDependence(t *testing.T) {
	s := New(10, 6)
	s.Violation(loadPC, storePC)
	s.DispatchStore(storePC, 42)
	s.CompleteStore(storePC, 42)
	if _, ok := s.DispatchLoad(loadPC); ok {
		t.Error("completed store must not block loads")
	}
}

func TestCompleteStaleStoreDoesNotClear(t *testing.T) {
	s := New(10, 6)
	s.Violation(loadPC, storePC)
	s.DispatchStore(storePC, 42)
	s.DispatchStore(storePC, 43) // a younger instance replaces it
	s.CompleteStore(storePC, 42) // completion of the older one
	dep, ok := s.DispatchLoad(loadPC)
	if !ok || dep != 43 {
		t.Fatalf("DispatchLoad = %d, %v; want 43 (younger store live)", dep, ok)
	}
}

func TestMergeRules(t *testing.T) {
	s := New(10, 6)
	// Two independent violations create two sets; a cross violation merges.
	s.Violation(0x100, 0x200)
	s.Violation(0x300, 0x400)
	s.Violation(0x100, 0x400) // merge
	s.DispatchStore(0x400, 7)
	if dep, ok := s.DispatchLoad(0x100); !ok || dep != 7 {
		t.Fatalf("after merge, load 0x100 should wait for store 0x400: %d %v", dep, ok)
	}
}

func TestPeriodicReset(t *testing.T) {
	s := New(10, 6)
	s.resetEvery = 10
	s.Violation(loadPC, storePC)
	for i := 0; i < 11; i++ {
		s.DispatchStore(storePC, uint64(i))
	}
	if s.Assigned(loadPC) {
		t.Error("predictor should have reset")
	}
}
