package core

import (
	"context"

	"sync"
	"sync/atomic"
	"testing"

	"helios/internal/fusion"
	"helios/internal/workloads"
)

func TestRunOneWorkload(t *testing.T) {
	w, ok := workloads.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	r, err := Run(context.Background(), w, fusion.ModeNoFusion, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "crc32" || r.Mode != fusion.ModeNoFusion {
		t.Errorf("result metadata wrong: %+v", r)
	}
	if r.Stats.CommittedInsts < 29_000 {
		t.Errorf("committed %d, want ≈ 30000", r.Stats.CommittedInsts)
	}
	if r.Stats.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
}

func TestSuiteCaches(t *testing.T) {
	s := NewSuite(20_000)
	a, err := s.Get(context.Background(), "crc32", fusion.ModeNoFusion)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(context.Background(), "crc32", fusion.ModeNoFusion)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get should return the cached result pointer")
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	s := NewSuite(1000)
	if _, err := s.Get(context.Background(), "nope", fusion.ModeNoFusion); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestPrefetchFillsCache(t *testing.T) {
	s := NewSuite(10_000)
	names := []string{"crc32", "sha"}
	modes := []fusion.Mode{fusion.ModeNoFusion, fusion.ModeHelios}
	s.Prefetch(context.Background(), names, modes)
	var hits int64
	for _, n := range names {
		for _, m := range modes {
			if r, err := s.Get(context.Background(), n, m); err == nil && r != nil {
				atomic.AddInt64(&hits, 1)
			}
		}
	}
	if hits != 4 {
		t.Errorf("cached results = %d, want 4", hits)
	}
}

// TestSuiteSingleflight hammers one (workload, mode) key from many
// goroutines: exactly one pipeline run and one functional emulation must
// happen, every caller must see the same result pointer, and the rest
// must be accounted as deduplicated. Run under -race this also checks the
// cache/flight locking.
func TestSuiteSingleflight(t *testing.T) {
	const callers = 8
	s := NewSuite(20_000)
	var wg sync.WaitGroup
	results := make([]*Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Get(context.Background(), "crc32", fusion.ModeNoFusion)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	m := s.Metrics()
	if m.PipelineRuns != 1 {
		t.Errorf("PipelineRuns = %d, want 1", m.PipelineRuns)
	}
	if m.TraceMisses != 1 {
		t.Errorf("TraceMisses = %d, want 1", m.TraceMisses)
	}
	if m.TraceHits != 0 {
		t.Errorf("TraceHits = %d, want 0", m.TraceHits)
	}
}

// TestSuiteTraceReuseAcrossModes: a second fusion mode on the same
// workload must replay the recorded trace, not re-emulate.
func TestSuiteTraceReuseAcrossModes(t *testing.T) {
	s := NewSuite(15_000)
	if _, err := s.Get(context.Background(), "sha", fusion.ModeNoFusion); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), "sha", fusion.ModeHelios); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.TraceMisses != 1 || m.TraceHits != 1 {
		t.Errorf("trace cache: misses=%d hits=%d, want 1/1", m.TraceMisses, m.TraceHits)
	}
	if m.Replays != 2 || m.PipelineRuns != 2 {
		t.Errorf("replays=%d runs=%d, want 2/2", m.Replays, m.PipelineRuns)
	}
	if m.EmuTime <= 0 || m.SimTime <= 0 {
		t.Errorf("wall-time counters not populated: emu=%v sim=%v", m.EmuTime, m.SimTime)
	}
}

func TestDeterministicResults(t *testing.T) {
	w, _ := workloads.ByName("sha")
	a, err := Run(context.Background(), w, fusion.ModeHelios, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), w, fusion.ModeHelios, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("non-deterministic simulation:\n%+v\n%+v", a.Stats, b.Stats)
	}
}
