package core

import (
	"sync/atomic"
	"testing"

	"helios/internal/fusion"
	"helios/internal/workloads"
)

func TestRunOneWorkload(t *testing.T) {
	w, ok := workloads.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	r, err := Run(w, fusion.ModeNoFusion, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "crc32" || r.Mode != fusion.ModeNoFusion {
		t.Errorf("result metadata wrong: %+v", r)
	}
	if r.Stats.CommittedInsts < 29_000 {
		t.Errorf("committed %d, want ≈ 30000", r.Stats.CommittedInsts)
	}
	if r.Stats.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
}

func TestSuiteCaches(t *testing.T) {
	s := NewSuite(20_000)
	a, err := s.Get("crc32", fusion.ModeNoFusion)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get("crc32", fusion.ModeNoFusion)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get should return the cached result pointer")
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	s := NewSuite(1000)
	if _, err := s.Get("nope", fusion.ModeNoFusion); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestPrefetchFillsCache(t *testing.T) {
	s := NewSuite(10_000)
	names := []string{"crc32", "sha"}
	modes := []fusion.Mode{fusion.ModeNoFusion, fusion.ModeHelios}
	s.Prefetch(names, modes)
	var hits int64
	for _, n := range names {
		for _, m := range modes {
			if r, err := s.Get(n, m); err == nil && r != nil {
				atomic.AddInt64(&hits, 1)
			}
		}
	}
	if hits != 4 {
		t.Errorf("cached results = %d, want 4", hits)
	}
}

func TestDeterministicResults(t *testing.T) {
	w, _ := workloads.ByName("sha")
	a, err := Run(w, fusion.ModeHelios, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, fusion.ModeHelios, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("non-deterministic simulation:\n%+v\n%+v", a.Stats, b.Stats)
	}
}
