// Package core is the library facade: it wires workloads, the functional
// emulator and the out-of-order pipeline together, runs the paper's six
// fusion configurations, and caches results for the experiment drivers.
//
// Simulation is two-phase, mirroring the paper's methodology: the
// functional emulator produces the committed-path stream once per
// workload (a trace.Recording), and the cycle-level model replays it per
// configuration. Suite performs the record-once/replay-many bookkeeping
// and deduplicates concurrent requests for the same key.
//
// Every entry point takes a context.Context: cancellation and deadlines
// are honored mid-run (checked inside the pipeline's cycle loop and the
// recording emulation), and a context failure is never cached. When a
// cached recording fails to replay (e.g. a corrupt trace file was seeded
// via SeedRecording), Suite degrades gracefully: it re-emulates the
// workload live exactly once, replaces the recording, and retries — so
// one bad trace costs one extra emulation, not the whole suite run.
//
// Typical use:
//
//	w, _ := workloads.ByName("crc32")
//	res, err := core.Run(ctx, w, fusion.ModeHelios, 0)
//	fmt.Println(res.Stats.IPC())
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/ooo"
	"helios/internal/telemetry"
	"helios/internal/trace"
	"helios/internal/workloads"
)

// engineSchema names the cycle-level engine's semantic generation. Bump
// it when the model changes in a way that makes previously computed
// results incomparable (new stall accounting, different fusion rules,
// ...): every result cache — the in-process Suite cache and any
// content-addressed store built on EngineVersion — keys on it, so a
// schema bump invalidates stale results instead of serving them.
const engineSchema = "helios-engine/1"

// engineVersion is computed once per process: the semantic schema plus
// the VCS identity of the binary, when the build embedded one.
var engineVersion = func() string {
	v := engineSchema
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += "+" + rev
		if dirty {
			v += ".dirty"
		}
	}
	return v
}()

// EngineVersion identifies the simulation engine this process runs:
// the semantic schema plus the build's VCS revision. It is folded into
// every Suite cache key and is the engine component of heliosd's
// content-addressed result keys, so results produced by a different
// engine can never be served as current.
func EngineVersion() string { return engineVersion }

// Result is the outcome of simulating one workload under one fusion mode.
type Result struct {
	Workload string
	Mode     fusion.Mode
	Stats    ooo.Stats
}

// Run simulates workload w under the given fusion mode for maxInsts
// architectural instructions (0 = the workload's own budget).
func Run(ctx context.Context, w workloads.Workload, mode fusion.Mode, maxInsts uint64) (*Result, error) {
	cfg := ooo.DefaultConfig(mode)
	return RunConfig(ctx, w, cfg, maxInsts)
}

// RunConfig simulates with an explicit machine configuration, emulating
// the workload live (single-run callers do not pay for a recording).
func RunConfig(ctx context.Context, w workloads.Workload, cfg ooo.Config, maxInsts uint64) (*Result, error) {
	if maxInsts == 0 {
		maxInsts = w.MaxInsts
	}
	src, err := w.Trace(maxInsts)
	if err != nil {
		return nil, err
	}
	return RunSource(ctx, w.Name, cfg, src, maxInsts)
}

// RunSource simulates an explicit committed-path source — typically a
// trace.Recording replay cursor or a loaded trace file — under cfg.
// maxInsts bounds committed instructions (0 = drain the source). The
// context is polled inside the cycle loop; on cancellation the returned
// error unwraps to ctx.Err().
func RunSource(ctx context.Context, name string, cfg ooo.Config, src trace.Source, maxInsts uint64) (*Result, error) {
	cfg.MaxUops = maxInsts
	p := ooo.New(cfg, src)
	st, err := p.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%v: %w", name, cfg.Mode, err)
	}
	return &Result{Workload: name, Mode: cfg.Mode, Stats: *st}, nil
}

// isCtxErr reports whether err is a cancellation/deadline failure —
// caller-induced, so never cached and never "repaired".
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Metrics is a snapshot of the suite's record/replay observability
// counters: how much functional emulation was spent versus how often its
// product was reused, and where the wall time went.
type Metrics struct {
	TraceMisses  uint64 // recordings materialized (functional emulations)
	TraceHits    uint64 // runs served from an already-cached recording
	Replays      uint64 // replay cursors handed to the pipeline
	PipelineRuns uint64 // cycle-level simulations performed
	DedupedRuns  uint64 // Get calls that waited on an identical in-flight run

	// LiveFallbacks counts recordings re-emulated live because a cached
	// recording failed to replay (graceful degradation; at most one per
	// workload×budget key).
	LiveFallbacks uint64

	EmuTime time.Duration // wall time in functional emulation (recording)
	SimTime time.Duration // wall time in cycle-level simulation

	// FanoutWall is the elapsed wall time spent inside RunCells fan-outs;
	// CellWalls holds the per-cell wall times in scheduling (input) order.
	// With workers > 1 the cell walls sum to more than FanoutWall — the
	// ratio is the scheduler's realized speedup.
	FanoutWall time.Duration
	CellWalls  []CellWall
}

// Rows returns the deterministic counters as label/value pairs — the
// byte-stable half of the metrics surface, safe to diff across runs.
func (m Metrics) Rows() [][2]string {
	return [][2]string{
		{"trace misses (functional emulations)", fmt.Sprint(m.TraceMisses)},
		{"trace hits (recording reused)", fmt.Sprint(m.TraceHits)},
		{"replays", fmt.Sprint(m.Replays)},
		{"pipeline runs", fmt.Sprint(m.PipelineRuns)},
		{"deduped runs", fmt.Sprint(m.DedupedRuns)},
		{"live fallbacks", fmt.Sprint(m.LiveFallbacks)},
	}
}

// WallRows returns the wall-time measurements as label/value pairs:
// phase totals, then — when a scheduler fan-out ran — the elapsed
// fan-out time, the serial-equivalent sum of per-cell walls, the
// realized speedup, and each cell's wall in scheduling order. Values
// are nondeterministic by nature; the row set and order are not.
func (m Metrics) WallRows() [][2]string {
	rows := [][2]string{
		{"emulation wall", m.EmuTime.Round(time.Millisecond).String()},
		{"simulation wall", m.SimTime.Round(time.Millisecond).String()},
	}
	if m.FanoutWall > 0 {
		var sum time.Duration
		for _, c := range m.CellWalls {
			sum += c.Wall
		}
		rows = append(rows,
			[2]string{"fan-out wall (elapsed)", m.FanoutWall.Round(time.Millisecond).String()},
			[2]string{"cell walls (serial-equivalent)", sum.Round(time.Millisecond).String()},
			[2]string{"realized speedup", fmt.Sprintf("%.2fx", float64(sum)/float64(m.FanoutWall))})
		for _, c := range m.CellWalls {
			rows = append(rows, [2]string{
				"cell " + c.Workload + "/" + c.Mode.String(),
				c.Wall.Round(time.Millisecond).String(),
			})
		}
	}
	return rows
}

// Suite runs and caches simulations across workloads and modes, fanning
// out across CPUs. Each workload is functionally emulated exactly once
// per instruction budget; every mode replays the recording. The zero
// value is not usable; use NewSuite.
type Suite struct {
	MaxInsts uint64 // per-run instruction budget (0 = workload default)

	mu        sync.Mutex
	cache     map[suiteKey]*Result
	errs      map[suiteKey]error
	resFlight map[suiteKey]chan struct{}

	traces      map[traceKey]*traceEntry
	traceFlight map[traceKey]chan struct{}

	metrics Metrics
}

// suiteKey identifies one cached Result. It carries everything the
// result depends on: the workload, the fusion mode, the resolved
// instruction budget and the engine version — so a budget change (or a
// result produced by a different engine build) can never be served as a
// hit for the current request.
type suiteKey struct {
	workload string
	mode     fusion.Mode
	budget   uint64
	engine   string
}

type traceKey struct {
	workload string
	maxInsts uint64
}

type traceEntry struct {
	rec *trace.Recording
	err error
	// repaired marks a recording produced by the live-fallback path: if
	// it still fails to replay, the failure is real and must surface.
	repaired bool
}

// NewSuite creates a result cache with the given per-run budget.
func NewSuite(maxInsts uint64) *Suite {
	return &Suite{
		MaxInsts:    maxInsts,
		cache:       make(map[suiteKey]*Result),
		errs:        make(map[suiteKey]error),
		resFlight:   make(map[suiteKey]chan struct{}),
		traces:      make(map[traceKey]*traceEntry),
		traceFlight: make(map[traceKey]chan struct{}),
	}
}

// Metrics returns a snapshot of the record/replay counters.
func (s *Suite) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.CellWalls = append([]CellWall(nil), s.metrics.CellWalls...)
	return m
}

// CacheSnapshot returns the cached result keys as sorted
// "workload/mode@budget" strings. The result cache is map-keyed, so the
// iteration here is explicitly sorted — `experiments -metrics` output
// and crash-dump context must be byte-stable across identical runs.
// The engine component is omitted: within one process it is constant.
func (s *Suite) CacheSnapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.cache))
	//helios:nondeterminism-ok keys are sorted below before being returned
	for k := range s.cache {
		keys = append(keys, fmt.Sprintf("%s/%s@%d", k.workload, k.mode, k.budget))
	}
	sort.Strings(keys)
	return keys
}

// budget returns the effective per-run instruction bound for w.
func (s *Suite) budget(w workloads.Workload) uint64 {
	if s.MaxInsts != 0 {
		return s.MaxInsts
	}
	return w.MaxInsts
}

// SeedRecording pre-populates the trace cache with an externally
// produced recording (e.g. loaded from a trace file), keyed by its Name
// and MaxInsts. Replays will use it instead of emulating — and if it
// turns out to be corrupt, the live-fallback path replaces it.
func (s *Suite) SeedRecording(rec *trace.Recording) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces[traceKey{rec.Name, rec.MaxInsts}] = &traceEntry{rec: rec}
}

// Get returns the (cached) result for one workload/mode pair at the
// suite's budget. Concurrent calls for the same uncached key share a
// single simulation. Context failures abort the wait or the run but are
// never cached, so a later Get with a live context retries.
func (s *Suite) Get(ctx context.Context, name string, mode fusion.Mode) (*Result, error) {
	return s.GetBudget(ctx, name, mode, 0)
}

// GetBudget is Get with an explicit per-call instruction budget
// (0 = the suite's own budget, falling back to the workload default).
// The resolved budget is part of the cache key, so one Suite serves
// mixed-budget traffic — heliosd's request path — without any risk of a
// budget change returning a stale result.
func (s *Suite) GetBudget(ctx context.Context, name string, mode fusion.Mode, budget uint64) (*Result, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	if budget == 0 {
		budget = s.budget(w)
	}
	key := suiteKey{name, mode, budget, engineVersion}
	s.mu.Lock()
	for {
		if r, ok := s.cache[key]; ok {
			err := s.errs[key]
			s.mu.Unlock()
			return r, err
		}
		ch, inflight := s.resFlight[key]
		if !inflight {
			break
		}
		s.metrics.DedupedRuns++
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.resFlight[key] = ch
	s.mu.Unlock()

	r, err := s.run(ctx, w, mode, budget)

	s.mu.Lock()
	if !isCtxErr(err) {
		s.cache[key] = r
		s.errs[key] = err
	}
	delete(s.resFlight, key)
	s.mu.Unlock()
	close(ch)
	return r, err
}

// run performs one uncached simulation: fetch (or make) the workload's
// recording, replay it through the pipeline under the given mode, and on
// a replay failure degrade to one live re-emulation.
func (s *Suite) run(ctx context.Context, w workloads.Workload, mode fusion.Mode, budget uint64) (*Result, error) {
	rec, err := s.recording(ctx, w, budget)
	if err != nil {
		return nil, err
	}
	return s.replayDegrade(ctx, w, ooo.DefaultConfig(mode), rec, budget)
}

// ReplayConfig replays the workload's shared recording under an explicit
// machine configuration, with the same graceful degradation as Get: a
// recording that fails to replay is re-emulated live exactly once. The
// result is never cached here — custom configurations are open-ended, so
// caching is the caller's job (heliosd keys them by content hash) — but
// the record-once trace and its repair path are fully shared with the
// default-config traffic.
func (s *Suite) ReplayConfig(ctx context.Context, name string, cfg ooo.Config, budget uint64) (*Result, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	if budget == 0 {
		budget = s.budget(w)
	}
	rec, err := s.recording(ctx, w, budget)
	if err != nil {
		return nil, err
	}
	return s.replayDegrade(ctx, w, cfg, rec, budget)
}

// replayDegrade is the replay half of one simulation: run the recording
// through the pipeline, and if the replay fails for a non-context reason
// (corrupt trace file, truncated stream, ...) degrade gracefully —
// re-emulate the workload live, once per trace key, and retry against
// the fresh recording.
func (s *Suite) replayDegrade(ctx context.Context, w workloads.Workload, cfg ooo.Config, rec *trace.Recording, budget uint64) (*Result, error) {
	r, runErr := s.replay(ctx, w.Name, cfg, rec, budget)
	if runErr == nil || isCtxErr(runErr) {
		return r, runErr
	}
	// The degrade span marks the rare repair path in the request's trace
	// — rare enough that heliosd's tail sampler boosts traces carrying it
	// (sampling.SpanBoost), so /tracez keeps evidence of degradations
	// even under heavy healthy traffic.
	sp := telemetry.FromContext(ctx).Start("degrade")
	sp.SetAttr("workload", w.Name)
	fresh, ferr := s.repairRecording(ctx, w, budget, rec)
	if ferr != nil {
		sp.SetBool("err", true)
		sp.End()
		return nil, fmt.Errorf("core: %s: replay failed (%w) and live fallback failed: %w", w.Name, runErr, ferr)
	}
	if fresh == rec {
		// Already the repaired recording: the failure is real.
		sp.SetBool("err", true)
		sp.End()
		return r, runErr
	}
	sp.SetBool("err", false)
	sp.End()
	return s.replay(ctx, w.Name, cfg, fresh, budget)
}

// replay runs one cycle-level simulation over a recording, with timing
// accounted to the suite metrics.
func (s *Suite) replay(ctx context.Context, name string, cfg ooo.Config, rec *trace.Recording, budget uint64) (*Result, error) {
	start := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it
	r, err := RunSource(ctx, name, cfg, rec.Replay(), budget)
	s.mu.Lock()
	s.metrics.Replays++
	s.metrics.PipelineRuns++
	s.metrics.SimTime += time.Since(start)
	s.mu.Unlock()
	return r, err
}

// ObserveReplay replays the workload's shared recording under the given
// mode with the observability layer attached. The run is never cached
// (an observed Result is a side-effecting run, and the observer's
// writers are caller-owned), but it reuses the suite's record-once
// trace, so observing costs one replay, not a re-emulation. Replay
// determinism guarantees the observed run retires the same stream as
// the cached Get result for the same key.
func (s *Suite) ObserveReplay(ctx context.Context, name string, mode fusion.Mode, ob *obs.Observer) (*Result, error) {
	return s.ObserveReplayConfig(ctx, name, ooo.DefaultConfig(mode), 0, ob)
}

// ObserveReplayConfig is ObserveReplay with an explicit pipeline config
// and instruction budget (0 = the suite's budget) — the form heliosd's
// `/v1/run` obs artifacts route through, so a request carrying a custom
// config still gets its pipeview/events/interval streams from the same
// record-once trace as the cached result for that key. cfg.Obs is
// overwritten with ob; everything else is the caller's.
func (s *Suite) ObserveReplayConfig(ctx context.Context, name string, cfg ooo.Config, budget uint64, ob *obs.Observer) (*Result, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	if budget == 0 {
		budget = s.budget(w)
	}
	rec, err := s.recording(ctx, w, budget)
	if err != nil {
		return nil, err
	}
	cfg.Obs = ob
	start := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it
	r, err := RunSource(ctx, name, cfg, rec.Replay(), budget)
	s.mu.Lock()
	s.metrics.Replays++
	s.metrics.PipelineRuns++
	s.metrics.SimTime += time.Since(start)
	s.mu.Unlock()
	if err != nil {
		return r, err
	}
	if oerr := ob.Err(); oerr != nil {
		return r, fmt.Errorf("core: %s/%v: observer: %w", name, cfg.Mode, oerr)
	}
	return r, nil
}

// Recording returns the workload's committed stream at the suite's
// budget, materializing it on first use (experiment drivers replay it for
// trace analyses without re-emulating).
func (s *Suite) Recording(ctx context.Context, name string) (*trace.Recording, error) {
	return s.RecordingBudget(ctx, name, 0)
}

// RecordingBudget is Recording with an explicit instruction budget
// (0 = the suite's budget). heliosd's micro-batcher uses it as the
// batch's single record phase: one call under the server's root context
// materializes the trace, and every request in the batch then replays a
// guaranteed warm recording under its own deadline.
func (s *Suite) RecordingBudget(ctx context.Context, name string, budget uint64) (*trace.Recording, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	if budget == 0 {
		budget = s.budget(w)
	}
	return s.recording(ctx, w, budget)
}

// recording is the record-once half: per (workload, budget) key, the
// first caller emulates and everyone else waits for or reuses the buffer.
// A context failure during emulation is returned but not cached.
func (s *Suite) recording(ctx context.Context, w workloads.Workload, budget uint64) (*trace.Recording, error) {
	key := traceKey{w.Name, budget}
	s.mu.Lock()
	for {
		if e, ok := s.traces[key]; ok {
			s.metrics.TraceHits++
			s.mu.Unlock()
			return e.rec, e.err
		}
		ch, inflight := s.traceFlight[key]
		if !inflight {
			break
		}
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.traceFlight[key] = ch
	s.metrics.TraceMisses++
	s.mu.Unlock()

	start := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it
	rec, err := s.emulate(ctx, w, budget)

	s.mu.Lock()
	if !isCtxErr(err) {
		s.traces[key] = &traceEntry{rec: rec, err: err}
	}
	s.metrics.EmuTime += time.Since(start)
	delete(s.traceFlight, key)
	s.mu.Unlock()
	close(ch)
	return rec, err
}

// emulate records the workload's committed stream under ctx.
func (s *Suite) emulate(ctx context.Context, w workloads.Workload, budget uint64) (*trace.Recording, error) {
	src, err := w.Trace(budget)
	if err != nil {
		return nil, err
	}
	rec, err := trace.Record(trace.WithContext(ctx, src))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	rec.Name = w.Name
	rec.MaxInsts = budget
	return rec, nil
}

// repairRecording implements the degradation path: replace a recording
// that failed to replay with one fresh live emulation. At most one
// repair happens per trace key — if the repaired recording also fails,
// callers surface the failure. bad is the recording the caller just
// watched fail, so a concurrent repair is detected and reused.
func (s *Suite) repairRecording(ctx context.Context, w workloads.Workload, budget uint64, bad *trace.Recording) (*trace.Recording, error) {
	key := traceKey{w.Name, budget}
	s.mu.Lock()
	for {
		e := s.traces[key]
		if e != nil && (e.rec != bad || e.repaired) {
			// Someone already repaired (or the caller replayed the
			// repaired recording): hand it back as-is.
			s.mu.Unlock()
			return e.rec, e.err
		}
		ch, inflight := s.traceFlight[key]
		if !inflight {
			break
		}
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.traceFlight[key] = ch
	s.metrics.LiveFallbacks++
	s.mu.Unlock()

	start := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it
	rec, err := s.emulate(ctx, w, budget)

	s.mu.Lock()
	if isCtxErr(err) {
		// Keep the old (bad) entry so a later Get can retry the repair.
		s.traces[key] = &traceEntry{rec: bad}
		s.metrics.LiveFallbacks--
	} else {
		s.traces[key] = &traceEntry{rec: rec, err: err, repaired: true}
	}
	s.metrics.EmuTime += time.Since(start)
	delete(s.traceFlight, key)
	s.mu.Unlock()
	close(ch)
	return rec, err
}

// Prefetch runs every workload under each mode in parallel, filling the
// cache with GOMAXPROCS workers. Errors surface on the corresponding
// Get; Prefetch stops issuing work once ctx fails. It is PrefetchN with
// the default worker bound.
func (s *Suite) Prefetch(ctx context.Context, names []string, modes []fusion.Mode) {
	s.PrefetchN(ctx, names, modes, 0)
}
