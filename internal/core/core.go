// Package core is the library facade: it wires workloads, the functional
// emulator and the out-of-order pipeline together, runs the paper's six
// fusion configurations, and caches results for the experiment drivers.
//
// Simulation is two-phase, mirroring the paper's methodology: the
// functional emulator produces the committed-path stream once per
// workload (a trace.Recording), and the cycle-level model replays it per
// configuration. Suite performs the record-once/replay-many bookkeeping
// and deduplicates concurrent requests for the same key.
//
// Typical use:
//
//	w, _ := workloads.ByName("crc32")
//	res, err := core.Run(w, fusion.ModeHelios, 0)
//	fmt.Println(res.Stats.IPC())
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/trace"
	"helios/internal/workloads"
)

// Result is the outcome of simulating one workload under one fusion mode.
type Result struct {
	Workload string
	Mode     fusion.Mode
	Stats    ooo.Stats
}

// Run simulates workload w under the given fusion mode for maxInsts
// architectural instructions (0 = the workload's own budget).
func Run(w workloads.Workload, mode fusion.Mode, maxInsts uint64) (*Result, error) {
	cfg := ooo.DefaultConfig(mode)
	return RunConfig(w, cfg, maxInsts)
}

// RunConfig simulates with an explicit machine configuration, emulating
// the workload live (single-run callers do not pay for a recording).
func RunConfig(w workloads.Workload, cfg ooo.Config, maxInsts uint64) (*Result, error) {
	if maxInsts == 0 {
		maxInsts = w.MaxInsts
	}
	src, err := w.Trace(maxInsts)
	if err != nil {
		return nil, err
	}
	return RunSource(w.Name, cfg, src, maxInsts)
}

// RunSource simulates an explicit committed-path source — typically a
// trace.Recording replay cursor or a loaded trace file — under cfg.
// maxInsts bounds committed instructions (0 = drain the source).
func RunSource(name string, cfg ooo.Config, src trace.Source, maxInsts uint64) (*Result, error) {
	cfg.MaxUops = maxInsts
	p := ooo.New(cfg, src)
	st, err := p.Run()
	if err != nil {
		return nil, fmt.Errorf("core: %s/%v: %w", name, cfg.Mode, err)
	}
	return &Result{Workload: name, Mode: cfg.Mode, Stats: *st}, nil
}

// Metrics is a snapshot of the suite's record/replay observability
// counters: how much functional emulation was spent versus how often its
// product was reused, and where the wall time went.
type Metrics struct {
	TraceMisses  uint64 // recordings materialized (functional emulations)
	TraceHits    uint64 // runs served from an already-cached recording
	Replays      uint64 // replay cursors handed to the pipeline
	PipelineRuns uint64 // cycle-level simulations performed
	DedupedRuns  uint64 // Get calls that waited on an identical in-flight run

	EmuTime time.Duration // wall time in functional emulation (recording)
	SimTime time.Duration // wall time in cycle-level simulation
}

// Suite runs and caches simulations across workloads and modes, fanning
// out across CPUs. Each workload is functionally emulated exactly once
// per instruction budget; every mode replays the recording. The zero
// value is not usable; use NewSuite.
type Suite struct {
	MaxInsts uint64 // per-run instruction budget (0 = workload default)

	mu        sync.Mutex
	cache     map[suiteKey]*Result
	errs      map[suiteKey]error
	resFlight map[suiteKey]chan struct{}

	traces      map[traceKey]*traceEntry
	traceFlight map[traceKey]chan struct{}

	metrics Metrics
}

type suiteKey struct {
	workload string
	mode     fusion.Mode
}

type traceKey struct {
	workload string
	maxInsts uint64
}

type traceEntry struct {
	rec *trace.Recording
	err error
}

// NewSuite creates a result cache with the given per-run budget.
func NewSuite(maxInsts uint64) *Suite {
	return &Suite{
		MaxInsts:    maxInsts,
		cache:       make(map[suiteKey]*Result),
		errs:        make(map[suiteKey]error),
		resFlight:   make(map[suiteKey]chan struct{}),
		traces:      make(map[traceKey]*traceEntry),
		traceFlight: make(map[traceKey]chan struct{}),
	}
}

// Metrics returns a snapshot of the record/replay counters.
func (s *Suite) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// budget returns the effective per-run instruction bound for w.
func (s *Suite) budget(w workloads.Workload) uint64 {
	if s.MaxInsts != 0 {
		return s.MaxInsts
	}
	return w.MaxInsts
}

// Get returns the (cached) result for one workload/mode pair. Concurrent
// calls for the same uncached key share a single simulation.
func (s *Suite) Get(name string, mode fusion.Mode) (*Result, error) {
	key := suiteKey{name, mode}
	s.mu.Lock()
	for {
		if r, ok := s.cache[key]; ok {
			err := s.errs[key]
			s.mu.Unlock()
			return r, err
		}
		ch, inflight := s.resFlight[key]
		if !inflight {
			break
		}
		s.metrics.DedupedRuns++
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.resFlight[key] = ch
	s.mu.Unlock()

	r, err := s.run(name, mode)

	s.mu.Lock()
	s.cache[key] = r
	s.errs[key] = err
	delete(s.resFlight, key)
	s.mu.Unlock()
	close(ch)
	return r, err
}

// run performs one uncached simulation: fetch (or make) the workload's
// recording, then replay it through the pipeline under the given mode.
func (s *Suite) run(name string, mode fusion.Mode) (*Result, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	budget := s.budget(w)
	rec, err := s.recording(w, budget)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	r, runErr := RunSource(name, ooo.DefaultConfig(mode), rec.Replay(), budget)
	s.mu.Lock()
	s.metrics.Replays++
	s.metrics.PipelineRuns++
	s.metrics.SimTime += time.Since(start)
	s.mu.Unlock()
	return r, runErr
}

// Recording returns the workload's committed stream at the suite's
// budget, materializing it on first use (experiment drivers replay it for
// trace analyses without re-emulating).
func (s *Suite) Recording(name string) (*trace.Recording, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	return s.recording(w, s.budget(w))
}

// recording is the record-once half: per (workload, budget) key, the
// first caller emulates and everyone else waits for or reuses the buffer.
func (s *Suite) recording(w workloads.Workload, budget uint64) (*trace.Recording, error) {
	key := traceKey{w.Name, budget}
	s.mu.Lock()
	for {
		if e, ok := s.traces[key]; ok {
			s.metrics.TraceHits++
			s.mu.Unlock()
			return e.rec, e.err
		}
		ch, inflight := s.traceFlight[key]
		if !inflight {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.traceFlight[key] = ch
	s.metrics.TraceMisses++
	s.mu.Unlock()

	start := time.Now()
	rec, err := w.Record(budget)

	s.mu.Lock()
	s.traces[key] = &traceEntry{rec: rec, err: err}
	s.metrics.EmuTime += time.Since(start)
	delete(s.traceFlight, key)
	s.mu.Unlock()
	close(ch)
	return rec, err
}

// Prefetch runs every workload under each mode in parallel, filling the
// cache. Errors surface on the corresponding Get.
func (s *Suite) Prefetch(names []string, modes []fusion.Mode) {
	type job struct {
		name string
		mode fusion.Mode
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s.Get(j.name, j.mode) //nolint:errcheck // cached, surfaced later
			}
		}()
	}
	for _, n := range names {
		for _, m := range modes {
			jobs <- job{n, m}
		}
	}
	close(jobs)
	wg.Wait()
}
