// Package core is the library facade: it wires workloads, the functional
// emulator and the out-of-order pipeline together, runs the paper's six
// fusion configurations, and caches results for the experiment drivers.
//
// Typical use:
//
//	w, _ := workloads.ByName("crc32")
//	res, err := core.Run(w, fusion.ModeHelios, 0)
//	fmt.Println(res.Stats.IPC())
package core

import (
	"fmt"
	"runtime"
	"sync"

	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/workloads"
)

// Result is the outcome of simulating one workload under one fusion mode.
type Result struct {
	Workload string
	Mode     fusion.Mode
	Stats    ooo.Stats
}

// Run simulates workload w under the given fusion mode for maxInsts
// architectural instructions (0 = the workload's own budget).
func Run(w workloads.Workload, mode fusion.Mode, maxInsts uint64) (*Result, error) {
	cfg := ooo.DefaultConfig(mode)
	return RunConfig(w, cfg, maxInsts)
}

// RunConfig simulates with an explicit machine configuration.
func RunConfig(w workloads.Workload, cfg ooo.Config, maxInsts uint64) (*Result, error) {
	if maxInsts == 0 {
		maxInsts = w.MaxInsts
	}
	cfg.MaxUops = maxInsts
	stream, err := w.Stream(0) // the pipeline bounds commits itself
	if err != nil {
		return nil, err
	}
	p := ooo.New(cfg, stream)
	st, err := p.Run()
	if err != nil {
		return nil, fmt.Errorf("core: %s/%v: %w", w.Name, cfg.Mode, err)
	}
	return &Result{Workload: w.Name, Mode: cfg.Mode, Stats: *st}, nil
}

// Suite runs and caches simulations across workloads and modes, fanning
// out across CPUs. The zero value is not usable; use NewSuite.
type Suite struct {
	MaxInsts uint64 // per-run instruction budget (0 = workload default)

	mu    sync.Mutex
	cache map[suiteKey]*Result
	errs  map[suiteKey]error
}

type suiteKey struct {
	workload string
	mode     fusion.Mode
}

// NewSuite creates a result cache with the given per-run budget.
func NewSuite(maxInsts uint64) *Suite {
	return &Suite{
		MaxInsts: maxInsts,
		cache:    make(map[suiteKey]*Result),
		errs:     make(map[suiteKey]error),
	}
}

// Get returns the (cached) result for one workload/mode pair.
func (s *Suite) Get(name string, mode fusion.Mode) (*Result, error) {
	s.mu.Lock()
	if r, ok := s.cache[suiteKey{name, mode}]; ok {
		err := s.errs[suiteKey{name, mode}]
		s.mu.Unlock()
		return r, err
	}
	s.mu.Unlock()

	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	r, err := Run(w, mode, s.MaxInsts)
	s.mu.Lock()
	s.cache[suiteKey{name, mode}] = r
	s.errs[suiteKey{name, mode}] = err
	s.mu.Unlock()
	return r, err
}

// Prefetch runs every workload under each mode in parallel, filling the
// cache. Errors surface on the corresponding Get.
func (s *Suite) Prefetch(names []string, modes []fusion.Mode) {
	type job struct {
		name string
		mode fusion.Mode
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s.Get(j.name, j.mode) //nolint:errcheck // cached, surfaced later
			}
		}()
	}
	for _, n := range names {
		for _, m := range modes {
			jobs <- job{n, m}
		}
	}
	close(jobs)
	wg.Wait()
}
