package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"helios/internal/fusion"
	"helios/internal/telemetry"
)

// Cell is one workload×mode unit of suite work: the granularity at which
// the scheduler fans the replay phase out across workers. Budget is the
// per-cell instruction bound (0 = the suite's budget); heliosd's suite
// endpoint sets it so mixed-budget request matrices share one scheduler.
type Cell struct {
	Workload string
	Mode     fusion.Mode
	Budget   uint64
}

// CellWall is the observed wall time of one scheduled cell. With cells
// running concurrently the per-cell walls no longer sum to the elapsed
// time; WallRows reports both plus the implied speedup.
type CellWall struct {
	Workload string
	Mode     fusion.Mode
	Wall     time.Duration
}

// CellResult pairs a cell with its outcome. RunCells returns results
// indexed exactly like its input — position i is always cells[i] — so
// callers assemble tables without any completion-order dependence.
type CellResult struct {
	Cell   Cell
	Result *Result
	Err    error
	Wall   time.Duration
}

// RunCells is the suite scheduler: it fans the cells across a bounded
// worker pool and returns the results in input order.
//
// Determinism contract (DESIGN.md §13): work is issued in slice order
// from a shared atomic cursor (never by ranging over a map), each result
// is written to its own index, and the record phase stays singleflighted
// per workload inside Suite — the first cell to need a recording
// emulates, every other cell waits on the same in-flight entry. The
// cached Results and every deterministic Metrics counter are therefore
// identical to a serial run; only wall times differ.
//
// workers ≤ 0 selects GOMAXPROCS. Cancellation stops workers from
// starting new cells; a cancelled cell carries ctx's error.
func (s *Suite) RunCells(ctx context.Context, cells []Cell, workers int) []CellResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	out := make([]CellResult, len(cells))
	start := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it

	// When the caller's context carries a telemetry trace (heliosd suite
	// requests, `experiments -trace`), every cell opens a span on lane
	// 1+worker — the per-worker lanes render as a scheduler utilization
	// timeline in Perfetto. With no trace attached tr is nil and every
	// span call is a zero-allocation no-op, preserving the scheduler's
	// hot-path budget. Span wall times live outside the deterministic
	// Metrics surface (DESIGN.md §16's quarantine rule).
	tr := telemetry.FromContext(ctx)
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= len(cells) {
					return
				}
				c := cells[i]
				if err := ctx.Err(); err != nil {
					out[i] = CellResult{Cell: c, Err: err}
					continue
				}
				sp := tr.StartLane("cell", 1+worker)
				sp.SetAttr("workload", c.Workload)
				sp.SetAttr("mode", c.Mode.String())
				t0 := time.Now() //helios:nondeterminism-ok wall-time metrics only; simulated results never read it
				r, err := s.GetBudget(ctx, c.Workload, c.Mode, c.Budget)
				out[i] = CellResult{Cell: c, Result: r, Err: err, Wall: time.Since(t0)}
				sp.SetBool("err", err != nil)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Wall accounting happens after the barrier, in input order, so the
	// CellWalls slice has a deterministic order even though its values
	// are wall-clock measurements.
	s.mu.Lock()
	s.metrics.FanoutWall += elapsed
	for _, cr := range out {
		s.metrics.CellWalls = append(s.metrics.CellWalls,
			CellWall{Workload: cr.Cell.Workload, Mode: cr.Cell.Mode, Wall: cr.Wall})
	}
	s.mu.Unlock()
	return out
}

// PrefetchN fills the result cache for every name×mode cell using at
// most `workers` concurrent replays (≤ 0 = GOMAXPROCS). Errors are
// cached and surface on the corresponding Get, exactly as with a serial
// warm-up; `workers == 1` is the serial path.
func (s *Suite) PrefetchN(ctx context.Context, names []string, modes []fusion.Mode, workers int) {
	cells := make([]Cell, 0, len(names)*len(modes))
	for _, n := range names {
		for _, m := range modes {
			cells = append(cells, Cell{Workload: n, Mode: m})
		}
	}
	s.RunCells(ctx, cells, workers)
}
