package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/isa"
	"helios/internal/ooo"
	"helios/internal/trace"
)

// corruptRecording builds a recording whose record stream is valid until
// midway, then jumps the sequence numbers — the pipeline's stream
// validation rejects it as a corrupt trace.
func corruptRecording(name string, budget uint64) *trace.Recording {
	recs := make([]emu.Retired, 64)
	for i := range recs {
		recs[i] = emu.Retired{
			Seq:    uint64(i),
			PC:     0x1000 + uint64(i)*4,
			NextPC: 0x1000 + uint64(i)*4 + 4,
			Inst:   isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
		}
	}
	recs[32].Seq = 9999 // sequence discontinuity: silent record loss
	return trace.FromRecords(name, budget, recs)
}

// TestSuiteDegradesCorruptRecording seeds a corrupt recording and checks
// the graceful-degradation contract: every fusion mode still produces a
// result, at the cost of exactly one live re-emulation.
func TestSuiteDegradesCorruptRecording(t *testing.T) {
	const budget = 20_000
	s := NewSuite(budget)
	s.SeedRecording(corruptRecording("crc32", budget))

	ctx := context.Background()
	var committed []uint64
	for _, m := range fusion.Modes {
		r, err := s.Get(ctx, "crc32", m)
		if err != nil {
			t.Fatalf("%v: corrupt recording was not repaired: %v", m, err)
		}
		if r.Stats.CommittedInsts == 0 {
			t.Fatalf("%v: empty result after repair", m)
		}
		committed = append(committed, r.Stats.CommittedInsts)
	}
	for i, c := range committed {
		if c != committed[0] {
			t.Errorf("mode %v committed %d insts, want %d (fusion must not change architecture)",
				fusion.Modes[i], c, committed[0])
		}
	}
	if got := s.Metrics().LiveFallbacks; got != 1 {
		t.Errorf("LiveFallbacks = %d, want exactly 1 (repair once, reuse for all modes)", got)
	}
}

// TestRepairedRecordingFailureSurfaces checks the other half of the
// repair-once contract: if the recording marked as repaired still fails
// to replay, the failure is real and must surface, not loop.
func TestRepairedRecordingFailureSurfaces(t *testing.T) {
	const budget = 20_000
	s := NewSuite(budget)
	bad := corruptRecording("crc32", budget)
	s.traces[traceKey{"crc32", budget}] = &traceEntry{rec: bad, repaired: true}

	_, err := s.Get(context.Background(), "crc32", fusion.ModeNoFusion)
	if err == nil {
		t.Fatal("replay of a failing repaired recording reported success")
	}
	var se *ooo.SimError
	if !errors.As(err, &se) || se.Kind != ooo.FailCorrupt {
		t.Fatalf("err = %v, want a %s SimError", err, ooo.FailCorrupt)
	}
	if got := s.Metrics().LiveFallbacks; got != 0 {
		t.Errorf("LiveFallbacks = %d, want 0 (no second repair attempt)", got)
	}
}

// TestGetExpiredDeadline checks that a dead context aborts Get with the
// context's error and that the failure is not cached — a later call with
// a live context must succeed.
func TestGetExpiredDeadline(t *testing.T) {
	s := NewSuite(10_000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	_, err := s.Get(ctx, "crc32", fusion.ModeNoFusion)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if r, err := s.Get(context.Background(), "crc32", fusion.ModeNoFusion); err != nil || r == nil {
		t.Fatalf("deadline failure was cached: retry got (%v, %v)", r, err)
	}
}

// TestRunSourceCancelledMidRun runs the pipeline over an endless synthetic
// stream and cancels while it is running: the cycle loop must notice and
// return an error unwrapping to context.Canceled.
func TestRunSourceCancelledMidRun(t *testing.T) {
	var seq uint64
	endless := trace.Func(func() (emu.Retired, bool) {
		r := emu.Retired{
			Seq:    seq,
			PC:     0x1000,
			NextPC: 0x1000,
			Inst:   isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
		}
		seq++
		return r, true
	})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()

	_, err := RunSource(ctx, "endless", ooo.DefaultConfig(fusion.ModeNoFusion), endless, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *ooo.SimError
	if !errors.As(err, &se) || se.Kind != ooo.FailContext {
		t.Fatalf("err = %v, want a %s SimError", err, ooo.FailContext)
	}
	if se.Snapshot.ROB.Cap == 0 {
		t.Error("context failure has no pipeline snapshot")
	}
}
