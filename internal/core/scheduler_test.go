package core

import (
	"context"
	"reflect"
	"testing"

	"helios/internal/fusion"
)

// TestRunCellsIndexedAssembly pins the scheduler's determinism contract:
// results come back at the index of their input cell regardless of
// worker count or completion order, and the cached Results are the very
// same objects a serial suite would hand out.
func TestRunCellsIndexedAssembly(t *testing.T) {
	cells := []Cell{
		{Workload: "crc32", Mode: fusion.ModeNoFusion},
		{Workload: "crc32", Mode: fusion.ModeHelios},
		{Workload: "sha", Mode: fusion.ModeNoFusion},
		{Workload: "sha", Mode: fusion.ModeHelios},
	}

	par := NewSuite(15_000)
	got := par.RunCells(context.Background(), cells, 8)
	if len(got) != len(cells) {
		t.Fatalf("got %d results, want %d", len(got), len(cells))
	}
	ser := NewSuite(15_000)
	want := ser.RunCells(context.Background(), cells, 1)

	for i, cr := range got {
		if cr.Err != nil {
			t.Fatalf("cell %d: %v", i, cr.Err)
		}
		if cr.Cell != cells[i] {
			t.Errorf("result %d carries cell %+v, want %+v (index-keyed assembly broken)", i, cr.Cell, cells[i])
		}
		if cr.Result.Workload != cells[i].Workload || cr.Result.Mode != cells[i].Mode {
			t.Errorf("result %d is for %s/%v, want %s/%v",
				i, cr.Result.Workload, cr.Result.Mode, cells[i].Workload, cells[i].Mode)
		}
		if !reflect.DeepEqual(cr.Result.Stats, want[i].Result.Stats) {
			t.Errorf("cell %d: parallel stats differ from serial", i)
		}
		if cr.Wall <= 0 {
			t.Errorf("cell %d: wall time not recorded", i)
		}
	}

	// A later Get must hit the cache populated by the fan-out.
	r, err := par.Get(context.Background(), "crc32", fusion.ModeHelios)
	if err != nil {
		t.Fatal(err)
	}
	if r != got[1].Result {
		t.Error("Get after RunCells did not reuse the fanned-out result")
	}
}

// TestRunCellsDeterministicMetrics checks that the deterministic
// counters are a pure function of the work requested, independent of
// worker count: one trace miss per workload (the record phase stays
// singleflighted), every other recording access a hit, no deduped runs
// for distinct cells — so `-metrics` output is byte-identical between
// serial and parallel runs.
func TestRunCellsDeterministicMetrics(t *testing.T) {
	names := []string{"crc32", "sha"}
	modes := []fusion.Mode{fusion.ModeNoFusion, fusion.ModeCSFSBR, fusion.ModeHelios}
	for _, workers := range []int{1, 2, 16} {
		s := NewSuite(15_000)
		s.PrefetchN(context.Background(), names, modes, workers)
		m := s.Metrics()
		cells := uint64(len(names) * len(modes))
		if m.TraceMisses != uint64(len(names)) {
			t.Errorf("workers=%d: TraceMisses = %d, want %d (record phase must stay singleflighted)",
				workers, m.TraceMisses, len(names))
		}
		if m.TraceHits != cells-uint64(len(names)) {
			t.Errorf("workers=%d: TraceHits = %d, want %d", workers, m.TraceHits, cells-uint64(len(names)))
		}
		if m.Replays != cells || m.PipelineRuns != cells {
			t.Errorf("workers=%d: Replays/PipelineRuns = %d/%d, want %d", workers, m.Replays, m.PipelineRuns, cells)
		}
		if m.DedupedRuns != 0 {
			t.Errorf("workers=%d: DedupedRuns = %d, want 0 for distinct cells", workers, m.DedupedRuns)
		}
		if m.FanoutWall <= 0 || len(m.CellWalls) != int(cells) {
			t.Errorf("workers=%d: wall accounting missing (fanout=%v, cells=%d)", workers, m.FanoutWall, len(m.CellWalls))
		}
		for i, cw := range m.CellWalls {
			wantCell := Cell{Workload: names[i/len(modes)], Mode: modes[i%len(modes)]}
			if (Cell{Workload: cw.Workload, Mode: cw.Mode}) != wantCell {
				t.Errorf("workers=%d: CellWalls[%d] = %s/%v, want %s/%v (order must be input order)",
					workers, i, cw.Workload, cw.Mode, wantCell.Workload, wantCell.Mode)
			}
		}
	}
}

// TestRunCellsCancellation checks that a dead context stops the fan-out:
// cells that were not started carry the context error and nothing is
// cached for them.
func TestRunCellsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSuite(15_000)
	cells := []Cell{
		{Workload: "crc32", Mode: fusion.ModeNoFusion},
		{Workload: "sha", Mode: fusion.ModeHelios},
	}
	out := s.RunCells(ctx, cells, 2)
	for i, cr := range out {
		if cr.Err == nil {
			t.Errorf("cell %d: no error from a cancelled fan-out", i)
		}
		if cr.Cell != cells[i] {
			t.Errorf("cell %d: result slot carries %+v", i, cr.Cell)
		}
	}
	if m := s.Metrics(); m.PipelineRuns != 0 {
		t.Errorf("cancelled fan-out ran %d pipelines, want 0", m.PipelineRuns)
	}
}
