package core

import (
	"context"
	"strings"
	"testing"

	"helios/internal/fusion"
	"helios/internal/ooo"
)

// TestGetBudgetKeysResultsByBudget pins the cache-key contract: results
// are keyed by (workload, mode, budget, engine), so two budgets for the
// same workload/mode are distinct entries and a budget change can never
// be served from a stale result.
func TestGetBudgetKeysResultsByBudget(t *testing.T) {
	ctx := context.Background()
	s := NewSuite(0)

	small, err := s.GetBudget(ctx, "crc32", fusion.ModeNoFusion, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.GetBudget(ctx, "crc32", fusion.ModeNoFusion, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.CommittedInsts == large.Stats.CommittedInsts {
		t.Fatalf("budgets 2000 and 8000 committed the same instruction count (%d): stale result served",
			small.Stats.CommittedInsts)
	}
	again, err := s.GetBudget(ctx, "crc32", fusion.ModeNoFusion, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if again != small {
		t.Error("identical budget did not hit the cache")
	}

	snap := s.CacheSnapshot()
	want := []string{"crc32/NoFusion@2000", "crc32/NoFusion@8000"}
	for i, k := range want {
		if snap[i] != k {
			t.Errorf("CacheSnapshot[%d] = %q, want %q", i, snap[i], k)
		}
	}
}

// TestSuiteBudgetChangeNeverStale reproduces the pre-fix bug directly: a
// caller mutates Suite.MaxInsts between Gets. With budget folded into
// the key the second Get must re-simulate, not serve the old budget's
// result.
func TestSuiteBudgetChangeNeverStale(t *testing.T) {
	ctx := context.Background()
	s := NewSuite(2_000)
	first, err := s.Get(ctx, "crc32", fusion.ModeNoFusion)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxInsts = 8_000
	second, err := s.Get(ctx, "crc32", fusion.ModeNoFusion)
	if err != nil {
		t.Fatal(err)
	}
	if second == first || second.Stats.CommittedInsts == first.Stats.CommittedInsts {
		t.Fatalf("budget change served a stale result (committed %d both times)",
			first.Stats.CommittedInsts)
	}
}

// TestEngineVersionShape: the engine identity every cache key embeds
// must carry the semantic schema; the VCS suffix is build-dependent.
func TestEngineVersionShape(t *testing.T) {
	v := EngineVersion()
	if !strings.HasPrefix(v, "helios-engine/") {
		t.Fatalf("EngineVersion() = %q, want helios-engine/ prefix", v)
	}
	if v != EngineVersion() {
		t.Error("EngineVersion is not stable within a process")
	}
}

// TestReplayConfigDegradesCorruptRecording: the custom-config replay
// path (heliosd's non-default-machine requests) must share the
// graceful-degradation contract with Get — a corrupt cached recording
// costs one live re-emulation, not an error.
func TestReplayConfigDegradesCorruptRecording(t *testing.T) {
	const budget = 20_000
	s := NewSuite(budget)
	s.SeedRecording(corruptRecording("crc32", budget))

	cfg := ooo.DefaultConfig(fusion.ModeHelios)
	cfg.ROBSize = 64 // a non-default machine: bypasses the Get cache path
	r, err := s.ReplayConfig(context.Background(), "crc32", cfg, budget)
	if err != nil {
		t.Fatalf("ReplayConfig did not degrade a corrupt recording: %v", err)
	}
	if r.Stats.CommittedInsts == 0 {
		t.Fatal("empty result after repair")
	}
	if got := s.Metrics().LiveFallbacks; got != 1 {
		t.Errorf("LiveFallbacks = %d, want exactly 1", got)
	}
}
