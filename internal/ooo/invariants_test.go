package ooo

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/isa"
	"helios/internal/trace"
	"helios/internal/uop"
)

// emptyPipeline builds a pipeline over an empty stream, ready to have its
// internal state corrupted by the white-box invariant tests.
func emptyPipeline() *Pipeline {
	done := trace.Func(func() (emu.Retired, bool) { return emu.Retired{}, false })
	return New(DefaultConfig(fusion.ModeNoFusion), done)
}

// endlessADDI is an infinite well-formed synthetic stream: only a context
// or an injected fault can end a run over it.
func endlessADDI() trace.Source {
	var seq uint64
	return trace.Func(func() (emu.Retired, bool) {
		r := emu.Retired{
			Seq:    seq,
			PC:     0x1000,
			NextPC: 0x1000,
			Inst:   isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
		}
		seq++
		return r, true
	})
}

// TestCheckInvariantsCatchesCorruption plants each class of internal
// corruption directly in the pipeline state and checks that the sweep
// names the specific violated invariant.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *Pipeline)
		want    string
	}{
		{"rob-over-capacity", func(p *Pipeline) {
			p.rob.push(&pUop{seq: 1, st: stDispatched})
			p.cfg.ROBSize = 0
		}, "ROB occupancy"},
		{"reg-free-and-mapped", func(p *Pipeline) {
			p.freeList = append(p.freeList, p.rat[5])
		}, "is also on the free list"},
		{"free-list-duplicate", func(p *Pipeline) {
			p.freeList = append(p.freeList, p.freeList[0])
		}, "on the free list twice"},
		{"free-list-out-of-range", func(p *Pipeline) {
			p.freeList = append(p.freeList, int32(p.cfg.PhysRegs))
		}, "invalid register"},
		{"rat-out-of-range", func(p *Pipeline) {
			p.rat[3] = int32(p.cfg.PhysRegs)
		}, "out of range"},
		{"rob-out-of-order", func(p *Pipeline) {
			p.rob.push(&pUop{seq: 5, st: stDispatched})
			p.rob.push(&pUop{seq: 3, st: stDispatched})
		}, "ROB out of order"},
		{"rob-dead-uop", func(p *Pipeline) {
			p.rob.push(&pUop{seq: 1, st: stKilled})
		}, "dead µ-op"},
		{"dangling-fused-pair", func(p *Pipeline) {
			p.rob.push(&pUop{seq: 1, st: stDispatched, kind: uop.FuseLoadPair})
		}, "has no tail record"},
		{"bad-pend-srcs", func(p *Pipeline) {
			p.rob.push(&pUop{seq: 1, st: stDispatched, pendSrcs: 5, numSrc: 1})
		}, "pendSrcs"},
		{"iq-killed-uop", func(p *Pipeline) {
			p.iq = append(p.iq, &pUop{seq: 1, st: stKilled})
		}, "IQ holds killed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := emptyPipeline()
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("clean pipeline fails invariants: %v", err)
			}
			tc.corrupt(p)
			err := p.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunCheckedSurfacesInvariantViolation corrupts the free list and
// lets the periodic in-run sweep find it: the run must die with a
// FailInvariant SimError, not continue on broken state.
func TestRunCheckedSurfacesInvariantViolation(t *testing.T) {
	p := New(DefaultConfig(fusion.ModeNoFusion), endlessADDI())
	p.freeList = append(p.freeList, p.freeList[0])
	_, err := p.RunChecked(1)
	var se *SimError
	if !errors.As(err, &se) || se.Kind != FailInvariant {
		t.Fatalf("err = %v, want a %s SimError", err, FailInvariant)
	}
	if se.Snapshot.Invariants == "ok" {
		t.Error("snapshot claims invariants hold at an invariant failure")
	}
}

// TestWatchdogFiresOnLivelock forces a flush every cycle via the chaos
// hook: the machine can never commit, and the watchdog must convert the
// livelock into a structured failure instead of spinning forever.
func TestWatchdogFiresOnLivelock(t *testing.T) {
	cfg := DefaultConfig(fusion.ModeNoFusion)
	cfg.ChaosFlushInterval = 1 // flush storm every cycle: no forward progress
	cfg.ChaosSeed = 7
	p := New(cfg, endlessADDI())
	_, err := p.Run()
	var se *SimError
	if !errors.As(err, &se) || se.Kind != FailWatchdog {
		t.Fatalf("err = %v, want a %s SimError", err, FailWatchdog)
	}
	if se.Snapshot.Cycle == 0 {
		t.Error("watchdog snapshot missing cycle count")
	}
}

// TestPanicRecoveredAsSimError breaks the pipeline so a stage panics and
// checks the contract: Run returns a FailPanic SimError with the panic
// value and stack attached — it never lets the panic escape.
func TestPanicRecoveredAsSimError(t *testing.T) {
	p := New(DefaultConfig(fusion.ModeNoFusion), endlessADDI())
	p.waiters = nil // rename will index this and panic
	_, err := p.Run()
	var se *SimError
	if !errors.As(err, &se) || se.Kind != FailPanic {
		t.Fatalf("err = %v, want a %s SimError", err, FailPanic)
	}
	if se.PanicValue == "" || se.Stack == "" {
		t.Errorf("panic failure missing value/stack: %+v", se)
	}
}

// TestCorruptStreamDetected feeds hostile records and checks the stream
// trust boundary: validation must latch a FailCorrupt SimError instead of
// letting bad fields index the pipeline's tables.
func TestCorruptStreamDetected(t *testing.T) {
	cases := []struct {
		name string
		mut  func(r *emu.Retired, i uint64)
		want string
	}{
		{"seq-jump", func(r *emu.Retired, i uint64) {
			if i == 40 {
				r.Seq += 1000
			}
		}, "out of sequence"},
		{"bad-rd", func(r *emu.Retired, i uint64) {
			if i == 40 {
				r.Inst.Rd = 77
			}
		}, "register out of range"},
		{"bad-opcode", func(r *emu.Retired, i uint64) {
			if i == 40 {
				r.Inst.Op = isa.Opcode(isa.NumOpcodes + 3)
			}
		}, "opcode"},
		{"bad-memsize", func(r *emu.Retired, i uint64) {
			if i == 40 {
				r.MemSize = 33
			}
		}, "access size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seq uint64
			src := trace.Func(func() (emu.Retired, bool) {
				r := emu.Retired{
					Seq:    seq,
					PC:     0x1000,
					NextPC: 0x1000,
					Inst:   isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
				}
				tc.mut(&r, seq)
				seq++
				return r, true
			})
			p := New(DefaultConfig(fusion.ModeHelios), src)
			_, err := p.Run()
			var se *SimError
			if !errors.As(err, &se) || se.Kind != FailCorrupt {
				t.Fatalf("err = %v, want a %s SimError", err, FailCorrupt)
			}
			if !strings.Contains(se.Cause, tc.want) {
				t.Errorf("cause %q does not mention %q", se.Cause, tc.want)
			}
		})
	}
}

// TestRunContextDeadline runs over an endless stream with a deadline: the
// cycle loop must stop within one check interval and the error must
// unwrap to context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	p := New(DefaultConfig(fusion.ModeNoFusion), endlessADDI())
	_, err := p.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var se *SimError
	if !errors.As(err, &se) || se.Kind != FailContext {
		t.Fatalf("err = %v, want a %s SimError", err, FailContext)
	}
}

// TestSimErrorJSON checks the crash dump is valid JSON carrying the
// machine state a bug report needs.
func TestSimErrorJSON(t *testing.T) {
	p := New(DefaultConfig(fusion.ModeHelios), endlessADDI())
	p.waiters = nil
	_, err := p.Run()
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a SimError", err)
	}
	var dump struct {
		Kind     string `json:"kind"`
		Snapshot struct {
			Mode string `json:"mode"`
			ROB  struct {
				Cap int `json:"cap"`
			} `json:"rob"`
			Invariants string `json:"invariants"`
		} `json:"snapshot"`
	}
	if jerr := json.Unmarshal(se.JSON(), &dump); jerr != nil {
		t.Fatalf("crash dump is not valid JSON: %v", jerr)
	}
	if dump.Kind != string(FailPanic) || dump.Snapshot.Mode == "" ||
		dump.Snapshot.ROB.Cap == 0 || dump.Snapshot.Invariants == "" {
		t.Errorf("crash dump missing fields: %s", se.JSON())
	}
}

// TestChaosFlushStormPreservesArchitecture is the in-package half of the
// chaos contract: with periodic forced flushes from random ROB entries,
// every fusion mode must still commit exactly the functional instruction
// count.
func TestChaosFlushStormPreservesArchitecture(t *testing.T) {
	prog := loopSum
	want := runMode(t, prog, fusion.ModeNoFusion, 0).CommittedInsts
	for _, mode := range fusion.Modes {
		for _, interval := range []uint64{257, 1021} {
			cfg := DefaultConfig(mode)
			cfg.ChaosFlushInterval = interval
			cfg.ChaosSeed = int64(interval) * 31
			p := New(cfg, streamFor(t, prog, 0))
			st, err := p.RunChecked(128)
			if err != nil {
				t.Fatalf("%v/interval=%d: %v", mode, interval, err)
			}
			if st.CommittedInsts != want {
				t.Errorf("%v/interval=%d committed %d, want %d",
					mode, interval, st.CommittedInsts, want)
			}
			if st.ChaosFlushes == 0 {
				t.Errorf("%v/interval=%d: no chaos flushes injected", mode, interval)
			}
		}
	}
}
