// Package ooo implements the cycle-level out-of-order core model: an
// Icelake-like seven-stage pipeline (Fetch, Decode, Allocation Queue,
// Rename, Dispatch, Issue/Execute, Commit) with a reorder buffer,
// unified scheduler, load/store queues with store-to-load forwarding,
// TSO store buffer, TAGE branch prediction, store-set memory dependence
// prediction, and the fusion machinery of the paper: decode-time
// consecutive fusion, the Helios UCH+FP predictive non-consecutive
// fusion, and OracleFusion.
//
// The model is execution-driven: the functional emulator (internal/emu)
// supplies the committed-path dynamic instruction stream with effective
// addresses and branch outcomes, as Spike does for the paper's in-house
// simulator. Branch mispredictions are modelled by stalling fetch until
// the branch resolves plus a redirect penalty; fusion mispredictions and
// memory-order violations flush the pipeline from the offending µ-op.
package ooo

import (
	"helios/internal/cache"
	"helios/internal/fusion"
	"helios/internal/helios"
	"helios/internal/obs"
)

// Config describes the simulated machine.
type Config struct {
	// Widths (µ-ops per cycle).
	FetchWidth    int
	DecodeWidth   int
	RenameWidth   int
	DispatchWidth int
	CommitWidth   int

	// Structure capacities.
	AQSize   int
	ROBSize  int
	IQSize   int
	LQSize   int
	SQSize   int
	PhysRegs int

	// Issue ports.
	ALUPorts   int // one also executes branches, one mul/div
	LoadPorts  int
	StorePorts int

	// Latencies (cycles).
	ALULatency      int
	MulLatency      int
	DivLatency      int
	RedirectPenalty int // fetch resume delay after a resolved mispredict

	// Store buffer drains per cycle (TSO, post-commit).
	StoreDrainPerCycle int

	// Front-end predictor geometry (zero values = the paper's design).
	TAGELogSize uint // log2 entries per tagged TAGE table
	BTBSets     int
	BTBWays     int
	RASSize     int

	// Store-set memory-dependence predictor geometry.
	StoreSetLogSize uint // log2 SSIT entries
	StoreSetLogSets uint // log2 LFST entries

	// Fusion configuration.
	Mode        fusion.Mode
	PairCfg     fusion.PairConfig
	MaxNCSFNest int // concurrent pending NCSF'd µ-ops (paper: 2)

	// Helios predictor tuning (zero values = the paper's design).
	FP             helios.FPConfig
	UCHLoadEntries int // load-side UCH capacity (paper: 6)

	// Memory hierarchy.
	Cache cache.Config

	// Stream bound: stop after this many committed µ-ops (0 = run to
	// stream end).
	MaxUops uint64

	// Chaos fault-injection hooks (zero = disabled; driven by
	// internal/chaos). ChaosFlushInterval forces a pipeline flush from a
	// randomly chosen live µ-op every that many cycles; ChaosSeed makes
	// the choice deterministic.
	ChaosFlushInterval uint64
	ChaosSeed          int64

	// Obs attaches the observability layer (nil = disabled; the hook
	// sites reduce to a nil check on this concrete pointer). Excluded
	// from JSON: run manifests serialize Config, and an observer is a
	// per-run wiring detail, not machine configuration.
	Obs *obs.Observer `json:"-"`
}

// DefaultConfig returns the Table II machine: 8-wide fetch/decode feeding
// a 140-entry allocation queue, 5-wide rename/dispatch, 8-wide commit,
// 352-entry ROB, 160-entry scheduler, 128/72-entry LQ/SQ, 280 physical
// registers, 4+2+2 issue ports and a 15-cycle redirect penalty.
func DefaultConfig(mode fusion.Mode) Config {
	return Config{
		FetchWidth:    8,
		DecodeWidth:   8,
		RenameWidth:   5,
		DispatchWidth: 5,
		CommitWidth:   8,

		AQSize:   140,
		ROBSize:  352,
		IQSize:   160,
		LQSize:   128,
		SQSize:   72,
		PhysRegs: 384, // ROB + architectural state: rename is backed by the ROB

		ALUPorts:   4,
		LoadPorts:  2,
		StorePorts: 2,

		ALULatency:      1,
		MulLatency:      3,
		DivLatency:      20,
		RedirectPenalty: 15,

		StoreDrainPerCycle: 1, // one store retires to L1D per cycle

		TAGELogSize: 11,
		BTBSets:     1024,
		BTBWays:     4,
		RASSize:     64,

		StoreSetLogSize: 12,
		StoreSetLogSets: 7,

		Mode:        mode,
		PairCfg:     fusion.DefaultPairConfig(),
		MaxNCSFNest: 2,

		Cache: cache.DefaultConfig(),
	}
}

// validate fills defaults for zero fields so tests can use sparse configs.
func (c *Config) validate() {
	def := DefaultConfig(c.Mode)
	if c.FetchWidth == 0 {
		c.FetchWidth = def.FetchWidth
	}
	if c.DecodeWidth == 0 {
		c.DecodeWidth = def.DecodeWidth
	}
	if c.RenameWidth == 0 {
		c.RenameWidth = def.RenameWidth
	}
	if c.DispatchWidth == 0 {
		c.DispatchWidth = def.DispatchWidth
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = def.CommitWidth
	}
	if c.AQSize == 0 {
		c.AQSize = def.AQSize
	}
	if c.ROBSize == 0 {
		c.ROBSize = def.ROBSize
	}
	if c.IQSize == 0 {
		c.IQSize = def.IQSize
	}
	if c.LQSize == 0 {
		c.LQSize = def.LQSize
	}
	if c.SQSize == 0 {
		c.SQSize = def.SQSize
	}
	if c.PhysRegs == 0 {
		c.PhysRegs = def.PhysRegs
	}
	if c.ALUPorts == 0 {
		c.ALUPorts = def.ALUPorts
	}
	if c.LoadPorts == 0 {
		c.LoadPorts = def.LoadPorts
	}
	if c.StorePorts == 0 {
		c.StorePorts = def.StorePorts
	}
	if c.ALULatency == 0 {
		c.ALULatency = def.ALULatency
	}
	if c.MulLatency == 0 {
		c.MulLatency = def.MulLatency
	}
	if c.DivLatency == 0 {
		c.DivLatency = def.DivLatency
	}
	if c.RedirectPenalty == 0 {
		c.RedirectPenalty = def.RedirectPenalty
	}
	if c.StoreDrainPerCycle == 0 {
		c.StoreDrainPerCycle = def.StoreDrainPerCycle
	}
	if c.MaxNCSFNest == 0 {
		c.MaxNCSFNest = def.MaxNCSFNest
	}
	if c.TAGELogSize == 0 {
		c.TAGELogSize = def.TAGELogSize
	}
	if c.BTBSets == 0 {
		c.BTBSets = def.BTBSets
	}
	if c.BTBWays == 0 {
		c.BTBWays = def.BTBWays
	}
	if c.RASSize == 0 {
		c.RASSize = def.RASSize
	}
	if c.StoreSetLogSize == 0 {
		c.StoreSetLogSize = def.StoreSetLogSize
	}
	if c.StoreSetLogSets == 0 {
		c.StoreSetLogSets = def.StoreSetLogSets
	}
	if c.PairCfg.LineSize == 0 {
		c.PairCfg = def.PairCfg
	}
	if c.Cache.LineSize == 0 {
		c.Cache = def.Cache
	}
}
