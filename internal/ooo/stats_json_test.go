package ooo

import (
	"encoding/json"
	"reflect"
	"testing"
)

// fillStats sets every exported field of Stats to a distinct nonzero
// value via reflection, so a field dropped anywhere in a dump/reimport
// cycle cannot hide behind a zero.
func fillStats(t *testing.T) *Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	next := uint64(1)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !v.Type().Field(i).IsExported() {
			continue
		}
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(next)
			next++
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(next)
				next++
			}
		case reflect.Struct:
			// Embedded aggregates (stats.Histogram): fill their scalar and
			// array subfields the same way.
			for j := 0; j < f.NumField(); j++ {
				sub := f.Field(j)
				switch sub.Kind() {
				case reflect.Uint64:
					sub.SetUint(next)
					next++
				case reflect.Array:
					for k := 0; k < sub.Len(); k++ {
						sub.Index(k).SetUint(next)
						next++
					}
				default:
					t.Fatalf("Stats.%s.%s has unhandled kind %v: extend fillStats",
						v.Type().Field(i).Name, f.Type().Field(j).Name, sub.Kind())
				}
			}
		default:
			t.Fatalf("Stats.%s has unhandled kind %v: extend fillStats and the dump surface",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return &s
}

// TestStatsJSONRoundTrip is the runtime twin of the statscomplete
// analyzer: every exported Stats field must survive a JSON dump and
// reimport bit-for-bit, and must appear as a key in the marshaled
// object.
func TestStatsJSONRoundTrip(t *testing.T) {
	s := fillStats(t)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Errorf("Stats did not survive the JSON round trip:\n  out: %+v\n  in:  %+v", *s, back)
	}

	var keys map[string]json.RawMessage
	if err := json.Unmarshal(b, &keys); err != nil {
		t.Fatalf("unmarshal keys: %v", err)
	}
	typ := reflect.TypeOf(*s)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		if _, ok := keys[f.Name]; !ok {
			t.Errorf("Stats.%s missing from the JSON dump", f.Name)
		}
	}
}

// TestStatsRowsComplete asserts the Rows enumeration has exactly one
// row per counter slot (scalars count 1, arrays their length) and no
// duplicate names — the runtime check behind the static analyzer's
// field-reference audit.
func TestStatsRowsComplete(t *testing.T) {
	s := fillStats(t)
	rows := s.Rows()

	wantSlots := 0
	typ := reflect.TypeOf(*s)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		switch f.Type.Kind() {
		case reflect.Array:
			wantSlots += f.Type.Len()
		case reflect.Struct:
			switch f.Type.Name() {
			case "Histogram":
				// Histograms summarize as five rows: count, mean, p50/95/99.
				wantSlots += 5
			default:
				// Aggregate counter structs (TopDown) report one raw row
				// per field.
				wantSlots += f.Type.NumField()
			}
		default:
			wantSlots++
		}
	}
	if len(rows) != wantSlots {
		t.Errorf("Rows() has %d entries, want %d (one per counter slot)", len(rows), wantSlots)
	}

	seen := make(map[string]bool, len(rows))
	zero := 0
	for _, r := range rows {
		if seen[r[0]] {
			t.Errorf("duplicate row %q", r[0])
		}
		seen[r[0]] = true
		if r[1] == "0" {
			zero++
		}
	}
	// Every slot was filled nonzero, so any "0" value means a row reads
	// a field the filler never set (i.e. a stale or misnamed row).
	if zero != 0 {
		t.Errorf("%d rows read zero from a fully filled Stats", zero)
	}
}
