package ooo

import (
	"helios/internal/isa"
	"helios/internal/uop"
)

// issueStage selects ready µ-ops oldest-first and sends them to the
// execution ports: ALUPorts for ALU/branch/mul/div, LoadPorts for loads
// (a fused load pair occupies a single port), StorePorts for stores.
//
//helios:hotpath issue-side per-cycle loop; must stay allocation-free (DESIGN.md §13)
func (p *Pipeline) issueStage() {
	p.resolveStoreAddresses()
	alu, ld, st := p.cfg.ALUPorts, p.cfg.LoadPorts, p.cfg.StorePorts
	// Iterate over a snapshot: issuing a µ-op can trigger a flush (fusion
	// misprediction) that rewrites the IQ underneath us.
	//helios:hotalloc-ok scratch snapshot reused every cycle; capacity reaches the IQ size once, then stays
	p.iqScratch = append(p.iqScratch[:0], p.iq...)
	for _, u := range p.iqScratch {
		if alu == 0 && ld == 0 && st == 0 {
			break
		}
		// The cheap not-ready rejects are inlined ahead of the canIssue
		// call: most IQ entries fail one of these two on any given cycle,
		// and both fields are re-read live (a flush or unfuse earlier in
		// this same scan can change them).
		if u.st != stDispatched || u.pendSrcs > 0 || !p.canIssue(u) {
			continue
		}
		var port *int
		switch {
		case u.isLoad():
			port = &ld
		case u.isStore():
			port = &st
		default:
			port = &alu
		}
		if *port == 0 {
			continue
		}
		*port--
		p.issue(u)
	}
	// Compact: keep only µ-ops still waiting to issue.
	n := 0
	for _, u := range p.iq {
		if u.st == stDispatched {
			p.iq[n] = u
			n++
		}
	}
	p.iq = p.iq[:n]
}

// resolveStoreAddresses models the separate store-address (STA) pipeline:
// a store's address becomes visible to memory disambiguation as soon as
// its base register is ready, independent of the store data. Violations
// are detected and the store-set LFST entry cleared at that point.
func (p *Pipeline) resolveStoreAddresses() {
	for _, s := range p.sq {
		if s.addrKnown || s.st != stDispatched {
			continue
		}
		if !p.storeAddrReady(s) {
			continue
		}
		lo, span := p.combinedRange(s)
		s.memLo, s.memSpan = lo, span
		s.addrKnown = true
		p.storeSets.CompleteStore(s.r.PC, s.seq)
		p.checkViolations(s)
	}
}

// storeAddrReady reports whether the store's base register value is
// available (pending fused pairs wait for validation first).
func (p *Pipeline) storeAddrReady(s *pUop) bool {
	if s.isNCSF && !s.validated && !s.unfused {
		return false
	}
	if s.r.Inst.Rs1 == isa.Zero {
		return true
	}
	base := s.srcPhys[0]
	return base >= 0 && p.regReady[base]
}

// canIssue applies the scheduler wake-up conditions.
func (p *Pipeline) canIssue(u *pUop) bool {
	if u.st != stDispatched {
		return false
	}
	if u.pendSrcs > 0 {
		return false
	}
	if u.isNCSF && !u.validated && !u.unfused {
		return false // NCS Ready bit not set (Section IV-B2)
	}
	if u.r.Inst.Op.IsSerializing() && p.rob.front() != u {
		return false // fences/ecalls execute at ROB head only
	}
	if u.isLoad() && !p.loadMayIssue(u) {
		return false
	}
	return true
}

// loadMayIssue applies memory disambiguation: store-set predicted
// dependences and store-to-load conflicts with older stores. Each
// architectural access of a fused load pair is disambiguated against the
// stores older than *its own* position: the tail access must respect
// catalyst stores even though the fused µ-op sits at the head's position.
func (p *Pipeline) loadMayIssue(u *pUop) bool {
	lacc, ln := p.accesses(u)
	u.forwarded = false
	u.slowForward = false
	// Youngest architectural position of this load: stores at or past it
	// are skipped before their accesses are even decomposed (every inner
	// comparison below would reject them anyway).
	maxSeq := lacc[ln-1].seq
	if lacc[0].seq > maxSeq {
		maxSeq = lacc[0].seq
	}
	for _, s := range p.sq {
		if s.seq >= maxSeq || s.drainedGone() || s.st == stKilled {
			continue
		}
		sacc, sn := p.accesses(s)
		for li := 0; li < ln; li++ {
			la := lacc[li]
			if s.seq >= la.seq {
				continue // the whole store is younger than this access
			}
			if !s.addrKnown {
				// Unknown address: speculate unless the store-set
				// predictor named this store. Fused pairs are additionally
				// conservative about their *tail* access: it executes at
				// the head's position, so racing an unresolved catalyst
				// store would turn every such pair into a memory-order
				// violation; the hardware waits for the address instead.
				if u.waitStore && s.seq == u.waitStoreSeq {
					return false
				}
				if li > 0 && s.seq > u.seq {
					// Catalyst store with an unresolved address: wait, the
					// tail access would otherwise race it.
					return false
				}
				continue
			}
			for si := 0; si < sn; si++ {
				sa := sacc[si]
				if sa.seq >= la.seq {
					continue // e.g. a store-pair tail younger than the load
				}
				if !rangesOverlap(sa.lo, sa.span, la.lo, la.span) {
					continue
				}
				if s.seq > u.seq {
					// A catalyst store overlaps the tail access: fusing
					// violated sequential semantics. Repair like case 7:
					// unfuse in place and flush from the tail nucleus.
					p.catalystConflict(u)
					return false
				}
				if s.st != stCompleted {
					return false // forwarding needs the store data
				}
				if sa.lo <= la.lo && sa.lo+sa.span >= la.lo+la.span {
					// Fully covered: store-to-load forwarding.
					u.forwarded = true
					continue
				}
				// Partial overlap: the load replays and merges
				// store-buffer bytes with cache data, at a penalty.
				u.slowForward = true
			}
		}
	}
	return true
}

// drainedGone reports whether the store has fully left the store buffer.
func (u *pUop) drainedGone() bool { return u.drained }

func rangesOverlap(lo1, span1, lo2, span2 uint64) bool {
	return lo1 < lo2+span2 && lo2 < lo1+span1
}

// combinedRange returns the byte range the µ-op accesses (both nucleii
// for a fused pair).
func (p *Pipeline) combinedRange(u *pUop) (lo, span uint64) {
	ea1, sz1, ea2, sz2, pair := u.memRecords()
	if !pair {
		return ea1, uint64(sz1)
	}
	return uop.CombinedRange(ea1, sz1, ea2, sz2)
}

// access is one architectural memory access carried by a µ-op; fused pairs
// carry two with distinct sequence numbers, which is what the paper's
// LQ/SQ entries encode with the second-access offset/size fields.
type access struct {
	lo   uint64
	span uint64
	seq  uint64
}

// accesses decomposes the µ-op into its architectural accesses.
func (p *Pipeline) accesses(u *pUop) (out [2]access, n int) {
	ea1, sz1, ea2, sz2, pair := u.memRecords()

	out[0] = access{lo: ea1, span: uint64(sz1), seq: u.seq}
	n = 1
	if u.kind == uop.FuseIdiom && u.tailR != nil {
		out[0].seq = u.tailR.Seq // the memory op is the idiom's tail
	}
	if pair {
		out[1] = access{lo: ea2, span: uint64(sz2), seq: u.tailR.Seq}
		n = 2
	}
	return out, n
}

// issue sends the µ-op to execution, computing its completion time.
func (p *Pipeline) issue(u *pUop) {
	// Region check for predictively fused pairs (repair case 5): the two
	// accesses span more than a cache-line-sized region, which the
	// hardware only discovers once both addresses are computed.
	if u.kind.IsMemory() && !u.unfused && u.isNCSF && !u.pairCat.Fuseable() {
		p.handleFusionMispredict(u)
		// Fall through: the head issues as a single access below.
	}

	lat := p.cfg.ALULatency
	switch {
	case u.isLoad():
		lo, span := p.combinedRange(u)
		u.memLo, u.memSpan = lo, span
		u.addrKnown = true
		switch {
		case u.slowForward:
			// Replay: merge store-buffer bytes with the cache line.
			lat = p.mem.DataLatency(lo, span, p.cycle)
			u.memLevel = p.classifyMemLevel(lat) // before the merge penalty
			lat += 4
			p.st.STLForwards++
		case u.forwarded:
			lat = p.cfg.Cache.L1D.Latency // forwarded from the store buffer
			u.memLevel = memL1D
			p.st.STLForwards++
		default:
			lat = p.mem.DataLatency(lo, span, p.cycle)
			u.memLevel = p.classifyMemLevel(lat)
		}
		if u.kind.IsMemory() && !u.unfused && uop.CrossesLine(lo, span, p.cfg.PairCfg.LineSize) {
			p.st.LineCrossingPairs++
		}
	case u.isStore():
		lo, span := p.combinedRange(u)
		u.memLo, u.memSpan = lo, span
		u.addrKnown = true
		lat = 1 // address generation; the cache access happens at drain
	default:
		switch u.r.Inst.Op.Class() {
		case isa.ClassMul:
			lat = p.cfg.MulLatency
		case isa.ClassDiv:
			lat = p.cfg.DivLatency
		}
	}
	u.st = stIssued
	u.issuedAt = p.cycle
	u.completeAt = p.cycle + uint64(lat)
	p.events.schedule(u, u.completeAt, p.cycle)
}

// writebackStage completes µ-ops whose execution latency elapsed: results
// become visible, dependents wake up, mispredicted branches redirect the
// frontend, and stores search for memory-order violations.
//
//helios:hotpath writeback per-cycle loop; must stay allocation-free (DESIGN.md §13)
func (p *Pipeline) writebackStage() {
	evs := p.events.drain(p.cycle)
	for _, e := range evs {
		u := e.u
		if u.gen != e.gen {
			continue // flushed, released and recycled while in flight
		}
		if u.st != stIssued {
			continue // killed by a flush while in flight
		}
		u.st = stCompleted

		for i := 0; i < int(u.numDst); i++ {
			preg := u.dstPhys[i]
			if preg < 0 {
				continue
			}
			p.wakeup(preg)
		}

		if u.mispredicted && p.fetchStalled && p.fetchHeldBy == u.seq {
			p.fetchResumeAt = p.cycle + uint64(p.cfg.RedirectPenalty)
			p.st.MispredictResolveLat += p.cycle - u.decodedAt
			p.st.MispredictAQLat += u.renamedAt - u.decodedAt
			p.st.MispredictIssueLat += u.issuedAt - u.renamedAt
		}

		// Store violations and LFST release happen when the address
		// resolves (resolveStoreAddresses), which may precede execution.
	}
}

// wakeup marks a physical register ready and notifies waiting µ-ops.
func (p *Pipeline) wakeup(preg int32) {
	p.regReady[preg] = true
	ws := p.waiters[preg]
	p.waiters[preg] = ws[:0]
	for _, w := range ws {
		if w.gen != w.u.gen {
			continue // the waiter was released and recycled
		}
		if w.u.st == stKilled || w.u.st == stCommitted {
			continue
		}
		if w.slot >= len(w.u.srcPhys) || w.u.srcPhys[w.slot] != preg {
			continue // the slot was retracted (NCSF unfuse)
		}
		if w.u.pendSrcs > 0 {
			w.u.pendSrcs--
		}
	}
}

// checkViolations looks for younger loads that already executed and
// overlap the just-resolved store: a memory-order violation in TSO. Each
// architectural access is compared at its own position: the tail of a
// fused load pair is younger than its catalyst, so a catalyst store must
// fault it even though the pair's LQ entry sits at the head's position.
func (p *Pipeline) checkViolations(st *pUop) {
	sacc, sn := p.accesses(st)
	var offender *pUop
	for _, l := range p.lq {
		if !l.addrKnown || l.st == stKilled || l.st == stDispatched {
			continue
		}
		if l.forwarded {
			continue // served by an older (or this) store's exact data
		}
		lacc, ln := p.accesses(l)
		for li := 0; li < ln; li++ {
			la := lacc[li]
			for si := 0; si < sn; si++ {
				sa := sacc[si]
				if la.seq <= sa.seq {
					continue // the load access is older: no violation
				}
				if rangesOverlap(sa.lo, sa.span, la.lo, la.span) {
					if offender == nil || l.seq < offender.seq {
						offender = l
					}
				}
			}
		}
	}
	if offender == nil {
		return
	}
	p.st.StoreSetViolations++
	p.storeSets.Violation(offender.r.PC, st.r.PC)
	// Flush from the violating load and refetch (if the load is a fused
	// µ-op the whole pair re-executes).
	p.flushFrom(offender.seq)
}

// catalystConflict repairs a fused load pair whose tail access overlaps a
// store inside the catalyst (a memory-dependence misprediction within the
// fused group, repair case 7): the pair is unfused in place and the
// pipeline flushes from the tail nucleus, which re-executes after the
// store as an ordinary load.
func (p *Pipeline) catalystConflict(u *pUop) {
	if u.tailR == nil || u.unfused {
		return
	}
	p.st.StoreSetViolations++
	if u.usedPred && p.fp != nil {
		p.fp.Mispredict(u.tailR.PC, u.predGhr, u.pred)
		p.st.FusionMispredicts++
	}
	tailSeq := u.tailR.Seq
	p.unfuseInPlace(u)
	p.flushFrom(tailSeq)
}

// handleFusionMispredict implements repair case 5: the fused pair spans
// more than a cache-line-sized region. The head is unfused in place, the
// pipeline flushes from the tail nucleus's position (it must be
// re-fetched as an ordinary µ-op), and the FP entry's confidence resets.
func (p *Pipeline) handleFusionMispredict(u *pUop) {
	p.st.FusionMispredicts++
	if u.usedPred && p.fp != nil {
		p.fp.Mispredict(u.tailR.PC, u.predGhr, u.pred)
	}
	tailSeq := u.tailR.Seq
	p.unfuseInPlace(u)
	p.flushFrom(tailSeq)
}

// drainStores retires committed stores from the store buffer to the
// cache, in order (TSO). A store that hits in the L1 releases the drain
// port after one cycle; a write miss allocates the line and blocks the
// port until the fill returns (write-allocate), which is what makes
// store-streaming code SQ-bound (the paper's 657.xz case). SQ entries are
// only reclaimed when the drain completes.
//
//helios:hotpath store-drain per-cycle loop; must stay allocation-free (DESIGN.md §13)
func (p *Pipeline) drainStores() {
	started := 0
	n := 0
	for i, s := range p.sq {
		if s.st == stKilled {
			continue // dropped by a flush
		}
		keep := true
		switch {
		case s.drained:
			keep = false
		case s.draining:
			if p.cycle >= s.drainDoneAt {
				s.drained = true
				keep = false
			}
			// Drain completion is a store's last pipeline reference: the
			// ROB entry committed long ago, so the µ-op is recycled here.
		case s.committedSt && started < p.cfg.StoreDrainPerCycle && p.cycle >= p.drainPortFree:
			lat := p.mem.DataLatency(s.memLo, s.memSpan, p.cycle)
			s.memLevel = p.classifyMemLevel(lat)
			done := p.cycle + uint64(lat)
			if done <= p.lastDrainDone {
				done = p.lastDrainDone + 1 // TSO: drains complete in order
			}
			s.draining = true
			s.drainDoneAt = done
			p.lastDrainDone = done
			if lat <= p.cfg.Cache.L1D.Latency {
				p.drainPortFree = p.cycle + 1
			} else {
				p.drainPortFree = done // write miss blocks the port
			}
			started++
		default:
			// Older non-committed store: nothing younger may drain, and
			// (TSO: drains start in order) nothing younger can be draining
			// or drained either. If the scan has removed nothing so far
			// the queue is unchanged from here on — stop early.
			if n == i {
				return
			}
			started = p.cfg.StoreDrainPerCycle
		}
		if keep {
			p.sq[n] = s
			n++
		} else if s.st == stCommitted {
			// Only fully-committed stores are recycled; a store dropped
			// for any other reason is still owned by the flush path.
			p.arena.release(s)
		}
	}
	p.sq = p.sq[:n]
}
