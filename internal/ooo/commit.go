package ooo

import "helios/internal/uop"

// commitStage retires completed µ-ops in order, up to CommitWidth per
// cycle. Fused µ-ops form extended commit groups: a fused head may only
// start committing when its whole catalyst and tail are complete, which
// guarantees the head can still be unfused or flushed if anything inside
// the group misbehaves (Section IV-B3). Committing µ-ops train the Helios
// UCH/FP and update the committed register state used for flush recovery.
//
//helios:hotpath commit-side per-cycle loop; must stay allocation-free (DESIGN.md §13)
func (p *Pipeline) commitStage() {
	for i := 0; i < p.cfg.CommitWidth; i++ {
		u := p.rob.front()
		if u == nil || u.st != stCompleted {
			return
		}
		if u.isStore() && !u.committedSt {
			// Stores retire into the store buffer; the SQ entry is
			// reclaimed when the drain completes.
			u.committedSt = true
		}
		if u.kind != uop.FuseNone && !u.unfused && u.isNCSF {
			if !p.extendedGroupComplete(u) {
				return
			}
		}
		p.rob.pop()
		u.st = stCommitted
		if u.isLoad() {
			p.releaseLQ(u)
		}
		p.commitWrites(u)
		p.accountCommit(u)
		p.trainHelios(u)
		p.pruneWindow(u.seq)
		if !u.isStore() {
			// Commit is a non-store µ-op's last pipeline reference (any
			// stale waiter or event-wheel entry is generation-checked);
			// stores stay referenced by the SQ until the drain completes.
			p.arena.release(u)
		}
	}
}

// extendedGroupComplete checks that every ROB entry up to the tail
// nucleus's position is complete.
func (p *Pipeline) extendedGroupComplete(head *pUop) bool {
	tailSeq := head.tailR.Seq
	for i := 1; i < p.rob.len(); i++ {
		e := p.rob.at(i)
		if e.seq > tailSeq {
			break
		}
		if e.st != stCompleted {
			return false
		}
	}
	return true
}

// commitWrites applies the µ-op's register writes to the committed state,
// freeing superseded physical registers. Writes are ordered by their
// architectural position: the tail nucleus's write sits at the tail's
// sequence number, younger than the whole catalyst, even though it is
// carried by the head's ROB entry.
func (p *Pipeline) commitWrites(u *pUop) {
	for i := 0; i < int(u.numDst); i++ {
		preg := u.dstPhys[i]
		if preg < 0 {
			continue
		}
		arch := u.dstArch[i]
		seqW := int64(u.seq)
		if i > 0 && u.tailR != nil {
			seqW = int64(u.tailR.Seq)
		}
		if seqW > p.lastWriter[arch] {
			old := p.cRAT[arch]
			p.cRAT[arch] = preg
			p.lastWriter[arch] = seqW
			if old >= 0 && old != preg {
				p.freePhys(old)
			}
		} else {
			// Superseded before becoming architectural (a catalyst write
			// committing after the fused group claimed the register).
			p.freePhys(preg)
		}
	}
}

// releaseLQ reclaims the committing load's LQ entry (loads commit in
// order, so it is normally the front).
func (p *Pipeline) releaseLQ(u *pUop) {
	for i, l := range p.lq {
		if l == u {
			//helios:hotalloc-ok in-place compaction into the same backing array; length only shrinks
			p.lq = append(p.lq[:i], p.lq[i+1:]...)
			return
		}
	}
}

func (p *Pipeline) freePhys(preg int32) {
	p.regReady[preg] = true
	p.waiters[preg] = p.waiters[preg][:0]
	//helios:hotalloc-ok free list is pre-sized to the physical register file; a freed preg always fits the vacated capacity
	p.freeList = append(p.freeList, preg)
}

// accountCommit updates the statistics for one retiring µ-op.
func (p *Pipeline) accountCommit(u *pUop) {
	p.recentCommits[p.recentCount%uint64(len(p.recentCommits))] = u.seq
	p.recentCount++
	p.st.CommittedUops++
	p.st.CommittedInsts += u.archInstCount()
	if u.issuedAt >= u.renamedAt {
		p.st.IssueWaitHist.Observe(u.issuedAt - u.renamedAt)
	}
	if u.isLoad() && u.completeAt >= u.issuedAt {
		p.st.LoadToUseHist.Observe(u.completeAt - u.issuedAt)
	}
	if p.flushPending {
		p.flushPending = false
		p.st.FlushRecoveryHist.Observe(p.cycle - p.flushedAt)
	}
	if p.obs != nil {
		p.obsEmit(u, true)
	}
	if u.r.MemSize != 0 {
		p.st.CommittedMem++
	}
	if u.archInstCount() == 2 && u.tailR.MemSize != 0 {
		p.st.CommittedMem++
	}
	if u.unfused || u.kind == uop.FuseNone || u.tailR == nil {
		return
	}
	switch u.kind {
	case uop.FuseIdiom:
		if u.tailR.MemSize != 0 {
			p.st.FusedMemIdiom++
		} else {
			p.st.FusedIdiom++
		}
	case uop.FuseLoadPair, uop.FuseStorePair:
		consecutive := u.pairDistance == 1
		switch {
		case u.kind == uop.FuseLoadPair && consecutive:
			p.st.CSFLoadPairs++
		case u.kind == uop.FuseLoadPair:
			p.st.NCSFLoadPairs++
		case consecutive:
			p.st.CSFStorePairs++
		default:
			p.st.NCSFStorePairs++
		}
		if !consecutive {
			p.st.DistanceSum += uint64(u.pairDistance)
		}
		if !u.pairSameBase {
			p.st.DBRPairs++
		}
		if !u.pairSymmetric {
			p.st.AsymmetricPairs++
		}
		p.st.PairsByCategory[u.pairCat]++
	}
}

// trainHelios performs the Commit-stage work of the Helios predictor:
// unfused memory µ-ops search/insert the UCH; a match means an eligible
// pair went unfused, which trains the FP with the observed distance.
func (p *Pipeline) trainHelios(u *pUop) {
	if p.uch == nil {
		return
	}
	lineSize := p.cfg.PairCfg.LineSize
	fusedPair := u.kind.IsMemory() && !u.unfused
	switch {
	case fusedPair && u.kind == uop.FuseStorePair:
		// A fused store still orders against later stores: the previous
		// "last unfused store" must not pair across it.
		p.uch.InvalidateStore()
	case fusedPair:
		// Fused loads are not eligible for further fusion: not inserted.
	case u.isStore():
		if d, found := p.uch.ObserveStore(u.r.EA/lineSize, u.seq); found {
			p.st.UCHMatches++
			p.fp.Train(u.r.PC, u.ghr, d)
			p.st.FPTrainings++
		}
	case u.isLoad() && (u.kind == uop.FuseNone || u.unfused):
		if d, found := p.uch.ObserveLoad(u.r.EA/lineSize, u.seq); found {
			p.st.UCHMatches++
			p.fp.Train(u.r.PC, u.ghr, d)
			p.st.FPTrainings++
		}
	}
}
