package ooo

import (
	"testing"

	"helios/internal/fusion"
)

// TestTopDownConservationAcrossModes runs each workload under every
// fusion mode with invariant sweeps enabled: the slot-conservation
// check inside CheckInvariants must hold at every sampled cycle, and
// the final accounting must show useful work where the pipeline
// committed instructions.
func TestTopDownConservationAcrossModes(t *testing.T) {
	progs := map[string]string{
		"loopSum":       loopSum,
		"pairedLoads":   pairedLoads,
		"ncsfLoads":     ncsfLoads,
		"storePressure": storePressure,
	}
	modes := []fusion.Mode{
		fusion.ModeNoFusion, fusion.ModeCSFSBR,
		fusion.ModeHelios, fusion.ModeOracle,
	}
	for name, src := range progs {
		for _, mode := range modes {
			p := New(DefaultConfig(mode), streamFor(t, src, 100_000))
			st, err := p.RunChecked(64)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			if err := st.TopDown.CheckConservation(); err != nil {
				t.Errorf("%s/%v: %v", name, mode, err)
			}
			if st.TopDown.Cycles != st.Cycles {
				t.Errorf("%s/%v: top-down saw %d cycles, pipeline %d",
					name, mode, st.TopDown.Cycles, st.Cycles)
			}
			if st.TopDown.Retiring == 0 {
				t.Errorf("%s/%v: no retiring slots despite %d committed µ-ops",
					name, mode, st.CommittedUops)
			}
		}
	}
}

// TestTopDownFusedRetiringTracksFusion cross-checks the fused-retiring
// bucket against the fusion counters: Helios on a pair-rich workload
// must attribute slots to fused dispatch, and the no-fusion baseline
// must attribute none.
func TestTopDownFusedRetiringTracksFusion(t *testing.T) {
	helios := runMode(t, pairedLoads, fusion.ModeHelios, 100_000)
	if helios.TotalMemPairs() > 0 && helios.TopDown.FusedRetiring == 0 {
		t.Errorf("retired %d fused pairs but no fused-retiring slots",
			helios.TotalMemPairs())
	}
	base := runMode(t, pairedLoads, fusion.ModeNoFusion, 100_000)
	if base.TopDown.FusedRetiring != 0 {
		t.Errorf("no-fusion run attributed %d fused-retiring slots",
			base.TopDown.FusedRetiring)
	}
}

// TestTopDownChaosConservation forces periodic random flushes and keeps
// the invariant sweep on: squash reclassification (Move into
// bad-speculation) must stay sum-preserving under arbitrary flush
// points.
func TestTopDownChaosConservation(t *testing.T) {
	cfg := DefaultConfig(fusion.ModeHelios)
	cfg.ChaosFlushInterval = 60
	cfg.ChaosSeed = 7
	p := New(cfg, streamFor(t, pairedLoads, 50_000))
	st, err := p.RunChecked(16)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if st.TopDown.BadSpeculation == 0 {
		t.Errorf("chaos flushes every 60 cycles produced no bad-speculation slots")
	}
	if err := st.TopDown.CheckConservation(); err != nil {
		t.Errorf("after chaos: %v", err)
	}
}

// TestStallAQAccounting shrinks the allocation queue so the 8-wide
// fetch outruns 5-wide rename: fetch must charge StallAQ on cycles
// where the AQ alone blocks it, and the once-per-cycle stall family
// must still bound StallCycles by total cycles.
func TestStallAQAccounting(t *testing.T) {
	cfg := DefaultConfig(fusion.ModeNoFusion)
	cfg.AQSize = 8
	// pairedLoads has a 9-instruction inner loop body, so 8-wide fetch
	// outpaces 5-wide rename (loopSum's 3-op taken-branch body would cap
	// fetch below rename width and never pressure the AQ).
	p := New(cfg, streamFor(t, pairedLoads, 100_000))
	st, err := p.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.StallAQ == 0 {
		t.Errorf("8-entry AQ behind 8-wide fetch never stalled")
	}
	if st.StallCycles() > st.Cycles {
		t.Errorf("stall cycles %d exceed total cycles %d", st.StallCycles(), st.Cycles)
	}
}
