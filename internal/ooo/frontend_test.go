package ooo

import (
	"testing"

	"helios/internal/fusion"
)

// Calls and returns: the RAS should predict returns almost perfectly, so
// a call-heavy kernel shows near-zero mispredicts.
func TestRASPredictsReturns(t *testing.T) {
	src := `
	_start:
		li s1, 3000
	loop:
		call f
		call g
		addi s1, s1, -1
		bnez s1, loop
		li a7, 93
		li a0, 0
		ecall
	f:
		addi s2, s2, 1
		ret
	g:
		addi s3, s3, 2
		ret
	`
	st := runMode(t, src, fusion.ModeNoFusion, 100_000)
	rate := float64(st.BranchMispredicts) / float64(st.CommittedInsts)
	if rate > 0.01 {
		t.Errorf("mispredict rate %.4f on call/return code; RAS not effective", rate)
	}
}

// Indirect jumps through a register (computed goto): the BTB learns stable
// targets; alternating targets mispredict.
func TestIndirectJumpPrediction(t *testing.T) {
	src := `
	_start:
		li s1, 4000
		la s2, tgt
	loop:
		jr s2           # always the same target: BTB learns it
	tgt:
		addi s3, s3, 1
		addi s1, s1, -1
		bnez s1, loop
		li a7, 93
		li a0, 0
		ecall
	`
	st := runMode(t, src, fusion.ModeNoFusion, 100_000)
	// After warmup the BTB hits; only cold misses mispredict.
	if st.BranchMispredicts > 50 {
		t.Errorf("stable indirect jump mispredicted %d times", st.BranchMispredicts)
	}
}

// A large code footprint forces instruction cache misses; the model must
// still make progress and the L1I must record misses.
func TestICacheMisses(t *testing.T) {
	// Generate a long straight-line body (several KiB of code) inside a loop.
	src := "_start:\n\tli s1, 4\nloop:\n"
	for i := 0; i < 10000; i++ { // 40 KiB of code: exceeds the 32 KiB L1I
		src += "\taddi s2, s2, 1\n"
	}
	// The backward jump spans ~40 KiB: beyond B-type range, so use jal.
	src += "\taddi s1, s1, -1\n\tbeqz s1, done\n\tj loop\ndone:\n\tli a7, 93\n\tli a0, 0\n\tecall\n"
	p := New(DefaultConfig(fusion.ModeNoFusion), streamFor(t, src, 80_000))
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem().L1I().Misses == 0 {
		t.Error("no instruction cache misses on a 40KB loop body")
	}
	if st.IPC() <= 0 {
		t.Error("no progress")
	}
}

// Oracle mode must survive pipeline flushes (store-set violations) thanks
// to its window re-priming.
func TestOracleSurvivesFlushes(t *testing.T) {
	// Store-then-load aliasing through two pointers provokes violations.
	src := `
	.data
	.align 6
buf:
	.zero 4096
	.text
_start:
	la s0, buf
	li s1, 4000
	li s4, 0
	li s7, 2040
loop:
	add t0, s0, s4
	sd s1, 0(t0)
	mul t3, s1, s1   # delay the store address? no: delay the data
	add t1, s0, s4
	ld t2, 0(t1)     # reads what the store just wrote
	add s2, s2, t2
	addi s4, s4, 8
	and s4, s4, s7
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st := runMode(t, src, fusion.ModeOracle, 100_000)
	base := runMode(t, src, fusion.ModeNoFusion, 100_000)
	if st.CommittedInsts != base.CommittedInsts {
		t.Errorf("oracle committed %d, baseline %d", st.CommittedInsts, base.CommittedInsts)
	}
}

// Long-running simulation exercises window pruning (the fetched-record
// buffer must not grow with the run length).
func TestWindowPruning(t *testing.T) {
	src := `
	_start:
		li s1, 100000
	loop:
		addi s2, s2, 3
		addi s1, s1, -1
		bnez s1, loop
		li a7, 93
		li a0, 0
		ecall
	`
	p := New(DefaultConfig(fusion.ModeNoFusion), streamFor(t, src, 300_000))
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(p.window) > 20_000 {
		t.Errorf("record window grew to %d entries; pruning broken", len(p.window))
	}
}

// Memory idioms (lui+load) carry a memory access: they must take an LQ
// entry and count as memory-carrying idiom fusions.
func TestMemIdiomFusion(t *testing.T) {
	src := `
	.data
val:
	.dword 42
	.text
_start:
	li s1, 4000
loop:
	lui t0, 0x100
	ld t0, 0(t0)     # load-global idiom: lui + ld with rd==rs1==rd
	add s2, s2, t0
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st := runMode(t, src, fusion.ModeRISCVFusionPP, 80_000)
	if st.FusedMemIdiom == 0 {
		t.Errorf("load-global idiom not fused: %+v", st.FusedIdiom)
	}
}

// CSF-SBR must reject pairs whose base register is rewritten between the
// two accesses (they are not statically contiguous).
func TestCSFRejectsRewrittenBase(t *testing.T) {
	src := `
	.data
buf:
	.zero 4096
	.text
_start:
	la s0, buf
	li s1, 4000
	li s7, 2040
	li s4, 0
loop:
	add t0, s0, s4
	ld t1, 0(t0)
	addi t0, t0, 8   # base rewritten between the loads
	ld t2, 0(t0)
	add s2, t1, t2
	addi s4, s4, 16
	and s4, s4, s7
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st := runMode(t, src, fusion.ModeCSFSBR, 80_000)
	if st.CSFLoadPairs > 0 {
		t.Errorf("CSF fused loads across a base rewrite: %d", st.CSFLoadPairs)
	}
}
