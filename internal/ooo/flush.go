package ooo

import (
	"sort"

	"helios/internal/stats"
	"helios/internal/uop"
)

// flushFrom squashes every µ-op with seq >= from and redirects the
// frontend to re-fetch from that point. Fused µ-ops older than the flush
// point whose tail nucleus falls inside the flushed region are unfused in
// place first (repair cases 5-7, Section IV-C), so no architectural work
// is lost or duplicated.
//
//helios:hotalloc-ok flush repair path: runs once per misprediction/violation, not per cycle; its appends and sort are amortized over the flush penalty
func (p *Pipeline) flushFrom(from uint64) {
	p.st.Flushes++
	p.flushedAt = p.cycle
	p.flushPending = true
	// Top-down: rename idles on an empty AQ while the frontend refills
	// — that is squash recovery, not a frontend deficiency. The flag
	// clears at the next dispatch.
	p.tdRecovering = true

	// Unfuse surviving fused µ-ops whose tail lies in the flushed region.
	for i := 0; i < p.rob.len(); i++ {
		u := p.rob.at(i)
		if u.seq >= from {
			break
		}
		if u.kind != uop.FuseNone && !u.unfused && u.tailR != nil && u.tailR.Seq >= from {
			p.unfuseInPlace(u)
		}
	}

	// Kill younger µ-ops in the AQ (they have no backend state yet).
	// Killed µ-ops are collected and recycled only at the end of the
	// flush: the queue filters below still inspect their st/seq fields,
	// which a reset would wipe.
	var ghrRestore uint64
	haveGhr := false
	for p.aq.len() > 0 {
		u := p.aq.back()
		if u.seq < from {
			break
		}
		u.st = stKilled
		ghrRestore, haveGhr = u.ghr, true
		if p.obs != nil && !u.isTailNucleus {
			p.obsEmit(u, false)
		}
		// A killed tail nucleus whose head survives in the AQ (not yet
		// renamed) must release the head, or it would wait forever. The
		// generation check skips heads already recycled into new µ-ops.
		if u.isTailNucleus && u.headUop != nil && u.headUop.gen == u.headGen &&
			u.headUop.st == stDecoded {
			p.cancelNCSF(u.headUop, u)
		}
		p.aq.popBack()
		p.deadUops = append(p.deadUops, u)
	}

	// Kill younger ROB entries and collect their register allocations.
	for p.rob.len() > 0 {
		u := p.rob.back()
		if u.seq < from {
			break
		}
		p.rob.popBack()
		u.st = stKilled
		ghrRestore, haveGhr = u.ghr, true
		// The dispatch slot this µ-op claimed bought no retired work.
		p.tdReclassify(u, stats.TDBadSpeculation)
		if p.obs != nil {
			p.obsEmit(u, false)
		}
		for i := 0; i < int(u.numDst); i++ {
			if preg := u.dstPhys[i]; preg >= 0 {
				p.freePhys(preg)
			}
		}
		p.deadUops = append(p.deadUops, u)
	}

	// Rebuild the speculative RAT: committed state plus the surviving
	// in-flight writes applied in architectural order (a validated tail
	// nucleus's write belongs at the tail's position, carried by the
	// head's entry).
	type write struct {
		seq  int64
		arch uint8
		preg int32
	}
	var writes []write
	for i := 0; i < p.rob.len(); i++ {
		u := p.rob.at(i)
		for d := 0; d < int(u.numDst); d++ {
			if u.dstPhys[d] < 0 {
				continue
			}
			seqW := int64(u.seq)
			if d > 0 && u.tailR != nil {
				seqW = int64(u.tailR.Seq)
			}
			writes = append(writes, write{seq: seqW, arch: u.dstArch[d], preg: u.dstPhys[d]})
		}
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].seq < writes[j].seq })
	p.rat = p.cRAT
	for _, w := range writes {
		p.rat[w.arch] = w.preg
	}

	// Filter the backend queues.
	p.iq = filterLive(p.iq, from)
	p.lq = filterLive(p.lq, from)
	p.sq = filterLive(p.sq, from)

	// Pending NCSF bookkeeping: heads were either killed or unfused above.
	live := p.pendingNCSF[:0]
	for _, h := range p.pendingNCSF {
		if h.st != stKilled && !h.unfused && h.seq < from {
			live = append(live, h)
		}
	}
	p.pendingNCSF = live

	// Frontend redirect.
	p.nextFetch = from
	if haveGhr {
		p.ghr.Set(ghrRestore)
	}
	if p.fetchStalled && p.fetchHeldBy >= from {
		p.fetchStalled = false
	}

	// Re-prime the oracle from the history preceding the flush point.
	if p.oracle != nil {
		p.oracle.Reset()
		p.plannedPairs.clear()
		start := p.windowBase
		if from > uint64(p.cfg.PairCfg.MaxDist+1) && from-uint64(p.cfg.PairCfg.MaxDist+1) > start {
			start = from - uint64(p.cfg.PairCfg.MaxDist+1)
		}
		for s := start; s < from; s++ {
			if r := p.record(s); r != nil {
				if pairing, ok := p.oracle.Observe(*r); ok {
					// Pairs wholly before the flush point were already
					// applied (or dropped); only future tails matter.
					if pairing.TailSeq >= from {
						p.plannedPairs.put(pairing)
					}
				}
			}
		}
		p.oracleFed = from
	}

	// Recycle the killed µ-ops: every queue filter above has run, so the
	// only references left are generation-checked (waiters, event wheel)
	// or in last cycle's fetch-group scratch, which is reset before reuse.
	for i, u := range p.deadUops {
		p.arena.release(u)
		p.deadUops[i] = nil
	}
	p.deadUops = p.deadUops[:0]
}

// filterLive drops killed µ-ops and those at or past the flush point.
func filterLive(q []*pUop, from uint64) []*pUop {
	n := 0
	for _, u := range q {
		if u.st != stKilled && u.seq < from {
			q[n] = u
			n++
		}
	}
	return q[:n]
}

// unfuseInPlace reverts a fused µ-op to a single access after it renamed:
// the tail's work is given up (the tail will be re-fetched) and its
// resources released. The head keeps its own access.
func (p *Pipeline) unfuseInPlace(u *pUop) {
	if u.unfused {
		return
	}
	u.unfused = true
	u.validated = true
	// One retiring instruction now, not two: move the dispatch slot
	// from fused-retiring back to plain retiring.
	if u.tdBucket == int8(stats.TDFusedRetiring) {
		p.tdReclassify(u, stats.TDRetiring)
	}
	p.removePendingNCSF(u)
	// Release the tail's physical destination if the head allocated one.
	if u.numDst > 1 {
		slot := int(u.numDst) - 1
		if preg := u.dstPhys[slot]; preg >= 0 {
			p.freePhys(preg)
		}
		u.dstPhys[slot] = invalidReg
		u.numDst--
	}
	// Retract the tail's source slots: they sit above the head's own
	// sources (placed in the low slots at rename) and may name physical
	// registers belonging to flushed catalyst µ-ops. A consecutive pair's
	// sources were all resolved against a current RAT and are kept.
	if u.isNCSF {
		for slot := int(u.ownSrcs); slot < int(u.numSrc); slot++ {
			preg := u.srcPhys[slot]
			if preg >= 0 && !p.regReady[preg] && u.pendSrcs > 0 {
				u.pendSrcs--
			}
			u.srcPhys[slot] = invalidReg
		}
		u.numSrc = u.ownSrcs
	}
}
