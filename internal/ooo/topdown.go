package ooo

import "helios/internal/stats"

// This file implements the top-down slot accounting (DESIGN.md §12):
// every cycle, renameDispatchStage attributes all DispatchWidth slots
// to exactly one stats.TDBucket each. Slots that dispatched a µ-op are
// tagged on the µ-op (tdBucket) so a later squash or unfuse can
// reclassify them; slots nothing claimed are attributed to the reason
// dispatch could not fill them — the blocking backend resource, flush
// recovery, or the frontend.

// stallKind names the rename/dispatch resource that blocked allocation
// this cycle (stallNone = no stall). tryAllocate reports the first
// blocking resource in check order, mirroring the stall_* counters.
type stallKind uint8

const (
	stallNone stallKind = iota
	stallFreeList
	stallROB
	stallIQ
	stallLQ
	stallSQ
)

// bumpStall attributes one stalled cycle to the blocking resource's
// stall_* counter (at most one per cycle: the caller stops at the first
// stall).
func (p *Pipeline) bumpStall(k stallKind) {
	switch k {
	case stallFreeList:
		p.st.StallFreeList++
	case stallROB:
		p.st.StallROB++
	case stallIQ:
		p.st.StallIQ++
	case stallLQ:
		p.st.StallLQ++
	case stallSQ:
		p.st.StallSQ++
	}
}

// Memory-hierarchy level that served a load or store, recorded at issue
// (loads) or drain start (stores) for backend-memory stall attribution.
const (
	memL1D int8 = iota
	memL2
	memLLC
	memDRAM
)

// classifyMemLevel maps a total data-access latency to the hierarchy
// level that served it. The hierarchy reports cumulative latencies (an
// L2 hit costs L1D + L2 cycles), a line-crossing access whose second
// line also hits adds one serialized cycle — hence the +1 slack per
// threshold — and MSHR-merged fills land between levels, classifying to
// the level whose latency window they fall in.
func (p *Pipeline) classifyMemLevel(lat int) int8 {
	c := &p.cfg.Cache
	l1 := c.L1D.Latency + 1
	switch {
	case lat <= l1:
		return memL1D
	case lat <= l1+c.L2.Latency:
		return memL2
	case lat <= l1+c.L2.Latency+c.LLC.Latency:
		return memLLC
	}
	return memDRAM
}

// memLevelBucket maps a recorded hierarchy level to its top-down
// backend-memory bucket.
func memLevelBucket(level int8) stats.TDBucket {
	switch level {
	case memL2:
		return stats.TDBackendMemL2
	case memLLC:
		return stats.TDBackendMemLLC
	case memDRAM:
		return stats.TDBackendMemDRAM
	}
	return stats.TDBackendMemL1D
}

// tdStallBucket maps a rename-stage structural stall to its top-down
// bucket: LQ/SQ pressure is memory-bound, classified by the level
// serving the oldest in-flight blocking access (the lq/sq slices are
// program-ordered, so the first candidate is the oldest); free list,
// ROB and IQ pressure are core-bound. An access whose level is not yet
// known (still awaiting issue/drain) counts as L1D, the floor.
func (p *Pipeline) tdStallBucket(k stallKind) stats.TDBucket {
	switch k {
	case stallLQ:
		for _, l := range p.lq {
			if l.st == stIssued {
				return memLevelBucket(l.memLevel)
			}
		}
		return stats.TDBackendMemL1D
	case stallSQ:
		for _, s := range p.sq {
			if s.draining && !s.drained {
				return memLevelBucket(s.memLevel)
			}
		}
		return stats.TDBackendMemL1D
	}
	return stats.TDBackendCore
}

// tdReclassify moves a µ-op's recorded dispatch slot into another
// bucket (squash, unfuse). µ-ops that never claimed a slot (killed in
// the AQ, or renamed beyond the DispatchWidth budget) carry tdBucket
// -1 and are left alone.
func (p *Pipeline) tdReclassify(u *pUop, to stats.TDBucket) {
	if u.tdBucket < 0 || stats.TDBucket(u.tdBucket) == to {
		return
	}
	p.st.TopDown.Move(stats.TDBucket(u.tdBucket), to, 1)
	u.tdBucket = int8(to)
}
