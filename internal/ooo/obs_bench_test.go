package ooo

import (
	"io"
	"testing"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/obs"
	"helios/internal/trace"
)

// benchRecording records the pairedLoads workload once so every
// benchmark iteration replays the identical stream with zero emulation
// cost in the measured loop.
func benchRecording(b *testing.B) *trace.Recording {
	b.Helper()
	prog, err := asm.Assemble(pairedLoads)
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	rec, err := trace.Record(trace.NewLive(emu.New(prog), 20000))
	if err != nil {
		b.Fatalf("record: %v", err)
	}
	return rec
}

func benchRun(b *testing.B, rec *trace.Recording, ob *obs.Observer) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(fusion.ModeHelios)
		cfg.Obs = ob
		st, err := New(cfg, rec.Replay()).Run()
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		cycles += st.Cycles
	}
	// cycles/op feeds the BENCH_*.json trajectory: benchsnap derives
	// simulated-cycles/sec from it (see EXPERIMENTS.md).
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// BenchmarkPipelineObsOff is the overhead-contract baseline: the same
// workload as BenchmarkPipelineObsOn with observability disabled. The
// allocs/op delta between the two is the observability cost; Off must
// match a build without the hooks (nil-check only, no allocations).
func BenchmarkPipelineObsOff(b *testing.B) {
	benchRun(b, benchRecording(b), nil)
}

// BenchmarkPipelineObsOn measures full tracing + sampling against
// discarded sinks, isolating event-construction cost from I/O.
func BenchmarkPipelineObsOn(b *testing.B) {
	benchRun(b, benchRecording(b), &obs.Observer{
		PipeView:    io.Discard,
		Events:      io.Discard,
		Metrics:     io.Discard,
		SampleEvery: 1000,
	})
}

// TestCommitObsOffNoAllocs pins the disabled-path contract at the exact
// hook site: with Obs nil, the per-retire accounting (counters plus the
// three histograms plus the nil-checked event hook) allocates nothing.
func TestCommitObsOffNoAllocs(t *testing.T) {
	p := New(DefaultConfig(fusion.ModeNoFusion), trace.Func(func() (emu.Retired, bool) {
		return emu.Retired{}, false
	}))
	u := &pUop{seq: 1, renamedAt: 5, issuedAt: 8, completeAt: 13}
	allocs := testing.AllocsPerRun(200, func() { p.accountCommit(u) })
	if allocs != 0 {
		t.Errorf("accountCommit with obs disabled allocated %.1f times per run, want 0", allocs)
	}
}
