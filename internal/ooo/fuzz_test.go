package ooo

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/trace"
)

// genProgram builds a random but always-terminating RISC-V program: a
// counted outer loop whose body is a random mix of ALU operations, loads
// and stores into a scratch buffer, and short forward branches. The mix is
// rich in fuseable patterns (same-base contiguous accesses, shift-add
// addressing) so random programs exercise every fusion path.
func genProgram(r *rand.Rand, bodyLen int) string {
	var b strings.Builder
	b.WriteString(`
	.data
buf:
	.zero 4096
	.text
_start:
	la s0, buf
	li s1, 400       # outer iterations
	li s2, 0
	li s3, 1
	li t0, 3
	li t1, 5
	li t2, 7
	li a0, 11
	li a1, 13
	li a2, 17
loop:
`)
	regs := []string{"t0", "t1", "t2", "a0", "a1", "a2", "s2", "s3"}
	reg := func() string { return regs[r.Intn(len(regs))] }
	skip := 0
	for i := 0; i < bodyLen; i++ {
		if skip > 0 {
			skip--
		}
		switch r.Intn(10) {
		case 0, 1: // ALU reg-reg
			ops := []string{"add", "sub", "xor", "or", "and", "sll", "srl"}
			op := ops[r.Intn(len(ops))]
			if op == "sll" || op == "srl" {
				// Bound the shift amount to keep values tame.
				fmt.Fprintf(&b, "\tandi t3, %s, 15\n\t%s %s, %s, t3\n", reg(), op, reg(), reg())
			} else {
				fmt.Fprintf(&b, "\t%s %s, %s, %s\n", op, reg(), reg(), reg())
			}
		case 2: // ALU immediate
			fmt.Fprintf(&b, "\taddi %s, %s, %d\n", reg(), reg(), r.Intn(64)-32)
		case 3: // shift-add addressing idiom (LEA)
			fmt.Fprintf(&b, "\tslli t4, %s, %d\n\tadd t4, t4, %s\n", reg(), 1+r.Intn(3), reg())
		case 4, 5: // load from the buffer (masked offset)
			off := r.Intn(250) * 8
			fmt.Fprintf(&b, "\tld %s, %d(s0)\n", reg(), off)
		case 6: // adjacent load pair material
			off := r.Intn(240) * 8
			fmt.Fprintf(&b, "\tld t5, %d(s0)\n\tld t6, %d(s0)\n", off, off+8)
		case 7: // store
			off := r.Intn(250) * 8
			fmt.Fprintf(&b, "\tsd %s, %d(s0)\n", reg(), off)
		case 8: // store pair material, split by an ALU op
			off := r.Intn(240) * 8
			fmt.Fprintf(&b, "\tsd %s, %d(s0)\n\txor t3, %s, %s\n\tsd t3, %d(s0)\n",
				reg(), off, reg(), reg(), off+8)
		case 9: // short forward branch over the next instruction
			if skip == 0 {
				lbl := fmt.Sprintf("f%d", i)
				fmt.Fprintf(&b, "\tbeqz %s, %s\n\taddi %s, %s, 1\n%s:\n", reg(), lbl, reg(), reg(), lbl)
				skip = 1
			}
		}
	}
	b.WriteString(`	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
`)
	return b.String()
}

// TestFuzzAllModesAgree generates random programs and verifies that every
// fusion configuration commits exactly the same architectural instruction
// stream length as the functional emulator retires, with invariants intact
// throughout. This is the central "fusion never changes architecture"
// property of the paper.
func TestFuzzAllModesAgree(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(seed)*7919 + 17))
			src := genProgram(r, 20+r.Intn(40))
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, src)
			}
			// Reference: functional execution.
			ref := emu.New(prog)
			want, err := ref.Run(3_000_000)
			if err != nil {
				t.Fatalf("emulate: %v", err)
			}
			if !ref.Halted() {
				t.Fatal("random program did not halt")
			}

			for _, mode := range fusion.Modes {
				p := New(DefaultConfig(mode), trace.NewLive(emu.New(prog), 0))
				st, err := p.RunChecked(64)
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				if st.CommittedInsts != want {
					t.Errorf("mode %v committed %d instructions, functional retired %d",
						mode, st.CommittedInsts, want)
				}
			}
		})
	}
}

// FuzzPipelineModesAgree is the native-fuzzing form of the differential
// check: the fuzzer drives the program generator's seed and body length,
// and every fusion configuration must commit exactly the instruction
// count the functional emulator retires, with invariants checked
// throughout. Run with: go test -fuzz=FuzzPipelineModesAgree ./internal/ooo
func FuzzPipelineModesAgree(f *testing.F) {
	f.Add(int64(17), uint8(24))
	f.Add(int64(7919), uint8(48))
	f.Add(int64(-3), uint8(1))
	f.Add(int64(99), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, bodyLen uint8) {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r, 1+int(bodyLen)%64)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("generator produced an unassemblable program: %v", err)
		}
		ref := emu.New(prog)
		want, err := ref.Run(3_000_000)
		if err != nil {
			t.Fatalf("emulate: %v", err)
		}
		if !ref.Halted() {
			t.Fatal("generated program did not halt")
		}
		for _, mode := range fusion.Modes {
			p := New(DefaultConfig(mode), trace.NewLive(emu.New(prog), 0))
			st, err := p.RunChecked(256)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			if st.CommittedInsts != want {
				t.Errorf("mode %v committed %d instructions, functional retired %d",
					mode, st.CommittedInsts, want)
			}
		}
	})
}

// TestFuzzSmallMachines repeats the differential check on deliberately
// tiny machines, where every structural stall and flush path is hammered.
func TestFuzzSmallMachines(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	src := genProgram(r, 48)
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := emu.New(prog)
	want, err := ref.Run(3_000_000)
	if err != nil || !ref.Halted() {
		t.Fatalf("emulate: %v halted=%v", err, ref.Halted())
	}
	for _, mode := range []fusion.Mode{fusion.ModeHelios, fusion.ModeOracle} {
		for _, shrink := range []struct {
			name string
			mut  func(*Config)
		}{
			{"tiny-rob", func(c *Config) { c.ROBSize = 24; c.PhysRegs = 64 }},
			{"tiny-iq", func(c *Config) { c.IQSize = 8 }},
			{"tiny-lsq", func(c *Config) { c.LQSize = 6; c.SQSize = 4 }},
			{"tiny-aq", func(c *Config) { c.AQSize = 10 }},
			{"narrow", func(c *Config) { c.FetchWidth = 2; c.RenameWidth = 1; c.CommitWidth = 1 }},
			{"one-port", func(c *Config) { c.ALUPorts = 1; c.LoadPorts = 1; c.StorePorts = 1 }},
		} {
			cfg := DefaultConfig(mode)
			shrink.mut(&cfg)
			p := New(cfg, trace.NewLive(emu.New(prog), 0))
			st, err := p.RunChecked(16)
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, shrink.name, err)
			}
			if st.CommittedInsts != want {
				t.Errorf("%v/%s committed %d, want %d", mode, shrink.name, st.CommittedInsts, want)
			}
		}
	}
}
