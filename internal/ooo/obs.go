package ooo

import (
	"fmt"

	"helios/internal/obs"
	"helios/internal/uop"
)

// obsEmit builds the observability event for a retiring or squashed
// µ-op and hands it to the observer. Only reached behind a p.obs nil
// check, so the disabled hot path never sees the Event construction or
// the disassembly allocation.
//
// Stage-cycle mapping: the model decodes in the cycle it fetches and
// dispatches in the cycle it renames (AQ and ROB insertion are the
// respective stage exits), so fetch==decode and rename==dispatch in the
// O3PipeView output; unreached stages stay 0.
//
//helios:hotalloc-ok obs-enabled path only, always behind a p.obs nil check; the disabled path is pinned alloc-free by TestCommitObsOffNoAllocs
func (p *Pipeline) obsEmit(u *pUop, retired bool) {
	ev := obs.Event{
		Seq:          u.seq,
		PC:           u.r.PC,
		Disasm:       fmt.Sprint(u.r.Inst),
		Fetch:        u.decodedAt,
		Decode:       u.decodedAt,
		Rename:       u.renamedAt,
		Dispatch:     u.renamedAt,
		Issue:        u.issuedAt,
		Complete:     u.completeAt,
		Mispredicted: u.mispredicted,
	}
	if u.kind != uop.FuseNone && u.tailR != nil {
		ev.Fused = u.kind.String()
		ev.TailSeq = u.tailR.Seq
		ev.TailPC = u.tailR.PC
		ev.PairDistance = u.pairDistance
		ev.PairCategory = u.pairCat.String()
		ev.Predicted = u.usedPred
		ev.Unfused = u.unfused
	}
	if retired {
		ev.Retire = p.cycle
		p.obs.Retire(&ev)
		return
	}
	ev.Squashed = true
	ev.SquashCycle = p.cycle
	p.obs.Squash(&ev)
}

// obsSample snapshots the cumulative engine counters for the interval
// sampler. The observer differences consecutive snapshots into rates.
func (p *Pipeline) obsSample() {
	c := p.mem.Counters()
	p.obs.Sample(obs.IntervalStats{
		Cycle:             p.cycle,
		Insts:             p.st.CommittedInsts,
		Uops:              p.st.CommittedUops,
		MemPairs:          p.st.TotalMemPairs(),
		Idioms:            p.st.FusedIdiom + p.st.FusedMemIdiom,
		FusionPredictions: p.st.FusionPredictions,
		FusionMispredicts: p.st.FusionMispredicts,
		Branches:          p.st.Branches,
		BranchMispredicts: p.st.BranchMispredicts,
		BTBMisses:         p.btb.Misses,
		L1DMisses:         c.L1DMisses,
		L2Misses:          c.L2Misses,
		LLCMisses:         c.LLCMisses,
		Flushes:           p.st.Flushes,
		ROBOcc:            uint64(p.rob.len()),
		IQOcc:             uint64(len(p.iq)),
		LQOcc:             uint64(len(p.lq)),
		SQOcc:             uint64(len(p.sq)),
		AQOcc:             uint64(p.aq.len()),
		TDRetiring:        p.st.TopDown.Retiring,
		TDFusedRetiring:   p.st.TopDown.FusedRetiring,
		TDFrontendLat:     p.st.TopDown.FrontendLatency,
		TDFrontendBW:      p.st.TopDown.FrontendBandwidth,
		TDBadSpec:         p.st.TopDown.BadSpeculation,
		TDBackendCore:     p.st.TopDown.BackendCore,
		TDBackendMem:      p.st.TopDown.BackendMemory(),
	})
}
