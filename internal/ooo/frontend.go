package ooo

import (
	"helios/internal/fusion"
	"helios/internal/helios"
	"helios/internal/isa"
	"helios/internal/uop"
)

// waiter records a µ-op waiting on a physical register in a specific
// source slot (the slot is re-checked at wake-up because NCSF unfusing can
// retract sources, and the generation because a retracted waiter's µ-op
// may have been released and recycled before the register fires).
type waiter struct {
	u    *pUop
	slot int
	gen  uint32
}

type waiterList []waiter

// frontendStage models Fetch and Decode: it pulls up to FetchWidth
// committed-path records per cycle, performs branch prediction (stalling
// fetch on a mispredict until the branch resolves), applies decode-window
// consecutive fusion, consults the Helios fusion predictor or the oracle
// pairing plan, and inserts the surviving µ-ops into the allocation queue.
func (p *Pipeline) frontendStage() {
	if p.fetchStalled {
		if p.cycle < p.fetchResumeAt {
			return
		}
		p.fetchStalled = false
	}
	if p.cycle < p.icacheReadyAt {
		return
	}

	group := p.fetchGroup[:0]
	for len(group) < p.cfg.FetchWidth {
		if p.aq.len()+len(group) >= p.aq.cap() {
			// Allocation queue backpressure truncated this fetch group.
			// Like the rename-side stall_* counters, the family is
			// charged at most once per cycle to the first blocking
			// resource: a cycle that already stalled in rename is
			// charged there (rename runs before fetch, so the flag is
			// current), and only an AQ-bound fetch counts here.
			if !p.renameStalled {
				p.st.StallAQ++
			}
			break
		}
		rec := p.fetchRecord(p.nextFetch)
		if rec == nil {
			break // stream exhausted
		}
		// Instruction cache: one access per new line touched.
		line := rec.PC / p.cfg.Cache.LineSize
		if line != p.lastFetchLine {
			p.lastFetchLine = line
			if lat := p.mem.FetchLatency(rec.PC, p.cycle); lat > 1 {
				p.icacheReadyAt = p.cycle + uint64(lat)
				if len(group) == 0 {
					// Nothing fetched this cycle; retry after the miss.
					return
				}
				break
			}
		}

		u := p.arena.alloc()
		u.r, u.seq, u.ghr, u.st = *rec, rec.Seq, p.ghr.Bits(), stDecoded
		u.decodedAt = p.cycle
		u.tdBucket = -1 // no dispatch slot claimed yet
		p.nextFetch++

		taken := rec.NextPC != rec.PC+4
		switch {
		case rec.Inst.Op.IsBranch():
			p.st.Branches++
			pred := p.tage.Predict(rec.PC, p.ghr.Bits())
			p.tage.Update(rec.PC, p.ghr.Bits(), rec.Taken)
			mispred := pred != rec.Taken
			if rec.Taken && !mispred {
				if _, ok := p.btb.Lookup(rec.PC); !ok {
					mispred = true // taken but no target available
				}
			}
			if rec.Taken {
				p.btb.Insert(rec.PC, rec.NextPC)
			}
			p.ghr.Push(rec.Taken)
			if mispred {
				u.mispredicted = true
				p.st.BranchMispredicts++
			}
		case rec.Inst.Op == isa.OpJAL:
			if rec.Inst.Rd == isa.RA {
				p.ras.Push(rec.PC + 4)
			}
			// Direct jumps are decoded early: no misprediction.
		case rec.Inst.Op == isa.OpJALR:
			var predicted uint64
			havePred := false
			if rec.Inst.Rd == isa.Zero && rec.Inst.Rs1 == isa.RA {
				predicted, havePred = p.ras.Pop() // return
			} else {
				predicted, havePred = p.btb.Lookup(rec.PC)
			}
			if rec.Inst.Rd == isa.RA {
				p.ras.Push(rec.PC + 4) // call via register
			}
			if !havePred || predicted != rec.NextPC {
				u.mispredicted = true
				p.st.BranchMispredicts++
			}
			p.btb.Insert(rec.PC, rec.NextPC)
		}

		group = append(group, u)
		if u.mispredicted {
			// Fetch cannot proceed past an unresolved misprediction.
			p.fetchStalled = true
			p.fetchResumeAt = ^uint64(0)
			p.fetchHeldBy = u.seq
			break
		}
		if taken {
			break // fetch group ends at a taken control transfer
		}
	}
	p.fetchGroup = group
	if len(group) == 0 {
		return
	}

	p.fuseConsecutive(group)
	switch {
	case p.cfg.Mode.Predictive():
		p.markPredictedPairs(group)
	case p.cfg.Mode.OraclePairs():
		p.markOraclePairs(group)
	}

	for i, u := range group {
		if u.st == stKilled {
			// Absorbed into a fused µ-op at decode: its record was copied
			// into the head's tail storage and nothing else refers to it.
			p.arena.release(u)
			group[i] = nil
			continue
		}
		p.aq.push(u)
	}
}

// fuseConsecutive applies decode-window fusion: non-memory Table I idioms
// and consecutive contiguous same-base memory pairs, depending on the
// mode. The window covers the current decode group plus the youngest
// not-yet-renamed µ-op in the AQ.
func (p *Pipeline) fuseConsecutive(group []*pUop) {
	mode := p.cfg.Mode
	if !mode.NonMemIdioms() && !mode.ConsecutiveMemPairs() {
		return
	}
	prev := p.aq.back() // may pair with the first µ-op of this group
	for _, u := range group {
		if u.st == stKilled {
			continue
		}
		if prev != nil && prev.kind == uop.FuseNone && !prev.isTailNucleus &&
			prev.seq+1 == u.seq && !prev.r.Inst.Op.IsControlFlow() {
			if p.tryFusePair(prev, u) {
				prev = nil // fused µ-op cannot immediately fuse again
				continue
			}
		}
		prev = u
	}
}

// tryFusePair attempts decode-time fusion of adjacent µ-ops a and b;
// b is absorbed on success.
func (p *Pipeline) tryFusePair(a, b *pUop) bool {
	mode := p.cfg.Mode
	if mode.NonMemIdioms() {
		if id := fusion.MatchNonMemIdiom(a.r.Inst, b.r.Inst); id != fusion.IdiomNone {
			p.absorbTail(a, b, uop.FuseIdiom)
			return true
		}
	}
	if mode.ConsecutiveMemPairs() && !mode.OraclePairs() {
		if id, ok := fusion.MatchMemPair(a.r.Inst, b.r.Inst, mode.AsymmetricPairs()); ok {
			p.absorbTail(a, b, id.Kind())
			a.pairCat = uop.Classify(a.r.EA, a.r.MemSize, b.r.EA, b.r.MemSize, p.cfg.PairCfg.LineSize)
			a.pairDistance = 1
			a.pairSameBase = true
			a.pairSymmetric = a.r.MemSize == b.r.MemSize
			return true
		}
	}
	return false
}

// absorbTail turns a into a fused µ-op holding b's work; b disappears from
// the pipeline (consecutive fusion: the tail nucleus vanishes at decode).
func (p *Pipeline) absorbTail(a, b *pUop, kind uop.FuseKind) {
	a.kind = kind
	a.tailStorage = b.r
	a.tailR = &a.tailStorage
	a.validated = true
	b.st = stKilled
}

// markPredictedPairs consults the Helios FP for every unfused memory µ-op
// of the group and establishes speculative NCSF links when the predicted
// head nucleus is still available in the AQ or this decode group.
func (p *Pipeline) markPredictedPairs(group []*pUop) {
	for _, u := range group {
		if u.st == stKilled || u.r.MemSize == 0 || u.kind != uop.FuseNone || u.isTailNucleus {
			continue
		}
		pred, ok := p.fp.Predict(u.r.PC, u.ghr)
		if !ok || !pred.Confident || pred.Distance < 1 {
			continue
		}
		head := p.findFusionHead(u.seq-uint64(pred.Distance), group)
		if head == nil || !p.headEligible(head, u) {
			continue
		}
		p.establishNCSF(head, u, pred, true)
	}
}

// markOraclePairs feeds the oracle and applies its pairing plan.
func (p *Pipeline) markOraclePairs(group []*pUop) {
	for _, u := range group {
		// The oracle consumes every µ-op exactly once, in decode order
		// (tail nucleii killed by idiom fusion still feed it).
		if u.seq == p.oracleFed {
			if pairing, ok := p.oracle.Observe(u.r); ok {
				p.plannedPairs.put(pairing)
			}
			p.oracleFed++
		}
	}
	for _, u := range group {
		if u.st == stKilled || u.kind != uop.FuseNone || u.isTailNucleus {
			continue
		}
		pairing, ok := p.plannedPairs.take(u.seq)
		if !ok {
			continue
		}
		head := p.findFusionHead(pairing.HeadSeq, group)
		if head == nil || !p.headEligible(head, u) {
			continue
		}
		if pairing.Distance == 1 {
			// Consecutive: fuse immediately, the tail vanishes.
			p.absorbTail(head, u, pairing.Kind)
			head.pairCat = pairing.Category
			head.pairDistance = 1
			head.pairSameBase = pairing.SameBase
			head.pairSymmetric = pairing.Symmetric
			continue
		}
		p.establishNCSF(head, u, helios.Prediction{}, false)
	}
}

// findFusionHead locates the µ-op with the given seq in the AQ or the
// current decode group, returning nil if it already left for Rename.
func (p *Pipeline) findFusionHead(seq uint64, group []*pUop) *pUop {
	for _, u := range group {
		if u.seq == seq {
			return u
		}
	}
	for i := 0; i < p.aq.len(); i++ {
		if u := p.aq.at(i); u.seq == seq {
			return u
		}
	}
	return nil
}

// headEligible checks the AQ-time fusion conditions (Section IV-A2):
// same µ-op type, head not already fused and not part of another pair.
func (p *Pipeline) headEligible(head, tail *pUop) bool {
	if head == tail || head.st == stKilled {
		return false
	}
	if head.kind != uop.FuseNone || head.isTailNucleus {
		return false
	}
	if head.r.MemSize == 0 {
		return false
	}
	if head.r.IsLoad() != tail.r.IsLoad() {
		return false
	}
	// Store pairs must share the architectural base register (DBR store
	// fusion is not supported).
	if head.r.IsStore() && head.r.Inst.Rs1 != tail.r.Inst.Rs1 {
		return false
	}
	return true
}

// establishNCSF links head and tail as a speculative non-consecutive pair.
// The head becomes the NCSF'd µ-op; the tail nucleus stays in the AQ and
// flows to Rename to validate it.
func (p *Pipeline) establishNCSF(head, tail *pUop, pred helios.Prediction, usedPred bool) {
	head.tailStorage = tail.r
	rec := head.tailStorage
	head.kind = uop.FuseLoadPair
	if head.r.IsStore() {
		head.kind = uop.FuseStorePair
	}
	head.tailR = &head.tailStorage
	head.isNCSF = true
	head.validated = false
	head.pred = pred
	head.usedPred = usedPred
	head.predGhr = tail.ghr
	head.pairCat = uop.Classify(head.r.EA, head.r.MemSize, rec.EA, rec.MemSize, p.cfg.PairCfg.LineSize)
	head.pairDistance = int(tail.seq - head.seq)
	head.pairSameBase = head.r.Inst.Rs1 == rec.Inst.Rs1
	head.pairSymmetric = head.r.MemSize == rec.MemSize
	tail.isTailNucleus = true
	tail.headUop = head
	tail.headGen = head.gen
	if usedPred {
		p.st.FusionPredictions++
	}
}
