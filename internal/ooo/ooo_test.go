package ooo

import (
	"errors"
	"strings"
	"testing"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/trace"
)

// streamFor assembles a program and returns a live trace.Source over its
// execution (emulation faults surface through Source.Err into Run).
func streamFor(t *testing.T, src string, maxInsts uint64) trace.Source {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return trace.NewLive(emu.New(prog), maxInsts)
}

// faultingSource yields records from an inner source, then reports a
// stream error — the shape of an emulator fault mid-run.
type faultingSource struct {
	inner trace.Source
	left  int
	err   error
}

func (s *faultingSource) Next() (emu.Retired, bool) {
	if s.left == 0 {
		return emu.Retired{}, false
	}
	s.left--
	return s.inner.Next()
}

func (s *faultingSource) Err() error { return s.err }

// TestRunSurfacesStreamError verifies the pipeline drains and then fails
// loudly when the committed stream ends on an emulation fault, instead of
// silently truncating the run.
func TestRunSurfacesStreamError(t *testing.T) {
	src := &faultingSource{
		inner: streamFor(t, loopSum, 1000),
		left:  50,
		err:   errors.New("synthetic emulation fault"),
	}
	p := New(DefaultConfig(fusion.ModeNoFusion), src)
	st, err := p.Run()
	if err == nil || !strings.Contains(err.Error(), "synthetic emulation fault") {
		t.Fatalf("Run error = %v, want the stream fault", err)
	}
	if st.CommittedInsts == 0 {
		t.Error("the drained prefix should still have committed")
	}
}

// runMode simulates src under the given fusion mode.
func runMode(t *testing.T, src string, mode fusion.Mode, maxInsts uint64) *Stats {
	t.Helper()
	p := New(DefaultConfig(mode), streamFor(t, src, maxInsts))
	st, err := p.Run()
	if err != nil {
		t.Fatalf("run (%v): %v", mode, err)
	}
	return st
}

// loopSum is a simple dependent-ALU loop.
const loopSum = `
_start:
	li t0, 2000
	li t1, 0
loop:
	add t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	li a7, 93
	mv a0, t1
	ecall
`

// pairedLoads streams through an array with back-to-back pair-able loads.
const pairedLoads = `
	.data
arr:
	.zero 4096
	.text
_start:
	li t0, 200        # iterations
	la t1, arr
outer:
	li t2, 0
inner:
	add t3, t1, t2
	ld a0, 0(t3)
	ld a1, 8(t3)
	ld a2, 16(t3)
	ld a3, 24(t3)
	add a4, a0, a1
	add a5, a2, a3
	addi t2, t2, 32
	li t4, 2048
	blt t2, t4, inner
	addi t0, t0, -1
	bnez t0, outer
	li a7, 93
	li a0, 0
	ecall
`

// ncsfLoads has same-line loads separated by ALU work: only NCSF captures
// them (the catalyst has no hazards with the tail).
const ncsfLoads = `
	.data
arr:
	.zero 4096
	.text
_start:
	li t0, 2000
	la t1, arr
loop:
	ld a0, 0(t1)
	add a2, a0, t0
	xor a3, a2, t0
	and a4, a3, a2
	ld a1, 16(t1)
	add a5, a1, a4
	addi t0, t0, -1
	bnez t0, loop
	li a7, 93
	li a0, 0
	ecall
`

// storePressure fills memory with dependent stores: SQ pressure dominates.
const storePressure = `
	.data
buf:
	.zero 8192
	.text
_start:
	li t0, 100
outer:
	la t1, buf
	li t2, 0
inner:
	sd t2, 0(t1)
	sd t2, 8(t1)
	sd t2, 16(t1)
	sd t2, 24(t1)
	addi t1, t1, 32
	addi t2, t2, 1
	li t3, 256
	blt t2, t3, inner
	addi t0, t0, -1
	bnez t0, outer
	li a7, 93
	li a0, 0
	ecall
`

func TestBaselineRunsToCompletion(t *testing.T) {
	st := runMode(t, loopSum, fusion.ModeNoFusion, 1_000_000)
	if st.CommittedInsts == 0 || st.Cycles == 0 {
		t.Fatalf("nothing simulated: %+v", st)
	}
	// The loop is ~3 instructions per iteration, 2000 iterations.
	if st.CommittedInsts < 6000 {
		t.Errorf("committed %d instructions, want >= 6000", st.CommittedInsts)
	}
	if ipc := st.IPC(); ipc <= 0.1 || ipc > 8 {
		t.Errorf("IPC = %v, out of sane range", ipc)
	}
}

func TestAllModesCommitSameInstructionCount(t *testing.T) {
	var counts []uint64
	for _, m := range fusion.Modes {
		st := runMode(t, pairedLoads, m, 200_000)
		counts = append(counts, st.CommittedInsts)
	}
	for i, c := range counts {
		if c != counts[0] {
			t.Errorf("mode %v committed %d instructions, baseline %d: fusion must not change architecture",
				fusion.Modes[i], c, counts[0])
		}
	}
}

func TestCSFFusionHappens(t *testing.T) {
	st := runMode(t, pairedLoads, fusion.ModeCSFSBR, 200_000)
	if st.CSFLoadPairs == 0 {
		t.Fatalf("no consecutive load pairs fused: %+v", st)
	}
	base := runMode(t, pairedLoads, fusion.ModeNoFusion, 200_000)
	if st.IPC() < base.IPC() {
		t.Errorf("CSF-SBR IPC %.3f < baseline %.3f", st.IPC(), base.IPC())
	}
}

func TestNoFusionInBaseline(t *testing.T) {
	st := runMode(t, pairedLoads, fusion.ModeNoFusion, 100_000)
	if st.TotalMemPairs() != 0 || st.FusedIdiom != 0 || st.FusedMemIdiom != 0 {
		t.Errorf("baseline fused something: %+v", st)
	}
}

func TestHeliosFusesNonConsecutive(t *testing.T) {
	st := runMode(t, ncsfLoads, fusion.ModeHelios, 200_000)
	if st.NCSFLoadPairs == 0 {
		t.Fatalf("Helios fused no NCSF pairs: preds=%d matches=%d trainings=%d",
			st.FusionPredictions, st.UCHMatches, st.FPTrainings)
	}
	if st.Accuracy() < 0.95 {
		t.Errorf("fusion accuracy = %.3f, want >= 0.95", st.Accuracy())
	}
}

func TestOracleAtLeastAsManyPairsAsHelios(t *testing.T) {
	helios := runMode(t, ncsfLoads, fusion.ModeHelios, 200_000)
	oracle := runMode(t, ncsfLoads, fusion.ModeOracle, 200_000)
	if oracle.TotalMemPairs() < helios.TotalMemPairs() {
		t.Errorf("oracle pairs %d < helios pairs %d",
			oracle.TotalMemPairs(), helios.TotalMemPairs())
	}
}

func TestStorePairFusionRelievesSQPressure(t *testing.T) {
	base := runMode(t, storePressure, fusion.ModeNoFusion, 300_000)
	fusedSt := runMode(t, storePressure, fusion.ModeCSFSBR, 300_000)
	if fusedSt.CSFStorePairs == 0 {
		t.Fatalf("no store pairs fused: %+v", fusedSt)
	}
	if base.StallSQ == 0 {
		t.Skip("baseline shows no SQ pressure; machine too large for this kernel")
	}
	if fusedSt.StallSQ >= base.StallSQ {
		t.Errorf("SQ stalls did not drop: base %d, fused %d", base.StallSQ, fusedSt.StallSQ)
	}
	if fusedSt.IPC() <= base.IPC() {
		t.Errorf("store fusion IPC %.3f <= baseline %.3f", fusedSt.IPC(), base.IPC())
	}
}

func TestRISCVFusionIdioms(t *testing.T) {
	// li (lui+addi) and LEA idioms in a loop.
	src := `
	_start:
		li t0, 1000
	loop:
		lui t1, 0x12
		addi t1, t1, 52
		slli t2, t0, 3
		add t2, t2, t1
		addi t0, t0, -1
		bnez t0, loop
		li a7, 93
		li a0, 0
		ecall
	`
	st := runMode(t, src, fusion.ModeRISCVFusion, 100_000)
	if st.FusedIdiom == 0 {
		t.Fatalf("no idioms fused: %+v", st)
	}
	if st.TotalMemPairs() != 0 {
		t.Error("RISCVFusion must not fuse memory pairs")
	}
}

func TestBranchPredictionEngages(t *testing.T) {
	st := runMode(t, loopSum, fusion.ModeNoFusion, 100_000)
	if st.Branches == 0 {
		t.Fatal("no branches observed")
	}
	// A 2000-iteration loop is nearly perfectly predictable.
	rate := float64(st.BranchMispredicts) / float64(st.Branches)
	if rate > 0.05 {
		t.Errorf("mispredict rate = %.3f, want <= 0.05", rate)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	src := `
		.data
	buf:
		.zero 64
		.text
	_start:
		li t0, 1000
		la t1, buf
	loop:
		sd t0, 0(t1)
		ld t2, 0(t1)
		addi t0, t0, -1
		bnez t0, loop
		li a7, 93
		li a0, 0
		ecall
	`
	st := runMode(t, src, fusion.ModeNoFusion, 100_000)
	if st.STLForwards == 0 {
		t.Errorf("no store-to-load forwarding observed: %+v", st)
	}
}

func TestMaxUopsBound(t *testing.T) {
	cfg := DefaultConfig(fusion.ModeNoFusion)
	cfg.MaxUops = 500
	p := New(cfg, streamFor(t, loopSum, 1_000_000))
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedInsts < 500 || st.CommittedInsts > 520 {
		t.Errorf("committed %d, want ≈ 500", st.CommittedInsts)
	}
}

func TestSmallMachineStillCorrect(t *testing.T) {
	cfg := DefaultConfig(fusion.ModeHelios)
	cfg.ROBSize = 32
	cfg.IQSize = 16
	cfg.LQSize = 8
	cfg.SQSize = 4
	cfg.PhysRegs = 64
	cfg.AQSize = 16
	p := New(cfg, streamFor(t, pairedLoads, 50_000))
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	big := runMode(t, pairedLoads, fusion.ModeHelios, 50_000)
	if st.CommittedInsts != big.CommittedInsts {
		t.Errorf("small machine committed %d, big %d", st.CommittedInsts, big.CommittedInsts)
	}
	if st.IPC() > big.IPC() {
		t.Errorf("small machine faster (%.3f) than big (%.3f)?", st.IPC(), big.IPC())
	}
}

func TestDependentLoadsNotFused(t *testing.T) {
	// Pointer chase: each load feeds the next; nothing can pair.
	src := `
		.data
	cell:
		.dword cell
		.text
	_start:
		li t0, 5000
		la t1, cell
	loop:
		ld t1, 0(t1)
		addi t0, t0, -1
		bnez t0, loop
		li a7, 93
		li a0, 0
		ecall
	`
	st := runMode(t, src, fusion.ModeHelios, 100_000)
	if st.CSFLoadPairs+st.NCSFLoadPairs > 0 {
		// Self-chasing loads all hit the same line; the UCH will find
		// matches but rename must unfuse every attempt (deadlock).
		t.Errorf("dependent loads were fused: %+v", st)
	}
}

func TestFigure9StallAccounting(t *testing.T) {
	st := runMode(t, storePressure, fusion.ModeNoFusion, 200_000)
	if st.StallCycles() == 0 {
		t.Skip("no structural stalls on this machine")
	}
	if st.StallCycles() > st.Cycles {
		t.Errorf("stall cycles %d exceed total cycles %d", st.StallCycles(), st.Cycles)
	}
}
